// SST failure injection and the Sec. VII recovery policy: transient
// data-layer failures are retried; deterministic ones abort; either way
// the GTM and the LDBS stay consistent.

#include <memory>

#include <gtest/gtest.h>

#include "gtm/gtm.h"
#include "storage/database.h"

namespace preserial::gtm {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class GtmFailureInjectionTest : public ::testing::Test {
 protected:
  void Rebuild(GtmOptions options) {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("obj", std::move(schema)).ok());
    ASSERT_TRUE(
        db_->InsertRow("obj", Row({Value::Int(0), Value::Int(100)})).ok());
    clock_.Set(0.0);
    gtm_ = std::make_unique<Gtm>(db_.get(), &clock_, options);
    ASSERT_TRUE(gtm_->RegisterObject("X", "obj", Value::Int(0), {1}).ok());
  }

  Value DbQty() {
    return db_->GetTable("obj").value()->GetColumnByKey(Value::Int(0), 1)
        .value();
  }

  std::unique_ptr<storage::Database> db_;
  ManualClock clock_;
  std::unique_ptr<Gtm> gtm_;
};

TEST_F(GtmFailureInjectionTest, TransientFailureAbortsWithoutRetries) {
  Rebuild(GtmOptions());  // sst_retry_limit = 0.
  int failures_left = 1;
  gtm_->mutable_sst()->set_failure_injector(
      [&failures_left](const auto&) -> Status {
        if (failures_left > 0) {
          --failures_left;
          return Status::Unavailable("flaky link to the LDBS");
        }
        return Status::Ok();
      });
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->RequestCommit(t).code(), StatusCode::kAborted);
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kAborted);
  EXPECT_EQ(DbQty(), Value::Int(100));  // Nothing leaked.
  EXPECT_TRUE(gtm_->CheckInvariants().ok());
}

TEST_F(GtmFailureInjectionTest, RetryPolicyAbsorbsTransientFailures) {
  GtmOptions options;
  options.sst_retry_limit = 3;
  Rebuild(options);
  int failures_left = 2;
  gtm_->mutable_sst()->set_failure_injector(
      [&failures_left](const auto&) -> Status {
        if (failures_left > 0) {
          --failures_left;
          return Status::Unavailable("flaky link to the LDBS");
        }
        return Status::Ok();
      });
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_TRUE(gtm_->RequestCommit(t).ok());
  EXPECT_EQ(DbQty(), Value::Int(99));
  EXPECT_EQ(gtm_->metrics().counters().sst_retries, 2);
  EXPECT_EQ(gtm_->sst().counters().injected_failures, 2);
}

TEST_F(GtmFailureInjectionTest, RetryBudgetExhaustedAborts) {
  GtmOptions options;
  options.sst_retry_limit = 2;
  Rebuild(options);
  gtm_->mutable_sst()->set_failure_injector([](const auto&) {
    return Status::Unavailable("LDBS down hard");
  });
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->RequestCommit(t).code(), StatusCode::kAborted);
  // Initial attempt + 2 retries.
  EXPECT_EQ(gtm_->sst().counters().injected_failures, 3);
  EXPECT_EQ(gtm_->metrics().counters().sst_retries, 2);
  EXPECT_EQ(DbQty(), Value::Int(100));
}

TEST_F(GtmFailureInjectionTest, DeterministicFailuresAreNeverRetried) {
  GtmOptions options;
  options.sst_retry_limit = 5;
  Rebuild(options);
  int calls = 0;
  gtm_->mutable_sst()->set_failure_injector([&calls](const auto&) {
    ++calls;
    return Status::ConstraintViolation("qty would go negative");
  });
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->RequestCommit(t).code(), StatusCode::kAborted);
  EXPECT_EQ(calls, 1);  // No retry of a deterministic failure.
  EXPECT_EQ(gtm_->metrics().counters().constraint_aborts, 1);
}

TEST_F(GtmFailureInjectionTest, ExecutorCountersMirroredIntoMetrics) {
  GtmOptions options;
  options.sst_retry_limit = 3;
  Rebuild(options);
  int failures_left = 2;
  gtm_->mutable_sst()->set_failure_injector(
      [&failures_left](const auto&) -> Status {
        if (failures_left > 0) {
          --failures_left;
          return Status::Unavailable("flaky link to the LDBS");
        }
        return Status::Ok();
      });
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  // One metrics snapshot tells the whole SST story: the executor-level
  // counters are mirrored on every commit request.
  const GtmCounters& c = gtm_->metrics().counters();
  EXPECT_EQ(c.sst_retries, 2);
  EXPECT_EQ(c.sst_executed, gtm_->sst().counters().executed);
  EXPECT_EQ(c.sst_failed, gtm_->sst().counters().failed);
  EXPECT_EQ(c.sst_injected_failures, gtm_->sst().counters().injected_failures);
  EXPECT_EQ(c.sst_cells_written, gtm_->sst().counters().cells_written);
  EXPECT_EQ(c.sst_injected_failures, 2);
  EXPECT_GT(c.sst_cells_written, 0);
  // A second, failing commit keeps the mirror current.
  gtm_->mutable_sst()->set_failure_injector(
      [](const auto&) { return Status::Unavailable("down"); });
  const TxnId t2 = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t2, "X", 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->RequestCommit(t2).code(), StatusCode::kAborted);
  EXPECT_EQ(gtm_->metrics().counters().sst_injected_failures,
            gtm_->sst().counters().injected_failures);
}

TEST_F(GtmFailureInjectionTest, FailedCommitReleasesObjectForWaiters) {
  Rebuild(GtmOptions());
  gtm_->mutable_sst()->set_failure_injector(
      [](const auto&) { return Status::Unavailable("flaky"); });
  const TxnId doomed = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(doomed, "X", 0, Operation::Assign(Value::Int(5))).ok());
  const TxnId waiter = gtm_->Begin();
  EXPECT_EQ(gtm_->Invoke(waiter, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  EXPECT_EQ(gtm_->RequestCommit(doomed).code(), StatusCode::kAborted);
  // The failed committer's abort admits the waiter.
  std::vector<GtmEvent> events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, waiter);
  gtm_->mutable_sst()->set_failure_injector(nullptr);
  ASSERT_TRUE(gtm_->RequestCommit(waiter).ok());
  EXPECT_EQ(DbQty(), Value::Int(99));
  EXPECT_TRUE(gtm_->CheckInvariants().ok());
}

TEST_F(GtmFailureInjectionTest, MultiObjectCommitRollsBackAtomically) {
  Rebuild(GtmOptions());
  ASSERT_TRUE(
      db_->InsertRow("obj", Row({Value::Int(1), Value::Int(50)})).ok());
  ASSERT_TRUE(gtm_->RegisterObject("Y", "obj", Value::Int(1), {1}).ok());
  gtm_->mutable_sst()->set_failure_injector(
      [](const auto&) { return Status::Unavailable("flaky"); });
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(t, "Y", 0, Operation::Sub(Value::Int(2))).ok());
  EXPECT_EQ(gtm_->RequestCommit(t).code(), StatusCode::kAborted);
  EXPECT_EQ(DbQty(), Value::Int(100));
  EXPECT_EQ(gtm_->PermanentValue("Y", 0).value(), Value::Int(50));
  EXPECT_TRUE(gtm_->CheckInvariants().ok());
}

}  // namespace
}  // namespace preserial::gtm
