#include "mobile/network.h"

#include <gtest/gtest.h>

#include "mobile/client.h"
#include "mobile/retry.h"
#include "sim/simulator.h"

namespace preserial::mobile {
namespace {

// --- LossyChannel ---------------------------------------------------------------

TEST(LossyChannelTest, FaultFreeChannelDeliversEveryMessageOnce) {
  Rng rng(1);
  LossyChannel channel(NetworkModel(), ChannelFaults{});
  for (int i = 0; i < 100; ++i) {
    std::vector<Duration> deliveries = channel.SampleDeliveries(rng);
    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_EQ(deliveries[0], 0.0);  // Zero-latency NetworkModel.
  }
  EXPECT_EQ(channel.counters().messages, 100);
  EXPECT_EQ(channel.counters().delivered, 100);
  EXPECT_EQ(channel.counters().dropped, 0);
  EXPECT_EQ(channel.counters().duplicated, 0);
}

TEST(LossyChannelTest, FullLossDropsEverything) {
  Rng rng(2);
  ChannelFaults faults;
  faults.loss = 1.0;
  LossyChannel channel(NetworkModel(), faults);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(channel.SampleDeliveries(rng).empty());
  }
  EXPECT_EQ(channel.counters().delivered, 0);
  EXPECT_GE(channel.counters().dropped, 50);
}

TEST(LossyChannelTest, DuplicationIsCapped) {
  Rng rng(3);
  ChannelFaults faults;
  faults.duplicate = 1.0;  // Every message wants infinitely many copies.
  LossyChannel channel(NetworkModel(), faults);
  std::vector<Duration> deliveries = channel.SampleDeliveries(rng);
  EXPECT_LE(deliveries.size(), 4u);
  EXPECT_GE(deliveries.size(), 2u);
}

TEST(LossyChannelTest, LossRateIsStatisticallyHonoured) {
  Rng rng(4);
  ChannelFaults faults;
  faults.loss = 0.5;
  LossyChannel channel(NetworkModel(), faults);
  for (int i = 0; i < 10000; ++i) (void)channel.SampleDeliveries(rng);
  const double delivered_frac =
      static_cast<double>(channel.counters().delivered) / 10000.0;
  EXPECT_NEAR(delivered_frac, 0.5, 0.03);
  channel.ResetCounters();
  EXPECT_EQ(channel.counters().messages, 0);
}

TEST(LossyChannelTest, ReorderAddsExtraDelay) {
  Rng rng(5);
  ChannelFaults faults;
  faults.reorder = 1.0;
  faults.reorder_delay_mean = 2.0;
  LossyChannel channel(NetworkModel(), faults);
  double total = 0;
  for (int i = 0; i < 1000; ++i) {
    for (Duration d : channel.SampleDeliveries(rng)) total += d;
  }
  EXPECT_EQ(channel.counters().reordered, 1000);
  // Mean extra delay should be near reorder_delay_mean.
  EXPECT_NEAR(total / 1000.0, 2.0, 0.3);
}

// --- RetryPolicy ----------------------------------------------------------------

TEST(RetryPolicyTest, ExponentialBackoffWithoutJitter) {
  RetryPolicy policy;
  policy.initial_backoff = 0.25;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = 1.0;
  policy.jitter = 0.0;
  Rng rng(6);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeAttempt(1, rng), 0.25);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeAttempt(2, rng), 0.5);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeAttempt(3, rng), 1.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeAttempt(10, rng), 1.0);  // Capped.
}

TEST(RetryPolicyTest, JitterStaysWithinBounds) {
  RetryPolicy policy;
  policy.initial_backoff = 1.0;
  policy.jitter = 0.5;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Duration b = policy.BackoffBeforeAttempt(1, rng);
    EXPECT_GE(b, 0.5);
    EXPECT_LE(b, 1.5);
  }
}

// --- RequestStub ----------------------------------------------------------------

struct StubHarness {
  sim::Simulator sim;
  Rng rng{42};
  LossyChannel channel;
  RequestStub stub;

  StubHarness(ChannelFaults faults, RetryPolicy policy)
      : channel(NetworkModel(), faults),
        stub(&sim, &channel, &rng, policy) {}
};

TEST(RequestStubTest, ReliableChannelExecutesAndRepliesOnce) {
  RetryPolicy policy;
  StubHarness h(ChannelFaults{}, policy);
  int executed = 0;
  int replied = 0;
  h.stub.Send([&] { ++executed; return Status::Ok(); },
              [&](const Status& s) {
                ++replied;
                EXPECT_TRUE(s.ok());
              },
              [&] { FAIL() << "budget exhausted on a reliable channel"; });
  h.sim.Run();
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(replied, 1);
  EXPECT_EQ(h.stub.retries(), 0);
}

TEST(RequestStubTest, DeadChannelExhaustsRetryBudget) {
  ChannelFaults faults;
  faults.loss = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.jitter = 0.0;
  StubHarness h(faults, policy);
  int executed = 0;
  bool exhausted = false;
  h.stub.Send([&] { ++executed; return Status::Ok(); },
              [&](const Status&) { FAIL() << "no reply can arrive"; },
              [&] { exhausted = true; });
  h.sim.Run();
  EXPECT_EQ(executed, 0);
  EXPECT_TRUE(exhausted);
  EXPECT_EQ(h.stub.retries(), 2);  // 3 attempts = 2 retries.
  // Elapsed: 3 timeouts + backoffs 0.25 and 0.5.
  EXPECT_DOUBLE_EQ(h.sim.Now(), 3 * policy.request_timeout + 0.25 + 0.5);
}

TEST(RequestStubTest, DuplicatedRepliesCompleteOnlyOnce) {
  ChannelFaults faults;
  faults.duplicate = 0.9;
  RetryPolicy policy;
  StubHarness h(faults, policy);
  int executed = 0;
  int replied = 0;
  h.stub.Send([&] { ++executed; return Status::Ok(); },
              [&](const Status&) { ++replied; }, [&] {});
  h.sim.Run();
  EXPECT_GE(executed, 1);  // Server may see several copies...
  EXPECT_EQ(replied, 1);   // ...the client completes exactly once.
}

TEST(RequestStubTest, LossyChannelEventuallyGetsThrough) {
  ChannelFaults faults;
  faults.loss = 0.5;
  RetryPolicy policy;
  policy.max_attempts = 12;
  StubHarness h(faults, policy);
  int replied = 0;
  h.stub.Send([&] { return Status::Ok(); },
              [&](const Status&) { ++replied; }, [&] {});
  h.sim.Run();
  EXPECT_EQ(replied, 1);
  EXPECT_GT(h.stub.retries(), 0);  // Seed 42 drops at least one attempt.
}

TEST(RequestStubTest, CancelSuppressesLateReplies) {
  RetryPolicy policy;
  StubHarness h(ChannelFaults{}, policy);
  int replied = 0;
  h.stub.Send([&] { return Status::Ok(); },
              [&](const Status&) { ++replied; }, [&] {});
  h.stub.Cancel();  // Before the simulator delivers anything.
  h.sim.Run();
  EXPECT_EQ(replied, 0);
}

}  // namespace
}  // namespace preserial::mobile
