#include "semantics/reconcile.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "semantics/commutativity.h"

namespace preserial::semantics {
namespace {

using storage::Value;

TEST(ReconcileAddSubTest, PaperEquationOne) {
  // X_new = A_temp + X_permanent - X_read.
  const Value r = ReconcileAddSub(Value::Int(100), Value::Int(104),
                                  Value::Int(102))
                      .value();
  EXPECT_EQ(r, Value::Int(106));  // Table II, final commit of B.
}

TEST(ReconcileAddSubTest, TableTwoFullTrace) {
  // Paper Table II: X starts at 100. A adds 1 then 3 (temp 104); B adds 2
  // (temp 102). A commits first, then B.
  const Value x0 = Value::Int(100);
  // A's local commit: permanent still 100.
  const Value x_after_a =
      ReconcileAddSub(/*read=*/x0, /*temp=*/Value::Int(104),
                      /*permanent=*/x0)
          .value();
  EXPECT_EQ(x_after_a, Value::Int(104));
  // B's local commit: permanent is now 104.
  const Value x_after_b =
      ReconcileAddSub(/*read=*/x0, /*temp=*/Value::Int(102),
                      /*permanent=*/x_after_a)
          .value();
  EXPECT_EQ(x_after_b, Value::Int(106));
}

TEST(ReconcileAddSubTest, CommitOrderDoesNotMatter) {
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    const int64_t x0 = rng.NextInt(-100, 100);
    const int64_t da = rng.NextInt(-20, 20);
    const int64_t db = rng.NextInt(-20, 20);
    // Order 1: A then B.
    const Value a_first =
        ReconcileAddSub(Value::Int(x0), Value::Int(x0 + da), Value::Int(x0))
            .value();
    const Value then_b =
        ReconcileAddSub(Value::Int(x0), Value::Int(x0 + db), a_first).value();
    // Order 2: B then A.
    const Value b_first =
        ReconcileAddSub(Value::Int(x0), Value::Int(x0 + db), Value::Int(x0))
            .value();
    const Value then_a =
        ReconcileAddSub(Value::Int(x0), Value::Int(x0 + da), b_first).value();
    EXPECT_EQ(then_b, then_a);
    EXPECT_EQ(then_b, Value::Int(x0 + da + db));
  }
}

TEST(ReconcileMulDivTest, PaperEquationTwo) {
  // X_new = (A_temp / X_read) * X_permanent.
  const Value r = ReconcileMulDiv(Value::Int(10), Value::Int(20),
                                  Value::Int(30))
                      .value();
  ASSERT_EQ(r.type(), storage::ValueType::kDouble);
  EXPECT_DOUBLE_EQ(r.as_double(), 60.0);  // Factor 2 applied to 30.
}

TEST(ReconcileMulDivTest, CommitOrderDoesNotMatter) {
  Rng rng(9);
  for (int iter = 0; iter < 200; ++iter) {
    const double x0 = static_cast<double>(rng.NextInt(1, 50));
    const double fa = static_cast<double>(rng.NextInt(1, 8));
    const double fb = 1.0 / static_cast<double>(rng.NextInt(1, 8));
    const Value a_first = ReconcileMulDiv(Value::Double(x0),
                                          Value::Double(x0 * fa),
                                          Value::Double(x0))
                              .value();
    const Value then_b =
        ReconcileMulDiv(Value::Double(x0), Value::Double(x0 * fb), a_first)
            .value();
    const Value b_first = ReconcileMulDiv(Value::Double(x0),
                                          Value::Double(x0 * fb),
                                          Value::Double(x0))
                              .value();
    const Value then_a =
        ReconcileMulDiv(Value::Double(x0), Value::Double(x0 * fa), b_first)
            .value();
    EXPECT_NEAR(then_b.as_double(), then_a.as_double(), 1e-9);
    EXPECT_NEAR(then_b.as_double(), x0 * fa * fb, 1e-9);
  }
}

TEST(ReconcileMulDivTest, ZeroReadIsUndefined) {
  EXPECT_FALSE(
      ReconcileMulDiv(Value::Int(0), Value::Int(0), Value::Int(5)).ok());
}

TEST(ReconcileMulDivTest, NonNumericRejected) {
  EXPECT_FALSE(ReconcileMulDiv(Value::String("x"), Value::Int(1),
                               Value::Int(1))
                   .ok());
}

TEST(ReconcileDispatchTest, PerClassBehaviour) {
  const Value read = Value::Int(10);
  const Value temp = Value::Int(13);
  const Value permanent = Value::Int(11);
  // Read: no change to the committed value.
  EXPECT_EQ(Reconcile(OpClass::kRead, read, temp, permanent).value(),
            permanent);
  // Assign/insert: holder is exclusive, its copy wins.
  EXPECT_EQ(
      Reconcile(OpClass::kUpdateAssign, read, temp, permanent).value(), temp);
  EXPECT_EQ(Reconcile(OpClass::kInsert, read, temp, permanent).value(), temp);
  // Delete: the member becomes absent.
  EXPECT_TRUE(
      Reconcile(OpClass::kDelete, read, temp, permanent).value().is_null());
  // Add/sub uses eq. (1).
  EXPECT_EQ(
      Reconcile(OpClass::kUpdateAddSub, read, temp, permanent).value(),
      Value::Int(14));
}

TEST(ReconcileConsistencyTest, ReconcileMatchesReplayingOperations) {
  // Property: for compatible add/sub holders, reconciling A's copy against
  // a permanent value advanced by B equals applying both operation
  // sequences to the original state.
  Rng rng(11);
  for (int iter = 0; iter < 300; ++iter) {
    const int64_t x0 = rng.NextInt(-50, 50);
    Value state = Value::Int(x0);
    Value temp_a = state;
    Value temp_b = state;
    int64_t net = 0;
    for (int k = 0; k < 5; ++k) {
      const Operation op = SampleOperation(OpClass::kUpdateAddSub, rng);
      const bool mine = rng.NextBool(0.5);
      Value& target = mine ? temp_a : temp_b;
      target = Transition(target, op).value();
      const int64_t delta = op.inverse ? -op.operand.as_int()
                                       : op.operand.as_int();
      net += delta;
    }
    // B commits first: permanent = reconcile(B).
    const Value perm_b =
        ReconcileAddSub(state, temp_b, state).value();
    const Value final_value =
        ReconcileAddSub(state, temp_a, perm_b).value();
    EXPECT_EQ(final_value, Value::Int(x0 + net));
  }
}

}  // namespace
}  // namespace preserial::semantics
