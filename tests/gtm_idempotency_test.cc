// Idempotent *Once endpoints: redelivered requests return the cached reply
// without re-executing, so an at-least-once transport can never apply an
// operation or a commit twice.

#include <memory>

#include <gtest/gtest.h>

#include "gtm/gtm.h"
#include "storage/database.h"

namespace preserial::gtm {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class GtmIdempotencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("obj", std::move(schema)).ok());
    ASSERT_TRUE(
        db_->InsertRow("obj", Row({Value::Int(0), Value::Int(100)})).ok());
    clock_.Set(0.0);
    gtm_ = std::make_unique<Gtm>(db_.get(), &clock_, GtmOptions{});
    ASSERT_TRUE(gtm_->RegisterObject("X", "obj", Value::Int(0), {1}).ok());
  }

  Value DbQty() {
    return db_->GetTable("obj").value()->GetColumnByKey(Value::Int(0), 1)
        .value();
  }

  int64_t Suppressed() {
    return gtm_->metrics().counters().duplicates_suppressed;
  }

  std::unique_ptr<storage::Database> db_;
  ManualClock clock_;
  std::unique_ptr<Gtm> gtm_;
};

TEST_F(GtmIdempotencyTest, RedeliveredInvokeDoesNotReapply) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->InvokeOnce(t, 1, "X", 0, Operation::Sub(Value::Int(1)))
                  .ok());
  EXPECT_EQ(gtm_->ReadLocal(t, "X", 0).value(), Value::Int(99));
  // The retry returns the cached OK and leaves the virtual copy alone.
  ASSERT_TRUE(gtm_->InvokeOnce(t, 1, "X", 0, Operation::Sub(Value::Int(1)))
                  .ok());
  EXPECT_EQ(gtm_->ReadLocal(t, "X", 0).value(), Value::Int(99));
  EXPECT_EQ(Suppressed(), 1);
  // A fresh sequence number is a new request and does apply.
  ASSERT_TRUE(gtm_->InvokeOnce(t, 2, "X", 0, Operation::Sub(Value::Int(1)))
                  .ok());
  EXPECT_EQ(gtm_->ReadLocal(t, "X", 0).value(), Value::Int(98));
  EXPECT_TRUE(gtm_->CheckInvariants().ok());
}

TEST_F(GtmIdempotencyTest, RedeliveredCommitAppliesExactlyOnce) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->InvokeOnce(t, 1, "X", 0, Operation::Sub(Value::Int(1)))
                  .ok());
  ASSERT_TRUE(gtm_->CommitOnce(t, 2).ok());
  EXPECT_EQ(DbQty(), Value::Int(99));
  // Redeliveries — even long after the transaction is terminal — answer
  // from the cache and never run the SST again.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(gtm_->CommitOnce(t, 2).ok());
    EXPECT_EQ(DbQty(), Value::Int(99));
  }
  EXPECT_EQ(Suppressed(), 3);
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kCommitted);
}

TEST_F(GtmIdempotencyTest, RedeliveredAbortStaysAborted) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->InvokeOnce(t, 1, "X", 0, Operation::Sub(Value::Int(1)))
                  .ok());
  ASSERT_TRUE(gtm_->AbortOnce(t, 2).ok());
  EXPECT_TRUE(gtm_->AbortOnce(t, 2).ok());
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kAborted);
  EXPECT_EQ(DbQty(), Value::Int(100));
}

TEST_F(GtmIdempotencyTest, RedeliveredSleepAndAwakeAreAbsorbed) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->InvokeOnce(t, 1, "X", 0, Operation::Sub(Value::Int(1)))
                  .ok());
  ASSERT_TRUE(gtm_->SleepOnce(t, 2).ok());
  EXPECT_TRUE(gtm_->SleepOnce(t, 2).ok());  // Duplicate, not a double sleep.
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kSleeping);
  ASSERT_TRUE(gtm_->AwakeOnce(t, 3).ok());
  EXPECT_TRUE(gtm_->AwakeOnce(t, 3).ok());
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kActive);
  ASSERT_TRUE(gtm_->CommitOnce(t, 4).ok());
  EXPECT_EQ(DbQty(), Value::Int(99));
}

TEST_F(GtmIdempotencyTest, WaitingReplayReDerivesAfterGrant) {
  const TxnId holder = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->InvokeOnce(holder, 1, "X", 0, Operation::Assign(Value::Int(50)))
          .ok());
  const TxnId waiter = gtm_->Begin();
  Status first =
      gtm_->InvokeOnce(waiter, 1, "X", 0, Operation::Sub(Value::Int(1)));
  ASSERT_EQ(first.code(), StatusCode::kWaiting);
  // Still queued: the retry replays kWaiting.
  EXPECT_EQ(gtm_->InvokeOnce(waiter, 1, "X", 0, Operation::Sub(Value::Int(1)))
                .code(),
            StatusCode::kWaiting);
  // The holder commits; admission grants the queued subtraction.
  ASSERT_TRUE(gtm_->CommitOnce(holder, 2).ok());
  ASSERT_EQ(gtm_->TakeEvents().size(), 1u);
  // The same retry now reports the grant instead of the stale kWaiting —
  // and still does not re-apply the buffered operation.
  EXPECT_TRUE(gtm_->InvokeOnce(waiter, 1, "X", 0, Operation::Sub(Value::Int(1)))
                  .ok());
  EXPECT_EQ(gtm_->ReadLocal(waiter, "X", 0).value(), Value::Int(49));
  ASSERT_TRUE(gtm_->CommitOnce(waiter, 2).ok());
  EXPECT_EQ(DbQty(), Value::Int(49));
  EXPECT_TRUE(gtm_->CheckInvariants().ok());
}

TEST_F(GtmIdempotencyTest, WaitingReplayReportsSystemAbort) {
  const TxnId holder = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->InvokeOnce(holder, 1, "X", 0, Operation::Assign(Value::Int(50)))
          .ok());
  const TxnId waiter = gtm_->Begin();
  ASSERT_EQ(gtm_->InvokeOnce(waiter, 1, "X", 0, Operation::Sub(Value::Int(1)))
                .code(),
            StatusCode::kWaiting);
  clock_.Set(100.0);
  ASSERT_EQ(gtm_->AbortExpiredWaits(10.0).size(), 1u);
  // The retried invoke must not resurrect the aborted waiter.
  EXPECT_EQ(gtm_->InvokeOnce(waiter, 1, "X", 0, Operation::Sub(Value::Int(1)))
                .code(),
            StatusCode::kAborted);
  EXPECT_EQ(gtm_->StateOf(waiter).value(), TxnState::kAborted);
}

TEST_F(GtmIdempotencyTest, SuppressionsAreTraced) {
  gtm_->trace()->Enable(64);
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->InvokeOnce(t, 1, "X", 0, Operation::Sub(Value::Int(1)))
                  .ok());
  ASSERT_TRUE(gtm_->InvokeOnce(t, 1, "X", 0, Operation::Sub(Value::Int(1)))
                  .ok());
  bool saw = false;
  for (const TraceEvent& e : gtm_->trace()->Snapshot()) {
    if (e.kind == TraceEventKind::kDuplicateSuppressed) saw = true;
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace preserial::gtm
