#include "semantics/commutativity.h"

#include <gtest/gtest.h>

#include "semantics/compatibility.h"

namespace preserial::semantics {
namespace {

using storage::Value;

TEST(TransitionTest, AbsentObjectOnlyAcceptsInsert) {
  const Value absent = Value::Null();
  EXPECT_EQ(Transition(absent, Operation::Insert(Value::Int(5))).value(),
            Value::Int(5));
  EXPECT_FALSE(Transition(absent, Operation::Read()).ok());
  EXPECT_FALSE(Transition(absent, Operation::Delete()).ok());
  EXPECT_FALSE(Transition(absent, Operation::Add(Value::Int(1))).ok());
  EXPECT_FALSE(Transition(absent, Operation::Assign(Value::Int(1))).ok());
}

TEST(TransitionTest, PresentObjectSemantics) {
  const Value s = Value::Int(10);
  EXPECT_FALSE(Transition(s, Operation::Insert(Value::Int(5))).ok());
  EXPECT_TRUE(Transition(s, Operation::Delete()).value().is_null());
  EXPECT_EQ(Transition(s, Operation::Read()).value(), s);
  EXPECT_EQ(Transition(s, Operation::Assign(Value::Int(3))).value(),
            Value::Int(3));
  EXPECT_EQ(Transition(s, Operation::Add(Value::Int(4))).value(),
            Value::Int(14));
  EXPECT_EQ(Transition(s, Operation::Sub(Value::Int(4))).value(),
            Value::Int(6));
  EXPECT_DOUBLE_EQ(
      Transition(s, Operation::Mul(Value::Int(3))).value().as_double(), 30.0);
  EXPECT_DOUBLE_EQ(
      Transition(s, Operation::Div(Value::Int(4))).value().as_double(), 2.5);
}

TEST(TransitionTest, MulDivComputedInDouble) {
  // Integer truncation would break commutativity; the class works over the
  // reals, so 7 / 2 is 3.5 rather than 3.
  const Value r = Transition(Value::Int(7), Operation::Div(Value::Int(2)))
                      .value();
  EXPECT_EQ(r.type(), storage::ValueType::kDouble);
  EXPECT_DOUBLE_EQ(r.as_double(), 3.5);
}

TEST(TransitionTest, InvalidOperationsRejected) {
  EXPECT_FALSE(Transition(Value::Int(1), Operation::Mul(Value::Int(0))).ok());
  EXPECT_FALSE(
      Transition(Value::Int(1), Operation::Add(Value::String("x"))).ok());
  EXPECT_FALSE(
      Transition(Value::Int(1), Operation::Assign(Value::Null())).ok());
}

TEST(CommutesAtTest, AddsCommute) {
  EXPECT_TRUE(CommutesAt(Value::Int(5), Operation::Add(Value::Int(2)),
                         Operation::Sub(Value::Int(7))));
}

TEST(CommutesAtTest, AssignsDisagree) {
  EXPECT_FALSE(CommutesAt(Value::Int(5), Operation::Assign(Value::Int(1)),
                          Operation::Assign(Value::Int(2))));
}

TEST(CommutesAtTest, AssignAndAddDisagree) {
  EXPECT_FALSE(CommutesAt(Value::Int(5), Operation::Assign(Value::Int(1)),
                          Operation::Add(Value::Int(2))));
}

TEST(CommutesAtTest, ReadNeverChangesState) {
  EXPECT_TRUE(CommutesAt(Value::Int(5), Operation::Read(),
                         Operation::Assign(Value::Int(9))));
  EXPECT_TRUE(CommutesAt(Value::Int(5), Operation::Read(),
                         Operation::Mul(Value::Int(2))));
}

TEST(CommutesAtTest, DeleteBreaksEverything) {
  EXPECT_FALSE(
      CommutesAt(Value::Int(5), Operation::Delete(), Operation::Read()));
  EXPECT_FALSE(CommutesAt(Value::Int(5), Operation::Delete(),
                          Operation::Add(Value::Int(1))));
  // delete/delete: both individually defined, neither order composes.
  EXPECT_FALSE(
      CommutesAt(Value::Int(5), Operation::Delete(), Operation::Delete()));
}

TEST(CommutesAtTest, InsertInsertFailsAtAbsentState) {
  EXPECT_FALSE(CommutesAt(Value::Null(), Operation::Insert(Value::Int(1)),
                          Operation::Insert(Value::Int(2))));
}

TEST(CommutesAtTest, VacuousWhenBothUndefined) {
  // At an absent state, two adds are both undefined: no counterexample.
  EXPECT_TRUE(CommutesAt(Value::Null(), Operation::Add(Value::Int(1)),
                         Operation::Add(Value::Int(2))));
}

TEST(ForwardCommutesTest, UsesAllProbeStates) {
  const std::vector<Value> states = DefaultProbeStates();
  // Insert/add fails at the Null probe state (insert defined, add not).
  EXPECT_FALSE(ForwardCommutes(Operation::Insert(Value::Int(1)),
                               Operation::Add(Value::Int(1)), states));
  EXPECT_TRUE(ForwardCommutes(Operation::Add(Value::Int(1)),
                              Operation::Sub(Value::Int(2)), states));
  EXPECT_TRUE(ForwardCommutes(Operation::Mul(Value::Int(2)),
                              Operation::Div(Value::Int(4)), states));
}

// The paper's central soundness claim: Table I agrees with machine-checked
// Weihl forward commutativity, across many random seeds.
class VerifyTableTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VerifyTableTest, TableOneIsSoundAndTight) {
  Rng rng(GetParam());
  const Status s = VerifyCompatibilityTable(rng, /*samples_per_pair=*/64);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifyTableTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

// Property sweep: compatible sampled operation pairs always commute on the
// probe grid.
class CompatiblePairsCommuteTest
    : public ::testing::TestWithParam<std::pair<OpClass, OpClass>> {};

TEST_P(CompatiblePairsCommuteTest, AllSamplesCommute) {
  const auto [ca, cb] = GetParam();
  ASSERT_TRUE(Compatible(ca, cb));
  Rng rng(static_cast<uint64_t>(ca) * 31 + static_cast<uint64_t>(cb));
  const std::vector<Value> states = DefaultProbeStates();
  for (int i = 0; i < 200; ++i) {
    const Operation a = SampleOperation(ca, rng);
    const Operation b = SampleOperation(cb, rng);
    EXPECT_TRUE(ForwardCommutes(a, b, states))
        << a.ToString() << " / " << b.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, CompatiblePairsCommuteTest,
    ::testing::Values(
        std::make_pair(OpClass::kRead, OpClass::kRead),
        std::make_pair(OpClass::kRead, OpClass::kUpdateAssign),
        std::make_pair(OpClass::kRead, OpClass::kUpdateAddSub),
        std::make_pair(OpClass::kRead, OpClass::kUpdateMulDiv),
        std::make_pair(OpClass::kUpdateAddSub, OpClass::kUpdateAddSub),
        std::make_pair(OpClass::kUpdateMulDiv, OpClass::kUpdateMulDiv)));

TEST(OperationTest, ValidateRejectsBadOperands) {
  EXPECT_TRUE(Operation::Read().Validate().ok());
  EXPECT_TRUE(Operation::Delete().Validate().ok());
  EXPECT_FALSE(Operation::Assign(Value::Null()).Validate().ok());
  EXPECT_FALSE(Operation::Insert(Value::Null()).Validate().ok());
  EXPECT_FALSE(Operation::Add(Value::String("x")).Validate().ok());
  EXPECT_FALSE(Operation::Mul(Value::Int(0)).Validate().ok());
  EXPECT_FALSE(Operation::Div(Value::Int(0)).Validate().ok());
  EXPECT_TRUE(Operation::Mul(Value::Double(0.5)).Validate().ok());
}

TEST(OperationTest, ToStringRendersClassAndOperand) {
  EXPECT_EQ(Operation::Add(Value::Int(3)).ToString(), "add(3)");
  EXPECT_EQ(Operation::Sub(Value::Int(3)).ToString(), "sub(3)");
  EXPECT_EQ(Operation::Mul(Value::Int(2)).ToString(), "mul(2)");
  EXPECT_EQ(Operation::Div(Value::Int(2)).ToString(), "div(2)");
  EXPECT_EQ(Operation::Read().ToString(), "read");
  EXPECT_EQ(Operation::Assign(Value::String("a")).ToString(), "assign('a')");
}

}  // namespace
}  // namespace preserial::semantics
