#include "sql/executor.h"

#include <memory>

#include <gtest/gtest.h>

namespace preserial::sql {
namespace {

using storage::Value;

class SqlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto wal = std::make_unique<storage::MemoryWalStorage>();
    wal_ = wal.get();
    db_ = std::make_unique<storage::Database>(std::move(wal));
    ASSERT_TRUE(db_->Open().ok());
    exec_ = std::make_unique<Executor>(db_.get());
    Must("CREATE TABLE flights (id INT PRIMARY KEY, free INT, "
         "dest STRING NULL)");
    Must("INSERT INTO flights VALUES (1, 50, 'NAP')");
    Must("INSERT INTO flights VALUES (2, 0, 'ROM')");
    Must("INSERT INTO flights VALUES (3, 12, 'MIL')");
    Must("INSERT INTO flights VALUES (4, 12, NULL)");
  }

  ResultSet Must(const std::string& stmt) {
    Result<ResultSet> r = exec_->Run(stmt);
    EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
    return r.value_or(ResultSet{});
  }

  std::unique_ptr<storage::Database> db_;
  storage::MemoryWalStorage* wal_ = nullptr;  // Owned by db_.
  std::unique_ptr<Executor> exec_;
};

TEST_F(SqlExecutorTest, SelectStarReturnsAllRowsInPkOrder) {
  const ResultSet rs = Must("SELECT * FROM flights");
  ASSERT_EQ(rs.columns.size(), 3u);
  ASSERT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
  EXPECT_EQ(rs.rows[3][0], Value::Int(4));
}

TEST_F(SqlExecutorTest, ProjectionSelectsNamedColumns) {
  const ResultSet rs = Must("SELECT dest, id FROM flights WHERE id = 1");
  ASSERT_EQ(rs.columns, (std::vector<std::string>{"dest", "id"}));
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::String("NAP"));
  EXPECT_EQ(rs.rows[0][1], Value::Int(1));
}

TEST_F(SqlExecutorTest, WherePkPointLookup) {
  const ResultSet rs = Must("SELECT free FROM flights WHERE id = 3");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(12));
  EXPECT_TRUE(Must("SELECT * FROM flights WHERE id = 99").rows.empty());
}

TEST_F(SqlExecutorTest, WhereConjunction) {
  const ResultSet rs =
      Must("SELECT id FROM flights WHERE free = 12 AND id > 3");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(4));
}

TEST_F(SqlExecutorTest, NullNeverMatchesComparisons) {
  // Row 4 has dest NULL: equality and inequality both skip it.
  EXPECT_EQ(Must("SELECT id FROM flights WHERE dest = 'MIL'").rows.size(),
            1u);
  EXPECT_EQ(Must("SELECT id FROM flights WHERE dest != 'MIL'").rows.size(),
            2u);
}

TEST_F(SqlExecutorTest, OrderByAndLimit) {
  const ResultSet rs =
      Must("SELECT id FROM flights ORDER BY free DESC LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));  // free 50.
  // Two rows share free=12; stable sort keeps pk order.
  EXPECT_EQ(rs.rows[1][0], Value::Int(3));
}

TEST_F(SqlExecutorTest, UpdateWithWhere) {
  const ResultSet rs = Must("UPDATE flights SET free = 99 WHERE free = 12");
  EXPECT_EQ(rs.affected_rows, 2);
  EXPECT_EQ(Must("SELECT id FROM flights WHERE free = 99").rows.size(), 2u);
}

TEST_F(SqlExecutorTest, UpdateAllRowsWithoutWhere) {
  EXPECT_EQ(Must("UPDATE flights SET free = 1").affected_rows, 4);
  EXPECT_EQ(Must("SELECT id FROM flights WHERE free = 1").rows.size(), 4u);
}

TEST_F(SqlExecutorTest, DeleteWithWhere) {
  EXPECT_EQ(Must("DELETE FROM flights WHERE free <= 12").affected_rows, 3);
  const ResultSet rs = Must("SELECT id FROM flights");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
}

TEST_F(SqlExecutorTest, ConstraintViaAlterTableBites) {
  Must("ALTER TABLE flights ADD CONSTRAINT nonneg CHECK (free >= 0)");
  Result<ResultSet> r =
      exec_->Run("UPDATE flights SET free = -1 WHERE id = 1");
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(Must("SELECT free FROM flights WHERE id = 1").rows[0][0],
            Value::Int(50));
  // Inserts violating the constraint fail too.
  EXPECT_FALSE(exec_->Run("INSERT INTO flights VALUES (9, -3, 'X')").ok());
}

TEST_F(SqlExecutorTest, SecondaryIndexServesEqualityAndRange) {
  Must("CREATE INDEX by_free ON flights (free)");
  EXPECT_TRUE(db_->GetTable("flights").value()->HasIndexOn(1));
  const ResultSet eq = Must("SELECT id FROM flights WHERE free = 12");
  EXPECT_EQ(eq.rows.size(), 2u);
  const ResultSet range =
      Must("SELECT id FROM flights WHERE free >= 1 AND free <= 20");
  EXPECT_EQ(range.rows.size(), 2u);
  // Index stays correct through mutations.
  Must("UPDATE flights SET free = 12 WHERE id = 2");
  EXPECT_EQ(Must("SELECT id FROM flights WHERE free = 12").rows.size(), 3u);
  Must("DELETE FROM flights WHERE id = 3");
  EXPECT_EQ(Must("SELECT id FROM flights WHERE free = 12").rows.size(), 2u);
  EXPECT_TRUE(db_->GetTable("flights").value()->CheckInvariants().ok());
}

TEST_F(SqlExecutorTest, DuplicateIndexRejected) {
  Must("CREATE INDEX by_free ON flights (free)");
  EXPECT_FALSE(exec_->Run("CREATE INDEX again ON flights (free)").ok());
  EXPECT_FALSE(exec_->Run("CREATE INDEX by_free ON flights (dest)").ok());
}

TEST_F(SqlExecutorTest, InsertDuplicatePkRejected) {
  EXPECT_EQ(exec_->Run("INSERT INTO flights VALUES (1, 5, 'X')")
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(SqlExecutorTest, TypeMismatchRejected) {
  EXPECT_FALSE(exec_->Run("INSERT INTO flights VALUES ('one', 5, 'X')").ok());
  EXPECT_FALSE(exec_->Run("INSERT INTO flights VALUES (9, 5)").ok());
}

TEST_F(SqlExecutorTest, UnknownTableAndColumnErrors) {
  EXPECT_EQ(exec_->Run("SELECT * FROM nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(exec_->Run("SELECT wat FROM flights").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(exec_->Run("UPDATE flights SET wat = 1").ok());
}

TEST_F(SqlExecutorTest, ShowTables) {
  Must("CREATE TABLE hotels (id INT PRIMARY KEY, rooms INT)");
  const ResultSet rs = Must("SHOW TABLES");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::String("flights"));
  EXPECT_EQ(rs.rows[0][1], Value::Int(4));
  EXPECT_EQ(rs.rows[1][0], Value::String("hotels"));
}

TEST_F(SqlExecutorTest, DropTable) {
  Must("DROP TABLE flights");
  EXPECT_FALSE(exec_->Run("SELECT * FROM flights").ok());
}

TEST_F(SqlExecutorTest, DmlAndDdlSurviveCrashRecovery) {
  Must("UPDATE flights SET free = 7 WHERE id = 2");
  Must("CREATE INDEX by_free ON flights (free)");
  Must("DELETE FROM flights WHERE id = 4");
  // Crash: rebuild a fresh database from the log bytes and query it via a
  // fresh executor.
  const std::string log = wal_->ReadAll().value();
  auto wal_copy = std::make_unique<storage::MemoryWalStorage>();
  ASSERT_TRUE(wal_copy->Reset(log).ok());
  storage::Database recovered(std::move(wal_copy));
  ASSERT_TRUE(recovered.Open().ok());
  Executor exec2(&recovered);
  Result<ResultSet> rs = exec2.Run("SELECT free FROM flights WHERE id = 2");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0], Value::Int(7));
  EXPECT_TRUE(recovered.GetTable("flights").value()->HasIndexOn(1));
  EXPECT_TRUE(
      exec2.Run("SELECT * FROM flights WHERE id = 4").value().rows.empty());
}

TEST_F(SqlExecutorTest, ResultSetRendering) {
  const ResultSet rs = Must("SELECT id, dest FROM flights LIMIT 2");
  const std::string text = rs.ToString();
  EXPECT_NE(text.find("id"), std::string::npos);
  EXPECT_NE(text.find("dest"), std::string::npos);
  EXPECT_NE(text.find("'NAP'"), std::string::npos);
  EXPECT_NE(text.find("(2 row(s))"), std::string::npos);
  const ResultSet dml = Must("UPDATE flights SET free = 5 WHERE id = 1");
  EXPECT_NE(dml.ToString().find("1 row(s) affected"), std::string::npos);
}

}  // namespace
}  // namespace preserial::sql
