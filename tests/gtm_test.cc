#include "gtm/gtm.h"

#include <memory>

#include <gtest/gtest.h>

#include "storage/database.h"

namespace preserial::gtm {
namespace {

using semantics::Operation;
using storage::CheckConstraint;
using storage::ColumnDef;
using storage::CompareOp;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class GtmTest : public ::testing::Test {
 protected:
  void SetUp() override { Rebuild(GtmOptions()); }

  void Rebuild(GtmOptions options) {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                            ColumnDef{"price", ValueType::kDouble, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("obj", std::move(schema)).ok());
    for (int64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(db_->InsertRow("obj", Row({Value::Int(i), Value::Int(100),
                                             Value::Double(10.0)}))
                      .ok());
    }
    clock_.Set(0.0);
    gtm_ = std::make_unique<Gtm>(db_.get(), &clock_, options);
    // Object "X" with members 0=qty (col 1) and 1=price (col 2),
    // independent unless a test adds a dependency.
    ASSERT_TRUE(
        gtm_->RegisterObject("X", "obj", Value::Int(0), {1, 2}).ok());
    ASSERT_TRUE(
        gtm_->RegisterObject("Y", "obj", Value::Int(1), {1, 2}).ok());
  }

  Value DbQty(int64_t id) {
    return db_->GetTable("obj").value()->GetColumnByKey(Value::Int(id), 1)
        .value();
  }
  Value DbPrice(int64_t id) {
    return db_->GetTable("obj").value()->GetColumnByKey(Value::Int(id), 2)
        .value();
  }

  void ExpectInvariants() {
    const Status s = gtm_->CheckInvariants();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  std::unique_ptr<storage::Database> db_;
  ManualClock clock_;
  std::unique_ptr<Gtm> gtm_;
};

TEST_F(GtmTest, BeginCreatesActiveTransaction) {
  const TxnId t = gtm_->Begin();
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kActive);
  EXPECT_EQ(gtm_->metrics().counters().begun, 1);
  ExpectInvariants();
}

TEST_F(GtmTest, InvokeGrantsAndExecutesOnVirtualCopy) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  // The copy moved, the database did not.
  EXPECT_EQ(gtm_->ReadLocal(t, "X", 0).value(), Value::Int(99));
  EXPECT_EQ(DbQty(0), Value::Int(100));
  EXPECT_EQ(gtm_->PermanentValue("X", 0).value(), Value::Int(100));
  ExpectInvariants();
}

TEST_F(GtmTest, CommitReconcilesAndWritesThroughSst) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(2))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kCommitted);
  EXPECT_EQ(DbQty(0), Value::Int(97));
  EXPECT_EQ(gtm_->PermanentValue("X", 0).value(), Value::Int(97));
  EXPECT_EQ(gtm_->metrics().counters().committed, 1);
  ExpectInvariants();
}

TEST_F(GtmTest, CompatibleSubtractionsShareTheObject) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Sub(Value::Int(1))).ok());
  // b is admitted concurrently: the whole point of the paper.
  ASSERT_TRUE(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(2))).ok());
  EXPECT_EQ(gtm_->StateOf(b).value(), TxnState::kActive);
  EXPECT_EQ(gtm_->metrics().counters().shared_grants, 1);
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  ASSERT_TRUE(gtm_->RequestCommit(b).ok());
  // Both deltas survive reconciliation.
  EXPECT_EQ(DbQty(0), Value::Int(97));
  ExpectInvariants();
}

TEST_F(GtmTest, TableTwoScenarioEndToEnd) {
  // Paper Table II: X = 100; A adds 1 and 3; B adds 2; A commits, then B;
  // final value 106.
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Add(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "X", 0, Operation::Add(Value::Int(2))).ok());
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Add(Value::Int(3))).ok());
  EXPECT_EQ(gtm_->ReadLocal(a, "X", 0).value(), Value::Int(104));
  EXPECT_EQ(gtm_->ReadLocal(b, "X", 0).value(), Value::Int(102));
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  EXPECT_EQ(DbQty(0), Value::Int(104));
  ASSERT_TRUE(gtm_->RequestCommit(b).ok());
  EXPECT_EQ(DbQty(0), Value::Int(106));
  ExpectInvariants();
}

TEST_F(GtmTest, IncompatibleInvocationWaits) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Sub(Value::Int(1))).ok());
  const Status s = gtm_->Invoke(b, "X", 0, Operation::Assign(Value::Int(5)));
  EXPECT_EQ(s.code(), StatusCode::kWaiting);
  EXPECT_EQ(gtm_->StateOf(b).value(), TxnState::kWaiting);
  EXPECT_TRUE(gtm_->TakeEvents().empty());
  ExpectInvariants();
  // a commits -> b admitted with a fresh snapshot, operation applied.
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  std::vector<GtmEvent> events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, b);
  EXPECT_EQ(gtm_->StateOf(b).value(), TxnState::kActive);
  EXPECT_EQ(gtm_->ReadLocal(b, "X", 0).value(), Value::Int(5));
  ASSERT_TRUE(gtm_->RequestCommit(b).ok());
  EXPECT_EQ(DbQty(0), Value::Int(5));
  ExpectInvariants();
}

TEST_F(GtmTest, AssignmentHolderBlocksSubtraction) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Assign(Value::Int(7))).ok());
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  ASSERT_EQ(gtm_->TakeEvents().size(), 1u);
  // b's fresh snapshot sees a's assignment.
  EXPECT_EQ(gtm_->ReadLocal(b, "X", 0).value(), Value::Int(6));
  ExpectInvariants();
}

TEST_F(GtmTest, ReadersShareWithEveryUpdateClass) {
  const TxnId w = gtm_->Begin();
  const TxnId r = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(w, "X", 0, Operation::Assign(Value::Int(5))).ok());
  // A reader is admitted alongside the assignment holder.
  ASSERT_TRUE(gtm_->Invoke(r, "X", 0, Operation::Read()).ok());
  // It sees the committed value, not the writer's private copy.
  EXPECT_EQ(gtm_->ReadLocal(r, "X", 0).value(), Value::Int(100));
  ASSERT_TRUE(gtm_->RequestCommit(w).ok());
  ASSERT_TRUE(gtm_->RequestCommit(r).ok());
  EXPECT_EQ(DbQty(0), Value::Int(5));
  ExpectInvariants();
}

TEST_F(GtmTest, IndependentMembersDoNotConflict) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  // qty and price are independent members of X by default.
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(
      gtm_->Invoke(b, "X", 1, Operation::Assign(Value::Double(12.0))).ok());
  EXPECT_EQ(gtm_->StateOf(b).value(), TxnState::kActive);
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  ASSERT_TRUE(gtm_->RequestCommit(b).ok());
  EXPECT_EQ(DbQty(0), Value::Int(99));
  EXPECT_EQ(DbPrice(0), Value::Double(12.0));
  ExpectInvariants();
}

TEST_F(GtmTest, LogicallyDependentMembersConflict) {
  semantics::LogicalDependencies deps;
  deps.AddDependency(0, 1);
  ASSERT_TRUE(
      gtm_->RegisterObject("Z", "obj", Value::Int(2), {1, 2}, deps).ok());
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "Z", 0, Operation::Sub(Value::Int(1))).ok());
  // Price assignment conflicts with the quantity subtraction through the
  // declared dependence (the paper's quantity/price example).
  EXPECT_EQ(
      gtm_->Invoke(b, "Z", 1, Operation::Assign(Value::Double(9.0))).code(),
      StatusCode::kWaiting);
  ExpectInvariants();
}

TEST_F(GtmTest, DistinctObjectsNeverInteract) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Assign(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "Y", 0, Operation::Assign(Value::Int(2))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  ASSERT_TRUE(gtm_->RequestCommit(b).ok());
  EXPECT_EQ(DbQty(0), Value::Int(1));
  EXPECT_EQ(DbQty(1), Value::Int(2));
}

TEST_F(GtmTest, FifoAdmissionAfterUnlock) {
  const TxnId holder = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(holder, "X", 0, Operation::Assign(Value::Int(1))).ok());
  const TxnId w1 = gtm_->Begin();
  const TxnId w2 = gtm_->Begin();
  const TxnId w3 = gtm_->Begin();
  EXPECT_EQ(gtm_->Invoke(w1, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  EXPECT_EQ(gtm_->Invoke(w2, "X", 0, Operation::Sub(Value::Int(2))).code(),
            StatusCode::kWaiting);
  EXPECT_EQ(gtm_->Invoke(w3, "X", 0, Operation::Assign(Value::Int(9))).code(),
            StatusCode::kWaiting);
  ASSERT_TRUE(gtm_->RequestCommit(holder).ok());
  // The two compatible subtractors are admitted together; the assignment
  // stays queued behind them (FIFO).
  std::vector<GtmEvent> events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].txn, w1);
  EXPECT_EQ(events[1].txn, w2);
  EXPECT_EQ(gtm_->StateOf(w3).value(), TxnState::kWaiting);
  ASSERT_TRUE(gtm_->RequestCommit(w1).ok());
  EXPECT_TRUE(gtm_->TakeEvents().empty());  // w2 still pending.
  ASSERT_TRUE(gtm_->RequestCommit(w2).ok());
  events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, w3);
  ASSERT_TRUE(gtm_->RequestCommit(w3).ok());
  EXPECT_EQ(DbQty(0), Value::Int(9));
  ExpectInvariants();
}

TEST_F(GtmTest, AbortDiscardsCopiesAndAdmitsWaiters) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Assign(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  ASSERT_TRUE(gtm_->RequestAbort(a).ok());
  EXPECT_EQ(gtm_->StateOf(a).value(), TxnState::kAborted);
  EXPECT_EQ(DbQty(0), Value::Int(100));  // Nothing leaked to the LDBS.
  std::vector<GtmEvent> events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, b);
  EXPECT_EQ(gtm_->ReadLocal(b, "X", 0).value(), Value::Int(99));
  ExpectInvariants();
}

TEST_F(GtmTest, MultiObjectCommitIsAtomic) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(t, "Y", 0, Operation::Sub(Value::Int(2))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  EXPECT_EQ(DbQty(0), Value::Int(99));
  EXPECT_EQ(DbQty(1), Value::Int(98));
}

TEST_F(GtmTest, SstConstraintViolationAbortsTransaction) {
  ASSERT_TRUE(db_->AddConstraint("obj", CheckConstraint("nonneg", 1,
                                                        CompareOp::kGe,
                                                        Value::Int(0)))
                  .ok());
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(200))).ok());
  const Status s = gtm_->RequestCommit(t);
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kAborted);
  EXPECT_EQ(DbQty(0), Value::Int(100));
  EXPECT_EQ(gtm_->metrics().counters().constraint_aborts, 1);
  ExpectInvariants();
}

TEST_F(GtmTest, ConcurrentSubtractorsCanOverdraw) {
  // The paper's Sec. VII problem 2: both subtractors are compatible, but
  // together they violate the constraint; the later committer aborts at
  // SST time.
  ASSERT_TRUE(db_->AddConstraint("obj", CheckConstraint("nonneg", 1,
                                                        CompareOp::kGe,
                                                        Value::Int(0)))
                  .ok());
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Sub(Value::Int(60))).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(60))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  EXPECT_EQ(gtm_->RequestCommit(b).code(), StatusCode::kAborted);
  EXPECT_EQ(DbQty(0), Value::Int(40));
  ExpectInvariants();
}

TEST_F(GtmTest, UpgradeReadToMutation) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Read()).ok());
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(5))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  EXPECT_EQ(DbQty(0), Value::Int(95));
}

TEST_F(GtmTest, UpgradeBlockedByIncompatibleHolder) {
  const TxnId holder = gtm_->Begin();
  const TxnId reader = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(holder, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(reader, "X", 0, Operation::Read()).ok());
  // Upgrading the read to an assignment conflicts with the subtractor.
  EXPECT_EQ(
      gtm_->Invoke(reader, "X", 0, Operation::Assign(Value::Int(1))).code(),
      StatusCode::kConflict);
  EXPECT_EQ(gtm_->StateOf(reader).value(), TxnState::kActive);
  ExpectInvariants();
}

TEST_F(GtmTest, MixingMutationClassesOnOneMemberRejected) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->Invoke(t, "X", 0, Operation::Mul(Value::Int(2))).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(GtmTest, MulDivSharingReconciles) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  // Price member (1) holds 10.0.
  ASSERT_TRUE(gtm_->Invoke(a, "X", 1, Operation::Mul(Value::Int(2))).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "X", 1, Operation::Div(Value::Int(4))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  ASSERT_TRUE(gtm_->RequestCommit(b).ok());
  ASSERT_TRUE(DbPrice(0).is_numeric());
  EXPECT_NEAR(DbPrice(0).ToDouble().value(), 5.0, 1e-9);
  ExpectInvariants();
}

TEST_F(GtmTest, CommitRequiresActiveState) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Assign(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  // Paper constraint (iii): a waiting transaction cannot commit.
  EXPECT_EQ(gtm_->RequestCommit(b).code(), StatusCode::kFailedPrecondition);
  // Terminal transactions cannot do anything.
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  EXPECT_EQ(gtm_->RequestCommit(a).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(gtm_->Invoke(a, "X", 0, Operation::Read()).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(GtmTest, ReadOnlyCommitWritesNothing) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Read()).ok());
  const int64_t before = gtm_->sst().counters().cells_written;
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  EXPECT_EQ(gtm_->sst().counters().cells_written, before);
  EXPECT_EQ(DbQty(0), Value::Int(100));
}

TEST_F(GtmTest, UnknownObjectAndMemberRejected) {
  const TxnId t = gtm_->Begin();
  EXPECT_EQ(gtm_->Invoke(t, "NOPE", 0, Operation::Read()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(gtm_->Invoke(t, "X", 9, Operation::Read()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GtmTest, RegisterObjectValidation) {
  EXPECT_EQ(gtm_->RegisterObject("X", "obj", Value::Int(0), {1}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(
      gtm_->RegisterObject("W", "nope", Value::Int(0), {1}).code(),
      StatusCode::kNotFound);
  EXPECT_EQ(gtm_->RegisterObject("W", "obj", Value::Int(0), {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(gtm_->RegisterObject("W", "obj", Value::Int(0), {99}).code(),
            StatusCode::kInvalidArgument);
  // Row must exist so X_permanent can be cached.
  EXPECT_EQ(gtm_->RegisterObject("W", "obj", Value::Int(77), {1}).code(),
            StatusCode::kNotFound);
}

TEST_F(GtmTest, RegisterRowObjectBindsNonPkColumns) {
  ASSERT_TRUE(gtm_->RegisterRowObject("R", "obj", Value::Int(2)).ok());
  const ObjectState* obj = gtm_->GetObject("R").value();
  EXPECT_EQ(obj->num_members(), 2u);  // qty + price, not id.
  EXPECT_EQ(gtm_->PermanentValue("R", 0).value(), Value::Int(100));
}

TEST_F(GtmTest, RefreshPermanentRebindsAfterExternalWrite) {
  // A bulk update bypasses the GTM...
  ASSERT_TRUE(db_->UpdateRow("obj", Value::Int(0),
                             Row({Value::Int(0), Value::Int(777),
                                  Value::Double(10.0)}))
                  .ok());
  // ...the cache is stale until the rebind.
  EXPECT_EQ(gtm_->PermanentValue("X", 0).value(), Value::Int(100));
  ASSERT_TRUE(gtm_->RefreshPermanent("X").ok());
  EXPECT_EQ(gtm_->PermanentValue("X", 0).value(), Value::Int(777));
  // Transactions now snapshot the refreshed value.
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(7))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  EXPECT_EQ(DbQty(0), Value::Int(770));
}

TEST_F(GtmTest, RefreshPermanentRequiresQuiescence) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->RefreshPermanent("X").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(gtm_->RefreshPermanent("NOPE").code(), StatusCode::kNotFound);
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  EXPECT_TRUE(gtm_->RefreshPermanent("X").ok());
}

TEST_F(GtmTest, DeadlockRefusedAcrossTwoObjects) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Assign(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "Y", 0, Operation::Assign(Value::Int(2))).ok());
  EXPECT_EQ(gtm_->Invoke(a, "Y", 0, Operation::Assign(Value::Int(3))).code(),
            StatusCode::kWaiting);
  // b requesting X closes the cycle: refused, b stays Active.
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Assign(Value::Int(4))).code(),
            StatusCode::kDeadlock);
  EXPECT_EQ(gtm_->StateOf(b).value(), TxnState::kActive);
  EXPECT_EQ(gtm_->metrics().counters().deadlock_refusals, 1);
  // b aborts; a's wait on Y resolves.
  ASSERT_TRUE(gtm_->RequestAbort(b).ok());
  std::vector<GtmEvent> events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, a);
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  ExpectInvariants();
}

TEST_F(GtmTest, AbortExpiredWaitsTimesOutWaiters) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Assign(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  clock_.Advance(5.0);
  EXPECT_TRUE(gtm_->AbortExpiredWaits(10.0).empty());
  clock_.Advance(6.0);
  std::vector<TxnId> victims = gtm_->AbortExpiredWaits(10.0);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], b);
  EXPECT_EQ(gtm_->StateOf(b).value(), TxnState::kAborted);
  EXPECT_EQ(gtm_->metrics().counters().timeout_aborts, 1);
  ExpectInvariants();
}

TEST_F(GtmTest, ReadLocalQueuesBehindIncompatibleHolder) {
  const TxnId holder = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(holder, "X", 0, Operation::Delete()).ok());
  const TxnId reader = gtm_->Begin();
  // Delete shares with nothing, so even a read must queue.
  Result<Value> r = gtm_->ReadLocal(reader, "X", 0);
  EXPECT_EQ(r.status().code(), StatusCode::kWaiting);
  ASSERT_TRUE(gtm_->RequestAbort(holder).ok());
  ASSERT_EQ(gtm_->TakeEvents().size(), 1u);
  EXPECT_EQ(gtm_->ReadLocal(reader, "X", 0).value(), Value::Int(100));
  ExpectInvariants();
}

TEST_F(GtmTest, DeleteClassNullsTheMemberAtCommit) {
  // Register an object over the nullable-friendly price column? The schema
  // forbids NULL here, so the SST must reject the delete and abort.
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Delete()).ok());
  EXPECT_TRUE(gtm_->ReadLocal(t, "X", 0).value().is_null());
  const Status s = gtm_->RequestCommit(t);
  EXPECT_EQ(s.code(), StatusCode::kAborted);  // qty is NOT NULL.
  EXPECT_EQ(DbQty(0), Value::Int(100));
  ExpectInvariants();
}

TEST_F(GtmTest, InsertClassCreatesMemberValueFromNull) {
  // A nullable column models a member that can be absent.
  Result<storage::Schema> schema = storage::Schema::Create(
      {
          storage::ColumnDef{"id", storage::ValueType::kInt64, false},
          storage::ColumnDef{"note", storage::ValueType::kString, true},
      },
      0);
  ASSERT_TRUE(db_->CreateTable("n", std::move(schema).value()).ok());
  ASSERT_TRUE(
      db_->InsertRow("n", Row({Value::Int(0), Value::Null()})).ok());
  ASSERT_TRUE(gtm_->RegisterObject("N", "n", Value::Int(0), {1}).ok());
  const TxnId t = gtm_->Begin();
  // The member is absent: only insert is a legal first operation.
  EXPECT_FALSE(gtm_->Invoke(t, "N", 0, Operation::Read()).ok());
  ASSERT_TRUE(
      gtm_->Invoke(t, "N", 0, Operation::Insert(Value::String("hi"))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  EXPECT_EQ(db_->GetTable("n").value()->GetColumnByKey(Value::Int(0), 1)
                .value(),
            Value::String("hi"));
  // Now present: delete nulls it out again (nullable, so the SST accepts).
  const TxnId d = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(d, "N", 0, Operation::Delete()).ok());
  ASSERT_TRUE(gtm_->RequestCommit(d).ok());
  EXPECT_TRUE(db_->GetTable("n").value()->GetColumnByKey(Value::Int(0), 1)
                  .value()
                  .is_null());
  ExpectInvariants();
}

TEST_F(GtmTest, MetricsTrackLatencies) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Advance(2.0);
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  ASSERT_EQ(gtm_->metrics().execution_time().count(), 1);
  EXPECT_DOUBLE_EQ(gtm_->metrics().execution_time().mean(), 2.0);
}

TEST_F(GtmTest, IntrospectionListsStatesAndLiveCount) {
  const TxnId active = gtm_->Begin();
  const TxnId waiter = gtm_->Begin();
  const TxnId sleeper = gtm_->Begin();
  const TxnId done = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(active, "X", 0, Operation::Assign(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->Invoke(waiter, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  ASSERT_TRUE(
      gtm_->Invoke(sleeper, "Y", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Sleep(sleeper).ok());
  ASSERT_TRUE(gtm_->RequestCommit(done).ok());  // Empty txn commits.
  EXPECT_EQ(gtm_->TransactionsInState(TxnState::kActive),
            (std::vector<TxnId>{active}));
  EXPECT_EQ(gtm_->TransactionsInState(TxnState::kWaiting),
            (std::vector<TxnId>{waiter}));
  EXPECT_EQ(gtm_->TransactionsInState(TxnState::kSleeping),
            (std::vector<TxnId>{sleeper}));
  EXPECT_EQ(gtm_->TransactionsInState(TxnState::kCommitted),
            (std::vector<TxnId>{done}));
  EXPECT_EQ(gtm_->live_transaction_count(), 3u);
}

TEST_F(GtmTest, WaitTimeMeasured) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Assign(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  clock_.Advance(3.0);
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  ASSERT_EQ(gtm_->metrics().wait_time().count(), 1);
  EXPECT_DOUBLE_EQ(gtm_->metrics().wait_time().mean(), 3.0);
  const ManagedTxn* mt = gtm_->GetTxn(b);
  ASSERT_NE(mt, nullptr);
  EXPECT_DOUBLE_EQ(mt->total_wait_time, 3.0);
}

}  // namespace
}  // namespace preserial::gtm
