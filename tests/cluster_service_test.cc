// ClusterService under real threads: workers hammer their home shards with
// single-shard commits and occasionally book cross-shard pairs through the
// embedded coordinator. Per-shard locking must keep every shard's Gtm
// single-threaded inside its lock (TSan verifies this leg in CI), and the
// per-shard conservation equation must come out exact after the join.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/service.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"
#include "semantics/operation.h"
#include "storage/wal.h"

namespace preserial::cluster {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr char kTable[] = "resources";
constexpr size_t kShards = 3;
constexpr size_t kObjects = 24;
constexpr int64_t kInitialQty = 1000000;

gtm::ObjectId ObjectIdFor(size_t i) { return StrFormat("%s/%zu", kTable, i); }

class ClusterServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<GtmCluster>(kShards, &clock_);
    Result<Schema> schema = Schema::Create(
        {
            ColumnDef{"id", ValueType::kInt64, false},
            ColumnDef{"qty", ValueType::kInt64, false},
        },
        /*primary_key=*/0);
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(
        cluster_->CreateTableAllShards(kTable, std::move(schema).value()).ok());
    for (size_t i = 0; i < kObjects; ++i) {
      const gtm::ObjectId oid = ObjectIdFor(i);
      const Value key = Value::Int(static_cast<int64_t>(i));
      ASSERT_TRUE(
          cluster_->db(cluster_->ShardOf(oid))
              ->InsertRow(kTable, Row({key, Value::Int(kInitialQty)}))
              .ok());
      ASSERT_TRUE(cluster_->RegisterObject(oid, kTable, key, {1}).ok());
      objects_by_shard_[cluster_->ShardOf(oid)].push_back(oid);
    }
    for (size_t s = 0; s < kShards; ++s) {
      ASSERT_FALSE(objects_by_shard_[s].empty()) << "shard " << s;
    }
    service_ = std::make_unique<ClusterService>(cluster_.get(), &wal_);
  }

  int64_t ConsumedOnShard(ShardId shard) const {
    int64_t consumed = 0;
    for (size_t i = 0; i < kObjects; ++i) {
      const gtm::ObjectId oid = ObjectIdFor(i);
      if (cluster_->ShardOf(oid) != shard) continue;
      Result<Value> qty =
          cluster_->db(shard)->GetTable(kTable).value()->GetColumnByKey(
              Value::Int(static_cast<int64_t>(i)), 1);
      EXPECT_TRUE(qty.ok());
      consumed += kInitialQty - qty.value().as_int();
    }
    return consumed;
  }

  ManualClock clock_;
  std::unique_ptr<GtmCluster> cluster_;
  storage::MemoryWalStorage wal_;
  std::unique_ptr<ClusterService> service_;
  std::vector<gtm::ObjectId> objects_by_shard_[kShards];
};

TEST_F(ClusterServiceTest, ConcurrentWorkersConserveQuantityPerShard) {
  constexpr int kWorkers = 4;
  constexpr int kItersPerWorker = 400;
  constexpr double kCrossRatio = 0.15;

  // booked[w][s]: units worker w committed on shard s (thread-private
  // until the join, so no synchronization needed).
  std::vector<std::vector<int64_t>> booked(kWorkers,
                                           std::vector<int64_t>(kShards, 0));
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([this, w, &booked] {
      Rng rng(1000 + w);
      const ShardId home = static_cast<ShardId>(w) % kShards;
      for (int iter = 0; iter < kItersPerWorker; ++iter) {
        const gtm::ObjectId& oid = objects_by_shard_[home][rng.NextBounded(
            objects_by_shard_[home].size())];
        const TxnId branch = service_->Begin(home);
        Status s = service_->Invoke(home, branch, oid, 0,
                                    Operation::Sub(Value::Int(1)));
        PRESERIAL_CHECK(s.ok()) << s.ToString();
        if (rng.NextBool(kCrossRatio)) {
          // Book a matching unit on the next shard and commit both
          // atomically through the coordinator.
          const ShardId other = (home + 1) % kShards;
          const gtm::ObjectId& oid2 = objects_by_shard_[other][rng.NextBounded(
              objects_by_shard_[other].size())];
          const TxnId branch2 = service_->Begin(other);
          s = service_->Invoke(other, branch2, oid2, 0,
                               Operation::Sub(Value::Int(1)));
          PRESERIAL_CHECK(s.ok()) << s.ToString();
          s = service_->CommitGlobal({{home, branch}, {other, branch2}});
          PRESERIAL_CHECK(s.ok()) << s.ToString();
          ++booked[w][home];
          ++booked[w][other];
        } else {
          s = service_->RequestCommit(home, branch);
          PRESERIAL_CHECK(s.ok()) << s.ToString();
          ++booked[w][home];
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();

  int64_t total_booked = 0;
  for (ShardId s = 0; s < kShards; ++s) {
    int64_t booked_here = 0;
    for (int w = 0; w < kWorkers; ++w) booked_here += booked[w][s];
    EXPECT_EQ(ConsumedOnShard(s), booked_here) << "shard " << s;
    total_booked += booked_here;
  }

  // Cross-checks against the shard metrics and the coordinator's tally.
  const gtm::GtmMetrics::Snapshot agg = cluster_->AggregateSnapshot();
  EXPECT_EQ(agg.counters.committed, total_booked);
  EXPECT_GT(service_->coordinator().counters().commits, 0);
  EXPECT_EQ(service_->coordinator().counters().aborts, 0);
}

TEST_F(ClusterServiceTest, ThreadedAbortsLeaveNoResidue) {
  constexpr int kWorkers = 3;
  constexpr int kItersPerWorker = 200;

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([this, w] {
      Rng rng(77 + w);
      const ShardId home = static_cast<ShardId>(w) % kShards;
      for (int iter = 0; iter < kItersPerWorker; ++iter) {
        const gtm::ObjectId& oid = objects_by_shard_[home][rng.NextBounded(
            objects_by_shard_[home].size())];
        const TxnId branch = service_->Begin(home);
        PRESERIAL_CHECK(service_
                            ->Invoke(home, branch, oid, 0,
                                     Operation::Sub(Value::Int(1)))
                            .ok());
        PRESERIAL_CHECK(service_->RequestAbort(home, branch).ok());
      }
    });
  }
  for (std::thread& t : workers) t.join();

  for (ShardId s = 0; s < kShards; ++s) {
    EXPECT_EQ(ConsumedOnShard(s), 0) << "shard " << s;
  }
  EXPECT_EQ(cluster_->AggregateSnapshot().counters.committed, 0);
}

}  // namespace
}  // namespace preserial::cluster
