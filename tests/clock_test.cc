#include "common/clock.h"

#include <gtest/gtest.h>

namespace preserial {
namespace {

TEST(ManualClockTest, StartsAtGivenTime) {
  ManualClock c(5.0);
  EXPECT_DOUBLE_EQ(c.Now(), 5.0);
}

TEST(ManualClockTest, AdvanceAndSet) {
  ManualClock c;
  EXPECT_DOUBLE_EQ(c.Now(), 0.0);
  c.Advance(2.5);
  EXPECT_DOUBLE_EQ(c.Now(), 2.5);
  c.Set(10.0);
  EXPECT_DOUBLE_EQ(c.Now(), 10.0);
}

TEST(ManualClockTest, UsableThroughBaseInterface) {
  ManualClock c(1.0);
  const Clock* base = &c;
  EXPECT_DOUBLE_EQ(base->Now(), 1.0);
}

TEST(SystemClockTest, MonotonicNonNegative) {
  SystemClock c;
  const TimePoint a = c.Now();
  const TimePoint b = c.Now();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace preserial
