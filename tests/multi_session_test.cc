// Multi-step long running transactions (the paper's package tours) through
// both engines' simulated sessions, plus the tour-workload experiment
// wrappers.

#include "mobile/multi_session.h"

#include <memory>

#include <gtest/gtest.h>

#include "storage/database.h"
#include "workload/runner.h"
#include "workload/travel_agency.h"

namespace preserial::mobile {
namespace {

using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;
using workload::GtmRunner;
using workload::RunStats;
using workload::TwoPlRunner;

std::unique_ptr<storage::Database> MakeDb(int64_t rows, int64_t qty) {
  auto db = std::make_unique<storage::Database>();
  EXPECT_TRUE(db->Open().ok());
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"qty", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  EXPECT_TRUE(db->CreateTable("t", std::move(schema)).ok());
  for (int64_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(db->InsertRow("t", Row({Value::Int(i), Value::Int(qty)})).ok());
  }
  return db;
}

Value Qty(storage::Database* db, int64_t id) {
  return db->GetTable("t").value()->GetColumnByKey(Value::Int(id), 1).value();
}

TourStep Step(const gtm::ObjectId& object, Duration think) {
  TourStep s;
  s.object = object;
  s.op = semantics::Operation::Sub(Value::Int(1));
  s.think_time = think;
  return s;
}

TEST(MultiGtmSessionTest, BooksEveryStopAndCommits) {
  auto db = MakeDb(3, 10);
  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  for (int64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(gtm.RegisterObject("o" + std::to_string(i), "t",
                                   Value::Int(i), {1})
                    .ok());
  }
  GtmRunner runner(&gtm, &simulator);

  MultiTxnPlan plan;
  plan.steps = {Step("o0", 1.0), Step("o1", 1.0), Step("o2", 1.0)};
  plan.final_think = 2.0;
  runner.AddMultiSession(plan, 0.0);
  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 1);
  // Steps are instantaneous; latency = 3 thinks + final think.
  EXPECT_DOUBLE_EQ(stats.latency_committed.mean(), 5.0);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(Qty(db.get(), i), Value::Int(9)) << i;
  }
}

TEST(MultiGtmSessionTest, QueuedStepResumesOnGrant) {
  auto db = MakeDb(1, 10);
  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  ASSERT_TRUE(gtm.RegisterObject("o0", "t", Value::Int(0), {1}).ok());
  GtmRunner runner(&gtm, &simulator);

  // An assignment holder blocks the tour's first step for 4 s.
  TxnPlan holder;
  holder.object = "o0";
  holder.op = semantics::Operation::Assign(Value::Int(50));
  holder.work_time = 4.0;
  runner.AddSession(holder, 0.0);

  MultiTxnPlan tour;
  tour.steps = {Step("o0", 1.0)};
  tour.final_think = 0.0;
  runner.AddMultiSession(tour, 1.0);

  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 2);
  // Tour: queued from t=1 to t=4, step granted, think 1 -> commit at 5.
  EXPECT_EQ(Qty(db.get(), 0), Value::Int(49));
}

TEST(MultiGtmSessionTest, DisconnectionMidTourResumesAndCommits) {
  auto db = MakeDb(2, 10);
  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  ASSERT_TRUE(gtm.RegisterObject("o0", "t", Value::Int(0), {1}).ok());
  ASSERT_TRUE(gtm.RegisterObject("o1", "t", Value::Int(1), {1}).ok());
  GtmRunner runner(&gtm, &simulator);

  MultiTxnPlan tour;
  tour.steps = {Step("o0", 2.0), Step("o1", 2.0)};
  tour.final_think = 1.0;
  tour.disconnect.disconnects = true;
  tour.disconnect.offset = 1.0;   // Mid-think after the first booking.
  tour.disconnect.duration = 10.0;
  runner.AddMultiSession(tour, 0.0);
  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 1);
  EXPECT_EQ(stats.disconnected, 1);
  EXPECT_EQ(Qty(db.get(), 0), Value::Int(9));
  EXPECT_EQ(Qty(db.get(), 1), Value::Int(9));
  // The awake happened at t=11; remaining timeline ran from there.
  EXPECT_GE(stats.latency_committed.mean(), 11.0);
}

TEST(MultiGtmSessionTest, SleeperAbortedByIncompatibleCommitMidTour) {
  auto db = MakeDb(2, 10);
  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  ASSERT_TRUE(gtm.RegisterObject("o0", "t", Value::Int(0), {1}).ok());
  ASSERT_TRUE(gtm.RegisterObject("o1", "t", Value::Int(1), {1}).ok());
  GtmRunner runner(&gtm, &simulator);

  MultiTxnPlan tour;
  tour.steps = {Step("o0", 2.0), Step("o1", 2.0)};
  tour.disconnect.disconnects = true;
  tour.disconnect.offset = 1.0;
  tour.disconnect.duration = 10.0;
  runner.AddMultiSession(tour, 0.0);

  // An admin assignment on the already-booked stop commits during the sleep.
  TxnPlan admin;
  admin.object = "o0";
  admin.op = semantics::Operation::Assign(Value::Int(99));
  admin.work_time = 1.0;
  runner.AddSession(admin, 3.0);

  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.aborts_by_cause.count(AbortCause::kAwakeConflict), 1u);
  // The tour's first booking rolled back: only the admin's write remains.
  EXPECT_EQ(Qty(db.get(), 0), Value::Int(99));
  EXPECT_EQ(Qty(db.get(), 1), Value::Int(10));
}

TEST(MultiTwoPlSessionTest, ToursSerializeOnSharedStops) {
  auto db = MakeDb(2, 10);
  sim::Simulator simulator;
  txn::TwoPhaseLockingEngine engine(db.get(), simulator.clock());
  TwoPlRunner runner(&engine, &simulator);

  auto make_plan = [](Duration think) {
    MultiTwoPlPlan plan;
    for (int64_t i = 0; i < 2; ++i) {
      TwoPlTourStep step;
      step.table = "t";
      step.key = Value::Int(i);
      step.column = 1;
      step.is_subtract = true;
      step.think_time = think;
      plan.steps.push_back(step);
    }
    plan.final_think = 1.0;
    return plan;
  };
  runner.AddMultiSession(make_plan(2.0), 0.0);
  runner.AddMultiSession(make_plan(2.0), 1.0);
  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 2);
  EXPECT_EQ(Qty(db.get(), 0), Value::Int(8));
  EXPECT_EQ(Qty(db.get(), 1), Value::Int(8));
  // Tour 1 holds the lock on o0 from t=0 to its commit at t=5; tour 2
  // arrives at t=1 and can only finish after.
  EXPECT_GT(stats.latency_all.Percentile(1.0), 5.0);
}

TEST(MultiTwoPlSessionTest, DisconnectedHolderKilledByIdleTimeout) {
  auto db = MakeDb(1, 10);
  sim::Simulator simulator;
  txn::TwoPhaseLockingEngine engine(db.get(), simulator.clock());
  TwoPlRunner runner(&engine, &simulator);

  MultiTwoPlPlan plan;
  TwoPlTourStep step;
  step.table = "t";
  step.key = Value::Int(0);
  step.column = 1;
  step.is_subtract = true;
  step.think_time = 5.0;
  plan.steps.push_back(step);
  plan.disconnect.disconnects = true;
  plan.disconnect.offset = 1.0;
  plan.disconnect.duration = 100.0;
  plan.idle_timeout = 10.0;
  runner.AddMultiSession(plan, 0.0);
  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.aborted, 1);
  EXPECT_EQ(stats.aborts_by_cause.at(AbortCause::kDisconnectTimeout), 1);
  EXPECT_EQ(Qty(db.get(), 0), Value::Int(10));  // Undo restored the seat.
}

TEST(MultiTwoPlSessionTest, ReconnectResumesPendingProgress) {
  auto db = MakeDb(2, 10);
  sim::Simulator simulator;
  txn::TwoPhaseLockingEngine engine(db.get(), simulator.clock());
  TwoPlRunner runner(&engine, &simulator);

  MultiTwoPlPlan plan;
  for (int64_t i = 0; i < 2; ++i) {
    TwoPlTourStep step;
    step.table = "t";
    step.key = Value::Int(i);
    step.column = 1;
    step.is_subtract = true;
    step.think_time = 2.0;
    plan.steps.push_back(step);
  }
  plan.final_think = 1.0;
  plan.disconnect.disconnects = true;
  plan.disconnect.offset = 1.0;  // Mid-think after step 0.
  plan.disconnect.duration = 8.0;  // Comes back; generous idle timeout.
  runner.AddMultiSession(plan, 0.0);
  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 1);
  EXPECT_EQ(Qty(db.get(), 0), Value::Int(9));
  EXPECT_EQ(Qty(db.get(), 1), Value::Int(9));
  EXPECT_GE(stats.latency_committed.mean(), 9.0);
}

}  // namespace
}  // namespace preserial::mobile

namespace preserial::workload {
namespace {

TourWorkloadSpec AmpleInventorySpec() {
  TourWorkloadSpec spec;
  // Plenty of everything: isolate concurrency effects from stock-outs
  // (inventory exhaustion is exercised separately below).
  spec.agency.seats_per_flight = 1000;
  spec.agency.rooms_per_hotel = 1000;
  spec.agency.tickets_per_museum = 1000;
  spec.agency.cars_per_depot = 1000;
  return spec;
}

TEST(TourExperimentTest, GtmToursShareAndCommit) {
  TourWorkloadSpec spec = AmpleInventorySpec();
  spec.num_tours = 100;
  spec.interarrival = 0.5;
  spec.think_time = 1.0;
  spec.final_think = 1.0;
  spec.beta = 0.0;
  spec.seed = 5;
  const TourResult r = RunGtmTourExperiment(spec);
  EXPECT_EQ(r.run.committed, 100);
  EXPECT_EQ(r.run.aborted, 0);
  EXPECT_EQ(r.waits, 0);  // All bookings are compatible subtractions.
  // Latency is exactly the tour's own timeline.
  EXPECT_DOUBLE_EQ(r.run.AvgLatency(), 5.0);
}

TEST(TourExperimentTest, TwoPlToursPayLockWaits) {
  TourWorkloadSpec spec = AmpleInventorySpec();
  spec.num_tours = 100;
  spec.interarrival = 0.5;
  spec.think_time = 1.0;
  spec.final_think = 1.0;
  spec.beta = 0.0;
  spec.seed = 5;
  const TourResult gtm_r = RunGtmTourExperiment(spec);
  const TourResult tpl_r = RunTwoPlTourExperiment(spec);
  EXPECT_GT(tpl_r.waits, 0);
  EXPECT_GT(tpl_r.run.AvgLatency(), gtm_r.run.AvgLatency());
  EXPECT_EQ(tpl_r.run.committed + tpl_r.run.aborted, 100);
}

TEST(TourExperimentTest, DisconnectionsDivergeTheEngines) {
  TourWorkloadSpec spec = AmpleInventorySpec();
  spec.num_tours = 150;
  spec.beta = 0.3;
  spec.disconnect_mean = 15.0;
  spec.seed = 9;
  const TourResult gtm_r = RunGtmTourExperiment(spec);
  const TourResult tpl_r =
      RunTwoPlTourExperiment(spec, /*lock_wait_timeout=*/20.0,
                             /*idle_timeout=*/8.0);
  // All GTM tours survive (bookings are mutually compatible).
  EXPECT_EQ(gtm_r.run.aborted, 0);
  EXPECT_GT(tpl_r.run.aborted, 0);
}

TEST(TourExperimentTest, ScarceInventoryAbortsAtSst) {
  TourWorkloadSpec spec;  // Default stock: 6 depots x 20 cars = 120 cars.
  spec.num_tours = 200;   // More tours than cars.
  spec.beta = 0.0;
  spec.seed = 3;
  const TourResult r = RunGtmTourExperiment(spec);
  // Nobody oversells: committed tours cannot exceed the car stock, and the
  // rest die on the CHECK constraint at SST time.
  EXPECT_LE(r.run.committed,
            static_cast<int64_t>(spec.agency.num_cars) *
                spec.agency.cars_per_depot);
  EXPECT_GT(r.run.aborted, 0);
  EXPECT_EQ(r.run.committed + r.run.aborted, 200);
}

TEST(TourExperimentTest, DeterministicForSeed) {
  TourWorkloadSpec spec = AmpleInventorySpec();
  spec.num_tours = 80;
  spec.beta = 0.2;
  const TourResult a = RunGtmTourExperiment(spec);
  const TourResult b = RunGtmTourExperiment(spec);
  EXPECT_EQ(a.run.committed, b.run.committed);
  EXPECT_DOUBLE_EQ(a.run.AvgLatency(), b.run.AvgLatency());
}

}  // namespace
}  // namespace preserial::workload
