// Causal-timeline reconstruction: stitching one global transaction's
// events back together from the merged client / router / shard / replica
// streams via the trace ids the span layer stamped.

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/coordinator.h"
#include "cluster/router.h"
#include "common/clock.h"
#include "common/strings.h"
#include "obs/export.h"
#include "obs/timeline.h"
#include "obs/trace_context.h"
#include "storage/wal.h"
#include "workload/gtm_experiment.h"

namespace preserial::obs {
namespace {

using gtm::TraceEvent;
using gtm::TraceEventKind;
using gtm::TraceLog;
using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

TraceEvent Event(double time, TraceEventKind kind, TxnId txn,
                 uint64_t trace) {
  TraceEvent e;
  e.time = time;
  e.kind = kind;
  e.txn = txn;
  e.trace = trace;
  return e;
}

TEST(TimelineTest, BuildTimelineFiltersByTraceAndKeepsOrder) {
  std::vector<TraceEvent> merged = {
      Event(1.0, TraceEventKind::kBegin, 1, 100),
      Event(1.5, TraceEventKind::kBegin, 2, 200),
      Event(2.0, TraceEventKind::kGrant, 1, 100),
      Event(3.0, TraceEventKind::kCommit, 1, 100),
  };
  const Timeline tl = BuildTimeline(merged, 100);
  EXPECT_EQ(tl.trace, 100u);
  ASSERT_EQ(tl.events.size(), 3u);
  EXPECT_EQ(tl.Kinds(),
            (std::vector<TraceEventKind>{TraceEventKind::kBegin,
                                         TraceEventKind::kGrant,
                                         TraceEventKind::kCommit}));
  EXPECT_TRUE(tl.Contains(TraceEventKind::kGrant));
  EXPECT_FALSE(tl.Contains(TraceEventKind::kAbort));
}

TEST(TimelineTest, HasSequenceIsSubsequenceNotSubstring) {
  std::vector<TraceEvent> merged = {
      Event(1.0, TraceEventKind::kBegin, 1, 7),
      Event(2.0, TraceEventKind::kWait, 1, 7),
      Event(3.0, TraceEventKind::kGrant, 1, 7),
      Event(4.0, TraceEventKind::kSleep, 1, 7),
      Event(5.0, TraceEventKind::kAwake, 1, 7),
      Event(6.0, TraceEventKind::kCommit, 1, 7),
  };
  const Timeline tl = BuildTimeline(merged, 7);
  // Gaps are fine: a subsequence, not a contiguous run.
  EXPECT_TRUE(tl.HasSequence({TraceEventKind::kBegin, TraceEventKind::kSleep,
                              TraceEventKind::kCommit}));
  EXPECT_TRUE(tl.HasSequence({}));
  // Order matters.
  EXPECT_FALSE(tl.HasSequence(
      {TraceEventKind::kAwake, TraceEventKind::kSleep}));
  EXPECT_FALSE(tl.HasSequence({TraceEventKind::kAbort}));
}

TEST(TimelineTest, TraceOfTxnReturnsFirstTracedOccurrence) {
  std::vector<TraceEvent> merged = {
      Event(1.0, TraceEventKind::kBegin, 5, 0),    // Untraced: skipped.
      Event(2.0, TraceEventKind::kGrant, 5, 41),   // First traced: wins.
      Event(3.0, TraceEventKind::kCommit, 5, 42),  // Id reuse: ignored.
  };
  EXPECT_EQ(TraceOfTxn(merged, 5), 41u);
  EXPECT_EQ(TraceOfTxn(merged, 6), 0u);
}

// Acceptance: one global transaction's full causal timeline — client send,
// branch fan-out, grant, retry, cluster-wide sleep and awake, two-phase
// prepare/commit — reconstructed from the exported spans of four separate
// logs (client lane, router lane, two shard lanes).
TEST(TimelineTest, ReconstructsCrossShardSleepAwakeTwoPcTimeline) {
  ManualClock clock;
  cluster::GtmCluster cluster(2, &clock);
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"qty", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  ASSERT_TRUE(cluster.CreateTableAllShards("t", std::move(schema)).ok());
  gtm::ObjectId on_shard0, on_shard1;
  for (int i = 0; i < 16 && (on_shard0.empty() || on_shard1.empty()); ++i) {
    const gtm::ObjectId oid = StrFormat("t/%d", i);
    const Value key = Value::Int(i);
    ASSERT_TRUE(cluster.db(cluster.ShardOf(oid))
                    ->InsertRow("t", Row({key, Value::Int(100)}))
                    .ok());
    ASSERT_TRUE(cluster.RegisterObject(oid, "t", key, {1}).ok());
    (cluster.ShardOf(oid) == 0 ? on_shard0 : on_shard1) = oid;
  }
  ASSERT_FALSE(on_shard0.empty());
  ASSERT_FALSE(on_shard1.empty());

  storage::MemoryWalStorage wal;
  cluster::ClusterCoordinator coordinator(&cluster, &wal);
  cluster::GtmRouter router(&cluster, &coordinator, &clock);
  coordinator.EnableTracing(router.trace(), &clock);
  router.trace()->Enable(64);
  cluster.shard(0)->trace()->Enable(64);
  cluster.shard(1)->trace()->Enable(64);
  TraceLog client;  // The session layer's lane, driven by hand here.
  client.Enable(64);

  const TraceContext ctx = NewRootContext();
  TxnId global = kInvalidTxnId;
  {
    SpanScope span(ChildOf(ctx));
    global = router.Begin();
  }
  clock.Advance(1.0);
  {
    SpanScope span(ChildOf(ctx));
    client.Record(clock.Now(), TraceEventKind::kClientSend, global, "",
                  "invoke");
    ASSERT_TRUE(
        router.Invoke(global, on_shard0, 0, Operation::Sub(Value::Int(1)))
            .ok());
  }
  clock.Advance(1.0);
  {
    // The first attempt's reply was lost; the transport resends.
    SpanScope span(ChildOf(ctx));
    client.Record(clock.Now(), TraceEventKind::kClientRetry, global, "",
                  "attempt=2");
  }
  clock.Advance(1.0);
  {
    SpanScope span(ChildOf(ctx));
    client.Record(clock.Now(), TraceEventKind::kClientSend, global, "",
                  "invoke");
    ASSERT_TRUE(
        router.Invoke(global, on_shard1, 0, Operation::Sub(Value::Int(1)))
            .ok());
  }
  clock.Advance(1.0);
  {
    SpanScope span(ChildOf(ctx));
    ASSERT_TRUE(router.Sleep(global).ok());
  }
  clock.Advance(5.0);
  {
    SpanScope span(ChildOf(ctx));
    ASSERT_TRUE(router.Awake(global).ok());
  }
  clock.Advance(1.0);
  {
    SpanScope span(ChildOf(ctx));
    ASSERT_TRUE(router.RequestCommit(global).ok());  // Two branches: 2PC.
  }

  const std::vector<TraceEvent> merged = MergeEvents(
      {&client, router.trace(), cluster.shard(0)->trace(),
       cluster.shard(1)->trace()});
  const uint64_t trace_id = TraceOfTxn(merged, global);
  EXPECT_EQ(trace_id, ctx.trace);

  const Timeline tl = BuildTimeline(merged, trace_id);
  ASSERT_FALSE(tl.events.empty());
  // The whole life of the transaction, in causal order, across all four
  // lanes: send -> branch -> grant -> retry -> sleep -> awake -> 2PC
  // prepare -> 2PC decision -> branch commit.
  EXPECT_TRUE(tl.HasSequence({
      TraceEventKind::kBegin,
      TraceEventKind::kClientSend,
      TraceEventKind::kBranchBegin,
      TraceEventKind::kGrant,
      TraceEventKind::kClientRetry,
      TraceEventKind::kSleep,
      TraceEventKind::kAwake,
      TraceEventKind::kTwoPcPrepare,
      TraceEventKind::kTwoPcCommit,
      TraceEventKind::kCommit,
  })) << tl.ToString();
  // Both shard lanes contributed.
  std::set<int> shards;
  for (const TraceEvent& e : tl.events) {
    if (e.shard >= 0) shards.insert(e.shard);
  }
  EXPECT_EQ(shards, (std::set<int>{0, 1}));
  // Every event correlates to the same trace, each hop under its own span
  // parented inside it.
  for (const TraceEvent& e : tl.events) {
    EXPECT_EQ(e.trace, ctx.trace);
    EXPECT_NE(e.span, 0u);
  }
  EXPECT_NE(tl.ToString().find("GRANT"), std::string::npos);
}

// End-to-end over the replicated failover experiment: the exported span
// stream covers client transport (sends, retries), replication shipping
// and the promotion, and individual transactions still stitch into
// begin-to-commit timelines across the epoch change.
TEST(TimelineTest, FailoverExperimentTraceStitchesAcrossLayers) {
  workload::FailoverExperimentSpec spec;
  spec.base.num_txns = 120;
  spec.base.num_objects = 5;
  spec.base.alpha = 0.7;
  spec.base.beta = 0.0;
  spec.base.interarrival = 0.5;
  spec.base.work_time = 2.0;
  spec.base.seed = 42;
  spec.base.trace_capacity = 16384;
  spec.channel.loss = 0.3;
  spec.channel.duplicate = 0.1;
  spec.channel.reorder = 0.1;
  spec.channel.delay_mean = 0.05;
  spec.channel.request_timeout = 1.0;
  spec.channel.max_attempts = 3;
  spec.channel.reconnect_delay = 10.0;
  spec.num_backups = 1;
  spec.ship.mode = replica::ShipMode::kSync;
  spec.fail_at = 30.0;
  spec.detect_delay = 1.0;

  const workload::FailoverExperimentResult r =
      workload::RunFailoverExperiment(spec);
  ASSERT_TRUE(r.failover_ran);
  ASSERT_FALSE(r.trace_events.empty());

  std::set<TraceEventKind> kinds;
  for (const TraceEvent& e : r.trace_events) kinds.insert(e.kind);
  // All three layers appear in one stream.
  EXPECT_TRUE(kinds.count(TraceEventKind::kClientSend));
  EXPECT_TRUE(kinds.count(TraceEventKind::kClientRetry));  // Lossy channel.
  EXPECT_TRUE(kinds.count(TraceEventKind::kShip));         // Replication.
  EXPECT_TRUE(kinds.count(TraceEventKind::kPromote));      // Failover.
  EXPECT_TRUE(kinds.count(TraceEventKind::kCommit));

  // Some transaction that had to retry still stitched into a full
  // send-to-commit timeline.
  std::set<uint64_t> traces;
  for (const TraceEvent& e : r.trace_events) {
    if (e.trace != 0) traces.insert(e.trace);
  }
  bool found = false;
  for (uint64_t trace_id : traces) {
    const Timeline tl = BuildTimeline(r.trace_events, trace_id);
    if (tl.HasSequence({TraceEventKind::kClientSend,
                        TraceEventKind::kClientRetry,
                        TraceEventKind::kCommit})) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found)
      << "no retried transaction reached commit with a stitched timeline";
}

// Sharded experiment: a cross-shard transaction's timeline spans the
// client lane, the router lane and both 2PC phases.
TEST(TimelineTest, ShardedExperimentTwoPcTimeline) {
  workload::ShardedExperimentSpec spec;
  spec.base.num_txns = 200;
  spec.base.num_objects = 32;
  spec.base.alpha = 0.8;
  spec.base.beta = 0.1;
  spec.base.seed = 42;
  spec.base.trace_capacity = 16384;
  spec.num_shards = 4;
  spec.cross_shard_ratio = 0.4;

  const workload::ShardedExperimentResult r =
      workload::RunShardedGtmExperiment(spec);
  ASSERT_FALSE(r.trace_events.empty());
  ASSERT_GT(r.coordinator.commits, 0);

  std::set<uint64_t> traces;
  for (const TraceEvent& e : r.trace_events) {
    if (e.trace != 0) traces.insert(e.trace);
  }
  bool two_pc = false;
  bool slept = false;
  for (uint64_t trace_id : traces) {
    const Timeline tl = BuildTimeline(r.trace_events, trace_id);
    two_pc = two_pc ||
             tl.HasSequence({TraceEventKind::kClientSend,
                             TraceEventKind::kTwoPcPrepare,
                             TraceEventKind::kTwoPcCommit});
    slept = slept || tl.HasSequence({TraceEventKind::kSleep,
                                     TraceEventKind::kAwake,
                                     TraceEventKind::kCommit});
    if (two_pc && slept) break;
  }
  EXPECT_TRUE(two_pc) << "no cross-shard 2PC commit stitched end-to-end";
  EXPECT_TRUE(slept) << "no sleep/awake/commit timeline found";
}

}  // namespace
}  // namespace preserial::obs
