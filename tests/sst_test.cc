#include "gtm/sst.h"

#include <memory>

#include <gtest/gtest.h>

#include "storage/database.h"

namespace preserial::gtm {
namespace {

using storage::CheckConstraint;
using storage::ColumnDef;
using storage::CompareOp;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class SstTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("t", std::move(schema)).ok());
    for (int64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          db_->InsertRow("t", Row({Value::Int(i), Value::Int(10)})).ok());
    }
    ASSERT_TRUE(db_->AddConstraint("t", CheckConstraint("nonneg", 1,
                                                        CompareOp::kGe,
                                                        Value::Int(0)))
                    .ok());
    sst_ = std::make_unique<SstExecutor>(db_.get());
  }

  Value Qty(int64_t id) {
    return db_->GetTable("t").value()->GetColumnByKey(Value::Int(id), 1)
        .value();
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<SstExecutor> sst_;
};

TEST_F(SstTest, AppliesAllWrites) {
  ASSERT_TRUE(sst_->Execute({
                     {"t", Value::Int(0), 1, Value::Int(5)},
                     {"t", Value::Int(1), 1, Value::Int(6)},
                 })
                  .ok());
  EXPECT_EQ(Qty(0), Value::Int(5));
  EXPECT_EQ(Qty(1), Value::Int(6));
  EXPECT_EQ(sst_->counters().executed, 1);
  EXPECT_EQ(sst_->counters().cells_written, 2);
}

TEST_F(SstTest, EmptyWriteSetCommitsTrivially) {
  ASSERT_TRUE(sst_->Execute({}).ok());
  EXPECT_EQ(sst_->counters().executed, 1);
}

TEST_F(SstTest, ConstraintViolationRollsBackAtomically) {
  const Status s = sst_->Execute({
      {"t", Value::Int(0), 1, Value::Int(5)},
      {"t", Value::Int(1), 1, Value::Int(-1)},  // Violates nonneg.
  });
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  // The first write was rolled back too.
  EXPECT_EQ(Qty(0), Value::Int(10));
  EXPECT_EQ(Qty(1), Value::Int(10));
  EXPECT_EQ(sst_->counters().failed, 1);
  EXPECT_EQ(sst_->counters().executed, 0);
}

TEST_F(SstTest, UnknownRowFailsCleanly) {
  const Status s = sst_->Execute({
      {"t", Value::Int(99), 1, Value::Int(5)},
  });
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(sst_->counters().failed, 1);
}

TEST_F(SstTest, SequentialSstsSeeEachOther) {
  ASSERT_TRUE(sst_->Execute({{"t", Value::Int(0), 1, Value::Int(4)}}).ok());
  ASSERT_TRUE(sst_->Execute({{"t", Value::Int(0), 1, Value::Int(3)}}).ok());
  EXPECT_EQ(Qty(0), Value::Int(3));
  EXPECT_EQ(sst_->counters().executed, 2);
}

TEST_F(SstTest, WritesAreDurableInWal) {
  ASSERT_TRUE(sst_->Execute({{"t", Value::Int(0), 1, Value::Int(7)}}).ok());
  // Nothing to assert on bytes here (storage is owned), but a second
  // database built from scratch in recovery_test covers replay; at minimum
  // the in-memory state and table invariants must hold.
  EXPECT_TRUE(db_->GetTable("t").value()->CheckInvariants().ok());
}

}  // namespace
}  // namespace preserial::gtm
