// Replays every seed file under tests/corpus/. Two uses: (1) checked-in
// seeds are permanent regressions — schedules or fuzz runs that once
// failed (or that pin tricky coverage) must stay green forever; (2) when a
// fuzz/property test fails it emits its seed here, so committing the file
// turns the failure into a regression test with zero extra work.
//
// Explorer-kind seeds (single-node / sharded-2pc / failover) replay
// through check::RunSchedule; fuzz-kind seeds replay through the same
// harnesses the fuzz tests use (gtm_fuzzer.h).

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/explorer.h"
#include "check/seed.h"
#include "gtm_fuzzer.h"
#include "test_util.h"

namespace preserial::check {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  const std::filesystem::path dir(testutil::CorpusDir());
  if (!std::filesystem::is_directory(dir)) return files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".seed") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void ReplaySeed(const ScheduleSeed& seed) {
  switch (seed.scenario) {
    case ScenarioKind::kSingleNode:
    case ScenarioKind::kShardedTwoPc:
    case ScenarioKind::kFailover: {
      const ScheduleOutcome outcome = RunSchedule(seed);
      EXPECT_TRUE(outcome.ok()) << outcome.Describe();
      return;
    }
    case ScenarioKind::kPropertyFuzz: {
      const uint32_t variant = seed.choices.empty() ? 0 : seed.choices[0];
      gtm::RunPropertyFuzz(seed.seed, static_cast<int>(seed.steps), variant);
      return;
    }
    case ScenarioKind::kMemberFuzz:
      gtm::RunMemberFuzz(seed.seed, static_cast<int>(seed.steps));
      return;
  }
  FAIL() << "unhandled scenario kind";
}

TEST(CorpusReplayTest, EverySeedReplaysClean) {
  const std::vector<std::string> files = CorpusFiles();
  // The checked-in corpus always ships at least one seed per scenario
  // kind; an empty list means the corpus dir wasn't found.
  ASSERT_GE(files.size(), 5u) << "corpus dir: " << testutil::CorpusDir();
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    Result<ScheduleSeed> seed = LoadScheduleSeedFile(path);
    ASSERT_TRUE(seed.ok()) << seed.status().ToString();
    ReplaySeed(seed.value());
  }
}

}  // namespace
}  // namespace preserial::check
