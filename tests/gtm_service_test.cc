#include "gtm/gtm_service.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/database.h"
#include "test_util.h"

namespace preserial::gtm {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class GtmServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("obj", std::move(schema)).ok());
    ASSERT_TRUE(
        db_->InsertRow("obj", Row({Value::Int(0), Value::Int(1000)})).ok());
    service_ = std::make_unique<GtmService>(db_.get());
    ASSERT_TRUE(
        service_->gtm()->RegisterObject("X", "obj", Value::Int(0), {1}).ok());
  }

  Value DbQty() {
    return db_->GetTable("obj").value()->GetColumnByKey(Value::Int(0), 1)
        .value();
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<GtmService> service_;
};

TEST_F(GtmServiceTest, SingleThreadedRoundTrip) {
  const TxnId t = service_->Begin();
  ASSERT_TRUE(service_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(service_->Read(t, "X", 0).value(), Value::Int(999));
  ASSERT_TRUE(service_->Commit(t).ok());
  EXPECT_EQ(DbQty(), Value::Int(999));
}

TEST_F(GtmServiceTest, ManyConcurrentCompatibleClients) {
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 25;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([this, &committed] {
      for (int j = 0; j < kTxnsPerThread; ++j) {
        const TxnId t = service_->Begin();
        if (!service_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1)), 5.0)
                 .ok()) {
          (void)service_->Abort(t);
          continue;
        }
        if (service_->Commit(t).ok()) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // All subtractions are mutually compatible: everyone must commit, and
  // every delta must survive reconciliation.
  EXPECT_EQ(committed.load(), kThreads * kTxnsPerThread);
  EXPECT_EQ(DbQty(), Value::Int(1000 - kThreads * kTxnsPerThread));
  EXPECT_TRUE(service_->gtm()->CheckInvariants().ok());
}

TEST_F(GtmServiceTest, BlockedInvokeResumesOnCommit) {
  const TxnId holder = service_->Begin();
  ASSERT_TRUE(
      service_->Invoke(holder, "X", 0, Operation::Assign(Value::Int(7)))
          .ok());
  std::atomic<bool> waiter_done{false};
  std::atomic<TxnId> waiter_txn{0};
  std::thread waiter([this, &waiter_done, &waiter_txn] {
    const TxnId t = service_->Begin();
    waiter_txn.store(t);
    // Blocks until the holder commits.
    EXPECT_TRUE(
        service_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1)), 30.0)
            .ok());
    EXPECT_TRUE(service_->Commit(t).ok());
    waiter_done.store(true);
  });
  // Wait until the waiter has actually queued, then release it.
  ASSERT_TRUE(testutil::WaitUntil([&] {
    const TxnId t = waiter_txn.load();
    if (t == 0) return false;
    Result<TxnState> st = service_->StateOf(t);
    return st.ok() && st.value() == TxnState::kWaiting;
  }));
  EXPECT_FALSE(waiter_done.load());
  ASSERT_TRUE(service_->Commit(holder).ok());
  waiter.join();
  EXPECT_TRUE(waiter_done.load());
  EXPECT_EQ(DbQty(), Value::Int(6));
}

TEST_F(GtmServiceTest, InvokeTimesOutAndAborts) {
  const TxnId holder = service_->Begin();
  ASSERT_TRUE(
      service_->Invoke(holder, "X", 0, Operation::Assign(Value::Int(7)))
          .ok());
  const TxnId waiter = service_->Begin();
  const Status s =
      service_->Invoke(waiter, "X", 0, Operation::Sub(Value::Int(1)),
                       /*timeout=*/0.05);
  EXPECT_EQ(s.code(), StatusCode::kTimedOut);
  EXPECT_EQ(service_->StateOf(waiter).value(), TxnState::kAborted);
  ASSERT_TRUE(service_->Commit(holder).ok());
  EXPECT_EQ(DbQty(), Value::Int(7));
}

TEST_F(GtmServiceTest, DefaultNoTimeoutWaitsOutLongHolds) {
  // Regression for the kNoTimeout sentinel: the default (unbounded) wait
  // must park cleanly — no overflowed deadline — and resume on the grant.
  const TxnId holder = service_->Begin();
  ASSERT_TRUE(
      service_->Invoke(holder, "X", 0, Operation::Assign(Value::Int(7)))
          .ok());
  std::atomic<bool> waiter_done{false};
  std::atomic<TxnId> waiter_txn{0};
  std::thread waiter([this, &waiter_done, &waiter_txn] {
    const TxnId t = service_->Begin();
    waiter_txn.store(t);
    // No timeout argument: waits on the unbounded path.
    EXPECT_TRUE(
        service_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
    EXPECT_TRUE(service_->Commit(t).ok());
    waiter_done.store(true);
  });
  ASSERT_TRUE(testutil::WaitUntil([&] {
    const TxnId t = waiter_txn.load();
    if (t == 0) return false;
    Result<TxnState> st = service_->StateOf(t);
    return st.ok() && st.value() == TxnState::kWaiting;
  }));
  EXPECT_FALSE(waiter_done.load());
  ASSERT_TRUE(service_->Commit(holder).ok());
  waiter.join();
  EXPECT_TRUE(waiter_done.load());
  EXPECT_EQ(DbQty(), Value::Int(6));
}

TEST_F(GtmServiceTest, TimedOutWaiterAbortsWhollyAndReleasesAdmissions) {
  // The timed-out transaction already held an admission on another object;
  // kTimedOut must abort the whole transaction, releasing that admission
  // for conflicting requesters.
  ASSERT_TRUE(
      db_->InsertRow("obj", Row({Value::Int(1), Value::Int(500)})).ok());
  ASSERT_TRUE(
      service_->gtm()->RegisterObject("Y", "obj", Value::Int(1), {1}).ok());

  const TxnId holder = service_->Begin();
  ASSERT_TRUE(
      service_->Invoke(holder, "X", 0, Operation::Assign(Value::Int(7)))
          .ok());
  const TxnId doomed = service_->Begin();
  ASSERT_TRUE(
      service_->Invoke(doomed, "Y", 0, Operation::Assign(Value::Int(8)))
          .ok());
  const Status s =
      service_->Invoke(doomed, "X", 0, Operation::Sub(Value::Int(1)),
                       /*timeout=*/0.05);
  EXPECT_EQ(s.code(), StatusCode::kTimedOut);
  EXPECT_EQ(service_->StateOf(doomed).value(), TxnState::kAborted);

  // Y is free again: an incompatible assign proceeds without waiting.
  const TxnId next = service_->Begin();
  EXPECT_TRUE(
      service_->Invoke(next, "Y", 0, Operation::Assign(Value::Int(9)), 1.0)
          .ok());
  ASSERT_TRUE(service_->Commit(next).ok());
  ASSERT_TRUE(service_->Commit(holder).ok());
  EXPECT_EQ(DbQty(), Value::Int(7));  // The doomed subtraction never landed.
  EXPECT_TRUE(service_->gtm()->CheckInvariants().ok());
}

TEST_F(GtmServiceTest, SleepAwakeThroughService) {
  const TxnId t = service_->Begin();
  ASSERT_TRUE(service_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(service_->Sleep(t).ok());
  EXPECT_EQ(service_->StateOf(t).value(), TxnState::kSleeping);
  ASSERT_TRUE(service_->Awake(t).ok());
  ASSERT_TRUE(service_->Commit(t).ok());
  EXPECT_EQ(DbQty(), Value::Int(999));
}

TEST_F(GtmServiceTest, MixedReadersAndWritersUnderThreads) {
  constexpr int kThreads = 6;
  std::atomic<int> reads_ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([this, i, &reads_ok] {
      for (int j = 0; j < 10; ++j) {
        const TxnId t = service_->Begin();
        if (i % 2 == 0) {
          if (service_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1)), 5.0)
                  .ok()) {
            (void)service_->Commit(t);
          }
        } else {
          Result<Value> v = service_->Read(t, "X", 0, 5.0);
          if (v.ok()) {
            reads_ok.fetch_add(1);
            (void)service_->Commit(t);
          } else {
            (void)service_->Abort(t);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_GT(reads_ok.load(), 0);
  EXPECT_TRUE(service_->gtm()->CheckInvariants().ok());
}

TEST_F(GtmServiceTest, BlockingReadWaitsOutIncompatibleHolder) {
  const TxnId holder = service_->Begin();
  ASSERT_TRUE(
      service_->Invoke(holder, "X", 0, Operation::Delete()).ok());
  std::atomic<bool> read_done{false};
  std::atomic<TxnId> reader_txn{0};
  std::thread reader([this, &read_done, &reader_txn] {
    const TxnId t = service_->Begin();
    reader_txn.store(t);
    Result<Value> v = service_->Read(t, "X", 0, 30.0);
    EXPECT_TRUE(v.ok());
    if (v.ok()) {
      EXPECT_EQ(v.value(), Value::Int(1000));
    }
    (void)service_->Commit(t);
    read_done.store(true);
  });
  // A blocked read parks through the same wait machinery as Invoke.
  ASSERT_TRUE(testutil::WaitUntil([&] {
    const TxnId t = reader_txn.load();
    if (t == 0) return false;
    Result<TxnState> st = service_->StateOf(t);
    return st.ok() && st.value() == TxnState::kWaiting;
  }));
  EXPECT_FALSE(read_done.load());
  ASSERT_TRUE(service_->Abort(holder).ok());
  reader.join();
  EXPECT_TRUE(read_done.load());
}

TEST_F(GtmServiceTest, IdleSweepParksAndAwakeResumes) {
  const TxnId quiet = service_->Begin();
  ASSERT_TRUE(
      service_->Invoke(quiet, "X", 0, Operation::Sub(Value::Int(1))).ok());
  // Poll the housekeeping sweep until the wall-clock idle age crosses the
  // threshold and the sweep parks the transaction.
  std::vector<TxnId> parked;
  ASSERT_TRUE(testutil::WaitUntil([&] {
    std::vector<TxnId> swept = service_->SleepIdleTransactions(0.01);
    parked.insert(parked.end(), swept.begin(), swept.end());
    return !parked.empty();
  }));
  ASSERT_EQ(parked.size(), 1u);
  EXPECT_EQ(parked[0], quiet);
  EXPECT_EQ(service_->StateOf(quiet).value(), TxnState::kSleeping);
  ASSERT_TRUE(service_->Awake(quiet).ok());
  ASSERT_TRUE(service_->Commit(quiet).ok());
  EXPECT_EQ(DbQty(), Value::Int(999));
}

TEST_F(GtmServiceTest, ExpiredWaitSweepWakesTheVictimThread) {
  const TxnId holder = service_->Begin();
  ASSERT_TRUE(
      service_->Invoke(holder, "X", 0, Operation::Assign(Value::Int(7)))
          .ok());
  std::atomic<bool> victim_aborted{false};
  std::thread victim([this, &victim_aborted] {
    const TxnId t = service_->Begin();
    const Status s =
        service_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1)), 60.0);
    victim_aborted.store(s.code() == StatusCode::kAborted);
  });
  // The housekeeping sweep kills over-age waiters; the parked thread must
  // observe its own abort and return. Poll until the victim has queued and
  // its wait has aged past the threshold.
  std::vector<TxnId> victims;
  ASSERT_TRUE(testutil::WaitUntil([&] {
    std::vector<TxnId> swept = service_->AbortExpiredWaits(0.01);
    victims.insert(victims.end(), swept.begin(), swept.end());
    return !victims.empty();
  }));
  ASSERT_EQ(victims.size(), 1u);
  victim.join();
  EXPECT_TRUE(victim_aborted.load());
  ASSERT_TRUE(service_->Commit(holder).ok());
  EXPECT_EQ(DbQty(), Value::Int(7));
}

TEST_F(GtmServiceTest, MaintenanceSweepsUnderConcurrentClients) {
  // A housekeeping thread loops all three maintenance sweeps while client
  // threads run transactions: subtractions on X (conserved quantity) and
  // conflicting assignments on Y (real waits for the expiry sweep to
  // consider). Whatever the sweeps do, the ledger must balance.
  ASSERT_TRUE(
      db_->InsertRow("obj", Row({Value::Int(1), Value::Int(500)})).ok());
  ASSERT_TRUE(
      service_->gtm()->RegisterObject("Y", "obj", Value::Int(1), {1}).ok());

  std::atomic<bool> stop{false};
  std::thread housekeeper([this, &stop] {
    while (!stop.load()) {
      (void)service_->SleepIdleTransactions(0.002);
      (void)service_->AbortExpiredWaits(0.2);
      (void)service_->DetectAndResolveDeadlocks();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kSubThreads = 4;
  constexpr int kAssignThreads = 2;
  constexpr int kTxnsPerThread = 15;
  std::atomic<int> sub_committed{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kSubThreads; ++i) {
    threads.emplace_back([this, &sub_committed] {
      for (int j = 0; j < kTxnsPerThread; ++j) {
        const TxnId t = service_->Begin();
        if (!service_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1)), 2.0)
                 .ok()) {
          (void)service_->Abort(t);
          continue;
        }
        // Linger so the idle sweep can park some of us mid-work.
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        Status c = service_->Commit(t);
        if (!c.ok() && service_->Awake(t).ok()) {
          c = service_->Commit(t);  // The sweep had parked us; resume.
        }
        if (c.ok()) {
          sub_committed.fetch_add(1);
        } else {
          (void)service_->Abort(t);
        }
      }
    });
  }
  for (int i = 0; i < kAssignThreads; ++i) {
    threads.emplace_back([this, i] {
      for (int j = 0; j < kTxnsPerThread; ++j) {
        const TxnId t = service_->Begin();
        const Status s = service_->Invoke(
            t, "Y", 0, Operation::Assign(Value::Int(i * 100 + j)), 2.0);
        if (!s.ok()) {
          (void)service_->Abort(t);
          continue;
        }
        Status c = service_->Commit(t);
        if (!c.ok() && service_->Awake(t).ok()) c = service_->Commit(t);
        if (!c.ok()) (void)service_->Abort(t);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  stop.store(true);
  housekeeper.join();

  EXPECT_GT(sub_committed.load(), 0);
  // Conservation: X lost exactly one unit per committed subtraction —
  // sweeps may abort or park transactions but never corrupt the ledger.
  EXPECT_EQ(DbQty(), Value::Int(1000 - sub_committed.load()));
  EXPECT_TRUE(service_->gtm()->CheckInvariants().ok());
}

TEST_F(GtmServiceTest, DeadlockSweepBreaksCrossObjectCycle) {
  ASSERT_TRUE(
      db_->InsertRow("obj", Row({Value::Int(1), Value::Int(500)})).ok());
  GtmOptions options;
  options.deadlock_detection = false;  // Let the cycle form; sweep breaks it.
  GtmService service(db_.get(), options);
  ASSERT_TRUE(
      service.gtm()->RegisterObject("A", "obj", Value::Int(0), {1}).ok());
  ASSERT_TRUE(
      service.gtm()->RegisterObject("B", "obj", Value::Int(1), {1}).ok());

  const TxnId t1 = service.Begin();
  const TxnId t2 = service.Begin();
  ASSERT_TRUE(service.Invoke(t1, "A", 0, Operation::Assign(Value::Int(1)))
                  .ok());
  ASSERT_TRUE(service.Invoke(t2, "B", 0, Operation::Assign(Value::Int(2)))
                  .ok());
  std::atomic<int> outcomes{0};
  auto cross = [&service, &outcomes](TxnId txn, const char* object) {
    const Status s = service.Invoke(txn, object, 0,
                                    Operation::Assign(Value::Int(3)), 30.0);
    if (s.ok()) {
      (void)service.Commit(txn);
      outcomes.fetch_add(1);  // Survivor.
    } else {
      outcomes.fetch_add(100);  // Victim.
    }
  };
  std::thread th1([&] { cross(t1, "B"); });
  std::thread th2([&] { cross(t2, "A"); });
  // Poll the sweep until the cycle has formed (thread startup may lag).
  std::vector<TxnId> victims;
  ASSERT_TRUE(testutil::WaitUntil([&] {
    victims = service.DetectAndResolveDeadlocks();
    return !victims.empty();
  }));
  EXPECT_EQ(victims.size(), 1u);
  th1.join();
  th2.join();
  EXPECT_EQ(outcomes.load(), 101);  // One survivor, one victim.
  EXPECT_TRUE(service.gtm()->CheckInvariants().ok());
}

}  // namespace
}  // namespace preserial::gtm
