// Replica op-log plumbing: record wire format, CRC-framed durable node
// logs, and the WAL-replay edge cases a real deployment hits — a torn
// final record after a mid-ship crash, duplicate-shipped records, and a
// backup restart that re-syncs from its last durable LSN.

#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "replica/replica.h"
#include "storage/wal.h"

namespace preserial::replica {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

ReplicaRecord FullRecord(ReplicaOpKind kind) {
  ReplicaRecord rec;
  rec.lsn = 42;
  rec.epoch = 3;
  rec.time = 17.25;
  rec.kind = kind;
  rec.once = true;
  rec.seq = 9;
  rec.txn = 1234;
  rec.priority = -2;
  rec.object = "resources/7";
  rec.member = 1;
  rec.op = Operation::Sub(Value::Int(5));
  rec.duration = 30.0;
  rec.table = "resources";
  rec.key = Value::Int(7);
  rec.member_columns = {1, 2};
  rec.dep_pairs = {{0, 1}, {2, 1}};
  rec.bootstrap = "opaque-wal-bytes";
  return rec;
}

TEST(ReplicaRecordTest, RoundTripsEveryKindWithAllFields) {
  for (uint8_t k = 1; k <= 14; ++k) {
    const ReplicaRecord rec = FullRecord(static_cast<ReplicaOpKind>(k));
    std::string payload;
    rec.EncodeTo(&payload);
    Result<ReplicaRecord> back = ReplicaRecord::DecodeFrom(payload);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    const ReplicaRecord& d = back.value();
    EXPECT_EQ(d.lsn, rec.lsn);
    EXPECT_EQ(d.epoch, rec.epoch);
    EXPECT_DOUBLE_EQ(d.time, rec.time);
    EXPECT_EQ(d.kind, rec.kind);
    EXPECT_EQ(d.once, rec.once);
    EXPECT_EQ(d.seq, rec.seq);
    EXPECT_EQ(d.txn, rec.txn);
    EXPECT_EQ(d.priority, rec.priority);
    EXPECT_EQ(d.object, rec.object);
    EXPECT_EQ(d.member, rec.member);
    EXPECT_EQ(d.op.cls, rec.op.cls);
    EXPECT_EQ(d.op.operand, rec.op.operand);
    EXPECT_DOUBLE_EQ(d.duration, rec.duration);
    EXPECT_EQ(d.table, rec.table);
    EXPECT_EQ(d.key, rec.key);
    EXPECT_EQ(d.member_columns, rec.member_columns);
    EXPECT_EQ(d.dep_pairs, rec.dep_pairs);
    EXPECT_EQ(d.bootstrap, rec.bootstrap);
  }
}

TEST(ReplicaRecordTest, DecodeRejectsTruncationAndTrailingGarbage) {
  const ReplicaRecord rec = FullRecord(ReplicaOpKind::kInvoke);
  std::string payload;
  rec.EncodeTo(&payload);
  for (size_t cut : {size_t{1}, payload.size() / 2, payload.size() - 1}) {
    EXPECT_FALSE(
        ReplicaRecord::DecodeFrom(std::string_view(payload).substr(0, cut))
            .ok())
        << "cut=" << cut;
  }
  EXPECT_FALSE(ReplicaRecord::DecodeFrom(payload + "x").ok());
}

TEST(ReplicaRecordTest, FramedScanDropsTornTailAndCatchesCorruption) {
  std::string log;
  for (int i = 0; i < 3; ++i) {
    ReplicaRecord rec = FullRecord(ReplicaOpKind::kCommit);
    rec.lsn = static_cast<uint64_t>(i) + 1;
    std::string payload;
    rec.EncodeTo(&payload);
    storage::FramePayload(payload, &log);
  }
  const size_t full = log.size();

  // Torn tail (crash mid-append): the clean prefix scans, the tail drops.
  storage::FrameScanResult torn =
      storage::ScanFrames(std::string_view(log).substr(0, full - 5));
  ASSERT_TRUE(torn.status.ok()) << torn.status.ToString();
  EXPECT_EQ(torn.payloads.size(), 2u);

  // A flipped byte mid-log is corruption, not a clean break.
  std::string bad = log;
  bad[full / 2] = static_cast<char>(bad[full / 2] ^ 0x40);
  EXPECT_EQ(storage::ScanFrames(bad).status.code(), StatusCode::kCorruption);
}

TEST(ReplicaLogTest, AppendEnforcesDenseLsnsAndTruncateReports) {
  ReplicaLog log;
  EXPECT_EQ(log.next_lsn(), 1u);
  for (uint64_t i = 1; i <= 5; ++i) {
    ReplicaRecord rec;
    rec.lsn = i;
    ASSERT_TRUE(log.Append(std::move(rec)).ok());
  }
  ReplicaRecord gap;
  gap.lsn = 9;
  EXPECT_FALSE(log.Append(std::move(gap)).ok());
  EXPECT_EQ(log.TruncateTo(3), 2u);
  EXPECT_EQ(log.last_lsn(), 3u);
  EXPECT_EQ(log.TruncateTo(3), 0u);
}

// --- node-level replay edge cases ------------------------------------------

class ReplicaNodeLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_.Set(0.0);
    ReplicaOptions opts;
    opts.num_backups = 1;
    opts.durable_node_logs = true;
    group_ = std::make_unique<ReplicatedGtm>(&clock_, gtm::GtmOptions{}, opts,
                                             &ship_rng_);
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(group_->CreateTable("obj", std::move(schema)).ok());
    ASSERT_TRUE(
        group_->InsertRow("obj", Row({Value::Int(0), Value::Int(100)})).ok());
    ASSERT_TRUE(group_->RegisterObject("X", "obj", Value::Int(0), {1}).ok());
  }

  void CommitSubtract() {
    const TxnId t = group_->Begin();
    ASSERT_NE(t, kInvalidTxnId);
    ASSERT_TRUE(
        group_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
    ASSERT_TRUE(group_->RequestCommit(t).ok());
  }

  Value NodeQty(size_t i) {
    return group_->node(i)
        ->db()
        ->GetTable("obj")
        .value()
        ->GetColumnByKey(Value::Int(0), 1)
        .value();
  }

  ReplicaNode* backup() { return group_->node(1); }

  ManualClock clock_;
  Rng ship_rng_{0xfeedULL};
  std::unique_ptr<ReplicatedGtm> group_;
};

TEST_F(ReplicaNodeLogTest, DuplicateShippedRecordsApplyOnce) {
  CommitSubtract();
  const uint64_t applied = backup()->last_applied();
  ASSERT_GT(applied, 0u);
  // Redeliver the whole log: every record is an absorbed duplicate.
  for (const ReplicaRecord& rec : group_->log().records()) {
    EXPECT_TRUE(backup()->Apply(rec).ok());
  }
  EXPECT_EQ(backup()->last_applied(), applied);
  EXPECT_EQ(backup()->duplicates_applied(),
            static_cast<int64_t>(group_->log().last_lsn()));
  EXPECT_EQ(NodeQty(1), Value::Int(99));
  // A gap (skipping ahead) is refused, not silently applied.
  ReplicaRecord future = group_->log().At(1);
  future.lsn = backup()->last_applied() + 5;
  EXPECT_EQ(backup()->Apply(future).code(), StatusCode::kFailedPrecondition);
}

TEST_F(ReplicaNodeLogTest, TornFinalRecordDropsAndReShips) {
  CommitSubtract();
  CommitSubtract();
  const uint64_t durable = backup()->last_applied();
  // Crash mid-ship: the backup's durable log loses the tail of its final
  // framed record.
  auto* wal = static_cast<storage::MemoryWalStorage*>(backup()->log_storage());
  wal->CorruptTail(3);
  Result<uint64_t> replayed = backup()->Restart();
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed.value(), durable - 1);
  // The shipper's resync handshake adopts the backup's durable LSN and
  // re-ships the lost suffix.
  ASSERT_TRUE(group_->shipper()->ShipAll().ok());
  EXPECT_EQ(backup()->last_applied(), group_->log().last_lsn());
  EXPECT_EQ(NodeQty(1), Value::Int(98));
  EXPECT_EQ(NodeQty(1), NodeQty(0));
}

TEST_F(ReplicaNodeLogTest, BackupRestartResyncsFromLastDurableLsn) {
  CommitSubtract();
  // Clean restart: the full durable log replays.
  Result<uint64_t> replayed = backup()->Restart();
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed.value(), group_->log().last_lsn());
  EXPECT_EQ(NodeQty(1), Value::Int(99));
  // New traffic after the restart ships incrementally — replay preserved
  // the reply caches and TxnId allocator, so nothing diverges.
  CommitSubtract();
  CommitSubtract();
  EXPECT_EQ(backup()->last_applied(), group_->log().last_lsn());
  EXPECT_EQ(NodeQty(1), Value::Int(97));
  EXPECT_EQ(NodeQty(1), NodeQty(0));
  EXPECT_TRUE(backup()->gtm()->CheckInvariants().ok());
}

TEST_F(ReplicaNodeLogTest, ReplayedTimestampsMatchPrimary) {
  // A sleeper whose A_t_sleep the replay clock must reproduce exactly.
  clock_.Set(5.0);
  const TxnId t = group_->Begin();
  ASSERT_TRUE(group_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Set(7.5);
  ASSERT_TRUE(group_->Sleep(t).ok());
  ASSERT_TRUE(backup()->Restart().ok());
  const gtm::ManagedTxn* primary_txn = group_->primary_gtm()->GetTxn(t);
  const gtm::ManagedTxn* backup_txn = backup()->gtm()->GetTxn(t);
  ASSERT_NE(primary_txn, nullptr);
  ASSERT_NE(backup_txn, nullptr);
  EXPECT_DOUBLE_EQ(backup_txn->sleep_since(), primary_txn->sleep_since());
  EXPECT_EQ(backup()->gtm()->StateOf(t).value(), gtm::TxnState::kSleeping);
}

}  // namespace
}  // namespace preserial::replica
