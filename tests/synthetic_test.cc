#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include "model/analytic.h"

namespace preserial::workload {
namespace {

TEST(ConflictExperimentTest, NoConflictsMeansIdealTime) {
  ConflictSpec spec;
  spec.n = 50;
  spec.c = 0;
  spec.i = 10;
  spec.tau_e = 1.0;
  const ConflictResult r = RunConflictExperiment(spec);
  EXPECT_DOUBLE_EQ(r.avg_exec_gtm, 1.0);
  EXPECT_DOUBLE_EQ(r.avg_exec_2pl, 1.0);
  EXPECT_EQ(r.k_incompatible_conflicts, 0);
}

TEST(ConflictExperimentTest, AllCompatibleConflictsAreFreeUnderGtm) {
  ConflictSpec spec;
  spec.n = 60;
  spec.c = 60;  // Every transaction conflicts...
  spec.i = 0;   // ...but all are add/sub: compatible.
  const ConflictResult r = RunConflictExperiment(spec);
  // GTM: everyone shares, latency tau_e. 2PL: everyone waits tau_e/2.
  EXPECT_DOUBLE_EQ(r.avg_exec_gtm, 1.0);
  EXPECT_DOUBLE_EQ(r.avg_exec_2pl, 1.5);
  // The paper's headline 50 % improvement at c = 100 %, i = 0.
  EXPECT_DOUBLE_EQ((r.avg_exec_2pl - r.avg_exec_gtm) / r.avg_exec_gtm, 0.5);
}

TEST(ConflictExperimentTest, AllIncompatibleMatchesTwoPl) {
  ConflictSpec spec;
  spec.n = 60;
  spec.c = 60;
  spec.i = 60;  // Everything assignment-class.
  const ConflictResult r = RunConflictExperiment(spec);
  EXPECT_DOUBLE_EQ(r.avg_exec_gtm, r.avg_exec_2pl);
  EXPECT_DOUBLE_EQ(r.avg_exec_2pl, 1.5);
}

TEST(ConflictExperimentTest, SimulationTracksAnalyticModel) {
  // At mid-grid points the simulated means must match the model evaluated
  // at the *realized* K (exact) and be close to the expectation form.
  for (uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    ConflictSpec spec;
    spec.n = 200;
    spec.c = 120;
    spec.i = 80;
    spec.seed = seed;
    const ConflictResult r = RunConflictExperiment(spec);
    // 2PL exactly matches eq. (3): c waits of tau_e/2 each.
    EXPECT_NEAR(r.avg_exec_2pl, r.model_2pl, 1e-9);
    // GTM exactly: tau_e (1 + K/(2n)) with the realized K.
    const double expected_gtm =
        model::TwoPlExecutionTime(spec.n, r.k_incompatible_conflicts,
                                  spec.tau_e);
    EXPECT_NEAR(r.avg_exec_gtm, expected_gtm, 1e-9);
    // And statistically close to the expectation (eq. 5).
    EXPECT_NEAR(r.avg_exec_gtm, r.model_gtm, 0.05);
  }
}

TEST(ConflictExperimentTest, GtmNeverSlowerThanTwoPl) {
  for (int64_t c : {0L, 50L, 100L}) {
    for (int64_t i : {0L, 50L, 100L}) {
      ConflictSpec spec;
      spec.n = 100;
      spec.c = c;
      spec.i = i;
      spec.seed = static_cast<uint64_t>(c * 1000 + i);
      const ConflictResult r = RunConflictExperiment(spec);
      EXPECT_LE(r.avg_exec_gtm, r.avg_exec_2pl + 1e-9)
          << "c=" << c << " i=" << i;
    }
  }
}

TEST(SleeperAbortTest, NoDisconnectionsNoSleeperAborts) {
  SleeperSpec spec;
  spec.n = 200;
  spec.p_disconnect = 0.0;
  spec.p_conflict = 1.0;
  spec.p_incompatible = 1.0;
  const SleeperResult r = RunSleeperAbortExperiment(spec);
  EXPECT_DOUBLE_EQ(r.abort_pct_all, 0.0);
  EXPECT_DOUBLE_EQ(r.model_abort_pct, 0.0);
}

TEST(SleeperAbortTest, CompatibleTrafficNeverKillsSleepers) {
  SleeperSpec spec;
  spec.n = 200;
  spec.p_disconnect = 1.0;
  spec.p_conflict = 1.0;
  spec.p_incompatible = 0.0;  // Only add/sub background.
  const SleeperResult r = RunSleeperAbortExperiment(spec);
  EXPECT_DOUBLE_EQ(r.abort_pct_all, 0.0);
}

TEST(SleeperAbortTest, CertainIncompatibleConflictKillsEverySleeper) {
  SleeperSpec spec;
  spec.n = 200;
  spec.p_disconnect = 1.0;
  spec.p_conflict = 1.0;
  spec.p_incompatible = 1.0;
  const SleeperResult r = RunSleeperAbortExperiment(spec);
  EXPECT_DOUBLE_EQ(r.abort_pct_all, 100.0);
  EXPECT_DOUBLE_EQ(r.abort_pct_disconnected, 100.0);
  EXPECT_DOUBLE_EQ(r.model_abort_pct, 100.0);
}

TEST(SleeperAbortTest, MatchesProductModelStatistically) {
  SleeperSpec spec;
  spec.n = 3000;
  spec.p_disconnect = 0.6;
  spec.p_conflict = 0.5;
  spec.p_incompatible = 0.4;
  spec.seed = 11;
  const SleeperResult r = RunSleeperAbortExperiment(spec);
  EXPECT_DOUBLE_EQ(r.model_abort_pct, 12.0);
  EXPECT_NEAR(r.abort_pct_all, r.model_abort_pct, 2.5);
  // Among disconnected transactions the abort rate is P(c) * P(i) = 20 %.
  EXPECT_NEAR(r.abort_pct_disconnected, 20.0, 3.5);
}

TEST(SleeperAbortTest, AbortRateGrowsWithEachFactor) {
  auto run = [](double d, double c, double i) {
    SleeperSpec spec;
    spec.n = 1500;
    spec.p_disconnect = d;
    spec.p_conflict = c;
    spec.p_incompatible = i;
    spec.seed = 23;
    return RunSleeperAbortExperiment(spec).abort_pct_all;
  };
  EXPECT_LT(run(0.2, 0.5, 0.5), run(0.8, 0.5, 0.5));
  EXPECT_LT(run(0.5, 0.2, 0.5), run(0.5, 0.8, 0.5));
  EXPECT_LT(run(0.5, 0.5, 0.2), run(0.5, 0.5, 0.8));
}

}  // namespace
}  // namespace preserial::workload
