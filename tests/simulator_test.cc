#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace preserial::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtOrigin) {
  Simulator s(3.0);
  EXPECT_DOUBLE_EQ(s.Now(), 3.0);
  EXPECT_TRUE(s.Idle());
}

TEST(SimulatorTest, AfterAdvancesClockToEventTime) {
  Simulator s;
  double fired_at = -1;
  s.After(2.0, [&] { fired_at = s.Now(); });
  EXPECT_EQ(s.Run(), 1u);
  EXPECT_DOUBLE_EQ(fired_at, 2.0);
  EXPECT_DOUBLE_EQ(s.Now(), 2.0);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator s;
  std::vector<double> times;
  s.After(1.0, [&] {
    times.push_back(s.Now());
    s.After(1.5, [&] { times.push_back(s.Now()); });
  });
  s.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
}

TEST(SimulatorTest, AtSchedulesAbsolute) {
  Simulator s(10.0);
  double fired_at = -1;
  s.At(12.0, [&] { fired_at = s.Now(); });
  s.Run();
  EXPECT_DOUBLE_EQ(fired_at, 12.0);
}

TEST(SimulatorTest, StepRunsExactlyOneEvent) {
  Simulator s;
  int count = 0;
  s.After(1, [&] { ++count; });
  s.After(2, [&] { ++count; });
  EXPECT_TRUE(s.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.Step());
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndSetsClock) {
  Simulator s;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    s.At(t, [&fired, &s] { fired.push_back(s.Now()); });
  }
  EXPECT_EQ(s.RunUntil(2.5), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(s.Now(), 2.5);
  s.Run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, RunRespectsMaxEvents) {
  Simulator s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.After(i + 1, [&] { ++count; });
  EXPECT_EQ(s.Run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator s;
  int count = 0;
  const EventId id = s.After(1, [&] { ++count; });
  EXPECT_TRUE(s.Cancel(id));
  s.Run();
  EXPECT_EQ(count, 0);
}

TEST(SimulatorTest, ZeroDelayRunsAfterCurrentEventFifo) {
  Simulator s;
  std::vector<int> order;
  s.After(1.0, [&] {
    order.push_back(1);
    s.After(0.0, [&] { order.push_back(3); });
    order.push_back(2);
  });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace preserial::sim
