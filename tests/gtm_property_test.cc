// Randomized end-to-end property test of the GTM: a fuzzer drives many
// interleaved transactions through invoke / commit / abort / sleep / awake
// with every operation class, and an independent oracle replays the
// *committed* transactions in commit order. The paper's serializability
// claim (Sec. V) reduces to: the final database state equals the oracle's,
// for every interleaving.
//
// The harness lives in gtm_fuzzer.h so corpus_replay_test drives the same
// code; a failing run writes its seed into tests/corpus/ to be committed
// as a permanent regression.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "gtm_fuzzer.h"
#include "test_util.h"

namespace preserial::gtm {
namespace {

// Runs one property-fuzz configuration; on failure, emits a replayable
// corpus seed naming the exact (seed, steps, variant) that broke.
void RunAndRecord(uint64_t seed, int steps, uint32_t variant) {
  RunPropertyFuzz(seed, steps, variant);
  if (::testing::Test::HasFailure()) {
    check::ScheduleSeed failing;
    failing.scenario = check::ScenarioKind::kPropertyFuzz;
    failing.steps = static_cast<size_t>(steps);
    failing.seed = seed;
    failing.choices = {variant};
    testutil::EmitFailingSeed(
        failing, StrFormat("property-fuzz-%llu-v%u",
                           static_cast<unsigned long long>(seed), variant));
  }
}

class GtmPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GtmPropertyTest, CommittedEffectsMatchOracle) {
  RunAndRecord(GetParam(), 1500, kPropertyVariantDefault);
}

TEST_P(GtmPropertyTest, HoldsUnderExclusiveAblation) {
  RunAndRecord(GetParam() + 1000, 1000, kPropertyVariantExclusive);
}

TEST_P(GtmPropertyTest, HoldsWithStarvationGuard) {
  RunAndRecord(GetParam() + 2000, 1000, kPropertyVariantStarvation);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GtmPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace preserial::gtm
