// Randomized end-to-end property test of the GTM: a fuzzer drives many
// interleaved transactions through invoke / commit / abort / sleep / awake
// with every operation class, and an independent oracle replays the
// *committed* transactions in commit order. The paper's serializability
// claim (Sec. V) reduces to: the final database state equals the oracle's,
// for every interleaving.

#include <map>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "gtm/gtm.h"
#include "storage/database.h"

namespace preserial::gtm {
namespace {

using semantics::OpClass;
using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr size_t kNumObjects = 4;
constexpr int64_t kInitial = 1000;

// What the fuzzer believes one transaction has done to one object.
struct TxnObjectModel {
  OpClass cls = OpClass::kRead;
  int64_t delta = 0;          // Net add/sub effect.
  int64_t assigned = 0;       // Last assigned value (cls == kUpdateAssign).
};

struct TxnModel {
  std::map<size_t, TxnObjectModel> objects;
  bool waiting = false;
  bool sleeping = false;
};

class GtmFuzzer {
 public:
  explicit GtmFuzzer(uint64_t seed, GtmOptions options)
      : rng_(seed) {
    db_ = std::make_unique<storage::Database>();
    EXPECT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"val", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    EXPECT_TRUE(db_->CreateTable("t", std::move(schema)).ok());
    for (size_t i = 0; i < kNumObjects; ++i) {
      EXPECT_TRUE(db_->InsertRow("t", Row({Value::Int(static_cast<int64_t>(i)),
                                           Value::Int(kInitial)}))
                      .ok());
      expected_[i] = kInitial;
    }
    gtm_ = std::make_unique<Gtm>(db_.get(), &clock_, options);
    for (size_t i = 0; i < kNumObjects; ++i) {
      EXPECT_TRUE(gtm_->RegisterObject(ObjName(i), "t",
                                       Value::Int(static_cast<int64_t>(i)),
                                       {1})
                      .ok());
    }
  }

  static ObjectId ObjName(size_t i) { return "obj/" + std::to_string(i); }

  void RunSteps(int steps) {
    for (int s = 0; s < steps; ++s) {
      Step();
      if (s % 37 == 0) {
        const Status inv = gtm_->CheckInvariants();
        ASSERT_TRUE(inv.ok()) << "step " << s << ": " << inv.ToString();
      }
    }
    Drain();
    Verify();
  }

 private:
  void Step() {
    clock_.Advance(0.1 + rng_.NextDouble());
    DrainEvents();
    const uint64_t action = rng_.NextBounded(10);
    if (live_.empty() || action == 0) {
      // Start a new transaction.
      const TxnId t = gtm_->Begin(static_cast<int>(rng_.NextBounded(3)));
      live_[t] = TxnModel{};
      return;
    }
    // Pick a random live transaction.
    auto it = live_.begin();
    std::advance(it, rng_.NextBounded(live_.size()));
    const TxnId t = it->first;
    TxnModel& model = it->second;

    if (model.sleeping) {
      // Sleeping transactions can only awake (or be user-aborted).
      if (rng_.NextBool(0.7)) {
        const Status s = gtm_->Awake(t);
        if (s.ok()) {
          model.sleeping = false;
          model.waiting = false;  // A queued invocation was admitted...
          ReconcileWaitingModel(t, model);
        } else {
          // Awake-abort: the transaction is gone, nothing committed.
          live_.erase(t);
        }
      } else {
        EXPECT_TRUE(gtm_->RequestAbort(t).ok());
        live_.erase(t);
      }
      return;
    }
    if (model.waiting) {
      // Waiting: may sleep, abort, or just let time pass.
      const uint64_t choice = rng_.NextBounded(3);
      if (choice == 0) {
        if (gtm_->Sleep(t).ok()) model.sleeping = true;
      } else if (choice == 1) {
        EXPECT_TRUE(gtm_->RequestAbort(t).ok());
        live_.erase(t);
      }
      return;
    }

    // Active transaction: invoke / commit / abort / sleep.
    switch (rng_.NextBounded(8)) {
      case 0: {  // Commit.
        const Status s = gtm_->RequestCommit(t);
        if (s.ok()) {
          ApplyToOracle(model);
        }
        // Failed commits (reconciliation/SST) abort the txn either way.
        live_.erase(t);
        return;
      }
      case 1: {  // Abort.
        EXPECT_TRUE(gtm_->RequestAbort(t).ok());
        live_.erase(t);
        return;
      }
      case 2: {  // Sleep.
        if (gtm_->Sleep(t).ok()) model.sleeping = true;
        return;
      }
      default: {  // Invoke an operation.
        InvokeRandom(t, model);
        return;
      }
    }
  }

  void InvokeRandom(TxnId t, TxnModel& model) {
    const size_t obj = rng_.NextBounded(kNumObjects);
    auto existing = model.objects.find(obj);
    Operation op;
    if (existing != model.objects.end() &&
        existing->second.cls != OpClass::kRead) {
      // Must stay within the granted class on this member.
      if (existing->second.cls == OpClass::kUpdateAssign) {
        op = Operation::Assign(Value::Int(rng_.NextInt(0, 500)));
      } else {
        op = rng_.NextBool(0.5)
                 ? Operation::Add(Value::Int(rng_.NextInt(1, 5)))
                 : Operation::Sub(Value::Int(rng_.NextInt(1, 5)));
      }
    } else {
      switch (rng_.NextBounded(4)) {
        case 0:
          op = Operation::Read();
          break;
        case 1:
          op = Operation::Assign(Value::Int(rng_.NextInt(0, 500)));
          break;
        default:
          op = rng_.NextBool(0.5)
                   ? Operation::Add(Value::Int(rng_.NextInt(1, 5)))
                   : Operation::Sub(Value::Int(rng_.NextInt(1, 5)));
          break;
      }
    }
    const Status s = gtm_->Invoke(t, ObjName(obj), 0, op);
    switch (s.code()) {
      case StatusCode::kOk:
        NoteApplied(model, obj, op);
        return;
      case StatusCode::kWaiting:
        model.waiting = true;
        pending_wait_[t] = {obj, op};
        return;
      case StatusCode::kDeadlock:
        EXPECT_TRUE(gtm_->RequestAbort(t).ok());
        live_.erase(t);
        return;
      case StatusCode::kConflict:           // Upgrade refusal.
      case StatusCode::kFailedPrecondition:  // Class mixing refusal.
        return;  // Transaction stays active, op not applied.
      default:
        FAIL() << "unexpected invoke status " << s.ToString();
    }
  }

  void NoteApplied(TxnModel& model, size_t obj, const Operation& op) {
    TxnObjectModel& om = model.objects[obj];
    switch (op.cls) {
      case OpClass::kRead:
        if (om.cls == OpClass::kRead) om.cls = OpClass::kRead;
        break;
      case OpClass::kUpdateAssign:
        om.cls = OpClass::kUpdateAssign;
        om.assigned = op.operand.as_int();
        break;
      case OpClass::kUpdateAddSub: {
        om.cls = OpClass::kUpdateAddSub;
        const int64_t c = op.operand.as_int();
        om.delta += op.inverse ? -c : c;
        break;
      }
      default:
        break;
    }
  }

  // A grant event delivered a queued invocation: fold it into the model.
  void ReconcileWaitingModel(TxnId t, TxnModel& model) {
    auto it = pending_wait_.find(t);
    if (it == pending_wait_.end()) return;
    NoteApplied(model, it->second.first, it->second.second);
    pending_wait_.erase(it);
  }

  void DrainEvents() {
    for (const GtmEvent& e : gtm_->TakeEvents()) {
      auto it = live_.find(e.txn);
      if (it == live_.end()) continue;
      it->second.waiting = false;
      ReconcileWaitingModel(e.txn, it->second);
    }
  }

  void ApplyToOracle(const TxnModel& model) {
    for (const auto& [obj, om] : model.objects) {
      switch (om.cls) {
        case OpClass::kUpdateAssign:
          expected_[obj] = om.assigned;
          break;
        case OpClass::kUpdateAddSub:
          expected_[obj] += om.delta;
          break;
        default:
          break;
      }
    }
  }

  // Finish every live transaction: awake sleepers, abort waiters, commit
  // the rest.
  void Drain() {
    bool progress = true;
    while (!live_.empty() && progress) {
      progress = false;
      DrainEvents();
      std::vector<TxnId> ids;
      ids.reserve(live_.size());
      for (const auto& [id, _] : live_) ids.push_back(id);
      for (TxnId t : ids) {
        auto it = live_.find(t);
        if (it == live_.end()) continue;
        TxnModel& model = it->second;
        clock_.Advance(0.5);
        if (model.sleeping) {
          const Status s = gtm_->Awake(t);
          if (s.ok()) {
            model.sleeping = false;
            model.waiting = false;
            ReconcileWaitingModel(t, model);
          } else {
            live_.erase(t);
          }
          progress = true;
        } else if (model.waiting) {
          // Still queued; give grants a chance, then abort if stuck.
          DrainEvents();
          if (live_.count(t) > 0 && live_[t].waiting) {
            EXPECT_TRUE(gtm_->RequestAbort(t).ok());
            live_.erase(t);
          }
          progress = true;
        } else {
          const Status s = gtm_->RequestCommit(t);
          if (s.ok()) ApplyToOracle(model);
          live_.erase(t);
          progress = true;
        }
      }
    }
    ASSERT_TRUE(live_.empty());
  }

  void Verify() {
    const Status inv = gtm_->CheckInvariants();
    ASSERT_TRUE(inv.ok()) << inv.ToString();
    for (size_t i = 0; i < kNumObjects; ++i) {
      // Middleware cache, oracle and database must all agree.
      const Value permanent = gtm_->PermanentValue(ObjName(i), 0).value();
      ASSERT_EQ(permanent, Value::Int(expected_[i])) << "object " << i;
      const Value in_db = db_->GetTable("t")
                              .value()
                              ->GetColumnByKey(
                                  Value::Int(static_cast<int64_t>(i)), 1)
                              .value();
      ASSERT_EQ(in_db, permanent) << "object " << i;
    }
  }

  Rng rng_;
  ManualClock clock_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<Gtm> gtm_;
  std::map<TxnId, TxnModel> live_;
  std::map<TxnId, std::pair<size_t, Operation>> pending_wait_;
  std::map<size_t, int64_t> expected_;
};

class GtmPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GtmPropertyTest, CommittedEffectsMatchOracle) {
  GtmFuzzer fuzzer(GetParam(), GtmOptions());
  fuzzer.RunSteps(1500);
}

TEST_P(GtmPropertyTest, HoldsUnderExclusiveAblation) {
  GtmOptions options;
  options.semantic_sharing = false;
  GtmFuzzer fuzzer(GetParam() + 1000, options);
  fuzzer.RunSteps(1000);
}

TEST_P(GtmPropertyTest, HoldsWithStarvationGuard) {
  GtmOptions options;
  options.starvation_waiter_threshold = 2;
  GtmFuzzer fuzzer(GetParam() + 2000, options);
  fuzzer.RunSteps(1000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GtmPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace preserial::gtm
