#include "lock/lock_table.h"

#include <gtest/gtest.h>

namespace preserial::lock {
namespace {

TEST(ResourceQueueTest, GrantsCompatibleImmediately) {
  ResourceQueue q;
  EXPECT_EQ(q.Acquire(1, LockMode::kShared), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(2, LockMode::kShared), AcquireOutcome::kGranted);
  EXPECT_EQ(q.granted_count(), 2u);
  EXPECT_TRUE(q.HeldBy(1));
  EXPECT_TRUE(q.HeldBy(2));
}

TEST(ResourceQueueTest, ExclusiveConflictsQueue) {
  ResourceQueue q;
  EXPECT_EQ(q.Acquire(1, LockMode::kExclusive), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(2, LockMode::kShared), AcquireOutcome::kWaiting);
  EXPECT_TRUE(q.IsWaiting(2));
  EXPECT_FALSE(q.HeldBy(2));
}

TEST(ResourceQueueTest, ReacquireSameModeIsNoOp) {
  ResourceQueue q;
  EXPECT_EQ(q.Acquire(1, LockMode::kExclusive), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(1, LockMode::kExclusive), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(1, LockMode::kShared), AcquireOutcome::kGranted);
  LockMode mode;
  ASSERT_TRUE(q.HeldBy(1, &mode));
  EXPECT_EQ(mode, LockMode::kExclusive);  // Never downgrades.
}

TEST(ResourceQueueTest, ReleaseGrantsNextInFifoOrder) {
  ResourceQueue q;
  EXPECT_EQ(q.Acquire(1, LockMode::kExclusive), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(2, LockMode::kExclusive), AcquireOutcome::kWaiting);
  EXPECT_EQ(q.Acquire(3, LockMode::kExclusive), AcquireOutcome::kWaiting);
  std::vector<ResourceQueue::Grant> grants = q.Release(1);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 2u);
  grants = q.Release(2);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 3u);
}

TEST(ResourceQueueTest, ReleaseGrantsCompatibleBatch) {
  ResourceQueue q;
  EXPECT_EQ(q.Acquire(1, LockMode::kExclusive), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(2, LockMode::kShared), AcquireOutcome::kWaiting);
  EXPECT_EQ(q.Acquire(3, LockMode::kShared), AcquireOutcome::kWaiting);
  EXPECT_EQ(q.Acquire(4, LockMode::kExclusive), AcquireOutcome::kWaiting);
  std::vector<ResourceQueue::Grant> grants = q.Release(1);
  // Both shared readers admitted together; the X stays queued.
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].txn, 2u);
  EXPECT_EQ(grants[1].txn, 3u);
  EXPECT_TRUE(q.IsWaiting(4));
}

TEST(ResourceQueueTest, FreshRequestQueuesBehindWaiters) {
  ResourceQueue q;
  EXPECT_EQ(q.Acquire(1, LockMode::kShared), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(2, LockMode::kExclusive), AcquireOutcome::kWaiting);
  // S would be compatible with the grant, but FIFO fairness queues it
  // behind the waiting X to prevent writer starvation.
  EXPECT_EQ(q.Acquire(3, LockMode::kShared), AcquireOutcome::kWaiting);
}

TEST(ResourceQueueTest, UpgradeGrantedWhenAlone) {
  ResourceQueue q;
  EXPECT_EQ(q.Acquire(1, LockMode::kShared), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(1, LockMode::kExclusive), AcquireOutcome::kGranted);
  LockMode mode;
  ASSERT_TRUE(q.HeldBy(1, &mode));
  EXPECT_EQ(mode, LockMode::kExclusive);
}

TEST(ResourceQueueTest, UpgradeWaitsForOtherHolders) {
  ResourceQueue q;
  EXPECT_EQ(q.Acquire(1, LockMode::kShared), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(2, LockMode::kShared), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(1, LockMode::kExclusive), AcquireOutcome::kWaiting);
  // Still holds the original S while waiting for the upgrade.
  LockMode mode;
  ASSERT_TRUE(q.HeldBy(1, &mode));
  EXPECT_EQ(mode, LockMode::kShared);
  std::vector<ResourceQueue::Grant> grants = q.Release(2);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 1u);
  EXPECT_EQ(grants[0].mode, LockMode::kExclusive);
}

TEST(ResourceQueueTest, UpgradeJumpsAheadOfPlainWaiters) {
  ResourceQueue q;
  EXPECT_EQ(q.Acquire(1, LockMode::kShared), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(2, LockMode::kShared), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(3, LockMode::kExclusive), AcquireOutcome::kWaiting);
  EXPECT_EQ(q.Acquire(1, LockMode::kExclusive), AcquireOutcome::kWaiting);
  // When txn 2 releases, the upgrade (txn 1) wins over the older waiter 3.
  std::vector<ResourceQueue::Grant> grants = q.Release(2);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 1u);
  EXPECT_EQ(grants[0].mode, LockMode::kExclusive);
}

TEST(ResourceQueueTest, CancelWaitUnblocksQueue) {
  ResourceQueue q;
  EXPECT_EQ(q.Acquire(1, LockMode::kShared), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(2, LockMode::kExclusive), AcquireOutcome::kWaiting);
  EXPECT_EQ(q.Acquire(3, LockMode::kShared), AcquireOutcome::kWaiting);
  std::vector<ResourceQueue::Grant> grants = q.CancelWait(2);
  // With the X waiter gone, the S waiter can share with holder 1.
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 3u);
}

TEST(ResourceQueueTest, BlockersIncludeHoldersAndEarlierWaiters) {
  ResourceQueue q;
  EXPECT_EQ(q.Acquire(1, LockMode::kShared), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(2, LockMode::kExclusive), AcquireOutcome::kWaiting);
  EXPECT_EQ(q.Acquire(3, LockMode::kShared), AcquireOutcome::kWaiting);
  std::vector<TxnId> blockers = q.BlockersOf(3);
  // Txn 3 (S) is blocked by the earlier waiting X (2) but not holder 1 (S).
  ASSERT_EQ(blockers.size(), 1u);
  EXPECT_EQ(blockers[0], 2u);
  blockers = q.BlockersOf(2);
  ASSERT_EQ(blockers.size(), 1u);
  EXPECT_EQ(blockers[0], 1u);
  EXPECT_TRUE(q.BlockersOf(99).empty());
}

TEST(ResourceQueueTest, EmptyAfterFullDrain) {
  ResourceQueue q;
  EXPECT_EQ(q.Acquire(1, LockMode::kExclusive), AcquireOutcome::kGranted);
  EXPECT_EQ(q.Acquire(2, LockMode::kExclusive), AcquireOutcome::kWaiting);
  (void)q.Release(1);
  (void)q.Release(2);
  EXPECT_TRUE(q.Empty());
}

}  // namespace
}  // namespace preserial::lock
