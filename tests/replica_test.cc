// Primary/backup replication of the GTM: backups replay the primary's op
// log into bit-identical state machines, sync vs async shipping, lossy
// ship links, replicated *Once dedup, and the metrics/trace surfaces the
// replication layer feeds.

#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "gtm/metrics.h"
#include "gtm/trace.h"
#include "replica/replica.h"

namespace preserial::replica {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class ReplicaTest : public ::testing::Test {
 protected:
  void Build(ReplicaOptions opts) {
    clock_.Set(0.0);
    group_ = std::make_unique<ReplicatedGtm>(&clock_, gtm::GtmOptions{}, opts,
                                             &ship_rng_);
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                            ColumnDef{"price", ValueType::kDouble, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(group_->CreateTable("obj", std::move(schema)).ok());
    ASSERT_TRUE(group_
                    ->InsertRow("obj", Row({Value::Int(0), Value::Int(100),
                                            Value::Double(10.0)}))
                    .ok());
    semantics::LogicalDependencies deps;
    deps.AddDependency(0, 1);
    ASSERT_TRUE(
        group_->RegisterObject("X", "obj", Value::Int(0), {1, 2}, deps).ok());
  }

  // A mixed workload touching every replicated decision kind: shared
  // subtractions, an Algorithm-9 awake-abort, a queued waiter granted by a
  // commit, and a voluntary abort.
  void RunMixedWorkload() {
    const TxnId a = group_->Begin();
    const TxnId b = group_->Begin();
    ASSERT_TRUE(group_->Invoke(a, "X", 0, Operation::Sub(Value::Int(1))).ok());
    ASSERT_TRUE(group_->Invoke(b, "X", 0, Operation::Sub(Value::Int(2))).ok());
    ASSERT_TRUE(group_->RequestCommit(a).ok());
    ASSERT_TRUE(group_->RequestCommit(b).ok());
    // A sleeper loses to an incompatible commit during its sleep (Alg 9).
    const TxnId sleeper = group_->Begin();
    ASSERT_TRUE(
        group_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
    clock_.Set(1.0);
    ASSERT_TRUE(group_->Sleep(sleeper).ok());
    clock_.Set(1.5);  // The incompatible commit must be after A_t_sleep.
    const TxnId admin = group_->Begin();
    ASSERT_TRUE(
        group_->Invoke(admin, "X", 0, Operation::Assign(Value::Int(50))).ok());
    ASSERT_TRUE(group_->RequestCommit(admin).ok());
    clock_.Set(2.0);
    EXPECT_EQ(group_->Awake(sleeper).code(), StatusCode::kAborted);
    // A waiter queues behind an active assignment and is granted by its
    // commit.
    const TxnId holder = group_->Begin();
    ASSERT_TRUE(
        group_->Invoke(holder, "X", 0, Operation::Assign(Value::Int(80)))
            .ok());
    const TxnId waiter = group_->Begin();
    EXPECT_EQ(
        group_->Invoke(waiter, "X", 0, Operation::Sub(Value::Int(1))).code(),
        StatusCode::kWaiting);
    ASSERT_TRUE(group_->RequestCommit(holder).ok());
    EXPECT_EQ(group_->TakeEvents().size(), 1u);
    ASSERT_TRUE(group_->RequestCommit(waiter).ok());
    const TxnId d = group_->Begin();
    ASSERT_TRUE(group_->Invoke(d, "X", 0, Operation::Sub(Value::Int(5))).ok());
    ASSERT_TRUE(group_->RequestAbort(d).ok());
  }

  Value NodeCell(size_t node, size_t column) {
    return group_->node(node)
        ->db()
        ->GetTable("obj")
        .value()
        ->GetColumnByKey(Value::Int(0), column)
        .value();
  }

  void ExpectParity() {
    for (size_t i = 0; i < group_->num_nodes(); ++i) {
      SCOPED_TRACE(group_->node(i)->name());
      EXPECT_EQ(group_->node(i)->last_applied(), group_->log().last_lsn());
      EXPECT_EQ(NodeCell(i, 1), NodeCell(0, 1));
      EXPECT_EQ(NodeCell(i, 2), NodeCell(0, 2));
      const gtm::GtmCounters& c0 =
          group_->node(0)->gtm()->metrics().counters();
      const gtm::GtmCounters& ci =
          group_->node(i)->gtm()->metrics().counters();
      EXPECT_EQ(ci.committed, c0.committed);
      EXPECT_EQ(ci.aborted, c0.aborted);
      EXPECT_EQ(ci.sleeps, c0.sleeps);
      EXPECT_EQ(ci.awakes, c0.awakes);
      EXPECT_EQ(ci.waits, c0.waits);
      EXPECT_EQ(ci.duplicates_suppressed, c0.duplicates_suppressed);
      EXPECT_TRUE(group_->node(i)->gtm()->CheckInvariants().ok());
    }
  }

  ManualClock clock_;
  Rng ship_rng_{0x5eedULL};
  std::unique_ptr<ReplicatedGtm> group_;
};

TEST_F(ReplicaTest, SyncBackupsMirrorPrimaryExactly) {
  ReplicaOptions opts;
  opts.num_backups = 2;
  Build(opts);
  RunMixedWorkload();
  // -1 -2 shared, then Assign 50, Assign 80, -1 from the granted waiter.
  EXPECT_EQ(NodeCell(0, 1), Value::Int(79));
  EXPECT_EQ(group_->shipper()->Lag(), 0u);
  ExpectParity();
}

TEST_F(ReplicaTest, AsyncShippingLagsUntilPumped) {
  ReplicaOptions opts;
  opts.num_backups = 1;
  opts.ship.mode = ShipMode::kAsync;
  opts.ship.window = 4;  // Small window: several rounds to drain.
  Build(opts);
  // Async ships only on Pump(), so even the bootstrap is still pending.
  EXPECT_GT(group_->shipper()->Lag(), 0u);
  RunMixedWorkload();
  const uint64_t lag = group_->shipper()->Lag();
  EXPECT_GT(lag, 0u);
  EXPECT_EQ(group_->node(1)->last_applied(), 0u);
  int rounds = 0;
  while (group_->shipper()->Lag() > 0 && rounds < 100) {
    ASSERT_TRUE(group_->Pump().ok());
    ++rounds;
  }
  EXPECT_EQ(group_->shipper()->Lag(), 0u);
  EXPECT_GT(rounds, 1);  // The window actually bounded each round.
  ExpectParity();
}

TEST_F(ReplicaTest, LossyShipLinkStillConverges) {
  ReplicaOptions opts;
  opts.num_backups = 2;
  opts.ship.loss = 0.3;
  opts.ship.duplicate = 0.2;
  Build(opts);
  RunMixedWorkload();
  ExpectParity();
  const ShipCounters& c = group_->shipper()->counters();
  EXPECT_GT(c.record_losses + c.ack_losses, 0);
  EXPECT_GT(c.resends, 0);
  // Lost acks make the shipper resend records the backup already applied;
  // the backup absorbs them idempotently.
  int64_t absorbed = 0;
  for (size_t i = 1; i < group_->num_nodes(); ++i) {
    absorbed += group_->node(i)->duplicates_applied();
  }
  EXPECT_GT(absorbed, 0);
}

TEST_F(ReplicaTest, OnceDedupStateReplicates) {
  ReplicaOptions opts;
  opts.num_backups = 1;
  Build(opts);
  const TxnId t = group_->Begin();
  ASSERT_TRUE(
      group_->InvokeOnce(t, 1, "X", 0, Operation::Sub(Value::Int(1))).ok());
  // The client retries the same request: a fresh log record whose dispatch
  // hits the reply cache — on the primary AND on the backup.
  ASSERT_TRUE(
      group_->InvokeOnce(t, 1, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(group_->CommitOnce(t, 2).ok());
  ASSERT_TRUE(group_->CommitOnce(t, 2).ok());
  EXPECT_EQ(NodeCell(0, 1), Value::Int(99));
  EXPECT_EQ(NodeCell(1, 1), Value::Int(99));
  EXPECT_EQ(group_->node(0)->gtm()->metrics().counters().duplicates_suppressed,
            2);
  EXPECT_EQ(group_->node(1)->gtm()->metrics().counters().duplicates_suppressed,
            2);
}

TEST_F(ReplicaTest, ShipAndAckAreTraced) {
  ReplicaOptions opts;
  opts.num_backups = 1;
  Build(opts);
  group_->primary_gtm()->trace()->Enable(128);
  const TxnId t = group_->Begin();
  ASSERT_TRUE(group_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(group_->RequestCommit(t).ok());
  bool saw_ship = false, saw_ack = false;
  for (const gtm::TraceEvent& e : group_->primary_gtm()->trace()->Snapshot()) {
    if (e.kind == gtm::TraceEventKind::kShip) saw_ship = true;
    if (e.kind == gtm::TraceEventKind::kShipAck) saw_ack = true;
  }
  EXPECT_TRUE(saw_ship);
  EXPECT_TRUE(saw_ack);
  EXPECT_STREQ(gtm::TraceEventKindName(gtm::TraceEventKind::kPromote),
               "PROMOTE");
}

TEST_F(ReplicaTest, LagGaugeAndSnapshotMerge) {
  ReplicaOptions opts;
  opts.num_backups = 1;
  opts.ship.mode = ShipMode::kAsync;
  Build(opts);
  const TxnId t = group_->Begin();
  ASSERT_TRUE(group_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  const gtm::GtmCounters& c = group_->primary_gtm()->metrics().counters();
  EXPECT_GT(c.replication_lag_records, 0);
  while (group_->shipper()->Lag() > 0) ASSERT_TRUE(group_->Pump().ok());
  EXPECT_EQ(c.replication_lag_records, 0);

  // Satellite: MergeFrom surfaces per-replica lag and failover counters.
  gtm::GtmMetrics::Snapshot a, b;
  a.counters.replication_lag_records = 3;
  a.counters.failovers_total = 1;
  b.counters.replication_lag_records = 4;
  b.counters.failovers_total = 2;
  a.MergeFrom(b);
  EXPECT_EQ(a.counters.replication_lag_records, 7);
  EXPECT_EQ(a.counters.failovers_total, 3);
  EXPECT_NE(a.Summary().find("replication:"), std::string::npos);
}

}  // namespace
}  // namespace preserial::replica
