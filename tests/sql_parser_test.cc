#include "sql/parser.h"

#include <gtest/gtest.h>

namespace preserial::sql {
namespace {

using storage::CompareOp;
using storage::Value;
using storage::ValueType;

template <typename T>
T ParseAs(const std::string& input) {
  Result<Statement> r = Parse(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status().ToString();
  if (!r.ok()) return T{};
  const T* stmt = std::get_if<T>(&r.value());
  EXPECT_NE(stmt, nullptr) << input << " parsed to the wrong variant";
  return stmt == nullptr ? T{} : *stmt;
}

TEST(ParserTest, CreateTable) {
  const auto stmt = ParseAs<CreateTableStmt>(
      "CREATE TABLE flights (id INT PRIMARY KEY, free INT, note STRING "
      "NULL, price DOUBLE NOT NULL);");
  EXPECT_EQ(stmt.table, "flights");
  ASSERT_EQ(stmt.columns.size(), 4u);
  EXPECT_EQ(stmt.primary_key, 0u);
  EXPECT_EQ(stmt.columns[0].type, ValueType::kInt64);
  EXPECT_FALSE(stmt.columns[0].nullable);
  EXPECT_TRUE(stmt.columns[2].nullable);
  EXPECT_EQ(stmt.columns[3].type, ValueType::kDouble);
}

TEST(ParserTest, CreateTablePkElsewhere) {
  const auto stmt = ParseAs<CreateTableStmt>(
      "create table t (a string, b integer primary key)");
  EXPECT_EQ(stmt.primary_key, 1u);
}

TEST(ParserTest, CreateTableRequiresPk) {
  EXPECT_FALSE(Parse("CREATE TABLE t (a INT)").ok());
}

TEST(ParserTest, CreateTableRejectsTwoPks) {
  EXPECT_FALSE(
      Parse("CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)").ok());
}

TEST(ParserTest, CreateIndex) {
  const auto stmt =
      ParseAs<CreateIndexStmt>("CREATE INDEX by_free ON flights (free)");
  EXPECT_EQ(stmt.index, "by_free");
  EXPECT_EQ(stmt.table, "flights");
  EXPECT_EQ(stmt.column, "free");
}

TEST(ParserTest, DropTable) {
  EXPECT_EQ(ParseAs<DropTableStmt>("DROP TABLE t").table, "t");
}

TEST(ParserTest, InsertWithMixedLiterals) {
  const auto stmt = ParseAs<InsertStmt>(
      "INSERT INTO t VALUES (1, -2.5, 'it''s', TRUE, NULL)");
  EXPECT_EQ(stmt.table, "t");
  ASSERT_EQ(stmt.values.size(), 5u);
  EXPECT_EQ(stmt.values[0], Value::Int(1));
  EXPECT_EQ(stmt.values[1], Value::Double(-2.5));
  EXPECT_EQ(stmt.values[2], Value::String("it's"));
  EXPECT_EQ(stmt.values[3], Value::Bool(true));
  EXPECT_TRUE(stmt.values[4].is_null());
}

TEST(ParserTest, SelectStar) {
  const auto stmt = ParseAs<SelectStmt>("SELECT * FROM t");
  EXPECT_EQ(stmt.table, "t");
  EXPECT_TRUE(stmt.columns.empty());
  EXPECT_TRUE(stmt.where.empty());
}

TEST(ParserTest, SelectFull) {
  const auto stmt = ParseAs<SelectStmt>(
      "SELECT id, free FROM flights WHERE free >= 1 AND id != 3 "
      "ORDER BY free DESC LIMIT 10");
  ASSERT_EQ(stmt.columns.size(), 2u);
  ASSERT_EQ(stmt.where.size(), 2u);
  EXPECT_EQ(stmt.where[0].column, "free");
  EXPECT_EQ(stmt.where[0].op, CompareOp::kGe);
  EXPECT_EQ(stmt.where[0].literal, Value::Int(1));
  EXPECT_EQ(stmt.where[1].op, CompareOp::kNe);
  ASSERT_TRUE(stmt.order_by.has_value());
  EXPECT_EQ(*stmt.order_by, "free");
  EXPECT_TRUE(stmt.order_desc);
  ASSERT_TRUE(stmt.limit.has_value());
  EXPECT_EQ(*stmt.limit, 10);
}

TEST(ParserTest, SelectAscIsDefaultAndExplicit) {
  EXPECT_FALSE(
      ParseAs<SelectStmt>("SELECT * FROM t ORDER BY a").order_desc);
  EXPECT_FALSE(
      ParseAs<SelectStmt>("SELECT * FROM t ORDER BY a ASC").order_desc);
}

TEST(ParserTest, Update) {
  const auto stmt = ParseAs<UpdateStmt>(
      "UPDATE flights SET free = 5, note = 'x' WHERE id = 2");
  ASSERT_EQ(stmt.assignments.size(), 2u);
  EXPECT_EQ(stmt.assignments[0].first, "free");
  EXPECT_EQ(stmt.assignments[0].second, Value::Int(5));
  ASSERT_EQ(stmt.where.size(), 1u);
}

TEST(ParserTest, DeleteWithAndWithoutWhere) {
  EXPECT_EQ(ParseAs<DeleteStmt>("DELETE FROM t").where.size(), 0u);
  EXPECT_EQ(
      ParseAs<DeleteStmt>("DELETE FROM t WHERE a < 3 AND b > 1").where.size(),
      2u);
}

TEST(ParserTest, AlterAddConstraint) {
  const auto stmt = ParseAs<AlterAddConstraintStmt>(
      "ALTER TABLE flights ADD CONSTRAINT nonneg CHECK (free >= 0)");
  EXPECT_EQ(stmt.table, "flights");
  EXPECT_EQ(stmt.constraint, "nonneg");
  EXPECT_EQ(stmt.check.column, "free");
  EXPECT_EQ(stmt.check.op, CompareOp::kGe);
  EXPECT_EQ(stmt.check.literal, Value::Int(0));
}

TEST(ParserTest, ShowTables) {
  Result<Statement> r = Parse("SHOW TABLES;");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(std::get_if<ShowTablesStmt>(&r.value()), nullptr);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(Parse("SELECT * FROM t extra").ok());
  EXPECT_FALSE(Parse("DROP TABLE t t2").ok());
}

TEST(ParserTest, ErrorsCarryOffsets) {
  Result<Statement> r = Parse("SELECT FROM");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, GarbageRejected) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("FROB THE KNOB").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES ()").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE a ==").ok());
}

}  // namespace
}  // namespace preserial::sql
