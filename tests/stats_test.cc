#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace preserial {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Population variance is 4; the sample variance is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeEqualsCombinedStream) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1);
  RunningStat b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(HistogramTest, EmptyPercentilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, ExactPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100.0);
  EXPECT_NEAR(h.p50(), 50.5, 1e-9);
  EXPECT_NEAR(h.p99(), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistogramTest, InterleavedAddAndQuery) {
  Histogram h;
  h.Add(10);
  EXPECT_DOUBLE_EQ(h.p50(), 10.0);
  h.Add(20);
  EXPECT_DOUBLE_EQ(h.p50(), 15.0);  // Re-sorts after mutation.
  h.Add(0);
  EXPECT_DOUBLE_EQ(h.p50(), 10.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  EXPECT_NE(h.Summary().find("n=2"), std::string::npos);
}

TEST(HistogramTest, MergeFromCombinesSampleSets) {
  Histogram a, b;
  a.Add(1);
  a.Add(3);
  b.Add(2);
  b.Add(100);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_DOUBLE_EQ(a.mean(), (1 + 3 + 2 + 100) / 4.0);
  EXPECT_DOUBLE_EQ(a.p50(), 2.5);  // Percentiles see the merged samples.
  EXPECT_EQ(b.count(), 2);         // The source is untouched.

  // Merging an empty histogram is a no-op, either way around.
  Histogram empty;
  a.MergeFrom(empty);
  EXPECT_EQ(a.count(), 4);
  empty.MergeFrom(a);
  EXPECT_EQ(empty.count(), 4);
}

TEST(RateCounterTest, Basics) {
  RateCounter r;
  EXPECT_EQ(r.rate(), 0.0);
  r.AddHit();
  r.AddMiss();
  r.AddMiss();
  r.Add(true);
  EXPECT_EQ(r.hits(), 2);
  EXPECT_EQ(r.total(), 4);
  EXPECT_DOUBLE_EQ(r.rate(), 0.5);
  EXPECT_DOUBLE_EQ(r.percent(), 50.0);
}

}  // namespace
}  // namespace preserial
