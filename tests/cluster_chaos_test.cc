// Chaos tests of the sharded cluster. First: a seeded storm of overlapping
// single-shard and cross-shard transactions while the coordinator keeps
// "crashing" between prepare and decision — after every crash a successor
// recovers from the coordinator WAL, and no global transaction may ever
// end half-committed; per-shard conservation must hold exactly. Second: a
// fault-tolerant session population drives the router over a channel that
// drops, duplicates and reorders messages — the ground truth read back per
// shard must agree with what the clients report, as in lossy_chaos_test.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "check/checker.h"
#include "check/history.h"
#include "cluster/cluster.h"
#include "cluster/coordinator.h"
#include "cluster/router.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"
#include "gtm/txn_state.h"
#include "mobile/network.h"
#include "mobile/session.h"
#include "semantics/operation.h"
#include "sim/distributions.h"
#include "sim/simulator.h"
#include "storage/wal.h"
#include "workload/runner.h"

namespace preserial::cluster {
namespace {

using gtm::TxnState;
using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr char kTable[] = "resources";
constexpr int64_t kInitialQty = 100000;

gtm::ObjectId ObjectIdFor(size_t i) { return StrFormat("%s/%zu", kTable, i); }

// Shared fixture pieces: an N-shard cluster whose objects each carry one
// qty member backed by column 1 of their owning shard's table.
std::unique_ptr<GtmCluster> BuildCluster(size_t num_shards, size_t num_objects,
                                         const Clock* clock) {
  auto cluster = std::make_unique<GtmCluster>(num_shards, clock);
  Result<Schema> schema = Schema::Create(
      {
          ColumnDef{"id", ValueType::kInt64, false},
          ColumnDef{"qty", ValueType::kInt64, false},
      },
      /*primary_key=*/0);
  PRESERIAL_CHECK(schema.ok());
  PRESERIAL_CHECK(
      cluster->CreateTableAllShards(kTable, std::move(schema).value()).ok());
  for (size_t i = 0; i < num_objects; ++i) {
    const gtm::ObjectId oid = ObjectIdFor(i);
    const Value key = Value::Int(static_cast<int64_t>(i));
    PRESERIAL_CHECK(cluster->db(cluster->ShardOf(oid))
                        ->InsertRow(kTable, Row({key, Value::Int(kInitialQty)}))
                        .ok());
    PRESERIAL_CHECK(cluster->RegisterObject(oid, kTable, key, {1}).ok());
  }
  return cluster;
}

// Quantity drained from `shard`, read straight from its database.
int64_t ConsumedOnShard(GtmCluster* cluster, ShardId shard,
                        size_t num_objects) {
  int64_t consumed = 0;
  for (size_t i = 0; i < num_objects; ++i) {
    const gtm::ObjectId oid = ObjectIdFor(i);
    if (cluster->ShardOf(oid) != shard) continue;
    Result<Value> qty = cluster->db(shard)->GetTable(kTable).value()->GetColumnByKey(
        Value::Int(static_cast<int64_t>(i)), 1);
    PRESERIAL_CHECK(qty.ok());
    consumed += kInitialQty - qty.value().as_int();
  }
  return consumed;
}

TEST(ClusterChaosTest, CoordinatorCrashStormNeverHalfCommits) {
  constexpr size_t kShards = 3;
  constexpr size_t kObjects = 30;
  constexpr int kRounds = 240;

  ManualClock clock;
  std::unique_ptr<GtmCluster> cluster = BuildCluster(kShards, kObjects, &clock);
  storage::MemoryWalStorage wal;
  auto coordinator = std::make_unique<ClusterCoordinator>(cluster.get(), &wal);

  // Record every shard's interleaving — each shard is its own
  // serialization domain; the oracle validates each independently.
  check::ClusterHistoryRecorder recorder;
  recorder.Attach(cluster.get());

  Rng rng(20080615);
  std::vector<int64_t> booked(kShards, 0);  // Units committed, per shard.
  int64_t crashes = 0, recovered_commits = 0, presumed_aborts = 0;
  TxnId next_global = 1;

  // One unit booked on the owner of a random object; returns (shard, branch).
  auto book = [&](TxnId* branch_out) {
    const gtm::ObjectId oid = ObjectIdFor(rng.NextBounded(kObjects));
    const ShardId shard = cluster->ShardOf(oid);
    const TxnId branch = cluster->shard(shard)->Begin();
    Status s = cluster->shard(shard)->Invoke(branch, oid, 0,
                                             Operation::Sub(Value::Int(1)));
    PRESERIAL_CHECK(s.ok()) << s.ToString();
    *branch_out = branch;
    return shard;
  };

  for (int round = 0; round < kRounds; ++round) {
    clock.Advance(1.0);
    // Background single-shard traffic overlapping the global transaction.
    if (rng.NextBool(0.7)) {
      TxnId branch;
      const ShardId shard = book(&branch);
      PRESERIAL_CHECK(cluster->shard(shard)->RequestCommit(branch).ok());
      ++booked[shard];
    }

    // A cross-shard transaction: two branches on distinct shards.
    TxnId b1, b2;
    const ShardId s1 = book(&b1);
    ShardId s2;
    TxnId tmp;
    do {
      s2 = book(&tmp);
      if (s2 == s1) {
        PRESERIAL_CHECK(cluster->AbortBranch(s2, tmp).ok());
      }
    } while (s2 == s1);
    b2 = tmp;

    std::vector<std::pair<ShardId, TxnId>> branches = {{s1, b1}, {s2, b2}};
    // Every third round the coordinator dies mid-protocol, alternating
    // between in-doubt (after prepare) and decided (after decision).
    const bool crash = round % 3 == 0;
    if (crash) {
      coordinator->set_crash_point(round % 6 == 0 ? CrashPoint::kAfterPrepare
                                                  : CrashPoint::kAfterDecision);
    }
    const Status s = coordinator->CommitGlobal(next_global++, branches);
    if (s.ok()) {
      ++booked[s1];
      ++booked[s2];
      continue;
    }
    ASSERT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
    ++crashes;

    // The old coordinator is gone; a successor recovers from its WAL.
    coordinator = std::make_unique<ClusterCoordinator>(cluster.get(), &wal);
    Result<ClusterCoordinator::RecoveryOutcome> out = coordinator->Recover();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    recovered_commits += out.value().committed_forward;
    presumed_aborts += out.value().presumed_aborts;

    // Atomicity: after recovery both branches agree on the outcome.
    const TxnState st1 = cluster->shard(s1)->StateOf(b1).value();
    const TxnState st2 = cluster->shard(s2)->StateOf(b2).value();
    ASSERT_TRUE(st1 == TxnState::kCommitted || st1 == TxnState::kAborted);
    ASSERT_EQ(st1, st2) << "half-committed global transaction";
    if (st1 == TxnState::kCommitted) {
      ++booked[s1];
      ++booked[s2];
    }
  }

  // The storm actually exercised both crash points and both resolutions.
  EXPECT_EQ(crashes, kRounds / 3);
  EXPECT_GT(recovered_commits, 0);
  EXPECT_GT(presumed_aborts, 0);

  // Conservation, shard by shard: the database lost exactly one unit per
  // booked unit — a lost decision or a double-driven phase 2 would break it.
  for (ShardId s = 0; s < kShards; ++s) {
    EXPECT_EQ(ConsumedOnShard(cluster.get(), s, kObjects), booked[s])
        << "shard " << s;
  }

  // Every shard's history — including the prepare/commit-prepared spans of
  // recovered global transactions — must be semantically serializable.
  std::vector<check::History> histories = recorder.Finish();
  ASSERT_EQ(histories.size(), kShards);
  for (size_t s = 0; s < histories.size(); ++s) {
    ASSERT_TRUE(histories[s].complete) << "shard " << s;
    const check::CheckReport report = check::CheckHistory(histories[s]);
    EXPECT_TRUE(report.ok()) << "shard " << s << ": " << report.ToString();
    EXPECT_GT(report.committed_txns, 0u) << "shard " << s;
  }
}

TEST(ClusterChaosTest, LossySessionsOverRouterConservePerShard) {
  constexpr size_t kShards = 3;
  constexpr size_t kObjects = 12;
  constexpr int kSessions = 300;

  sim::Simulator simulator;
  std::unique_ptr<GtmCluster> cluster =
      BuildCluster(kShards, kObjects, simulator.clock());
  storage::MemoryWalStorage wal;
  ClusterCoordinator coordinator(cluster.get(), &wal);
  GtmRouter router(cluster.get(), &coordinator);
  workload::GtmRunner runner(&router, &simulator);

  check::ClusterHistoryRecorder recorder;
  recorder.Attach(cluster.get());

  mobile::ChannelFaults faults;
  faults.loss = 0.2;
  faults.duplicate = 0.15;
  faults.reorder = 0.1;
  mobile::LossyChannel lossy(
      mobile::NetworkModel(std::make_unique<sim::ExponentialDist>(0.05)),
      faults);

  Rng rng(4242);
  Rng channel_rng(4242 ^ 0x9e3779b97f4a7c15ull);
  for (int i = 0; i < kSessions; ++i) {
    const gtm::ObjectId oid = ObjectIdFor(rng.NextBounded(kObjects));
    mobile::FtPlan plan;
    plan.base.object = oid;
    plan.base.member = 0;
    plan.base.op = Operation::Sub(Value::Int(1));
    plan.base.work_time = 1.0;
    // Tag = owning shard, so the committed-per-shard tally falls out of the
    // runner's per-tag stats.
    plan.base.tag = static_cast<int>(cluster->ShardOf(oid));
    plan.retry.request_timeout = 1.0;
    plan.retry.max_attempts = 3;
    plan.mode = mobile::FtMode::kDegradeToSleep;
    plan.reconnect_delay = 5.0;
    runner.AddFaultTolerantSession(std::move(plan), 0.4 * i, &lossy,
                                   &channel_rng);
  }

  const workload::RunStats& run = runner.Run();
  EXPECT_EQ(run.started, kSessions);
  EXPECT_GT(run.committed, 0);

  // The channel misbehaved and the shards' reply caches absorbed it.
  EXPECT_GT(lossy.counters().dropped, 0);
  EXPECT_GT(lossy.counters().duplicated, 0);
  EXPECT_GT(cluster->AggregateSnapshot().counters.duplicates_suppressed, 0);

  // Per-shard conservation: each shard's database lost exactly one unit per
  // committed session homed on that shard.
  for (ShardId s = 0; s < kShards; ++s) {
    const int tag = static_cast<int>(s);
    const int64_t committed_here = run.latency_by_tag.count(tag)
                                       ? run.latency_by_tag.at(tag).count()
                                       : 0;
    EXPECT_EQ(ConsumedOnShard(cluster.get(), s, kObjects), committed_here)
        << "shard " << s;
  }

  // Oracle pass over each shard's interleaving of the lossy-session storm:
  // redeliveries absorbed by the reply cache must not show up as
  // double-applied commits in any serial-equivalence sense.
  std::vector<check::History> histories = recorder.Finish();
  ASSERT_EQ(histories.size(), kShards);
  for (size_t s = 0; s < histories.size(); ++s) {
    ASSERT_TRUE(histories[s].complete) << "shard " << s;
    const check::CheckReport report = check::CheckHistory(histories[s]);
    EXPECT_TRUE(report.ok()) << "shard " << s << ": " << report.ToString();
  }
}

}  // namespace
}  // namespace preserial::cluster
