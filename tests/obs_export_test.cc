// Exporters: merged event streams, Chrome trace_event JSON, JSONL and
// Prometheus text exposition — plus the Snapshot percentile/merge
// behaviours the Prometheus summaries are built on.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "gtm/metrics.h"
#include "gtm/trace.h"
#include "obs/export.h"
#include "obs/trace_context.h"

namespace preserial::obs {
namespace {

using gtm::TraceEvent;
using gtm::TraceEventKind;
using gtm::TraceLog;

TEST(MergeEventsTest, OrdersByTimeStablyAcrossLogs) {
  TraceLog a;
  a.Enable(8);
  a.set_default_shard(0);
  TraceLog b;
  b.Enable(8);
  b.set_default_shard(1);
  a.Record(1.0, TraceEventKind::kBegin, 1);
  b.Record(2.0, TraceEventKind::kGrant, 1);
  a.Record(3.0, TraceEventKind::kCommit, 1);
  // Equal timestamps: log order (a before b) is preserved by stable sort.
  a.Record(5.0, TraceEventKind::kSleep, 2);
  b.Record(5.0, TraceEventKind::kAwake, 2);

  const std::vector<TraceEvent> merged = MergeEvents({&a, &b, nullptr});
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].kind, TraceEventKind::kBegin);
  EXPECT_EQ(merged[1].kind, TraceEventKind::kGrant);
  EXPECT_EQ(merged[2].kind, TraceEventKind::kCommit);
  EXPECT_EQ(merged[3].kind, TraceEventKind::kSleep);
  EXPECT_EQ(merged[4].kind, TraceEventKind::kAwake);
  EXPECT_EQ(merged[3].shard, 0);
  EXPECT_EQ(merged[4].shard, 1);
}

TEST(ChromeTraceTest, EmitsInstantsWithSpanIdsAndShardLanes) {
  ResetTraceIdsForTest();
  TraceLog log;
  log.Enable(8);
  log.set_default_shard(2);
  const TraceContext ctx = NewRootContext();
  {
    SpanScope scope(ctx);
    log.Record(1.5, TraceEventKind::kGrant, 42, "X", "sub(1)");
  }

  const std::string json = ToChromeTrace(log.Snapshot());
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"GRANT\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1500000.000"), std::string::npos);  // µs.
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":42"), std::string::npos);
  // Shard lane named for Perfetto, correlation ids in args.
  EXPECT_NE(json.find("\"name\":\"shard 2\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":1"), std::string::npos);
}

TEST(JsonlTest, OneObjectPerLineWithEscapedDetails) {
  TraceLog log;
  log.Enable(4);
  log.Record(1.0, TraceEventKind::kBegin, 1, "", "plain");
  log.Record(2.0, TraceEventKind::kAbort, 1, "X", "say \"no\"\nnow");
  const std::string jsonl = ToJsonl(log.Snapshot());

  size_t lines = 0;
  for (char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"kind\":\"BEGIN\""), std::string::npos);
  EXPECT_NE(jsonl.find("say \\\"no\\\"\\nnow"), std::string::npos);
}

TEST(PrometheusTest, CountersGaugesAndQuantiles) {
  gtm::GtmMetrics::Snapshot snap;
  snap.counters.begun = 10;
  snap.counters.committed = 7;
  snap.counters.aborted = 3;
  snap.counters.sleeps = 2;
  for (int i = 1; i <= 100; ++i) {
    snap.execution_time.Add(static_cast<double>(i));
  }

  const std::string text = ToPrometheus(snap);
  EXPECT_NE(text.find("# TYPE preserial_txns_begun_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("preserial_txns_committed_total 7"), std::string::npos);
  EXPECT_NE(text.find("preserial_sleeps_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE preserial_execution_time_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("preserial_execution_time_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.9\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("preserial_execution_time_seconds_count 100"),
            std::string::npos);
  // Custom prefix.
  const std::string other = ToPrometheus(snap, "gtm");
  EXPECT_NE(other.find("gtm_txns_begun_total 10"), std::string::npos);
}

// Satellite (c): the worst-group replication lag travels as its own gauge.
TEST(PrometheusTest, MaxLagGaugeExported) {
  gtm::GtmMetrics::Snapshot snap;
  snap.counters.replication_lag_records = 12;
  snap.counters.replication_lag_max_records = 9;
  const std::string text = ToPrometheus(snap);
  EXPECT_NE(text.find("# TYPE preserial_replication_lag_records gauge"),
            std::string::npos);
  EXPECT_NE(text.find("preserial_replication_lag_records 12"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE preserial_replication_lag_max_records gauge"),
            std::string::npos);
  EXPECT_NE(text.find("preserial_replication_lag_max_records 9"),
            std::string::npos);
}

// Satellite (b): the quantiles behind the summaries.
TEST(HistogramPercentilesTest, EmptySingleAndSpread) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.p50(), 0.0);
  EXPECT_DOUBLE_EQ(empty.p90(), 0.0);
  EXPECT_DOUBLE_EQ(empty.p99(), 0.0);

  Histogram one;
  one.Add(4.5);
  EXPECT_DOUBLE_EQ(one.p50(), 4.5);
  EXPECT_DOUBLE_EQ(one.p90(), 4.5);
  EXPECT_DOUBLE_EQ(one.p99(), 4.5);

  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(static_cast<double>(i));
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_GE(h.p90(), 85.0);
  EXPECT_LE(h.p90(), 95.0);
}

// Satellite (b): MergeFrom with empty and single-sample operands.
TEST(SnapshotMergeTest, EmptyAndSingleSampleOperands) {
  gtm::GtmMetrics::Snapshot a;  // Empty.
  gtm::GtmMetrics::Snapshot b;
  b.counters.committed = 1;
  b.execution_time.Add(3.0);  // Single sample.

  // empty.MergeFrom(single): adopts the sample.
  a.MergeFrom(b);
  EXPECT_EQ(a.counters.committed, 1);
  EXPECT_EQ(a.execution_time.count(), 1);
  EXPECT_DOUBLE_EQ(a.execution_time.p99(), 3.0);

  // single.MergeFrom(empty): unchanged.
  gtm::GtmMetrics::Snapshot c;
  a.MergeFrom(c);
  EXPECT_EQ(a.counters.committed, 1);
  EXPECT_EQ(a.execution_time.count(), 1);

  // Counters sum; the max-lag gauge merges by max, not by sum.
  gtm::GtmMetrics::Snapshot d;
  d.counters.committed = 2;
  d.counters.replication_lag_records = 4;
  d.counters.replication_lag_max_records = 4;
  a.counters.replication_lag_records = 1;
  a.counters.replication_lag_max_records = 6;
  a.MergeFrom(d);
  EXPECT_EQ(a.counters.committed, 3);
  EXPECT_EQ(a.counters.replication_lag_records, 5);      // Summed.
  EXPECT_EQ(a.counters.replication_lag_max_records, 6);  // Max.
}

TEST(SnapshotMergeTest, SummaryIncludesPercentiles) {
  gtm::GtmMetrics::Snapshot s;
  for (int i = 1; i <= 10; ++i) s.execution_time.Add(static_cast<double>(i));
  const std::string summary = s.Summary();
  EXPECT_NE(summary.find("p50"), std::string::npos);
  EXPECT_NE(summary.find("p90"), std::string::npos);
  EXPECT_NE(summary.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace preserial::obs
