#include "sql/token.h"

#include <gtest/gtest.h>

namespace preserial::sql {
namespace {

std::vector<Token> Lex(const std::string& s) {
  Result<std::vector<Token>> r = Tokenize(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value_or({});
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  const std::vector<Token> tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitiveAndNormalized) {
  const std::vector<Token> tokens = Lex("select SeLeCt SELECT");
  ASSERT_EQ(tokens.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kKeyword);
    EXPECT_EQ(tokens[i].text, "SELECT");
  }
}

TEST(LexerTest, IdentifiersKeepTheirCase) {
  const std::vector<Token> tokens = Lex("Flights free_Tickets _x9");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Flights");
  EXPECT_EQ(tokens[1].text, "free_Tickets");
  EXPECT_EQ(tokens[2].text, "_x9");
}

TEST(LexerTest, NumbersIntAndFloatAndNegative) {
  const std::vector<Token> tokens = Lex("42 -7 3.5 -0.25");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[1].type, TokenType::kInteger);
  EXPECT_EQ(tokens[1].text, "-7");
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_EQ(tokens[3].type, TokenType::kFloat);
  EXPECT_EQ(tokens[3].text, "-0.25");
}

TEST(LexerTest, StringsWithEscapedQuotes) {
  const std::vector<Token> tokens = Lex("'hello' 'it''s'");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, SymbolsIncludingTwoCharOperators) {
  const std::vector<Token> tokens = Lex("( ) , ; * = != <> < <= > >=");
  ASSERT_EQ(tokens.size(), 13u);
  EXPECT_EQ(tokens[5].text, "=");
  EXPECT_EQ(tokens[6].text, "!=");
  EXPECT_EQ(tokens[7].text, "!=");  // <> normalizes to !=.
  EXPECT_EQ(tokens[9].text, "<=");
  EXPECT_EQ(tokens[10].text, ">");
  EXPECT_EQ(tokens[11].text, ">=");
}

TEST(LexerTest, LineCommentsSkipped) {
  const std::vector<Token> tokens = Lex("SELECT -- everything\n1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "1");
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

TEST(LexerTest, Positionsrecorded) {
  const std::vector<Token> tokens = Lex("ab cd");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 3u);
}

}  // namespace
}  // namespace preserial::sql
