// Randomized fuzz of member-level semantics: one structured object whose
// two members (quantity, price) are logically dependent — the paper's own
// example. Mobile subtractions hit member 0, admin assignments hit member
// 1; the dependence makes them conflict while subtractions share. An
// oracle replays committed transactions in commit order per member.
//
// The harness lives in gtm_fuzzer.h so corpus_replay_test drives the same
// code; a failing run writes its seed into tests/corpus/ to be committed
// as a permanent regression.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "gtm_fuzzer.h"
#include "test_util.h"

namespace preserial::gtm {
namespace {

constexpr int kSteps = 2000;

class MemberFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemberFuzzTest, DependentMembersStayConsistent) {
  RunMemberFuzz(GetParam(), kSteps);
  if (HasFailure()) {
    check::ScheduleSeed failing;
    failing.scenario = check::ScenarioKind::kMemberFuzz;
    failing.steps = kSteps;
    failing.seed = GetParam();
    testutil::EmitFailingSeed(
        failing, StrFormat("member-fuzz-%llu",
                           static_cast<unsigned long long>(GetParam())));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemberFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace preserial::gtm
