// Randomized fuzz of member-level semantics: one structured object whose
// two members (quantity, price) are logically dependent — the paper's own
// example. Mobile subtractions hit member 0, admin assignments hit member
// 1; the dependence makes them conflict while subtractions share. An
// oracle replays committed transactions in commit order per member.

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "gtm/gtm.h"
#include "storage/database.h"

namespace preserial::gtm {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

struct TxnShape {
  bool is_admin = false;   // Assign on member 1; else Sub on member 0.
  int64_t qty_delta = 0;   // Cumulative applied subtractions (negative).
  int64_t price_value = 0; // Last applied assignment.
  bool waiting = false;
  bool sleeping = false;
  // An op queued while waiting, folded into the model at grant/awake time.
  int64_t pending_amount = 0;
  bool has_pending = false;
};

class MemberFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemberFuzzTest, DependentMembersStayConsistent) {
  Rng rng(GetParam());
  auto db = std::make_unique<storage::Database>();
  ASSERT_TRUE(db->Open().ok());
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"qty", ValueType::kInt64, false},
                          ColumnDef{"price", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  ASSERT_TRUE(db->CreateTable("p", std::move(schema)).ok());
  ASSERT_TRUE(db->InsertRow("p", Row({Value::Int(0), Value::Int(100000),
                                      Value::Int(100)}))
                  .ok());
  ManualClock clock;
  Gtm gtm(db.get(), &clock);
  semantics::LogicalDependencies deps;
  deps.AddDependency(0, 1);  // quantity ~ price, per the paper.
  ASSERT_TRUE(gtm.RegisterObject("P", "p", Value::Int(0), {1, 2}, deps).ok());

  int64_t expected_qty = 100000;
  int64_t expected_price = 100;
  std::map<TxnId, TxnShape> live;

  auto fold_grant = [&live](TxnId id) {
    auto it = live.find(id);
    if (it == live.end()) return;
    TxnShape& shape = it->second;
    shape.waiting = false;
    if (shape.has_pending) {
      if (shape.is_admin) {
        shape.price_value = shape.pending_amount;
      } else {
        shape.qty_delta -= shape.pending_amount;
      }
      shape.has_pending = false;
    }
  };

  auto drain = [&gtm, &fold_grant] {
    for (const GtmEvent& e : gtm.TakeEvents()) fold_grant(e.txn);
  };

  for (int step = 0; step < 2000; ++step) {
    clock.Advance(0.5);
    drain();
    const uint64_t action = rng.NextBounded(10);
    if (live.empty() || action == 0) {
      const TxnId id = gtm.Begin();
      TxnShape shape;
      shape.is_admin = rng.NextBool(0.3);
      live.emplace(id, shape);
      continue;
    }
    auto it = live.begin();
    std::advance(it, rng.NextBounded(live.size()));
    const TxnId id = it->first;
    TxnShape& shape = it->second;

    if (shape.sleeping) {
      if (rng.NextBool(0.7)) {
        if (gtm.Awake(id).ok()) {
          shape.sleeping = false;
          fold_grant(id);
        } else {
          live.erase(id);  // Awake-abort.
        }
      } else {
        ASSERT_TRUE(gtm.RequestAbort(id).ok());
        live.erase(id);
      }
      continue;
    }
    if (shape.waiting) {
      if (rng.NextBool(0.3) && gtm.Sleep(id).ok()) shape.sleeping = true;
      continue;
    }

    switch (rng.NextBounded(6)) {
      case 0: {  // Commit.
        const Status s = gtm.RequestCommit(id);
        if (s.ok()) {
          if (shape.is_admin) {
            if (shape.price_value != 0) expected_price = shape.price_value;
          } else {
            expected_qty += shape.qty_delta;
          }
        }
        live.erase(id);
        break;
      }
      case 1:  // Abort.
        ASSERT_TRUE(gtm.RequestAbort(id).ok());
        live.erase(id);
        break;
      case 2:  // Sleep.
        if (gtm.Sleep(id).ok()) shape.sleeping = true;
        break;
      default: {  // Invoke.
        const int64_t amount = rng.NextInt(1, 9);
        const semantics::MemberId member = shape.is_admin ? 1 : 0;
        const Operation op =
            shape.is_admin ? Operation::Assign(Value::Int(amount * 100))
                           : Operation::Sub(Value::Int(amount));
        const Status s = gtm.Invoke(id, "P", member, op);
        if (s.ok()) {
          if (shape.is_admin) {
            shape.price_value = amount * 100;
          } else {
            shape.qty_delta -= amount;
          }
        } else if (s.code() == StatusCode::kWaiting) {
          shape.waiting = true;
          shape.has_pending = true;
          shape.pending_amount = shape.is_admin ? amount * 100 : amount;
        } else if (s.code() == StatusCode::kDeadlock) {
          ASSERT_TRUE(gtm.RequestAbort(id).ok());
          live.erase(id);
        } else {
          ADD_FAILURE() << "unexpected invoke status " << s.ToString();
        }
        break;
      }
    }
    if (step % 61 == 0) {
      const Status inv = gtm.CheckInvariants();
      ASSERT_TRUE(inv.ok()) << "step " << step << ": " << inv.ToString();
    }
  }

  // Drain every live transaction.
  bool progress = true;
  while (!live.empty() && progress) {
    progress = false;
    drain();
    std::vector<TxnId> ids;
    for (const auto& [id, _] : live) ids.push_back(id);
    for (TxnId id : ids) {
      auto it = live.find(id);
      if (it == live.end()) continue;
      TxnShape& shape = it->second;
      clock.Advance(0.5);
      if (shape.sleeping) {
        if (gtm.Awake(id).ok()) {
          shape.sleeping = false;
          fold_grant(id);
        } else {
          live.erase(id);
        }
      } else if (shape.waiting) {
        drain();
        if (live.count(id) > 0 && live[id].waiting) {
          ASSERT_TRUE(gtm.RequestAbort(id).ok());
          live.erase(id);
        }
      } else {
        const Status s = gtm.RequestCommit(id);
        if (s.ok()) {
          if (shape.is_admin) {
            if (shape.price_value != 0) expected_price = shape.price_value;
          } else {
            expected_qty += shape.qty_delta;
          }
        }
        live.erase(id);
      }
      progress = true;
    }
  }
  ASSERT_TRUE(live.empty());

  // Oracle vs middleware cache vs database, per member.
  EXPECT_EQ(gtm.PermanentValue("P", 0).value(), Value::Int(expected_qty));
  EXPECT_EQ(gtm.PermanentValue("P", 1).value(), Value::Int(expected_price));
  storage::Table* table = db->GetTable("p").value();
  EXPECT_EQ(table->GetColumnByKey(Value::Int(0), 1).value(),
            Value::Int(expected_qty));
  EXPECT_EQ(table->GetColumnByKey(Value::Int(0), 2).value(),
            Value::Int(expected_price));
  EXPECT_TRUE(gtm.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemberFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace preserial::gtm
