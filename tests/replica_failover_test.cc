// Failover: killing the primary and promoting a backup must preserve the
// whole transaction population — Sleeping transactions with their
// A_t_sleep timestamps (the paper's Algorithm 9 awake-check keeps giving
// the same answers on the new primary), prepared 2PC branches, reply
// caches (*Once exactly-once across the promotion) — and must fence the
// old epoch so a stale primary's records bounce.

#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "gtm/trace.h"
#include "replica/replica.h"

namespace preserial::replica {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class ReplicaFailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_.Set(0.0);
    ReplicaOptions opts;
    opts.num_backups = 2;
    group_ = std::make_unique<ReplicatedGtm>(&clock_, gtm::GtmOptions{}, opts,
                                             &ship_rng_);
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(group_->CreateTable("obj", std::move(schema)).ok());
    ASSERT_TRUE(
        group_->InsertRow("obj", Row({Value::Int(0), Value::Int(100)})).ok());
    ASSERT_TRUE(group_->RegisterObject("X", "obj", Value::Int(0), {1}).ok());
  }

  Value PrimaryQty() {
    return group_->primary_db()
        ->GetTable("obj")
        .value()
        ->GetColumnByKey(Value::Int(0), 1)
        .value();
  }

  PromotionReport KillAndPromote() {
    group_->KillPrimary();
    Result<PromotionReport> rep = group_->Promote();
    EXPECT_TRUE(rep.ok()) << rep.status().ToString();
    return rep.value();
  }

  ManualClock clock_;
  Rng ship_rng_{0x5eedULL};
  std::unique_ptr<ReplicatedGtm> group_;
};

TEST_F(ReplicaFailoverTest, PromoteRefusesWhilePrimaryAlive) {
  EXPECT_EQ(group_->Promote().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ReplicaFailoverTest, DeadPrimaryAnswersUnavailableUntilPromotion) {
  const TxnId t = group_->Begin();
  ASSERT_TRUE(group_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  group_->KillPrimary();
  // The outage window: every endpoint call is a void, not an error reply.
  EXPECT_EQ(group_->Begin(), kInvalidTxnId);
  EXPECT_EQ(group_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(group_->RequestCommit(t).code(), StatusCode::kUnavailable);
  EXPECT_EQ(group_->StateOf(t).status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(group_->TakeEvents().empty());

  Result<PromotionReport> rep = group_->Promote();
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep.value().new_epoch, 2u);
  EXPECT_EQ(group_->epoch(), 2u);
  EXPECT_NE(group_->primary_index(), 0u);
  // The in-flight transaction survived with its virtual work intact.
  EXPECT_EQ(group_->StateOf(t).value(), gtm::TxnState::kActive);
  ASSERT_TRUE(group_->RequestCommit(t).ok());
  EXPECT_EQ(PrimaryQty(), Value::Int(99));
  // Fresh transactions run on the promoted primary.
  const TxnId t2 = group_->Begin();
  ASSERT_NE(t2, kInvalidTxnId);
  ASSERT_TRUE(group_->Invoke(t2, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(group_->RequestCommit(t2).ok());
  EXPECT_EQ(PrimaryQty(), Value::Int(98));
  EXPECT_EQ(
      group_->primary_gtm()->metrics().counters().failovers_total, 1);
}

TEST_F(ReplicaFailoverTest, EpochFencesStalePrimaryRecords) {
  const TxnId t = group_->Begin();
  ASSERT_TRUE(group_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  KillAndPromote();
  ReplicaNode* promoted = group_->node(group_->primary_index());
  // A record stamped by the fenced epoch — as if the dead primary came
  // back and kept shipping — is rejected, not applied.
  ReplicaRecord stale;
  stale.lsn = promoted->last_applied() + 1;
  stale.epoch = 1;  // Pre-promotion epoch.
  stale.kind = ReplicaOpKind::kBegin;
  stale.txn = 999;
  EXPECT_EQ(promoted->Apply(stale).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(promoted->fenced_rejections(), 1);
  EXPECT_EQ(promoted->last_applied() + 1, stale.lsn);  // Nothing applied.
}

TEST_F(ReplicaFailoverTest, SleepingTransactionsSurviveWithTimestamps) {
  clock_.Set(5.0);
  const TxnId sleeper = group_->Begin();
  ASSERT_TRUE(
      group_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Set(7.5);
  ASSERT_TRUE(group_->Sleep(sleeper).ok());
  clock_.Set(9.0);
  const PromotionReport rep = KillAndPromote();
  EXPECT_EQ(rep.sleeping_at_failure, 1);
  EXPECT_EQ(rep.sleeping_preserved, 1);
  EXPECT_EQ(rep.sleeping_lost, 0);
  EXPECT_EQ(group_->StateOf(sleeper).value(), gtm::TxnState::kSleeping);
  // A_t_sleep replayed bit-exact: the promoted node pinned its replay
  // clock to the logged Sleep timestamp.
  EXPECT_DOUBLE_EQ(
      group_->primary_gtm()->GetTxn(sleeper)->sleep_since(), 7.5);
}

TEST_F(ReplicaFailoverTest, Algorithm9StaysCorrectAfterFailover) {
  // Two sleepers park before the crash.
  const TxnId doomed = group_->Begin();
  const TxnId survivor = group_->Begin();
  ASSERT_TRUE(
      group_->Invoke(doomed, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(
      group_->Invoke(survivor, "X", 0, Operation::Sub(Value::Int(2))).ok());
  clock_.Set(1.0);
  ASSERT_TRUE(group_->Sleep(doomed).ok());
  ASSERT_TRUE(group_->Sleep(survivor).ok());
  clock_.Set(2.0);
  KillAndPromote();
  // On the NEW primary: an incompatible assignment commits while both
  // still sleep...
  const TxnId admin = group_->Begin();
  ASSERT_TRUE(
      group_->Invoke(admin, "X", 0, Operation::Assign(Value::Int(50))).ok());
  ASSERT_TRUE(group_->RequestCommit(admin).ok());
  clock_.Set(3.0);
  // ...so the paper's awake-check (X_tc vs A_t_sleep, both replayed state)
  // aborts the sleepers exactly as an unfailed primary would have.
  EXPECT_EQ(group_->Awake(doomed).code(), StatusCode::kAborted);
  EXPECT_EQ(group_->StateOf(doomed).value(), gtm::TxnState::kAborted);
  EXPECT_EQ(group_->Awake(survivor).code(), StatusCode::kAborted);
  EXPECT_EQ(PrimaryQty(), Value::Int(50));
}

TEST_F(ReplicaFailoverTest, Algorithm9CompatibleCommitStillAwakes) {
  const TxnId sleeper = group_->Begin();
  ASSERT_TRUE(
      group_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Set(1.0);
  ASSERT_TRUE(group_->Sleep(sleeper).ok());
  KillAndPromote();
  // Only compatible subtractions commit during the sleep.
  const TxnId other = group_->Begin();
  clock_.Set(2.0);
  ASSERT_TRUE(
      group_->Invoke(other, "X", 0, Operation::Sub(Value::Int(5))).ok());
  ASSERT_TRUE(group_->RequestCommit(other).ok());
  clock_.Set(3.0);
  ASSERT_TRUE(group_->Awake(sleeper).ok());
  ASSERT_TRUE(group_->RequestCommit(sleeper).ok());
  EXPECT_EQ(PrimaryQty(), Value::Int(94));
}

TEST_F(ReplicaFailoverTest, PreparedBranchSurvivesMidTwoPcKill) {
  const TxnId branch = group_->Begin();
  ASSERT_TRUE(
      group_->Invoke(branch, "X", 0, Operation::Sub(Value::Int(10))).ok());
  ASSERT_TRUE(group_->Prepare(branch).ok());
  // Coordinator decided commit, but the primary died before hearing it.
  KillAndPromote();
  EXPECT_TRUE(group_->primary_gtm()->IsPrepared(branch));
  ASSERT_TRUE(group_->CommitPrepared(branch).ok());
  EXPECT_EQ(group_->StateOf(branch).value(), gtm::TxnState::kCommitted);
  EXPECT_EQ(PrimaryQty(), Value::Int(90));
}

TEST_F(ReplicaFailoverTest, OnceRequestsStayExactlyOnceAcrossPromotion) {
  const TxnId t = group_->Begin();
  ASSERT_TRUE(
      group_->InvokeOnce(t, 1, "X", 0, Operation::Sub(Value::Int(1))).ok());
  KillAndPromote();
  // The client never saw the reply (it died with the primary's channel)
  // and redelivers: the replayed reply cache suppresses the duplicate.
  ASSERT_TRUE(
      group_->InvokeOnce(t, 1, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(group_->CommitOnce(t, 2).ok());
  ASSERT_TRUE(group_->CommitOnce(t, 2).ok());
  EXPECT_EQ(PrimaryQty(), Value::Int(99));  // Applied exactly once.
  EXPECT_GE(
      group_->primary_gtm()->metrics().counters().duplicates_suppressed, 2);
}

TEST_F(ReplicaFailoverTest, PromotionSynthesizesGrantEventsForActiveTxns) {
  const TxnId t = group_->Begin();
  ASSERT_TRUE(group_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  (void)group_->TakeEvents();
  group_->node(group_->primary_index())->gtm()->trace()->Enable(64);
  const PromotionReport rep = [&] {
    group_->KillPrimary();
    // Trace the promotion on the winner (deterministic: highest LSN wins,
    // ties at the lowest index — but all backups are equal here, so just
    // enable tracing on both).
    for (size_t i = 1; i < group_->num_nodes(); ++i) {
      group_->node(i)->gtm()->trace()->Enable(64);
    }
    Result<PromotionReport> r = group_->Promote();
    EXPECT_TRUE(r.ok());
    return r.value();
  }();
  EXPECT_EQ(rep.grant_events_synthesized, 1);
  // The re-announced grant reaches whoever pumps events next, so a parked
  // session re-binds and resumes instead of hanging forever.
  std::vector<gtm::GtmEvent> events = group_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, t);
  EXPECT_EQ(events[0].object, "X");
  bool saw_promote = false;
  for (const gtm::TraceEvent& e : group_->primary_gtm()->trace()->Snapshot()) {
    if (e.kind == gtm::TraceEventKind::kPromote) saw_promote = true;
  }
  EXPECT_TRUE(saw_promote);
}

TEST_F(ReplicaFailoverTest, SecondFailoverPromotesTheLastBackup) {
  const TxnId t = group_->Begin();
  ASSERT_TRUE(group_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  KillAndPromote();
  ASSERT_TRUE(group_->RequestCommit(t).ok());
  KillAndPromote();
  EXPECT_EQ(group_->epoch(), 3u);
  EXPECT_EQ(PrimaryQty(), Value::Int(99));
  // With every other node dead, losing this primary is unrecoverable.
  group_->KillPrimary();
  EXPECT_EQ(group_->Promote().status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace preserial::replica
