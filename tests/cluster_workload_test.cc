// End-to-end sharded workload runs: RunShardedGtmExperiment's conservation
// equations (clients vs. coordinator vs. per-shard ground truth), shard
// metrics aggregation, the cross-shard knob, and the travel-agency tour
// workload running unmodified on a 4-shard cluster.

#include <gtest/gtest.h>

#include <numeric>

#include "workload/gtm_experiment.h"
#include "workload/travel_agency.h"

namespace preserial::workload {
namespace {

ShardedExperimentSpec BaseSpec() {
  ShardedExperimentSpec spec;
  spec.base.num_txns = 600;
  spec.base.num_objects = 32;
  spec.base.alpha = 0.8;
  spec.base.beta = 0.05;
  spec.base.interarrival = 0.5;
  spec.base.work_time = 2.0;
  spec.base.initial_quantity = 1000000;
  spec.base.seed = 42;
  spec.num_shards = 4;
  spec.cross_shard_ratio = 0.25;
  return spec;
}

TEST(ClusterWorkloadTest, ShardedRunConservesAcrossAllLedgers) {
  const ShardedExperimentSpec spec = BaseSpec();
  const ShardedExperimentResult r = RunShardedGtmExperiment(spec);

  EXPECT_EQ(r.run.started, 600);
  EXPECT_GT(r.run.committed, 0);
  EXPECT_GT(r.cross_shard_planned, 0);
  EXPECT_GT(r.coordinator.commits, 0);

  // Conservation, cluster-wide: every committed subtract session drained
  // one unit, and every coordinator-committed cross-shard transaction
  // drained one more on its second shard.
  const int64_t committed_subtracts =
      r.run.latency_by_tag.count(kTagSubtract)
          ? r.run.latency_by_tag.at(kTagSubtract).count()
          : 0;
  EXPECT_EQ(r.quantity_consumed, committed_subtracts + r.coordinator.commits);

  // The per-shard ground truth sums to the cluster total.
  ASSERT_EQ(r.consumed_by_shard.size(), spec.num_shards);
  EXPECT_EQ(std::accumulate(r.consumed_by_shard.begin(),
                            r.consumed_by_shard.end(), int64_t{0}),
            r.quantity_consumed);

  // Branch commits seen by the shards = single-branch fast-path commits
  // (committed globals minus 2PC ones) + two branches per 2PC commit.
  ASSERT_EQ(r.shard_snapshots.size(), spec.num_shards);
  int64_t branch_commits = 0;
  for (const auto& snap : r.shard_snapshots) {
    branch_commits += snap.counters.committed;
  }
  EXPECT_EQ(branch_commits, r.router_committed + r.coordinator.commits);
  // The merged snapshot agrees with the per-shard sum.
  EXPECT_EQ(r.aggregate.counters.committed, branch_commits);
  // Clients and router agree on the outcome tally.
  EXPECT_EQ(r.router_committed, r.run.committed);
}

TEST(ClusterWorkloadTest, ZeroCrossShardRatioStaysOnTheFastPath) {
  ShardedExperimentSpec spec = BaseSpec();
  spec.cross_shard_ratio = 0.0;
  const ShardedExperimentResult r = RunShardedGtmExperiment(spec);
  EXPECT_EQ(r.cross_shard_planned, 0);
  EXPECT_EQ(r.coordinator.commits, 0);
  EXPECT_EQ(r.coordinator.aborts, 0);
  EXPECT_GT(r.run.committed, 0);
  const int64_t committed_subtracts =
      r.run.latency_by_tag.count(kTagSubtract)
          ? r.run.latency_by_tag.at(kTagSubtract).count()
          : 0;
  EXPECT_EQ(r.quantity_consumed, committed_subtracts);
}

TEST(ClusterWorkloadTest, ShardedRunIsDeterministicUnderASeed) {
  const ShardedExperimentSpec spec = BaseSpec();
  const ShardedExperimentResult a = RunShardedGtmExperiment(spec);
  const ShardedExperimentResult b = RunShardedGtmExperiment(spec);
  EXPECT_EQ(a.run.committed, b.run.committed);
  EXPECT_EQ(a.run.aborted, b.run.aborted);
  EXPECT_EQ(a.quantity_consumed, b.quantity_consumed);
  EXPECT_EQ(a.cross_shard_planned, b.cross_shard_planned);
  EXPECT_EQ(a.coordinator.commits, b.coordinator.commits);
  EXPECT_EQ(a.consumed_by_shard, b.consumed_by_shard);
}

TEST(ClusterWorkloadTest, RunStatsBreaksAbortsDownByShard) {
  ShardedExperimentSpec spec = BaseSpec();
  spec.base.beta = 0.3;  // Plenty of disconnections -> awake aborts.
  const ShardedExperimentResult r = RunShardedGtmExperiment(spec);
  ASSERT_GT(r.run.aborted, 0);
  // Every abort is attributed to a (tag, shard) pair with a real shard id,
  // and the breakdown sums back to the per-tag totals.
  int64_t total = 0;
  for (const auto& [key, count] : r.run.aborted_by_tag_shard) {
    EXPECT_GE(key.second, 0);
    EXPECT_LT(key.second, static_cast<int>(spec.num_shards));
    total += count;
  }
  int64_t by_tag = 0;
  for (const auto& [tag, count] : r.run.aborted_by_tag) by_tag += count;
  EXPECT_EQ(total, by_tag);
  EXPECT_EQ(total, r.run.aborted);
}

TEST(ClusterWorkloadTest, TourWorkloadRunsUnmodifiedOnFourShards) {
  TourWorkloadSpec spec;
  spec.num_tours = 150;
  spec.beta = 0.1;
  spec.num_shards = 4;
  spec.seed = 7;
  const TourResult r = RunGtmTourExperiment(spec);
  EXPECT_EQ(r.run.started, 150);
  EXPECT_GT(r.run.committed, 0);
  // Tours touch flights + hotels + museums + cars: with hash partitioning
  // over 4 shards, essentially every tour is cross-shard.
  EXPECT_GT(r.coordinator_commits, 0);
  EXPECT_LE(r.coordinator_commits, r.run.committed);
}

}  // namespace
}  // namespace preserial::workload
