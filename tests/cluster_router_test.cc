// GtmRouter: global transactions fanned out over shard branches — lazy
// branch creation, the single-branch fast path vs. two-phase commit,
// cluster-wide Sleep/Awake with sibling invalidation, idempotent *Once
// dedup, and branch-to-global translation of events and timeout victims.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/coordinator.h"
#include "cluster/router.h"
#include "common/clock.h"
#include "common/strings.h"
#include "gtm/txn_state.h"
#include "semantics/operation.h"
#include "storage/wal.h"

namespace preserial::cluster {
namespace {

using gtm::TxnState;
using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr char kTable[] = "resources";
constexpr size_t kNumObjects = 24;

gtm::ObjectId ObjectIdFor(size_t i) { return StrFormat("%s/%zu", kTable, i); }

class ClusterRouterTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(3); }

  void Build(size_t num_shards) {
    cluster_ = std::make_unique<GtmCluster>(num_shards, &clock_);
    Result<Schema> schema = Schema::Create(
        {
            ColumnDef{"id", ValueType::kInt64, false},
            ColumnDef{"qty", ValueType::kInt64, false},
        },
        /*primary_key=*/0);
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(
        cluster_->CreateTableAllShards(kTable, std::move(schema).value()).ok());
    for (size_t i = 0; i < kNumObjects; ++i) {
      const gtm::ObjectId oid = ObjectIdFor(i);
      const Value key = Value::Int(static_cast<int64_t>(i));
      ASSERT_TRUE(cluster_->db(cluster_->ShardOf(oid))
                      ->InsertRow(kTable, Row({key, Value::Int(1000)}))
                      .ok());
      ASSERT_TRUE(cluster_->RegisterObject(oid, kTable, key, {1}).ok());
    }
    wal_ = std::make_unique<storage::MemoryWalStorage>();
    coordinator_ =
        std::make_unique<ClusterCoordinator>(cluster_.get(), wal_.get());
    router_ = std::make_unique<GtmRouter>(cluster_.get(), coordinator_.get());
  }

  gtm::ObjectId ObjectOnShard(ShardId shard, size_t skip = 0) const {
    for (size_t i = 0; i < kNumObjects; ++i) {
      if (cluster_->ShardOf(ObjectIdFor(i)) == shard) {
        if (skip == 0) return ObjectIdFor(i);
        --skip;
      }
    }
    ADD_FAILURE() << "no object on shard " << shard;
    return "";
  }

  int64_t QtyOf(const gtm::ObjectId& oid) const {
    Result<Value> v = cluster_->PermanentValue(oid, 0);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return v.ok() ? v.value().as_int() : -1;
  }

  TxnState BranchState(TxnId global, ShardId shard) const {
    Result<TxnId> branch = router_->BranchOf(global, shard);
    EXPECT_TRUE(branch.ok());
    return cluster_->shard(shard)->StateOf(branch.value()).value();
  }

  ManualClock clock_;
  std::unique_ptr<GtmCluster> cluster_;
  std::unique_ptr<storage::MemoryWalStorage> wal_;
  std::unique_ptr<ClusterCoordinator> coordinator_;
  std::unique_ptr<GtmRouter> router_;
};

TEST_F(ClusterRouterTest, BranchesOpenLazilyPerShard) {
  const TxnId t = router_->Begin();
  EXPECT_EQ(router_->BranchCount(t), 0u);
  EXPECT_EQ(router_->StateOf(t).value(), TxnState::kActive);

  const gtm::ObjectId a0 = ObjectOnShard(0), a1 = ObjectOnShard(0, 1);
  const gtm::ObjectId b0 = ObjectOnShard(1);
  ASSERT_TRUE(router_->Invoke(t, a0, 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(router_->BranchCount(t), 1u);
  // A second object on the same shard rides the existing branch.
  ASSERT_TRUE(router_->Invoke(t, a1, 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(router_->BranchCount(t), 1u);
  ASSERT_TRUE(router_->Invoke(t, b0, 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(router_->BranchCount(t), 2u);

  EXPECT_TRUE(router_->BranchOf(t, 0).ok());
  EXPECT_TRUE(router_->BranchOf(t, 1).ok());
  EXPECT_EQ(router_->BranchOf(t, 2).status().code(), StatusCode::kNotFound);
}

TEST_F(ClusterRouterTest, SingleBranchCommitSkipsTwoPhase) {
  const TxnId t = router_->Begin();
  const gtm::ObjectId a = ObjectOnShard(0);
  ASSERT_TRUE(router_->Invoke(t, a, 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(router_->RequestCommit(t).ok());

  EXPECT_EQ(QtyOf(a), 999);
  EXPECT_EQ(router_->StateOf(t).value(), TxnState::kCommitted);
  EXPECT_EQ(router_->committed(), 1);
  // The fast path never touched the coordinator.
  EXPECT_EQ(coordinator_->counters().commits, 0);
}

TEST_F(ClusterRouterTest, MultiBranchCommitRunsTwoPhase) {
  const TxnId t = router_->Begin();
  const gtm::ObjectId a = ObjectOnShard(0), b = ObjectOnShard(1);
  ASSERT_TRUE(router_->Invoke(t, a, 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(router_->Invoke(t, b, 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(router_->RequestCommit(t).ok());

  EXPECT_EQ(QtyOf(a), 999);
  EXPECT_EQ(QtyOf(b), 999);
  EXPECT_EQ(router_->StateOf(t).value(), TxnState::kCommitted);
  EXPECT_EQ(coordinator_->counters().commits, 1);
  EXPECT_EQ(BranchState(t, 0), TxnState::kCommitted);
  EXPECT_EQ(BranchState(t, 1), TxnState::kCommitted);
}

TEST_F(ClusterRouterTest, CommitRequiresALiveTransaction) {
  const TxnId t = router_->Begin();
  ASSERT_TRUE(router_->RequestCommit(t).ok());  // Zero branches: trivial.
  EXPECT_EQ(router_->RequestCommit(t).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(router_->RequestCommit(9999).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ClusterRouterTest, AbortFansOutToEveryBranch) {
  const TxnId t = router_->Begin();
  const gtm::ObjectId a = ObjectOnShard(0), b = ObjectOnShard(1);
  ASSERT_TRUE(router_->Invoke(t, a, 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(router_->Invoke(t, b, 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(router_->RequestAbort(t).ok());

  EXPECT_EQ(router_->StateOf(t).value(), TxnState::kAborted);
  EXPECT_EQ(BranchState(t, 0), TxnState::kAborted);
  EXPECT_EQ(BranchState(t, 1), TxnState::kAborted);
  EXPECT_EQ(QtyOf(a), 1000);
  EXPECT_EQ(QtyOf(b), 1000);
  EXPECT_EQ(router_->aborted(), 1);
}

TEST_F(ClusterRouterTest, SleepAndAwakeAreClusterWide) {
  const TxnId t = router_->Begin();
  const gtm::ObjectId a = ObjectOnShard(0), b = ObjectOnShard(1);
  ASSERT_TRUE(router_->Invoke(t, a, 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(router_->Invoke(t, b, 0, Operation::Sub(Value::Int(1))).ok());

  ASSERT_TRUE(router_->Sleep(t).ok());
  EXPECT_EQ(router_->StateOf(t).value(), TxnState::kSleeping);
  EXPECT_EQ(BranchState(t, 0), TxnState::kSleeping);
  EXPECT_EQ(BranchState(t, 1), TxnState::kSleeping);

  clock_.Advance(100.0);
  ASSERT_TRUE(router_->Awake(t).ok());
  EXPECT_EQ(router_->StateOf(t).value(), TxnState::kActive);
  ASSERT_TRUE(router_->RequestCommit(t).ok());
  EXPECT_EQ(QtyOf(a), 999);
  EXPECT_EQ(QtyOf(b), 999);
}

TEST_F(ClusterRouterTest, AwakeAbortOnOneShardInvalidatesSiblings) {
  const TxnId sleeper = router_->Begin();
  const gtm::ObjectId a = ObjectOnShard(0), b = ObjectOnShard(1);
  ASSERT_TRUE(
      router_->Invoke(sleeper, a, 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(
      router_->Invoke(sleeper, b, 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(router_->Sleep(sleeper).ok());

  // While the sleeper is disconnected, an incompatible Assign commits on
  // shard 0 — Algorithm 9's staleness check must abort the sleeper there.
  clock_.Advance(1.0);
  const TxnId admin = router_->Begin();
  ASSERT_TRUE(
      router_->Invoke(admin, a, 0, Operation::Assign(Value::Int(5))).ok());
  ASSERT_TRUE(router_->RequestCommit(admin).ok());

  EXPECT_EQ(router_->Awake(sleeper).code(), StatusCode::kAborted);
  EXPECT_EQ(router_->StateOf(sleeper).value(), TxnState::kAborted);
  // The healthy shard's branch was taken down with it.
  EXPECT_EQ(BranchState(sleeper, 1), TxnState::kAborted);
  EXPECT_EQ(QtyOf(b), 1000);
  EXPECT_EQ(router_->aborted(), 1);
}

TEST_F(ClusterRouterTest, SleepBeforeAnyBranchParksAtTheRouter) {
  const TxnId t = router_->Begin();
  ASSERT_TRUE(router_->Sleep(t).ok());
  EXPECT_EQ(router_->StateOf(t).value(), TxnState::kSleeping);
  // Operations are refused while asleep, as on a single Gtm.
  EXPECT_FALSE(
      router_->Invoke(t, ObjectOnShard(0), 0, Operation::Sub(Value::Int(1)))
          .ok());
  ASSERT_TRUE(router_->Awake(t).ok());
  EXPECT_EQ(router_->StateOf(t).value(), TxnState::kActive);
  const gtm::ObjectId a = ObjectOnShard(0);
  ASSERT_TRUE(router_->Invoke(t, a, 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(router_->RequestCommit(t).ok());
  EXPECT_EQ(QtyOf(a), 999);
}

TEST_F(ClusterRouterTest, CommitOnceDedupsTheFanOut) {
  const TxnId t = router_->Begin();
  const gtm::ObjectId a = ObjectOnShard(0), b = ObjectOnShard(1);
  ASSERT_TRUE(router_->Invoke(t, a, 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(router_->Invoke(t, b, 0, Operation::Sub(Value::Int(1))).ok());

  const Status first = router_->CommitOnce(t, 7);
  ASSERT_TRUE(first.ok());
  // Redelivery: cached reply, no second two-phase commit, no double effect.
  const Status again = router_->CommitOnce(t, 7);
  EXPECT_EQ(again.code(), first.code());
  EXPECT_EQ(coordinator_->counters().commits, 1);
  EXPECT_EQ(router_->committed(), 1);
  EXPECT_EQ(QtyOf(a), 999);
  EXPECT_EQ(QtyOf(b), 999);
}

TEST_F(ClusterRouterTest, InvokeOnceForwardsSeqToTheOwningShard) {
  const TxnId t = router_->Begin();
  const gtm::ObjectId a = ObjectOnShard(0);
  ASSERT_TRUE(
      router_->InvokeOnce(t, 1, a, 0, Operation::Sub(Value::Int(1))).ok());
  // Same seq redelivered: suppressed by the shard's reply cache.
  ASSERT_TRUE(
      router_->InvokeOnce(t, 1, a, 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(router_->RequestCommit(t).ok());
  EXPECT_EQ(QtyOf(a), 999);  // One unit, not two.
}

TEST_F(ClusterRouterTest, TakeEventsTranslatesBranchIdsToGlobals) {
  const gtm::ObjectId a = ObjectOnShard(0);
  const TxnId holder = router_->Begin();
  ASSERT_TRUE(
      router_->Invoke(holder, a, 0, Operation::Assign(Value::Int(500))).ok());

  const TxnId waiter = router_->Begin();
  EXPECT_EQ(router_->Invoke(waiter, a, 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  EXPECT_EQ(router_->StateOf(waiter).value(), TxnState::kWaiting);

  ASSERT_TRUE(router_->RequestCommit(holder).ok());
  std::vector<gtm::GtmEvent> events = router_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  // The admission event names the *global* transaction, not the branch.
  EXPECT_EQ(events[0].txn, waiter);
  EXPECT_EQ(events[0].object, a);
  EXPECT_EQ(router_->StateOf(waiter).value(), TxnState::kActive);
}

TEST_F(ClusterRouterTest, ExpiredWaitTakesDownSiblingBranches) {
  const gtm::ObjectId a = ObjectOnShard(0), b = ObjectOnShard(1);
  const TxnId holder = router_->Begin();
  ASSERT_TRUE(
      router_->Invoke(holder, a, 0, Operation::Assign(Value::Int(500))).ok());

  // The waiter first does useful work on shard 1, then blocks on shard 0.
  const TxnId waiter = router_->Begin();
  ASSERT_TRUE(
      router_->Invoke(waiter, b, 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(router_->Invoke(waiter, a, 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);

  clock_.Advance(60.0);
  std::vector<TxnId> victims = router_->AbortExpiredWaits(30.0);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], waiter);  // Global id, not the shard-0 branch id.
  EXPECT_EQ(router_->StateOf(waiter).value(), TxnState::kAborted);
  EXPECT_EQ(BranchState(waiter, 1), TxnState::kAborted);
  EXPECT_EQ(QtyOf(b), 1000);
  // The holder is untouched and can still commit.
  ASSERT_TRUE(router_->RequestCommit(holder).ok());
}

}  // namespace
}  // namespace preserial::cluster
