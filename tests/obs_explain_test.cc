// Gtm::Explain() / GtmCluster::Explain(): live lock-table and wait-graph
// introspection, and the Algorithm 9 sleeper verdict — "will Awake abort,
// and why" — evaluated without waking anyone.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/strings.h"
#include "gtm/gtm.h"
#include "obs/explain.h"
#include "storage/database.h"

namespace preserial::obs {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class ObsExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("obj", std::move(schema)).ok());
    ASSERT_TRUE(
        db_->InsertRow("obj", Row({Value::Int(0), Value::Int(100)})).ok());
    gtm_ = std::make_unique<gtm::Gtm>(db_.get(), &clock_);
    ASSERT_TRUE(gtm_->RegisterObject("X", "obj", Value::Int(0), {1}).ok());
  }

  std::unique_ptr<storage::Database> db_;
  ManualClock clock_;
  std::unique_ptr<gtm::Gtm> gtm_;
};

TEST_F(ObsExplainTest, ListsHoldersWaitersAndWaitEdges) {
  const TxnId holder = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(holder, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Advance(2.0);
  const TxnId waiter = gtm_->Begin();
  ASSERT_EQ(gtm_->Invoke(waiter, "X", 0, Operation::Assign(Value::Int(5)))
                .code(),
            StatusCode::kWaiting);
  clock_.Advance(3.0);

  const GtmExplain ex = gtm_->Explain();
  EXPECT_DOUBLE_EQ(ex.now, 5.0);
  ASSERT_EQ(ex.objects.size(), 1u);
  const ObjectInfo& obj = ex.objects[0];
  EXPECT_EQ(obj.id, "X");
  ASSERT_EQ(obj.holders.size(), 1u);
  EXPECT_EQ(obj.holders[0].txn, holder);
  EXPECT_FALSE(obj.holders[0].sleeping);
  ASSERT_EQ(obj.waiters.size(), 1u);
  EXPECT_EQ(obj.waiters[0].txn, waiter);
  EXPECT_DOUBLE_EQ(obj.waiters[0].waited, 3.0);
  ASSERT_EQ(ex.wait_edges.size(), 1u);
  EXPECT_EQ(ex.wait_edges[0].waiter, waiter);
  EXPECT_EQ(ex.wait_edges[0].holder, holder);
  EXPECT_EQ(ex.wait_edges[0].object, "X");
  EXPECT_EQ(ex.txns.size(), 2u);  // Both still live.
}

TEST_F(ObsExplainTest, SleeperVerdictSurvivesCompatibleCommit) {
  const TxnId sleeper = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Advance(1.0);
  ASSERT_TRUE(gtm_->Sleep(sleeper).ok());
  // A compatible subtraction commits while the sleeper is away.
  const TxnId other = gtm_->Begin();
  clock_.Advance(1.0);
  ASSERT_TRUE(gtm_->Invoke(other, "X", 0, Operation::Sub(Value::Int(5))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(other).ok());
  clock_.Advance(1.0);

  const GtmExplain ex = gtm_->Explain();
  const SleeperVerdict* v = ex.VerdictFor(sleeper);
  ASSERT_NE(v, nullptr);
  EXPECT_FALSE(v->will_abort);
  EXPECT_DOUBLE_EQ(v->sleep_since, 1.0);
  EXPECT_DOUBLE_EQ(v->asleep_for, 2.0);
  // The prediction holds: Awake succeeds.
  EXPECT_TRUE(gtm_->Awake(sleeper).ok());
}

// Acceptance: Explain() a Sleeping transaction and predict its Awake-abort
// verdict — blocker, object and X_tc > A_t_sleep — before Awake is called;
// then confirm Awake does exactly that.
TEST_F(ObsExplainTest, SleeperVerdictPredictsAwakeAbort) {
  const TxnId sleeper = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Advance(1.0);
  ASSERT_TRUE(gtm_->Sleep(sleeper).ok());
  // An incompatible assignment commits during the sleep (X_tc = 2.0 >
  // A_t_sleep = 1.0): Algorithm 9 must abort the sleeper on Awake.
  const TxnId admin = gtm_->Begin();
  clock_.Advance(1.0);
  ASSERT_TRUE(
      gtm_->Invoke(admin, "X", 0, Operation::Assign(Value::Int(42))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(admin).ok());
  clock_.Advance(1.0);

  const GtmExplain ex = gtm_->Explain();
  const SleeperVerdict* v = ex.VerdictFor(sleeper);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->will_abort);
  EXPECT_EQ(v->object, "X");
  EXPECT_EQ(v->blocker, admin);
  EXPECT_DOUBLE_EQ(v->sleep_since, 1.0);
  // Committed blocker: permanent verdict, stamped with its commit time.
  EXPECT_DOUBLE_EQ(v->blocker_commit_time, 2.0);
  EXPECT_GT(v->blocker_commit_time, v->sleep_since);
  EXPECT_NE(v->reason.find("X_tc"), std::string::npos);

  // The verdict was a prediction; now the real Awake agrees.
  EXPECT_EQ(gtm_->Awake(sleeper).code(), StatusCode::kAborted);
}

TEST_F(ObsExplainTest, VerdictForUnknownOrActiveTxnIsNull) {
  const TxnId active = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(active, "X", 0, Operation::Sub(Value::Int(1))).ok());
  const GtmExplain ex = gtm_->Explain();
  EXPECT_EQ(ex.VerdictFor(active), nullptr);   // Not sleeping.
  EXPECT_EQ(ex.VerdictFor(99999), nullptr);    // Unknown.
}

TEST_F(ObsExplainTest, ToStringRendersObjectsTxnsAndVerdicts) {
  const TxnId sleeper = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Sleep(sleeper).ok());
  const TxnId admin = gtm_->Begin();
  clock_.Advance(1.0);
  ASSERT_TRUE(
      gtm_->Invoke(admin, "X", 0, Operation::Assign(Value::Int(7))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(admin).ok());

  const std::string s = gtm_->Explain().ToString();
  EXPECT_NE(s.find("X"), std::string::npos);
  EXPECT_NE(s.find(StrFormat("%llu", (unsigned long long)sleeper)),
            std::string::npos);
  EXPECT_NE(s.find("sleep"), std::string::npos);
}

TEST(ClusterExplainTest, StampsShardIdsAcrossTheCluster) {
  ManualClock clock;
  cluster::GtmCluster cluster(2, &clock);
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"qty", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  ASSERT_TRUE(cluster.CreateTableAllShards("t", std::move(schema)).ok());
  for (int i = 0; i < 8; ++i) {
    const gtm::ObjectId oid = StrFormat("t/%d", i);
    const Value key = Value::Int(i);
    ASSERT_TRUE(cluster.db(cluster.ShardOf(oid))
                    ->InsertRow("t", Row({key, Value::Int(100)}))
                    .ok());
    ASSERT_TRUE(cluster.RegisterObject(oid, "t", key, {1}).ok());
  }
  // One live holder somewhere, so at least one shard has state to show.
  const gtm::ObjectId oid = "t/0";
  const cluster::ShardId shard = cluster.ShardOf(oid);
  const TxnId t = cluster.shard(shard)->Begin();
  ASSERT_TRUE(
      cluster.shard(shard)->Invoke(t, oid, 0, Operation::Sub(Value::Int(1)))
          .ok());

  const ClusterExplain ex = cluster.Explain();
  ASSERT_EQ(ex.shards.size(), 2u);
  for (size_t s = 0; s < ex.shards.size(); ++s) {
    EXPECT_EQ(ex.shards[s].shard, static_cast<int>(s));
  }
  EXPECT_NE(ex.ToString().find("shard"), std::string::npos);
}

}  // namespace
}  // namespace preserial::obs
