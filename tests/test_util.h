// Shared helpers for the test suite: wall-clock polling (instead of fixed
// sleeps) and the failing-seed corpus protocol.

#ifndef PRESERIAL_TESTS_TEST_UTIL_H_
#define PRESERIAL_TESTS_TEST_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>

#include "check/seed.h"
#include "common/status.h"

namespace preserial::testutil {

// Polls `pred` every `poll` until it returns true or `timeout` elapses.
// Returns whether the predicate became true. Use this instead of a fixed
// sleep_for: it settles as soon as the condition holds (fast machines) and
// tolerates slow ones (sanitizer / coverage builds) up to the deadline.
inline bool WaitUntil(
    const std::function<bool()>& pred,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(5000),
    std::chrono::milliseconds poll = std::chrono::milliseconds(1)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(poll);
  }
  return true;
}

// Directory holding the checked-in failing-seed corpus. The build points
// this at <source>/tests/corpus so seeds emitted by a failing run land in
// the tree, ready to be committed as regressions.
inline std::string CorpusDir() {
#ifdef PRESERIAL_CORPUS_DIR
  return PRESERIAL_CORPUS_DIR;
#else
  return "tests/corpus";
#endif
}

// Writes `seed` into the corpus as <tag>.seed and prints the path. Called
// by the fuzz/property harnesses when a run fails: the file replays the
// failure via corpus_replay_test, turning every fuzz failure into a
// permanent regression test once committed.
inline void EmitFailingSeed(const check::ScheduleSeed& seed,
                            const std::string& tag) {
  const std::string path = CorpusDir() + "/" + tag + ".seed";
  const Status st = check::SaveScheduleSeedFile(path, seed);
  if (st.ok()) {
    std::fprintf(stderr,
                 "[corpus] wrote failing seed to %s — commit it to make "
                 "this failure a regression test\n",
                 path.c_str());
  } else {
    std::fprintf(stderr, "[corpus] could not write %s: %s\n", path.c_str(),
                 st.ToString().c_str());
  }
}

}  // namespace preserial::testutil

#endif  // PRESERIAL_TESTS_TEST_UTIL_H_
