// Randomized stress of the lock manager: arbitrary acquire/release/cancel
// traffic across transactions and resources. Invariants checked throughout:
//   - the granted set of every resource stays mutually compatible;
//   - a transaction reported kGranted really holds the lock;
//   - deadlock refusals leave no residue;
//   - every waiter is eventually granted once all holders release (no lost
//     wakeups).

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "lock/lock_manager.h"

namespace preserial::lock {
namespace {

constexpr int kResources = 6;
constexpr int kTxns = 12;

ResourceId Res(int i) { return "r" + std::to_string(i); }

class LockFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LockFuzzTest, InvariantsHoldUnderRandomTraffic) {
  Rng rng(GetParam());
  LockManager lm;
  // Our model: per txn, the set of resources it waits on / holds.
  std::map<TxnId, std::set<ResourceId>> waiting;
  std::map<TxnId, std::map<ResourceId, LockMode>> held;

  auto check_grants_compatible = [&] {
    // Every pair of holders of the same resource must be compatible.
    for (const auto& [txn, resources] : held) {
      for (const auto& [res, mode] : resources) {
        LockMode actual;
        ASSERT_TRUE(lm.Holds(txn, res, &actual))
            << "model thinks txn " << txn << " holds " << res;
        ASSERT_EQ(static_cast<int>(actual) >= static_cast<int>(mode), true);
        for (const auto& [other, other_resources] : held) {
          if (other == txn) continue;
          auto it = other_resources.find(res);
          if (it == other_resources.end()) continue;
          EXPECT_TRUE(Compatible(it->second, mode) ||
                      Compatible(mode, it->second))
              << res << ": " << LockModeName(it->second) << " vs "
              << LockModeName(mode);
        }
      }
    }
  };

  auto absorb = [&](const std::vector<LockGrant>& grants) {
    for (const LockGrant& g : grants) {
      waiting[g.txn].erase(g.resource);
      held[g.txn][g.resource] = g.mode;
    }
  };

  for (int step = 0; step < 4000; ++step) {
    const TxnId txn = 1 + rng.NextBounded(kTxns);
    switch (rng.NextBounded(5)) {
      case 0:
      case 1: {  // Acquire a random mode on a random resource.
        if (!waiting[txn].empty()) break;  // One blocked request at a time.
        const ResourceId res = Res(rng.NextBounded(kResources));
        const LockMode mode =
            static_cast<LockMode>(rng.NextBounded(3));
        const LockResult result = lm.Acquire(txn, res, mode);
        switch (result) {
          case LockResult::kGranted: {
            LockMode& slot = held[txn][res];
            slot = Stronger(slot, mode);
            break;
          }
          case LockResult::kWaiting:
            waiting[txn].insert(res);
            break;
          case LockResult::kDeadlock:
            // Backed out; txn still holds what it held.
            absorb(lm.TakePendingGrants());
            break;
        }
        break;
      }
      case 2: {  // Release everything (commit/abort).
        absorb(lm.ReleaseAll(txn));
        held.erase(txn);
        waiting.erase(txn);
        break;
      }
      case 3: {  // Cancel waits (lock timeout).
        absorb(lm.CancelWaits(txn));
        waiting[txn].clear();
        break;
      }
      case 4: {  // Release one held resource.
        if (held[txn].empty()) break;
        auto it = held[txn].begin();
        std::advance(it, rng.NextBounded(held[txn].size()));
        const ResourceId res = it->first;
        held[txn].erase(it);
        absorb(lm.Release(txn, res));
        break;
      }
    }
    if (step % 101 == 0) check_grants_compatible();
  }

  // Drain: release everyone; no waiter may be left stranded.
  for (TxnId txn = 1; txn <= kTxns; ++txn) {
    absorb(lm.ReleaseAll(txn));
    held.erase(txn);
    waiting.erase(txn);
  }
  for (TxnId txn = 1; txn <= kTxns; ++txn) {
    EXPECT_FALSE(lm.IsWaiting(txn)) << txn;
    EXPECT_TRUE(lm.HeldResources(txn).empty()) << txn;
  }
  EXPECT_EQ(lm.resource_count(), 0u);  // Queues garbage-collected.
  EXPECT_FALSE(lm.BuildWaitsForGraph().DetectAnyCycle());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockFuzzTest,
                         ::testing::Values(3, 14, 159, 2653));

}  // namespace
}  // namespace preserial::lock
