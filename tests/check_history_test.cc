// The history recorders: a History must be a faithful, complete record of
// the execution — events in trace order, initial/final permanent state,
// dependencies — across a single Gtm, a sharded cluster, and a replicated
// group that fails over mid-run.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "check/checker.h"
#include "check/history.h"
#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/random.h"
#include "gtm/gtm.h"
#include "replica/replica.h"
#include "semantics/operation.h"
#include "storage/database.h"

namespace preserial::check {
namespace {

using gtm::TraceEventKind;
using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr char kTable[] = "t";

std::unique_ptr<storage::Database> BuildDb(int64_t objects,
                                           int64_t initial = 100) {
  auto db = std::make_unique<storage::Database>();
  EXPECT_TRUE(db->Open().ok());
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"val", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  EXPECT_TRUE(db->CreateTable(kTable, std::move(schema)).ok());
  for (int64_t i = 0; i < objects; ++i) {
    EXPECT_TRUE(
        db->InsertRow(kTable, Row({Value::Int(i), Value::Int(initial)})).ok());
  }
  return db;
}

size_t CountKind(const History& h, TraceEventKind kind) {
  size_t n = 0;
  for (const gtm::TraceEvent& e : h.events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

TEST(HistoryRecorderTest, CapturesCompleteSingleGtmExecution) {
  auto db = BuildDb(2);
  ManualClock clock;
  gtm::Gtm gtm(db.get(), &clock);
  ASSERT_TRUE(gtm.RegisterObject("A", kTable, Value::Int(0), {1}).ok());
  ASSERT_TRUE(gtm.RegisterObject("B", kTable, Value::Int(1), {1}).ok());

  HistoryRecorder recorder;
  recorder.Attach(&gtm);
  ASSERT_TRUE(recorder.attached());

  const TxnId t1 = gtm.Begin();
  const TxnId t2 = gtm.Begin();
  clock.Advance(1.0);
  ASSERT_TRUE(gtm.Invoke(t1, "A", 0, Operation::Sub(Value::Int(3))).ok());
  ASSERT_TRUE(gtm.Invoke(t2, "A", 0, Operation::Sub(Value::Int(4))).ok());
  clock.Advance(1.0);
  ASSERT_TRUE(gtm.RequestCommit(t1).ok());
  ASSERT_TRUE(gtm.RequestCommit(t2).ok());

  History h = recorder.Finish();
  EXPECT_FALSE(recorder.attached());
  EXPECT_TRUE(h.complete);
  // Initial and final permanent state, per cell.
  EXPECT_EQ(h.initial.at(gtm::Cell{"A", 0}), Value::Int(100));
  EXPECT_EQ(h.final_state.at(gtm::Cell{"A", 0}), Value::Int(93));
  EXPECT_EQ(h.final_state.at(gtm::Cell{"B", 0}), Value::Int(100));
  // The event stream carries the whole lifecycle.
  EXPECT_EQ(CountKind(h, TraceEventKind::kBegin), 2u);
  EXPECT_EQ(CountKind(h, TraceEventKind::kApply), 2u);
  EXPECT_EQ(CountKind(h, TraceEventKind::kCommit), 2u);
  // Dependencies were snapshotted for both objects.
  EXPECT_EQ(h.deps.size(), 2u);
  // Apply events carry the structured operation payload.
  for (const gtm::TraceEvent& e : h.events) {
    if (e.kind == TraceEventKind::kApply) {
      EXPECT_TRUE(e.has_op);
      EXPECT_EQ(e.object, "A");
    }
  }
  // And the checker certifies it.
  const CheckReport report = CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.committed_txns, 2u);
}

TEST(HistoryRecorderTest, FlagsTruncatedRingAsIncomplete) {
  auto db = BuildDb(1);
  ManualClock clock;
  gtm::Gtm gtm(db.get(), &clock);
  ASSERT_TRUE(gtm.RegisterObject("A", kTable, Value::Int(0), {1}).ok());

  HistoryRecorder recorder;
  recorder.Attach(&gtm, /*trace_capacity=*/4);
  for (int i = 0; i < 4; ++i) {
    clock.Advance(1.0);
    const TxnId t = gtm.Begin();
    ASSERT_TRUE(gtm.Invoke(t, "A", 0, Operation::Sub(Value::Int(1))).ok());
    ASSERT_TRUE(gtm.RequestCommit(t).ok());
  }
  History h = recorder.Finish();
  EXPECT_FALSE(h.complete);

  // An incomplete history cannot be certified: the checker refuses loudly
  // instead of vacuously passing on the events that survived.
  const CheckReport report = CheckHistory(h);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].rule, "incomplete-history");
}

TEST(HistoryRecorderTest, SetupTrafficBeforeAttachIsExcluded) {
  auto db = BuildDb(1);
  ManualClock clock;
  gtm::Gtm gtm(db.get(), &clock);
  ASSERT_TRUE(gtm.RegisterObject("A", kTable, Value::Int(0), {1}).ok());

  // Pre-attach traffic: a committed setup transaction.
  gtm.trace()->Enable(64);
  const TxnId setup = gtm.Begin();
  ASSERT_TRUE(gtm.Invoke(setup, "A", 0, Operation::Sub(Value::Int(10))).ok());
  ASSERT_TRUE(gtm.RequestCommit(setup).ok());

  HistoryRecorder recorder;
  recorder.Attach(&gtm);
  const TxnId t = gtm.Begin();
  clock.Advance(1.0);
  ASSERT_TRUE(gtm.Invoke(t, "A", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm.RequestCommit(t).ok());
  History h = recorder.Finish();

  // The window starts at attach: initial state reflects the setup commit,
  // and only the second transaction's events are present.
  EXPECT_TRUE(h.complete);
  EXPECT_EQ(h.initial.at(gtm::Cell{"A", 0}), Value::Int(90));
  EXPECT_EQ(CountKind(h, TraceEventKind::kBegin), 1u);
  EXPECT_TRUE(CheckHistory(h).ok());
}

TEST(ClusterHistoryRecorderTest, OneHistoryPerShard) {
  ManualClock clock;
  cluster::GtmCluster cluster(2, &clock);
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"val", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  ASSERT_TRUE(cluster.CreateTableAllShards(kTable, std::move(schema)).ok());
  // Register enough objects to land at least one on each shard.
  std::vector<gtm::ObjectId> ids;
  for (int64_t i = 0; i < 8; ++i) {
    const gtm::ObjectId oid = "obj/" + std::to_string(i);
    ASSERT_TRUE(cluster.db(cluster.ShardOf(oid))
                    ->InsertRow(kTable, Row({Value::Int(i), Value::Int(100)}))
                    .ok());
    ASSERT_TRUE(cluster.RegisterObject(oid, kTable, Value::Int(i), {1}).ok());
    ids.push_back(oid);
  }

  ClusterHistoryRecorder recorder;
  recorder.Attach(&cluster);
  for (const gtm::ObjectId& oid : ids) {
    clock.Advance(0.5);
    gtm::Gtm* shard = cluster.shard(cluster.ShardOf(oid));
    const TxnId t = shard->Begin();
    ASSERT_TRUE(shard->Invoke(t, oid, 0, Operation::Sub(Value::Int(2))).ok());
    ASSERT_TRUE(shard->RequestCommit(t).ok());
  }

  std::vector<History> histories = recorder.Finish();
  ASSERT_EQ(histories.size(), 2u);
  size_t total_commits = 0;
  for (const History& h : histories) {
    EXPECT_TRUE(h.complete);
    total_commits += CountKind(h, TraceEventKind::kCommit);
    const CheckReport report = CheckHistory(h);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
  // Every commit landed in exactly one shard's history.
  EXPECT_EQ(total_commits, ids.size());
}

TEST(ReplicaHistoryRecorderTest, SurvivingTimelineAfterFailover) {
  ManualClock clock;
  replica::ReplicaOptions ropts;
  ropts.num_backups = 1;
  Rng ship_rng(7);
  replica::ReplicatedGtm group(&clock, gtm::GtmOptions{}, ropts, &ship_rng);
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"val", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  ASSERT_TRUE(group.CreateTable(kTable, std::move(schema)).ok());
  ASSERT_TRUE(
      group.InsertRow(kTable, Row({Value::Int(0), Value::Int(100)})).ok());
  ASSERT_TRUE(group.RegisterObject("A", kTable, Value::Int(0), {1}).ok());

  ReplicaHistoryRecorder recorder;
  recorder.Attach(&group);

  const TxnId t1 = group.Begin();
  clock.Advance(1.0);
  ASSERT_TRUE(group.Invoke(t1, "A", 0, Operation::Sub(Value::Int(5))).ok());
  ASSERT_TRUE(group.RequestCommit(t1).ok());

  group.KillPrimary();
  ASSERT_TRUE(group.Promote().ok());

  // Post-failover traffic lands on the promoted primary.
  const TxnId t2 = group.Begin();
  clock.Advance(1.0);
  ASSERT_TRUE(group.Invoke(t2, "A", 0, Operation::Sub(Value::Int(7))).ok());
  ASSERT_TRUE(group.RequestCommit(t2).ok());

  History h = recorder.Finish();
  EXPECT_TRUE(h.complete);
  // The promoted node replayed the shipped pre-failover commit into its own
  // trace, so the surviving timeline holds both commits and the final state
  // reflects them.
  EXPECT_EQ(CountKind(h, TraceEventKind::kCommit), 2u);
  EXPECT_EQ(h.final_state.at(gtm::Cell{"A", 0}), Value::Int(88));
  const CheckReport report = CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace preserial::check
