// Priority scheduling (paper Sec. VII: "introduction of a transaction
// priority") and the periodic waits-for-graph deadlock sweep.

#include <memory>

#include <gtest/gtest.h>

#include "gtm/gtm.h"
#include "storage/database.h"

namespace preserial::gtm {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class GtmPriorityTest : public ::testing::Test {
 protected:
  void SetUp() override { Rebuild(GtmOptions()); }

  void Rebuild(GtmOptions options) {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("obj", std::move(schema)).ok());
    for (int64_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(
          db_->InsertRow("obj", Row({Value::Int(i), Value::Int(100)})).ok());
    }
    clock_.Set(0.0);
    gtm_ = std::make_unique<Gtm>(db_.get(), &clock_, options);
    ASSERT_TRUE(gtm_->RegisterObject("X", "obj", Value::Int(0), {1}).ok());
    ASSERT_TRUE(gtm_->RegisterObject("Y", "obj", Value::Int(1), {1}).ok());
  }

  std::unique_ptr<storage::Database> db_;
  ManualClock clock_;
  std::unique_ptr<Gtm> gtm_;
};

TEST_F(GtmPriorityTest, HigherPriorityJumpsTheQueue) {
  const TxnId holder = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(holder, "X", 0, Operation::Assign(Value::Int(1))).ok());
  const TxnId low = gtm_->Begin(/*priority=*/0);
  const TxnId high = gtm_->Begin(/*priority=*/5);
  EXPECT_EQ(gtm_->Invoke(low, "X", 0, Operation::Assign(Value::Int(2))).code(),
            StatusCode::kWaiting);
  EXPECT_EQ(
      gtm_->Invoke(high, "X", 0, Operation::Assign(Value::Int(3))).code(),
      StatusCode::kWaiting);
  ASSERT_TRUE(gtm_->RequestCommit(holder).ok());
  // The later-arriving high-priority assignment is admitted first.
  std::vector<GtmEvent> events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, high);
  EXPECT_EQ(gtm_->StateOf(low).value(), TxnState::kWaiting);
  ASSERT_TRUE(gtm_->RequestCommit(high).ok());
  events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, low);
  EXPECT_TRUE(gtm_->CheckInvariants().ok());
}

TEST_F(GtmPriorityTest, EqualPriorityStaysFifo) {
  const TxnId holder = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(holder, "X", 0, Operation::Assign(Value::Int(1))).ok());
  const TxnId first = gtm_->Begin(/*priority=*/3);
  const TxnId second = gtm_->Begin(/*priority=*/3);
  EXPECT_EQ(
      gtm_->Invoke(first, "X", 0, Operation::Assign(Value::Int(2))).code(),
      StatusCode::kWaiting);
  EXPECT_EQ(
      gtm_->Invoke(second, "X", 0, Operation::Assign(Value::Int(3))).code(),
      StatusCode::kWaiting);
  ASSERT_TRUE(gtm_->RequestCommit(holder).ok());
  std::vector<GtmEvent> events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, first);
}

TEST_F(GtmPriorityTest, PriorityMitigatesAssignmentStarvation) {
  // A waiting assignment with elevated priority is admitted ahead of the
  // continuing stream of compatible subtractions.
  const TxnId sub1 = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(sub1, "X", 0, Operation::Sub(Value::Int(1))).ok());
  const TxnId admin = gtm_->Begin(/*priority=*/10);
  EXPECT_EQ(
      gtm_->Invoke(admin, "X", 0, Operation::Assign(Value::Int(7))).code(),
      StatusCode::kWaiting);
  // New subtractions keep being admitted past it (compatible with sub1)...
  const TxnId sub2 = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(sub2, "X", 0, Operation::Sub(Value::Int(1))).ok());
  // ...but the moment the object drains, the high-priority admin is first
  // in line.
  ASSERT_TRUE(gtm_->RequestCommit(sub1).ok());
  ASSERT_TRUE(gtm_->RequestCommit(sub2).ok());
  std::vector<GtmEvent> events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, admin);
}

TEST_F(GtmPriorityTest, SweepResolvesCycleByAbortingYoungest) {
  GtmOptions options;
  options.deadlock_detection = false;  // Let the cycle form.
  Rebuild(options);
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Assign(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "Y", 0, Operation::Assign(Value::Int(2))).ok());
  EXPECT_EQ(gtm_->Invoke(a, "Y", 0, Operation::Assign(Value::Int(3))).code(),
            StatusCode::kWaiting);
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Assign(Value::Int(4))).code(),
            StatusCode::kWaiting);
  ASSERT_TRUE(gtm_->BuildWaitsForGraph().DetectAnyCycle());

  std::vector<TxnId> victims = gtm_->DetectAndResolveDeadlocks();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], b);  // Youngest (highest id) dies.
  EXPECT_EQ(gtm_->StateOf(b).value(), TxnState::kAborted);
  EXPECT_EQ(gtm_->metrics().counters().deadlock_aborts, 1);
  // The survivor's wait resolved: it now holds Y too.
  std::vector<GtmEvent> events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, a);
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  EXPECT_TRUE(gtm_->CheckInvariants().ok());
}

TEST_F(GtmPriorityTest, SweepIsNoOpWithoutCycles) {
  const TxnId a = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Assign(Value::Int(1))).ok());
  const TxnId b = gtm_->Begin();
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Assign(Value::Int(2))).code(),
            StatusCode::kWaiting);
  EXPECT_TRUE(gtm_->DetectAndResolveDeadlocks().empty());
  EXPECT_EQ(gtm_->StateOf(b).value(), TxnState::kWaiting);
}

TEST_F(GtmPriorityTest, SweepResolvesMultipleIndependentCycles) {
  GtmOptions options;
  options.deadlock_detection = false;
  Rebuild(options);
  ASSERT_TRUE(
      db_->InsertRow("obj", Row({Value::Int(2), Value::Int(100)})).ok());
  ASSERT_TRUE(
      db_->InsertRow("obj", Row({Value::Int(3), Value::Int(100)})).ok());
  ASSERT_TRUE(gtm_->RegisterObject("Z", "obj", Value::Int(2), {1}).ok());
  ASSERT_TRUE(gtm_->RegisterObject("W", "obj", Value::Int(3), {1}).ok());
  // Cycle 1 on X/Y, cycle 2 on Z/W.
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  const TxnId c = gtm_->Begin();
  const TxnId d = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Assign(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "Y", 0, Operation::Assign(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(c, "Z", 0, Operation::Assign(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(d, "W", 0, Operation::Assign(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->Invoke(a, "Y", 0, Operation::Assign(Value::Int(2))).code(),
            StatusCode::kWaiting);
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Assign(Value::Int(2))).code(),
            StatusCode::kWaiting);
  EXPECT_EQ(gtm_->Invoke(c, "W", 0, Operation::Assign(Value::Int(2))).code(),
            StatusCode::kWaiting);
  EXPECT_EQ(gtm_->Invoke(d, "Z", 0, Operation::Assign(Value::Int(2))).code(),
            StatusCode::kWaiting);
  std::vector<TxnId> victims = gtm_->DetectAndResolveDeadlocks();
  EXPECT_EQ(victims.size(), 2u);
  EXPECT_TRUE(gtm_->CheckInvariants().ok());
  EXPECT_FALSE(gtm_->BuildWaitsForGraph().DetectAnyCycle());
}

}  // namespace
}  // namespace preserial::gtm
