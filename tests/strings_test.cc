#include "common/strings.h"

#include <gtest/gtest.h>

namespace preserial {
namespace {

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitJoinTest, RoundTrip) {
  const std::vector<std::string> parts = {"flights", "3", "free"};
  EXPECT_EQ(Split(Join(parts, "/"), '/'), parts);
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f s=%s", 3, 1.5, "hi"), "x=3 y=1.50 s=hi");
  EXPECT_EQ(StrFormat("%s", ""), "");
  EXPECT_EQ(StrFormat("%zu", static_cast<size_t>(42)), "42");
}

TEST(StrFormatTest, LongOutput) {
  const std::string big(500, 'x');
  EXPECT_EQ(StrFormat("%s!", big.c_str()).size(), 501u);
}

TEST(PadTest, LeftAndRight) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");  // Never truncates.
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace preserial
