#include <memory>

#include <gtest/gtest.h>

#include "gtm/gtm.h"
#include "storage/database.h"

namespace preserial::gtm {
namespace {

using semantics::Operation;
using storage::CheckConstraint;
using storage::ColumnDef;
using storage::CompareOp;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class GtmPoliciesTest : public ::testing::Test {
 protected:
  void Rebuild(GtmOptions options, int64_t initial_qty = 100,
               bool with_constraint = false) {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("obj", std::move(schema)).ok());
    ASSERT_TRUE(db_->InsertRow("obj", Row({Value::Int(0),
                                           Value::Int(initial_qty)}))
                    .ok());
    if (with_constraint) {
      ASSERT_TRUE(db_->AddConstraint("obj", CheckConstraint("nonneg", 1,
                                                            CompareOp::kGe,
                                                            Value::Int(0)))
                      .ok());
    }
    clock_.Set(0.0);
    gtm_ = std::make_unique<Gtm>(db_.get(), &clock_, options);
    ASSERT_TRUE(gtm_->RegisterObject("X", "obj", Value::Int(0), {1}).ok());
  }

  Value DbQty() {
    return db_->GetTable("obj").value()->GetColumnByKey(Value::Int(0), 1)
        .value();
  }

  std::unique_ptr<storage::Database> db_;
  ManualClock clock_;
  std::unique_ptr<Gtm> gtm_;
};

// --- starvation guard (Sec. VII mitigation 1) ----------------------------------

TEST_F(GtmPoliciesTest, StarvationGuardDisabledByDefault) {
  Rebuild(GtmOptions());
  const TxnId a = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Sub(Value::Int(1))).ok());
  const TxnId admin = gtm_->Begin();
  EXPECT_EQ(
      gtm_->Invoke(admin, "X", 0, Operation::Assign(Value::Int(9))).code(),
      StatusCode::kWaiting);
  // Without the guard, new subtractors keep flowing past the waiting
  // assignment — the starvation the paper warns about.
  const TxnId b = gtm_->Begin();
  EXPECT_TRUE(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).ok());
}

TEST_F(GtmPoliciesTest, StarvationGuardDeniesFastPath) {
  GtmOptions options;
  options.starvation_waiter_threshold = 1;
  Rebuild(options);
  const TxnId a = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Sub(Value::Int(1))).ok());
  const TxnId admin = gtm_->Begin();
  EXPECT_EQ(
      gtm_->Invoke(admin, "X", 0, Operation::Assign(Value::Int(9))).code(),
      StatusCode::kWaiting);
  // The guard sees one incompatible waiter and queues the newcomer even
  // though it is compatible with the current holder.
  const TxnId b = gtm_->Begin();
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  EXPECT_EQ(gtm_->metrics().counters().starvation_denials, 1);
  // Drain: a commits -> admin admitted; admin commits -> b admitted.
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  std::vector<GtmEvent> events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, admin);
  ASSERT_TRUE(gtm_->RequestCommit(admin).ok());
  events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, b);
  ASSERT_TRUE(gtm_->RequestCommit(b).ok());
  EXPECT_EQ(DbQty(), Value::Int(8));  // 100-1 -> 9 -> 9-1.
  EXPECT_TRUE(gtm_->CheckInvariants().ok());
}

// --- constraint-aware admission (Sec. VII mitigation 2) --------------------------

TEST_F(GtmPoliciesTest, AdmissionDeniesOverdraft) {
  GtmOptions options;
  options.constraint_aware_admission = true;
  Rebuild(options, /*initial_qty=*/2, /*with_constraint=*/true);
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  const TxnId c = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).ok());
  // The third concurrent subtraction would make the pessimistic projection
  // negative: refused up front instead of aborting at SST time.
  EXPECT_EQ(gtm_->Invoke(c, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(gtm_->StateOf(c).value(), TxnState::kActive);
  EXPECT_EQ(gtm_->metrics().counters().admission_denials, 1);
  // Everyone who was admitted commits cleanly — zero constraint aborts.
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  ASSERT_TRUE(gtm_->RequestCommit(b).ok());
  EXPECT_EQ(DbQty(), Value::Int(0));
  EXPECT_EQ(gtm_->metrics().counters().constraint_aborts, 0);
}

TEST_F(GtmPoliciesTest, AdmissionFreesCapacityAfterAbort) {
  GtmOptions options;
  options.constraint_aware_admission = true;
  Rebuild(options, /*initial_qty=*/1, /*with_constraint=*/true);
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kConstraintViolation);
  // a gives the seat back; b can now take it.
  ASSERT_TRUE(gtm_->RequestAbort(a).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(b).ok());
  EXPECT_EQ(DbQty(), Value::Int(0));
}

TEST_F(GtmPoliciesTest, AdmissionAppliesPerOperationNotJustAtGrant) {
  GtmOptions options;
  options.constraint_aware_admission = true;
  Rebuild(options, /*initial_qty=*/3, /*with_constraint=*/true);
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(2))).ok());
  // A further subtraction through the existing grant is still checked.
  EXPECT_EQ(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(2))).code(),
            StatusCode::kConstraintViolation);
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  EXPECT_EQ(DbQty(), Value::Int(0));
}

TEST_F(GtmPoliciesTest, AdmissionIgnoresPositiveDeltas) {
  GtmOptions options;
  options.constraint_aware_admission = true;
  Rebuild(options, /*initial_qty=*/0, /*with_constraint=*/true);
  const TxnId adder = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(adder, "X", 0, Operation::Add(Value::Int(5))).ok());
  // The pending +5 may still abort, so a subtraction cannot ride on it.
  const TxnId taker = gtm_->Begin();
  EXPECT_EQ(gtm_->Invoke(taker, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kConstraintViolation);
  ASSERT_TRUE(gtm_->RequestCommit(adder).ok());
  // Once committed, the capacity is real.
  ASSERT_TRUE(gtm_->Invoke(taker, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(taker).ok());
  EXPECT_EQ(DbQty(), Value::Int(4));
}

TEST_F(GtmPoliciesTest, WithoutAdmissionOverdraftAbortsAtSst) {
  GtmOptions options;
  options.constraint_aware_admission = false;
  Rebuild(options, /*initial_qty=*/1, /*with_constraint=*/true);
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  EXPECT_EQ(gtm_->RequestCommit(b).code(), StatusCode::kAborted);
  EXPECT_EQ(gtm_->metrics().counters().constraint_aborts, 1);
}

// --- semantic sharing ablation ---------------------------------------------------

TEST_F(GtmPoliciesTest, ExclusiveModeBlocksCompatibleClasses) {
  GtmOptions options;
  options.semantic_sharing = false;
  Rebuild(options);
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Sub(Value::Int(1))).ok());
  // Two subtractions would share under Table I; the ablation serializes
  // them like an exclusive-lock middleware.
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  ASSERT_EQ(gtm_->TakeEvents().size(), 1u);
  ASSERT_TRUE(gtm_->RequestCommit(b).ok());
  EXPECT_EQ(DbQty(), Value::Int(98));
  EXPECT_TRUE(gtm_->CheckInvariants().ok());
}

TEST_F(GtmPoliciesTest, ExclusiveModeStillSharesReads) {
  GtmOptions options;
  options.semantic_sharing = false;
  Rebuild(options);
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Read()).ok());
  EXPECT_TRUE(gtm_->Invoke(b, "X", 0, Operation::Read()).ok());
}

// --- committed-trace retention ---------------------------------------------------

TEST_F(GtmPoliciesTest, CommittedEntriesPrunedByRetention) {
  GtmOptions options;
  options.committed_retention = 10.0;
  Rebuild(options);
  for (int i = 0; i < 5; ++i) {
    const TxnId t = gtm_->Begin();
    ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
    ASSERT_TRUE(gtm_->RequestCommit(t).ok());
    clock_.Advance(4.0);
  }
  const ObjectState* obj = gtm_->GetObject("X").value();
  // 5 commits at t=0,4,8,12,16; pruning runs at each commit, so at the last
  // one (t=16, horizon 6) the entries at 0 and 4 are dropped.
  EXPECT_EQ(obj->committed.size(), 3u);
}

// --- deadlock detection toggle ---------------------------------------------------

TEST_F(GtmPoliciesTest, DeadlockDetectionOffLeavesCycleForTimeout) {
  GtmOptions options;
  options.deadlock_detection = false;
  Rebuild(options);
  ASSERT_TRUE(
      db_->InsertRow("obj", Row({Value::Int(1), Value::Int(50)})).ok());
  ASSERT_TRUE(gtm_->RegisterObject("Y", "obj", Value::Int(1), {1}).ok());
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Assign(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "Y", 0, Operation::Assign(Value::Int(2))).ok());
  EXPECT_EQ(gtm_->Invoke(a, "Y", 0, Operation::Assign(Value::Int(3))).code(),
            StatusCode::kWaiting);
  // With detection off the cycle forms silently...
  EXPECT_EQ(gtm_->Invoke(b, "X", 0, Operation::Assign(Value::Int(4))).code(),
            StatusCode::kWaiting);
  lock::WaitsForGraph wfg = gtm_->BuildWaitsForGraph();
  EXPECT_TRUE(wfg.DetectAnyCycle());
  // ...and the timeout sweep is the escape hatch (classical 2PL treatment,
  // as the paper prescribes in Sec. VII).
  clock_.Advance(100.0);
  std::vector<TxnId> victims = gtm_->AbortExpiredWaits(10.0);
  EXPECT_EQ(victims.size(), 2u);
  EXPECT_TRUE(gtm_->CheckInvariants().ok());
}

}  // namespace
}  // namespace preserial::gtm
