// The serializability checker itself: clean histories are certified, and
// each validator — reconciliation replay, CHECK bounds, serial-order
// search, Definition 1 admission, Algorithm 9 awake rule — fires on a
// history that breaks exactly its claim. Violations are produced either by
// tampering with a recorded history offline or by running the GTM with a
// seeded rule mutation (gtm::GtmMutation).

#include <memory>

#include <gtest/gtest.h>

#include "check/checker.h"
#include "check/history.h"
#include "common/clock.h"
#include "gtm/gtm.h"
#include "gtm/policies.h"
#include "semantics/operation.h"
#include "storage/database.h"

namespace preserial::check {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr char kTable[] = "t";

bool HasRule(const CheckReport& report, const std::string& rule) {
  for (const Violation& v : report.violations) {
    if (v.rule == rule) return true;
  }
  return false;
}

std::unique_ptr<storage::Database> BuildDb(int64_t initial = 100) {
  auto db = std::make_unique<storage::Database>();
  EXPECT_TRUE(db->Open().ok());
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"val", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  EXPECT_TRUE(db->CreateTable(kTable, std::move(schema)).ok());
  EXPECT_TRUE(
      db->InsertRow(kTable, Row({Value::Int(0), Value::Int(initial)})).ok());
  return db;
}

// Two concurrent compatible subtractions committing — the smallest
// interesting clean history.
History RecordCleanHistory() {
  auto db = BuildDb();
  ManualClock clock;
  gtm::Gtm gtm(db.get(), &clock);
  EXPECT_TRUE(gtm.RegisterObject("A", kTable, Value::Int(0), {1}).ok());
  HistoryRecorder recorder;
  recorder.Attach(&gtm);
  const TxnId t1 = gtm.Begin();
  const TxnId t2 = gtm.Begin();
  clock.Advance(1.0);
  EXPECT_TRUE(gtm.Invoke(t1, "A", 0, Operation::Sub(Value::Int(3))).ok());
  EXPECT_TRUE(gtm.Invoke(t2, "A", 0, Operation::Sub(Value::Int(4))).ok());
  clock.Advance(1.0);
  EXPECT_TRUE(gtm.RequestCommit(t1).ok());
  EXPECT_TRUE(gtm.RequestCommit(t2).ok());
  return recorder.Finish();
}

TEST(ValuesEquivalentTest, NumericsCompareAcrossTypes) {
  EXPECT_TRUE(ValuesEquivalent(Value::Int(40), Value::Double(40.0), 1e-9));
  EXPECT_TRUE(ValuesEquivalent(Value::Double(40.0), Value::Int(40), 1e-9));
  EXPECT_FALSE(ValuesEquivalent(Value::Int(40), Value::Int(41), 1e-9));
  // Relative tolerance: one part in 1e9 of a large value passes...
  EXPECT_TRUE(
      ValuesEquivalent(Value::Double(1e12), Value::Double(1e12 + 1), 1e-9));
  // ...a 1% difference does not.
  EXPECT_FALSE(
      ValuesEquivalent(Value::Double(100.0), Value::Double(101.0), 1e-9));
}

TEST(CheckHistoryTest, CertifiesCleanHistory) {
  const History h = RecordCleanHistory();
  const CheckReport report = CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.committed_txns, 2u);
  EXPECT_TRUE(report.exact_search);
  EXPECT_GE(report.orders_tried, 1u);
}

TEST(CheckHistoryTest, CommitOrderWitnessAboveExactSearchLimit) {
  const History h = RecordCleanHistory();
  CheckOptions options;
  options.exact_search_limit = 1;  // 2 committed txns > limit.
  const CheckReport report = CheckHistory(h, options);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_FALSE(report.exact_search);
  EXPECT_EQ(report.orders_tried, 1u);  // Commit order only.
}

TEST(CheckHistoryTest, TamperedFinalStateBreaksReconciliationAndSerial) {
  History h = RecordCleanHistory();
  h.final_state[gtm::Cell{"A", 0}] = Value::Int(999);
  const CheckReport report = CheckHistory(h);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasRule(report, "reconciliation")) << report.ToString();
  EXPECT_TRUE(HasRule(report, "serial")) << report.ToString();
}

TEST(CheckHistoryTest, CheckBoundViolationFlagged) {
  History h = RecordCleanHistory();
  // Claim qty must stay >= 95; the recorded run ends at 93.
  h.min_bound[gtm::Cell{"A", 0}] = 95.0;
  const CheckReport report = CheckHistory(h);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasRule(report, "constraint")) << report.ToString();
}

TEST(CheckHistoryTest, IncompleteHistoryRefusedOutright) {
  History h = RecordCleanHistory();
  h.complete = false;
  const CheckReport report = CheckHistory(h);
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, "incomplete-history");
}

TEST(CheckHistoryTest, AdmissionMutationTripsDefinition1) {
  // kAdmitAssignWithAddSub admits an assignment concurrently with an
  // in-flight subtraction on the same member — exactly the overlap
  // Definition 1 forbids.
  auto db = BuildDb();
  ManualClock clock;
  gtm::GtmOptions options;
  options.mutation = gtm::GtmMutation::kAdmitAssignWithAddSub;
  gtm::Gtm gtm(db.get(), &clock, options);
  ASSERT_TRUE(gtm.RegisterObject("A", kTable, Value::Int(0), {1}).ok());
  HistoryRecorder recorder;
  recorder.Attach(&gtm);

  const TxnId sub = gtm.Begin();
  const TxnId assign = gtm.Begin();
  clock.Advance(1.0);
  ASSERT_TRUE(gtm.Invoke(sub, "A", 0, Operation::Sub(Value::Int(3))).ok());
  // Healthy GTM: kWaiting. Mutant: granted concurrently.
  ASSERT_TRUE(
      gtm.Invoke(assign, "A", 0, Operation::Assign(Value::Int(50))).ok());
  clock.Advance(1.0);
  (void)gtm.RequestCommit(assign);
  (void)gtm.RequestCommit(sub);

  const CheckReport report = CheckHistory(recorder.Finish());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasRule(report, "definition1")) << report.ToString();
}

TEST(CheckHistoryTest, SkippedStalenessCheckTripsAlgorithm9) {
  // The sleeper's subtraction is stale: an incompatible assignment
  // committed after it went to sleep. Algorithm 9 demands an awake-abort;
  // the mutant wakes it anyway and the checker catches the bogus awake.
  auto db = BuildDb();
  ManualClock clock;
  gtm::GtmOptions options;
  options.mutation = gtm::GtmMutation::kSkipAwakeStalenessCheck;
  gtm::Gtm gtm(db.get(), &clock, options);
  ASSERT_TRUE(gtm.RegisterObject("A", kTable, Value::Int(0), {1}).ok());
  HistoryRecorder recorder;
  recorder.Attach(&gtm);

  const TxnId sleeper = gtm.Begin();
  clock.Advance(1.0);
  ASSERT_TRUE(
      gtm.Invoke(sleeper, "A", 0, Operation::Sub(Value::Int(3))).ok());
  ASSERT_TRUE(gtm.Sleep(sleeper).ok());
  clock.Advance(1.0);

  const TxnId admin = gtm.Begin();
  ASSERT_TRUE(
      gtm.Invoke(admin, "A", 0, Operation::Assign(Value::Int(50))).ok());
  ASSERT_TRUE(gtm.RequestCommit(admin).ok());
  clock.Advance(1.0);

  // Healthy GTM: Awake fails (stale). Mutant: wakes and lets it commit.
  ASSERT_TRUE(gtm.Awake(sleeper).ok());
  (void)gtm.RequestCommit(sleeper);

  const CheckReport report = CheckHistory(recorder.Finish());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasRule(report, "algorithm9")) << report.ToString();
}

}  // namespace
}  // namespace preserial::check
