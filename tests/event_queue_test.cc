#include "sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace preserial::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Push(3.0, [&] { fired.push_back(3); });
  q.Push(1.0, [&] { fired.push_back(1); });
  q.Push(2.0, [&] { fired.push_back(2); });
  while (!q.Empty()) {
    EventQueue::Entry e = q.Pop();
    e.action();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesAreFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.Push(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.Empty()) q.Pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, PeekTimeMatchesPop) {
  EventQueue q;
  q.Push(5.0, [] {});
  q.Push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.PeekTime(), 2.0);
  EXPECT_DOUBLE_EQ(q.Pop().time, 2.0);
  EXPECT_DOUBLE_EQ(q.PeekTime(), 5.0);
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  const EventId a = q.Push(1.0, [] {});
  q.Push(2.0, [] {});
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_DOUBLE_EQ(q.Pop().time, 2.0);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  const EventId a = q.Push(1.0, [] {});
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_FALSE(q.Cancel(a));
}

TEST(EventQueueTest, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(9999));
}

TEST(EventQueueTest, CancelFiredEventFails) {
  EventQueue q;
  const EventId a = q.Push(1.0, [] {});
  (void)q.Pop();
  EXPECT_FALSE(q.Cancel(a));
}

TEST(EventQueueTest, RandomizedOrderingAgainstReference) {
  preserial::Rng rng(77);
  EventQueue q;
  std::vector<double> times;
  for (int i = 0; i < 500; ++i) {
    const double t = rng.NextDouble() * 100;
    times.push_back(t);
    q.Push(t, [] {});
  }
  std::sort(times.begin(), times.end());
  for (double expected : times) {
    ASSERT_FALSE(q.Empty());
    EXPECT_DOUBLE_EQ(q.Pop().time, expected);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, RandomizedCancellation) {
  preserial::Rng rng(88);
  EventQueue q;
  std::vector<std::pair<double, EventId>> entries;
  for (int i = 0; i < 300; ++i) {
    const double t = rng.NextDouble() * 10;
    entries.emplace_back(t, q.Push(t, [] {}));
  }
  std::vector<double> kept;
  for (auto& [t, id] : entries) {
    if (rng.NextBool(0.5)) {
      ASSERT_TRUE(q.Cancel(id));
    } else {
      kept.push_back(t);
    }
  }
  std::sort(kept.begin(), kept.end());
  EXPECT_EQ(q.Size(), kept.size());
  for (double expected : kept) {
    EXPECT_DOUBLE_EQ(q.Pop().time, expected);
  }
  EXPECT_TRUE(q.Empty());
}

}  // namespace
}  // namespace preserial::sim
