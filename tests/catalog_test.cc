#include "storage/catalog.h"

#include <gtest/gtest.h>

namespace preserial::storage {
namespace {

Schema OneColumnSchema() {
  return Schema::Create({ColumnDef{"id", ValueType::kInt64, false}}, 0)
      .value();
}

TEST(CatalogTest, CreateAndGet) {
  Catalog catalog;
  Result<Table*> t = catalog.CreateTable("flights", OneColumnSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value()->name(), "flights");
  EXPECT_TRUE(catalog.HasTable("flights"));
  EXPECT_EQ(catalog.GetTable("flights").value(), t.value());
  EXPECT_EQ(catalog.table_count(), 1u);
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", OneColumnSchema()).ok());
  EXPECT_EQ(catalog.CreateTable("t", OneColumnSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, GetUnknownFails) {
  Catalog catalog;
  EXPECT_EQ(catalog.GetTable("nope").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DropTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", OneColumnSchema()).ok());
  EXPECT_TRUE(catalog.DropTable("t").ok());
  EXPECT_FALSE(catalog.HasTable("t"));
  EXPECT_EQ(catalog.DropTable("t").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("zebra", OneColumnSchema()).ok());
  ASSERT_TRUE(catalog.CreateTable("alpha", OneColumnSchema()).ok());
  ASSERT_TRUE(catalog.CreateTable("mid", OneColumnSchema()).ok());
  EXPECT_EQ(catalog.TableNames(),
            (std::vector<std::string>{"alpha", "mid", "zebra"}));
}

TEST(CatalogTest, ConstGetTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", OneColumnSchema()).ok());
  const Catalog& c = catalog;
  EXPECT_TRUE(c.GetTable("t").ok());
  EXPECT_FALSE(c.GetTable("u").ok());
}

}  // namespace
}  // namespace preserial::storage
