// Chaos test of the fault-tolerant client<->GTM protocol: a large session
// population over a channel that drops, duplicates, reorders and delays
// messages. The ground truth read back from the database must agree exactly
// with what the clients report — any double-applied commit or lost update
// breaks the conservation equation — and the degrade-to-Sleep discipline
// must out-commit the naive abort-on-loss baseline.

#include <gtest/gtest.h>

#include "check/checker.h"
#include "check/history.h"
#include "workload/gtm_experiment.h"

namespace preserial::workload {
namespace {

GtmExperimentSpec ChaosSpec() {
  GtmExperimentSpec spec;
  spec.num_txns = 1200;
  spec.num_objects = 5;
  spec.alpha = 0.7;
  spec.beta = 0.0;  // The channel supplies the outages here.
  spec.interarrival = 0.5;
  spec.work_time = 2.0;
  spec.initial_quantity = 1000000;
  spec.seed = 20080406;
  spec.history_capacity = 1 << 17;  // Record for the serializability oracle.
  return spec;
}

// The conservation equations prove nothing was double-applied; the oracle
// additionally proves the surviving interleaving is semantically
// serializable (Definition 1, eq. 1-2 reconciliation, Algorithm 9).
void ExpectSerializable(const LossyExperimentResult& r) {
  ASSERT_TRUE(r.history.complete);
  const check::CheckReport report = check::CheckHistory(r.history);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

ChannelSpec ChaosChannel(bool degrade_to_sleep) {
  ChannelSpec channel;
  channel.loss = 0.25;       // Well above the required 20%.
  channel.duplicate = 0.15;
  channel.reorder = 0.1;
  channel.delay_mean = 0.05;
  channel.request_timeout = 1.0;
  channel.max_attempts = 3;
  channel.reconnect_delay = 5.0;
  channel.degrade_to_sleep = degrade_to_sleep;
  return channel;
}

TEST(LossyChaosTest, ThousandSessionsNoDoubleAppliesAndDegradeWins) {
  const GtmExperimentSpec spec = ChaosSpec();
  const LossyExperimentResult degrade =
      RunLossyGtmExperiment(spec, ChaosChannel(/*degrade_to_sleep=*/true));
  const LossyExperimentResult naive =
      RunLossyGtmExperiment(spec, ChaosChannel(/*degrade_to_sleep=*/false));

  // Every session ran to completion in both runs.
  EXPECT_EQ(degrade.run.started, 1200);
  EXPECT_EQ(naive.run.started, 1200);

  // The channel actually misbehaved and the dedup layer actually worked.
  EXPECT_GT(degrade.channel.dropped, 0);
  EXPECT_GT(degrade.channel.duplicated, 0);
  EXPECT_GT(degrade.channel.reordered, 0);
  EXPECT_GT(degrade.duplicates_suppressed, 0);
  EXPECT_GT(degrade.run.retries, 0);
  EXPECT_GT(degrade.run.degraded_to_sleep, 0);

  // Conservation: the database lost exactly one unit of quantity per
  // committed subtract session — no redelivered commit applied twice (that
  // would consume extra quantity) and no client reported a commit the
  // server lost (that would consume too little).
  for (const LossyExperimentResult* r : {&degrade, &naive}) {
    const int64_t committed_subtracts =
        r->run.latency_by_tag.count(kTagSubtract)
            ? r->run.latency_by_tag.at(kTagSubtract).count()
            : 0;
    EXPECT_EQ(r->quantity_consumed, committed_subtracts);
  }

  // The naive baseline gives up on silent channels; retry + degrade-to-
  // Sleep pushes those same transactions through.
  const auto naive_loss_aborts =
      naive.run.aborts_by_cause.count(mobile::AbortCause::kChannelLoss)
          ? naive.run.aborts_by_cause.at(mobile::AbortCause::kChannelLoss)
          : 0;
  EXPECT_GT(naive_loss_aborts, 0);
  EXPECT_GT(degrade.run.committed, naive.run.committed);

  ExpectSerializable(degrade);
  ExpectSerializable(naive);
}

TEST(LossyChaosTest, ReliableChannelDegradesToPlainRun) {
  GtmExperimentSpec spec = ChaosSpec();
  spec.num_txns = 200;
  ChannelSpec channel = ChaosChannel(true);
  channel.loss = 0;
  channel.duplicate = 0;
  channel.reorder = 0;
  channel.delay_mean = 0;
  const LossyExperimentResult r = RunLossyGtmExperiment(spec, channel);
  EXPECT_EQ(r.run.started, 200);
  EXPECT_EQ(r.run.committed, 200);
  EXPECT_EQ(r.run.retries, 0);
  EXPECT_EQ(r.run.degraded_to_sleep, 0);
  EXPECT_EQ(r.duplicates_suppressed, 0);
  const int64_t committed_subtracts =
      r.run.latency_by_tag.count(kTagSubtract)
          ? r.run.latency_by_tag.at(kTagSubtract).count()
          : 0;
  EXPECT_EQ(r.quantity_consumed, committed_subtracts);
  ExpectSerializable(r);
}

}  // namespace
}  // namespace preserial::workload
