// Span correlation: trace/span id minting, ambient-context scoping, the
// stamping of correlation fields by TraceLog::Record, and the
// exhaustiveness of the TraceEventKind name table.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "gtm/trace.h"
#include "obs/trace_context.h"

namespace preserial::obs {
namespace {

using gtm::TraceEvent;
using gtm::TraceEventKind;
using gtm::TraceEventKindName;
using gtm::TraceLog;

TEST(TraceContextTest, InvalidByDefaultAndChildOfInvalidStaysInvalid) {
  TraceContext none;
  EXPECT_FALSE(none.valid());
  // Untraced paths propagate the invalid context without minting ids.
  const TraceContext child = ChildOf(none);
  EXPECT_FALSE(child.valid());
  EXPECT_EQ(child.span, 0u);
}

TEST(TraceContextTest, RootAndChildRelationships) {
  ResetTraceIdsForTest();
  const TraceContext root = NewRootContext();
  EXPECT_TRUE(root.valid());
  EXPECT_EQ(root.parent, 0u);  // Root span has no parent.

  const TraceContext child = ChildOf(root);
  EXPECT_EQ(child.trace, root.trace);  // Same trace...
  EXPECT_NE(child.span, root.span);    // ...new span...
  EXPECT_EQ(child.parent, root.span);  // ...parented to the root.

  const TraceContext other = NewRootContext();
  EXPECT_NE(other.trace, root.trace);  // Distinct transactions, distinct traces.
}

TEST(TraceContextTest, SpanScopeInstallsAndRestoresNested) {
  ResetTraceIdsForTest();
  EXPECT_FALSE(CurrentContext().valid());
  const TraceContext outer = NewRootContext();
  {
    SpanScope outer_scope(outer);
    EXPECT_EQ(CurrentContext().span, outer.span);
    const TraceContext inner = ChildOf(outer);
    {
      SpanScope inner_scope(inner);
      EXPECT_EQ(CurrentContext().span, inner.span);
      EXPECT_EQ(CurrentContext().parent, outer.span);
    }
    // Inner scope destruction restores the outer context.
    EXPECT_EQ(CurrentContext().span, outer.span);
  }
  EXPECT_FALSE(CurrentContext().valid());
}

TEST(TraceContextTest, TraceLogStampsAmbientContextAndShard) {
  ResetTraceIdsForTest();
  TraceLog log;
  log.Enable(8);
  log.set_default_shard(3);

  const TraceContext ctx = NewRootContext();
  {
    SpanScope scope(ctx);
    log.Record(1.0, TraceEventKind::kGrant, 7, "X", "traced");
  }
  log.Record(2.0, TraceEventKind::kCommit, 7, "", "untraced");

  const std::vector<TraceEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace, ctx.trace);
  EXPECT_EQ(events[0].span, ctx.span);
  EXPECT_EQ(events[0].shard, 3);
  // Outside any SpanScope the correlation ids stay zero; the shard lane
  // still stamps.
  EXPECT_EQ(events[1].trace, 0u);
  EXPECT_EQ(events[1].span, 0u);
  EXPECT_EQ(events[1].shard, 3);
}

TEST(TraceContextTest, DisabledLogStaysSilentUnderSpans) {
  TraceLog log;  // Capacity 0: the hot path returns before reading ambient.
  const TraceContext ctx = NewRootContext();
  SpanScope scope(ctx);
  log.Record(1.0, TraceEventKind::kBegin, 1);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 1);
}

// Satellite (a): every TraceEventKind value renders a real, unique name.
// A new enum value without a name-table entry fails here (and in the
// static_assert keyed off kTraceEventKindCount in trace.cc).
TEST(TraceEventKindTest, NameTableIsExhaustiveAndUnique) {
  std::set<std::string> names;
  for (size_t i = 0; i < gtm::kTraceEventKindCount; ++i) {
    const char* name = TraceEventKindName(static_cast<TraceEventKind>(i));
    ASSERT_NE(name, nullptr) << "kind " << i;
    const std::string s(name);
    EXPECT_FALSE(s.empty()) << "kind " << i;
    EXPECT_NE(s, "?") << "kind " << i;
    EXPECT_TRUE(names.insert(s).second) << "duplicate name " << s;
  }
  EXPECT_EQ(names.size(), gtm::kTraceEventKindCount);
}

}  // namespace
}  // namespace preserial::obs
