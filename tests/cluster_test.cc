// GtmCluster + ClusterCoordinator: shard-routed registration, cross-shard
// two-phase commit over per-shard SSTs, no-vote aborts, injected
// coordinator crashes with WAL-driven recovery, and per-shard metrics
// merging.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/coordinator.h"
#include "common/clock.h"
#include "common/strings.h"
#include "gtm/txn_state.h"
#include "semantics/operation.h"
#include "storage/wal.h"

namespace preserial::cluster {
namespace {

using gtm::TxnState;
using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr char kTable[] = "resources";
constexpr size_t kNumObjects = 16;

gtm::ObjectId ObjectIdFor(size_t i) { return StrFormat("%s/%zu", kTable, i); }

class ClusterTest : public ::testing::Test {
 protected:
  void Build(size_t num_shards, int64_t initial_qty = 1000,
             bool with_constraint = false) {
    cluster_ = std::make_unique<GtmCluster>(num_shards, &clock_);
    Result<Schema> schema = Schema::Create(
        {
            ColumnDef{"id", ValueType::kInt64, false},
            ColumnDef{"qty", ValueType::kInt64, false},
        },
        /*primary_key=*/0);
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(
        cluster_->CreateTableAllShards(kTable, std::move(schema).value()).ok());
    if (with_constraint) {
      for (size_t s = 0; s < num_shards; ++s) {
        ASSERT_TRUE(cluster_->db(s)
                        ->AddConstraint(
                            kTable, storage::CheckConstraint(
                                        "qty_nonneg", 1, storage::CompareOp::kGe,
                                        Value::Int(0)))
                        .ok());
      }
    }
    for (size_t i = 0; i < kNumObjects; ++i) {
      const gtm::ObjectId oid = ObjectIdFor(i);
      const Value key = Value::Int(static_cast<int64_t>(i));
      ASSERT_TRUE(cluster_->db(cluster_->ShardOf(oid))
                      ->InsertRow(kTable, Row({key, Value::Int(initial_qty)}))
                      .ok());
      ASSERT_TRUE(cluster_->RegisterObject(oid, kTable, key, {1}).ok());
    }
  }

  // Some object owned by `shard` (the fixture has enough objects that every
  // small shard count owns at least one).
  gtm::ObjectId ObjectOnShard(ShardId shard) const {
    for (size_t i = 0; i < kNumObjects; ++i) {
      if (cluster_->ShardOf(ObjectIdFor(i)) == shard) return ObjectIdFor(i);
    }
    ADD_FAILURE() << "no object on shard " << shard;
    return "";
  }

  int64_t QtyOf(const gtm::ObjectId& oid) const {
    Result<Value> v = cluster_->PermanentValue(oid, 0);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return v.ok() ? v.value().as_int() : -1;
  }

  // Opens a branch on the object's owner and books one unit.
  std::pair<ShardId, TxnId> BookOne(const gtm::ObjectId& oid) {
    const ShardId shard = cluster_->ShardOf(oid);
    const TxnId branch = cluster_->shard(shard)->Begin();
    Status s = cluster_->shard(shard)->Invoke(branch, oid, 0,
                                              Operation::Sub(Value::Int(1)));
    EXPECT_TRUE(s.ok()) << s.ToString();
    return {shard, branch};
  }

  TxnState StateOf(ShardId shard, TxnId branch) const {
    Result<TxnState> st = cluster_->shard(shard)->StateOf(branch);
    EXPECT_TRUE(st.ok());
    return st.value();
  }

  ManualClock clock_;
  std::unique_ptr<GtmCluster> cluster_;
};

TEST_F(ClusterTest, RegistrationRoutesToOwningShard) {
  Build(3);
  for (size_t i = 0; i < kNumObjects; ++i) {
    const gtm::ObjectId oid = ObjectIdFor(i);
    const ShardId owner = cluster_->ShardOf(oid);
    // The row exists only in the owner's database.
    for (size_t s = 0; s < 3; ++s) {
      Result<Value> v = cluster_->db(s)->GetTable(kTable).value()->GetColumnByKey(
          Value::Int(static_cast<int64_t>(i)), 1);
      EXPECT_EQ(v.ok(), s == owner) << "object " << oid << " shard " << s;
    }
    EXPECT_EQ(QtyOf(oid), 1000);
  }
}

TEST_F(ClusterTest, TwoPhaseCommitAcrossShards) {
  Build(2);
  storage::MemoryWalStorage wal;
  ClusterCoordinator coordinator(cluster_.get(), &wal);

  const gtm::ObjectId a = ObjectOnShard(0), b = ObjectOnShard(1);
  const auto [sa, ba] = BookOne(a);
  const auto [sb, bb] = BookOne(b);

  Status s = coordinator.CommitGlobal(1, {{sa, ba}, {sb, bb}});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(QtyOf(a), 999);
  EXPECT_EQ(QtyOf(b), 999);
  EXPECT_EQ(StateOf(sa, ba), TxnState::kCommitted);
  EXPECT_EQ(StateOf(sb, bb), TxnState::kCommitted);
  EXPECT_EQ(coordinator.counters().commits, 1);
  EXPECT_EQ(coordinator.counters().aborts, 0);
}

TEST_F(ClusterTest, NoVoteAbortsEveryBranch) {
  // qty starts at 1 with a >= 0 constraint; a single-shard commit drains
  // the object first, so the global transaction's reconciliation on that
  // shard must fail validation and vote no.
  Build(2, /*initial_qty=*/1, /*with_constraint=*/true);
  storage::MemoryWalStorage wal;
  ClusterCoordinator coordinator(cluster_.get(), &wal);

  const gtm::ObjectId a = ObjectOnShard(0), b = ObjectOnShard(1);
  const auto [sa, ba] = BookOne(a);
  const auto [sb, bb] = BookOne(b);

  // A competing transaction takes the last unit of `a` and commits.
  const auto [sc, bc] = BookOne(a);
  ASSERT_TRUE(cluster_->shard(sc)->RequestCommit(bc).ok());
  ASSERT_EQ(QtyOf(a), 0);

  Status s = coordinator.CommitGlobal(7, {{sa, ba}, {sb, bb}});
  EXPECT_EQ(s.code(), StatusCode::kAborted) << s.ToString();
  EXPECT_EQ(StateOf(sa, ba), TxnState::kAborted);
  EXPECT_EQ(StateOf(sb, bb), TxnState::kAborted);
  // Atomicity: the healthy shard's object kept its unit.
  EXPECT_EQ(QtyOf(b), 1);
  EXPECT_EQ(coordinator.counters().prepare_failures, 1);
  EXPECT_EQ(coordinator.counters().aborts, 1);
}

TEST_F(ClusterTest, CrashAfterPrepareIsPresumedAbortOnRecovery) {
  Build(2);
  storage::MemoryWalStorage wal;
  auto coordinator = std::make_unique<ClusterCoordinator>(cluster_.get(), &wal);

  const gtm::ObjectId a = ObjectOnShard(0), b = ObjectOnShard(1);
  const auto [sa, ba] = BookOne(a);
  const auto [sb, bb] = BookOne(b);

  coordinator->set_crash_point(CrashPoint::kAfterPrepare);
  Status s = coordinator->CommitGlobal(1, {{sa, ba}, {sb, bb}});
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  // In doubt: both branches parked mid-commit, nothing installed.
  EXPECT_EQ(StateOf(sa, ba), TxnState::kCommitting);
  EXPECT_EQ(StateOf(sb, bb), TxnState::kCommitting);
  EXPECT_EQ(QtyOf(a), 1000);

  // The coordinator process dies; a successor over the same WAL takes over.
  coordinator = std::make_unique<ClusterCoordinator>(cluster_.get(), &wal);
  Result<ClusterCoordinator::RecoveryOutcome> out = coordinator->Recover();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().presumed_aborts, 1);
  EXPECT_EQ(out.value().committed_forward, 0);
  EXPECT_EQ(StateOf(sa, ba), TxnState::kAborted);
  EXPECT_EQ(StateOf(sb, bb), TxnState::kAborted);
  EXPECT_EQ(QtyOf(a), 1000);
  EXPECT_EQ(QtyOf(b), 1000);
}

TEST_F(ClusterTest, CrashAfterDecisionIsDrivenForwardOnRecovery) {
  Build(2);
  storage::MemoryWalStorage wal;
  auto coordinator = std::make_unique<ClusterCoordinator>(cluster_.get(), &wal);

  const gtm::ObjectId a = ObjectOnShard(0), b = ObjectOnShard(1);
  const auto [sa, ba] = BookOne(a);
  const auto [sb, bb] = BookOne(b);

  coordinator->set_crash_point(CrashPoint::kAfterDecision);
  Status s = coordinator->CommitGlobal(1, {{sa, ba}, {sb, bb}});
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  // Decision was durable but no shard was driven.
  EXPECT_EQ(StateOf(sa, ba), TxnState::kCommitting);
  EXPECT_EQ(QtyOf(a), 1000);

  coordinator = std::make_unique<ClusterCoordinator>(cluster_.get(), &wal);
  Result<ClusterCoordinator::RecoveryOutcome> out = coordinator->Recover();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().committed_forward, 1);
  EXPECT_EQ(out.value().presumed_aborts, 0);
  EXPECT_EQ(StateOf(sa, ba), TxnState::kCommitted);
  EXPECT_EQ(StateOf(sb, bb), TxnState::kCommitted);
  EXPECT_EQ(QtyOf(a), 999);
  EXPECT_EQ(QtyOf(b), 999);
}

TEST_F(ClusterTest, RecoverOnSettledLogIsANoOp) {
  Build(2);
  storage::MemoryWalStorage wal;
  ClusterCoordinator coordinator(cluster_.get(), &wal);
  const auto [sa, ba] = BookOne(ObjectOnShard(0));
  const auto [sb, bb] = BookOne(ObjectOnShard(1));
  ASSERT_TRUE(coordinator.CommitGlobal(1, {{sa, ba}, {sb, bb}}).ok());

  ClusterCoordinator successor(cluster_.get(), &wal);
  Result<ClusterCoordinator::RecoveryOutcome> out = successor.Recover();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().committed_forward, 0);
  EXPECT_EQ(out.value().presumed_aborts, 0);
}

TEST_F(ClusterTest, AbortBranchHandlesEveryState) {
  Build(1);
  const gtm::ObjectId a = ObjectOnShard(0);

  // Live branch: aborted outright.
  const auto [s1, b1] = BookOne(a);
  EXPECT_TRUE(cluster_->AbortBranch(s1, b1).ok());
  EXPECT_EQ(StateOf(s1, b1), TxnState::kAborted);
  // Aborting again is idempotent.
  EXPECT_TRUE(cluster_->AbortBranch(s1, b1).ok());

  // Prepared branch: rolled back from its parked state.
  const auto [s2, b2] = BookOne(a);
  ASSERT_TRUE(cluster_->Prepare(s2, b2).ok());
  EXPECT_TRUE(cluster_->AbortBranch(s2, b2).ok());
  EXPECT_EQ(StateOf(s2, b2), TxnState::kAborted);

  // Committed branch: refused — the outcome is already installed.
  const auto [s3, b3] = BookOne(a);
  ASSERT_TRUE(cluster_->shard(s3)->RequestCommit(b3).ok());
  EXPECT_EQ(cluster_->AbortBranch(s3, b3).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ClusterTest, SnapshotsMergeAcrossShards) {
  Build(2);
  const auto [sa, ba] = BookOne(ObjectOnShard(0));
  const auto [sb, bb] = BookOne(ObjectOnShard(1));
  ASSERT_TRUE(cluster_->shard(sa)->RequestCommit(ba).ok());
  ASSERT_TRUE(cluster_->shard(sb)->RequestCommit(bb).ok());

  EXPECT_EQ(cluster_->ShardSnapshot(0).counters.committed, 1);
  EXPECT_EQ(cluster_->ShardSnapshot(1).counters.committed, 1);

  const gtm::GtmMetrics::Snapshot agg = cluster_->AggregateSnapshot();
  EXPECT_EQ(agg.counters.committed, 2);
  EXPECT_EQ(agg.counters.begun, 2);
  // Histograms merge sample-by-sample.
  EXPECT_EQ(agg.execution_time.count(), 2);
  // The merged summary renders without tripping any internal checks.
  EXPECT_FALSE(agg.Summary().empty());
}

}  // namespace
}  // namespace preserial::cluster
