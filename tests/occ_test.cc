#include "txn/occ.h"

#include <memory>

#include <gtest/gtest.h>

#include "storage/database.h"

namespace preserial::txn {
namespace {

using storage::CheckConstraint;
using storage::ColumnDef;
using storage::CompareOp;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class OccEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("t", std::move(schema)).ok());
    ASSERT_TRUE(
        db_->InsertRow("t", Row({Value::Int(0), Value::Int(2)})).ok());
    ASSERT_TRUE(db_->AddConstraint("t", CheckConstraint("nonneg", 1,
                                                        CompareOp::kGe,
                                                        Value::Int(0)))
                    .ok());
  }

  Value Qty() {
    return db_->GetTable("t").value()->GetColumnByKey(Value::Int(0), 1)
        .value();
  }

  std::unique_ptr<storage::Database> db_;
};

TEST_F(OccEngineTest, BufferedOpsApplyAtCommit) {
  OccEngine engine(db_.get());
  const TxnId t = engine.Begin();
  EXPECT_EQ(engine.Read(t, "t", Value::Int(0), 1).value(), Value::Int(2));
  ASSERT_TRUE(
      engine.BufferAdd(t, "t", Value::Int(0), 1, Value::Int(-1)).ok());
  EXPECT_EQ(Qty(), Value::Int(2));  // Nothing applied yet (frozen).
  ASSERT_TRUE(engine.Commit(t).ok());
  EXPECT_EQ(Qty(), Value::Int(1));
}

TEST_F(OccEngineTest, NoLocksConcurrentTxnsAllProceed) {
  OccEngine engine(db_.get());
  const TxnId a = engine.Begin();
  const TxnId b = engine.Begin();
  // Both read and buffer concurrently; neither waits.
  EXPECT_TRUE(engine.Read(a, "t", Value::Int(0), 1).ok());
  EXPECT_TRUE(engine.Read(b, "t", Value::Int(0), 1).ok());
  ASSERT_TRUE(
      engine.BufferAdd(a, "t", Value::Int(0), 1, Value::Int(-1)).ok());
  ASSERT_TRUE(
      engine.BufferAdd(b, "t", Value::Int(0), 1, Value::Int(-1)).ok());
  EXPECT_TRUE(engine.Commit(a).ok());
  EXPECT_TRUE(engine.Commit(b).ok());
  EXPECT_EQ(Qty(), Value::Int(0));  // Deltas compose.
}

TEST_F(OccEngineTest, ConstraintAbortsAtCommit) {
  OccEngine engine(db_.get());
  // Three concurrent bookings of the last two seats: the third aborts.
  const TxnId a = engine.Begin();
  const TxnId b = engine.Begin();
  const TxnId c = engine.Begin();
  for (TxnId t : {a, b, c}) {
    ASSERT_TRUE(
        engine.BufferAdd(t, "t", Value::Int(0), 1, Value::Int(-1)).ok());
  }
  EXPECT_TRUE(engine.Commit(a).ok());
  EXPECT_TRUE(engine.Commit(b).ok());
  EXPECT_EQ(engine.Commit(c).code(), StatusCode::kAborted);
  EXPECT_EQ(Qty(), Value::Int(0));
  EXPECT_EQ(engine.counters().constraint_aborts, 1);
}

TEST_F(OccEngineTest, ConstraintAbortIsAtomic) {
  OccEngine engine(db_.get());
  const TxnId t = engine.Begin();
  // Two buffered ops; the second violates. Neither may be applied.
  ASSERT_TRUE(
      engine.BufferAdd(t, "t", Value::Int(0), 1, Value::Int(-1)).ok());
  ASSERT_TRUE(
      engine.BufferAdd(t, "t", Value::Int(0), 1, Value::Int(-5)).ok());
  EXPECT_EQ(engine.Commit(t).code(), StatusCode::kAborted);
  EXPECT_EQ(Qty(), Value::Int(2));
}

TEST_F(OccEngineTest, AssignOverwritesAtCommit) {
  OccEngine engine(db_.get());
  const TxnId t = engine.Begin();
  ASSERT_TRUE(
      engine.BufferAssign(t, "t", Value::Int(0), 1, Value::Int(50)).ok());
  ASSERT_TRUE(
      engine.BufferAdd(t, "t", Value::Int(0), 1, Value::Int(3)).ok());
  ASSERT_TRUE(engine.Commit(t).ok());
  EXPECT_EQ(Qty(), Value::Int(53));  // Ops apply in buffered order.
}

TEST_F(OccEngineTest, ValidateReadsFlavorAbortsOnStaleRead) {
  OccEngine engine(db_.get(), OccEngine::Validation::kValidateReads);
  const TxnId a = engine.Begin();
  EXPECT_EQ(engine.Read(a, "t", Value::Int(0), 1).value(), Value::Int(2));
  // A concurrent transaction changes the value under a's feet.
  const TxnId b = engine.Begin();
  ASSERT_TRUE(
      engine.BufferAdd(b, "t", Value::Int(0), 1, Value::Int(-1)).ok());
  ASSERT_TRUE(engine.Commit(b).ok());
  ASSERT_TRUE(
      engine.BufferAdd(a, "t", Value::Int(0), 1, Value::Int(-1)).ok());
  EXPECT_EQ(engine.Commit(a).code(), StatusCode::kAborted);
  EXPECT_EQ(engine.counters().validation_aborts, 1);
  EXPECT_EQ(Qty(), Value::Int(1));  // Only b's effect.
}

TEST_F(OccEngineTest, ConstraintsOnlyFlavorToleratesStaleReads) {
  OccEngine engine(db_.get(), OccEngine::Validation::kConstraintsOnly);
  const TxnId a = engine.Begin();
  EXPECT_TRUE(engine.Read(a, "t", Value::Int(0), 1).ok());
  const TxnId b = engine.Begin();
  ASSERT_TRUE(
      engine.BufferAdd(b, "t", Value::Int(0), 1, Value::Int(-1)).ok());
  ASSERT_TRUE(engine.Commit(b).ok());
  ASSERT_TRUE(
      engine.BufferAdd(a, "t", Value::Int(0), 1, Value::Int(-1)).ok());
  EXPECT_TRUE(engine.Commit(a).ok());  // Stale read, but constraint holds.
  EXPECT_EQ(Qty(), Value::Int(0));
}

TEST_F(OccEngineTest, UserAbortDiscardsBuffer) {
  OccEngine engine(db_.get());
  const TxnId t = engine.Begin();
  ASSERT_TRUE(
      engine.BufferAssign(t, "t", Value::Int(0), 1, Value::Int(9)).ok());
  ASSERT_TRUE(engine.Abort(t).ok());
  EXPECT_EQ(Qty(), Value::Int(2));
  EXPECT_EQ(engine.Commit(t).code(), StatusCode::kFailedPrecondition);
}

TEST_F(OccEngineTest, OperationsOnDeadTxnRejected) {
  OccEngine engine(db_.get());
  const TxnId t = engine.Begin();
  ASSERT_TRUE(engine.Commit(t).ok());
  EXPECT_FALSE(engine.Read(t, "t", Value::Int(0), 1).ok());
  EXPECT_FALSE(
      engine.BufferAdd(t, "t", Value::Int(0), 1, Value::Int(1)).ok());
  EXPECT_FALSE(engine.Abort(t).ok());
}

}  // namespace
}  // namespace preserial::txn
