// Chaos test: many client threads drive the GtmService while the SST layer
// injects transient failures and clients randomly sleep/awake/abort. The
// system must stay consistent: every committed delta lands exactly once,
// aborted work leaves no residue, and the GTM invariants hold throughout.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/checker.h"
#include "check/history.h"
#include "common/random.h"
#include "gtm/gtm_service.h"
#include "storage/database.h"

namespace preserial::gtm {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class GtmChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("t", std::move(schema)).ok());
    for (int64_t i = 0; i < kObjects; ++i) {
      ASSERT_TRUE(db_->InsertRow("t", Row({Value::Int(i),
                                           Value::Int(kInitial)}))
                      .ok());
    }
    GtmOptions options;
    options.sst_retry_limit = 5;  // Ride out the injected failures.
    service_ = std::make_unique<GtmService>(db_.get(), options);
    for (int64_t i = 0; i < kObjects; ++i) {
      ASSERT_TRUE(service_->gtm()
                      ->RegisterObject("o" + std::to_string(i), "t",
                                       Value::Int(i), {1})
                      .ok());
    }
  }

  static constexpr int64_t kObjects = 3;
  static constexpr int64_t kInitial = 100000;

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<GtmService> service_;
};

TEST_F(GtmChaosTest, CommittedDeltasExactUnderFailuresAndSleeps) {
  // Every 3rd SST attempt fails transiently; retries must absorb all of it.
  std::atomic<int> sst_calls{0};
  service_->gtm()->mutable_sst()->set_failure_injector(
      [&sst_calls](const auto&) -> Status {
        if (sst_calls.fetch_add(1) % 3 == 2) {
          return Status::Unavailable("injected blip");
        }
        return Status::Ok();
      });

  // Record the full interleaving for the serializability oracle: the trace
  // ring is written under the GTM lock, so the recorded order is the real
  // execution order even with six client threads.
  check::HistoryRecorder recorder;
  recorder.Attach(service_->gtm());

  constexpr int kThreads = 6;
  constexpr int kTxnsPerThread = 40;
  std::vector<std::atomic<int64_t>> committed_delta(kObjects);
  for (auto& d : committed_delta) d.store(0);
  std::atomic<int> aborted{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([this, ti, &committed_delta, &aborted] {
      Rng rng(900 + static_cast<uint64_t>(ti));
      for (int j = 0; j < kTxnsPerThread; ++j) {
        const TxnId t = service_->Begin();
        const size_t obj = rng.NextBounded(kObjects);
        const int64_t amount = rng.NextInt(1, 5);
        const Status invoked =
            service_->Invoke(t, "o" + std::to_string(obj), 0,
                             Operation::Sub(Value::Int(amount)), 10.0);
        if (!invoked.ok()) {
          (void)service_->Abort(t);
          aborted.fetch_add(1);
          continue;
        }
        // Random mid-flight behaviour: sleep/awake, voluntary abort, or
        // straight commit.
        const uint64_t dice = rng.NextBounded(10);
        if (dice < 3) {
          if (service_->Sleep(t).ok()) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                rng.NextInt(10, 200)));
            if (!service_->Awake(t).ok()) {
              aborted.fetch_add(1);  // Awake-abort: incompatible meanwhile.
              continue;
            }
          }
        } else if (dice == 3) {
          (void)service_->Abort(t);
          aborted.fetch_add(1);
          continue;
        }
        if (service_->Commit(t).ok()) {
          committed_delta[obj].fetch_add(amount);
        } else {
          aborted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Exactly the committed deltas are in the database — nothing more,
  // nothing less, despite injected SST failures and sleeping clients.
  for (int64_t i = 0; i < kObjects; ++i) {
    const Value in_db = db_->GetTable("t")
                            .value()
                            ->GetColumnByKey(Value::Int(i), 1)
                            .value();
    EXPECT_EQ(in_db, Value::Int(kInitial - committed_delta[i].load()))
        << "object " << i;
    EXPECT_EQ(service_->gtm()->PermanentValue("o" + std::to_string(i), 0)
                  .value(),
              in_db);
  }
  EXPECT_TRUE(service_->gtm()->CheckInvariants().ok());
  // The retry policy actually absorbed failures (sanity that chaos ran).
  EXPECT_GT(service_->gtm()->metrics().counters().sst_retries, 0);
  const GtmCounters& c = service_->gtm()->metrics().counters();
  EXPECT_EQ(c.begun, kThreads * kTxnsPerThread);
  EXPECT_EQ(c.committed + c.aborted, c.begun);

  // Beyond conservation: the recorded history must be semantically
  // serializable — Definition 1 admissions, eq. 1-2 reconciliation, an
  // equivalent serial order, and the Algorithm 9 awake rule.
  const check::History history = recorder.Finish();
  ASSERT_TRUE(history.complete);
  const check::CheckReport report = check::CheckHistory(history);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.committed_txns, static_cast<size_t>(c.committed));
}

TEST_F(GtmChaosTest, HardSstOutageAbortsEverythingCleanly) {
  service_->gtm()->mutable_sst()->set_failure_injector(
      [](const auto&) { return Status::Unavailable("LDBS offline"); });
  check::HistoryRecorder recorder;
  recorder.Attach(service_->gtm());
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> commit_ok{0};
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([this, ti, &commit_ok] {
      Rng rng(50 + static_cast<uint64_t>(ti));
      for (int j = 0; j < 20; ++j) {
        const TxnId t = service_->Begin();
        if (service_->Invoke(t, "o0", 0,
                             Operation::Sub(Value::Int(1)), 5.0)
                .ok() &&
            service_->Commit(t).ok()) {
          commit_ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(commit_ok.load(), 0);
  // Nothing leaked into the database.
  EXPECT_EQ(db_->GetTable("t")
                .value()
                ->GetColumnByKey(Value::Int(0), 1)
                .value(),
            Value::Int(kInitial));
  EXPECT_TRUE(service_->gtm()->CheckInvariants().ok());
  // A run where everything aborts is trivially serializable — and the
  // oracle must agree (aborted work leaves no trace in the final state).
  const check::History history = recorder.Finish();
  ASSERT_TRUE(history.complete);
  const check::CheckReport report = check::CheckHistory(history);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.committed_txns, 0u);
}

}  // namespace
}  // namespace preserial::gtm
