#include "txn/two_pl_service.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/database.h"
#include "test_util.h"

namespace preserial::txn {
namespace {

using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class TwoPlServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("t", std::move(schema)).ok());
    ASSERT_TRUE(
        db_->InsertRow("t", Row({Value::Int(0), Value::Int(1000)})).ok());
    service_ = std::make_unique<TwoPlService>(db_.get());
  }

  Value Qty() {
    return db_->GetTable("t").value()->GetColumnByKey(Value::Int(0), 1)
        .value();
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<TwoPlService> service_;
};

TEST_F(TwoPlServiceTest, SingleThreadedRoundTrip) {
  const TxnId t = service_->Begin();
  Result<Value> v = service_->ReadForUpdate(t, "t", Value::Int(0), 1);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(
      service_->Write(t, "t", Value::Int(0), 1, Value::Int(999)).ok());
  ASSERT_TRUE(service_->Commit(t).ok());
  EXPECT_EQ(Qty(), Value::Int(999));
}

TEST_F(TwoPlServiceTest, BlockedWriterResumesAfterCommit) {
  const TxnId holder = service_->Begin();
  ASSERT_TRUE(
      service_->Write(holder, "t", Value::Int(0), 1, Value::Int(5)).ok());
  std::atomic<bool> done{false};
  const int64_t waits_before = service_->engine()->counters().lock_waits;
  std::thread waiter([this, &done] {
    const TxnId t = service_->Begin();
    EXPECT_TRUE(
        service_->Write(t, "t", Value::Int(0), 1, Value::Int(7), 30.0).ok());
    EXPECT_TRUE(service_->Commit(t).ok());
    done.store(true);
  });
  // Wait until the writer has actually queued behind the holder's lock.
  ASSERT_TRUE(testutil::WaitUntil([&] {
    return service_->engine()->counters().lock_waits > waits_before;
  }));
  EXPECT_FALSE(done.load());
  ASSERT_TRUE(service_->Commit(holder).ok());
  waiter.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(Qty(), Value::Int(7));
}

TEST_F(TwoPlServiceTest, TimeoutAbortsWaiter) {
  const TxnId holder = service_->Begin();
  ASSERT_TRUE(
      service_->Write(holder, "t", Value::Int(0), 1, Value::Int(5)).ok());
  const TxnId waiter = service_->Begin();
  const Status s =
      service_->Write(waiter, "t", Value::Int(0), 1, Value::Int(7),
                      /*timeout=*/0.05);
  EXPECT_EQ(s.code(), StatusCode::kTimedOut);
  ASSERT_TRUE(service_->Commit(holder).ok());
  EXPECT_EQ(Qty(), Value::Int(5));
}

TEST_F(TwoPlServiceTest, DeadlockVictimAutoAborted) {
  ASSERT_TRUE(
      db_->InsertRow("t", Row({Value::Int(1), Value::Int(1000)})).ok());
  const TxnId a = service_->Begin();
  const TxnId b = service_->Begin();
  ASSERT_TRUE(service_->Write(a, "t", Value::Int(0), 1, Value::Int(1)).ok());
  ASSERT_TRUE(service_->Write(b, "t", Value::Int(1), 1, Value::Int(2)).ok());
  const int64_t waits_before = service_->engine()->counters().lock_waits;
  std::thread a_thread([this, a] {
    // Blocks on row 1 until b dies, then succeeds.
    EXPECT_TRUE(
        service_->Write(a, "t", Value::Int(1), 1, Value::Int(3), 30.0).ok());
    EXPECT_TRUE(service_->Commit(a).ok());
  });
  // a must be queued on row 1 before b's request can close the cycle.
  ASSERT_TRUE(testutil::WaitUntil([&] {
    return service_->engine()->counters().lock_waits > waits_before;
  }));
  // b closing the cycle is refused and auto-aborted.
  const Status s =
      service_->Write(b, "t", Value::Int(0), 1, Value::Int(4), 30.0);
  EXPECT_EQ(s.code(), StatusCode::kDeadlock);
  a_thread.join();
  EXPECT_EQ(Qty(), Value::Int(1));
}

TEST_F(TwoPlServiceTest, ManySerializedIncrements) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;
  std::vector<std::thread> threads;
  std::atomic<int> committed{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([this, &committed] {
      for (int j = 0; j < kPerThread; ++j) {
        // Classic read-modify-write under U locks; retry on any failure.
        while (true) {
          const TxnId t = service_->Begin();
          Result<Value> v =
              service_->ReadForUpdate(t, "t", Value::Int(0), 1, 10.0);
          if (!v.ok()) continue;
          const Value next =
              Value::Sub(v.value(), Value::Int(1)).value();
          if (!service_->Write(t, "t", Value::Int(0), 1, next, 10.0).ok()) {
            (void)service_->Abort(t);
            continue;
          }
          if (service_->Commit(t).ok()) {
            committed.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(committed.load(), kThreads * kPerThread);
  // Strict serialization: every decrement counted exactly once.
  EXPECT_EQ(Qty(), Value::Int(1000 - kThreads * kPerThread));
}

TEST_F(TwoPlServiceTest, ReadersRunConcurrently) {
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<int> reads{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([this, &reads] {
      const TxnId t = service_->Begin();
      Result<Value> v = service_->Read(t, "t", Value::Int(0), 1, 5.0);
      if (v.ok() && v.value() == Value::Int(1000)) reads.fetch_add(1);
      (void)service_->Commit(t);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(reads.load(), kThreads);
}

}  // namespace
}  // namespace preserial::txn
