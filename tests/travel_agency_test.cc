#include "workload/travel_agency.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace preserial::workload {
namespace {

using storage::Value;

class TravelAgencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.num_flights = 4;
    config_.num_hotels = 3;
    config_.num_museums = 2;
    config_.num_cars = 2;
    config_.seats_per_flight = 10;
    config_.rooms_per_hotel = 10;
    config_.tickets_per_museum = 10;
    config_.cars_per_depot = 10;
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    ASSERT_TRUE(BuildTravelAgencyDatabase(db_.get(), config_).ok());
    service_ = std::make_unique<gtm::GtmService>(db_.get());
    ASSERT_TRUE(RegisterTravelObjects(service_->gtm(), config_).ok());
  }

  Value Availability(const std::string& table, size_t i) {
    return db_->GetTable(table)
        .value()
        ->GetColumnByKey(Value::Int(static_cast<int64_t>(i)),
                         kAvailabilityColumn)
        .value();
  }

  TravelAgencyConfig config_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<gtm::GtmService> service_;
};

TEST_F(TravelAgencyTest, SchemaAndSeedData) {
  EXPECT_EQ(db_->catalog()->table_count(), 4u);
  EXPECT_EQ(Availability(kFlightsTable, 0), Value::Int(10));
  EXPECT_EQ(Availability(kHotelsTable, 2), Value::Int(10));
  EXPECT_EQ(Availability(kMuseumsTable, 1), Value::Int(10));
  EXPECT_EQ(Availability(kCarsTable, 0), Value::Int(10));
  // Constraints installed on every counter table.
  for (const char* table : {kFlightsTable, kHotelsTable, kMuseumsTable,
                            kCarsTable}) {
    EXPECT_EQ(db_->GetTable(table).value()->constraints().size(), 1u);
  }
}

TEST_F(TravelAgencyTest, ObjectsRegisteredForEveryCounter) {
  gtm::Gtm* gtm = service_->gtm();
  EXPECT_TRUE(gtm->HasObject(FlightObject(3)));
  EXPECT_TRUE(gtm->HasObject(HotelObject(0)));
  EXPECT_TRUE(gtm->HasObject(MuseumObject(1)));
  EXPECT_TRUE(gtm->HasObject(CarObject(1)));
  EXPECT_FALSE(gtm->HasObject(FlightObject(99)));
  EXPECT_EQ(gtm->PermanentValue(FlightObject(0), 0).value(), Value::Int(10));
}

TEST_F(TravelAgencyTest, BookTourDecrementsEveryCounter) {
  TourPlan tour;
  tour.flight = 1;
  tour.hotel = 2;
  tour.museum = 0;
  tour.car = 1;
  ASSERT_TRUE(BookTour(service_.get(), tour).ok());
  EXPECT_EQ(Availability(kFlightsTable, 1), Value::Int(9));
  EXPECT_EQ(Availability(kHotelsTable, 2), Value::Int(9));
  EXPECT_EQ(Availability(kMuseumsTable, 0), Value::Int(9));
  EXPECT_EQ(Availability(kCarsTable, 1), Value::Int(9));
  // Untouched counters stay put.
  EXPECT_EQ(Availability(kFlightsTable, 0), Value::Int(10));
}

TEST_F(TravelAgencyTest, ConcurrentBookingsAllSucceedViaSharing) {
  // Many clients book the SAME flight concurrently: subtractions are
  // compatible, so nobody waits and every booking lands.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([this, &ok] {
      TourPlan tour;  // Everyone wants flight 0, hotel 0, museum 0, car 0.
      if (BookTour(service_.get(), tour).ok()) ok.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(Availability(kFlightsTable, 0), Value::Int(10 - kThreads));
}

TEST_F(TravelAgencyTest, ExhaustedFlightAbortsViaConstraint) {
  TourPlan tour;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(BookTour(service_.get(), tour).ok()) << i;
  }
  // Seat 11 violates FreeTickets >= 0 at SST time.
  const Status s = BookTour(service_.get(), tour);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(Availability(kFlightsTable, 0), Value::Int(0));
  // The aborted tour did not leak partial bookings into other tables.
  EXPECT_EQ(Availability(kHotelsTable, 0), Value::Int(0));
  // (Hotel 0 was also booked 10 times above, hence 0 — check a fresh one.)
  EXPECT_EQ(Availability(kHotelsTable, 1), Value::Int(10));
}

TEST_F(TravelAgencyTest, SampleTourStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const TourPlan tour = SampleTour(rng, config_);
    EXPECT_LT(tour.flight, config_.num_flights);
    EXPECT_LT(tour.hotel, config_.num_hotels);
    EXPECT_LT(tour.museum, config_.num_museums);
    EXPECT_LT(tour.car, config_.num_cars);
  }
}

TEST_F(TravelAgencyTest, DisconnectedTouristResumesBooking) {
  // The paper's flagship story: a mobile user starts a tour, disconnects,
  // comes back, finishes and commits — while other tourists kept booking
  // compatibly.
  gtm::GtmService* service = service_.get();
  const TxnId tourist = service->Begin();
  ASSERT_TRUE(service->Invoke(tourist, FlightObject(0), 0,
                              semantics::Operation::Sub(Value::Int(1)))
                  .ok());
  ASSERT_TRUE(service->Sleep(tourist).ok());
  // Meanwhile another client books the same flight and commits.
  TourPlan other;
  ASSERT_TRUE(BookTour(service, other).ok());
  // The tourist reconnects, finishes the package and commits.
  ASSERT_TRUE(service->Awake(tourist).ok());
  ASSERT_TRUE(service->Invoke(tourist, HotelObject(1), 0,
                              semantics::Operation::Sub(Value::Int(1)))
                  .ok());
  ASSERT_TRUE(service->Commit(tourist).ok());
  EXPECT_EQ(Availability(kFlightsTable, 0), Value::Int(8));  // Two bookings.
  EXPECT_EQ(Availability(kHotelsTable, 1), Value::Int(9));
}

}  // namespace
}  // namespace preserial::gtm
