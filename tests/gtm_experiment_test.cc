#include "workload/gtm_experiment.h"

#include <gtest/gtest.h>

namespace preserial::workload {
namespace {

GtmExperimentSpec SmallSpec() {
  GtmExperimentSpec spec;
  spec.num_txns = 200;
  spec.num_objects = 5;
  spec.alpha = 0.7;
  spec.beta = 0.05;
  spec.interarrival = 0.5;
  spec.work_time = 2.0;
  spec.disconnect_mean = 10.0;
  spec.seed = 7;
  return spec;
}

TEST(GtmExperimentTest, RunsToCompletion) {
  const ExperimentResult r = RunGtmExperiment(SmallSpec());
  EXPECT_EQ(r.run.started, 200);
  EXPECT_EQ(r.run.committed + r.run.aborted, 200);
  EXPECT_GT(r.run.committed, 150);  // The vast majority commits.
}

TEST(GtmExperimentTest, PureSubtractionWorkloadNeverConflicts) {
  GtmExperimentSpec spec = SmallSpec();
  spec.alpha = 1.0;  // Everything compatible.
  spec.beta = 0.0;
  const ExperimentResult r = RunGtmExperiment(spec);
  EXPECT_EQ(r.run.committed, 200);
  EXPECT_EQ(r.waits, 0);
  // Every latency is exactly the work time.
  EXPECT_DOUBLE_EQ(r.run.AvgLatency(), spec.work_time);
}

TEST(GtmExperimentTest, AssignmentsIntroduceWaits) {
  GtmExperimentSpec spec = SmallSpec();
  spec.alpha = 0.5;
  spec.beta = 0.0;
  const ExperimentResult r = RunGtmExperiment(spec);
  EXPECT_GT(r.waits, 0);
  EXPECT_GT(r.run.AvgLatency(), spec.work_time);
}

TEST(GtmExperimentTest, GtmSharesWhereTwoPlSerializes) {
  GtmExperimentSpec spec = SmallSpec();
  spec.alpha = 1.0;  // All subtractions.
  spec.beta = 0.0;
  const ExperimentResult gtm = RunGtmExperiment(spec);
  const ExperimentResult tpl = RunTwoPlExperiment(spec);
  // Same transactions commit everywhere...
  EXPECT_EQ(gtm.run.committed, 200);
  EXPECT_EQ(tpl.run.committed, 200);
  // ...but 2PL pays lock waits the GTM avoids entirely.
  EXPECT_EQ(gtm.waits, 0);
  EXPECT_GT(tpl.waits, 0);
  EXPECT_LT(gtm.run.AvgLatency(), tpl.run.AvgLatency());
}

TEST(GtmExperimentTest, DisconnectionsHurtTwoPlMoreThanGtm) {
  GtmExperimentSpec spec = SmallSpec();
  spec.alpha = 1.0;
  spec.beta = 0.3;  // Lots of disconnections.
  spec.disconnect_mean = 20.0;
  const ExperimentResult gtm = RunGtmExperiment(spec);
  TwoPlPolicy policy;
  policy.lock_wait_timeout = 15.0;
  policy.idle_timeout = 10.0;  // Preventive aborts of disconnected holders.
  const ExperimentResult tpl = RunTwoPlExperiment(spec, policy);
  // GTM: sleepers survive compatible traffic — no aborts at all.
  EXPECT_EQ(gtm.run.aborted, 0);
  // 2PL: disconnected holders get preventively aborted.
  EXPECT_GT(tpl.run.aborted, 0);
}

TEST(GtmExperimentTest, AbortRateGrowsWithBeta) {
  GtmExperimentSpec spec = SmallSpec();
  spec.num_txns = 400;
  spec.alpha = 0.7;
  spec.work_time = 2.0;
  spec.disconnect_mean = 20.0;
  spec.beta = 0.05;
  const double low = RunGtmExperiment(spec).run.AbortPercent();
  spec.beta = 0.6;
  const double high = RunGtmExperiment(spec).run.AbortPercent();
  EXPECT_LT(low, high);
}

TEST(GtmExperimentTest, PerClassLatenciesTagged) {
  GtmExperimentSpec spec = SmallSpec();
  spec.alpha = 0.5;
  spec.beta = 0.0;
  const ExperimentResult r = RunGtmExperiment(spec);
  ASSERT_EQ(r.run.latency_by_tag.count(kTagSubtract), 1u);
  ASSERT_EQ(r.run.latency_by_tag.count(kTagAssign), 1u);
  const double sub_mean = r.run.latency_by_tag.at(kTagSubtract).mean();
  const double assign_mean = r.run.latency_by_tag.at(kTagAssign).mean();
  // Subtractions share; assignments serialize against everything: slower.
  EXPECT_LT(sub_mean, assign_mean);
  // Tagged counts add up to all commits.
  EXPECT_EQ(r.run.latency_by_tag.at(kTagSubtract).count() +
                r.run.latency_by_tag.at(kTagAssign).count(),
            r.run.committed);
}

TEST(GtmExperimentTest, NetworkLatencyStretchesLatency) {
  GtmExperimentSpec spec = SmallSpec();
  spec.alpha = 1.0;
  spec.beta = 0.0;
  const double base = RunGtmExperiment(spec).run.AvgLatency();
  spec.network_delay_mean = 0.5;
  const double delayed = RunGtmExperiment(spec).run.AvgLatency();
  // Two exponential(0.5) hops on average.
  EXPECT_NEAR(delayed - base, 1.0, 0.25);
}

TEST(GtmExperimentTest, DeterministicForFixedSeed) {
  const ExperimentResult a = RunGtmExperiment(SmallSpec());
  const ExperimentResult b = RunGtmExperiment(SmallSpec());
  EXPECT_EQ(a.run.committed, b.run.committed);
  EXPECT_EQ(a.run.aborted, b.run.aborted);
  EXPECT_DOUBLE_EQ(a.run.AvgLatency(), b.run.AvgLatency());
}

TEST(GtmExperimentTest, SeedsVaryOutcomes) {
  GtmExperimentSpec spec = SmallSpec();
  spec.beta = 0.3;
  const ExperimentResult a = RunGtmExperiment(spec);
  spec.seed = 8;
  const ExperimentResult b = RunGtmExperiment(spec);
  // Different arrival mixes: at least some statistic differs.
  EXPECT_TRUE(a.run.committed != b.run.committed ||
              a.run.AvgLatency() != b.run.AvgLatency());
}

TEST(GtmExperimentTest, OccBaselineCommitsWithoutWaiting) {
  GtmExperimentSpec spec = SmallSpec();
  spec.beta = 0.2;
  const ExperimentResult r = RunOccExperiment(spec);
  EXPECT_EQ(r.run.started, 200);
  // No constraint is binding (huge initial quantity): everyone commits,
  // and nobody ever waits (the freeze strategy holds no locks).
  EXPECT_EQ(r.run.committed, 200);
  EXPECT_EQ(r.waits, 0);
}

TEST(GtmExperimentTest, OccConstraintAbortsWhenSeatsRunOut) {
  GtmExperimentSpec spec = SmallSpec();
  spec.num_txns = 300;
  spec.num_objects = 2;
  spec.alpha = 1.0;
  spec.beta = 0.0;
  spec.initial_quantity = 50;  // 300 bookings chase 100 seats.
  spec.add_quantity_constraint = true;
  const ExperimentResult r = RunOccExperiment(spec);
  EXPECT_EQ(r.run.committed, 100);
  EXPECT_EQ(r.run.aborted, 200);
}

TEST(GtmExperimentTest, GtmConstraintAbortsLateCommitters) {
  GtmExperimentSpec spec = SmallSpec();
  spec.num_txns = 100;
  spec.num_objects = 1;
  spec.alpha = 1.0;
  spec.beta = 0.0;
  spec.initial_quantity = 30;
  spec.add_quantity_constraint = true;
  const ExperimentResult r = RunGtmExperiment(spec);
  // Exactly the available seats are sold; the rest abort at SST time
  // (paper Sec. VII problem 2).
  EXPECT_EQ(r.run.committed, 30);
  EXPECT_EQ(r.run.aborted, 70);
}

TEST(GtmExperimentTest, ConstraintAwareAdmissionAvoidsLateAborts) {
  GtmExperimentSpec spec = SmallSpec();
  spec.num_txns = 100;
  spec.num_objects = 1;
  spec.alpha = 1.0;
  spec.beta = 0.0;
  spec.initial_quantity = 30;
  spec.add_quantity_constraint = true;
  gtm::GtmOptions options;
  options.constraint_aware_admission = true;
  const ExperimentResult r = RunGtmExperiment(spec, options);
  // Still only 30 seats, but the refusals happen up front (admission), so
  // nothing reaches the SST just to die there.
  EXPECT_EQ(r.run.committed, 30);
  EXPECT_EQ(r.run.aborted, 70);
}

}  // namespace
}  // namespace preserial::workload
