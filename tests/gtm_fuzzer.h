// Shared randomized-fuzz harnesses for the GTM, extracted so that both the
// fuzz tests and the corpus replay test drive the *same* code: a failing
// seed emitted by gtm_property_test / gtm_member_fuzz_test replays
// bit-for-bit through corpus_replay_test.
//
//   GtmFuzzer / RunPropertyFuzz  object-level fuzz with an independent
//                                commit-order oracle (gtm_property_test)
//   RunMemberFuzz                member-level fuzz of one object with two
//                                logically dependent members
//                                (gtm_member_fuzz_test)

#ifndef PRESERIAL_TESTS_GTM_FUZZER_H_
#define PRESERIAL_TESTS_GTM_FUZZER_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "gtm/gtm.h"
#include "storage/database.h"

namespace preserial::gtm {

namespace fuzz_internal {
using semantics::OpClass;
using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;
}  // namespace fuzz_internal

inline constexpr size_t kFuzzNumObjects = 4;
inline constexpr int64_t kFuzzInitial = 1000;

// What the fuzzer believes one transaction has done to one object.
struct FuzzTxnObjectModel {
  fuzz_internal::OpClass cls = fuzz_internal::OpClass::kRead;
  int64_t delta = 0;     // Net add/sub effect.
  int64_t assigned = 0;  // Last assigned value (cls == kUpdateAssign).
};

struct FuzzTxnModel {
  std::map<size_t, FuzzTxnObjectModel> objects;
  bool waiting = false;
  bool sleeping = false;
};

// Randomized end-to-end driver: many interleaved transactions through
// invoke / commit / abort / sleep / awake with every operation class, and
// an independent oracle replaying the *committed* transactions in commit
// order. The paper's serializability claim (Sec. V) reduces to: the final
// database state equals the oracle's, for every interleaving.
class GtmFuzzer {
 public:
  explicit GtmFuzzer(uint64_t seed, GtmOptions options) : rng_(seed) {
    using namespace fuzz_internal;
    db_ = std::make_unique<storage::Database>();
    EXPECT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"val", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    EXPECT_TRUE(db_->CreateTable("t", std::move(schema)).ok());
    for (size_t i = 0; i < kFuzzNumObjects; ++i) {
      EXPECT_TRUE(db_->InsertRow("t", Row({Value::Int(static_cast<int64_t>(i)),
                                           Value::Int(kFuzzInitial)}))
                      .ok());
      expected_[i] = kFuzzInitial;
    }
    gtm_ = std::make_unique<Gtm>(db_.get(), &clock_, options);
    for (size_t i = 0; i < kFuzzNumObjects; ++i) {
      EXPECT_TRUE(gtm_->RegisterObject(ObjName(i), "t",
                                       Value::Int(static_cast<int64_t>(i)),
                                       {1})
                      .ok());
    }
  }

  static ObjectId ObjName(size_t i) { return "obj/" + std::to_string(i); }

  // The live Gtm, for callers that attach recorders before RunSteps.
  Gtm* gtm() { return gtm_.get(); }

  void RunSteps(int steps) {
    for (int s = 0; s < steps; ++s) {
      Step();
      if (s % 37 == 0) {
        const Status inv = gtm_->CheckInvariants();
        ASSERT_TRUE(inv.ok()) << "step " << s << ": " << inv.ToString();
      }
    }
    Drain();
    Verify();
  }

 private:
  using Operation = fuzz_internal::Operation;
  using OpClass = fuzz_internal::OpClass;
  using Value = fuzz_internal::Value;

  void Step() {
    clock_.Advance(0.1 + rng_.NextDouble());
    DrainEvents();
    const uint64_t action = rng_.NextBounded(10);
    if (live_.empty() || action == 0) {
      // Start a new transaction.
      const TxnId t = gtm_->Begin(static_cast<int>(rng_.NextBounded(3)));
      live_[t] = FuzzTxnModel{};
      return;
    }
    // Pick a random live transaction.
    auto it = live_.begin();
    std::advance(it, rng_.NextBounded(live_.size()));
    const TxnId t = it->first;
    FuzzTxnModel& model = it->second;

    if (model.sleeping) {
      // Sleeping transactions can only awake (or be user-aborted).
      if (rng_.NextBool(0.7)) {
        const Status s = gtm_->Awake(t);
        if (s.ok()) {
          model.sleeping = false;
          model.waiting = false;  // A queued invocation was admitted...
          ReconcileWaitingModel(t, model);
        } else {
          // Awake-abort: the transaction is gone, nothing committed.
          live_.erase(t);
        }
      } else {
        EXPECT_TRUE(gtm_->RequestAbort(t).ok());
        live_.erase(t);
      }
      return;
    }
    if (model.waiting) {
      // Waiting: may sleep, abort, or just let time pass.
      const uint64_t choice = rng_.NextBounded(3);
      if (choice == 0) {
        if (gtm_->Sleep(t).ok()) model.sleeping = true;
      } else if (choice == 1) {
        EXPECT_TRUE(gtm_->RequestAbort(t).ok());
        live_.erase(t);
      }
      return;
    }

    // Active transaction: invoke / commit / abort / sleep.
    switch (rng_.NextBounded(8)) {
      case 0: {  // Commit.
        const Status s = gtm_->RequestCommit(t);
        if (s.ok()) {
          ApplyToOracle(model);
        }
        // Failed commits (reconciliation/SST) abort the txn either way.
        live_.erase(t);
        return;
      }
      case 1: {  // Abort.
        EXPECT_TRUE(gtm_->RequestAbort(t).ok());
        live_.erase(t);
        return;
      }
      case 2: {  // Sleep.
        if (gtm_->Sleep(t).ok()) model.sleeping = true;
        return;
      }
      default: {  // Invoke an operation.
        InvokeRandom(t, model);
        return;
      }
    }
  }

  void InvokeRandom(TxnId t, FuzzTxnModel& model) {
    const size_t obj = rng_.NextBounded(kFuzzNumObjects);
    auto existing = model.objects.find(obj);
    Operation op;
    if (existing != model.objects.end() &&
        existing->second.cls != OpClass::kRead) {
      // Must stay within the granted class on this member.
      if (existing->second.cls == OpClass::kUpdateAssign) {
        op = Operation::Assign(Value::Int(rng_.NextInt(0, 500)));
      } else {
        op = rng_.NextBool(0.5)
                 ? Operation::Add(Value::Int(rng_.NextInt(1, 5)))
                 : Operation::Sub(Value::Int(rng_.NextInt(1, 5)));
      }
    } else {
      switch (rng_.NextBounded(4)) {
        case 0:
          op = Operation::Read();
          break;
        case 1:
          op = Operation::Assign(Value::Int(rng_.NextInt(0, 500)));
          break;
        default:
          op = rng_.NextBool(0.5)
                   ? Operation::Add(Value::Int(rng_.NextInt(1, 5)))
                   : Operation::Sub(Value::Int(rng_.NextInt(1, 5)));
          break;
      }
    }
    const Status s = gtm_->Invoke(t, ObjName(obj), 0, op);
    switch (s.code()) {
      case StatusCode::kOk:
        NoteApplied(model, obj, op);
        return;
      case StatusCode::kWaiting:
        model.waiting = true;
        pending_wait_[t] = {obj, op};
        return;
      case StatusCode::kDeadlock:
        EXPECT_TRUE(gtm_->RequestAbort(t).ok());
        live_.erase(t);
        return;
      case StatusCode::kConflict:            // Upgrade refusal.
      case StatusCode::kFailedPrecondition:  // Class mixing refusal.
        return;  // Transaction stays active, op not applied.
      default:
        FAIL() << "unexpected invoke status " << s.ToString();
    }
  }

  void NoteApplied(FuzzTxnModel& model, size_t obj, const Operation& op) {
    FuzzTxnObjectModel& om = model.objects[obj];
    switch (op.cls) {
      case OpClass::kRead:
        if (om.cls == OpClass::kRead) om.cls = OpClass::kRead;
        break;
      case OpClass::kUpdateAssign:
        om.cls = OpClass::kUpdateAssign;
        om.assigned = op.operand.as_int();
        break;
      case OpClass::kUpdateAddSub: {
        om.cls = OpClass::kUpdateAddSub;
        const int64_t c = op.operand.as_int();
        om.delta += op.inverse ? -c : c;
        break;
      }
      default:
        break;
    }
  }

  // A grant event delivered a queued invocation: fold it into the model.
  void ReconcileWaitingModel(TxnId t, FuzzTxnModel& model) {
    auto it = pending_wait_.find(t);
    if (it == pending_wait_.end()) return;
    NoteApplied(model, it->second.first, it->second.second);
    pending_wait_.erase(it);
  }

  void DrainEvents() {
    for (const GtmEvent& e : gtm_->TakeEvents()) {
      auto it = live_.find(e.txn);
      if (it == live_.end()) continue;
      it->second.waiting = false;
      ReconcileWaitingModel(e.txn, it->second);
    }
  }

  void ApplyToOracle(const FuzzTxnModel& model) {
    for (const auto& [obj, om] : model.objects) {
      switch (om.cls) {
        case OpClass::kUpdateAssign:
          expected_[obj] = om.assigned;
          break;
        case OpClass::kUpdateAddSub:
          expected_[obj] += om.delta;
          break;
        default:
          break;
      }
    }
  }

  // Finish every live transaction: awake sleepers, abort waiters, commit
  // the rest.
  void Drain() {
    bool progress = true;
    while (!live_.empty() && progress) {
      progress = false;
      DrainEvents();
      std::vector<TxnId> ids;
      ids.reserve(live_.size());
      for (const auto& [id, _] : live_) ids.push_back(id);
      for (TxnId t : ids) {
        auto it = live_.find(t);
        if (it == live_.end()) continue;
        FuzzTxnModel& model = it->second;
        clock_.Advance(0.5);
        if (model.sleeping) {
          const Status s = gtm_->Awake(t);
          if (s.ok()) {
            model.sleeping = false;
            model.waiting = false;
            ReconcileWaitingModel(t, model);
          } else {
            live_.erase(t);
          }
          progress = true;
        } else if (model.waiting) {
          // Still queued; give grants a chance, then abort if stuck.
          DrainEvents();
          if (live_.count(t) > 0 && live_[t].waiting) {
            EXPECT_TRUE(gtm_->RequestAbort(t).ok());
            live_.erase(t);
          }
          progress = true;
        } else {
          const Status s = gtm_->RequestCommit(t);
          if (s.ok()) ApplyToOracle(model);
          live_.erase(t);
          progress = true;
        }
      }
    }
    ASSERT_TRUE(live_.empty());
  }

  void Verify() {
    const Status inv = gtm_->CheckInvariants();
    ASSERT_TRUE(inv.ok()) << inv.ToString();
    for (size_t i = 0; i < kFuzzNumObjects; ++i) {
      // Middleware cache, oracle and database must all agree.
      const Value permanent = gtm_->PermanentValue(ObjName(i), 0).value();
      ASSERT_EQ(permanent, Value::Int(expected_[i])) << "object " << i;
      const Value in_db = db_->GetTable("t")
                              .value()
                              ->GetColumnByKey(
                                  Value::Int(static_cast<int64_t>(i)), 1)
                              .value();
      ASSERT_EQ(in_db, permanent) << "object " << i;
    }
  }

  Rng rng_;
  ManualClock clock_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<Gtm> gtm_;
  std::map<TxnId, FuzzTxnModel> live_;
  std::map<TxnId, std::pair<size_t, Operation>> pending_wait_;
  std::map<size_t, int64_t> expected_;
};

// Property-fuzz option variants, encoded as choices[0] of a property-fuzz
// ScheduleSeed so corpus files name the exact configuration that failed.
inline constexpr uint32_t kPropertyVariantDefault = 0;
inline constexpr uint32_t kPropertyVariantExclusive = 1;   // No sharing.
inline constexpr uint32_t kPropertyVariantStarvation = 2;  // Guard on.

inline void RunPropertyFuzz(uint64_t seed, int steps, uint32_t variant) {
  GtmOptions options;
  switch (variant) {
    case kPropertyVariantExclusive:
      options.semantic_sharing = false;
      break;
    case kPropertyVariantStarvation:
      options.starvation_waiter_threshold = 2;
      break;
    default:
      break;
  }
  GtmFuzzer fuzzer(seed, options);
  fuzzer.RunSteps(steps);
}

// Member-level fuzz of one structured object whose two members (quantity,
// price) are logically dependent — the paper's own example. Mobile
// subtractions hit member 0, admin assignments hit member 1; the
// dependence makes them conflict while subtractions share. An oracle
// replays committed transactions in commit order per member.
inline void RunMemberFuzz(uint64_t seed, int steps) {
  using namespace fuzz_internal;

  struct TxnShape {
    bool is_admin = false;    // Assign on member 1; else Sub on member 0.
    int64_t qty_delta = 0;    // Cumulative applied subtractions (negative).
    int64_t price_value = 0;  // Last applied assignment.
    bool waiting = false;
    bool sleeping = false;
    // An op queued while waiting, folded into the model at grant/awake time.
    int64_t pending_amount = 0;
    bool has_pending = false;
  };

  Rng rng(seed);
  auto db = std::make_unique<storage::Database>();
  ASSERT_TRUE(db->Open().ok());
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"qty", ValueType::kInt64, false},
                          ColumnDef{"price", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  ASSERT_TRUE(db->CreateTable("p", std::move(schema)).ok());
  ASSERT_TRUE(db->InsertRow("p", Row({Value::Int(0), Value::Int(100000),
                                      Value::Int(100)}))
                  .ok());
  ManualClock clock;
  Gtm gtm(db.get(), &clock);
  semantics::LogicalDependencies deps;
  deps.AddDependency(0, 1);  // quantity ~ price, per the paper.
  ASSERT_TRUE(gtm.RegisterObject("P", "p", Value::Int(0), {1, 2}, deps).ok());

  int64_t expected_qty = 100000;
  int64_t expected_price = 100;
  std::map<TxnId, TxnShape> live;

  auto fold_grant = [&live](TxnId id) {
    auto it = live.find(id);
    if (it == live.end()) return;
    TxnShape& shape = it->second;
    shape.waiting = false;
    if (shape.has_pending) {
      if (shape.is_admin) {
        shape.price_value = shape.pending_amount;
      } else {
        shape.qty_delta -= shape.pending_amount;
      }
      shape.has_pending = false;
    }
  };

  auto drain = [&gtm, &fold_grant] {
    for (const GtmEvent& e : gtm.TakeEvents()) fold_grant(e.txn);
  };

  for (int step = 0; step < steps; ++step) {
    clock.Advance(0.5);
    drain();
    const uint64_t action = rng.NextBounded(10);
    if (live.empty() || action == 0) {
      const TxnId id = gtm.Begin();
      TxnShape shape;
      shape.is_admin = rng.NextBool(0.3);
      live.emplace(id, shape);
      continue;
    }
    auto it = live.begin();
    std::advance(it, rng.NextBounded(live.size()));
    const TxnId id = it->first;
    TxnShape& shape = it->second;

    if (shape.sleeping) {
      if (rng.NextBool(0.7)) {
        if (gtm.Awake(id).ok()) {
          shape.sleeping = false;
          fold_grant(id);
        } else {
          live.erase(id);  // Awake-abort.
        }
      } else {
        ASSERT_TRUE(gtm.RequestAbort(id).ok());
        live.erase(id);
      }
      continue;
    }
    if (shape.waiting) {
      if (rng.NextBool(0.3) && gtm.Sleep(id).ok()) shape.sleeping = true;
      continue;
    }

    switch (rng.NextBounded(6)) {
      case 0: {  // Commit.
        const Status s = gtm.RequestCommit(id);
        if (s.ok()) {
          if (shape.is_admin) {
            if (shape.price_value != 0) expected_price = shape.price_value;
          } else {
            expected_qty += shape.qty_delta;
          }
        }
        live.erase(id);
        break;
      }
      case 1:  // Abort.
        ASSERT_TRUE(gtm.RequestAbort(id).ok());
        live.erase(id);
        break;
      case 2:  // Sleep.
        if (gtm.Sleep(id).ok()) shape.sleeping = true;
        break;
      default: {  // Invoke.
        const int64_t amount = rng.NextInt(1, 9);
        const semantics::MemberId member = shape.is_admin ? 1 : 0;
        const Operation op =
            shape.is_admin ? Operation::Assign(Value::Int(amount * 100))
                           : Operation::Sub(Value::Int(amount));
        const Status s = gtm.Invoke(id, "P", member, op);
        if (s.ok()) {
          if (shape.is_admin) {
            shape.price_value = amount * 100;
          } else {
            shape.qty_delta -= amount;
          }
        } else if (s.code() == StatusCode::kWaiting) {
          shape.waiting = true;
          shape.has_pending = true;
          shape.pending_amount = shape.is_admin ? amount * 100 : amount;
        } else if (s.code() == StatusCode::kDeadlock) {
          ASSERT_TRUE(gtm.RequestAbort(id).ok());
          live.erase(id);
        } else {
          ADD_FAILURE() << "unexpected invoke status " << s.ToString();
        }
        break;
      }
    }
    if (step % 61 == 0) {
      const Status inv = gtm.CheckInvariants();
      ASSERT_TRUE(inv.ok()) << "step " << step << ": " << inv.ToString();
    }
  }

  // Drain every live transaction.
  bool progress = true;
  while (!live.empty() && progress) {
    progress = false;
    drain();
    std::vector<TxnId> ids;
    for (const auto& [id, _] : live) ids.push_back(id);
    for (TxnId id : ids) {
      auto it = live.find(id);
      if (it == live.end()) continue;
      TxnShape& shape = it->second;
      clock.Advance(0.5);
      if (shape.sleeping) {
        if (gtm.Awake(id).ok()) {
          shape.sleeping = false;
          fold_grant(id);
        } else {
          live.erase(id);
        }
      } else if (shape.waiting) {
        drain();
        if (live.count(id) > 0 && live[id].waiting) {
          ASSERT_TRUE(gtm.RequestAbort(id).ok());
          live.erase(id);
        }
      } else {
        const Status s = gtm.RequestCommit(id);
        if (s.ok()) {
          if (shape.is_admin) {
            if (shape.price_value != 0) expected_price = shape.price_value;
          } else {
            expected_qty += shape.qty_delta;
          }
        }
        live.erase(id);
      }
      progress = true;
    }
  }
  ASSERT_TRUE(live.empty());

  // Oracle vs middleware cache vs database, per member.
  EXPECT_EQ(gtm.PermanentValue("P", 0).value(), Value::Int(expected_qty));
  EXPECT_EQ(gtm.PermanentValue("P", 1).value(), Value::Int(expected_price));
  storage::Table* table = db->GetTable("p").value();
  EXPECT_EQ(table->GetColumnByKey(Value::Int(0), 1).value(),
            Value::Int(expected_qty));
  EXPECT_EQ(table->GetColumnByKey(Value::Int(0), 2).value(),
            Value::Int(expected_price));
  EXPECT_TRUE(gtm.CheckInvariants().ok());
}

}  // namespace preserial::gtm

#endif  // PRESERIAL_TESTS_GTM_FUZZER_H_
