#include "lock/lock_manager.h"

#include <gtest/gtest.h>

namespace preserial::lock {
namespace {

TEST(LockManagerTest, GrantAndRelease) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, "r", LockMode::kExclusive), LockResult::kGranted);
  EXPECT_TRUE(lm.Holds(1, "r"));
  EXPECT_EQ(lm.Acquire(2, "r", LockMode::kShared), LockResult::kWaiting);
  EXPECT_TRUE(lm.IsWaiting(2));
  std::vector<LockGrant> grants = lm.Release(1, "r");
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 2u);
  EXPECT_EQ(grants[0].resource, "r");
  EXPECT_TRUE(lm.Holds(2, "r"));
  EXPECT_FALSE(lm.IsWaiting(2));
}

TEST(LockManagerTest, IndependentResourcesDontInteract) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, "a", LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(2, "b", LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.resource_count(), 2u);
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, "a", LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(1, "b", LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(2, "a", LockMode::kExclusive), LockResult::kWaiting);
  EXPECT_EQ(lm.Acquire(3, "b", LockMode::kExclusive), LockResult::kWaiting);
  std::vector<LockGrant> grants = lm.ReleaseAll(1);
  EXPECT_EQ(grants.size(), 2u);
  EXPECT_TRUE(lm.Holds(2, "a"));
  EXPECT_TRUE(lm.Holds(3, "b"));
  EXPECT_TRUE(lm.HeldResources(1).empty());
}

TEST(LockManagerTest, ClassicTwoResourceDeadlockRefused) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, "a", LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(2, "b", LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(1, "b", LockMode::kExclusive), LockResult::kWaiting);
  // Txn 2 asking for "a" would close the cycle: refused.
  EXPECT_EQ(lm.Acquire(2, "a", LockMode::kExclusive), LockResult::kDeadlock);
  // Txn 2 still holds "b"; its refused request left no residue.
  EXPECT_TRUE(lm.Holds(2, "b"));
  EXPECT_FALSE(lm.IsWaiting(2));
  // Unblocking: txn 2 commits, txn 1 gets "b".
  std::vector<LockGrant> grants = lm.ReleaseAll(2);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 1u);
}

TEST(LockManagerTest, UpgradeDeadlockBetweenTwoReaders) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, "r", LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(2, "r", LockMode::kShared), LockResult::kGranted);
  // Both try to upgrade: the second upgrade closes a cycle.
  EXPECT_EQ(lm.Acquire(1, "r", LockMode::kExclusive), LockResult::kWaiting);
  EXPECT_EQ(lm.Acquire(2, "r", LockMode::kExclusive), LockResult::kDeadlock);
  // Victim (txn 2) aborts; txn 1's upgrade goes through.
  std::vector<LockGrant> grants = lm.ReleaseAll(2);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 1u);
  EXPECT_EQ(grants[0].mode, LockMode::kExclusive);
}

TEST(LockManagerTest, UpdateLocksAvoidUpgradeDeadlock) {
  LockManager lm;
  // The Sec. II fix: read-with-intent uses U, so the second reader queues
  // instead of deadlocking later.
  EXPECT_EQ(lm.Acquire(1, "r", LockMode::kUpdate), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(2, "r", LockMode::kUpdate), LockResult::kWaiting);
  EXPECT_EQ(lm.Acquire(1, "r", LockMode::kExclusive), LockResult::kGranted);
  std::vector<LockGrant> grants = lm.ReleaseAll(1);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 2u);
}

TEST(LockManagerTest, CancelWaitsKeepsHeldLocks) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, "a", LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(2, "a", LockMode::kExclusive), LockResult::kWaiting);
  EXPECT_EQ(lm.Acquire(2, "b", LockMode::kShared), LockResult::kGranted);
  (void)lm.CancelWaits(2);
  EXPECT_FALSE(lm.IsWaiting(2));
  EXPECT_TRUE(lm.Holds(2, "b"));
  // Txn 1's release now grants nobody (the waiter backed out).
  EXPECT_TRUE(lm.Release(1, "a").empty());
}

TEST(LockManagerTest, CancelWaitUnblocksLaterWaiters) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, "r", LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(2, "r", LockMode::kExclusive), LockResult::kWaiting);
  EXPECT_EQ(lm.Acquire(3, "r", LockMode::kShared), LockResult::kWaiting);
  std::vector<LockGrant> grants = lm.CancelWaits(2);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 3u);
}

TEST(LockManagerTest, WaitsForGraphMirrorsQueues) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, "a", LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(2, "a", LockMode::kExclusive), LockResult::kWaiting);
  WaitsForGraph wfg = lm.BuildWaitsForGraph();
  EXPECT_EQ(wfg.edge_count(), 1u);
  EXPECT_TRUE(wfg.Successors(2).count(1) > 0);
}

TEST(LockManagerTest, HeldResourcesLists) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, "a", LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(1, "b", LockMode::kExclusive), LockResult::kGranted);
  std::vector<ResourceId> held = lm.HeldResources(1);
  EXPECT_EQ(held.size(), 2u);
}

TEST(LockManagerTest, GarbageCollectsEmptyQueues) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, "r", LockMode::kExclusive), LockResult::kGranted);
  (void)lm.ReleaseAll(1);
  EXPECT_EQ(lm.resource_count(), 0u);
}

TEST(LockManagerTest, ThreeWayDeadlockRefused) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, "a", LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(2, "b", LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(3, "c", LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(1, "b", LockMode::kExclusive), LockResult::kWaiting);
  EXPECT_EQ(lm.Acquire(2, "c", LockMode::kExclusive), LockResult::kWaiting);
  EXPECT_EQ(lm.Acquire(3, "a", LockMode::kExclusive), LockResult::kDeadlock);
}

}  // namespace
}  // namespace preserial::lock
