#include "common/status.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace preserial {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const std::vector<Case> cases = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition},
      {Status::Conflict("e"), StatusCode::kConflict},
      {Status::Waiting("f"), StatusCode::kWaiting},
      {Status::Deadlock("g"), StatusCode::kDeadlock},
      {Status::Aborted("h"), StatusCode::kAborted},
      {Status::TimedOut("i"), StatusCode::kTimedOut},
      {Status::ConstraintViolation("j"), StatusCode::kConstraintViolation},
      {Status::Corruption("k"), StatusCode::kCorruption},
      {Status::Unavailable("l"), StatusCode::kUnavailable},
      {Status::Internal("m"), StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::Conflict("incompatible ops");
  EXPECT_EQ(s.ToString(), "CONFLICT: incompatible ops");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Aborted("x"));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValueOnSuccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsStatusOnFailure) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

namespace macro_helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int x) {
  PRESERIAL_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PRESERIAL_ASSIGN_OR_RETURN(int h, Half(x));
  PRESERIAL_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

}  // namespace macro_helpers

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macro_helpers::Chain(1).ok());
  EXPECT_EQ(macro_helpers::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacroTest, AssignOrReturnBindsAndPropagates) {
  Result<int> ok = macro_helpers::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(macro_helpers::Quarter(6).ok());  // Inner Half(3) fails.
  EXPECT_FALSE(macro_helpers::Quarter(5).ok());
}

}  // namespace
}  // namespace preserial
