// Slow-txn / long-sleep watchdog: threshold trips, once-per-cause dedup,
// captured Explain snapshots, the kWatchdog trace event, and the runner's
// periodic polling hook.

#include <memory>

#include <gtest/gtest.h>

#include "gtm/gtm.h"
#include "obs/watchdog.h"
#include "sim/simulator.h"
#include "storage/database.h"
#include "workload/runner.h"

namespace preserial::obs {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

std::unique_ptr<storage::Database> MakeDb() {
  auto db = std::make_unique<storage::Database>();
  EXPECT_TRUE(db->Open().ok());
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"qty", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  EXPECT_TRUE(db->CreateTable("obj", std::move(schema)).ok());
  EXPECT_TRUE(
      db->InsertRow("obj", Row({Value::Int(0), Value::Int(100)})).ok());
  return db;
}

TEST(WatchdogTest, SlowTxnTripsOnceAndCapturesSnapshot) {
  auto db = MakeDb();
  ManualClock clock;
  gtm::Gtm g(db.get(), &clock);
  ASSERT_TRUE(g.RegisterObject("X", "obj", Value::Int(0), {1}).ok());
  g.trace()->Enable(16);

  const TxnId t = g.Begin();
  ASSERT_TRUE(g.Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());

  WatchdogOptions opts;
  opts.slow_txn_after = 5.0;
  Watchdog dog(opts);

  clock.Advance(4.0);
  EXPECT_EQ(dog.Observe(&g, clock.Now()), 0u);  // Under threshold.
  clock.Advance(2.0);
  EXPECT_EQ(dog.Observe(&g, clock.Now()), 1u);  // Tripped at age 6.
  EXPECT_EQ(dog.Observe(&g, clock.Now()), 0u);  // Once per (txn, cause).
  EXPECT_EQ(dog.trips(), 1);

  ASSERT_EQ(dog.reports().size(), 1u);
  const WatchdogReport& report = dog.reports()[0];
  EXPECT_EQ(report.txn, t);
  EXPECT_EQ(report.cause, "slow-txn");
  EXPECT_DOUBLE_EQ(report.time, 6.0);
  // The snapshot preserves the evidence: the slow txn holds X.
  ASSERT_EQ(report.snapshot.objects.size(), 1u);
  EXPECT_EQ(report.snapshot.objects[0].holders[0].txn, t);

  // The trip landed in the trace for the timeline.
  bool traced = false;
  for (const auto& e : g.trace()->Snapshot()) {
    traced = traced || (e.kind == gtm::TraceEventKind::kWatchdog &&
                        e.txn == t && e.detail == "slow-txn");
  }
  EXPECT_TRUE(traced);
}

TEST(WatchdogTest, LongSleepIsItsOwnCause) {
  auto db = MakeDb();
  ManualClock clock;
  gtm::Gtm g(db.get(), &clock);
  ASSERT_TRUE(g.RegisterObject("X", "obj", Value::Int(0), {1}).ok());

  const TxnId t = g.Begin();
  ASSERT_TRUE(g.Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock.Advance(1.0);
  ASSERT_TRUE(g.Sleep(t).ok());

  WatchdogOptions opts;
  opts.slow_txn_after = 1000.0;  // Only the sleep threshold can fire.
  opts.long_sleep_after = 10.0;
  Watchdog dog(opts);

  clock.Advance(5.0);
  EXPECT_EQ(dog.Observe(&g, clock.Now()), 0u);
  clock.Advance(6.0);
  ASSERT_EQ(dog.Observe(&g, clock.Now()), 1u);
  EXPECT_EQ(dog.reports()[0].cause, "long-sleep");
  // The snapshot carries the Algorithm 9 verdict alongside the trip.
  EXPECT_NE(dog.reports()[0].snapshot.VerdictFor(t), nullptr);
}

TEST(WatchdogTest, RetainsAtMostMaxReports) {
  auto db = MakeDb();
  ManualClock clock;
  gtm::Gtm g(db.get(), &clock);
  ASSERT_TRUE(g.RegisterObject("X", "obj", Value::Int(0), {1}).ok());

  for (int i = 0; i < 5; ++i) {
    const TxnId t = g.Begin();
    ASSERT_TRUE(g.Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  }
  WatchdogOptions opts;
  opts.slow_txn_after = 1.0;
  opts.max_reports = 2;
  Watchdog dog(opts);
  clock.Advance(2.0);
  EXPECT_EQ(dog.Observe(&g, clock.Now()), 5u);  // All five trip...
  EXPECT_EQ(dog.trips(), 5);
  EXPECT_EQ(dog.reports().size(), 2u);  // ...only the newest two retained.

  dog.Clear();
  EXPECT_EQ(dog.trips(), 0);
  EXPECT_TRUE(dog.reports().empty());
  // Cleared dedup state: the same transactions trip again.
  EXPECT_EQ(dog.Observe(&g, clock.Now()), 5u);
}

TEST(WatchdogTest, RunnerPollsTheWatchdogDuringARun) {
  auto db = MakeDb();
  sim::Simulator simulator;
  gtm::Gtm g(db.get(), simulator.clock());
  ASSERT_TRUE(g.RegisterObject("X", "obj", Value::Int(0), {1}).ok());
  g.trace()->Enable(64);

  workload::GtmRunner runner(&g, &simulator);
  // A transaction that stays active for 20 virtual seconds.
  mobile::TxnPlan plan;
  plan.object = "X";
  plan.op = Operation::Sub(Value::Int(1));
  plan.work_time = 20.0;
  runner.AddSession(plan, 0.0);
  // And a quick one the watchdog must ignore.
  mobile::TxnPlan quick;
  quick.object = "X";
  quick.op = Operation::Sub(Value::Int(1));
  quick.work_time = 1.0;
  runner.AddSession(quick, 0.0);

  WatchdogOptions opts;
  opts.slow_txn_after = 10.0;
  Watchdog dog(opts);
  runner.AttachWatchdog(&g, &dog, /*interval=*/1.0);

  const workload::RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 2);
  EXPECT_EQ(dog.trips(), 1);  // Only the 20 s transaction tripped.
  ASSERT_EQ(dog.reports().size(), 1u);
  EXPECT_EQ(dog.reports()[0].cause, "slow-txn");
  EXPECT_GE(dog.reports()[0].time, 10.0);
}

}  // namespace
}  // namespace preserial::obs
