#include "storage/value.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace preserial::storage {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_FALSE(v.is_numeric());
}

TEST(ValueTest, TypedConstructionAndAccess) {
  EXPECT_EQ(Value::Bool(true).as_bool(), true);
  EXPECT_EQ(Value::Int(-5).as_int(), -5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::String("abc").as_string(), "abc");
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::Bool(true).is_numeric());
  EXPECT_FALSE(Value::String("x").is_numeric());
}

TEST(ValueTest, ToDoubleCoercesNumerics) {
  EXPECT_DOUBLE_EQ(Value::Int(4).ToDouble().value(), 4.0);
  EXPECT_DOUBLE_EQ(Value::Double(4.5).ToDouble().value(), 4.5);
  EXPECT_FALSE(Value::String("4").ToDouble().ok());
  EXPECT_FALSE(Value::Null().ToDouble().ok());
}

TEST(ValueArithmeticTest, IntStaysInt) {
  const Value r = Value::Add(Value::Int(2), Value::Int(3)).value();
  EXPECT_EQ(r.type(), ValueType::kInt64);
  EXPECT_EQ(r.as_int(), 5);
  EXPECT_EQ(Value::Sub(Value::Int(2), Value::Int(3)).value().as_int(), -1);
  EXPECT_EQ(Value::Mul(Value::Int(4), Value::Int(3)).value().as_int(), 12);
  EXPECT_EQ(Value::Div(Value::Int(7), Value::Int(2)).value().as_int(), 3);
}

TEST(ValueArithmeticTest, MixedPromotesToDouble) {
  const Value r = Value::Add(Value::Int(2), Value::Double(0.5)).value();
  EXPECT_EQ(r.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(r.as_double(), 2.5);
  EXPECT_DOUBLE_EQ(
      Value::Div(Value::Double(7), Value::Int(2)).value().as_double(), 3.5);
}

TEST(ValueArithmeticTest, DivisionByZeroFails) {
  EXPECT_EQ(Value::Div(Value::Int(1), Value::Int(0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Value::Div(Value::Double(1), Value::Double(0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ValueArithmeticTest, IntOverflowDetected) {
  const Value max = Value::Int(std::numeric_limits<int64_t>::max());
  EXPECT_FALSE(Value::Add(max, Value::Int(1)).ok());
  const Value min = Value::Int(std::numeric_limits<int64_t>::min());
  EXPECT_FALSE(Value::Sub(min, Value::Int(1)).ok());
  EXPECT_FALSE(Value::Mul(max, Value::Int(2)).ok());
  EXPECT_FALSE(Value::Div(min, Value::Int(-1)).ok());
}

TEST(ValueArithmeticTest, NonNumericOperandsFail) {
  EXPECT_FALSE(Value::Add(Value::String("a"), Value::Int(1)).ok());
  EXPECT_FALSE(Value::Mul(Value::Bool(true), Value::Int(1)).ok());
  EXPECT_FALSE(Value::Sub(Value::Null(), Value::Int(1)).ok());
}

TEST(ValueCompareTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Compare(Value::Int(2), Value::Double(2.0)).value(), 0);
  EXPECT_LT(Value::Compare(Value::Int(1), Value::Double(1.5)).value(), 0);
  EXPECT_GT(Value::Compare(Value::Double(3.5), Value::Int(3)).value(), 0);
}

TEST(ValueCompareTest, StringsAndBools) {
  EXPECT_LT(Value::Compare(Value::String("a"), Value::String("b")).value(),
            0);
  EXPECT_EQ(Value::Compare(Value::String("x"), Value::String("x")).value(),
            0);
  EXPECT_LT(Value::Compare(Value::Bool(false), Value::Bool(true)).value(), 0);
}

TEST(ValueCompareTest, IncomparableTypesError) {
  EXPECT_FALSE(Value::Compare(Value::String("1"), Value::Int(1)).ok());
  EXPECT_FALSE(Value::Compare(Value::Bool(true), Value::Int(1)).ok());
}

TEST(ValueTotalOrderTest, RanksTypes) {
  // Null < Bool < numeric < String.
  EXPECT_LT(Value::CompareTotal(Value::Null(), Value::Bool(false)), 0);
  EXPECT_LT(Value::CompareTotal(Value::Bool(true), Value::Int(-100)), 0);
  EXPECT_LT(Value::CompareTotal(Value::Int(5), Value::String("")), 0);
}

TEST(ValueTotalOrderTest, IsAntisymmetricAndTransitiveOnSamples) {
  std::vector<Value> vs = {
      Value::Null(),        Value::Bool(false), Value::Bool(true),
      Value::Int(-2),       Value::Int(0),      Value::Int(3),
      Value::Double(-2.5),  Value::Double(0.0), Value::Double(3.0),
      Value::String(""),    Value::String("a"), Value::String("ab"),
  };
  for (const Value& a : vs) {
    EXPECT_EQ(Value::CompareTotal(a, a), 0);
    for (const Value& b : vs) {
      EXPECT_EQ(Value::CompareTotal(a, b), -Value::CompareTotal(b, a));
      for (const Value& c : vs) {
        if (Value::CompareTotal(a, b) < 0 && Value::CompareTotal(b, c) < 0) {
          EXPECT_LT(Value::CompareTotal(a, c), 0);
        }
      }
    }
  }
}

TEST(ValueTotalOrderTest, NanSortsAfterEveryNumber) {
  const Value nan = Value::Double(std::nan(""));
  EXPECT_EQ(Value::CompareTotal(nan, nan), 0);
  EXPECT_GT(Value::CompareTotal(nan, Value::Double(1e308)), 0);
  EXPECT_GT(Value::CompareTotal(nan, Value::Int(5)), 0);
  EXPECT_LT(Value::CompareTotal(Value::Int(5), nan), 0);
  // Still below strings (type rank wins).
  EXPECT_LT(Value::CompareTotal(nan, Value::String("")), 0);
}

TEST(ValueTotalOrderTest, IntBeforeDoubleOnExactTie) {
  EXPECT_LT(Value::CompareTotal(Value::Int(3), Value::Double(3.0)), 0);
  EXPECT_GT(Value::CompareTotal(Value::Double(3.0), Value::Int(3)), 0);
}

TEST(ValueEqualityTest, StructuralEquality) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Double(3.0));  // Different representation.
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::String("a"), Value::String("b"));
}

TEST(ValueHashTest, EqualValuesHashEqual) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::String("xy").Hash(), Value::String("xy").Hash());
  EXPECT_NE(Value::Int(42).Hash(), Value::Int(43).Hash());
}

class ValueRoundTripTest : public ::testing::TestWithParam<Value> {};

TEST_P(ValueRoundTripTest, EncodeDecodeRoundTrips) {
  const Value original = GetParam();
  std::string buf;
  original.EncodeTo(&buf);
  size_t offset = 0;
  Result<Value> decoded = Value::DecodeFrom(buf, &offset);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), original);
  EXPECT_EQ(offset, buf.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, ValueRoundTripTest,
    ::testing::Values(Value::Null(), Value::Bool(true), Value::Bool(false),
                      Value::Int(0), Value::Int(-1),
                      Value::Int(std::numeric_limits<int64_t>::min()),
                      Value::Int(std::numeric_limits<int64_t>::max()),
                      Value::Double(0.0), Value::Double(-1.25),
                      Value::Double(1e300), Value::String(""),
                      Value::String("hello"),
                      Value::String(std::string("\0binary\xff", 8))));

TEST(ValueDecodeTest, TruncatedBufferFailsCleanly) {
  std::string buf;
  Value::Int(123456789).EncodeTo(&buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t offset = 0;
    Result<Value> r = Value::DecodeFrom(buf.substr(0, cut), &offset);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
}

TEST(ValueDecodeTest, BadTypeTagFails) {
  std::string buf = "\x7f";
  size_t offset = 0;
  EXPECT_EQ(Value::DecodeFrom(buf, &offset).status().code(),
            StatusCode::kCorruption);
}

TEST(ValueDecodeTest, SequentialDecodeAdvancesOffset) {
  std::string buf;
  Value::Int(1).EncodeTo(&buf);
  Value::String("two").EncodeTo(&buf);
  Value::Double(3.0).EncodeTo(&buf);
  size_t offset = 0;
  EXPECT_EQ(Value::DecodeFrom(buf, &offset).value(), Value::Int(1));
  EXPECT_EQ(Value::DecodeFrom(buf, &offset).value(), Value::String("two"));
  EXPECT_EQ(Value::DecodeFrom(buf, &offset).value(), Value::Double(3.0));
  EXPECT_EQ(offset, buf.size());
}

TEST(ValueToStringTest, Rendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
}

TEST(ValueRandomizedTest, RoundTripFuzz) {
  Rng rng(101);
  for (int iter = 0; iter < 500; ++iter) {
    Value v;
    switch (rng.NextBounded(5)) {
      case 0:
        v = Value::Null();
        break;
      case 1:
        v = Value::Bool(rng.NextBool(0.5));
        break;
      case 2:
        v = Value::Int(static_cast<int64_t>(rng.Next()));
        break;
      case 3:
        v = Value::Double(rng.NextDouble() * 1e6 - 5e5);
        break;
      case 4: {
        std::string s;
        const size_t len = rng.NextBounded(32);
        for (size_t i = 0; i < len; ++i) {
          s.push_back(static_cast<char>(rng.NextBounded(256)));
        }
        v = Value::String(std::move(s));
        break;
      }
    }
    std::string buf;
    v.EncodeTo(&buf);
    size_t offset = 0;
    Result<Value> back = Value::DecodeFrom(buf, &offset);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
  }
}

}  // namespace
}  // namespace preserial::storage
