#include "lock/lock_mode.h"

#include <gtest/gtest.h>

namespace preserial::lock {
namespace {

TEST(LockModeTest, CompatibilityMatrix) {
  // held, requested -> compatible
  EXPECT_TRUE(Compatible(LockMode::kShared, LockMode::kShared));
  EXPECT_TRUE(Compatible(LockMode::kShared, LockMode::kUpdate));
  EXPECT_FALSE(Compatible(LockMode::kShared, LockMode::kExclusive));

  EXPECT_TRUE(Compatible(LockMode::kUpdate, LockMode::kShared));
  EXPECT_FALSE(Compatible(LockMode::kUpdate, LockMode::kUpdate));
  EXPECT_FALSE(Compatible(LockMode::kUpdate, LockMode::kExclusive));

  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kShared));
  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kUpdate));
  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kExclusive));
}

TEST(LockModeTest, UpgradeOrdering) {
  EXPECT_TRUE(IsUpgrade(LockMode::kShared, LockMode::kUpdate));
  EXPECT_TRUE(IsUpgrade(LockMode::kShared, LockMode::kExclusive));
  EXPECT_TRUE(IsUpgrade(LockMode::kUpdate, LockMode::kExclusive));
  EXPECT_FALSE(IsUpgrade(LockMode::kExclusive, LockMode::kShared));
  EXPECT_FALSE(IsUpgrade(LockMode::kShared, LockMode::kShared));
}

TEST(LockModeTest, Stronger) {
  EXPECT_EQ(Stronger(LockMode::kShared, LockMode::kExclusive),
            LockMode::kExclusive);
  EXPECT_EQ(Stronger(LockMode::kUpdate, LockMode::kShared),
            LockMode::kUpdate);
  EXPECT_EQ(Stronger(LockMode::kShared, LockMode::kShared),
            LockMode::kShared);
}

TEST(LockModeTest, Names) {
  EXPECT_STREQ(LockModeName(LockMode::kShared), "S");
  EXPECT_STREQ(LockModeName(LockMode::kUpdate), "U");
  EXPECT_STREQ(LockModeName(LockMode::kExclusive), "X");
}

}  // namespace
}  // namespace preserial::lock
