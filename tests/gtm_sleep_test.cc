#include <memory>

#include <gtest/gtest.h>

#include "gtm/gtm.h"
#include "storage/database.h"

namespace preserial::gtm {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class GtmSleepTest : public ::testing::Test {
 protected:
  void SetUp() override { Rebuild(GtmOptions()); }

  void Rebuild(GtmOptions options) {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("obj", std::move(schema)).ok());
    ASSERT_TRUE(
        db_->InsertRow("obj", Row({Value::Int(0), Value::Int(100)})).ok());
    clock_.Set(0.0);
    gtm_ = std::make_unique<Gtm>(db_.get(), &clock_, options);
    ASSERT_TRUE(gtm_->RegisterObject("X", "obj", Value::Int(0), {1}).ok());
  }

  Value DbQty() {
    return db_->GetTable("obj").value()->GetColumnByKey(Value::Int(0), 1)
        .value();
  }

  void ExpectInvariants() {
    const Status s = gtm_->CheckInvariants();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  std::unique_ptr<storage::Database> db_;
  ManualClock clock_;
  std::unique_ptr<Gtm> gtm_;
};

TEST_F(GtmSleepTest, SleepAndAwakeWithoutInterference) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Sleep(t).ok());
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kSleeping);
  clock_.Advance(50.0);
  ASSERT_TRUE(gtm_->Awake(t).ok());
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kActive);
  // The transaction resumes and finishes its work (the paper's headline).
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  EXPECT_EQ(DbQty(), Value::Int(98));
  EXPECT_EQ(gtm_->metrics().counters().sleeps, 1);
  EXPECT_EQ(gtm_->metrics().counters().awakes, 1);
  EXPECT_DOUBLE_EQ(gtm_->GetTxn(t)->total_sleep_time, 50.0);
  ExpectInvariants();
}

TEST_F(GtmSleepTest, SleeperDoesNotBlockIncompatibleNewcomers) {
  const TxnId sleeper = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Sleep(sleeper).ok());
  // An assignment — incompatible with the sleeping subtraction — is
  // admitted immediately: sleepers hold no admission rights (Alg 2).
  const TxnId admin = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(admin, "X", 0, Operation::Assign(Value::Int(42))).ok());
  EXPECT_EQ(gtm_->StateOf(admin).value(), TxnState::kActive);
  ExpectInvariants();
}

TEST_F(GtmSleepTest, AwakeAbortsAfterIncompatibleCommit) {
  const TxnId sleeper = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Advance(1.0);
  ASSERT_TRUE(gtm_->Sleep(sleeper).ok());
  // While asleep, an incompatible assignment commits.
  const TxnId admin = gtm_->Begin();
  clock_.Advance(1.0);
  ASSERT_TRUE(
      gtm_->Invoke(admin, "X", 0, Operation::Assign(Value::Int(42))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(admin).ok());
  clock_.Advance(1.0);
  const Status s = gtm_->Awake(sleeper);
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(gtm_->StateOf(sleeper).value(), TxnState::kAborted);
  EXPECT_EQ(gtm_->metrics().counters().awake_aborts, 1);
  EXPECT_EQ(DbQty(), Value::Int(42));  // Only the admin's write.
  ExpectInvariants();
}

TEST_F(GtmSleepTest, AwakeSurvivesCompatibleCommit) {
  const TxnId sleeper = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Sleep(sleeper).ok());
  // A compatible subtraction commits during the sleep.
  const TxnId other = gtm_->Begin();
  clock_.Advance(1.0);
  ASSERT_TRUE(
      gtm_->Invoke(other, "X", 0, Operation::Sub(Value::Int(5))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(other).ok());
  clock_.Advance(1.0);
  ASSERT_TRUE(gtm_->Awake(sleeper).ok());
  ASSERT_TRUE(gtm_->RequestCommit(sleeper).ok());
  // Reconciliation merges both deltas.
  EXPECT_EQ(DbQty(), Value::Int(94));
  ExpectInvariants();
}

TEST_F(GtmSleepTest, AwakeAbortsWhileIncompatibleHolderStillPending) {
  const TxnId sleeper = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Sleep(sleeper).ok());
  const TxnId admin = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(admin, "X", 0, Operation::Assign(Value::Int(1))).ok());
  // The admin has not even committed: the awake still aborts (Alg 9 checks
  // X_pending too).
  EXPECT_EQ(gtm_->Awake(sleeper).code(), StatusCode::kAborted);
  ExpectInvariants();
}

TEST_F(GtmSleepTest, CommitBeforeSleepProtectsSleeper) {
  // An incompatible commit BEFORE the sleep does not abort the sleeper
  // (X_tc <= A_t_sleep): it conflicted while awake, meaning it never got
  // in, or it finished before the sleeper's grant.
  const TxnId sleeper = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Advance(1.0);
  ASSERT_TRUE(gtm_->Sleep(sleeper).ok());
  clock_.Advance(1.0);
  ASSERT_TRUE(gtm_->Awake(sleeper).ok());
  ASSERT_TRUE(gtm_->RequestCommit(sleeper).ok());
  EXPECT_EQ(DbQty(), Value::Int(99));
}

TEST_F(GtmSleepTest, SleepingWaiterSkippedByAdmissionPump) {
  const TxnId holder = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(holder, "X", 0, Operation::Assign(Value::Int(1))).ok());
  const TxnId w1 = gtm_->Begin();
  const TxnId w2 = gtm_->Begin();
  EXPECT_EQ(gtm_->Invoke(w1, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  EXPECT_EQ(gtm_->Invoke(w2, "X", 0, Operation::Sub(Value::Int(2))).code(),
            StatusCode::kWaiting);
  // The first waiter disconnects while queued.
  ASSERT_TRUE(gtm_->Sleep(w1).ok());
  ASSERT_TRUE(gtm_->RequestCommit(holder).ok());
  // theta(X_waiting - X_sleeping): only w2 admitted.
  std::vector<GtmEvent> events = gtm_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].txn, w2);
  EXPECT_EQ(gtm_->StateOf(w1).value(), TxnState::kSleeping);
  ExpectInvariants();
}

TEST_F(GtmSleepTest, SleepingWaiterAdmittedDirectlyAtAwake) {
  const TxnId holder = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(holder, "X", 0, Operation::Assign(Value::Int(50))).ok());
  const TxnId w = gtm_->Begin();
  EXPECT_EQ(gtm_->Invoke(w, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  ASSERT_TRUE(gtm_->Sleep(w).ok());
  clock_.Advance(1.0);
  ASSERT_TRUE(gtm_->RequestCommit(holder).ok());
  EXPECT_TRUE(gtm_->TakeEvents().empty());  // Sleeper skipped by the pump.
  clock_.Advance(1.0);
  // Alg 9 case 1: the awake admits the queued invocation directly with a
  // fresh snapshot... but the holder committed DURING the sleep and the
  // assignment is incompatible with the queued subtraction -> abort.
  EXPECT_EQ(gtm_->Awake(w).code(), StatusCode::kAborted);
  ExpectInvariants();
}

TEST_F(GtmSleepTest, SleepingWaiterAwakeAdmissionSucceedsWhenClear) {
  const TxnId holder = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(holder, "X", 0, Operation::Assign(Value::Int(50))).ok());
  const TxnId w = gtm_->Begin();
  clock_.Advance(1.0);
  EXPECT_EQ(gtm_->Invoke(w, "X", 0, Operation::Sub(Value::Int(1))).code(),
            StatusCode::kWaiting);
  // The holder ABORTS (no commit) while w is queued-but-awake... first let
  // w sleep, then the holder aborts, then w awakes: nothing committed since
  // the sleep, nothing pending -> case 1 admits w directly.
  ASSERT_TRUE(gtm_->Sleep(w).ok());
  ASSERT_TRUE(gtm_->RequestAbort(holder).ok());
  EXPECT_TRUE(gtm_->TakeEvents().empty());
  clock_.Advance(1.0);
  ASSERT_TRUE(gtm_->Awake(w).ok());
  EXPECT_EQ(gtm_->StateOf(w).value(), TxnState::kActive);
  EXPECT_EQ(gtm_->ReadLocal(w, "X", 0).value(), Value::Int(99));
  ASSERT_TRUE(gtm_->RequestCommit(w).ok());
  EXPECT_EQ(DbQty(), Value::Int(99));
  ExpectInvariants();
}

TEST_F(GtmSleepTest, TwoSleepersDoNotKillEachOther) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(2))).ok());
  ASSERT_TRUE(gtm_->Sleep(a).ok());
  ASSERT_TRUE(gtm_->Sleep(b).ok());
  ASSERT_TRUE(gtm_->Awake(a).ok());
  ASSERT_TRUE(gtm_->Awake(b).ok());
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  ASSERT_TRUE(gtm_->RequestCommit(b).ok());
  EXPECT_EQ(DbQty(), Value::Int(97));
  ExpectInvariants();
}

TEST_F(GtmSleepTest, SleepRequiresActiveOrWaiting) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Read()).ok());
  ASSERT_TRUE(gtm_->Sleep(t).ok());
  // Sleeping twice is invalid (Alg 8 precondition).
  EXPECT_EQ(gtm_->Sleep(t).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(gtm_->Awake(t).ok());
  // Awake of a non-sleeper is invalid.
  EXPECT_EQ(gtm_->Awake(t).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  EXPECT_EQ(gtm_->Sleep(t).code(), StatusCode::kFailedPrecondition);
}

TEST_F(GtmSleepTest, SleepingTransactionCanBeAborted) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Sleep(t).ok());
  ASSERT_TRUE(gtm_->RequestAbort(t).ok());
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kAborted);
  ExpectInvariants();
}

TEST_F(GtmSleepTest, SleepDisabledAblationAbortsOnDisconnect) {
  GtmOptions options;
  options.sleep_enabled = false;
  Rebuild(options);
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->Sleep(t).code(), StatusCode::kAborted);
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kAborted);
  EXPECT_EQ(gtm_->metrics().counters().disconnect_aborts, 1);
  ExpectInvariants();
}

TEST_F(GtmSleepTest, IdleOracleParksInactiveTransactions) {
  const TxnId busy = gtm_->Begin();
  const TxnId idle = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(busy, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(idle, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Advance(8.0);
  // `busy` keeps interacting; `idle` goes quiet.
  ASSERT_TRUE(gtm_->Invoke(busy, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Advance(8.0);
  std::vector<TxnId> parked = gtm_->SleepIdleTransactions(10.0);
  ASSERT_EQ(parked.size(), 1u);
  EXPECT_EQ(parked[0], idle);
  EXPECT_EQ(gtm_->StateOf(idle).value(), TxnState::kSleeping);
  EXPECT_EQ(gtm_->StateOf(busy).value(), TxnState::kActive);
  // The parked transaction resumes like any sleeper.
  ASSERT_TRUE(gtm_->Awake(idle).ok());
  ASSERT_TRUE(gtm_->RequestCommit(idle).ok());
  ASSERT_TRUE(gtm_->RequestCommit(busy).ok());
  EXPECT_EQ(DbQty(), Value::Int(97));
  ExpectInvariants();
}

TEST_F(GtmSleepTest, IdleOracleIgnoresFreshAwakenings) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Advance(20.0);
  ASSERT_EQ(gtm_->SleepIdleTransactions(10.0).size(), 1u);
  clock_.Advance(5.0);
  ASSERT_TRUE(gtm_->Awake(t).ok());
  // The reconnection refreshed the activity clock: not re-parked.
  EXPECT_TRUE(gtm_->SleepIdleTransactions(10.0).empty());
  EXPECT_EQ(gtm_->StateOf(t).value(), TxnState::kActive);
}

TEST_F(GtmSleepTest, AwakeChecksEveryInvolvedObject) {
  ASSERT_TRUE(
      db_->InsertRow("obj", Row({Value::Int(1), Value::Int(10)})).ok());
  ASSERT_TRUE(gtm_->RegisterObject("Y", "obj", Value::Int(1), {1}).ok());
  const TxnId sleeper = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(
      gtm_->Invoke(sleeper, "Y", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Advance(1.0);
  ASSERT_TRUE(gtm_->Sleep(sleeper).ok());
  // Incompatible commit on the SECOND object only.
  const TxnId admin = gtm_->Begin();
  clock_.Advance(1.0);
  ASSERT_TRUE(
      gtm_->Invoke(admin, "Y", 0, Operation::Assign(Value::Int(7))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(admin).ok());
  EXPECT_EQ(gtm_->Awake(sleeper).code(), StatusCode::kAborted);
  ExpectInvariants();
}

}  // namespace
}  // namespace preserial::gtm
