#include "storage/wal.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace preserial::storage {
namespace {

Schema SampleSchema() {
  return Schema::Create(
             {
                 ColumnDef{"id", ValueType::kInt64, false},
                 ColumnDef{"qty", ValueType::kInt64, false},
                 ColumnDef{"tag", ValueType::kString, true},
             },
             0)
      .value();
}

WalRecord RoundTrip(const WalRecord& in) {
  std::string payload;
  in.EncodeTo(&payload);
  Result<WalRecord> out = WalRecord::DecodeFrom(payload);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.value_or(WalRecord{});
}

TEST(WalRecordTest, MarkerRecordsRoundTrip) {
  for (WalRecordType type : {WalRecordType::kBegin, WalRecordType::kCommit,
                             WalRecordType::kAbort,
                             WalRecordType::kCheckpoint}) {
    WalRecord r;
    r.type = type;
    r.txn_id = 42;
    const WalRecord back = RoundTrip(r);
    EXPECT_EQ(back.type, type);
    EXPECT_EQ(back.txn_id, 42u);
  }
}

TEST(WalRecordTest, InsertRoundTrips) {
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.txn_id = 7;
  r.table = "flights";
  r.row = Row({Value::Int(1), Value::Int(50), Value::String("x")});
  const WalRecord back = RoundTrip(r);
  EXPECT_EQ(back.table, "flights");
  EXPECT_EQ(back.row, r.row);
}

TEST(WalRecordTest, UpdateRoundTrips) {
  WalRecord r;
  r.type = WalRecordType::kUpdate;
  r.txn_id = 8;
  r.table = "flights";
  r.key = Value::Int(1);
  r.row = Row({Value::Int(1), Value::Int(49), Value::Null()});
  const WalRecord back = RoundTrip(r);
  EXPECT_EQ(back.key, Value::Int(1));
  EXPECT_EQ(back.row, r.row);
}

TEST(WalRecordTest, DeleteRoundTrips) {
  WalRecord r;
  r.type = WalRecordType::kDelete;
  r.txn_id = 9;
  r.table = "t";
  r.key = Value::String("k");
  const WalRecord back = RoundTrip(r);
  EXPECT_EQ(back.key, Value::String("k"));
}

TEST(WalRecordTest, CreateTableRoundTripsSchema) {
  WalRecord r;
  r.type = WalRecordType::kCreateTable;
  r.txn_id = kSystemTxnId;
  r.table = "flights";
  r.schema = SampleSchema();
  const WalRecord back = RoundTrip(r);
  EXPECT_EQ(back.schema.num_columns(), 3u);
  EXPECT_EQ(back.schema.primary_key(), 0u);
  EXPECT_EQ(back.schema.column(2).name, "tag");
  EXPECT_TRUE(back.schema.column(2).nullable);
  EXPECT_EQ(back.schema.column(1).type, ValueType::kInt64);
}

TEST(WalRecordTest, AddConstraintRoundTrips) {
  WalRecord r;
  r.type = WalRecordType::kAddConstraint;
  r.txn_id = kSystemTxnId;
  r.table = "flights";
  r.constraint =
      CheckConstraint("qty_nonneg", 1, CompareOp::kGe, Value::Int(0));
  const WalRecord back = RoundTrip(r);
  EXPECT_EQ(back.constraint.name(), "qty_nonneg");
  EXPECT_EQ(back.constraint.column(), 1u);
  EXPECT_EQ(back.constraint.op(), CompareOp::kGe);
  EXPECT_EQ(back.constraint.constant(), Value::Int(0));
}

TEST(WalRecordTest, TrailingBytesDetected) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  r.txn_id = 1;
  std::string payload;
  r.EncodeTo(&payload);
  payload += "junk";
  EXPECT_EQ(WalRecord::DecodeFrom(payload).status().code(),
            StatusCode::kCorruption);
}

TEST(WalWriterScanTest, WritesAndScansSequence) {
  MemoryWalStorage storage;
  WalWriter writer(&storage);
  ASSERT_TRUE(writer.LogBegin(1).ok());
  ASSERT_TRUE(writer.LogInsert(1, "t", Row({Value::Int(5)})).ok());
  ASSERT_TRUE(writer.LogCommit(1).ok());
  ASSERT_TRUE(writer.LogBegin(2).ok());
  ASSERT_TRUE(writer.LogAbort(2).ok());

  WalScanResult scan = ScanWal(storage.ReadAll().value());
  ASSERT_TRUE(scan.status.ok());
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.records[0].type, WalRecordType::kBegin);
  EXPECT_EQ(scan.records[1].type, WalRecordType::kInsert);
  EXPECT_EQ(scan.records[2].type, WalRecordType::kCommit);
  EXPECT_EQ(scan.records[4].type, WalRecordType::kAbort);
  EXPECT_EQ(scan.records[4].txn_id, 2u);
}

TEST(WalScanTest, TornTailIsDroppedSilently) {
  MemoryWalStorage storage;
  WalWriter writer(&storage);
  ASSERT_TRUE(writer.LogBegin(1).ok());
  ASSERT_TRUE(writer.LogCommit(1).ok());
  const size_t full = storage.ReadAll().value().size();
  ASSERT_TRUE(writer.LogBegin(2).ok());
  // Lose part of the last record (torn write at crash).
  storage.CorruptTail(3);

  WalScanResult scan = ScanWal(storage.ReadAll().value());
  EXPECT_TRUE(scan.status.ok());
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.bytes_consumed, full);
}

TEST(WalScanTest, CorruptedCrcIsAnError) {
  MemoryWalStorage storage;
  WalWriter writer(&storage);
  ASSERT_TRUE(writer.LogBegin(1).ok());
  ASSERT_TRUE(writer.LogCommit(1).ok());
  std::string log = storage.ReadAll().value();
  // Flip a payload byte of the FIRST record: mid-log corruption.
  log[9] = static_cast<char>(log[9] ^ 0xff);
  WalScanResult scan = ScanWal(log);
  EXPECT_EQ(scan.status.code(), StatusCode::kCorruption);
  EXPECT_TRUE(scan.records.empty());
}

TEST(WalScanTest, EmptyLogIsFine) {
  WalScanResult scan = ScanWal("");
  EXPECT_TRUE(scan.status.ok());
  EXPECT_TRUE(scan.records.empty());
}

TEST(FileWalStorageTest, AppendReadResetRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/preserial_wal_test.log";
  std::remove(path.c_str());
  {
    FileWalStorage storage(path);
    EXPECT_EQ(storage.ReadAll().value(), "");  // Missing file == empty.
    ASSERT_TRUE(storage.Append("hello ").ok());
    ASSERT_TRUE(storage.Append("world").ok());
    EXPECT_EQ(storage.ReadAll().value(), "hello world");
    ASSERT_TRUE(storage.Reset("fresh").ok());
    EXPECT_EQ(storage.ReadAll().value(), "fresh");
    ASSERT_TRUE(storage.Append("!").ok());
    EXPECT_EQ(storage.ReadAll().value(), "fresh!");
  }
  // A new handle sees the same bytes (durability across "restarts").
  FileWalStorage reopened(path);
  EXPECT_EQ(reopened.ReadAll().value(), "fresh!");
  std::remove(path.c_str());
}

TEST(FileWalStorageTest, FullWalRoundTripThroughFile) {
  const std::string path =
      ::testing::TempDir() + "/preserial_wal_records.log";
  std::remove(path.c_str());
  {
    FileWalStorage storage(path);
    WalWriter writer(&storage);
    ASSERT_TRUE(writer.LogCreateTable(kSystemTxnId, "t", SampleSchema()).ok());
    ASSERT_TRUE(writer.LogBegin(3).ok());
    ASSERT_TRUE(
        writer
            .LogInsert(3, "t",
                       Row({Value::Int(1), Value::Int(2), Value::Null()}))
            .ok());
    ASSERT_TRUE(writer.LogCommit(3).ok());
  }
  FileWalStorage reopened(path);
  WalScanResult scan = ScanWal(reopened.ReadAll().value());
  ASSERT_TRUE(scan.status.ok());
  EXPECT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records[0].type, WalRecordType::kCreateTable);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace preserial::storage
