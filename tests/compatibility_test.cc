#include "semantics/compatibility.h"

#include <gtest/gtest.h>

namespace preserial::semantics {
namespace {

constexpr OpClass kAll[] = {
    OpClass::kRead,         OpClass::kInsert,       OpClass::kDelete,
    OpClass::kUpdateAssign, OpClass::kUpdateAddSub, OpClass::kUpdateMulDiv,
};

TEST(CompatibilityTest, TableOneExactly) {
  // read <-> read, assign, add/sub, mul/div (not insert/delete).
  EXPECT_TRUE(Compatible(OpClass::kRead, OpClass::kRead));
  EXPECT_TRUE(Compatible(OpClass::kRead, OpClass::kUpdateAssign));
  EXPECT_TRUE(Compatible(OpClass::kRead, OpClass::kUpdateAddSub));
  EXPECT_TRUE(Compatible(OpClass::kRead, OpClass::kUpdateMulDiv));
  EXPECT_FALSE(Compatible(OpClass::kRead, OpClass::kInsert));
  EXPECT_FALSE(Compatible(OpClass::kRead, OpClass::kDelete));

  // insert / delete with nothing.
  for (OpClass other : kAll) {
    EXPECT_FALSE(Compatible(OpClass::kInsert, other));
    EXPECT_FALSE(Compatible(OpClass::kDelete, other));
  }

  // assignment only with read.
  EXPECT_TRUE(Compatible(OpClass::kUpdateAssign, OpClass::kRead));
  EXPECT_FALSE(Compatible(OpClass::kUpdateAssign, OpClass::kUpdateAssign));
  EXPECT_FALSE(Compatible(OpClass::kUpdateAssign, OpClass::kUpdateAddSub));
  EXPECT_FALSE(Compatible(OpClass::kUpdateAssign, OpClass::kUpdateMulDiv));

  // add/sub with itself and read.
  EXPECT_TRUE(Compatible(OpClass::kUpdateAddSub, OpClass::kUpdateAddSub));
  EXPECT_TRUE(Compatible(OpClass::kUpdateAddSub, OpClass::kRead));
  EXPECT_FALSE(Compatible(OpClass::kUpdateAddSub, OpClass::kUpdateMulDiv));

  // mul/div with itself and read.
  EXPECT_TRUE(Compatible(OpClass::kUpdateMulDiv, OpClass::kUpdateMulDiv));
  EXPECT_TRUE(Compatible(OpClass::kUpdateMulDiv, OpClass::kRead));
  EXPECT_FALSE(Compatible(OpClass::kUpdateMulDiv, OpClass::kUpdateAddSub));
}

TEST(CompatibilityTest, RelationIsSymmetric) {
  for (OpClass a : kAll) {
    for (OpClass b : kAll) {
      EXPECT_EQ(Compatible(a, b), Compatible(b, a))
          << OpClassName(a) << " vs " << OpClassName(b);
    }
  }
}

TEST(CompatibilityTest, TableRenderingMentionsEveryClass) {
  const std::string table = CompatibilityTableString();
  for (OpClass c : kAll) {
    EXPECT_NE(table.find(OpClassName(c)), std::string::npos);
  }
  EXPECT_NE(table.find("yes"), std::string::npos);
}

TEST(LogicalDependenciesTest, ReflexiveByDefault) {
  LogicalDependencies deps;
  EXPECT_TRUE(deps.Dependent(3, 3));
  EXPECT_FALSE(deps.Dependent(3, 4));
}

TEST(LogicalDependenciesTest, SymmetricAndTransitive) {
  LogicalDependencies deps;
  deps.AddDependency(0, 1);
  deps.AddDependency(1, 2);
  EXPECT_TRUE(deps.Dependent(0, 1));
  EXPECT_TRUE(deps.Dependent(1, 0));
  EXPECT_TRUE(deps.Dependent(0, 2));
  EXPECT_TRUE(deps.Dependent(2, 0));
  EXPECT_FALSE(deps.Dependent(0, 3));
}

TEST(LogicalDependenciesTest, SeparateGroupsStayIndependent) {
  LogicalDependencies deps;
  deps.AddDependency(0, 1);
  deps.AddDependency(5, 6);
  EXPECT_TRUE(deps.Dependent(0, 1));
  EXPECT_TRUE(deps.Dependent(5, 6));
  EXPECT_FALSE(deps.Dependent(1, 5));
  deps.AddDependency(1, 6);  // Merge the groups.
  EXPECT_TRUE(deps.Dependent(0, 5));
}

TEST(CompatibleOnMembersTest, IndependentMembersNeverConflict) {
  LogicalDependencies deps;
  // Even insert vs delete is fine on unrelated members.
  EXPECT_TRUE(CompatibleOnMembers(0, OpClass::kInsert, 1, OpClass::kDelete,
                                  deps));
  EXPECT_TRUE(CompatibleOnMembers(0, OpClass::kUpdateAssign, 1,
                                  OpClass::kUpdateAssign, deps));
}

TEST(CompatibleOnMembersTest, DependentMembersUseClassMatrix) {
  LogicalDependencies deps;
  deps.AddDependency(0, 1);  // e.g. quantity and price of the same product.
  EXPECT_FALSE(CompatibleOnMembers(0, OpClass::kUpdateAssign, 1,
                                   OpClass::kUpdateAddSub, deps));
  EXPECT_TRUE(CompatibleOnMembers(0, OpClass::kUpdateAddSub, 1,
                                  OpClass::kUpdateAddSub, deps));
  EXPECT_FALSE(CompatibleOnMembers(2, OpClass::kUpdateAssign, 2,
                                   OpClass::kUpdateAssign, deps));
}

}  // namespace
}  // namespace preserial::semantics
