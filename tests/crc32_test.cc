#include "common/crc32.h"

#include <string>

#include <gtest/gtest.h>

namespace preserial {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32 (IEEE) check values.
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t base = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    EXPECT_NE(Crc32(mutated), base) << "flip at byte " << i;
  }
}

TEST(Crc32Test, SensitiveToLength) {
  EXPECT_NE(Crc32("aa"), Crc32("a"));
  EXPECT_NE(Crc32(std::string("a\0b", 3)), Crc32("ab"));
}

}  // namespace
}  // namespace preserial
