// Chaos tests of replicated-GTM failover. First: a seeded storm of lossy
// fault-tolerant sessions with the primary killed at a randomized point of
// every run (mid-work, mid-retry, between Sleep and Awake) — under sync
// shipping the promotion must preserve every Sleeping transaction, never
// half-apply a commit, and conserve reconciled values exactly. Second: a
// replicated cluster whose shard primaries die between 2PC prepare and
// decision while the coordinator also keeps crashing — recovery drives
// every decision onto promoted primaries and no global transaction may
// end half-committed.

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "check/checker.h"
#include "check/history.h"
#include "cluster/cluster.h"
#include "cluster/coordinator.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"
#include "gtm/txn_state.h"
#include "storage/wal.h"
#include "workload/gtm_experiment.h"

namespace preserial {
namespace {

using gtm::TxnState;
using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

TEST(ReplicaChaosTest, SeededFailoverStormNeverLosesSleepers) {
  constexpr int kRuns = 30;
  constexpr size_t kSessionsPerRun = 20;  // 600 sessions overall.

  Rng meta_rng(0xc4a05u);
  int64_t total_sleeping_at_kill = 0;
  int64_t total_committed = 0;
  int64_t total_degrades = 0;
  for (int run = 0; run < kRuns; ++run) {
    workload::FailoverExperimentSpec spec;
    spec.base.num_txns = kSessionsPerRun;
    spec.base.num_objects = 3;
    spec.base.alpha = 0.8;
    spec.base.beta = 0.0;
    spec.base.interarrival = 0.5;
    spec.base.work_time = 2.0;
    spec.base.seed = meta_rng.Next();
    // Lossy enough that sessions retry, degrade to Sleep and awake later —
    // so the kill lands mid-retry and mid-sleep across the seeds.
    spec.channel.loss = 0.3;
    spec.channel.duplicate = 0.1;
    spec.channel.reorder = 0.1;
    spec.channel.delay_mean = 0.05;
    spec.channel.request_timeout = 1.0;
    spec.channel.max_attempts = 3;
    spec.channel.reconnect_delay = 10.0;
    spec.num_backups = 2;
    spec.ship.mode = replica::ShipMode::kSync;
    spec.ship.loss = 0.1;  // The ship link is flaky too; sync rides it out.
    spec.fail_at = 1.0 + meta_rng.NextDouble() * 30.0;
    spec.detect_delay = 0.5 + meta_rng.NextDouble() * 2.0;
    spec.base.history_capacity = 1 << 16;  // Record for the oracle.

    const workload::FailoverExperimentResult r =
        workload::RunFailoverExperiment(spec);
    SCOPED_TRACE(StrFormat("run=%d seed=%llu fail_at=%.2f", run,
                           static_cast<unsigned long long>(spec.base.seed),
                           spec.fail_at));
    ASSERT_TRUE(r.failover_ran);
    EXPECT_EQ(r.final_epoch, 2u);
    // Sync shipping: the promoted backup had applied the whole log, so the
    // fence truncated nothing and no Sleeping transaction vanished.
    EXPECT_EQ(r.replication_lag_at_kill, 0);
    EXPECT_EQ(r.truncated_records, 0u);
    EXPECT_EQ(r.sleeping_lost, 0);
    EXPECT_EQ(r.sleeping_preserved, r.sleeping_at_kill);
    // Conservation of reconciled values: every subtract the promoted
    // primary reports committed drained exactly one unit — no
    // half-commits, no double-applied redeliveries.
    EXPECT_EQ(r.quantity_consumed, r.server_committed_subtracts);
    // A client only believes a commit the server made durable.
    EXPECT_LE(r.committed_subtracts, r.server_committed_subtracts);
    // All sessions terminated (nothing silently lost by the promotion).
    EXPECT_EQ(r.run.committed + r.run.aborted,
              static_cast<int64_t>(kSessionsPerRun));
    total_sleeping_at_kill += r.sleeping_at_kill;
    total_committed += r.run.committed;
    total_degrades += r.run.degraded_to_sleep;

    // The promoted primary's surviving timeline must be semantically
    // serializable — failover preserved Definition 1, reconciliation and
    // the Algorithm 9 discipline, not just counters.
    ASSERT_TRUE(r.history.complete);
    const check::CheckReport report = check::CheckHistory(r.history);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
  // The storm really exercised the interesting states.
  EXPECT_GT(total_sleeping_at_kill, 0);
  EXPECT_GT(total_degrades, 0);
  EXPECT_GT(total_committed, 0);
}

TEST(ReplicaChaosTest, ShardPrimaryDeathDuringTwoPcNeverHalfCommits) {
  constexpr size_t kShards = 2;
  constexpr size_t kObjects = 16;
  constexpr size_t kReplicasPerShard = 2;
  constexpr int kRounds = 120;
  constexpr int64_t kInitialQty = 100000;
  const char kTable[] = "resources";

  ManualClock clock;
  cluster::GtmClusterOptions copts;
  copts.replicas_per_shard = kReplicasPerShard;  // Sync shipping (default).
  cluster::GtmCluster cluster(kShards, &clock, copts);
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"qty", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  ASSERT_TRUE(cluster.CreateTableAllShards(kTable, std::move(schema)).ok());
  auto object_id = [&](size_t i) { return StrFormat("%s/%zu", kTable, i); };
  for (size_t i = 0; i < kObjects; ++i) {
    const gtm::ObjectId oid = object_id(i);
    const Value key = Value::Int(static_cast<int64_t>(i));
    ASSERT_TRUE(cluster
                    .InsertRow(cluster.ShardOf(oid), kTable,
                               Row({key, Value::Int(kInitialQty)}))
                    .ok());
    ASSERT_TRUE(cluster.RegisterObject(oid, kTable, key, {1}).ok());
  }

  storage::MemoryWalStorage wal;
  auto coordinator =
      std::make_unique<cluster::ClusterCoordinator>(&cluster, &wal);

  // One recorder per shard's replica group: whichever node ends up primary
  // after the kills holds that shard's authoritative timeline.
  std::vector<check::ReplicaHistoryRecorder> recorders(kShards);
  for (size_t s = 0; s < kShards; ++s) recorders[s].Attach(cluster.group(s));

  Rng rng(0x2bc5eed1u);
  std::vector<int64_t> booked(kShards, 0);
  std::vector<size_t> kills(kShards, 0);
  TxnId next_global = 1;
  int failovers = 0, crashes = 0;

  auto book = [&](TxnId* branch_out) {
    const gtm::ObjectId oid = object_id(rng.NextBounded(kObjects));
    const cluster::ShardId shard = cluster.ShardOf(oid);
    const TxnId branch = cluster.endpoint(shard)->Begin();
    Status s = cluster.endpoint(shard)->Invoke(branch, oid, 0,
                                               Operation::Sub(Value::Int(1)));
    PRESERIAL_CHECK(s.ok()) << s.ToString();
    *branch_out = branch;
    return shard;
  };

  for (int round = 0; round < kRounds; ++round) {
    clock.Advance(1.0);
    // Background single-shard traffic.
    if (rng.NextBool(0.6)) {
      TxnId b;
      const cluster::ShardId s = book(&b);
      PRESERIAL_CHECK(cluster.endpoint(s)->RequestCommit(b).ok());
      ++booked[s];
    }

    TxnId b1, b2;
    const cluster::ShardId s1 = book(&b1);
    cluster::ShardId s2;
    TxnId tmp;
    do {
      s2 = book(&tmp);
      if (s2 == s1) {
        PRESERIAL_CHECK(cluster.AbortBranch(s2, tmp).ok());
      }
    } while (s2 == s1);
    b2 = tmp;

    const bool crash = round % 3 == 0;
    if (crash) {
      coordinator->set_crash_point(round % 6 == 0
                                       ? cluster::CrashPoint::kAfterPrepare
                                       : cluster::CrashPoint::kAfterDecision);
    }
    const Status s =
        coordinator->CommitGlobal(next_global++, {{s1, b1}, {s2, b2}});
    if (s.ok()) {
      ++booked[s1];
      ++booked[s2];
      continue;
    }
    ASSERT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
    ++crashes;

    // The coordinator died mid-protocol — and so does a participating
    // shard's primary, while its branch is still prepared/in-doubt.
    if (kills[s1] < kReplicasPerShard) {
      cluster.KillShardPrimary(s1);
      Result<replica::PromotionReport> rep = cluster.PromoteShard(s1);
      ASSERT_TRUE(rep.ok()) << rep.status().ToString();
      ++kills[s1];
      ++failovers;
    }

    // A successor coordinator recovers; its decisions land on the promoted
    // primary, which replayed the prepare and still holds the branch.
    coordinator = std::make_unique<cluster::ClusterCoordinator>(&cluster, &wal);
    Result<cluster::ClusterCoordinator::RecoveryOutcome> out =
        coordinator->Recover();
    ASSERT_TRUE(out.ok()) << out.status().ToString();

    const TxnState st1 = cluster.endpoint(s1)->StateOf(b1).value();
    const TxnState st2 = cluster.endpoint(s2)->StateOf(b2).value();
    ASSERT_TRUE(st1 == TxnState::kCommitted || st1 == TxnState::kAborted);
    ASSERT_EQ(st1, st2) << "half-committed global transaction after failover";
    if (st1 == TxnState::kCommitted) {
      ++booked[s1];
      ++booked[s2];
    }
  }

  EXPECT_GT(crashes, 0);
  EXPECT_GT(failovers, 0);

  // Conservation on the promoted primaries' databases.
  for (cluster::ShardId s = 0; s < kShards; ++s) {
    int64_t consumed = 0;
    for (size_t i = 0; i < kObjects; ++i) {
      const gtm::ObjectId oid = object_id(i);
      if (cluster.ShardOf(oid) != s) continue;
      Result<Value> qty =
          cluster.db(s)->GetTable(kTable).value()->GetColumnByKey(
              Value::Int(static_cast<int64_t>(i)), 1);
      ASSERT_TRUE(qty.ok());
      consumed += kInitialQty - qty.value().as_int();
    }
    EXPECT_EQ(consumed, booked[s]) << "shard " << s;
    // Every surviving replica of the shard agrees with its primary.
    replica::ReplicatedGtm* group = cluster.group(s);
    for (size_t n = 0; n < group->num_nodes(); ++n) {
      if (!group->node(n)->alive()) continue;
      EXPECT_EQ(group->node(n)->last_applied(), group->log().last_lsn())
          << "shard " << s << " node " << n;
      EXPECT_TRUE(group->node(n)->gtm()->CheckInvariants().ok());
    }
  }

  // Oracle pass per shard over the post-failover primary's timeline:
  // prepared branches driven to decision on a promoted node must read as
  // ordinary serializable commits/aborts.
  for (size_t s = 0; s < kShards; ++s) {
    const check::History history = recorders[s].Finish();
    ASSERT_TRUE(history.complete) << "shard " << s;
    const check::CheckReport report = check::CheckHistory(history);
    EXPECT_TRUE(report.ok()) << "shard " << s << ": " << report.ToString();
    EXPECT_GT(report.committed_txns, 0u) << "shard " << s;
  }
}

}  // namespace
}  // namespace preserial
