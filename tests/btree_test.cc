#include "storage/btree.h"

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace preserial::storage {
namespace {

Value K(int64_t i) { return Value::Int(i); }

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 0u);
  EXPECT_FALSE(tree.Lookup(K(1)).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, InsertAndLookup) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(K(5), 50).ok());
  ASSERT_TRUE(tree.Insert(K(3), 30).ok());
  ASSERT_TRUE(tree.Insert(K(8), 80).ok());
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Lookup(K(5)).value(), 50u);
  EXPECT_EQ(tree.Lookup(K(3)).value(), 30u);
  EXPECT_EQ(tree.Lookup(K(8)).value(), 80u);
  EXPECT_FALSE(tree.Lookup(K(4)).ok());
}

TEST(BTreeTest, DuplicateInsertRejected) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(K(1), 10).ok());
  EXPECT_EQ(tree.Insert(K(1), 11).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.Lookup(K(1)).value(), 10u);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, UpdateRepointsExistingKey) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(K(1), 10).ok());
  ASSERT_TRUE(tree.Update(K(1), 99).ok());
  EXPECT_EQ(tree.Lookup(K(1)).value(), 99u);
  EXPECT_EQ(tree.Update(K(2), 1).code(), StatusCode::kNotFound);
}

TEST(BTreeTest, RemoveBasics) {
  BTree tree;
  for (int64_t i = 0; i < 10; ++i) ASSERT_TRUE(tree.Insert(K(i), i).ok());
  ASSERT_TRUE(tree.Remove(K(4)).ok());
  EXPECT_FALSE(tree.Contains(K(4)));
  EXPECT_EQ(tree.size(), 9u);
  EXPECT_EQ(tree.Remove(K(4)).code(), StatusCode::kNotFound);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, SplitsGrowTheTree) {
  BTree tree(/*max_keys=*/3);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(K(i), static_cast<RowId>(i)).ok());
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << i;
  }
  EXPECT_GE(tree.Height(), 2u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(tree.Lookup(K(i)).value(), static_cast<RowId>(i));
  }
}

TEST(BTreeTest, ReverseInsertionOrder) {
  BTree tree(/*max_keys=*/4);
  for (int64_t i = 99; i >= 0; --i) {
    ASSERT_TRUE(tree.Insert(K(i), static_cast<RowId>(i)).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  std::vector<int64_t> keys;
  tree.ScanAll([&](const Value& k, RowId) {
    keys.push_back(k.as_int());
    return true;
  });
  ASSERT_EQ(keys.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(keys[i], i);
}

TEST(BTreeTest, DrainViaRemoveCollapsesHeight) {
  BTree tree(/*max_keys=*/3);
  for (int64_t i = 0; i < 60; ++i) ASSERT_TRUE(tree.Insert(K(i), i).ok());
  for (int64_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(tree.Remove(K(i)).ok()) << i;
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after remove " << i;
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0u);
}

TEST(BTreeTest, ScanRangeInclusive) {
  BTree tree;
  for (int64_t i = 0; i < 20; i += 2) ASSERT_TRUE(tree.Insert(K(i), i).ok());
  std::vector<int64_t> seen;
  tree.Scan(K(4), K(10), [&](const Value& k, RowId) {
    seen.push_back(k.as_int());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{4, 6, 8, 10}));
}

TEST(BTreeTest, ScanBoundsBetweenKeys) {
  BTree tree;
  for (int64_t i = 0; i < 20; i += 2) ASSERT_TRUE(tree.Insert(K(i), i).ok());
  std::vector<int64_t> seen;
  tree.Scan(K(3), K(9), [&](const Value& k, RowId) {
    seen.push_back(k.as_int());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{4, 6, 8}));
}

TEST(BTreeTest, ScanUnboundedBelowOrAbove) {
  BTree tree;
  for (int64_t i = 1; i <= 5; ++i) ASSERT_TRUE(tree.Insert(K(i), i).ok());
  std::vector<int64_t> low;
  tree.Scan(std::nullopt, K(3), [&](const Value& k, RowId) {
    low.push_back(k.as_int());
    return true;
  });
  EXPECT_EQ(low, (std::vector<int64_t>{1, 2, 3}));
  std::vector<int64_t> high;
  tree.Scan(K(3), std::nullopt, [&](const Value& k, RowId) {
    high.push_back(k.as_int());
    return true;
  });
  EXPECT_EQ(high, (std::vector<int64_t>{3, 4, 5}));
}

TEST(BTreeTest, ScanEarlyStop) {
  BTree tree;
  for (int64_t i = 0; i < 50; ++i) ASSERT_TRUE(tree.Insert(K(i), i).ok());
  int visited = 0;
  tree.ScanAll([&](const Value&, RowId) { return ++visited < 5; });
  EXPECT_EQ(visited, 5);
}

TEST(BTreeTest, NanDoubleKeysKeepInvariants) {
  BTree tree(/*max_keys=*/3);
  ASSERT_TRUE(tree.Insert(Value::Double(std::nan("")), 1).ok());
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        tree.Insert(Value::Double(static_cast<double>(i)), i + 10).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // NaN is a distinct, findable key sorted after every number.
  EXPECT_EQ(tree.Lookup(Value::Double(std::nan(""))).value(), 1u);
  std::vector<RowId> order;
  tree.ScanAll([&](const Value&, RowId rid) {
    order.push_back(rid);
    return true;
  });
  ASSERT_EQ(order.size(), 31u);
  EXPECT_EQ(order.back(), 1u);  // NaN last.
  ASSERT_TRUE(tree.Remove(Value::Double(std::nan(""))).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, HeterogeneousKeysOrderByTotalOrder) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(Value::String("z"), 1).ok());
  ASSERT_TRUE(tree.Insert(Value::Int(10), 2).ok());
  ASSERT_TRUE(tree.Insert(Value::Bool(true), 3).ok());
  ASSERT_TRUE(tree.Insert(Value::Double(2.5), 4).ok());
  std::vector<RowId> rids;
  tree.ScanAll([&](const Value&, RowId rid) {
    rids.push_back(rid);
    return true;
  });
  // Bool < 2.5 < 10 < "z".
  EXPECT_EQ(rids, (std::vector<RowId>{3, 4, 2, 1}));
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

// Property test: a long random op sequence must track std::map exactly and
// keep structural invariants at small fanouts (deep trees).
class BTreeRandomizedTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BTreeRandomizedTest, MatchesReferenceMap) {
  const size_t max_keys = GetParam();
  BTree tree(max_keys);
  std::map<int64_t, RowId> reference;
  Rng rng(1000 + max_keys);
  constexpr int kOps = 4000;
  constexpr int64_t kKeySpace = 300;

  for (int op = 0; op < kOps; ++op) {
    const int64_t key = rng.NextInt(0, kKeySpace - 1);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {  // Insert.
        const RowId rid = rng.Next() % 100000;
        const bool expect_ok = reference.count(key) == 0;
        const Status s = tree.Insert(K(key), rid);
        EXPECT_EQ(s.ok(), expect_ok);
        if (expect_ok) reference[key] = rid;
        break;
      }
      case 2: {  // Remove.
        const bool expect_ok = reference.erase(key) > 0;
        EXPECT_EQ(tree.Remove(K(key)).ok(), expect_ok);
        break;
      }
      case 3: {  // Lookup.
        auto it = reference.find(key);
        Result<RowId> r = tree.Lookup(K(key));
        if (it == reference.end()) {
          EXPECT_FALSE(r.ok());
        } else {
          ASSERT_TRUE(r.ok());
          EXPECT_EQ(r.value(), it->second);
        }
        break;
      }
    }
    if (op % 97 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "op " << op;
      ASSERT_EQ(tree.size(), reference.size());
    }
  }
  // Full final comparison via ordered scan.
  std::vector<std::pair<int64_t, RowId>> scanned;
  tree.ScanAll([&](const Value& k, RowId rid) {
    scanned.emplace_back(k.as_int(), rid);
    return true;
  });
  ASSERT_EQ(scanned.size(), reference.size());
  size_t i = 0;
  for (const auto& [k, rid] : reference) {
    EXPECT_EQ(scanned[i].first, k);
    EXPECT_EQ(scanned[i].second, rid);
    ++i;
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeRandomizedTest,
                         ::testing::Values(3, 4, 5, 8, 16, 64));

// The same property sweep with string keys (different comparison path,
// variable-length payloads).
class BTreeStringKeyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BTreeStringKeyTest, MatchesReferenceMap) {
  BTree tree(GetParam());
  std::map<std::string, RowId> reference;
  Rng rng(4000 + GetParam());
  for (int op = 0; op < 2500; ++op) {
    // Short random keys with heavy collisions.
    std::string key;
    const size_t len = 1 + rng.NextBounded(4);
    for (size_t i = 0; i < len; ++i) {
      key.push_back(static_cast<char>('a' + rng.NextBounded(6)));
    }
    switch (rng.NextBounded(3)) {
      case 0: {
        const RowId rid = rng.Next() % 100000;
        const bool expect_ok = reference.count(key) == 0;
        EXPECT_EQ(tree.Insert(Value::String(key), rid).ok(), expect_ok);
        if (expect_ok) reference[key] = rid;
        break;
      }
      case 1:
        EXPECT_EQ(tree.Remove(Value::String(key)).ok(),
                  reference.erase(key) > 0);
        break;
      case 2: {
        auto it = reference.find(key);
        Result<RowId> r = tree.Lookup(Value::String(key));
        EXPECT_EQ(r.ok(), it != reference.end());
        if (r.ok() && it != reference.end()) EXPECT_EQ(r.value(), it->second);
        break;
      }
    }
    if (op % 199 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "op " << op;
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  // Scan order must match lexicographic map order.
  std::vector<std::string> scanned;
  tree.ScanAll([&](const Value& k, RowId) {
    scanned.push_back(k.as_string());
    return true;
  });
  size_t i = 0;
  for (const auto& [k, _] : reference) {
    ASSERT_LT(i, scanned.size());
    EXPECT_EQ(scanned[i], k);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeStringKeyTest,
                         ::testing::Values(3, 8, 64));

}  // namespace
}  // namespace preserial::storage
