// The middleware trace log: ring-buffer mechanics and the event stream the
// Gtm emits for each of the paper's transitions.

#include <memory>

#include <gtest/gtest.h>

#include "gtm/gtm.h"
#include "storage/database.h"

namespace preserial::gtm {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

TEST(TraceLogTest, DisabledByDefaultButStillCounts) {
  TraceLog log;
  EXPECT_FALSE(log.enabled());
  log.Record(1.0, TraceEventKind::kBegin, 1);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 1);
}

TEST(TraceLogTest, RecordsInOrder) {
  TraceLog log;
  log.Enable(10);
  for (TxnId t = 1; t <= 3; ++t) {
    log.Record(static_cast<double>(t), TraceEventKind::kBegin, t);
  }
  std::vector<TraceEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].txn, 1u);
  EXPECT_EQ(events[2].txn, 3u);
}

TEST(TraceLogTest, RingDropsOldestWhenFull) {
  TraceLog log;
  log.Enable(3);
  for (TxnId t = 1; t <= 5; ++t) {
    log.Record(static_cast<double>(t), TraceEventKind::kBegin, t);
  }
  std::vector<TraceEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].txn, 3u);
  EXPECT_EQ(events[2].txn, 5u);
  EXPECT_EQ(log.total_recorded(), 5);
}

TEST(TraceLogTest, ForTxnFilters) {
  TraceLog log;
  log.Enable(10);
  log.Record(1, TraceEventKind::kBegin, 7);
  log.Record(2, TraceEventKind::kBegin, 8);
  log.Record(3, TraceEventKind::kCommit, 7);
  std::vector<TraceEvent> events = log.ForTxn(7);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, TraceEventKind::kCommit);
}

TEST(TraceLogTest, ClearKeepsCapacity) {
  TraceLog log;
  log.Enable(4);
  log.Record(1, TraceEventKind::kBegin, 1);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  log.Record(2, TraceEventKind::kBegin, 2);
  EXPECT_EQ(log.Snapshot().size(), 1u);
}

class GtmTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<storage::Database>();
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("obj", std::move(schema)).ok());
    ASSERT_TRUE(
        db_->InsertRow("obj", Row({Value::Int(0), Value::Int(100)})).ok());
    gtm_ = std::make_unique<Gtm>(db_.get(), &clock_);
    gtm_->trace()->Enable(256);
    ASSERT_TRUE(gtm_->RegisterObject("X", "obj", Value::Int(0), {1}).ok());
  }

  std::vector<TraceEventKind> KindsFor(TxnId t) {
    std::vector<TraceEventKind> kinds;
    for (const TraceEvent& e : gtm_->trace()->ForTxn(t)) {
      kinds.push_back(e.kind);
    }
    return kinds;
  }

  std::unique_ptr<storage::Database> db_;
  ManualClock clock_;
  std::unique_ptr<Gtm> gtm_;
};

TEST_F(GtmTraceTest, HappyPathLifecycle) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(t).ok());
  // The structured apply (the checker's replay feed) precedes its grant.
  EXPECT_EQ(KindsFor(t),
            (std::vector<TraceEventKind>{TraceEventKind::kBegin,
                                         TraceEventKind::kApply,
                                         TraceEventKind::kGrant,
                                         TraceEventKind::kCommit}));
}

TEST_F(GtmTraceTest, WaitGrantAndSharedAnnotations) {
  const TxnId a = gtm_->Begin();
  const TxnId b = gtm_->Begin();
  const TxnId c = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(a, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Invoke(b, "X", 0, Operation::Sub(Value::Int(1))).ok());
  EXPECT_EQ(gtm_->Invoke(c, "X", 0, Operation::Assign(Value::Int(5))).code(),
            StatusCode::kWaiting);
  ASSERT_TRUE(gtm_->RequestCommit(a).ok());
  ASSERT_TRUE(gtm_->RequestCommit(b).ok());
  // b's grant was shared; c waited, then was granted from the queue.
  std::vector<TraceEvent> b_events = gtm_->trace()->ForTxn(b);
  ASSERT_GE(b_events.size(), 3u);
  ASSERT_EQ(b_events[2].kind, TraceEventKind::kGrant);
  EXPECT_NE(b_events[2].detail.find("[shared]"), std::string::npos);
  EXPECT_EQ(KindsFor(c),
            (std::vector<TraceEventKind>{TraceEventKind::kBegin,
                                         TraceEventKind::kWait,
                                         TraceEventKind::kApply,
                                         TraceEventKind::kGrant}));
  std::vector<TraceEvent> c_events = gtm_->trace()->ForTxn(c);
  EXPECT_NE(c_events[3].detail.find("[from queue]"), std::string::npos);
}

TEST_F(GtmTraceTest, SleepAwakeAbortKinds) {
  const TxnId sleeper = gtm_->Begin();
  ASSERT_TRUE(
      gtm_->Invoke(sleeper, "X", 0, Operation::Sub(Value::Int(1))).ok());
  clock_.Advance(1.0);
  ASSERT_TRUE(gtm_->Sleep(sleeper).ok());
  const TxnId admin = gtm_->Begin();
  clock_.Advance(1.0);
  ASSERT_TRUE(
      gtm_->Invoke(admin, "X", 0, Operation::Assign(Value::Int(9))).ok());
  ASSERT_TRUE(gtm_->RequestCommit(admin).ok());
  clock_.Advance(1.0);
  EXPECT_EQ(gtm_->Awake(sleeper).code(), StatusCode::kAborted);
  EXPECT_EQ(KindsFor(sleeper),
            (std::vector<TraceEventKind>{TraceEventKind::kBegin,
                                         TraceEventKind::kApply,
                                         TraceEventKind::kGrant,
                                         TraceEventKind::kSleep,
                                         TraceEventKind::kAwakeAbort}));
}

TEST_F(GtmTraceTest, SuccessfulAwakeTraced) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  ASSERT_TRUE(gtm_->Sleep(t).ok());
  ASSERT_TRUE(gtm_->Awake(t).ok());
  EXPECT_EQ(KindsFor(t),
            (std::vector<TraceEventKind>{TraceEventKind::kBegin,
                                         TraceEventKind::kApply,
                                         TraceEventKind::kGrant,
                                         TraceEventKind::kSleep,
                                         TraceEventKind::kAwake}));
}

TEST_F(GtmTraceTest, DumpRendersEvents) {
  const TxnId t = gtm_->Begin();
  ASSERT_TRUE(gtm_->Invoke(t, "X", 0, Operation::Sub(Value::Int(1))).ok());
  const std::string dump = gtm_->trace()->Dump();
  EXPECT_NE(dump.find("BEGIN"), std::string::npos);
  EXPECT_NE(dump.find("GRANT"), std::string::npos);
  EXPECT_NE(dump.find("sub(1)"), std::string::npos);
  EXPECT_NE(dump.find("X"), std::string::npos);
}

}  // namespace
}  // namespace preserial::gtm
