#include "txn/txn_manager.h"

#include <memory>

#include <gtest/gtest.h>

#include "storage/database.h"

namespace preserial::txn {
namespace {

using storage::CheckConstraint;
using storage::ColumnDef;
using storage::CompareOp;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class TwoPlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto wal = std::make_unique<storage::MemoryWalStorage>();
    wal_ = wal.get();
    db_ = std::make_unique<storage::Database>(std::move(wal));
    ASSERT_TRUE(db_->Open().ok());
    Schema schema = Schema::Create(
                        {
                            ColumnDef{"id", ValueType::kInt64, false},
                            ColumnDef{"qty", ValueType::kInt64, false},
                        },
                        0)
                        .value();
    ASSERT_TRUE(db_->CreateTable("t", std::move(schema)).ok());
    for (int64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          db_->InsertRow("t", Row({Value::Int(i), Value::Int(100)})).ok());
    }
    engine_ = std::make_unique<TwoPhaseLockingEngine>(db_.get());
  }

  Value Qty(int64_t id) {
    return db_->GetTable("t").value()->GetColumnByKey(Value::Int(id), 1)
        .value();
  }

  std::unique_ptr<storage::Database> db_;
  storage::MemoryWalStorage* wal_ = nullptr;  // Owned by db_.
  std::unique_ptr<TwoPhaseLockingEngine> engine_;
};

TEST_F(TwoPlEngineTest, ReadWriteCommit) {
  const TxnId t = engine_->Begin();
  EXPECT_EQ(engine_->PhaseOf(t), TxnPhase::kActive);
  Result<Value> v = engine_->Read(t, "t", Value::Int(0), 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), Value::Int(100));
  ASSERT_TRUE(engine_->Write(t, "t", Value::Int(0), 1, Value::Int(99)).ok());
  ASSERT_TRUE(engine_->Commit(t).ok());
  EXPECT_EQ(engine_->PhaseOf(t), TxnPhase::kCommitted);
  EXPECT_EQ(Qty(0), Value::Int(99));
}

TEST_F(TwoPlEngineTest, AbortUndoesEverything) {
  const TxnId t = engine_->Begin();
  ASSERT_TRUE(engine_->Write(t, "t", Value::Int(0), 1, Value::Int(1)).ok());
  ASSERT_TRUE(engine_->Write(t, "t", Value::Int(1), 1, Value::Int(2)).ok());
  ASSERT_TRUE(engine_->Insert(t, "t", Row({Value::Int(9), Value::Int(9)}))
                  .ok());
  ASSERT_TRUE(engine_->Delete(t, "t", Value::Int(2)).ok());
  ASSERT_TRUE(engine_->Abort(t).ok());
  EXPECT_EQ(engine_->PhaseOf(t), TxnPhase::kAborted);
  EXPECT_EQ(Qty(0), Value::Int(100));
  EXPECT_EQ(Qty(1), Value::Int(100));
  EXPECT_FALSE(db_->GetTable("t").value()->GetByKey(Value::Int(9)).ok());
  EXPECT_TRUE(db_->GetTable("t").value()->GetByKey(Value::Int(2)).ok());
  EXPECT_TRUE(db_->GetTable("t").value()->CheckInvariants().ok());
}

TEST_F(TwoPlEngineTest, MultipleWritesToSameRowUndoInOrder) {
  const TxnId t = engine_->Begin();
  ASSERT_TRUE(engine_->Write(t, "t", Value::Int(0), 1, Value::Int(1)).ok());
  ASSERT_TRUE(engine_->Write(t, "t", Value::Int(0), 1, Value::Int(2)).ok());
  ASSERT_TRUE(engine_->Write(t, "t", Value::Int(0), 1, Value::Int(3)).ok());
  ASSERT_TRUE(engine_->Abort(t).ok());
  EXPECT_EQ(Qty(0), Value::Int(100));
}

TEST_F(TwoPlEngineTest, ConflictingWriterWaitsUntilCommit) {
  const TxnId a = engine_->Begin();
  const TxnId b = engine_->Begin();
  ASSERT_TRUE(engine_->Write(a, "t", Value::Int(0), 1, Value::Int(1)).ok());
  Status s = engine_->Write(b, "t", Value::Int(0), 1, Value::Int(2));
  EXPECT_EQ(s.code(), StatusCode::kWaiting);
  EXPECT_EQ(engine_->PhaseOf(b), TxnPhase::kWaiting);
  EXPECT_TRUE(engine_->TakeRunnable().empty());
  ASSERT_TRUE(engine_->Commit(a).ok());
  std::vector<TxnId> runnable = engine_->TakeRunnable();
  ASSERT_EQ(runnable.size(), 1u);
  EXPECT_EQ(runnable[0], b);
  EXPECT_EQ(engine_->PhaseOf(b), TxnPhase::kActive);
  // Retrying the blocked operation now succeeds.
  ASSERT_TRUE(engine_->Write(b, "t", Value::Int(0), 1, Value::Int(2)).ok());
  ASSERT_TRUE(engine_->Commit(b).ok());
  EXPECT_EQ(Qty(0), Value::Int(2));
}

TEST_F(TwoPlEngineTest, ReadersShare) {
  const TxnId a = engine_->Begin();
  const TxnId b = engine_->Begin();
  EXPECT_TRUE(engine_->Read(a, "t", Value::Int(0), 1).ok());
  EXPECT_TRUE(engine_->Read(b, "t", Value::Int(0), 1).ok());
  EXPECT_TRUE(engine_->Commit(a).ok());
  EXPECT_TRUE(engine_->Commit(b).ok());
}

TEST_F(TwoPlEngineTest, UpgradeDeadlockDetectedWithoutUpdateLocks) {
  // Reproduce the paper's Sec. II deadlock: two transactions read the same
  // counter with plain S locks, then both try to write it.
  TwoPhaseLockingOptions options;
  options.use_update_locks = false;
  TwoPhaseLockingEngine engine(db_.get(), nullptr, options);
  const TxnId a = engine.Begin();
  const TxnId b = engine.Begin();
  ASSERT_TRUE(engine.ReadForUpdate(a, "t", Value::Int(0), 1).ok());
  ASSERT_TRUE(engine.ReadForUpdate(b, "t", Value::Int(0), 1).ok());
  EXPECT_EQ(engine.Write(a, "t", Value::Int(0), 1, Value::Int(1)).code(),
            StatusCode::kWaiting);
  EXPECT_EQ(engine.Write(b, "t", Value::Int(0), 1, Value::Int(2)).code(),
            StatusCode::kDeadlock);
  ASSERT_TRUE(engine.Abort(b).ok());
  ASSERT_EQ(engine.TakeRunnable().size(), 1u);
  ASSERT_TRUE(engine.Write(a, "t", Value::Int(0), 1, Value::Int(1)).ok());
  ASSERT_TRUE(engine.Commit(a).ok());
  EXPECT_EQ(engine.counters().deadlocks, 1);
}

TEST_F(TwoPlEngineTest, UpdateLocksSerializeReadersWithIntent) {
  const TxnId a = engine_->Begin();
  const TxnId b = engine_->Begin();
  ASSERT_TRUE(engine_->ReadForUpdate(a, "t", Value::Int(0), 1).ok());
  // With U locks the second intent reader queues instead of deadlocking.
  EXPECT_EQ(engine_->ReadForUpdate(b, "t", Value::Int(0), 1).status().code(),
            StatusCode::kWaiting);
  ASSERT_TRUE(engine_->Write(a, "t", Value::Int(0), 1, Value::Int(50)).ok());
  ASSERT_TRUE(engine_->Commit(a).ok());
  ASSERT_EQ(engine_->TakeRunnable().size(), 1u);
  Result<Value> v = engine_->ReadForUpdate(b, "t", Value::Int(0), 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), Value::Int(50));  // Sees a's committed write.
}

TEST_F(TwoPlEngineTest, InsertConflictsOnSameKey) {
  const TxnId a = engine_->Begin();
  const TxnId b = engine_->Begin();
  ASSERT_TRUE(
      engine_->Insert(a, "t", Row({Value::Int(50), Value::Int(1)})).ok());
  EXPECT_EQ(
      engine_->Insert(b, "t", Row({Value::Int(50), Value::Int(2)})).code(),
      StatusCode::kWaiting);
  ASSERT_TRUE(engine_->Commit(a).ok());
  ASSERT_EQ(engine_->TakeRunnable().size(), 1u);
  // Retry now fails with a real uniqueness error.
  EXPECT_EQ(
      engine_->Insert(b, "t", Row({Value::Int(50), Value::Int(2)})).code(),
      StatusCode::kAlreadyExists);
}

TEST_F(TwoPlEngineTest, WritePrimaryKeyColumnRejected) {
  const TxnId t = engine_->Begin();
  EXPECT_EQ(engine_->Write(t, "t", Value::Int(0), 0, Value::Int(9)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TwoPlEngineTest, ConstraintViolationLeavesTxnAlive) {
  ASSERT_TRUE(db_->AddConstraint("t", CheckConstraint("nonneg", 1,
                                                      CompareOp::kGe,
                                                      Value::Int(0)))
                  .ok());
  const TxnId t = engine_->Begin();
  EXPECT_EQ(engine_->Write(t, "t", Value::Int(0), 1, Value::Int(-1)).code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(engine_->PhaseOf(t), TxnPhase::kActive);
  // The transaction can continue with a legal write.
  ASSERT_TRUE(engine_->Write(t, "t", Value::Int(0), 1, Value::Int(0)).ok());
  ASSERT_TRUE(engine_->Commit(t).ok());
}

TEST_F(TwoPlEngineTest, OperationsOnTerminalTxnRejected) {
  const TxnId t = engine_->Begin();
  ASSERT_TRUE(engine_->Commit(t).ok());
  EXPECT_EQ(engine_->Read(t, "t", Value::Int(0), 1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine_->Commit(t).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine_->Abort(t).code(), StatusCode::kFailedPrecondition);
}

TEST_F(TwoPlEngineTest, AbortWhileWaitingCancelsRequest) {
  const TxnId a = engine_->Begin();
  const TxnId b = engine_->Begin();
  ASSERT_TRUE(engine_->Write(a, "t", Value::Int(0), 1, Value::Int(1)).ok());
  EXPECT_EQ(engine_->Write(b, "t", Value::Int(0), 1, Value::Int(2)).code(),
            StatusCode::kWaiting);
  ASSERT_TRUE(engine_->Abort(b).ok());
  // a commits; nobody is waiting anymore.
  ASSERT_TRUE(engine_->Commit(a).ok());
  EXPECT_TRUE(engine_->TakeRunnable().empty());
  EXPECT_EQ(Qty(0), Value::Int(1));
}

TEST_F(TwoPlEngineTest, StrictnessHoldsLocksUntilCommit) {
  const TxnId a = engine_->Begin();
  ASSERT_TRUE(engine_->Write(a, "t", Value::Int(0), 1, Value::Int(1)).ok());
  // Even after the write completes, a reader must wait (no early release).
  const TxnId b = engine_->Begin();
  EXPECT_EQ(engine_->Read(b, "t", Value::Int(0), 1).status().code(),
            StatusCode::kWaiting);
  ASSERT_TRUE(engine_->Commit(a).ok());
  ASSERT_EQ(engine_->TakeRunnable().size(), 1u);
  EXPECT_EQ(engine_->Read(b, "t", Value::Int(0), 1).value(), Value::Int(1));
}

TEST_F(TwoPlEngineTest, CountersTrackOutcomes) {
  const TxnId a = engine_->Begin();
  ASSERT_TRUE(engine_->Commit(a).ok());
  const TxnId b = engine_->Begin();
  ASSERT_TRUE(engine_->Abort(b).ok());
  EXPECT_EQ(engine_->counters().begun, 2);
  EXPECT_EQ(engine_->counters().committed, 1);
  EXPECT_EQ(engine_->counters().aborted, 1);
}

TEST_F(TwoPlEngineTest, CommittedStateSurvivesCrashRecovery) {
  const TxnId a = engine_->Begin();
  ASSERT_TRUE(engine_->Write(a, "t", Value::Int(0), 1, Value::Int(7)).ok());
  ASSERT_TRUE(engine_->Commit(a).ok());
  const TxnId b = engine_->Begin();
  ASSERT_TRUE(engine_->Write(b, "t", Value::Int(1), 1, Value::Int(8)).ok());
  // b never commits: crash here. Rebuild a database from the log bytes.
  const std::string log = wal_->ReadAll().value();
  auto wal_copy = std::make_unique<storage::MemoryWalStorage>();
  ASSERT_TRUE(wal_copy->Reset(log).ok());
  storage::Database recovered(std::move(wal_copy));
  ASSERT_TRUE(recovered.Open().ok());
  storage::Table* t = recovered.GetTable("t").value();
  EXPECT_EQ(t->GetColumnByKey(Value::Int(0), 1).value(), Value::Int(7));
  // The in-flight write of b is gone after recovery.
  EXPECT_EQ(t->GetColumnByKey(Value::Int(1), 1).value(), Value::Int(100));
}

}  // namespace
}  // namespace preserial::txn
