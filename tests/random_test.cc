#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace preserial {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversSmallRangeUniformly) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.08);
  }
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All seven values hit in 1000 draws.
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const double d = rng.NextExponential(2.5);
    ASSERT_GE(d, 0.0);
    sum += d;
  }
  EXPECT_NEAR(sum / kSamples, 2.5, 0.08);
}

TEST(RngTest, NextDiscreteRespectsWeights) {
  Rng rng(19);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {};
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kSamples, 0.75, 0.02);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(23);
  for (size_t n : {0u, 1u, 2u, 17u, 100u}) {
    std::vector<size_t> p = rng.Permutation(n);
    ASSERT_EQ(p.size(), n);
    std::sort(p.begin(), p.end());
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(p[i], i);
  }
}

TEST(RngTest, PermutationShuffles) {
  Rng rng(29);
  const std::vector<size_t> p = rng.Permutation(50);
  size_t fixed = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 10u);  // Expected ~1 fixed point.
}

TEST(RngTest, ForkGivesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace preserial
