#include "cluster/shard_map.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/strings.h"

namespace preserial::cluster {
namespace {

TEST(HashPartitionerTest, DeterministicAndInRange) {
  HashPartitioner p;
  for (size_t shards : {1u, 2u, 5u, 16u}) {
    for (int i = 0; i < 200; ++i) {
      const gtm::ObjectId id = StrFormat("resources/%d", i);
      const ShardId s = p.ShardOf(id, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, p.ShardOf(id, shards));  // Stable across calls.
    }
  }
}

TEST(HashPartitionerTest, SingleShardMapsEverythingToZero) {
  HashPartitioner p;
  EXPECT_EQ(p.ShardOf("anything", 1), 0u);
  EXPECT_EQ(p.ShardOf("", 1), 0u);
}

TEST(HashPartitionerTest, SpreadsKeysAcrossShards) {
  HashPartitioner p;
  std::map<ShardId, int> histogram;
  for (int i = 0; i < 1000; ++i) {
    ++histogram[p.ShardOf(StrFormat("obj/%d", i), 8)];
  }
  // Every shard owns something, and none owns a wildly outsized share.
  EXPECT_EQ(histogram.size(), 8u);
  for (const auto& [shard, count] : histogram) {
    EXPECT_GT(count, 1000 / 8 / 4) << "shard " << shard;
    EXPECT_LT(count, 1000 / 8 * 4) << "shard " << shard;
  }
}

TEST(HashPartitionerTest, Fnv1aKnownVectors) {
  // Reference values of the 64-bit FNV-1a function.
  EXPECT_EQ(HashPartitioner::Fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(HashPartitioner::Fnv1a("a"), 12638187200555641996ull);
}

TEST(RangePartitionerTest, LexicographicRanges) {
  // Splits {"h", "p"}: [, h) -> 0, [h, p) -> 1, [p, ) -> 2.
  RangePartitioner p({"h", "p"});
  EXPECT_EQ(p.ShardOf("cars/1", 3), 0u);
  EXPECT_EQ(p.ShardOf("flights/2", 3), 0u);
  EXPECT_EQ(p.ShardOf("hotels/0", 3), 1u);
  EXPECT_EQ(p.ShardOf("museums/4", 3), 1u);
  EXPECT_EQ(p.ShardOf("resources/9", 3), 2u);
  EXPECT_EQ(p.ShardOf("zoo", 3), 2u);
}

TEST(RangePartitionerTest, ClampsWhenFewerShardsThanRanges) {
  RangePartitioner p({"h", "p"});
  // Only two shards for three ranges: the top range folds into the last.
  EXPECT_EQ(p.ShardOf("zoo", 2), 1u);
  EXPECT_EQ(p.ShardOf("cars/1", 2), 0u);
}

TEST(ShardMapTest, DefaultsToHashPartitioning) {
  ShardMap map(4);
  EXPECT_EQ(map.num_shards(), 4u);
  HashPartitioner reference;
  for (int i = 0; i < 50; ++i) {
    const gtm::ObjectId id = StrFormat("resources/%d", i);
    EXPECT_EQ(map.ShardOf(id), reference.ShardOf(id, 4));
  }
}

TEST(ShardMapTest, UsesInjectedPartitioner) {
  ShardMap map(2, std::make_unique<RangePartitioner>(
                      std::vector<std::string>{"m"}));
  EXPECT_EQ(map.ShardOf("flights/1"), 0u);
  EXPECT_EQ(map.ShardOf("museums/1"), 1u);
}

}  // namespace
}  // namespace preserial::cluster
