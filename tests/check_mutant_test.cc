// The oracle catches real bugs, not just crashes: for every seeded rule
// mutation (gtm::GtmMutation) the explorer must find at least one schedule
// the checker rejects, shrink it to a minimal pinned-choice
// counterexample, and that counterexample must replay to the same failure
// — including after a save/load round-trip through the seed file format.

#include <string>

#include <gtest/gtest.h>

#include "check/explorer.h"
#include "check/seed.h"
#include "gtm/policies.h"

namespace preserial::check {
namespace {

bool ReportMentions(const std::string& report, const std::string& rule) {
  return report.find(rule) != std::string::npos;
}

// Explores schedules under `mutation` until the checker flags one, then
// validates the whole counterexample pipeline.
void ExpectMutantCaught(gtm::GtmMutation mutation, const std::string& rule,
                        uint64_t base_seed, size_t schedules,
                        size_t steps = 48) {
  ScheduleSeed base;
  base.scenario = ScenarioKind::kSingleNode;
  base.mutation = mutation;
  base.seed = base_seed;
  base.steps = steps;

  ScheduleExplorer explorer(base);
  const ExplorationResult r = explorer.ExploreRandom(schedules);
  ASSERT_GT(r.failures, 0u) << "mutation " << MutationName(mutation)
                            << " survived " << r.schedules << " schedules";
  ASSERT_TRUE(r.first_failure.has_value());
  EXPECT_TRUE(ReportMentions(r.first_failure_report, rule))
      << r.first_failure_report;

  // The shrunk counterexample is pinned (non-empty choices) and still
  // fails, on the rule the mutation breaks.
  const ScheduleSeed& shrunk = *r.first_failure;
  ASSERT_FALSE(shrunk.choices.empty());
  const ScheduleOutcome replay = RunSchedule(shrunk);
  ASSERT_FALSE(replay.ok())
      << "shrunk counterexample no longer fails: "
      << FormatScheduleSeed(shrunk);
  EXPECT_TRUE(ReportMentions(replay.Describe(), rule)) << replay.Describe();

  // Round-trip through the on-disk format replays identically.
  Result<ScheduleSeed> parsed = ParseScheduleSeed(FormatScheduleSeed(shrunk));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().choices, shrunk.choices);
  EXPECT_EQ(parsed.value().mutation, shrunk.mutation);
  const ScheduleOutcome reparsed = RunSchedule(parsed.value());
  EXPECT_FALSE(reparsed.ok());

  // Sanity: the healthy GTM passes the exact same schedule — the checker
  // is reacting to the mutation, not to the schedule shape.
  ScheduleSeed healthy = shrunk;
  healthy.mutation = gtm::GtmMutation::kNone;
  const ScheduleOutcome clean = RunSchedule(healthy);
  EXPECT_TRUE(clean.ok()) << clean.Describe();
}

TEST(MutantGtmTest, SkippedAwakeStalenessCheckIsCaught) {
  // Algorithm 9's staleness test removed: sleepers wake over incompatible
  // commits newer than their sleep point.
  ExpectMutantCaught(gtm::GtmMutation::kSkipAwakeStalenessCheck,
                     "algorithm9", /*base_seed=*/1, /*schedules=*/500);
}

TEST(MutantGtmTest, AdmittingAssignWithAddSubIsCaught) {
  // Table I compatibility broken: assignments admitted concurrently with
  // in-flight add/sub holders — a Definition 1 violation.
  ExpectMutantCaught(gtm::GtmMutation::kAdmitAssignWithAddSub,
                     "definition1", /*base_seed=*/1, /*schedules=*/300);
}

TEST(MutantGtmTest, AddSubReconciledAsLastWriteIsCaught) {
  // Eq. 1 replaced by last-writer-wins: concurrent subtractions lose
  // updates, so no serial order reproduces the installed state.
  ExpectMutantCaught(gtm::GtmMutation::kReconcileAddSubLastWrite,
                     "reconciliation", /*base_seed=*/1, /*schedules=*/300);
}

TEST(MutantGtmTest, MulDivReconciledAsAddSubIsCaught) {
  // Eq. 2 replaced by eq. 1 for mul/div: the bug only shows when two
  // multiplicative transactions commit concurrently on one cell, so this
  // mutant needs longer schedules and a bigger pool than the others.
  ExpectMutantCaught(gtm::GtmMutation::kReconcileMulDivAsAddSub,
                     "reconciliation", /*base_seed=*/100, /*schedules=*/200,
                     /*steps=*/60);
}

}  // namespace
}  // namespace preserial::check
