#include "storage/constraint.h"

#include <gtest/gtest.h>

namespace preserial::storage {
namespace {

TEST(CheckConstraintTest, HoldsEvaluatesEveryOperator) {
  struct Case {
    CompareOp op;
    int64_t v;
    bool expect;
  };
  const Case cases[] = {
      {CompareOp::kEq, 5, true},  {CompareOp::kEq, 4, false},
      {CompareOp::kNe, 4, true},  {CompareOp::kNe, 5, false},
      {CompareOp::kLt, 4, true},  {CompareOp::kLt, 5, false},
      {CompareOp::kLe, 5, true},  {CompareOp::kLe, 6, false},
      {CompareOp::kGt, 6, true},  {CompareOp::kGt, 5, false},
      {CompareOp::kGe, 5, true},  {CompareOp::kGe, 4, false},
  };
  for (const Case& c : cases) {
    const CheckConstraint check("c", 0, c.op, Value::Int(5));
    EXPECT_EQ(check.Holds(Value::Int(c.v)).value(), c.expect)
        << CompareOpName(c.op) << " with " << c.v;
  }
}

TEST(CheckConstraintTest, NullPassesSqlStyle) {
  const CheckConstraint check("c", 0, CompareOp::kGe, Value::Int(0));
  EXPECT_TRUE(check.Holds(Value::Null()).value());
  EXPECT_TRUE(check.Check(Row({Value::Null()})).ok());
}

TEST(CheckConstraintTest, CrossNumericComparison) {
  const CheckConstraint check("c", 0, CompareOp::kGe, Value::Int(0));
  EXPECT_TRUE(check.Holds(Value::Double(0.5)).value());
  EXPECT_FALSE(check.Holds(Value::Double(-0.5)).value());
}

TEST(CheckConstraintTest, IncomparableTypesError) {
  const CheckConstraint check("c", 0, CompareOp::kGe, Value::Int(0));
  EXPECT_FALSE(check.Holds(Value::String("x")).ok());
}

TEST(CheckConstraintTest, CheckNamesTheConstraint) {
  const CheckConstraint check("qty_nonneg", 0, CompareOp::kGe, Value::Int(0));
  const Status s = check.Check(Row({Value::Int(-1)}));
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_NE(s.message().find("qty_nonneg"), std::string::npos);
}

TEST(CheckConstraintTest, ColumnOutOfRangeIsError) {
  const CheckConstraint check("c", 3, CompareOp::kGe, Value::Int(0));
  EXPECT_EQ(check.Check(Row({Value::Int(1)})).code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckConstraintTest, ToStringUsesSchemaNames) {
  const Schema schema =
      Schema::Create({ColumnDef{"qty", ValueType::kInt64, false}}, 0).value();
  const CheckConstraint check("nonneg", 0, CompareOp::kGe, Value::Int(0));
  EXPECT_EQ(check.ToString(schema), "nonneg: qty >= 0");
}

}  // namespace
}  // namespace preserial::storage
