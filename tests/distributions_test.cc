#include "sim/distributions.h"

#include <gtest/gtest.h>

namespace preserial::sim {
namespace {

TEST(ConstantDistTest, AlwaysSameValue) {
  Rng rng(1);
  ConstantDist d(0.5);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.Sample(rng), 0.5);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.5);
}

TEST(UniformDistTest, InRangeWithCorrectMean) {
  Rng rng(2);
  UniformDist d(2.0, 6.0);
  double sum = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = d.Sample(rng);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 6.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, d.Mean(), 0.05);
  EXPECT_DOUBLE_EQ(d.Mean(), 4.0);
}

TEST(ExponentialDistTest, MeanMatches) {
  Rng rng(3);
  ExponentialDist d(1.5);
  double sum = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += d.Sample(rng);
  EXPECT_NEAR(sum / kSamples, 1.5, 0.05);
}

TEST(UniformIndexDistTest, CoversRange) {
  Rng rng(4);
  UniformIndexDist d(5);
  int counts[5] = {};
  for (int i = 0; i < 50000; ++i) ++counts[d.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(WeightedIndexDistTest, RespectsWeights) {
  Rng rng(5);
  WeightedIndexDist d({0.1, 0.0, 0.9});
  int counts[3] = {};
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) ++counts[d.Sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kSamples, 0.9, 0.01);
}

TEST(ZipfIndexDistTest, RankFrequenciesDecrease) {
  Rng rng(6);
  ZipfIndexDist d(10, 1.2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[d.Sample(rng)];
  // Popularity must be (weakly) decreasing in rank, strongly at the head.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[3]);
  EXPECT_GT(counts[3], counts[9]);
}

TEST(ZipfIndexDistTest, ZeroSkewIsUniform) {
  Rng rng(7);
  ZipfIndexDist d(4, 0.0);
  int counts[4] = {};
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) ++counts[d.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, kSamples / 4, 500);
}

}  // namespace
}  // namespace preserial::sim
