#include "storage/table.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace preserial::storage {
namespace {

Schema InventorySchema() {
  return Schema::Create(
             {
                 ColumnDef{"id", ValueType::kInt64, false},
                 ColumnDef{"qty", ValueType::kInt64, false},
                 ColumnDef{"note", ValueType::kString, true},
             },
             0)
      .value();
}

Row MakeRow(int64_t id, int64_t qty, const char* note = nullptr) {
  return Row({Value::Int(id), Value::Int(qty),
              note == nullptr ? Value::Null() : Value::String(note)});
}

TEST(TableTest, InsertAndGet) {
  Table t("inv", InventorySchema());
  ASSERT_TRUE(t.Insert(MakeRow(1, 10, "a")).ok());
  ASSERT_TRUE(t.Insert(MakeRow(2, 20)).ok());
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.GetByKey(Value::Int(1)).value().at(1), Value::Int(10));
  EXPECT_EQ(t.GetColumnByKey(Value::Int(2), 1).value(), Value::Int(20));
  EXPECT_FALSE(t.GetByKey(Value::Int(3)).ok());
}

TEST(TableTest, InsertRejectsDuplicateKey) {
  Table t("inv", InventorySchema());
  ASSERT_TRUE(t.Insert(MakeRow(1, 10)).ok());
  EXPECT_EQ(t.Insert(MakeRow(1, 99)).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, InsertRejectsSchemaViolations) {
  Table t("inv", InventorySchema());
  EXPECT_FALSE(t.Insert(Row({Value::Int(1)})).ok());  // Arity.
  EXPECT_FALSE(
      t.Insert(Row({Value::String("x"), Value::Int(1), Value::Null()})).ok());
}

TEST(TableTest, UpdateByKeyReplacesRow) {
  Table t("inv", InventorySchema());
  ASSERT_TRUE(t.Insert(MakeRow(1, 10)).ok());
  ASSERT_TRUE(t.UpdateByKey(Value::Int(1), MakeRow(1, 11, "up")).ok());
  EXPECT_EQ(t.GetColumnByKey(Value::Int(1), 1).value(), Value::Int(11));
  EXPECT_FALSE(t.UpdateByKey(Value::Int(9), MakeRow(9, 1)).ok());
}

TEST(TableTest, UpdateCanChangePrimaryKey) {
  Table t("inv", InventorySchema());
  ASSERT_TRUE(t.Insert(MakeRow(1, 10)).ok());
  ASSERT_TRUE(t.UpdateByKey(Value::Int(1), MakeRow(5, 10)).ok());
  EXPECT_FALSE(t.GetByKey(Value::Int(1)).ok());
  EXPECT_TRUE(t.GetByKey(Value::Int(5)).ok());
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(TableTest, UpdatePkCollisionRejected) {
  Table t("inv", InventorySchema());
  ASSERT_TRUE(t.Insert(MakeRow(1, 10)).ok());
  ASSERT_TRUE(t.Insert(MakeRow(2, 20)).ok());
  EXPECT_EQ(t.UpdateByKey(Value::Int(1), MakeRow(2, 99)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(t.GetColumnByKey(Value::Int(2), 1).value(), Value::Int(20));
}

TEST(TableTest, UpdateColumnByKey) {
  Table t("inv", InventorySchema());
  ASSERT_TRUE(t.Insert(MakeRow(1, 10)).ok());
  ASSERT_TRUE(t.UpdateColumnByKey(Value::Int(1), 1, Value::Int(7)).ok());
  EXPECT_EQ(t.GetColumnByKey(Value::Int(1), 1).value(), Value::Int(7));
  EXPECT_FALSE(t.UpdateColumnByKey(Value::Int(1), 9, Value::Int(1)).ok());
}

TEST(TableTest, DeleteFreesSlotForReuse) {
  Table t("inv", InventorySchema());
  ASSERT_TRUE(t.Insert(MakeRow(1, 10)).ok());
  ASSERT_TRUE(t.DeleteByKey(Value::Int(1)).ok());
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_FALSE(t.DeleteByKey(Value::Int(1)).ok());
  // Reinsert reuses the freed slot; invariants stay intact.
  ASSERT_TRUE(t.Insert(MakeRow(2, 20)).ok());
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(TableTest, ScanIsKeyOrdered) {
  Table t("inv", InventorySchema());
  for (int64_t id : {5, 1, 9, 3, 7}) {
    ASSERT_TRUE(t.Insert(MakeRow(id, id * 10)).ok());
  }
  std::vector<int64_t> keys;
  t.Scan([&](const Value& k, const Row&) {
    keys.push_back(k.as_int());
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3, 5, 7, 9}));
}

TEST(TableTest, ScanRange) {
  Table t("inv", InventorySchema());
  for (int64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(t.Insert(MakeRow(id, id)).ok());
  }
  std::vector<int64_t> keys;
  t.ScanRange(Value::Int(3), Value::Int(6), [&](const Value& k, const Row&) {
    keys.push_back(k.as_int());
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{3, 4, 5, 6}));
}

TEST(TableConstraintTest, AddConstraintValidatesExistingRows) {
  Table t("inv", InventorySchema());
  ASSERT_TRUE(t.Insert(MakeRow(1, -5)).ok());
  const CheckConstraint nonneg("qty_nonneg", 1, CompareOp::kGe,
                               Value::Int(0));
  EXPECT_EQ(t.AddConstraint(nonneg).code(),
            StatusCode::kConstraintViolation);
  ASSERT_TRUE(t.UpdateColumnByKey(Value::Int(1), 1, Value::Int(5)).ok());
  EXPECT_TRUE(t.AddConstraint(nonneg).ok());
}

TEST(TableConstraintTest, ConstraintEnforcedOnInsertAndUpdate) {
  Table t("inv", InventorySchema());
  ASSERT_TRUE(t.AddConstraint(CheckConstraint("qty_nonneg", 1, CompareOp::kGe,
                                              Value::Int(0)))
                  .ok());
  EXPECT_EQ(t.Insert(MakeRow(1, -1)).status().code(),
            StatusCode::kConstraintViolation);
  ASSERT_TRUE(t.Insert(MakeRow(1, 0)).ok());
  EXPECT_EQ(t.UpdateColumnByKey(Value::Int(1), 1, Value::Int(-1)).code(),
            StatusCode::kConstraintViolation);
  // The failed update left the row unchanged.
  EXPECT_EQ(t.GetColumnByKey(Value::Int(1), 1).value(), Value::Int(0));
}

TEST(TableConstraintTest, ConstraintsOnFiltersByColumn) {
  Table t("inv", InventorySchema());
  ASSERT_TRUE(t.AddConstraint(CheckConstraint("a", 1, CompareOp::kGe,
                                              Value::Int(0)))
                  .ok());
  ASSERT_TRUE(t.AddConstraint(CheckConstraint("b", 1, CompareOp::kLe,
                                              Value::Int(100)))
                  .ok());
  EXPECT_EQ(t.ConstraintsOn(1).size(), 2u);
  EXPECT_TRUE(t.ConstraintsOn(0).empty());
}

TEST(TableTest, RowIdLookupRoundTrip) {
  Table t("inv", InventorySchema());
  ASSERT_TRUE(t.Insert(MakeRow(1, 10)).ok());
  const RowId rid = t.RowIdForKey(Value::Int(1)).value();
  EXPECT_EQ(t.GetByRowId(rid).value().at(0), Value::Int(1));
  ASSERT_TRUE(t.DeleteByKey(Value::Int(1)).ok());
  EXPECT_FALSE(t.GetByRowId(rid).ok());
}

TEST(TableRandomizedTest, MixedWorkloadKeepsInvariants) {
  Table t("inv", InventorySchema());
  Rng rng(555);
  std::map<int64_t, int64_t> reference;  // id -> qty
  for (int op = 0; op < 3000; ++op) {
    const int64_t id = rng.NextInt(0, 99);
    switch (rng.NextBounded(3)) {
      case 0: {
        const bool ok = t.Insert(MakeRow(id, id)).ok();
        EXPECT_EQ(ok, reference.count(id) == 0);
        if (ok) reference[id] = id;
        break;
      }
      case 1: {
        const int64_t qty = rng.NextInt(0, 1000);
        const bool ok = t.UpdateColumnByKey(Value::Int(id), 1,
                                            Value::Int(qty))
                            .ok();
        EXPECT_EQ(ok, reference.count(id) > 0);
        if (ok) reference[id] = qty;
        break;
      }
      case 2: {
        const bool ok = t.DeleteByKey(Value::Int(id)).ok();
        EXPECT_EQ(ok, reference.erase(id) > 0);
        break;
      }
    }
    if (op % 101 == 0) {
      ASSERT_TRUE(t.CheckInvariants().ok());
    }
  }
  EXPECT_EQ(t.row_count(), reference.size());
  for (const auto& [id, qty] : reference) {
    EXPECT_EQ(t.GetColumnByKey(Value::Int(id), 1).value(), Value::Int(qty));
  }
}

}  // namespace
}  // namespace preserial::storage
