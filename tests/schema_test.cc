#include "storage/schema.h"

#include <gtest/gtest.h>

#include "storage/row.h"

namespace preserial::storage {
namespace {

Schema MakeTestSchema() {
  return Schema::Create(
             {
                 ColumnDef{"id", ValueType::kInt64, false},
                 ColumnDef{"name", ValueType::kString, true},
                 ColumnDef{"price", ValueType::kDouble, false},
             },
             0)
      .value();
}

TEST(SchemaCreateTest, ValidSchema) {
  const Schema s = MakeTestSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.primary_key(), 0u);
  EXPECT_EQ(s.column(1).name, "name");
  EXPECT_TRUE(s.column(1).nullable);
}

TEST(SchemaCreateTest, RejectsEmpty) {
  EXPECT_FALSE(Schema::Create({}, 0).ok());
}

TEST(SchemaCreateTest, RejectsPkOutOfRange) {
  EXPECT_FALSE(
      Schema::Create({ColumnDef{"a", ValueType::kInt64, false}}, 1).ok());
}

TEST(SchemaCreateTest, RejectsNullablePk) {
  EXPECT_FALSE(
      Schema::Create({ColumnDef{"a", ValueType::kInt64, true}}, 0).ok());
}

TEST(SchemaCreateTest, RejectsDuplicateNames) {
  EXPECT_FALSE(Schema::Create(
                   {
                       ColumnDef{"a", ValueType::kInt64, false},
                       ColumnDef{"a", ValueType::kString, false},
                   },
                   0)
                   .ok());
}

TEST(SchemaCreateTest, RejectsUnnamedOrNullTyped) {
  EXPECT_FALSE(
      Schema::Create({ColumnDef{"", ValueType::kInt64, false}}, 0).ok());
  EXPECT_FALSE(
      Schema::Create({ColumnDef{"a", ValueType::kNull, false}}, 0).ok());
}

TEST(SchemaColumnIndexTest, FindsByName) {
  const Schema s = MakeTestSchema();
  EXPECT_EQ(s.ColumnIndex("price").value(), 2u);
  EXPECT_EQ(s.ColumnIndex("nope").status().code(), StatusCode::kNotFound);
}

TEST(SchemaValidateRowTest, AcceptsMatchingRow) {
  const Schema s = MakeTestSchema();
  EXPECT_TRUE(s.ValidateRow({Value::Int(1), Value::String("a"),
                             Value::Double(2.0)})
                  .ok());
}

TEST(SchemaValidateRowTest, AcceptsIntWhereDoubleDeclared) {
  const Schema s = MakeTestSchema();
  EXPECT_TRUE(
      s.ValidateRow({Value::Int(1), Value::String("a"), Value::Int(2)}).ok());
}

TEST(SchemaValidateRowTest, NullOnlyInNullableColumns) {
  const Schema s = MakeTestSchema();
  EXPECT_TRUE(
      s.ValidateRow({Value::Int(1), Value::Null(), Value::Double(2)}).ok());
  EXPECT_FALSE(
      s.ValidateRow({Value::Int(1), Value::Null(), Value::Null()}).ok());
}

TEST(SchemaValidateRowTest, RejectsArityMismatch) {
  const Schema s = MakeTestSchema();
  EXPECT_FALSE(s.ValidateRow({Value::Int(1)}).ok());
  EXPECT_FALSE(s.ValidateRow({Value::Int(1), Value::String("a"),
                              Value::Double(2), Value::Int(9)})
                   .ok());
}

TEST(SchemaValidateRowTest, RejectsTypeMismatch) {
  const Schema s = MakeTestSchema();
  EXPECT_FALSE(s.ValidateRow({Value::String("1"), Value::String("a"),
                              Value::Double(2)})
                   .ok());
  // Double where int declared is NOT accepted (no silent narrowing).
  const Schema s2 =
      Schema::Create({ColumnDef{"n", ValueType::kInt64, false}}, 0).value();
  EXPECT_FALSE(s2.ValidateRow({Value::Double(1.5)}).ok());
}

TEST(SchemaToStringTest, MentionsColumnsAndPk) {
  const std::string str = MakeTestSchema().ToString();
  EXPECT_NE(str.find("id INT64 PRIMARY KEY"), std::string::npos);
  EXPECT_NE(str.find("name STRING NULL"), std::string::npos);
}

TEST(RowTest, EncodeDecodeRoundTrip) {
  const Row row({Value::Int(7), Value::String("x"), Value::Null()});
  std::string buf;
  row.EncodeTo(&buf);
  size_t offset = 0;
  Result<Row> back = Row::DecodeFrom(buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), row);
  EXPECT_EQ(offset, buf.size());
}

TEST(RowTest, EmptyRowRoundTrips) {
  const Row row{std::vector<Value>{}};
  std::string buf;
  row.EncodeTo(&buf);
  size_t offset = 0;
  EXPECT_EQ(Row::DecodeFrom(buf, &offset).value(), row);
}

TEST(RowTest, TruncatedDecodeFails) {
  const Row row({Value::Int(7), Value::String("abcdef")});
  std::string buf;
  row.EncodeTo(&buf);
  size_t offset = 0;
  EXPECT_FALSE(Row::DecodeFrom(buf.substr(0, buf.size() - 2), &offset).ok());
}

TEST(RowTest, SetAndToString) {
  Row row({Value::Int(1), Value::Int(2)});
  row.Set(1, Value::String("two"));
  EXPECT_EQ(row.at(1), Value::String("two"));
  EXPECT_EQ(row.ToString(), "(1, 'two')");
}

}  // namespace
}  // namespace preserial::storage
