#include "lock/waits_for_graph.h"

#include <gtest/gtest.h>

namespace preserial::lock {
namespace {

TEST(WaitsForGraphTest, EmptyHasNoCycle) {
  WaitsForGraph g;
  EXPECT_FALSE(g.DetectAnyCycle());
  EXPECT_FALSE(g.HasCycleFrom(1));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(WaitsForGraphTest, SelfEdgesIgnored) {
  WaitsForGraph g;
  g.AddEdge(1, 1);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.HasCycleFrom(1));
}

TEST(WaitsForGraphTest, ChainHasNoCycle) {
  WaitsForGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  EXPECT_FALSE(g.DetectAnyCycle());
  EXPECT_FALSE(g.HasCycleFrom(1));
}

TEST(WaitsForGraphTest, TwoCycleDetected) {
  WaitsForGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  std::vector<TxnId> cycle;
  EXPECT_TRUE(g.HasCycleFrom(1, &cycle));
  EXPECT_EQ(cycle.size(), 2u);
  EXPECT_EQ(cycle[0], 1u);
  EXPECT_TRUE(g.HasCycleFrom(2));
  EXPECT_TRUE(g.DetectAnyCycle(&cycle));
}

TEST(WaitsForGraphTest, LongCycleDetectedFromEveryMember) {
  WaitsForGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 1);
  for (TxnId t : {1u, 2u, 3u, 4u}) {
    std::vector<TxnId> cycle;
    EXPECT_TRUE(g.HasCycleFrom(t, &cycle)) << t;
    EXPECT_EQ(cycle.size(), 4u);
    EXPECT_EQ(cycle[0], t);
  }
}

TEST(WaitsForGraphTest, NodeOffTheCycleIsNotOnIt) {
  WaitsForGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);  // Cycle 2 <-> 3; node 1 merely reaches it.
  EXPECT_FALSE(g.HasCycleFrom(1));
  EXPECT_TRUE(g.HasCycleFrom(2));
  EXPECT_TRUE(g.DetectAnyCycle());
}

TEST(WaitsForGraphTest, DiamondIsAcyclic) {
  WaitsForGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 4);
  g.AddEdge(3, 4);
  EXPECT_FALSE(g.DetectAnyCycle());
  EXPECT_FALSE(g.HasCycleFrom(1));
}

TEST(WaitsForGraphTest, CycleThroughSharedPrefix) {
  WaitsForGraph g;
  // 1 -> 2 -> 3, and 1 -> 3 directly, with 3 -> 1 closing the loop.
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(1, 3);
  g.AddEdge(3, 1);
  EXPECT_TRUE(g.HasCycleFrom(1));
  EXPECT_TRUE(g.HasCycleFrom(3));
}

TEST(WaitsForGraphTest, ClearResets) {
  WaitsForGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  g.Clear();
  EXPECT_FALSE(g.DetectAnyCycle());
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(WaitsForGraphTest, SuccessorsReflectEdges) {
  WaitsForGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  EXPECT_EQ(g.Successors(1).size(), 2u);
  EXPECT_TRUE(g.Successors(2).empty());
}

}  // namespace
}  // namespace preserial::lock
