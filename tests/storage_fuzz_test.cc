// Randomized storage/WAL fuzz: a stream of auto-committed DML runs against
// a Database while a reference std::map mirrors the expected table
// contents. At random points the log bytes are replayed into a fresh
// Database (simulated crash + recovery) and compared row-for-row;
// checkpoints are interleaved to exercise log compaction.

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/database.h"

namespace preserial::storage {
namespace {

Schema FuzzSchema() {
  return Schema::Create(
             {
                 ColumnDef{"id", ValueType::kInt64, false},
                 ColumnDef{"qty", ValueType::kInt64, false},
                 ColumnDef{"note", ValueType::kString, true},
             },
             0)
      .value();
}

Row MakeRow(int64_t id, int64_t qty) {
  return Row({Value::Int(id), Value::Int(qty),
              qty % 3 == 0 ? Value::Null()
                           : Value::String("n" + std::to_string(qty))});
}

class StorageFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StorageFuzzTest, RecoveryAlwaysMatchesLiveState) {
  Rng rng(GetParam());
  auto wal = std::make_unique<MemoryWalStorage>();
  MemoryWalStorage* wal_raw = wal.get();
  Database db(std::move(wal));
  ASSERT_TRUE(db.Open().ok());
  ASSERT_TRUE(db.CreateTable("t", FuzzSchema()).ok());
  ASSERT_TRUE(db.AddConstraint("t", CheckConstraint("qty_nonneg", 1,
                                                    CompareOp::kGe,
                                                    Value::Int(0)))
                  .ok());

  std::map<int64_t, int64_t> reference;  // id -> qty
  constexpr int kOps = 1200;
  for (int op = 0; op < kOps; ++op) {
    const int64_t id = rng.NextInt(0, 60);
    switch (rng.NextBounded(4)) {
      case 0: {  // Insert (possibly violating uniqueness or constraint).
        const int64_t qty = rng.NextInt(-2, 100);
        const Status s = db.InsertRow("t", MakeRow(id, qty));
        const bool expect_ok = reference.count(id) == 0 && qty >= 0;
        EXPECT_EQ(s.ok(), expect_ok) << s.ToString();
        if (expect_ok) reference[id] = qty;
        break;
      }
      case 1: {  // Update.
        const int64_t qty = rng.NextInt(-2, 100);
        const Status s = db.UpdateRow("t", Value::Int(id), MakeRow(id, qty));
        const bool expect_ok = reference.count(id) > 0 && qty >= 0;
        EXPECT_EQ(s.ok(), expect_ok) << s.ToString();
        if (expect_ok) reference[id] = qty;
        break;
      }
      case 2: {  // Delete.
        const Status s = db.DeleteRow("t", Value::Int(id));
        EXPECT_EQ(s.ok(), reference.erase(id) > 0);
        break;
      }
      case 3: {  // Occasionally checkpoint.
        if (rng.NextBool(0.1)) {
          ASSERT_TRUE(db.Checkpoint().ok());
        }
        break;
      }
    }

    if (op % 149 == 0 || op == kOps - 1) {
      // Crash: rebuild a database from the current log bytes and compare.
      auto wal_copy = std::make_unique<MemoryWalStorage>();
      ASSERT_TRUE(wal_copy->Reset(wal_raw->ReadAll().value()).ok());
      Database recovered(std::move(wal_copy));
      ASSERT_TRUE(recovered.Open().ok());
      Table* table = recovered.GetTable("t").value();
      ASSERT_EQ(table->row_count(), reference.size()) << "op " << op;
      for (const auto& [id2, qty2] : reference) {
        Result<Value> v = table->GetColumnByKey(Value::Int(id2), 1);
        ASSERT_TRUE(v.ok()) << "op " << op << " id " << id2;
        EXPECT_EQ(v.value(), Value::Int(qty2));
      }
      ASSERT_TRUE(table->CheckInvariants().ok());
      // The recovered constraint still bites.
      EXPECT_FALSE(recovered.InsertRow("t", MakeRow(999, -5)).ok());
    }
  }

  // Live table must equal the reference too.
  Table* live = db.GetTable("t").value();
  EXPECT_EQ(live->row_count(), reference.size());
  EXPECT_TRUE(live->CheckInvariants().ok());
}

TEST_P(StorageFuzzTest, TornTailNeverCorruptsRecovery) {
  Rng rng(GetParam() + 99);
  auto wal = std::make_unique<MemoryWalStorage>();
  MemoryWalStorage* wal_raw = wal.get();
  Database db(std::move(wal));
  ASSERT_TRUE(db.Open().ok());
  ASSERT_TRUE(db.CreateTable("t", FuzzSchema()).ok());
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(db.InsertRow("t", MakeRow(i, i + 1)).ok());
  }
  const std::string log = wal_raw->ReadAll().value();
  // Truncate the log at every possible byte boundary: recovery must always
  // succeed (torn tails are dropped) and never invent rows.
  for (size_t cut = 0; cut <= log.size(); cut += 1 + rng.NextBounded(7)) {
    auto wal_copy = std::make_unique<MemoryWalStorage>();
    ASSERT_TRUE(wal_copy->Reset(log.substr(0, cut)).ok());
    Database recovered(std::move(wal_copy));
    Result<RecoveryStats> stats = recovered.Open();
    ASSERT_TRUE(stats.ok()) << "cut " << cut << ": "
                            << stats.status().ToString();
    if (recovered.catalog()->HasTable("t")) {
      Table* table = recovered.GetTable("t").value();
      EXPECT_LE(table->row_count(), 30u);
      EXPECT_TRUE(table->CheckInvariants().ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageFuzzTest,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace preserial::storage
