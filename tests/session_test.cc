#include "mobile/session.h"

#include <memory>
#include <vector>

#include "mobile/client.h"
#include "mobile/network.h"

#include <gtest/gtest.h>

#include "storage/database.h"
#include "workload/runner.h"

namespace preserial::mobile {
namespace {

using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;
using workload::GtmRunner;
using workload::RunStats;
using workload::TwoPlRunner;

std::unique_ptr<storage::Database> MakeDb(int64_t rows, int64_t qty) {
  auto db = std::make_unique<storage::Database>();
  EXPECT_TRUE(db->Open().ok());
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"qty", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  EXPECT_TRUE(db->CreateTable("t", std::move(schema)).ok());
  for (int64_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(db->InsertRow("t", Row({Value::Int(i), Value::Int(qty)})).ok());
  }
  return db;
}

TEST(GtmSessionTest, CommitsAfterWorkTime) {
  auto db = MakeDb(1, 100);
  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  ASSERT_TRUE(gtm.RegisterObject("X", "t", Value::Int(0), {1}).ok());
  GtmRunner runner(&gtm, &simulator);

  TxnPlan plan;
  plan.object = "X";
  plan.op = semantics::Operation::Sub(Value::Int(1));
  plan.work_time = 2.5;
  runner.AddSession(plan, /*arrival=*/1.0);
  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 1);
  EXPECT_DOUBLE_EQ(stats.latency_committed.mean(), 2.5);
  EXPECT_EQ(db->GetTable("t")
                .value()
                ->GetColumnByKey(Value::Int(0), 1)
                .value(),
            Value::Int(99));
}

TEST(GtmSessionTest, WaiterLatencyIncludesQueueTime) {
  auto db = MakeDb(1, 100);
  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  ASSERT_TRUE(gtm.RegisterObject("X", "t", Value::Int(0), {1}).ok());
  GtmRunner runner(&gtm, &simulator);

  TxnPlan holder;
  holder.object = "X";
  holder.op = semantics::Operation::Assign(Value::Int(7));
  holder.work_time = 4.0;
  runner.AddSession(holder, 0.0);

  TxnPlan waiter;
  waiter.object = "X";
  waiter.op = semantics::Operation::Assign(Value::Int(8));
  waiter.work_time = 1.0;
  runner.AddSession(waiter, 1.0);

  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 2);
  // Holder: 4.0. Waiter: queued 3.0 (until t=4) + 1.0 work = 4.0.
  EXPECT_DOUBLE_EQ(stats.latency_committed.mean(), 4.0);
}

TEST(GtmSessionTest, DisconnectionStretchesLatency) {
  auto db = MakeDb(1, 100);
  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  ASSERT_TRUE(gtm.RegisterObject("X", "t", Value::Int(0), {1}).ok());
  GtmRunner runner(&gtm, &simulator);

  TxnPlan plan;
  plan.object = "X";
  plan.op = semantics::Operation::Sub(Value::Int(1));
  plan.work_time = 2.0;
  plan.disconnect.disconnects = true;
  plan.disconnect.offset = 1.0;
  plan.disconnect.duration = 10.0;
  runner.AddSession(plan, 0.0);
  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 1);
  EXPECT_EQ(stats.disconnected, 1);
  EXPECT_DOUBLE_EQ(stats.latency_committed.mean(), 12.0);  // 2 work + 10 away.
}

TEST(GtmSessionTest, SleeperKilledByIncompatibleCommitRecordsCause) {
  auto db = MakeDb(1, 100);
  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  ASSERT_TRUE(gtm.RegisterObject("X", "t", Value::Int(0), {1}).ok());
  GtmRunner runner(&gtm, &simulator);

  TxnPlan sleeper;
  sleeper.object = "X";
  sleeper.op = semantics::Operation::Sub(Value::Int(1));
  sleeper.work_time = 2.0;
  sleeper.disconnect.disconnects = true;
  sleeper.disconnect.offset = 1.0;
  sleeper.disconnect.duration = 10.0;
  runner.AddSession(sleeper, 0.0);

  TxnPlan admin;  // Lands during the sleep, commits fast.
  admin.object = "X";
  admin.op = semantics::Operation::Assign(Value::Int(5));
  admin.work_time = 0.5;
  runner.AddSession(admin, 2.0);

  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 1);
  EXPECT_EQ(stats.aborted, 1);
  EXPECT_EQ(stats.aborts_by_cause.at(AbortCause::kAwakeConflict), 1);
  EXPECT_EQ(stats.disconnected_aborted, 1);
  EXPECT_DOUBLE_EQ(stats.DisconnectedAbortPercent(), 100.0);
}

TEST(TwoPlSessionTest, SubtractionReadsThenWrites) {
  auto db = MakeDb(1, 100);
  sim::Simulator simulator;
  txn::TwoPhaseLockingEngine engine(db.get(), simulator.clock());
  TwoPlRunner runner(&engine, &simulator);

  TwoPlPlan plan;
  plan.table = "t";
  plan.key = Value::Int(0);
  plan.column = 1;
  plan.is_subtract = true;
  plan.work_time = 1.0;
  runner.AddSession(plan, 0.0);
  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 1);
  EXPECT_EQ(db->GetTable("t")
                .value()
                ->GetColumnByKey(Value::Int(0), 1)
                .value(),
            Value::Int(99));
}

TEST(TwoPlSessionTest, ConflictingSessionsSerialize) {
  auto db = MakeDb(1, 100);
  sim::Simulator simulator;
  txn::TwoPhaseLockingEngine engine(db.get(), simulator.clock());
  TwoPlRunner runner(&engine, &simulator);

  for (int i = 0; i < 2; ++i) {
    TwoPlPlan plan;
    plan.table = "t";
    plan.key = Value::Int(0);
    plan.column = 1;
    plan.is_subtract = true;
    plan.work_time = 2.0;
    runner.AddSession(plan, static_cast<double>(i));  // t=0 and t=1.
  }
  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 2);
  // First: latency 2. Second: waits until t=2, then 2 work -> finish t=4,
  // latency 3.
  EXPECT_DOUBLE_EQ(stats.latency_committed.mean(), 2.5);
  EXPECT_EQ(db->GetTable("t")
                .value()
                ->GetColumnByKey(Value::Int(0), 1)
                .value(),
            Value::Int(98));
}

TEST(TwoPlSessionTest, DisconnectedHolderBlocksUntilIdleTimeout) {
  auto db = MakeDb(1, 100);
  sim::Simulator simulator;
  txn::TwoPhaseLockingEngine engine(db.get(), simulator.clock());
  TwoPlRunner runner(&engine, &simulator);

  // Holder disconnects for 100 s; the system kills it after 10 s idle.
  TwoPlPlan holder;
  holder.table = "t";
  holder.key = Value::Int(0);
  holder.column = 1;
  holder.is_subtract = true;
  holder.work_time = 2.0;
  holder.disconnect.disconnects = true;
  holder.disconnect.offset = 0.5;
  holder.disconnect.duration = 100.0;
  holder.idle_timeout = 10.0;
  runner.AddSession(holder, 0.0);

  // A waiter behind it with a generous lock-wait timeout.
  TwoPlPlan waiter;
  waiter.table = "t";
  waiter.key = Value::Int(0);
  waiter.column = 1;
  waiter.is_subtract = true;
  waiter.work_time = 1.0;
  waiter.lock_wait_timeout = 60.0;
  runner.AddSession(waiter, 1.0);

  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 1);
  EXPECT_EQ(stats.aborted, 1);
  EXPECT_EQ(stats.aborts_by_cause.at(AbortCause::kDisconnectTimeout), 1);
  // The waiter got the lock at t = 10.5 (holder killed) and took 1 s.
  EXPECT_DOUBLE_EQ(stats.latency_committed.mean(), 10.5);
}

TEST(TwoPlSessionTest, LockWaitTimeoutAbortsWaiter) {
  auto db = MakeDb(1, 100);
  sim::Simulator simulator;
  txn::TwoPhaseLockingEngine engine(db.get(), simulator.clock());
  TwoPlRunner runner(&engine, &simulator);

  TwoPlPlan holder;  // Disconnected forever, never killed (no idle timeout).
  holder.table = "t";
  holder.key = Value::Int(0);
  holder.column = 1;
  holder.is_subtract = true;
  holder.work_time = 1.0;
  holder.disconnect.disconnects = true;
  holder.disconnect.offset = 0.1;
  holder.disconnect.duration = 1000.0;
  runner.AddSession(holder, 0.0);

  TwoPlPlan waiter;
  waiter.table = "t";
  waiter.key = Value::Int(0);
  waiter.column = 1;
  waiter.is_subtract = true;
  waiter.work_time = 1.0;
  waiter.lock_wait_timeout = 5.0;
  runner.AddSession(waiter, 0.5);

  runner.simulator()->RunUntil(50.0);
  const RunStats& stats = runner.stats();
  EXPECT_EQ(stats.aborted, 1);
  EXPECT_EQ(stats.aborts_by_cause.at(AbortCause::kLockWaitTimeout), 1);
}

TEST(TwoPlSessionTest, AssignmentWritesDirectly) {
  auto db = MakeDb(1, 100);
  sim::Simulator simulator;
  txn::TwoPhaseLockingEngine engine(db.get(), simulator.clock());
  TwoPlRunner runner(&engine, &simulator);

  TwoPlPlan plan;
  plan.table = "t";
  plan.key = Value::Int(0);
  plan.column = 1;
  plan.is_subtract = false;
  plan.assign_value = Value::Int(77);
  plan.work_time = 1.0;
  runner.AddSession(plan, 0.0);
  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 1);
  EXPECT_EQ(db->GetTable("t")
                .value()
                ->GetColumnByKey(Value::Int(0), 1)
                .value(),
            Value::Int(77));
}

TEST(GtmSessionTest, NetworkDelaysStretchLatency) {
  auto db = MakeDb(1, 100);
  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  ASSERT_TRUE(gtm.RegisterObject("X", "t", Value::Int(0), {1}).ok());
  GtmRunner runner(&gtm, &simulator);

  TxnPlan plan;
  plan.object = "X";
  plan.op = semantics::Operation::Sub(Value::Int(1));
  plan.work_time = 1.0;
  plan.invoke_delay = 0.5;
  plan.commit_delay = 0.25;
  runner.AddSession(plan, 0.0);
  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 1);
  EXPECT_DOUBLE_EQ(stats.latency_committed.mean(), 1.75);
}

TEST(GtmSessionTest, TagsFlowIntoPerClassStats) {
  auto db = MakeDb(2, 100);
  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  ASSERT_TRUE(gtm.RegisterObject("X", "t", Value::Int(0), {1}).ok());
  ASSERT_TRUE(gtm.RegisterObject("Y", "t", Value::Int(1), {1}).ok());
  GtmRunner runner(&gtm, &simulator);

  TxnPlan fast;
  fast.object = "X";
  fast.op = semantics::Operation::Sub(Value::Int(1));
  fast.work_time = 1.0;
  fast.tag = 7;
  runner.AddSession(fast, 0.0);
  TxnPlan slow;
  slow.object = "Y";
  slow.op = semantics::Operation::Sub(Value::Int(1));
  slow.work_time = 3.0;
  slow.tag = 9;
  runner.AddSession(slow, 0.0);

  const RunStats& stats = runner.Run();
  ASSERT_EQ(stats.latency_by_tag.count(7), 1u);
  ASSERT_EQ(stats.latency_by_tag.count(9), 1u);
  EXPECT_DOUBLE_EQ(stats.latency_by_tag.at(7).mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats.latency_by_tag.at(9).mean(), 3.0);
}

TEST(TwoPlSessionTest, NetworkDelaysApplyToBothHops) {
  auto db = MakeDb(1, 100);
  sim::Simulator simulator;
  txn::TwoPhaseLockingEngine engine(db.get(), simulator.clock());
  TwoPlRunner runner(&engine, &simulator);

  TwoPlPlan plan;
  plan.table = "t";
  plan.key = Value::Int(0);
  plan.column = 1;
  plan.is_subtract = true;
  plan.work_time = 1.0;
  plan.invoke_delay = 0.5;
  plan.commit_delay = 0.25;
  runner.AddSession(plan, 0.0);
  const RunStats& stats = runner.Run();
  EXPECT_EQ(stats.committed, 1);
  EXPECT_DOUBLE_EQ(stats.latency_committed.mean(), 1.75);
}

TEST(RunStatsTest, MakespanAndThroughput) {
  auto db = MakeDb(2, 100);
  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  ASSERT_TRUE(gtm.RegisterObject("X", "t", Value::Int(0), {1}).ok());
  ASSERT_TRUE(gtm.RegisterObject("Y", "t", Value::Int(1), {1}).ok());
  GtmRunner runner(&gtm, &simulator);
  for (int i = 0; i < 2; ++i) {
    TxnPlan plan;
    plan.object = i == 0 ? "X" : "Y";
    plan.op = semantics::Operation::Sub(Value::Int(1));
    plan.work_time = 2.0;
    runner.AddSession(plan, static_cast<double>(i));  // t=0 and t=1.
  }
  const RunStats& stats = runner.Run();
  // First arrival t=0, last finish t=3.
  EXPECT_DOUBLE_EQ(stats.Makespan(), 3.0);
  EXPECT_NEAR(stats.Throughput(), 2.0 / 3.0, 1e-12);
}

TEST(ArrivalProcessTest, FixedGapSchedulesExactTimes) {
  sim::Simulator simulator;
  Rng rng(1);
  ArrivalProcess arrivals =
      ArrivalProcess::Fixed(&simulator, 0.5, &rng);
  std::vector<double> times;
  arrivals.Schedule(4, [&](size_t) { times.push_back(simulator.Now()); });
  simulator.Run();
  EXPECT_EQ(times, (std::vector<double>{0.0, 0.5, 1.0, 1.5}));
}

TEST(NetworkModelTest, DefaultIsZeroLatency) {
  Rng rng(1);
  NetworkModel net;
  EXPECT_DOUBLE_EQ(net.SampleDelay(rng), 0.0);
  EXPECT_DOUBLE_EQ(net.SampleRtt(rng), 0.0);
  EXPECT_DOUBLE_EQ(net.mean_delay(), 0.0);
}

TEST(NetworkModelTest, FixedAndSampledDelays) {
  Rng rng(2);
  NetworkModel fixed(0.25);
  EXPECT_DOUBLE_EQ(fixed.SampleDelay(rng), 0.25);
  EXPECT_DOUBLE_EQ(fixed.SampleRtt(rng), 0.5);
  EXPECT_DOUBLE_EQ(fixed.mean_delay(), 0.25);

  NetworkModel sampled(std::make_unique<sim::ExponentialDist>(0.5));
  EXPECT_DOUBLE_EQ(sampled.mean_delay(), 0.5);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += sampled.SampleDelay(rng);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(DisconnectModelTest, RespectsProbabilityAndSpan) {
  Rng rng(3);
  DisconnectModel model =
      DisconnectModel::WithExponentialDuration(0.25, 4.0);
  int hits = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    DisconnectPlan plan = model.Sample(rng, 2.0);
    if (plan.disconnects) {
      ++hits;
      EXPECT_GE(plan.offset, 0.0);
      EXPECT_LT(plan.offset, 2.0);
      EXPECT_GE(plan.duration, 0.0);
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.25, 0.02);
}

}  // namespace
}  // namespace preserial::mobile
