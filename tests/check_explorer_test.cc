// Systematic schedule exploration: thousands of deterministic schedules —
// random walks and bounded exhaustive enumeration — across the single-node
// GTM, the sharded 2PC cluster (with coordinator crashes and recovery) and
// the replicated group (with primary kill and promotion), every one
// validated by the full serializability checker. The suite explores >= 10k
// schedules by default; PRESERIAL_EXPLORE_BUDGET=<n> multiplies every
// budget (the nightly job runs with a large multiplier).

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/explorer.h"
#include "check/seed.h"
#include "common/random.h"
#include "workload/gtm_experiment.h"

namespace preserial::check {
namespace {

size_t Budget(size_t base) {
  const char* env = std::getenv("PRESERIAL_EXPLORE_BUDGET");
  if (env == nullptr || *env == '\0') return base;
  const unsigned long mult = std::strtoul(env, nullptr, 10);
  return mult > 0 ? base * mult : base;
}

TEST(DecisionSourceTest, RngWalkIsDeterministicAndReplayable) {
  RngDecisionSource a(42), b(42);
  std::vector<uint32_t> seq;  // Effective values, forced (n==1) ones too.
  for (int i = 0; i < 64; ++i) {
    const uint32_t v = a.Choose(1 + (i % 7));
    if (i % 7 == 0) {
      EXPECT_EQ(v, 0u);  // n == 1 is forced...
    }
    seq.push_back(v);
    EXPECT_EQ(b.Choose(1 + (i % 7)), v);
  }
  // ...and forced choices are not recorded: replay alignment must not
  // depend on how many of them a schedule happens to hit.
  std::vector<uint32_t> free;
  for (int i = 0; i < 64; ++i) {
    if (i % 7 != 0) free.push_back(seq[i]);
  }
  EXPECT_EQ(a.recorded(), free);

  // Replaying the recorded vector reproduces the walk exactly; past the
  // end the replay pads with 0 so a truncated vector still drives a full
  // run.
  ReplayDecisionSource replay(a.recorded());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(replay.Choose(1 + (i % 7)), seq[i]);
  }
  EXPECT_EQ(replay.recorded(), free);
  EXPECT_EQ(replay.Choose(5), 0u);
}

TEST(RunScheduleTest, SameSeedSameSchedule) {
  ScheduleSeed seed;
  seed.scenario = ScenarioKind::kSingleNode;
  seed.seed = 12345;
  const ScheduleOutcome a = RunSchedule(seed);
  const ScheduleOutcome b = RunSchedule(seed);
  EXPECT_TRUE(a.ok()) << a.Describe();
  EXPECT_EQ(a.choices, b.choices);
  ASSERT_EQ(a.histories.size(), b.histories.size());
  for (size_t i = 0; i < a.histories.size(); ++i) {
    EXPECT_EQ(a.histories[i].events.size(), b.histories[i].events.size());
    EXPECT_EQ(a.histories[i].final_state, b.histories[i].final_state);
  }

  // Replaying the recorded decision vector pins the same schedule.
  ScheduleSeed pinned = seed;
  pinned.choices = a.choices;
  const ScheduleOutcome c = RunSchedule(pinned);
  EXPECT_EQ(c.choices, a.choices);
  ASSERT_EQ(c.histories.size(), a.histories.size());
  for (size_t i = 0; i < a.histories.size(); ++i) {
    EXPECT_EQ(c.histories[i].final_state, a.histories[i].final_state);
  }
}

TEST(ScheduleExplorerTest, SingleNodeRandomWalks) {
  ScheduleSeed base;
  base.scenario = ScenarioKind::kSingleNode;
  base.seed = 1000;
  ScheduleExplorer explorer(base);
  const ExplorationResult r = explorer.ExploreRandom(Budget(3000));
  EXPECT_EQ(r.schedules, Budget(3000));
  EXPECT_EQ(r.failures, 0u) << r.first_failure_report;
}

TEST(ScheduleExplorerTest, SingleNodeWithConstraintRandomWalks) {
  ScheduleSeed base;
  base.scenario = ScenarioKind::kSingleNode;
  base.with_constraint = true;
  base.seed = 5000;
  ScheduleExplorer explorer(base);
  const ExplorationResult r = explorer.ExploreRandom(Budget(1500));
  EXPECT_EQ(r.schedules, Budget(1500));
  EXPECT_EQ(r.failures, 0u) << r.first_failure_report;
}

TEST(ScheduleExplorerTest, ShardedTwoPcRandomWalks) {
  ScheduleSeed base;
  base.scenario = ScenarioKind::kShardedTwoPc;
  base.seed = 2000;
  ScheduleExplorer explorer(base);
  const ExplorationResult r = explorer.ExploreRandom(Budget(3000));
  EXPECT_EQ(r.schedules, Budget(3000));
  EXPECT_EQ(r.failures, 0u) << r.first_failure_report;
}

TEST(ScheduleExplorerTest, FailoverRandomWalks) {
  ScheduleSeed base;
  base.scenario = ScenarioKind::kFailover;
  base.seed = 3000;
  ScheduleExplorer explorer(base);
  const ExplorationResult r = explorer.ExploreRandom(Budget(2000));
  EXPECT_EQ(r.schedules, Budget(2000));
  EXPECT_EQ(r.failures, 0u) << r.first_failure_report;
}

TEST(ScheduleExplorerTest, ExhaustiveEnumerationSingleNode) {
  // Every decision vector in {0,1,2}^6 — the schedule prefix steers the
  // most divergent part of a run; the tail pads with 0.
  ScheduleSeed base;
  base.scenario = ScenarioKind::kSingleNode;
  ScheduleExplorer explorer(base);
  const ExplorationResult r = explorer.ExploreExhaustive(6, 3);
  EXPECT_EQ(r.schedules, 729u);
  EXPECT_EQ(r.failures, 0u) << r.first_failure_report;
}

TEST(ScheduleExplorerTest, ExhaustiveEnumerationShardedTwoPc) {
  ScheduleSeed base;
  base.scenario = ScenarioKind::kShardedTwoPc;
  ScheduleExplorer explorer(base);
  const ExplorationResult r = explorer.ExploreExhaustive(5, 3);
  EXPECT_EQ(r.schedules, 243u);
  EXPECT_EQ(r.failures, 0u) << r.first_failure_report;
}

// The workload layer surfaces histories too: a Sec. VI-B experiment run
// (simulator-driven sessions, disconnections, waits) records a History
// that the checker certifies — including under a perturbed same-timestamp
// tie-break order, which changes the interleaving but must not change
// serializability.
TEST(WorkloadHistoryTest, ExperimentHistoriesAreSerializable) {
  workload::GtmExperimentSpec spec;
  spec.num_txns = 200;
  spec.num_objects = 3;
  spec.beta = 0.2;
  spec.seed = 99;
  spec.history_capacity = 1 << 16;

  const workload::ExperimentResult fifo = workload::RunGtmExperiment(spec);
  ASSERT_TRUE(fifo.history.complete);
  const CheckReport fifo_report = CheckHistory(fifo.history);
  EXPECT_TRUE(fifo_report.ok()) << fifo_report.ToString();
  EXPECT_GT(fifo_report.committed_txns, 0u);

  // Perturb event ordering among same-timestamp ties.
  auto tie_rng = std::make_shared<Rng>(7);
  spec.tie_breaker = [tie_rng](size_t n) {
    return static_cast<size_t>(tie_rng->NextBounded(n));
  };
  const workload::ExperimentResult shuffled =
      workload::RunGtmExperiment(spec);
  ASSERT_TRUE(shuffled.history.complete);
  const CheckReport shuffled_report = CheckHistory(shuffled.history);
  EXPECT_TRUE(shuffled_report.ok()) << shuffled_report.ToString();
  EXPECT_GT(shuffled_report.committed_txns, 0u);
}

}  // namespace
}  // namespace preserial::check
