// ReplicaService under real threads — the tsan target for the concurrent
// ship/apply/promote path. Client threads drive *Once transactions through
// a primary that a monitor thread kills and fails over mid-storm, while a
// housekeeping thread pumps replication the whole time. Clients retry
// through the dead-primary window exactly like the simulated sessions do.

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "replica/service.h"
#include "test_util.h"

namespace preserial::replica {
namespace {

using semantics::Operation;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr int kClients = 4;
constexpr int kTxnsPerClient = 50;
constexpr int64_t kInitialQty = 1000000;
// Every retry loop is bounded so a regression fails the test instead of
// hanging it.
constexpr int kMaxSpins = 2000000;

void Bootstrap(ReplicaService& service) {
  Schema schema = Schema::Create(
                      {
                          ColumnDef{"id", ValueType::kInt64, false},
                          ColumnDef{"qty", ValueType::kInt64, false},
                      },
                      0)
                      .value();
  ASSERT_TRUE(service.CreateTable("obj", std::move(schema)).ok());
  ASSERT_TRUE(
      service.InsertRow("obj", Row({Value::Int(0), Value::Int(kInitialQty)}))
          .ok());
  ASSERT_TRUE(service.RegisterObject("X", "obj", Value::Int(0), {1}).ok());
}

// One client session: Begin (retried while the primary is dead), one
// subtract and a commit, each as an idempotent *Once request retried
// across kUnavailable replies. Returns true iff the commit was
// acknowledged.
bool RunOneTxn(ReplicaService* service) {
  TxnId t = kInvalidTxnId;
  for (int spin = 0; t == kInvalidTxnId && spin < kMaxSpins; ++spin) {
    t = service->Begin();
    if (t == kInvalidTxnId) std::this_thread::yield();
  }
  if (t == kInvalidTxnId) return false;

  Status s;
  for (int spin = 0; spin < kMaxSpins; ++spin) {
    s = service->InvokeOnce(t, 1, "X", 0, Operation::Sub(Value::Int(1)));
    if (s.code() != StatusCode::kUnavailable) break;
    std::this_thread::yield();
  }
  // The transaction can vanish in an async failover; the client gives up
  // on it and the conservation check accounts for the asymmetry.
  if (!s.ok()) return false;

  for (int spin = 0; spin < kMaxSpins; ++spin) {
    s = service->CommitOnce(t, 2);
    if (s.code() != StatusCode::kUnavailable) break;
    std::this_thread::yield();
  }
  return s.ok();
}

// Runs the full storm: clients + pump thread + a monitor that kills the
// primary mid-run and promotes a backup. Returns acknowledged commits.
int64_t RunStorm(ReplicaService* service) {
  std::atomic<int64_t> successes{0};
  std::atomic<bool> stop{false};

  std::thread pump([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)service->Pump();
      std::this_thread::yield();
    }
  });
  std::thread monitor([&] {
    // Kill mid-run: wait for the storm to have real work acknowledged
    // instead of guessing a startup delay.
    (void)testutil::WaitUntil([&] { return successes.load() > 0; });
    service->KillPrimary();
    // Detection delay: the dead-primary window the clients must ride out.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Result<PromotionReport> rep = service->Promote();
    EXPECT_TRUE(rep.ok()) << rep.status().ToString();
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kTxnsPerClient; ++i) {
        if (RunOneTxn(service)) successes.fetch_add(1);
      }
    });
  }
  for (std::thread& th : clients) th.join();
  monitor.join();
  stop.store(true);
  pump.join();
  return successes.load();
}

int64_t Consumed(ReplicaService& service) {
  return kInitialQty - service.group()
                           ->primary_db()
                           ->GetTable("obj")
                           .value()
                           ->GetColumnByKey(Value::Int(0), 1)
                           .value()
                           .as_int();
}

TEST(ReplicaServiceTest, SyncStormFailsOverWithExactConservation) {
  ReplicaOptions opts;
  opts.num_backups = 2;
  ReplicaService service(gtm::GtmOptions{}, opts, /*ship_seed=*/0x7a11ULL);
  Bootstrap(service);

  const int64_t successes = RunStorm(&service);

  EXPECT_EQ(service.Epoch(), 2u);
  EXPECT_EQ(service.ReplicationLag(), 0u);
  EXPECT_GT(successes, 0);
  // Sync shipping: every acknowledged commit survived the promotion and
  // drained exactly one unit — no half-commits, no lost acks.
  EXPECT_EQ(Consumed(service), successes);
  ReplicatedGtm* group = service.group();
  EXPECT_TRUE(group->primary_gtm()->CheckInvariants().ok());
  EXPECT_EQ(group->primary_gtm()->metrics().counters().failovers_total, 1);
  // The surviving backup converged to the promoted primary's log.
  for (size_t i = 0; i < group->num_nodes(); ++i) {
    if (!group->node(i)->alive()) continue;
    EXPECT_EQ(group->node(i)->last_applied(), group->log().last_lsn());
    EXPECT_TRUE(group->node(i)->gtm()->CheckInvariants().ok());
  }
}

TEST(ReplicaServiceTest, AsyncStormStaysInternallyConsistent) {
  ReplicaOptions opts;
  opts.num_backups = 2;
  opts.ship.mode = ShipMode::kAsync;
  opts.ship.window = 8;
  ReplicaService service(gtm::GtmOptions{}, opts, /*ship_seed=*/0xdeafULL);
  Bootstrap(service);

  const int64_t successes = RunStorm(&service);

  EXPECT_EQ(service.Epoch(), 2u);
  EXPECT_GT(successes, 0);
  // Async shipping can lose acknowledged commits at failover, so the
  // promoted state may trail the clients' view — but it must never exceed
  // it, and it must be internally consistent (each surviving commit
  // drained exactly once).
  EXPECT_LE(Consumed(service), successes);
  ReplicatedGtm* group = service.group();
  EXPECT_TRUE(group->primary_gtm()->CheckInvariants().ok());
  // Drain whatever the pump hadn't shipped when the storm ended.
  while (service.ReplicationLag() > 0) ASSERT_TRUE(service.Pump().ok());
  for (size_t i = 0; i < group->num_nodes(); ++i) {
    if (!group->node(i)->alive()) continue;
    EXPECT_EQ(group->node(i)->last_applied(), group->log().last_lsn());
    EXPECT_TRUE(group->node(i)->gtm()->CheckInvariants().ok());
  }
}

}  // namespace
}  // namespace preserial::replica
