#include "storage/recovery.h"

#include <memory>

#include <gtest/gtest.h>

#include "storage/database.h"

namespace preserial::storage {
namespace {

Schema CounterSchema() {
  return Schema::Create(
             {
                 ColumnDef{"id", ValueType::kInt64, false},
                 ColumnDef{"qty", ValueType::kInt64, false},
             },
             0)
      .value();
}

TEST(ReplayWalTest, AppliesOnlyCommittedTransactions) {
  MemoryWalStorage storage;
  WalWriter writer(&storage);
  ASSERT_TRUE(writer.LogCreateTable(kSystemTxnId, "t", CounterSchema()).ok());
  // Txn 1 commits.
  ASSERT_TRUE(writer.LogBegin(1).ok());
  ASSERT_TRUE(
      writer.LogInsert(1, "t", Row({Value::Int(1), Value::Int(10)})).ok());
  ASSERT_TRUE(writer.LogCommit(1).ok());
  // Txn 2 aborts.
  ASSERT_TRUE(writer.LogBegin(2).ok());
  ASSERT_TRUE(
      writer.LogInsert(2, "t", Row({Value::Int(2), Value::Int(20)})).ok());
  ASSERT_TRUE(writer.LogAbort(2).ok());
  // Txn 3 never finishes (in flight at crash).
  ASSERT_TRUE(writer.LogBegin(3).ok());
  ASSERT_TRUE(
      writer.LogInsert(3, "t", Row({Value::Int(3), Value::Int(30)})).ok());

  WalScanResult scan = ScanWal(storage.ReadAll().value());
  ASSERT_TRUE(scan.status.ok());
  Catalog catalog;
  Result<RecoveryStats> stats = ReplayWal(scan.records, &catalog);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().txns_committed, 1u);
  EXPECT_EQ(stats.value().txns_discarded, 2u);

  Table* t = catalog.GetTable("t").value();
  EXPECT_EQ(t->row_count(), 1u);
  EXPECT_TRUE(t->GetByKey(Value::Int(1)).ok());
  EXPECT_FALSE(t->GetByKey(Value::Int(2)).ok());
  EXPECT_FALSE(t->GetByKey(Value::Int(3)).ok());
}

TEST(ReplayWalTest, UpdatesAndDeletesReplayInLogOrder) {
  MemoryWalStorage storage;
  WalWriter writer(&storage);
  ASSERT_TRUE(writer.LogCreateTable(kSystemTxnId, "t", CounterSchema()).ok());
  ASSERT_TRUE(writer.LogBegin(1).ok());
  ASSERT_TRUE(
      writer.LogInsert(1, "t", Row({Value::Int(1), Value::Int(10)})).ok());
  ASSERT_TRUE(
      writer.LogInsert(1, "t", Row({Value::Int(2), Value::Int(20)})).ok());
  ASSERT_TRUE(writer
                  .LogUpdate(1, "t", Value::Int(1),
                             Row({Value::Int(1), Value::Int(11)}))
                  .ok());
  ASSERT_TRUE(writer.LogDelete(1, "t", Value::Int(2)).ok());
  ASSERT_TRUE(writer.LogCommit(1).ok());

  Catalog catalog;
  WalScanResult scan = ScanWal(storage.ReadAll().value());
  ASSERT_TRUE(ReplayWal(scan.records, &catalog).ok());
  Table* t = catalog.GetTable("t").value();
  EXPECT_EQ(t->row_count(), 1u);
  EXPECT_EQ(t->GetColumnByKey(Value::Int(1), 1).value(), Value::Int(11));
}

TEST(ReplayWalTest, ConstraintsAreRestored) {
  MemoryWalStorage storage;
  WalWriter writer(&storage);
  ASSERT_TRUE(writer.LogCreateTable(kSystemTxnId, "t", CounterSchema()).ok());
  ASSERT_TRUE(writer
                  .LogAddConstraint(
                      kSystemTxnId, "t",
                      CheckConstraint("nonneg", 1, CompareOp::kGe,
                                      Value::Int(0)))
                  .ok());
  Catalog catalog;
  WalScanResult scan = ScanWal(storage.ReadAll().value());
  ASSERT_TRUE(ReplayWal(scan.records, &catalog).ok());
  Table* t = catalog.GetTable("t").value();
  ASSERT_EQ(t->constraints().size(), 1u);
  EXPECT_EQ(t->Insert(Row({Value::Int(1), Value::Int(-1)})).status().code(),
            StatusCode::kConstraintViolation);
}

class DatabaseRecoveryTest : public ::testing::Test {
 protected:
  // Builds a database over `storage` (not owned), runs `mutate`, and
  // returns the log bytes for a fresh reopen.
  std::string BuildAndCapture(
      const std::function<void(Database&)>& mutate) {
    auto storage = std::make_unique<MemoryWalStorage>();
    MemoryWalStorage* raw = storage.get();
    Database db(std::move(storage));
    EXPECT_TRUE(db.Open().ok());
    mutate(db);
    return raw->ReadAll().value();
  }

  std::unique_ptr<Database> Reopen(const std::string& log,
                                   RecoveryStats* stats = nullptr) {
    auto storage = std::make_unique<MemoryWalStorage>();
    EXPECT_TRUE(storage->Reset(log).ok());
    auto db = std::make_unique<Database>(std::move(storage));
    Result<RecoveryStats> r = db->Open();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (stats != nullptr && r.ok()) *stats = r.value();
    return db;
  }
};

TEST_F(DatabaseRecoveryTest, AutoCommittedDmlSurvivesReopen) {
  const std::string log = BuildAndCapture([](Database& db) {
    ASSERT_TRUE(db.CreateTable("t", CounterSchema()).ok());
    ASSERT_TRUE(
        db.InsertRow("t", Row({Value::Int(1), Value::Int(10)})).ok());
    ASSERT_TRUE(db.UpdateRow("t", Value::Int(1),
                             Row({Value::Int(1), Value::Int(99)}))
                    .ok());
    ASSERT_TRUE(
        db.InsertRow("t", Row({Value::Int(2), Value::Int(20)})).ok());
    ASSERT_TRUE(db.DeleteRow("t", Value::Int(2)).ok());
  });
  std::unique_ptr<Database> db = Reopen(log);
  Table* t = db->GetTable("t").value();
  EXPECT_EQ(t->row_count(), 1u);
  EXPECT_EQ(t->GetColumnByKey(Value::Int(1), 1).value(), Value::Int(99));
}

TEST_F(DatabaseRecoveryTest, TxnIdsResumeAboveLog) {
  const std::string log = BuildAndCapture([](Database& db) {
    ASSERT_TRUE(db.CreateTable("t", CounterSchema()).ok());
    ASSERT_TRUE(db.InsertRow("t", Row({Value::Int(1), Value::Int(1)})).ok());
  });
  std::unique_ptr<Database> db = Reopen(log);
  // The auto-commit used txn id 1; the next id must be above it.
  EXPECT_GE(db->NextTxnId(), 2u);
}

TEST_F(DatabaseRecoveryTest, CheckpointCompactsAndPreservesState) {
  auto storage = std::make_unique<MemoryWalStorage>();
  MemoryWalStorage* raw = storage.get();
  Database db(std::move(storage));
  ASSERT_TRUE(db.Open().ok());
  ASSERT_TRUE(db.CreateTable("t", CounterSchema()).ok());
  ASSERT_TRUE(db.AddConstraint("t", CheckConstraint("nonneg", 1,
                                                    CompareOp::kGe,
                                                    Value::Int(0)))
                  .ok());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        db.InsertRow("t", Row({Value::Int(i), Value::Int(i)})).ok());
  }
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.UpdateRow("t", Value::Int(i),
                             Row({Value::Int(i), Value::Int(i * 2)}))
                    .ok());
  }
  const size_t before = raw->ReadAll().value().size();
  ASSERT_TRUE(db.Checkpoint().ok());
  const std::string snapshot = raw->ReadAll().value();
  EXPECT_LT(snapshot.size(), before);  // Updates collapsed into inserts.

  RecoveryStats stats;
  std::unique_ptr<Database> reopened = Reopen(snapshot, &stats);
  Table* t = reopened->GetTable("t").value();
  EXPECT_EQ(t->row_count(), 20u);
  EXPECT_EQ(t->GetColumnByKey(Value::Int(7), 1).value(), Value::Int(14));
  EXPECT_EQ(t->constraints().size(), 1u);
}

TEST_F(DatabaseRecoveryTest, TornTailTrimmedOnOpen) {
  auto storage = std::make_unique<MemoryWalStorage>();
  MemoryWalStorage* raw = storage.get();
  Database db(std::move(storage));
  ASSERT_TRUE(db.Open().ok());
  ASSERT_TRUE(db.CreateTable("t", CounterSchema()).ok());
  ASSERT_TRUE(db.InsertRow("t", Row({Value::Int(1), Value::Int(1)})).ok());
  std::string log = raw->ReadAll().value();
  log.resize(log.size() - 2);  // Torn final record.

  RecoveryStats stats;
  std::unique_ptr<Database> reopened = Reopen(log, &stats);
  // The table exists; the torn transaction's effects are gone.
  EXPECT_TRUE(reopened->GetTable("t").ok());
}

TEST_F(DatabaseRecoveryTest, DdlForIndexesAndDropsIsDurable) {
  const std::string log = BuildAndCapture([](Database& db) {
    ASSERT_TRUE(db.CreateTable("keep", CounterSchema()).ok());
    ASSERT_TRUE(db.CreateTable("gone", CounterSchema()).ok());
    ASSERT_TRUE(
        db.InsertRow("keep", Row({Value::Int(1), Value::Int(7)})).ok());
    ASSERT_TRUE(db.CreateIndex("keep", "by_qty", 1).ok());
    ASSERT_TRUE(db.CreateIndex("keep", "temp_idx", 0).ok());
    ASSERT_TRUE(db.DropIndex("keep", "temp_idx").ok());
    ASSERT_TRUE(db.DropTable("gone").ok());
  });
  std::unique_ptr<Database> db = Reopen(log);
  EXPECT_FALSE(db->catalog()->HasTable("gone"));
  Table* keep = db->GetTable("keep").value();
  EXPECT_TRUE(keep->HasIndexOn(1));
  EXPECT_FALSE(keep->HasIndexOn(0));
  // The rebuilt index serves queries over the recovered rows.
  int hits = 0;
  keep->ScanEqual(1, Value::Int(7), [&](const Value&, const Row&) {
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 1);
  EXPECT_TRUE(keep->CheckInvariants().ok());
}

TEST_F(DatabaseRecoveryTest, CheckpointPreservesIndexDdl) {
  auto storage = std::make_unique<MemoryWalStorage>();
  MemoryWalStorage* raw = storage.get();
  Database db(std::move(storage));
  ASSERT_TRUE(db.Open().ok());
  ASSERT_TRUE(db.CreateTable("t", CounterSchema()).ok());
  ASSERT_TRUE(db.InsertRow("t", Row({Value::Int(1), Value::Int(9)})).ok());
  ASSERT_TRUE(db.CreateIndex("t", "by_qty", 1).ok());
  ASSERT_TRUE(db.Checkpoint().ok());
  std::unique_ptr<Database> reopened = Reopen(raw->ReadAll().value());
  EXPECT_TRUE(reopened->GetTable("t").value()->HasIndexOn(1));
}

TEST_F(DatabaseRecoveryTest, MidLogCorruptionFailsOpenLoudly) {
  const std::string log = BuildAndCapture([](Database& db) {
    ASSERT_TRUE(db.CreateTable("t", CounterSchema()).ok());
    ASSERT_TRUE(db.InsertRow("t", Row({Value::Int(1), Value::Int(1)})).ok());
    ASSERT_TRUE(db.InsertRow("t", Row({Value::Int(2), Value::Int(2)})).ok());
  });
  // Flip a payload byte of the first record: a bad CRC in the log body is
  // real corruption, not a torn tail, and silently dropping the suffix
  // would resurrect deleted data. Open must refuse.
  std::string corrupted = log;
  corrupted[9] = static_cast<char>(corrupted[9] ^ 0xff);
  auto storage = std::make_unique<MemoryWalStorage>();
  ASSERT_TRUE(storage->Reset(corrupted).ok());
  Database db(std::move(storage));
  Result<RecoveryStats> opened = db.Open();
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST_F(DatabaseRecoveryTest, TornTailAfterCheckpointKeepsSnapshot) {
  auto storage = std::make_unique<MemoryWalStorage>();
  MemoryWalStorage* raw = storage.get();
  Database db(std::move(storage));
  ASSERT_TRUE(db.Open().ok());
  ASSERT_TRUE(db.CreateTable("t", CounterSchema()).ok());
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.InsertRow("t", Row({Value::Int(i), Value::Int(i)})).ok());
  }
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_TRUE(db.InsertRow("t", Row({Value::Int(5), Value::Int(5)})).ok());
  ASSERT_TRUE(db.InsertRow("t", Row({Value::Int(6), Value::Int(6)})).ok());
  std::string log = raw->ReadAll().value();
  log.resize(log.size() - 2);  // Crash mid-write of the last insert.

  // The torn suffix is trimmed; everything up to it — the checkpoint
  // snapshot plus the first post-checkpoint insert — survives.
  std::unique_ptr<Database> reopened = Reopen(log);
  Table* t = reopened->GetTable("t").value();
  EXPECT_EQ(t->row_count(), 6u);
  EXPECT_TRUE(t->GetColumnByKey(Value::Int(5), 1).ok());
  EXPECT_FALSE(t->GetColumnByKey(Value::Int(6), 1).ok());
  EXPECT_TRUE(t->CheckInvariants().ok());
}

TEST_F(DatabaseRecoveryTest, FreshDatabaseOpensEmpty) {
  Database db;
  Result<RecoveryStats> stats = db.Open();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records_scanned, 0u);
}

}  // namespace
}  // namespace preserial::storage
