#include "model/analytic.h"

#include <cmath>

#include <gtest/gtest.h>

namespace preserial::model {
namespace {

TEST(LogBinomialTest, SmallValuesExact) {
  EXPECT_NEAR(std::exp(LogBinomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(52, 5)), 2598960.0, 1.0);
}

TEST(LogBinomialTest, InvalidArgumentsAreMinusInfinity) {
  EXPECT_TRUE(std::isinf(LogBinomial(5, 6)));
  EXPECT_TRUE(std::isinf(LogBinomial(5, -1)));
  EXPECT_TRUE(std::isinf(LogBinomial(-2, 1)));
}

TEST(LogBinomialTest, LargeValuesStayFinite) {
  EXPECT_TRUE(std::isfinite(LogBinomial(1000000, 500000)));
}

TEST(TwoPlTimeTest, PaperEquationThree) {
  // tau(c) = tau_e (1 + c / (2n)).
  EXPECT_DOUBLE_EQ(TwoPlExecutionTime(1000, 0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(TwoPlExecutionTime(1000, 500, 1.0), 1.25);
  EXPECT_DOUBLE_EQ(TwoPlExecutionTime(1000, 1000, 1.0), 1.5);
  EXPECT_DOUBLE_EQ(TwoPlExecutionTime(100, 50, 2.0), 2.5);
}

TEST(TwoPlTimeTest, LinearInConflicts) {
  const double t0 = TwoPlExecutionTime(100, 10, 1.0);
  const double t1 = TwoPlExecutionTime(100, 20, 1.0);
  const double t2 = TwoPlExecutionTime(100, 30, 1.0);
  EXPECT_NEAR(t1 - t0, t2 - t1, 1e-12);
}

TEST(HypergeometricTest, SumsToOne) {
  const int64_t n = 100;
  for (int64_t i : {0L, 10L, 50L, 100L}) {
    for (int64_t c : {0L, 15L, 60L, 100L}) {
      double total = 0;
      for (int64_t k = 0; k <= std::min(i, c); ++k) {
        total += IncompatibleConflictProbability(n, i, c, k);
      }
      EXPECT_NEAR(total, 1.0, 1e-9) << "i=" << i << " c=" << c;
    }
  }
}

TEST(HypergeometricTest, MeanIsCiOverN) {
  const int64_t n = 200;
  const int64_t i = 60;
  const int64_t c = 50;
  double mean = 0;
  for (int64_t k = 0; k <= std::min(i, c); ++k) {
    mean += static_cast<double>(k) *
            IncompatibleConflictProbability(n, i, c, k);
  }
  EXPECT_NEAR(mean, static_cast<double>(c) * i / n, 1e-9);
}

TEST(HypergeometricTest, DegenerateCases) {
  // No incompatible ops: K = 0 surely.
  EXPECT_NEAR(IncompatibleConflictProbability(100, 0, 50, 0), 1.0, 1e-12);
  // Everything incompatible: K = c surely.
  EXPECT_NEAR(IncompatibleConflictProbability(100, 100, 50, 50), 1.0, 1e-9);
  EXPECT_NEAR(IncompatibleConflictProbability(100, 100, 50, 49), 0.0, 1e-12);
}

TEST(OurTimeTest, MatchesClosedForm) {
  const double tau_e = 1.0;
  for (int64_t n : {50L, 200L, 1000L}) {
    for (int64_t c = 0; c <= n; c += n / 5) {
      for (int64_t i = 0; i <= n; i += n / 5) {
        EXPECT_NEAR(OurExecutionTime(n, c, i, tau_e),
                    OurExecutionTimeClosedForm(n, c, i, tau_e), 1e-9)
            << "n=" << n << " c=" << c << " i=" << i;
      }
    }
  }
}

TEST(OurTimeTest, PaperHeadlineFiftyPercentImprovement) {
  // Best case c = 100 %, i = 0: ours is tau_e while 2PL is 1.5 tau_e,
  // the paper's "theoretical time improvement of 50 %".
  const int64_t n = 1000;
  const double ours = OurExecutionTime(n, n, 0, 1.0);
  const double theirs = TwoPlExecutionTime(n, n, 1.0);
  EXPECT_DOUBLE_EQ(ours, 1.0);
  EXPECT_DOUBLE_EQ(theirs, 1.5);
  EXPECT_DOUBLE_EQ((theirs - ours) / ours, 0.5);
}

TEST(OurTimeTest, NeverWorseThanTwoPl) {
  const int64_t n = 300;
  for (int64_t c = 0; c <= n; c += 30) {
    for (int64_t i = 0; i <= n; i += 30) {
      EXPECT_LE(OurExecutionTime(n, c, i, 1.0) - 1e-12,
                TwoPlExecutionTime(n, c, 1.0))
          << "c=" << c << " i=" << i;
    }
  }
}

TEST(OurTimeTest, MonotoneInConflictsAndIncompatibilities) {
  const int64_t n = 400;
  double prev = 0;
  for (int64_t c = 0; c <= n; c += 40) {
    const double t = OurExecutionTime(n, c, n / 2, 1.0);
    EXPECT_GE(t + 1e-12, prev);
    prev = t;
  }
  prev = 0;
  for (int64_t i = 0; i <= n; i += 40) {
    const double t = OurExecutionTime(n, n / 2, i, 1.0);
    EXPECT_GE(t + 1e-12, prev);
    prev = t;
  }
}

TEST(OurTimeTest, EqualsTwoPlWhenEverythingIncompatible) {
  // i = n: every conflict is incompatible, E[K] = c, so the schemes match.
  const int64_t n = 250;
  for (int64_t c = 0; c <= n; c += 50) {
    EXPECT_NEAR(OurExecutionTime(n, c, n, 1.0), TwoPlExecutionTime(n, c, 1.0),
                1e-9);
  }
}

TEST(AbortModelTest, ProductOfProbabilities) {
  EXPECT_DOUBLE_EQ(SleeperAbortProbability(0.5, 0.4, 0.2), 0.04);
  EXPECT_DOUBLE_EQ(SleeperAbortProbability(0, 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(SleeperAbortProbability(1, 1, 1), 1.0);
}

TEST(AbortModelTest, ClampsOutOfRangeInputs) {
  EXPECT_DOUBLE_EQ(SleeperAbortProbability(2.0, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(SleeperAbortProbability(-1.0, 1.0, 1.0), 0.0);
}

TEST(AbortModelTest, MonotoneInEachFactor) {
  double prev = -1;
  for (double d = 0; d <= 1.0; d += 0.1) {
    const double p = SleeperAbortProbability(d, 0.6, 0.7);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

}  // namespace
}  // namespace preserial::model
