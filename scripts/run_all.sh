#!/usr/bin/env bash
# Builds everything, runs the test suite, every paper-experiment bench and
# every example. Outputs land in test_output.txt / bench_output.txt at the
# repo root (the same artifacts EXPERIMENTS.md quotes).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build -j "$(nproc)"

ctest --test-dir build -j "$(nproc)" 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "### $(basename "$b")"
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "--- examples ---"
for e in build/examples/quickstart build/examples/travel_agency \
         build/examples/mobile_disconnection build/examples/recovery_demo; do
  echo "### $(basename "$e")"
  "$e"
  echo
done
printf "SHOW TABLES;\n" | build/examples/sql_repl
