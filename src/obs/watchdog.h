#ifndef PRESERIAL_OBS_WATCHDOG_H_
#define PRESERIAL_OBS_WATCHDOG_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "gtm/gtm.h"
#include "obs/explain.h"

// Slow-transaction / long-sleep watchdog: polled against a Gtm, it trips
// once per (transaction, cause) and captures an Explain snapshot at the
// moment of the trip — the "why is this stuck" evidence that is gone by the
// time a post-mortem asks. Each trip also lands a kWatchdog event in the
// Gtm's TraceLog, so timelines show when thresholds fired.

namespace preserial::obs {

struct WatchdogOptions {
  // A live (non-terminal) transaction older than this is slow.
  Duration slow_txn_after = 30.0;
  // A Sleeping transaction parked longer than this has slept too long.
  Duration long_sleep_after = 60.0;
  // Retained reports (oldest dropped beyond this).
  size_t max_reports = 32;
};

struct WatchdogReport {
  TimePoint time = 0;
  TxnId txn = kInvalidTxnId;
  std::string cause;  // "slow-txn" or "long-sleep".
  GtmExplain snapshot;
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = {}) : options_(options) {}

  // Scans `g` for tripped thresholds at `now`. Emits at most one report per
  // (txn, cause); all trips of one scan share a single Explain snapshot.
  // Returns the number of new reports.
  size_t Observe(gtm::Gtm* g, TimePoint now);

  const std::vector<WatchdogReport>& reports() const { return reports_; }
  int64_t trips() const { return trips_; }
  void Clear();

 private:
  WatchdogOptions options_;
  std::set<std::pair<TxnId, std::string>> fired_;
  std::vector<WatchdogReport> reports_;
  int64_t trips_ = 0;
};

}  // namespace preserial::obs

#endif  // PRESERIAL_OBS_WATCHDOG_H_
