#include "obs/watchdog.h"

#include "common/strings.h"

namespace preserial::obs {

size_t Watchdog::Observe(gtm::Gtm* g, TimePoint now) {
  std::vector<std::pair<TxnId, std::string>> tripped;
  const GtmExplain ex = g->Explain();
  for (const TxnInfo& t : ex.txns) {
    if (t.state == gtm::TxnState::kSleeping) continue;  // Judged below.
    if (t.age >= options_.slow_txn_after) {
      tripped.emplace_back(t.txn, "slow-txn");
    }
  }
  for (const SleeperVerdict& v : ex.sleepers) {
    if (v.asleep_for >= options_.long_sleep_after) {
      tripped.emplace_back(v.txn, "long-sleep");
    }
  }

  size_t emitted = 0;
  for (auto& [txn, cause] : tripped) {
    if (!fired_.insert({txn, cause}).second) continue;  // Already reported.
    ++trips_;
    ++emitted;
    g->trace()->Record(now, gtm::TraceEventKind::kWatchdog, txn, "", cause);
    reports_.push_back(WatchdogReport{now, txn, cause, ex});
    if (reports_.size() > options_.max_reports) {
      reports_.erase(reports_.begin());
    }
  }
  return emitted;
}

void Watchdog::Clear() {
  fired_.clear();
  reports_.clear();
  trips_ = 0;
}

}  // namespace preserial::obs
