#include "obs/explain.h"

#include "common/strings.h"

namespace preserial::obs {

namespace {

std::string RenderHolder(const HolderInfo& h) {
  std::string s = StrFormat("txn %llu", static_cast<unsigned long long>(h.txn));
  if (h.committing) s += " [committing]";
  if (h.sleeping) s += " [sleeping]";
  s += " {";
  bool first = true;
  for (const auto& [member, cls] : h.ops) {
    if (!first) s += ", ";
    first = false;
    s += StrFormat("m%zu:%s", static_cast<size_t>(member), cls.c_str());
  }
  s += "}";
  return s;
}

}  // namespace

const SleeperVerdict* GtmExplain::VerdictFor(TxnId txn) const {
  for (const SleeperVerdict& v : sleepers) {
    if (v.txn == txn) return &v;
  }
  return nullptr;
}

std::string GtmExplain::ToString() const {
  std::string out = StrFormat("=== GTM explain @ %.3f", now);
  if (shard >= 0) out += StrFormat(" [shard %d]", shard);
  out += " ===\n";

  out += StrFormat("objects (%zu live):\n", objects.size());
  for (const ObjectInfo& o : objects) {
    out += StrFormat("  %s  (committed history retained: %zu)\n",
                     o.id.c_str(), o.committed_retained);
    for (const HolderInfo& h : o.holders) {
      out += "    holds   " + RenderHolder(h) + "\n";
    }
    for (const WaitInfo& w : o.waiters) {
      out += StrFormat(
          "    waits   txn %llu m%zu:%s since %.3f (%.3fs, prio %d)\n",
          static_cast<unsigned long long>(w.txn),
          static_cast<size_t>(w.member), w.op_class.c_str(), w.since,
          w.waited, w.priority);
    }
  }

  out += StrFormat("transactions (%zu live):\n", txns.size());
  for (const TxnInfo& t : txns) {
    std::string objs;
    for (const gtm::ObjectId& o : t.involved) {
      if (!objs.empty()) objs += ",";
      objs += o;
    }
    out += StrFormat(
        "  txn %-4llu %-10s prio %d age %.3fs waited %.3fs slept %.3fs "
        "ops %lld [%s]\n",
        static_cast<unsigned long long>(t.txn), gtm::TxnStateName(t.state),
        t.priority, t.age, t.total_wait_time, t.total_sleep_time,
        static_cast<long long>(t.ops_executed), objs.c_str());
  }

  out += StrFormat("waits-for edges (%zu):\n", wait_edges.size());
  for (const WaitEdge& e : wait_edges) {
    out += StrFormat("  txn %llu -> txn %llu on %s\n",
                     static_cast<unsigned long long>(e.waiter),
                     static_cast<unsigned long long>(e.holder),
                     e.object.c_str());
  }

  out += StrFormat("sleepers (%zu):\n", sleepers.size());
  for (const SleeperVerdict& v : sleepers) {
    out += StrFormat("  txn %llu asleep since %.3f (%.3fs): ",
                     static_cast<unsigned long long>(v.txn), v.sleep_since,
                     v.asleep_for);
    if (v.will_abort) {
      out += StrFormat("AWAKE WILL ABORT — %s\n", v.reason.c_str());
    } else {
      out += "awake would succeed\n";
    }
  }
  return out;
}

std::string ClusterExplain::ToString() const {
  std::string out =
      StrFormat("=== cluster explain @ %.3f: %zu shard(s) ===\n", now,
                shards.size());
  for (const GtmExplain& s : shards) out += s.ToString();
  return out;
}

}  // namespace preserial::obs
