#ifndef PRESERIAL_OBS_EXPORT_H_
#define PRESERIAL_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "gtm/metrics.h"
#include "gtm/trace.h"

// Exporters: turn TraceLog events and GtmMetrics snapshots into the three
// interchange formats the benches emit behind --obs-out (Chrome trace JSON,
// Prometheus text exposition, JSONL).

namespace preserial::obs {

// Merges the snapshots of several TraceLogs (client, router, shards,
// replicas) into one stream ordered by event time. The sort is stable, so
// each log's internal order is preserved across equal timestamps.
std::vector<gtm::TraceEvent> MergeEvents(
    const std::vector<const gtm::TraceLog*>& logs);

// Chrome trace_event JSON ({"traceEvents":[...]}), loadable in Perfetto /
// about:tracing. Events render as thread-scoped instants: pid = shard (0
// for unsharded), tid = transaction id, ts in microseconds of virtual
// time; trace/span/parent ids travel in args.
std::string ToChromeTrace(const std::vector<gtm::TraceEvent>& events);

// One JSON object per event per line.
std::string ToJsonl(const std::vector<gtm::TraceEvent>& events);

// Prometheus text exposition of a metrics snapshot: every counter as
// `<prefix>_<field>_total`, the replication lag gauges as gauges, and the
// two latency histograms as summaries with p50/p90/p99 quantiles.
std::string ToPrometheus(const gtm::GtmMetrics::Snapshot& snapshot,
                         const std::string& prefix = "preserial");

}  // namespace preserial::obs

#endif  // PRESERIAL_OBS_EXPORT_H_
