#ifndef PRESERIAL_OBS_TIMELINE_H_
#define PRESERIAL_OBS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "gtm/trace.h"

// Causal-timeline reconstruction: given the merged event streams of every
// layer (client, router, shards, replicas), stitch the events of one trace
// id back into the life of a single global transaction.

namespace preserial::obs {

struct Timeline {
  uint64_t trace = 0;
  // Time-ordered (stable across layers at equal timestamps).
  std::vector<gtm::TraceEvent> events;

  std::vector<gtm::TraceEventKind> Kinds() const;
  bool Contains(gtm::TraceEventKind kind) const;
  // True when `kinds` occurs as a (not necessarily contiguous) subsequence
  // of the timeline — the natural way to assert causal order.
  bool HasSequence(const std::vector<gtm::TraceEventKind>& kinds) const;

  // Multi-line rendering: relative time, shard lane, kind, object, detail.
  std::string ToString() const;
};

// Events of `trace_id` from an already-merged stream (see
// obs::MergeEvents), preserving order.
Timeline BuildTimeline(const std::vector<gtm::TraceEvent>& merged,
                       uint64_t trace_id);

// The trace id of the span that recorded `txn`'s events; 0 when the
// transaction never appears or was recorded untraced. When a transaction's
// events carry several trace ids (e.g. the same shard-local TxnId reused
// across traces), the first traced occurrence wins.
uint64_t TraceOfTxn(const std::vector<gtm::TraceEvent>& merged, TxnId txn);

}  // namespace preserial::obs

#endif  // PRESERIAL_OBS_TIMELINE_H_
