#include "obs/export.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace preserial::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

// The shared JSON body of one event (Chrome args / JSONL fields).
std::string EventFields(const gtm::TraceEvent& e) {
  return StrFormat(
      "\"object\":\"%s\",\"detail\":\"%s\",\"trace\":%llu,\"span\":%llu,"
      "\"parent\":%llu,\"shard\":%d",
      JsonEscape(e.object).c_str(), JsonEscape(e.detail).c_str(),
      static_cast<unsigned long long>(e.trace),
      static_cast<unsigned long long>(e.span),
      static_cast<unsigned long long>(e.parent), e.shard);
}

void AppendCounter(std::string* out, const std::string& prefix,
                   const char* name, int64_t value) {
  *out += StrFormat("# TYPE %s_%s counter\n%s_%s %lld\n", prefix.c_str(),
                    name, prefix.c_str(), name, static_cast<long long>(value));
}

void AppendGauge(std::string* out, const std::string& prefix, const char* name,
                 int64_t value) {
  *out += StrFormat("# TYPE %s_%s gauge\n%s_%s %lld\n", prefix.c_str(), name,
                    prefix.c_str(), name, static_cast<long long>(value));
}

void AppendSummary(std::string* out, const std::string& prefix,
                   const char* name, const Histogram& h) {
  const std::string metric = prefix + "_" + name;
  *out += StrFormat("# TYPE %s summary\n", metric.c_str());
  *out += StrFormat("%s{quantile=\"0.5\"} %.6f\n", metric.c_str(), h.p50());
  *out += StrFormat("%s{quantile=\"0.9\"} %.6f\n", metric.c_str(), h.p90());
  *out += StrFormat("%s{quantile=\"0.99\"} %.6f\n", metric.c_str(), h.p99());
  *out += StrFormat("%s_sum %.6f\n", metric.c_str(),
                    h.mean() * static_cast<double>(h.count()));
  *out += StrFormat("%s_count %lld\n", metric.c_str(),
                    static_cast<long long>(h.count()));
}

}  // namespace

std::vector<gtm::TraceEvent> MergeEvents(
    const std::vector<const gtm::TraceLog*>& logs) {
  std::vector<gtm::TraceEvent> out;
  for (const gtm::TraceLog* log : logs) {
    if (log == nullptr) continue;
    for (gtm::TraceEvent& e : log->Snapshot()) out.push_back(std::move(e));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const gtm::TraceEvent& a, const gtm::TraceEvent& b) {
                     return a.time < b.time;
                   });
  return out;
}

std::string ToChromeTrace(const std::vector<gtm::TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Name each shard's process lane so Perfetto shows "shard N" not "pid N".
  std::set<int> shards;
  for (const gtm::TraceEvent& e : events) shards.insert(std::max(e.shard, 0));
  for (int s : shards) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
        "\"args\":{\"name\":\"shard %d\"}}",
        s, s);
  }
  for (const gtm::TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,"
        "\"tid\":%llu,\"args\":{%s}}",
        gtm::TraceEventKindName(e.kind), e.time * 1e6, std::max(e.shard, 0),
        static_cast<unsigned long long>(e.txn), EventFields(e).c_str());
  }
  out += "]}";
  return out;
}

std::string ToJsonl(const std::vector<gtm::TraceEvent>& events) {
  std::string out;
  for (const gtm::TraceEvent& e : events) {
    out += StrFormat("{\"time\":%.6f,\"kind\":\"%s\",\"txn\":%llu,%s}\n",
                     e.time, gtm::TraceEventKindName(e.kind),
                     static_cast<unsigned long long>(e.txn),
                     EventFields(e).c_str());
  }
  return out;
}

std::string ToPrometheus(const gtm::GtmMetrics::Snapshot& snapshot,
                         const std::string& prefix) {
  const gtm::GtmCounters& c = snapshot.counters;
  std::string out;
  AppendCounter(&out, prefix, "txns_begun_total", c.begun);
  AppendCounter(&out, prefix, "txns_committed_total", c.committed);
  AppendCounter(&out, prefix, "txns_aborted_total", c.aborted);
  AppendCounter(&out, prefix, "invocations_total", c.invocations);
  AppendCounter(&out, prefix, "granted_immediately_total",
                c.granted_immediately);
  AppendCounter(&out, prefix, "shared_grants_total", c.shared_grants);
  AppendCounter(&out, prefix, "waits_total", c.waits);
  AppendCounter(&out, prefix, "sleeps_total", c.sleeps);
  AppendCounter(&out, prefix, "awakes_total", c.awakes);
  AppendCounter(&out, prefix, "awake_aborts_total", c.awake_aborts);
  AppendCounter(&out, prefix, "deadlock_refusals_total", c.deadlock_refusals);
  AppendCounter(&out, prefix, "deadlock_aborts_total", c.deadlock_aborts);
  AppendCounter(&out, prefix, "timeout_aborts_total", c.timeout_aborts);
  AppendCounter(&out, prefix, "constraint_aborts_total", c.constraint_aborts);
  AppendCounter(&out, prefix, "disconnect_aborts_total", c.disconnect_aborts);
  AppendCounter(&out, prefix, "user_aborts_total", c.user_aborts);
  AppendCounter(&out, prefix, "prepares_total", c.prepares);
  AppendCounter(&out, prefix, "prepared_aborts_total", c.prepared_aborts);
  AppendCounter(&out, prefix, "reconciliations_total", c.reconciliations);
  AppendCounter(&out, prefix, "sst_executed_total", c.sst_executed);
  AppendCounter(&out, prefix, "sst_failed_total", c.sst_failed);
  AppendCounter(&out, prefix, "sst_retries_total", c.sst_retries);
  AppendCounter(&out, prefix, "sst_cells_written_total", c.sst_cells_written);
  AppendCounter(&out, prefix, "duplicates_suppressed_total",
                c.duplicates_suppressed);
  AppendCounter(&out, prefix, "starvation_denials_total", c.starvation_denials);
  AppendCounter(&out, prefix, "admission_denials_total", c.admission_denials);
  AppendCounter(&out, prefix, "failovers_total", c.failovers_total);
  AppendGauge(&out, prefix, "replication_lag_records",
              c.replication_lag_records);
  AppendGauge(&out, prefix, "replication_lag_max_records",
              c.replication_lag_max_records);
  AppendSummary(&out, prefix, "execution_time_seconds",
                snapshot.execution_time);
  AppendSummary(&out, prefix, "wait_time_seconds", snapshot.wait_time);
  return out;
}

}  // namespace preserial::obs
