#ifndef PRESERIAL_OBS_TRACE_CONTEXT_H_
#define PRESERIAL_OBS_TRACE_CONTEXT_H_

#include <atomic>
#include <cstdint>

// Correlation layer of the observability subsystem. Header-only on purpose:
// gtm/trace.cc stamps events from the ambient context, and preserial_gtm
// must not link against preserial_obs (which links the whole cluster stack).

namespace preserial::obs {

// Identity of one unit of causally related work. One trace per global
// transaction (minted at Begin by the session layer); one span per
// request/hop inside it (client attempt, router fan-out leg, 2PC phase).
// trace == 0 means "untraced": events recorded outside any SpanScope keep
// zero ids and still land in the TraceLog, they just don't stitch.
struct TraceContext {
  uint64_t trace = 0;
  uint64_t span = 0;
  uint64_t parent = 0;  // Span id of the parent span; 0 = root span.

  bool valid() const { return trace != 0; }
};

namespace internal {
inline std::atomic<uint64_t> g_next_trace_id{1};
inline std::atomic<uint64_t> g_next_span_id{1};

inline TraceContext& Ambient() {
  thread_local TraceContext ctx;
  return ctx;
}
}  // namespace internal

inline uint64_t NextTraceId() {
  return internal::g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}
inline uint64_t NextSpanId() {
  return internal::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

// Restarts both id sequences at 1. Tests only (deterministic ids).
inline void ResetTraceIdsForTest() {
  internal::g_next_trace_id.store(1, std::memory_order_relaxed);
  internal::g_next_span_id.store(1, std::memory_order_relaxed);
}

// The calling thread's ambient context — what TraceLog::Record stamps.
inline const TraceContext& CurrentContext() { return internal::Ambient(); }

// Mints a fresh trace with its root span.
inline TraceContext NewRootContext() {
  return TraceContext{NextTraceId(), NextSpanId(), 0};
}

// A child span inside the same trace. Propagating an invalid context stays
// invalid, so untraced paths never allocate ids.
inline TraceContext ChildOf(const TraceContext& parent) {
  if (!parent.valid()) return TraceContext{};
  return TraceContext{parent.trace, NextSpanId(), parent.span};
}

// RAII: installs `ctx` as the thread's ambient context for its lifetime.
// Scopes nest; destruction restores whatever was ambient before.
class SpanScope {
 public:
  explicit SpanScope(const TraceContext& ctx) : saved_(internal::Ambient()) {
    internal::Ambient() = ctx;
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() { internal::Ambient() = saved_; }

 private:
  TraceContext saved_;
};

}  // namespace preserial::obs

#endif  // PRESERIAL_OBS_TRACE_CONTEXT_H_
