#ifndef PRESERIAL_OBS_EXPLAIN_H_
#define PRESERIAL_OBS_EXPLAIN_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "gtm/managed_txn.h"
#include "gtm/txn_state.h"

// Introspection snapshots ("EXPLAIN the middleware"): plain-data dumps of a
// Gtm's live admission state, produced by Gtm::Explain() /
// GtmCluster::Explain(). The structs are header-only so the gtm and cluster
// layers can fill them without linking preserial_obs; the renderers live in
// obs/explain.cc.

namespace preserial::obs {

// One grant on an object: a member of its sharing set (X_pending entry) or
// a parked phase-1 voter (X_committing entry).
struct HolderInfo {
  TxnId txn = kInvalidTxnId;
  bool sleeping = false;    // In X_sleeping: holds copies, blocks nobody.
  bool committing = false;  // Prepared/committing rather than pending.
  // member -> operation class name, the ops this holder exercises.
  std::map<semantics::MemberId, std::string> ops;
};

// One queued invocation (X_waiting entry), FIFO position preserved.
struct WaitInfo {
  TxnId txn = kInvalidTxnId;
  semantics::MemberId member = 0;
  std::string op_class;
  TimePoint since = 0;  // Arrival (the paper's A_t_wait for this object).
  Duration waited = 0;
  int priority = 0;
};

// Live admission state of one object: its sharing set, wait queue, and the
// committed history retained for the Algorithm 9 staleness check.
struct ObjectInfo {
  gtm::ObjectId id;
  std::vector<HolderInfo> holders;
  std::vector<WaitInfo> waiters;  // Queue order.
  std::vector<TxnId> sleeping;
  size_t committed_retained = 0;  // X_committed entries kept (X_tc history).
};

// One live transaction.
struct TxnInfo {
  TxnId txn = kInvalidTxnId;
  gtm::TxnState state = gtm::TxnState::kActive;
  int priority = 0;
  TimePoint begin_time = 0;
  Duration age = 0;
  Duration total_wait_time = 0;
  Duration total_sleep_time = 0;
  int64_t ops_executed = 0;
  std::vector<gtm::ObjectId> involved;
};

// One edge of the waits-for graph, with the object that induces it.
struct WaitEdge {
  TxnId waiter = kInvalidTxnId;
  TxnId holder = kInvalidTxnId;
  gtm::ObjectId object;
};

// The Algorithm 9 verdict for one Sleeping transaction, evaluated *now*
// without waking it: would Awake() abort, and why? A verdict can flip back
// to "survives" if the blocker is a live holder that later aborts, but a
// committed blocker (X_tc > A_t_sleep) is permanent.
struct SleeperVerdict {
  TxnId txn = kInvalidTxnId;
  TimePoint sleep_since = 0;  // A_t_sleep.
  Duration asleep_for = 0;
  bool will_abort = false;
  // Set when will_abort: where and who.
  gtm::ObjectId object;
  TxnId blocker = kInvalidTxnId;
  // X_tc of a committed blocker; 0 when the blocker is a live holder.
  TimePoint blocker_commit_time = 0;
  std::string reason;
};

// Full snapshot of one Gtm (one shard of a cluster, or a standalone GTM).
struct GtmExplain {
  TimePoint now = 0;
  int shard = -1;  // From the Gtm's TraceLog default shard; -1 = unsharded.
  std::vector<ObjectInfo> objects;  // Only objects with live state.
  std::vector<TxnInfo> txns;        // Only live transactions.
  std::vector<WaitEdge> wait_edges;
  std::vector<SleeperVerdict> sleepers;

  // Verdict lookup; null when `txn` is not Sleeping here.
  const SleeperVerdict* VerdictFor(TxnId txn) const;

  // Multi-line human-readable rendering.
  std::string ToString() const;
};

// Cluster-wide snapshot: one GtmExplain per shard (primary Gtm of each
// replica group when replicated), shard ids stamped.
struct ClusterExplain {
  TimePoint now = 0;
  std::vector<GtmExplain> shards;

  std::string ToString() const;
};

}  // namespace preserial::obs

#endif  // PRESERIAL_OBS_EXPLAIN_H_
