#include "obs/timeline.h"

#include "common/strings.h"

namespace preserial::obs {

std::vector<gtm::TraceEventKind> Timeline::Kinds() const {
  std::vector<gtm::TraceEventKind> out;
  out.reserve(events.size());
  for (const gtm::TraceEvent& e : events) out.push_back(e.kind);
  return out;
}

bool Timeline::Contains(gtm::TraceEventKind kind) const {
  for (const gtm::TraceEvent& e : events) {
    if (e.kind == kind) return true;
  }
  return false;
}

bool Timeline::HasSequence(
    const std::vector<gtm::TraceEventKind>& kinds) const {
  size_t next = 0;
  for (const gtm::TraceEvent& e : events) {
    if (next < kinds.size() && e.kind == kinds[next]) ++next;
  }
  return next == kinds.size();
}

std::string Timeline::ToString() const {
  std::string out = StrFormat(
      "=== trace %llu: %zu event(s) ===\n",
      static_cast<unsigned long long>(trace), events.size());
  const TimePoint t0 = events.empty() ? 0 : events.front().time;
  for (const gtm::TraceEvent& e : events) {
    std::string lane = e.shard >= 0 ? StrFormat("shard %d", e.shard) : "client";
    out += StrFormat("  +%8.3fs  %-8s  %-20s txn %-4llu", e.time - t0,
                     lane.c_str(), gtm::TraceEventKindName(e.kind),
                     static_cast<unsigned long long>(e.txn));
    if (!e.object.empty()) out += " " + e.object;
    if (!e.detail.empty()) out += " (" + e.detail + ")";
    out += "\n";
  }
  return out;
}

Timeline BuildTimeline(const std::vector<gtm::TraceEvent>& merged,
                       uint64_t trace_id) {
  Timeline tl;
  tl.trace = trace_id;
  for (const gtm::TraceEvent& e : merged) {
    if (e.trace == trace_id) tl.events.push_back(e);
  }
  return tl;
}

uint64_t TraceOfTxn(const std::vector<gtm::TraceEvent>& merged, TxnId txn) {
  for (const gtm::TraceEvent& e : merged) {
    if (e.txn == txn && e.trace != 0) return e.trace;
  }
  return 0;
}

}  // namespace preserial::obs
