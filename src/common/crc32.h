#ifndef PRESERIAL_COMMON_CRC32_H_
#define PRESERIAL_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace preserial {

// CRC-32 (IEEE 802.3 polynomial, reflected). Used to detect torn or
// corrupted write-ahead-log records during recovery.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);
inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace preserial

#endif  // PRESERIAL_COMMON_CRC32_H_
