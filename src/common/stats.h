#ifndef PRESERIAL_COMMON_STATS_H_
#define PRESERIAL_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace preserial {

// Streaming accumulator for scalar samples (Welford's algorithm for a
// numerically stable variance). Used by the experiment harnesses to report
// execution times and abort rates.
class RunningStat {
 public:
  RunningStat() = default;

  void Add(double x);
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  // Sample variance / stddev (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-boundary histogram with exact percentile queries over retained
// samples. Retains every sample (experiments here are <= a few hundred
// thousand observations), so percentiles are exact rather than estimated.
class Histogram {
 public:
  void Add(double x);
  // Folds every retained sample of `other` into this histogram (exact, since
  // both sides keep their raw samples).
  void MergeFrom(const Histogram& other);

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  double mean() const;
  // q in [0, 1]; linear interpolation between closest ranks. Returns 0 when
  // empty.
  double Percentile(double q) const;
  double p50() const { return Percentile(0.50); }
  double p90() const { return Percentile(0.90); }
  double p95() const { return Percentile(0.95); }
  double p99() const { return Percentile(0.99); }

  // One-line summary "n=... mean=... p50=... p90=... p95=... p99=... max=...".
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Ratio counter for event rates (aborts/started, conflicts/requests, ...).
class RateCounter {
 public:
  void AddHit() { ++hits_; ++total_; }
  void AddMiss() { ++total_; }
  void Add(bool hit) { hit ? AddHit() : AddMiss(); }

  int64_t hits() const { return hits_; }
  int64_t total() const { return total_; }
  // Fraction in [0,1]; 0 when no observations.
  double rate() const {
    return total_ > 0 ? static_cast<double>(hits_) / static_cast<double>(total_)
                      : 0.0;
  }
  double percent() const { return rate() * 100.0; }

 private:
  int64_t hits_ = 0;
  int64_t total_ = 0;
};

}  // namespace preserial

#endif  // PRESERIAL_COMMON_STATS_H_
