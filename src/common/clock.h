#ifndef PRESERIAL_COMMON_CLOCK_H_
#define PRESERIAL_COMMON_CLOCK_H_

#include <cstdint>

namespace preserial {

// Time is carried as double seconds. The GTM only compares and subtracts
// timestamps (commit time vs. sleep time, wait durations), so a scalar is
// sufficient and keeps simulated and wall-clock drivers interchangeable.
using TimePoint = double;
using Duration = double;

// Sentinel for "block forever". Callers compare through IsNoTimeout rather
// than against the literal so that any historically used huge sentinel
// (anything within an order of magnitude) still means "no timeout".
inline constexpr Duration kNoTimeout = 1e30;
inline constexpr bool IsNoTimeout(Duration d) { return d >= kNoTimeout / 10; }

// Abstract time source. The GTM and lock manager read time only through
// this interface, so the same code runs under the discrete-event simulator
// (virtual time) and in a live multithreaded service (wall-clock time).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;
};

// Wall-clock implementation (monotonic, seconds since first use).
class SystemClock : public Clock {
 public:
  SystemClock();
  TimePoint Now() const override;

 private:
  int64_t origin_ns_;
};

// Manually advanced clock for unit tests and for embedding in simulators.
class ManualClock : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0.0) : now_(start) {}

  TimePoint Now() const override { return now_; }
  void Advance(Duration d) { now_ += d; }
  void Set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_;
};

}  // namespace preserial

#endif  // PRESERIAL_COMMON_CLOCK_H_
