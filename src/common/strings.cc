#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace preserial {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string PadLeft(std::string_view s, size_t width) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), ' ');
  out.append(s);
  return out;
}

std::string PadRight(std::string_view s, size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace preserial
