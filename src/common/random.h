#ifndef PRESERIAL_COMMON_RANDOM_H_
#define PRESERIAL_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace preserial {

// Deterministic, seedable PRNG (xoshiro256**). All randomized components in
// the library take an explicit Rng so experiments are reproducible; nothing
// reads global entropy.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 uniformly distributed bits.
  uint64_t Next();

  // Uniform integer in [0, bound) using Lemire's rejection-free multiply.
  // bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Exponentially distributed variate with the given mean (> 0).
  double NextExponential(double mean);

  // Index sampled from an explicit discrete distribution. `weights` need not
  // be normalized; all entries must be >= 0 and their sum > 0.
  size_t NextDiscrete(const std::vector<double>& weights);

  // Fisher-Yates shuffle of [0, n) as an index permutation.
  std::vector<size_t> Permutation(size_t n);

  // Derive an independent child generator (for per-client streams).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace preserial

#endif  // PRESERIAL_COMMON_RANDOM_H_
