#include "common/random.h"

#include <cassert>
#include <cmath>

namespace preserial {

namespace {

// SplitMix64, used to expand a single seed into the xoshiro state so that
// nearby seeds (0, 1, 2, ...) still give uncorrelated streams.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // All-zero state is the one fixed point of xoshiro; SplitMix64 cannot
  // produce four zero outputs in a row, but keep the guard cheap anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with a rejection loop for exact uniformity.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  // Inverse CDF; guard against log(0).
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double target = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack: fall back to the last non-zero weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace preserial
