#ifndef PRESERIAL_COMMON_LOGGING_H_
#define PRESERIAL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace preserial {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

const char* LogLevelName(LogLevel level);

// Global verbosity threshold; messages below it are discarded. Defaults to
// kWarning so library internals stay quiet in tests and benchmarks.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Stream-style message collector; emits to stderr on destruction if the
// level passes the global threshold. kFatal always emits and then aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

// Usage: PRESERIAL_LOG(Info) << "admitted txn " << id;
#define PRESERIAL_LOG(level)                            \
  ::preserial::internal_logging::LogMessage(            \
      ::preserial::LogLevel::k##level, __FILE__, __LINE__)

// CHECK-style invariant assertion: always on, aborts with a message.
// Usage: PRESERIAL_CHECK(x > 0) << "details";
#define PRESERIAL_CHECK(cond)                                       \
  if (cond) {                                                       \
  } else                                                            \
    PRESERIAL_LOG(Fatal) << "Check failed: " #cond " "

}  // namespace preserial

#endif  // PRESERIAL_COMMON_LOGGING_H_
