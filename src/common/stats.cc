#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace preserial {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t n = count_ + other.count_;
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Histogram::Add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_valid_ = false;
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

void Histogram::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::Percentile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

std::string Histogram::Summary() const {
  char buf[192];
  std::snprintf(
      buf, sizeof(buf),
      "n=%lld mean=%.4f p50=%.4f p90=%.4f p95=%.4f p99=%.4f max=%.4f",
      static_cast<long long>(count()), mean(), p50(), p90(), p95(), p99(),
      Percentile(1.0));
  return buf;
}

}  // namespace preserial
