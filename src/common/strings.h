#ifndef PRESERIAL_COMMON_STRINGS_H_
#define PRESERIAL_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace preserial {

// Minimal string helpers used across modules; kept deliberately small.

// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits on a single character; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Fixed-width left/right padding with spaces (for table rendering in the
// benchmark harnesses).
std::string PadLeft(std::string_view s, size_t width);
std::string PadRight(std::string_view s, size_t width);

}  // namespace preserial

#endif  // PRESERIAL_COMMON_STRINGS_H_
