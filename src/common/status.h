#ifndef PRESERIAL_COMMON_STATUS_H_
#define PRESERIAL_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace preserial {

// Canonical error codes used across the library. The set deliberately mirrors
// the failure surface of a transactional middleware: most call sites only
// distinguish "ok", "retryable conflict" and "hard error".
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // Caller passed something malformed.
  kNotFound,           // Object / row / table does not exist.
  kAlreadyExists,      // Uniqueness violated (insert of duplicate key, ...).
  kFailedPrecondition, // Operation not legal in the current state machine
                       // state (e.g. invoke after commit, paper Sec. IV).
  kConflict,           // Semantic incompatibility with a concurrent
                       // transaction (paper Definition 2).
  kWaiting,            // Operation queued behind a lock; caller will be
                       // resumed when the request is granted.
  kDeadlock,           // Waits-for cycle detected; caller should abort.
  kAborted,            // Transaction was aborted (by itself or the system).
  kTimedOut,           // Lock wait or sleep exceeded its budget.
  kConstraintViolation,// CHECK constraint failed at SST execution time.
  kCorruption,         // Storage-level integrity failure (bad WAL CRC, ...).
  kUnavailable,        // Transient condition, e.g. client disconnected.
  kInternal,           // Invariant broken; indicates a library bug.
};

// Human-readable name of a code ("OK", "CONFLICT", ...).
const char* StatusCodeName(StatusCode code);

// Status carries a code plus an optional message. It is the only error
// channel in the library: no exceptions are thrown past an API boundary.
// Cheap to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Conflict(std::string m) {
    return Status(StatusCode::kConflict, std::move(m));
  }
  static Status Waiting(std::string m) {
    return Status(StatusCode::kWaiting, std::move(m));
  }
  static Status Deadlock(std::string m) {
    return Status(StatusCode::kDeadlock, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status TimedOut(std::string m) {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status ConstraintViolation(std::string m) {
    return Status(StatusCode::kConstraintViolation, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CONFLICT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> is a Status plus a value on success (a small subset of
// absl::StatusOr). Accessing the value of a failed Result aborts the
// process, so callers must check ok() first.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return 42;` / `return Status::NotFound("...")`.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "use Result(T) for success");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate a non-OK Status to the caller.
#define PRESERIAL_RETURN_IF_ERROR(expr)             \
  do {                                              \
    ::preserial::Status _st = (expr);               \
    if (!_st.ok()) return _st;                      \
  } while (0)

#define PRESERIAL_STATUS_CONCAT_INNER_(a, b) a##b
#define PRESERIAL_STATUS_CONCAT_(a, b) PRESERIAL_STATUS_CONCAT_INNER_(a, b)

// Evaluate a Result-returning expression, propagate failure, otherwise bind
// the value: PRESERIAL_ASSIGN_OR_RETURN(auto v, LookUp(k));
#define PRESERIAL_ASSIGN_OR_RETURN(decl, expr)                             \
  auto PRESERIAL_STATUS_CONCAT_(_preserial_res_, __LINE__) = (expr);       \
  if (!PRESERIAL_STATUS_CONCAT_(_preserial_res_, __LINE__).ok())           \
    return PRESERIAL_STATUS_CONCAT_(_preserial_res_, __LINE__).status();   \
  decl = std::move(PRESERIAL_STATUS_CONCAT_(_preserial_res_, __LINE__)).value()

}  // namespace preserial

#endif  // PRESERIAL_COMMON_STATUS_H_
