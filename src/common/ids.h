#ifndef PRESERIAL_COMMON_IDS_H_
#define PRESERIAL_COMMON_IDS_H_

#include <cstdint>

namespace preserial {

// Transaction identifier, unique within one engine instance. Id 0 is
// reserved for system work (checkpoint snapshots) and as the invalid
// sentinel for user transactions.
using TxnId = uint64_t;
constexpr TxnId kSystemTxnId = 0;
constexpr TxnId kInvalidTxnId = 0;

}  // namespace preserial

#endif  // PRESERIAL_COMMON_IDS_H_
