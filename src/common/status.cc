#include "common/status.h"

namespace preserial {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kConflict:
      return "CONFLICT";
    case StatusCode::kWaiting:
      return "WAITING";
    case StatusCode::kDeadlock:
      return "DEADLOCK";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kConstraintViolation:
      return "CONSTRAINT_VIOLATION";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace preserial
