#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace preserial {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from __FILE__ for terser output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const bool enabled =
      static_cast<int>(level_) >= static_cast<int>(GetLogLevel());
  if (enabled || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace preserial
