#include "common/clock.h"

#include <chrono>

namespace preserial {

namespace {
int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

SystemClock::SystemClock() : origin_ns_(MonotonicNanos()) {}

TimePoint SystemClock::Now() const {
  return static_cast<double>(MonotonicNanos() - origin_ns_) * 1e-9;
}

}  // namespace preserial
