#include "gtm/policies.h"

#include "semantics/compatibility.h"

namespace preserial::gtm {

int CountIncompatibleWaiters(const ObjectState& obj, TxnId requester,
                             semantics::MemberId member,
                             semantics::OpClass cls) {
  int n = 0;
  for (const WaitEntry& w : obj.waiting) {
    if (w.txn == requester) continue;
    if (!obj.deps.Dependent(w.member, member)) continue;
    if (!semantics::Compatible(w.op.cls, cls)) ++n;
  }
  return n;
}

}  // namespace preserial::gtm
