#ifndef PRESERIAL_GTM_OBJECT_STATE_H_
#define PRESERIAL_GTM_OBJECT_STATE_H_

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "gtm/managed_txn.h"
#include "semantics/compatibility.h"
#include "semantics/operation.h"
#include "storage/value.h"

namespace preserial::gtm {

// Operation classes a transaction exercises on an object, per member.
using MemberOps = std::map<semantics::MemberId, semantics::OpClass>;

// A queued invocation (an entry of the paper's X_waiting). The queue is
// ordered by (priority desc, arrival asc): FIFO within a priority band.
struct WaitEntry {
  TxnId txn = kInvalidTxnId;
  semantics::MemberId member = 0;
  semantics::Operation op;
  TimePoint arrival = 0;  // The paper's A_t_wait for this object.
  int priority = 0;
};

// A committed transaction's trace on the object (needed by the awake rule:
// X_tc, with the classes it used).
struct CommittedEntry {
  TxnId txn = kInvalidTxnId;
  TimePoint commit_time = 0;  // The paper's X_tc for this transaction.
  MemberOps ops;
};

// Per-object GTM state — the paper's X_permanent, X_pending, X_waiting,
// X_committing, X_committed, X_aborting, X_sleeping, X_read, X_new, X_tc,
// plus the binding of members to LDBS cells.
//
// Internal record of the Gtm (not part of the public API surface); fields
// are open and the Gtm maintains the invariants.
struct ObjectState {
  ObjectId id;

  // --- binding to the data layer -------------------------------------------
  std::string table;
  storage::Value key;
  // member m lives in column member_columns[m] of `table`.
  std::vector<size_t> member_columns;
  // Logical-dependence relaxation across members (paper Sec. IV).
  semantics::LogicalDependencies deps;

  // --- replicated committed state ------------------------------------------
  // X_permanent, one value per member, kept coherent with the LDBS by the
  // SST executor (all writes to bound cells flow through the GTM).
  std::vector<storage::Value> permanent;

  // --- admission state -------------------------------------------------------
  std::map<TxnId, MemberOps> pending;     // Granted, operating on copies.
  std::deque<WaitEntry> waiting;          // FIFO.
  std::map<TxnId, MemberOps> committing;  // Local commit done, SST running.
  std::vector<CommittedEntry> committed;  // With commit times (X_tc).
  std::set<TxnId> aborting;
  std::set<TxnId> sleeping;               // Subset of pending/waiting txns.

  // --- per-transaction snapshots -------------------------------------------
  // X_read: value seen at grant time; X_new: reconciled value to install.
  std::map<TxnId, std::map<semantics::MemberId, storage::Value>> read;
  std::map<TxnId, std::map<semantics::MemberId, storage::Value>> new_values;

  size_t num_members() const { return member_columns.size(); }

  bool IsPending(TxnId txn) const { return pending.count(txn) > 0; }
  bool IsWaiting(TxnId txn) const;
  bool IsSleeping(TxnId txn) const { return sleeping.count(txn) > 0; }

  // The classes `txn` currently holds or has requested on this object
  // (pending ops, else its queued wait entries).
  MemberOps OpsOf(TxnId txn) const;

  // Removes every trace of txn from the admission state (used by abort).
  void Erase(TxnId txn);

  // Prunes committed entries older than `horizon` (they can no longer
  // matter to any sleeper that fell asleep after them).
  void PruneCommitted(TimePoint horizon);
};

}  // namespace preserial::gtm

#endif  // PRESERIAL_GTM_OBJECT_STATE_H_
