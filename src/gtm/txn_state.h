#ifndef PRESERIAL_GTM_TXN_STATE_H_
#define PRESERIAL_GTM_TXN_STATE_H_

namespace preserial::gtm {

// Operating states of a GTM-managed transaction (paper Sec. IV):
//
//   Active     - normally running
//   Waiting    - queued behind an incompatible holder on some object
//   Sleeping   - disconnected or idle; holds no admission rights but is not
//                aborted (the paper's key departure from 2PL)
//   Committing - user requested commit; the SST has not finished
//   Aborting   - abort requested; local aborts not yet finished
//   Committed  / Aborted - terminal
enum class TxnState {
  kActive,
  kWaiting,
  kSleeping,
  kCommitting,
  kAborting,
  kCommitted,
  kAborted,
};

const char* TxnStateName(TxnState s);

// True for states in which the transaction still owns resources.
bool IsLive(TxnState s);

}  // namespace preserial::gtm

#endif  // PRESERIAL_GTM_TXN_STATE_H_
