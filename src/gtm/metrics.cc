#include "gtm/metrics.h"

#include "common/strings.h"

namespace preserial::gtm {

double GtmMetrics::AbortPercent() const {
  if (counters_.begun == 0) return 0.0;
  return 100.0 * static_cast<double>(counters_.aborted) /
         static_cast<double>(counters_.begun);
}

std::string GtmMetrics::Summary() const {
  std::string out;
  out += StrFormat(
      "txns: begun=%lld committed=%lld aborted=%lld (%.2f%%)\n",
      static_cast<long long>(counters_.begun),
      static_cast<long long>(counters_.committed),
      static_cast<long long>(counters_.aborted), AbortPercent());
  out += StrFormat(
      "invocations: total=%lld immediate=%lld shared=%lld waits=%lld\n",
      static_cast<long long>(counters_.invocations),
      static_cast<long long>(counters_.granted_immediately),
      static_cast<long long>(counters_.shared_grants),
      static_cast<long long>(counters_.waits));
  out += StrFormat(
      "sleep: sleeps=%lld awakes=%lld awake_aborts=%lld\n",
      static_cast<long long>(counters_.sleeps),
      static_cast<long long>(counters_.awakes),
      static_cast<long long>(counters_.awake_aborts));
  out += StrFormat(
      "aborts: deadlock_refusals=%lld timeout=%lld constraint=%lld "
      "user=%lld\n",
      static_cast<long long>(counters_.deadlock_refusals),
      static_cast<long long>(counters_.timeout_aborts),
      static_cast<long long>(counters_.constraint_aborts),
      static_cast<long long>(counters_.user_aborts));
  out += StrFormat("sst: executed=%lld failed=%lld retries=%lld "
                   "cells=%lld injected_failures=%lld\n",
                   static_cast<long long>(counters_.sst_executed),
                   static_cast<long long>(counters_.sst_failed),
                   static_cast<long long>(counters_.sst_retries),
                   static_cast<long long>(counters_.sst_cells_written),
                   static_cast<long long>(counters_.sst_injected_failures));
  out += StrFormat("dedup: duplicates_suppressed=%lld\n",
                   static_cast<long long>(counters_.duplicates_suppressed));
  out += "exec_time: " + execution_time_.Summary() + "\n";
  out += "wait_time: " + wait_time_.Summary() + "\n";
  return out;
}

}  // namespace preserial::gtm
