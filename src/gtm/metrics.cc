#include "gtm/metrics.h"

#include <algorithm>

#include "common/strings.h"

namespace preserial::gtm {

namespace {

double AbortPercentOf(const GtmCounters& c) {
  if (c.begun == 0) return 0.0;
  return 100.0 * static_cast<double>(c.aborted) /
         static_cast<double>(c.begun);
}

std::string FormatSummary(const GtmCounters& c, const Histogram& exec,
                          const Histogram& wait) {
  std::string out;
  out += StrFormat(
      "txns: begun=%lld committed=%lld aborted=%lld (%.2f%%)\n",
      static_cast<long long>(c.begun), static_cast<long long>(c.committed),
      static_cast<long long>(c.aborted), AbortPercentOf(c));
  out += StrFormat(
      "invocations: total=%lld immediate=%lld shared=%lld waits=%lld\n",
      static_cast<long long>(c.invocations),
      static_cast<long long>(c.granted_immediately),
      static_cast<long long>(c.shared_grants),
      static_cast<long long>(c.waits));
  out += StrFormat(
      "sleep: sleeps=%lld awakes=%lld awake_aborts=%lld\n",
      static_cast<long long>(c.sleeps), static_cast<long long>(c.awakes),
      static_cast<long long>(c.awake_aborts));
  out += StrFormat(
      "aborts: deadlock_refusals=%lld timeout=%lld constraint=%lld "
      "user=%lld\n",
      static_cast<long long>(c.deadlock_refusals),
      static_cast<long long>(c.timeout_aborts),
      static_cast<long long>(c.constraint_aborts),
      static_cast<long long>(c.user_aborts));
  out += StrFormat(
      "2pc: prepares=%lld prepared_aborts=%lld reconciliations=%lld\n",
      static_cast<long long>(c.prepares),
      static_cast<long long>(c.prepared_aborts),
      static_cast<long long>(c.reconciliations));
  out += StrFormat("sst: executed=%lld failed=%lld retries=%lld "
                   "cells=%lld injected_failures=%lld\n",
                   static_cast<long long>(c.sst_executed),
                   static_cast<long long>(c.sst_failed),
                   static_cast<long long>(c.sst_retries),
                   static_cast<long long>(c.sst_cells_written),
                   static_cast<long long>(c.sst_injected_failures));
  out += StrFormat("dedup: duplicates_suppressed=%lld\n",
                   static_cast<long long>(c.duplicates_suppressed));
  out += StrFormat(
      "replication: lag_records=%lld lag_max_records=%lld failovers=%lld\n",
      static_cast<long long>(c.replication_lag_records),
      static_cast<long long>(c.replication_lag_max_records),
      static_cast<long long>(c.failovers_total));
  out += "exec_time: " + exec.Summary() + "\n";
  out += "wait_time: " + wait.Summary() + "\n";
  return out;
}

}  // namespace

void GtmCounters::MergeFrom(const GtmCounters& other) {
  begun += other.begun;
  committed += other.committed;
  aborted += other.aborted;
  invocations += other.invocations;
  granted_immediately += other.granted_immediately;
  shared_grants += other.shared_grants;
  waits += other.waits;
  sleeps += other.sleeps;
  awakes += other.awakes;
  awake_aborts += other.awake_aborts;
  deadlock_refusals += other.deadlock_refusals;
  deadlock_aborts += other.deadlock_aborts;
  timeout_aborts += other.timeout_aborts;
  constraint_aborts += other.constraint_aborts;
  disconnect_aborts += other.disconnect_aborts;
  user_aborts += other.user_aborts;
  prepares += other.prepares;
  prepared_aborts += other.prepared_aborts;
  reconciliations += other.reconciliations;
  sst_executed += other.sst_executed;
  sst_failed += other.sst_failed;
  sst_retries += other.sst_retries;
  sst_cells_written += other.sst_cells_written;
  sst_injected_failures += other.sst_injected_failures;
  duplicates_suppressed += other.duplicates_suppressed;
  starvation_denials += other.starvation_denials;
  admission_denials += other.admission_denials;
  replication_lag_records += other.replication_lag_records;
  failovers_total += other.failovers_total;
  replication_lag_max_records =
      std::max(replication_lag_max_records, other.replication_lag_max_records);
}

void GtmMetrics::Snapshot::MergeFrom(const Snapshot& other) {
  counters.MergeFrom(other.counters);
  execution_time.MergeFrom(other.execution_time);
  wait_time.MergeFrom(other.wait_time);
}

double GtmMetrics::Snapshot::AbortPercent() const {
  return AbortPercentOf(counters);
}

std::string GtmMetrics::Snapshot::Summary() const {
  return FormatSummary(counters, execution_time, wait_time);
}

GtmMetrics::Snapshot GtmMetrics::TakeSnapshot() const {
  return Snapshot{counters_, execution_time_, wait_time_};
}

double GtmMetrics::AbortPercent() const { return AbortPercentOf(counters_); }

std::string GtmMetrics::Summary() const {
  return FormatSummary(counters_, execution_time_, wait_time_);
}

}  // namespace preserial::gtm
