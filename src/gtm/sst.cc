#include "gtm/sst.h"

namespace preserial::gtm {

SstExecutor::SstExecutor(storage::Database* db) : db_(db), engine_(db) {}

Status SstExecutor::Execute(const std::vector<CellWrite>& writes) {
  if (injector_) {
    Status injected = injector_(writes);
    if (!injected.ok()) {
      ++counters_.failed;
      ++counters_.injected_failures;
      return injected;
    }
  }
  const TxnId sst = engine_.Begin();
  for (const CellWrite& w : writes) {
    Status s = engine_.Write(sst, w.table, w.key, w.column, w.value);
    if (s.code() == StatusCode::kWaiting) {
      (void)engine_.Abort(sst);
      ++counters_.failed;
      return Status::Internal(
          "SST blocked on a lock; the GTM must own the database");
    }
    if (!s.ok()) {
      (void)engine_.Abort(sst);
      ++counters_.failed;
      return s;
    }
  }
  Status s = engine_.Commit(sst);
  if (!s.ok()) {
    ++counters_.failed;
    return s;
  }
  ++counters_.executed;
  counters_.cells_written += static_cast<int64_t>(writes.size());
  return Status::Ok();
}

}  // namespace preserial::gtm
