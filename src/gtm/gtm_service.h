#ifndef PRESERIAL_GTM_GTM_SERVICE_H_
#define PRESERIAL_GTM_GTM_SERVICE_H_

#include <condition_variable>
#include <mutex>
#include <unordered_set>

#include "common/clock.h"
#include "gtm/gtm.h"

namespace preserial::gtm {

// Thread-safe blocking facade over Gtm for live (non-simulated) use: each
// client session runs on its own thread and Invoke() parks the thread until
// the GTM admits the queued operation.
//
// A single coarse mutex serializes the state machine (the GTM is a
// middleware controller, not a data plane; admission decisions are cheap),
// and a condition variable wakes waiters when admission events fire.
class GtmService {
 public:
  GtmService(storage::Database* db, GtmOptions options = {});

  GtmService(const GtmService&) = delete;
  GtmService& operator=(const GtmService&) = delete;

  // Setup-time access (register objects before spawning client threads).
  Gtm* gtm() { return &gtm_; }

  TxnId Begin(int priority = 0);

  // Executes the operation, blocking while queued. On timeout the whole
  // transaction is aborted (kTimedOut). kDeadlock refusals abort too.
  Status Invoke(TxnId txn, const ObjectId& object, semantics::MemberId member,
                const semantics::Operation& op,
                Duration timeout = kNoTimeout);

  // Reads the transaction's virtual copy (acquiring a read grant, possibly
  // blocking).
  Result<storage::Value> Read(TxnId txn, const ObjectId& object,
                              semantics::MemberId member,
                              Duration timeout = kNoTimeout);

  Status Commit(TxnId txn);
  Status Abort(TxnId txn);
  Status Sleep(TxnId txn);
  Status Awake(TxnId txn);

  // Idempotent variants for clients on an at-least-once transport: `seq`
  // is the client's per-transaction request number, reused verbatim on
  // retries. A redelivered request returns its original reply without
  // re-executing (see Gtm::InvokeOnce and friends); a replayed kWaiting
  // Invoke blocks again until the grant or the timeout.
  Status InvokeOnce(TxnId txn, uint64_t seq, const ObjectId& object,
                    semantics::MemberId member, const semantics::Operation& op,
                    Duration timeout = kNoTimeout);
  Status CommitOnce(TxnId txn, uint64_t seq);
  Status AbortOnce(TxnId txn, uint64_t seq);
  Status SleepOnce(TxnId txn, uint64_t seq);
  Status AwakeOnce(TxnId txn, uint64_t seq);

  Result<TxnState> StateOf(TxnId txn);

  // Maintenance sweeps for live deployments (call from a housekeeping
  // thread): park idle transactions, abort over-age waiters, resolve
  // deadlock cycles. Each returns the affected transaction ids.
  std::vector<TxnId> SleepIdleTransactions(Duration idle_timeout);
  std::vector<TxnId> AbortExpiredWaits(Duration max_wait);
  std::vector<TxnId> DetectAndResolveDeadlocks();

 private:
  // Must hold mu_: moves admission events into granted_ and wakes waiters.
  void DrainEventsLocked();
  // Blocks until txn's queued invocation is granted (or timeout/abort).
  Status WaitForGrant(TxnId txn, Duration timeout);
  // Same, with the caller already holding mu_ through `lk`.
  Status WaitForGrantLocked(std::unique_lock<std::mutex>& lk, TxnId txn,
                            Duration timeout);

  SystemClock clock_;
  Gtm gtm_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_set<TxnId> granted_;
};

}  // namespace preserial::gtm

#endif  // PRESERIAL_GTM_GTM_SERVICE_H_
