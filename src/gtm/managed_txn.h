#ifndef PRESERIAL_GTM_MANAGED_TXN_H_
#define PRESERIAL_GTM_MANAGED_TXN_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "gtm/txn_state.h"
#include "semantics/operation.h"
#include "storage/value.h"

namespace preserial::gtm {

// Identifier of a GTM-managed object (the paper's X). By convention
// "<table>/<key>" for objects bound to database rows.
using ObjectId = std::string;

// (object, member) coordinate of a virtual-copy cell.
struct Cell {
  ObjectId object;
  semantics::MemberId member = 0;

  friend bool operator<(const Cell& a, const Cell& b) {
    if (a.object != b.object) return a.object < b.object;
    return a.member < b.member;
  }
  friend bool operator==(const Cell& a, const Cell& b) {
    return a.object == b.object && a.member == b.member;
  }
};

// Per-transaction GTM state (the paper's A_state, A_temp, A_t_sleep,
// A_t_wait). Owned by the Gtm; callers hold TxnIds.
class ManagedTxn {
 public:
  ManagedTxn(TxnId id, TimePoint now, int priority = 0)
      : id_(id),
        state_(TxnState::kActive),
        begin_time_(now),
        priority_(priority),
        last_activity_(now) {}

  TxnId id() const { return id_; }
  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }

  // Scheduling priority (paper Sec. VII: "introduction of a transaction
  // priority"); higher values queue ahead of lower ones.
  int priority() const { return priority_; }

  TimePoint begin_time() const { return begin_time_; }

  // --- A_temp: virtual copies -----------------------------------------------

  bool HasTemp(const Cell& cell) const { return temp_.count(cell) > 0; }
  Result<storage::Value> GetTemp(const Cell& cell) const;
  void SetTemp(const Cell& cell, storage::Value v) {
    temp_[cell] = std::move(v);
  }
  void ClearTemp(const Cell& cell) { temp_.erase(cell); }
  void ClearAllTemp() { temp_.clear(); }
  const std::map<Cell, storage::Value>& temp() const { return temp_; }

  // --- granted operation classes (what this txn holds per cell) ------------

  void GrantClass(const Cell& cell, semantics::OpClass cls) {
    granted_[cell] = cls;
  }
  bool HasGrant(const Cell& cell) const { return granted_.count(cell) > 0; }
  Result<semantics::OpClass> GrantedClass(const Cell& cell) const;
  void RevokeGrant(const Cell& cell) { granted_.erase(cell); }
  const std::map<Cell, semantics::OpClass>& grants() const { return granted_; }

  // Objects this transaction touches in any role (grant or wait).
  std::set<ObjectId> InvolvedObjects() const;
  void NoteInvolved(const ObjectId& object) { involved_.insert(object); }
  const std::set<ObjectId>& involved() const { return involved_; }

  // --- timing (A_t_sleep, A_t_wait) ----------------------------------------

  TimePoint sleep_since() const { return sleep_since_; }
  void set_sleep_since(TimePoint t) { sleep_since_ = t; }

  // Last interaction with the middleware (begin / invoke / read); the
  // inactivity oracle Ξ uses this to park idle transactions.
  TimePoint last_activity() const { return last_activity_; }
  void set_last_activity(TimePoint t) { last_activity_ = t; }

  void SetWaitSince(const ObjectId& object, TimePoint t) {
    wait_since_[object] = t;
  }
  void ClearWaitSince(const ObjectId& object) { wait_since_.erase(object); }
  void ClearAllWaitSince() { wait_since_.clear(); }
  const std::map<ObjectId, TimePoint>& wait_since() const {
    return wait_since_;
  }

  // --- idempotent request dedup --------------------------------------------

  // Reply cache keyed by the client's request_seq: a request that already
  // executed returns its original reply instead of re-executing (exactly-
  // once effects over an at-least-once channel). The Gtm keeps terminal
  // transactions alive, so a retried commit whose reply was lost still
  // finds its cached OK here.
  const Status* CachedReply(uint64_t seq) const {
    auto it = replies_.find(seq);
    return it == replies_.end() ? nullptr : &it->second;
  }
  void CacheReply(uint64_t seq, Status reply) {
    replies_[seq] = std::move(reply);
  }

  // --- statistics ----------------------------------------------------------

  int64_t ops_executed = 0;
  Duration total_wait_time = 0;
  Duration total_sleep_time = 0;

 private:
  TxnId id_;
  TxnState state_;
  TimePoint begin_time_;
  int priority_ = 0;
  TimePoint sleep_since_ = 0;
  TimePoint last_activity_ = 0;
  std::map<Cell, storage::Value> temp_;
  std::map<Cell, semantics::OpClass> granted_;
  std::set<ObjectId> involved_;
  std::map<ObjectId, TimePoint> wait_since_;
  std::map<uint64_t, Status> replies_;
};

}  // namespace preserial::gtm

#endif  // PRESERIAL_GTM_MANAGED_TXN_H_
