#ifndef PRESERIAL_GTM_ENDPOINT_H_
#define PRESERIAL_GTM_ENDPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "gtm/txn_state.h"
#include "semantics/operation.h"
#include "storage/value.h"

namespace preserial::gtm {

// Identifier of a GTM-managed object (the paper's X). By convention
// "<table>/<key>" for objects bound to database rows. Defined in
// managed_txn.h for the single-instance Gtm; redeclared here so the
// endpoint interface stands alone.
using ObjectId = std::string;

// Notification emitted when a queued invocation is admitted (the waiting
// transaction becomes Active again and its buffered operation has been
// applied to a fresh virtual copy).
struct GtmEvent {
  TxnId txn = kInvalidTxnId;
  ObjectId object;
};

// The client-facing protocol of the middleware: everything a mobile
// session needs to run a transaction. Implemented by the single-instance
// Gtm and by cluster::GtmRouter, which fans the same calls out to the
// owning shards — sessions, runners and workloads are written against this
// interface and run unmodified on 1..N shards.
class GtmEndpoint {
 public:
  virtual ~GtmEndpoint() = default;

  // Algorithm 1: new Active transaction.
  virtual TxnId Begin(int priority = 0) = 0;

  // Algorithm 2: request + execute an operation (OK / kWaiting /
  // kDeadlock / kConstraintViolation; see Gtm for the full contract).
  virtual Status Invoke(TxnId txn, const ObjectId& object,
                        semantics::MemberId member,
                        const semantics::Operation& op) = 0;

  // Reads the transaction's virtual copy (granting a read if necessary).
  virtual Result<storage::Value> ReadLocal(TxnId txn, const ObjectId& object,
                                           semantics::MemberId member) = 0;

  virtual Status RequestCommit(TxnId txn) = 0;  // Algorithms 3 + 4.
  virtual Status RequestAbort(TxnId txn) = 0;   // Algorithms 5 + 6.
  virtual Status Sleep(TxnId txn) = 0;          // Algorithms 7 + 8.
  virtual Status Awake(TxnId txn) = 0;          // Algorithms 9 + 10.

  // Idempotent variants for at-least-once transports: `seq` is the
  // client's per-transaction request number, reused verbatim on retries;
  // redeliveries return the cached reply without re-executing.
  virtual Status InvokeOnce(TxnId txn, uint64_t seq, const ObjectId& object,
                            semantics::MemberId member,
                            const semantics::Operation& op) = 0;
  virtual Status CommitOnce(TxnId txn, uint64_t seq) = 0;
  virtual Status AbortOnce(TxnId txn, uint64_t seq) = 0;
  virtual Status SleepOnce(TxnId txn, uint64_t seq) = 0;
  virtual Status AwakeOnce(TxnId txn, uint64_t seq) = 0;

  virtual Result<TxnState> StateOf(TxnId txn) const = 0;

  // Admission notifications since the last call (queued invocations that
  // were granted). Transaction ids are in this endpoint's id space.
  virtual std::vector<GtmEvent> TakeEvents() = 0;

  // Aborts transactions that have been Waiting longer than `max_wait` and
  // returns their ids (timeout-based deadlock/starvation resolution).
  virtual std::vector<TxnId> AbortExpiredWaits(Duration max_wait) = 0;
};

}  // namespace preserial::gtm

#endif  // PRESERIAL_GTM_ENDPOINT_H_
