#ifndef PRESERIAL_GTM_CONFLICT_H_
#define PRESERIAL_GTM_CONFLICT_H_

#include <functional>
#include <optional>

#include "common/ids.h"
#include "gtm/object_state.h"

namespace preserial::gtm {

// Predicate deciding whether two operation classes conflict. The default is
// the negation of the paper's Table I; the semantic-sharing ablation swaps
// in "everything but read/read conflicts".
using ClassConflictFn =
    std::function<bool(semantics::OpClass held, semantics::OpClass requested)>;

// Table I conflict: !Compatible(held, requested).
bool DefaultClassConflict(semantics::OpClass held,
                          semantics::OpClass requested);

// Exclusive-middleware conflict (ablation): only read/read shares.
bool ExclusiveClassConflict(semantics::OpClass held,
                            semantics::OpClass requested);

// Paper Definition 2, member-level: does a request for (member, cls)
// conflict with the holder's set of operations on the object? True iff some
// held class conflicts with `cls` on the same or a logically dependent
// member.
bool OpsConflict(const MemberOps& held, semantics::MemberId member,
                 semantics::OpClass cls,
                 const semantics::LogicalDependencies& deps,
                 const ClassConflictFn& conflict = DefaultClassConflict);

// Symmetric conflict between two full operation sets (used by the awake
// rule, where both sides hold sets).
bool OpsSetsConflict(const MemberOps& a, const MemberOps& b,
                     const semantics::LogicalDependencies& deps,
                     const ClassConflictFn& conflict = DefaultClassConflict);

// Admission check of Algorithm 2: the blocker, if any, among
// (X_pending - X_sleeping) ∪ X_committing for a request by `requester`.
// Sleeping holders do not block (they will be re-validated at awake).
std::optional<TxnId> FindAdmissionConflict(
    const ObjectState& obj, TxnId requester, semantics::MemberId member,
    semantics::OpClass cls,
    const ClassConflictFn& conflict = DefaultClassConflict);

// Awake check of Algorithm 9: a blocker among X_pending ∪ X_committing,
// or a transaction committed after `slept_at` whose classes conflict with
// the sleeper's footprint on this object — its granted ops plus the
// classes of its still-queued invocations.
std::optional<TxnId> FindAwakeConflict(
    const ObjectState& obj, TxnId sleeper, TimePoint slept_at,
    const ClassConflictFn& conflict = DefaultClassConflict);

}  // namespace preserial::gtm

#endif  // PRESERIAL_GTM_CONFLICT_H_
