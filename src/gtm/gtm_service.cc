#include "gtm/gtm_service.h"

#include <chrono>

namespace preserial::gtm {

GtmService::GtmService(storage::Database* db, GtmOptions options)
    : gtm_(db, &clock_, options) {}

void GtmService::DrainEventsLocked() {
  bool any = false;
  for (const GtmEvent& e : gtm_.TakeEvents()) {
    granted_.insert(e.txn);
    any = true;
  }
  if (any) cv_.notify_all();
}

TxnId GtmService::Begin(int priority) {
  std::lock_guard<std::mutex> lk(mu_);
  return gtm_.Begin(priority);
}

Status GtmService::Invoke(TxnId txn, const ObjectId& object,
                          semantics::MemberId member,
                          const semantics::Operation& op, Duration timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  Status s = gtm_.Invoke(txn, object, member, op);
  DrainEventsLocked();
  if (s.code() == StatusCode::kDeadlock) {
    (void)gtm_.RequestAbort(txn);
    DrainEventsLocked();
    return s;
  }
  if (s.code() != StatusCode::kWaiting) return s;
  return WaitForGrantLocked(lk, txn, timeout);
}

Status GtmService::WaitForGrantLocked(std::unique_lock<std::mutex>& lk,
                                      TxnId txn, Duration timeout) {
  // kNoTimeout would overflow a steady_clock deadline; wait untimed then.
  const bool bounded = !IsNoTimeout(timeout);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(bounded ? timeout : 0.0);
  while (granted_.count(txn) == 0) {
    // The admission pump may have aborted the waiter (stale entries) or a
    // timeout sweep may have killed it; stop waiting then.
    Result<TxnState> st = gtm_.StateOf(txn);
    if (st.ok() && !IsLive(st.value())) {
      return Status::Aborted("transaction aborted while waiting");
    }
    if (!bounded) {
      cv_.wait(lk);
      continue;
    }
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
      (void)gtm_.RequestAbort(txn);
      DrainEventsLocked();
      return Status::TimedOut("invocation wait timed out; aborted");
    }
  }
  granted_.erase(txn);
  // The buffered operation was applied at admission time.
  return Status::Ok();
}

Status GtmService::WaitForGrant(TxnId txn, Duration timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  return WaitForGrantLocked(lk, txn, timeout);
}

Result<storage::Value> GtmService::Read(TxnId txn, const ObjectId& object,
                                        semantics::MemberId member,
                                        Duration timeout) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    Result<storage::Value> r = gtm_.ReadLocal(txn, object, member);
    DrainEventsLocked();
    if (r.ok() || r.status().code() != StatusCode::kWaiting) return r;
  }
  // Queued: block via the Invoke machinery, then re-read the copy.
  PRESERIAL_RETURN_IF_ERROR(WaitForGrant(txn, timeout));
  std::lock_guard<std::mutex> lk(mu_);
  return gtm_.ReadLocal(txn, object, member);
}

Status GtmService::Commit(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  Status s = gtm_.RequestCommit(txn);
  DrainEventsLocked();
  return s;
}

Status GtmService::Abort(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  Status s = gtm_.RequestAbort(txn);
  DrainEventsLocked();
  return s;
}

Status GtmService::Sleep(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  Status s = gtm_.Sleep(txn);
  DrainEventsLocked();
  return s;
}

Status GtmService::Awake(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  Status s = gtm_.Awake(txn);
  DrainEventsLocked();
  return s;
}

Status GtmService::InvokeOnce(TxnId txn, uint64_t seq, const ObjectId& object,
                              semantics::MemberId member,
                              const semantics::Operation& op,
                              Duration timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  Status s = gtm_.InvokeOnce(txn, seq, object, member, op);
  DrainEventsLocked();
  if (s.code() == StatusCode::kDeadlock) {
    (void)gtm_.RequestAbort(txn);
    DrainEventsLocked();
    return s;
  }
  if (s.code() != StatusCode::kWaiting) return s;
  return WaitForGrantLocked(lk, txn, timeout);
}

Status GtmService::CommitOnce(TxnId txn, uint64_t seq) {
  std::lock_guard<std::mutex> lk(mu_);
  Status s = gtm_.CommitOnce(txn, seq);
  DrainEventsLocked();
  return s;
}

Status GtmService::AbortOnce(TxnId txn, uint64_t seq) {
  std::lock_guard<std::mutex> lk(mu_);
  Status s = gtm_.AbortOnce(txn, seq);
  DrainEventsLocked();
  return s;
}

Status GtmService::SleepOnce(TxnId txn, uint64_t seq) {
  std::lock_guard<std::mutex> lk(mu_);
  Status s = gtm_.SleepOnce(txn, seq);
  DrainEventsLocked();
  return s;
}

Status GtmService::AwakeOnce(TxnId txn, uint64_t seq) {
  std::lock_guard<std::mutex> lk(mu_);
  Status s = gtm_.AwakeOnce(txn, seq);
  DrainEventsLocked();
  return s;
}

Result<TxnState> GtmService::StateOf(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  return gtm_.StateOf(txn);
}

std::vector<TxnId> GtmService::SleepIdleTransactions(Duration idle_timeout) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TxnId> parked = gtm_.SleepIdleTransactions(idle_timeout);
  DrainEventsLocked();  // Parking holders can admit waiters.
  return parked;
}

std::vector<TxnId> GtmService::AbortExpiredWaits(Duration max_wait) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TxnId> victims = gtm_.AbortExpiredWaits(max_wait);
  DrainEventsLocked();
  cv_.notify_all();  // Victims parked in Invoke must observe their abort.
  return victims;
}

std::vector<TxnId> GtmService::DetectAndResolveDeadlocks() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TxnId> victims = gtm_.DetectAndResolveDeadlocks();
  DrainEventsLocked();
  cv_.notify_all();
  return victims;
}

}  // namespace preserial::gtm
