#ifndef PRESERIAL_GTM_POLICIES_H_
#define PRESERIAL_GTM_POLICIES_H_

#include <cstdint>

#include "common/clock.h"
#include "gtm/object_state.h"

namespace preserial::gtm {

// Deliberate, test-only protocol defects ("MutantGtm"). Each value disables
// exactly one correctness-critical rule so the check:: oracle can be shown
// to catch the resulting Definition 1 / eq. 1-2 / Algorithm 9 violations —
// an oracle never seen failing is itself untested. Always kNone outside
// tests/check_mutant_test.cc.
enum class GtmMutation {
  kNone,
  // Algorithm 9: skip the staleness comparison X_tc > A_t_sleep when a
  // sleeper awakes, so commits that overlapped the sleep go unnoticed.
  kSkipAwakeStalenessCheck,
  // Eq. 2: reconcile mul/div updates with the additive eq. 1 formula.
  kReconcileMulDivAsAddSub,
  // Eq. 1: install A_temp verbatim instead of merging the delta into the
  // current X_permanent — the classic lost update between compatible
  // writers.
  kReconcileAddSubLastWrite,
  // Table I: admit assignments alongside add/sub holders, violating
  // Definition 1 on a pair the matrix declares incompatible.
  kAdmitAssignWithAddSub,
};

// Tunable behaviour of the Gtm. Defaults reproduce the paper's model;
// the remaining knobs implement its Sec. VII "future work" mitigations and
// the ablations in bench/.
struct GtmOptions {
  // --- paper model ----------------------------------------------------------

  // When false, the compatibility matrix degenerates to "reads share,
  // everything else conflicts": the GTM behaves like an exclusive-lock
  // middleware (ablation bench_ablation_semantics).
  bool semantic_sharing = true;

  // When false, Sleep() aborts the transaction instead of parking it —
  // the 2PL-style treatment of disconnections (bench_ablation_sleep).
  bool sleep_enabled = true;

  // --- deadlock -------------------------------------------------------------

  // Check the waits-for graph when an invocation queues; a request that
  // would close a cycle is refused (kDeadlock) so the caller can abort.
  bool deadlock_detection = true;

  // --- Sec. VII mitigation 1: starvation guard ------------------------------

  // Deny the compatible fast path when at least this many incompatible
  // waiters are queued on the object (the "lock-deny" proposal), forcing
  // newcomers to queue behind them. 0 disables the guard.
  int starvation_waiter_threshold = 0;

  // --- Sec. VII mitigation 2: constraint-aware admission ---------------------

  // Before applying an add/sub operation, verify that the *pessimistic*
  // projection of the bound cell — X_permanent plus every pending holder's
  // negative net delta plus this operation — still satisfies the table's
  // CHECK constraints. Violating operations are refused up front instead of
  // failing the whole transaction at SST time.
  bool constraint_aware_admission = false;

  // --- Sec. VII open problem: SST failure recovery ---------------------------

  // Transient SST failures (kUnavailable, e.g. a flaky link to the LDBS)
  // are retried up to this many times before the GTM aborts the
  // transaction. Deterministic failures (constraint violations) are never
  // retried. 0 = no retries (the paper's assumption that SSTs always
  // succeed).
  int sst_retry_limit = 0;

  // --- housekeeping ----------------------------------------------------------

  // Committed entries (X_tc traces) older than this are pruned; they can
  // only matter to sleepers that slept longer, which the experiments bound.
  Duration committed_retention = 1e9;

  // --- testing ---------------------------------------------------------------

  // Injected protocol defect for oracle self-tests; kNone in production.
  GtmMutation mutation = GtmMutation::kNone;
};

// Counts incompatible (w.r.t. `cls` on `member`) wait-queue entries of
// other transactions — the quantity the starvation guard thresholds on.
int CountIncompatibleWaiters(const ObjectState& obj, TxnId requester,
                             semantics::MemberId member,
                             semantics::OpClass cls);

}  // namespace preserial::gtm

#endif  // PRESERIAL_GTM_POLICIES_H_
