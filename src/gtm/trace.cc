#include "gtm/trace.h"

#include "common/strings.h"
#include "obs/trace_context.h"

namespace preserial::gtm {

// Adding a TraceEventKind? Extend TraceEventKindName below, then bump this
// count (and kTraceEventKindCount follows the last enumerator in trace.h).
static_assert(kTraceEventKindCount == 25,
              "TraceEventKind changed: update TraceEventKindName and this "
              "static_assert together");

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kBegin:
      return "BEGIN";
    case TraceEventKind::kGrant:
      return "GRANT";
    case TraceEventKind::kApply:
      return "APPLY";
    case TraceEventKind::kWait:
      return "WAIT";
    case TraceEventKind::kPrepare:
      return "PREPARE";
    case TraceEventKind::kCommit:
      return "COMMIT";
    case TraceEventKind::kAbort:
      return "ABORT";
    case TraceEventKind::kSleep:
      return "SLEEP";
    case TraceEventKind::kAwake:
      return "AWAKE";
    case TraceEventKind::kAwakeAbort:
      return "AWAKE_ABORT";
    case TraceEventKind::kDeadlockRefusal:
      return "DEADLOCK_REFUSAL";
    case TraceEventKind::kAdmissionDenial:
      return "ADMISSION_DENIAL";
    case TraceEventKind::kDuplicateSuppressed:
      return "DUPLICATE_SUPPRESSED";
    case TraceEventKind::kShip:
      return "SHIP";
    case TraceEventKind::kShipAck:
      return "SHIP_ACK";
    case TraceEventKind::kPromote:
      return "PROMOTE";
    case TraceEventKind::kClientSend:
      return "CLIENT_SEND";
    case TraceEventKind::kClientRetry:
      return "CLIENT_RETRY";
    case TraceEventKind::kClientDegrade:
      return "CLIENT_DEGRADE";
    case TraceEventKind::kClientReconnect:
      return "CLIENT_RECONNECT";
    case TraceEventKind::kBranchBegin:
      return "BRANCH_BEGIN";
    case TraceEventKind::kTwoPcPrepare:
      return "2PC_PREPARE";
    case TraceEventKind::kTwoPcCommit:
      return "2PC_COMMIT";
    case TraceEventKind::kTwoPcAbort:
      return "2PC_ABORT";
    case TraceEventKind::kWatchdog:
      return "WATCHDOG";
  }
  return "?";
}

std::string TraceEvent::ToString() const {
  std::string s = StrFormat("[%10.3f] txn %-4llu %-16s", time,
                            static_cast<unsigned long long>(txn),
                            TraceEventKindName(kind));
  if (!object.empty()) s += " " + object;
  if (!detail.empty()) s += " (" + detail + ")";
  if (shard >= 0) s += StrFormat(" [shard %d]", shard);
  if (trace != 0) {
    s += StrFormat(" {trace=%llu span=%llu parent=%llu}",
                   static_cast<unsigned long long>(trace),
                   static_cast<unsigned long long>(span),
                   static_cast<unsigned long long>(parent));
  }
  return s;
}

void TraceLog::Enable(size_t capacity) {
  capacity_ = capacity;
  ring_.assign(capacity, TraceEvent{});
  next_ = 0;
  size_ = 0;
}

void TraceLog::Record(TimePoint time, TraceEventKind kind, TxnId txn,
                      std::string object, std::string detail) {
  ++total_recorded_;
  if (capacity_ == 0) return;  // Disabled: no context read, no allocation.
  const obs::TraceContext& ctx = obs::CurrentContext();
  TraceEvent e;
  e.time = time;
  e.kind = kind;
  e.txn = txn;
  e.object = std::move(object);
  e.detail = std::move(detail);
  e.trace = ctx.trace;
  e.span = ctx.span;
  e.parent = ctx.parent;
  e.shard = default_shard_;
  ring_[next_] = std::move(e);
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

void TraceLog::RecordOp(TimePoint time, TraceEventKind kind, TxnId txn,
                        std::string object, semantics::MemberId member,
                        const semantics::Operation& op, std::string detail) {
  ++total_recorded_;
  if (capacity_ == 0) return;
  const obs::TraceContext& ctx = obs::CurrentContext();
  TraceEvent e;
  e.time = time;
  e.kind = kind;
  e.txn = txn;
  e.object = std::move(object);
  e.detail = std::move(detail);
  e.trace = ctx.trace;
  e.span = ctx.span;
  e.parent = ctx.parent;
  e.shard = default_shard_;
  e.has_op = true;
  e.member = member;
  e.op = op;
  ring_[next_] = std::move(e);
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

std::vector<TraceEvent> TraceLog::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest entry sits at next_ when the ring has wrapped, else at 0.
  const size_t start = size_ == capacity_ ? next_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::vector<TraceEvent> TraceLog::ForTxn(TxnId txn) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : Snapshot()) {
    if (e.txn == txn) out.push_back(e);
  }
  return out;
}

void TraceLog::Clear() {
  next_ = 0;
  size_ = 0;
}

std::string TraceLog::Dump() const {
  std::string out;
  for (const TraceEvent& e : Snapshot()) {
    out += e.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace preserial::gtm
