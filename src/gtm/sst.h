#ifndef PRESERIAL_GTM_SST_H_
#define PRESERIAL_GTM_SST_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/database.h"
#include "storage/value.h"
#include "txn/txn_manager.h"

namespace preserial::gtm {

// Executor of Secure System Transactions: the paper's bridge from the
// GTM's virtual context to the LDBS. At global commit the GTM hands this
// class the reconciled cell values; they are installed in one strict-2PL
// transaction so the data layer provides consistency and durability
// (constraints checked, WAL forced at commit).
class SstExecutor {
 public:
  struct CellWrite {
    std::string table;
    storage::Value key;
    size_t column = 0;
    storage::Value value;
  };

  struct Counters {
    int64_t executed = 0;
    int64_t failed = 0;
    int64_t cells_written = 0;
    int64_t injected_failures = 0;
  };

  // Test/chaos hook: called before each execution attempt; a non-OK return
  // makes the attempt fail with that status (before touching the engine).
  // Models the transient SST failures whose recovery the paper leaves as
  // future work (Sec. VII).
  using FailureInjector = std::function<Status(const std::vector<CellWrite>&)>;

  explicit SstExecutor(storage::Database* db);

  SstExecutor(const SstExecutor&) = delete;
  SstExecutor& operator=(const SstExecutor&) = delete;

  // Applies all writes atomically. On any failure (typically a CHECK
  // constraint violation) the underlying transaction rolls back and the
  // error is returned; the database is untouched.
  //
  // SSTs run to completion within the call — the GTM serializes commits, so
  // SST lock requests can never wait. A kWaiting from the engine would mean
  // a foreign transaction shares this database's lock space and is reported
  // as kInternal.
  Status Execute(const std::vector<CellWrite>& writes);

  void set_failure_injector(FailureInjector injector) {
    injector_ = std::move(injector);
  }

  const Counters& counters() const { return counters_; }

 private:
  storage::Database* db_;
  txn::TwoPhaseLockingEngine engine_;
  FailureInjector injector_;
  Counters counters_;
};

}  // namespace preserial::gtm

#endif  // PRESERIAL_GTM_SST_H_
