#ifndef PRESERIAL_GTM_METRICS_H_
#define PRESERIAL_GTM_METRICS_H_

#include <cstdint>
#include <string>

#include "common/stats.h"

namespace preserial::gtm {

// Cheap always-on counters; one instance per Gtm.
struct GtmCounters {
  int64_t begun = 0;
  int64_t committed = 0;
  int64_t aborted = 0;

  int64_t invocations = 0;
  int64_t granted_immediately = 0;
  int64_t shared_grants = 0;  // Granted while another txn held the object.
  int64_t waits = 0;

  int64_t sleeps = 0;
  int64_t awakes = 0;

  int64_t awake_aborts = 0;      // Algorithm 9, conflict during sleep.
  int64_t deadlock_refusals = 0;  // Requests refused at enqueue time.
  int64_t deadlock_aborts = 0;    // Victims of the periodic WFG sweep.
  int64_t timeout_aborts = 0;
  int64_t constraint_aborts = 0;  // SST failed a CHECK constraint.
  int64_t disconnect_aborts = 0;  // Sleep() with sleeping disabled.
  int64_t user_aborts = 0;

  // Two-phase commit (cross-shard transactions).
  int64_t prepares = 0;         // Phase-1 votes that parked in Committing.
  int64_t prepared_aborts = 0;  // Coordinator decided abort after a yes-vote.
  int64_t reconciliations = 0;  // Successful per-member merges (eqs. 1-2).

  int64_t sst_executed = 0;
  int64_t sst_failed = 0;
  int64_t sst_retries = 0;  // Transient failures absorbed by the retry policy.
  // Mirrors of the executor's own counters (synced at each commit).
  int64_t sst_cells_written = 0;
  int64_t sst_injected_failures = 0;

  // Requests answered from the per-transaction reply cache instead of
  // re-executing (at-least-once channels re-deliver; effects stay
  // exactly-once).
  int64_t duplicates_suppressed = 0;

  int64_t starvation_denials = 0;
  int64_t admission_denials = 0;  // Constraint-aware admission refusals.

  // Replication (src/replica/). `replication_lag_records` is a gauge — the
  // primary overwrites it with (last log LSN − slowest live backup's acked
  // LSN) after every ship round — and merging snapshots across replica
  // groups sums the per-group lags. `failovers_total` counts promotions
  // this Gtm won (stamped on the new primary).
  int64_t replication_lag_records = 0;
  int64_t failovers_total = 0;
  // Worst-group lag gauge: summed lag hides a single straggling group
  // behind healthy ones, so the max is tracked separately. Set alongside
  // replication_lag_records on every ship round; merging takes the max.
  int64_t replication_lag_max_records = 0;

  // Field-wise sum (replication_lag_max_records merges by max); the mirror
  // counters (sst_*) add like the rest, which is correct when each source
  // is a distinct Gtm (shard).
  void MergeFrom(const GtmCounters& other);
};

// Counters plus latency distributions (virtual-time seconds under the
// simulator).
class GtmMetrics {
 public:
  // Copyable point-in-time capture of one Gtm's metrics. Per-shard
  // snapshots merge into a cluster-wide aggregate with MergeFrom.
  struct Snapshot {
    GtmCounters counters;
    Histogram execution_time;
    Histogram wait_time;

    void MergeFrom(const Snapshot& other);
    double AbortPercent() const;
    std::string Summary() const;
  };

  GtmCounters& counters() { return counters_; }
  const GtmCounters& counters() const { return counters_; }

  Snapshot TakeSnapshot() const;

  Histogram& execution_time() { return execution_time_; }
  const Histogram& execution_time() const { return execution_time_; }

  Histogram& wait_time() { return wait_time_; }
  const Histogram& wait_time() const { return wait_time_; }

  // Abort percentage over started transactions (0-100).
  double AbortPercent() const;
  // Multi-line human-readable dump.
  std::string Summary() const;

 private:
  GtmCounters counters_;
  Histogram execution_time_;  // Begin -> committed, committed txns only.
  Histogram wait_time_;       // Per completed wait episode.
};

}  // namespace preserial::gtm

#endif  // PRESERIAL_GTM_METRICS_H_
