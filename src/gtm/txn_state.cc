#include "gtm/txn_state.h"

namespace preserial::gtm {

const char* TxnStateName(TxnState s) {
  switch (s) {
    case TxnState::kActive:
      return "Active";
    case TxnState::kWaiting:
      return "Waiting";
    case TxnState::kSleeping:
      return "Sleeping";
    case TxnState::kCommitting:
      return "Committing";
    case TxnState::kAborting:
      return "Aborting";
    case TxnState::kCommitted:
      return "Committed";
    case TxnState::kAborted:
      return "Aborted";
  }
  return "?";
}

bool IsLive(TxnState s) {
  return s != TxnState::kCommitted && s != TxnState::kAborted;
}

}  // namespace preserial::gtm
