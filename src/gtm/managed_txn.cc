#include "gtm/managed_txn.h"

#include "common/strings.h"

namespace preserial::gtm {

Result<storage::Value> ManagedTxn::GetTemp(const Cell& cell) const {
  auto it = temp_.find(cell);
  if (it == temp_.end()) {
    return Status::NotFound(StrFormat(
        "txn %llu has no virtual copy of %s#%zu",
        static_cast<unsigned long long>(id_), cell.object.c_str(),
        cell.member));
  }
  return it->second;
}

Result<semantics::OpClass> ManagedTxn::GrantedClass(const Cell& cell) const {
  auto it = granted_.find(cell);
  if (it == granted_.end()) {
    return Status::NotFound(StrFormat(
        "txn %llu holds no grant on %s#%zu",
        static_cast<unsigned long long>(id_), cell.object.c_str(),
        cell.member));
  }
  return it->second;
}

std::set<ObjectId> ManagedTxn::InvolvedObjects() const { return involved_; }

}  // namespace preserial::gtm
