#include "gtm/object_state.h"

#include <algorithm>

namespace preserial::gtm {

bool ObjectState::IsWaiting(TxnId txn) const {
  for (const WaitEntry& w : waiting) {
    if (w.txn == txn) return true;
  }
  return false;
}

MemberOps ObjectState::OpsOf(TxnId txn) const {
  auto it = pending.find(txn);
  if (it != pending.end()) return it->second;
  MemberOps ops;
  for (const WaitEntry& w : waiting) {
    if (w.txn == txn) ops[w.member] = w.op.cls;
  }
  return ops;
}

void ObjectState::Erase(TxnId txn) {
  pending.erase(txn);
  committing.erase(txn);
  aborting.erase(txn);
  sleeping.erase(txn);
  read.erase(txn);
  new_values.erase(txn);
  waiting.erase(std::remove_if(waiting.begin(), waiting.end(),
                               [txn](const WaitEntry& w) {
                                 return w.txn == txn;
                               }),
                waiting.end());
}

void ObjectState::PruneCommitted(TimePoint horizon) {
  committed.erase(
      std::remove_if(committed.begin(), committed.end(),
                     [horizon](const CommittedEntry& e) {
                       return e.commit_time < horizon;
                     }),
      committed.end());
}

}  // namespace preserial::gtm
