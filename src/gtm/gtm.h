#ifndef PRESERIAL_GTM_GTM_H_
#define PRESERIAL_GTM_GTM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "gtm/conflict.h"
#include "gtm/managed_txn.h"
#include "gtm/metrics.h"
#include "gtm/object_state.h"
#include "gtm/policies.h"
#include "gtm/sst.h"
#include "gtm/trace.h"
#include "lock/waits_for_graph.h"
#include "semantics/operation.h"
#include "storage/database.h"

namespace preserial::gtm {

// Notification emitted when a queued invocation is admitted (the waiting
// transaction becomes Active again and its buffered operation has been
// applied to a fresh virtual copy).
struct GtmEvent {
  TxnId txn = kInvalidTxnId;
  ObjectId object;
};

// The Global Transaction Manager — the paper's middleware and this
// library's primary contribution.
//
// The GTM pre-serializes long running transactions over *virtual copies* of
// database data. Semantically compatible operations (Weihl forward
// commutativity, Table I) share an object concurrently, each transaction
// operating on its private copy (A_temp); at global commit the
// reconciliation algorithms (eqs. 1-2) merge the copies and a Secure
// System Transaction installs the result in the LDBS under strict 2PL.
// Disconnected or idle transactions *sleep* instead of aborting and may
// awake and finish unless an incompatible operation committed meanwhile.
//
// Event protocol (Algorithms 1-11 of the paper):
//   Begin()          Alg 1    new Active transaction
//   Invoke()         Alg 2    request + execute an operation on a member:
//                             OK        granted, executed on the copy
//                             kWaiting  queued; a GtmEvent fires on grant
//                             kDeadlock refused (would close a WFG cycle);
//                                       caller should RequestAbort
//                             kConstraintViolation refused by the
//                                       constraint-aware admission policy
//   RequestCommit()  Alg 3+4  reconcile all copies, run the SST, install
//   RequestAbort()   Alg 5+6  discard copies, release admissions
//   Sleep()          Alg 7+8  park a disconnected/idle transaction
//   Awake()          Alg 9+10 resume; kAborted when an incompatible
//                             operation was admitted/committed meanwhile
//
// Unlock (Alg 11) is internal: whenever an object's pending set shrinks,
// the longest FIFO prefix of mutually-admissible, non-sleeping waiters is
// admitted. (This generalizes the paper's empty-pending trigger: admission
// also happens when the remaining holders became compatible with the head
// waiter, which strictly increases concurrency and preserves FIFO
// fairness.)
//
// Externally synchronized; the discrete-event simulator drives it directly
// and GtmService adds a thread-safe blocking facade.
class Gtm {
 public:
  Gtm(storage::Database* db, const Clock* clock, GtmOptions options = {});

  Gtm(const Gtm&) = delete;
  Gtm& operator=(const Gtm&) = delete;

  // --- object registry -------------------------------------------------------

  // Binds a GTM object to database cells: member m lives in
  // `member_columns[m]` of the row `key` in `table`. The committed values
  // are cached as X_permanent. All writes to the bound cells must flow
  // through this Gtm.
  Status RegisterObject(const ObjectId& id, const std::string& table,
                        const storage::Value& key,
                        std::vector<size_t> member_columns,
                        semantics::LogicalDependencies deps = {});

  // Convenience: binds every non-primary-key column of the row as a member
  // (member order = column order).
  Status RegisterRowObject(const ObjectId& id, const std::string& table,
                           const storage::Value& key);

  bool HasObject(const ObjectId& id) const { return objects_.count(id) > 0; }
  Result<const ObjectState*> GetObject(const ObjectId& id) const;

  // Reloads X_permanent from the LDBS. Only legal while no transaction
  // holds or waits on the object — it exists for rebinding after external
  // writes (e.g. a bulk load or recovery that bypassed this Gtm), not for
  // concurrent use.
  Status RefreshPermanent(const ObjectId& id);
  // Cached committed value (X_permanent) of a member.
  Result<storage::Value> PermanentValue(const ObjectId& id,
                                        semantics::MemberId member) const;

  // --- the event interface (Algorithms 1-11) --------------------------------

  // Starts a transaction. Higher-priority transactions queue ahead of
  // lower-priority ones on every wait queue (Sec. VII starvation remedy);
  // the default 0 gives plain FIFO.
  TxnId Begin(int priority = 0);
  Status Invoke(TxnId txn, const ObjectId& object, semantics::MemberId member,
                const semantics::Operation& op);

  // --- idempotent endpoints (at-least-once transport) ------------------------
  //
  // Each *Once call is stamped with a client-chosen request_seq, unique per
  // transaction and reused verbatim on retries. The first delivery executes
  // and caches the reply; redeliveries return the cached reply without
  // re-executing — a retried CommitOnce can never apply twice. The one
  // non-literal replay is a cached kWaiting Invoke: by the time the retry
  // arrives the queued operation may have been granted (or the transaction
  // killed), so the reply is re-derived from the current state.
  Status InvokeOnce(TxnId txn, uint64_t seq, const ObjectId& object,
                    semantics::MemberId member, const semantics::Operation& op);
  Status CommitOnce(TxnId txn, uint64_t seq);
  Status AbortOnce(TxnId txn, uint64_t seq);
  Status SleepOnce(TxnId txn, uint64_t seq);
  Status AwakeOnce(TxnId txn, uint64_t seq);

  // Reads the transaction's virtual copy (granting a read if necessary).
  Result<storage::Value> ReadLocal(TxnId txn, const ObjectId& object,
                                   semantics::MemberId member);
  Status RequestCommit(TxnId txn);
  Status RequestAbort(TxnId txn);
  Status Sleep(TxnId txn);
  Status Awake(TxnId txn);

  // --- wait management -------------------------------------------------------

  // Admission notifications since the last call (queued invocations that
  // were granted).
  std::vector<GtmEvent> TakeEvents();

  // Aborts transactions that have been Waiting longer than `max_wait`
  // (timeout-based deadlock/starvation resolution). Returns their ids.
  std::vector<TxnId> AbortExpiredWaits(Duration max_wait);

  // The inactivity oracle Ξ (paper Alg 8): puts every Active or Waiting
  // transaction whose last middleware interaction is older than
  // `idle_timeout` to Sleep, exactly as an explicit disconnection would.
  // Returns the newly sleeping transactions.
  std::vector<TxnId> SleepIdleTransactions(Duration idle_timeout);

  // Waits-for-graph sweep: finds every deadlock cycle and aborts one
  // victim per cycle (the youngest transaction, i.e. highest id). Returns
  // the victims. Complements at-enqueue detection for deployments that
  // disable it (the paper's classical 2PL treatment of deadlocks).
  std::vector<TxnId> DetectAndResolveDeadlocks();

  // --- introspection ---------------------------------------------------------

  Result<TxnState> StateOf(TxnId txn) const;
  const ManagedTxn* GetTxn(TxnId txn) const;
  // Ids of transactions currently in `state` (ascending).
  std::vector<TxnId> TransactionsInState(TxnState state) const;
  // Transactions that are not yet Committed/Aborted.
  size_t live_transaction_count() const;
  GtmMetrics& metrics() { return metrics_; }
  const GtmMetrics& metrics() const { return metrics_; }
  const GtmOptions& options() const { return options_; }
  const SstExecutor& sst() const { return sst_; }
  // For failure injection in tests/chaos runs.
  SstExecutor* mutable_sst() { return &sst_; }

  // Event trace (disabled by default): trace()->Enable(capacity) records
  // every externally visible state transition for audits and debugging.
  TraceLog* trace() { return &trace_; }
  const TraceLog& trace() const { return trace_; }

  // Waits-for graph over waiting transactions (for tests and diagnostics).
  lock::WaitsForGraph BuildWaitsForGraph() const;

  // Cross-checks internal invariants (object/txn agreement, queue
  // consistency); used heavily by the test suite.
  Status CheckInvariants() const;

 private:
  ManagedTxn* GetLiveTxn(TxnId txn);
  ObjectState* GetObjectMutable(const ObjectId& id);

  // Dedup lookup shared by the *Once endpoints. Returns the cached reply
  // when `seq` already executed for `txn` (terminal transactions answer
  // too), bumping the duplicates_suppressed counter; null on first
  // delivery or unknown transaction.
  const Status* LookupCachedReply(TxnId txn, uint64_t seq);
  // Runs `call` on first delivery and caches its reply under `seq`.
  Status ExecuteOnce(TxnId txn, uint64_t seq,
                     const std::function<Status()>& call);

  // Member-level conflict respecting the semantic_sharing ablation switch.
  bool EffectiveConflict(semantics::OpClass held, semantics::OpClass requested,
                         semantics::MemberId held_member,
                         semantics::MemberId req_member,
                         const semantics::LogicalDependencies& deps) const;
  std::optional<TxnId> AdmissionConflict(const ObjectState& obj,
                                         TxnId requester,
                                         semantics::MemberId member,
                                         semantics::OpClass cls) const;
  std::optional<TxnId> AwakeConflict(const ObjectState& obj, TxnId sleeper,
                                     TimePoint slept_at) const;

  // Grants (member, op.cls) to txn on obj with a fresh snapshot and applies
  // `op` to the new copy.
  Status GrantAndApply(ManagedTxn* t, ObjectState* obj,
                       semantics::MemberId member,
                       const semantics::Operation& op);
  // Applies `op` to an existing virtual copy.
  Status ApplyToCopy(ManagedTxn* t, ObjectState* obj,
                     semantics::MemberId member,
                     const semantics::Operation& op);
  // Constraint-aware admission projection (Sec. VII mitigation 2).
  Status CheckConstraintAdmission(const ManagedTxn& t, const ObjectState& obj,
                                  semantics::MemberId member,
                                  const semantics::Operation& op) const;

  // Alg 11 generalization: admit the FIFO prefix of admissible waiters.
  void PumpWaiters(ObjectState* obj);

  // Shared abort path (Alg 5+6); `counter` points at the cause counter to
  // bump.
  void AbortInternal(ManagedTxn* t, int64_t* cause_counter);

  void FinishWait(ManagedTxn* t, const ObjectId& object);

  storage::Database* db_;
  const Clock* clock_;
  GtmOptions options_;
  SstExecutor sst_;
  std::map<ObjectId, std::unique_ptr<ObjectState>> objects_;
  std::map<TxnId, std::unique_ptr<ManagedTxn>> txns_;
  std::vector<GtmEvent> events_;
  GtmMetrics metrics_;
  TraceLog trace_;
};

}  // namespace preserial::gtm

#endif  // PRESERIAL_GTM_GTM_H_
