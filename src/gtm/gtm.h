#ifndef PRESERIAL_GTM_GTM_H_
#define PRESERIAL_GTM_GTM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "gtm/conflict.h"
#include "gtm/endpoint.h"
#include "gtm/managed_txn.h"
#include "gtm/metrics.h"
#include "gtm/object_state.h"
#include "gtm/policies.h"
#include "gtm/sst.h"
#include "gtm/trace.h"
#include "lock/waits_for_graph.h"
#include "obs/explain.h"
#include "semantics/operation.h"
#include "storage/database.h"

namespace preserial::gtm {

// The Global Transaction Manager — the paper's middleware and this
// library's primary contribution.
//
// The GTM pre-serializes long running transactions over *virtual copies* of
// database data. Semantically compatible operations (Weihl forward
// commutativity, Table I) share an object concurrently, each transaction
// operating on its private copy (A_temp); at global commit the
// reconciliation algorithms (eqs. 1-2) merge the copies and a Secure
// System Transaction installs the result in the LDBS under strict 2PL.
// Disconnected or idle transactions *sleep* instead of aborting and may
// awake and finish unless an incompatible operation committed meanwhile.
//
// Event protocol (Algorithms 1-11 of the paper):
//   Begin()          Alg 1    new Active transaction
//   Invoke()         Alg 2    request + execute an operation on a member:
//                             OK        granted, executed on the copy
//                             kWaiting  queued; a GtmEvent fires on grant
//                             kDeadlock refused (would close a WFG cycle);
//                                       caller should RequestAbort
//                             kConstraintViolation refused by the
//                                       constraint-aware admission policy
//   RequestCommit()  Alg 3+4  reconcile all copies, run the SST, install
//   RequestAbort()   Alg 5+6  discard copies, release admissions
//   Sleep()          Alg 7+8  park a disconnected/idle transaction
//   Awake()          Alg 9+10 resume; kAborted when an incompatible
//                             operation was admitted/committed meanwhile
//
// Unlock (Alg 11) is internal: whenever an object's pending set shrinks,
// the longest FIFO prefix of mutually-admissible, non-sleeping waiters is
// admitted. (This generalizes the paper's empty-pending trigger: admission
// also happens when the remaining holders became compatible with the head
// waiter, which strictly increases concurrency and preserves FIFO
// fairness.)
//
// Externally synchronized; the discrete-event simulator drives it directly
// and GtmService adds a thread-safe blocking facade. In a sharded cluster
// each shard is one Gtm and cluster::GtmRouter speaks GtmEndpoint on top.
class Gtm : public GtmEndpoint {
 public:
  Gtm(storage::Database* db, const Clock* clock, GtmOptions options = {});

  Gtm(const Gtm&) = delete;
  Gtm& operator=(const Gtm&) = delete;

  // --- object registry -------------------------------------------------------

  // Binds a GTM object to database cells: member m lives in
  // `member_columns[m]` of the row `key` in `table`. The committed values
  // are cached as X_permanent. All writes to the bound cells must flow
  // through this Gtm.
  Status RegisterObject(const ObjectId& id, const std::string& table,
                        const storage::Value& key,
                        std::vector<size_t> member_columns,
                        semantics::LogicalDependencies deps = {});

  // Convenience: binds every non-primary-key column of the row as a member
  // (member order = column order).
  Status RegisterRowObject(const ObjectId& id, const std::string& table,
                           const storage::Value& key);

  bool HasObject(const ObjectId& id) const { return objects_.count(id) > 0; }
  Result<const ObjectState*> GetObject(const ObjectId& id) const;
  // Ids of every registered object, lexicographic. Used by offline checkers
  // to snapshot the full permanent state before/after a run.
  std::vector<ObjectId> ObjectIds() const;

  // Reloads X_permanent from the LDBS. Only legal while no transaction
  // holds or waits on the object — it exists for rebinding after external
  // writes (e.g. a bulk load or recovery that bypassed this Gtm), not for
  // concurrent use.
  Status RefreshPermanent(const ObjectId& id);
  // Cached committed value (X_permanent) of a member.
  Result<storage::Value> PermanentValue(const ObjectId& id,
                                        semantics::MemberId member) const;

  // --- the event interface (Algorithms 1-11) --------------------------------

  // Starts a transaction. Higher-priority transactions queue ahead of
  // lower-priority ones on every wait queue (Sec. VII starvation remedy);
  // the default 0 gives plain FIFO.
  TxnId Begin(int priority = 0) override;
  Status Invoke(TxnId txn, const ObjectId& object, semantics::MemberId member,
                const semantics::Operation& op) override;

  // --- idempotent endpoints (at-least-once transport) ------------------------
  //
  // Each *Once call is stamped with a client-chosen request_seq, unique per
  // transaction and reused verbatim on retries. The first delivery executes
  // and caches the reply; redeliveries return the cached reply without
  // re-executing — a retried CommitOnce can never apply twice. The one
  // non-literal replay is a cached kWaiting Invoke: by the time the retry
  // arrives the queued operation may have been granted (or the transaction
  // killed), so the reply is re-derived from the current state.
  Status InvokeOnce(TxnId txn, uint64_t seq, const ObjectId& object,
                    semantics::MemberId member,
                    const semantics::Operation& op) override;
  Status CommitOnce(TxnId txn, uint64_t seq) override;
  Status AbortOnce(TxnId txn, uint64_t seq) override;
  Status SleepOnce(TxnId txn, uint64_t seq) override;
  Status AwakeOnce(TxnId txn, uint64_t seq) override;

  // Reads the transaction's virtual copy (granting a read if necessary).
  Result<storage::Value> ReadLocal(TxnId txn, const ObjectId& object,
                                   semantics::MemberId member) override;
  Status RequestCommit(TxnId txn) override;
  Status RequestAbort(TxnId txn) override;
  Status Sleep(TxnId txn) override;
  Status Awake(TxnId txn) override;

  // --- two-phase commit (cross-shard transactions) ---------------------------
  //
  // A cross-shard global commit splits Algorithms 3 + 4 at the SST boundary.
  // Prepare runs the local-commit half (Alg 3): every touched member is
  // reconciled and validated — including the Algorithm 9 staleness check
  // (X_tc vs A_t_sleep) when the branch is still Sleeping — without touching
  // the LDBS. The transaction parks in Committing until the coordinator
  // decides. CommitPrepared re-runs reconciliation against the then-current
  // X_permanent (compatible transactions may have committed in between and
  // their deltas must not be clobbered), executes the SST and installs
  // X_new (Alg 4); AbortPrepared discards the prepared state and aborts.
  // Both are idempotent on a transaction that already reached the matching
  // terminal state, so a recovering coordinator can safely re-drive an
  // in-doubt shard.
  // RequestCommit == Prepare + CommitPrepared (single-shard fast path).
  Status Prepare(TxnId txn);
  Status CommitPrepared(TxnId txn);
  Status AbortPrepared(TxnId txn);
  bool IsPrepared(TxnId txn) const { return prepared_.count(txn) > 0; }

  // --- wait management -------------------------------------------------------

  // Admission notifications since the last call (queued invocations that
  // were granted).
  std::vector<GtmEvent> TakeEvents() override;

  // Aborts transactions that have been Waiting longer than `max_wait`
  // (timeout-based deadlock/starvation resolution). Returns their ids.
  std::vector<TxnId> AbortExpiredWaits(Duration max_wait) override;

  // The inactivity oracle Ξ (paper Alg 8): puts every Active or Waiting
  // transaction whose last middleware interaction is older than
  // `idle_timeout` to Sleep, exactly as an explicit disconnection would.
  // Returns the newly sleeping transactions.
  std::vector<TxnId> SleepIdleTransactions(Duration idle_timeout);

  // Waits-for-graph sweep: finds every deadlock cycle and aborts one
  // victim per cycle (the youngest transaction, i.e. highest id). Returns
  // the victims. Complements at-enqueue detection for deployments that
  // disable it (the paper's classical 2PL treatment of deadlocks).
  std::vector<TxnId> DetectAndResolveDeadlocks();

  // --- introspection ---------------------------------------------------------

  Result<TxnState> StateOf(TxnId txn) const override;
  const ManagedTxn* GetTxn(TxnId txn) const;
  // Ids of transactions currently in `state` (ascending).
  std::vector<TxnId> TransactionsInState(TxnState state) const;
  // Transactions that are not yet Committed/Aborted.
  size_t live_transaction_count() const;
  GtmMetrics& metrics() { return metrics_; }
  const GtmMetrics& metrics() const { return metrics_; }
  const GtmOptions& options() const { return options_; }
  const SstExecutor& sst() const { return sst_; }
  // For failure injection in tests/chaos runs.
  SstExecutor* mutable_sst() { return &sst_; }

  // Event trace (disabled by default): trace()->Enable(capacity) records
  // every externally visible state transition for audits and debugging.
  TraceLog* trace() { return &trace_; }
  const TraceLog& trace() const { return trace_; }

  // Waits-for graph over waiting transactions (for tests and diagnostics).
  lock::WaitsForGraph BuildWaitsForGraph() const;

  // Full introspection snapshot: live lock table (sharing sets + wait
  // queues), waits-for edges with the object that induces each, live
  // transactions, and — for every Sleeping transaction — the Algorithm 9
  // verdict (would Awake() abort right now, and why) evaluated without
  // side effects. Render with obs::GtmExplain::ToString().
  obs::GtmExplain Explain() const;

  // Cross-checks internal invariants (object/txn agreement, queue
  // consistency); used heavily by the test suite.
  Status CheckInvariants() const;

 private:
  ManagedTxn* GetLiveTxn(TxnId txn);
  ObjectState* GetObjectMutable(const ObjectId& id);

  // Dedup lookup shared by the *Once endpoints. Returns the cached reply
  // when `seq` already executed for `txn` (terminal transactions answer
  // too), bumping the duplicates_suppressed counter; null on first
  // delivery or unknown transaction.
  const Status* LookupCachedReply(TxnId txn, uint64_t seq);
  // Runs `call` on first delivery and caches its reply under `seq`.
  Status ExecuteOnce(TxnId txn, uint64_t seq,
                     const std::function<Status()>& call);

  // Member-level conflict respecting the semantic_sharing ablation switch.
  bool EffectiveConflict(semantics::OpClass held, semantics::OpClass requested,
                         semantics::MemberId held_member,
                         semantics::MemberId req_member,
                         const semantics::LogicalDependencies& deps) const;
  std::optional<TxnId> AdmissionConflict(const ObjectState& obj,
                                         TxnId requester,
                                         semantics::MemberId member,
                                         semantics::OpClass cls) const;
  std::optional<TxnId> AwakeConflict(const ObjectState& obj, TxnId sleeper,
                                     TimePoint slept_at) const;

  // Eqs. 1-2 with the options_.mutation defect (if any) applied — the one
  // funnel both PrepareInternal and CommitPrepared reconcile through.
  Result<storage::Value> ReconcileCell(semantics::OpClass cls,
                                       const storage::Value& read,
                                       const storage::Value& temp,
                                       const storage::Value& permanent) const;

  // Grants (member, op.cls) to txn on obj with a fresh snapshot and applies
  // `op` to the new copy.
  Status GrantAndApply(ManagedTxn* t, ObjectState* obj,
                       semantics::MemberId member,
                       const semantics::Operation& op);
  // Applies `op` to an existing virtual copy.
  Status ApplyToCopy(ManagedTxn* t, ObjectState* obj,
                     semantics::MemberId member,
                     const semantics::Operation& op);
  // Constraint-aware admission projection (Sec. VII mitigation 2).
  Status CheckConstraintAdmission(const ManagedTxn& t, const ObjectState& obj,
                                  semantics::MemberId member,
                                  const semantics::Operation& op) const;

  // Alg 11 generalization: admit the FIFO prefix of admissible waiters.
  void PumpWaiters(ObjectState* obj);

  // Enumerates blocking edges (waiter -> holder, induced by object) —
  // shared by BuildWaitsForGraph and Explain.
  void ForEachWaitEdge(
      const std::function<void(TxnId waiter, TxnId holder,
                               const ObjectId& object)>& fn) const;

  // Phase 1 of the 2PC split (Alg 3 local commit): reconcile + validate and
  // park `t` in Committing. Shared by RequestCommit and Prepare.
  Status PrepareInternal(ManagedTxn* t);

  // Checks the reconciled values of a just-prepared `t` against the LDBS
  // CHECK constraints, so a doomed branch votes no in phase 1 instead of
  // surfacing as a phase-2 heuristic hazard. Aborts `t` on violation.
  Status ValidatePrepared(ManagedTxn* t);

  // Shared abort path (Alg 5+6); `counter` points at the cause counter to
  // bump.
  void AbortInternal(ManagedTxn* t, int64_t* cause_counter);

  void FinishWait(ManagedTxn* t, const ObjectId& object);

  storage::Database* db_;
  const Clock* clock_;
  GtmOptions options_;
  SstExecutor sst_;
  std::map<ObjectId, std::unique_ptr<ObjectState>> objects_;
  std::map<TxnId, std::unique_ptr<ManagedTxn>> txns_;
  // Transactions parked in Committing by Prepare, awaiting the
  // coordinator's decision.
  std::set<TxnId> prepared_;
  std::vector<GtmEvent> events_;
  GtmMetrics metrics_;
  TraceLog trace_;
};

}  // namespace preserial::gtm

#endif  // PRESERIAL_GTM_GTM_H_
