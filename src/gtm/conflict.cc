#include "gtm/conflict.h"

#include "semantics/compatibility.h"

namespace preserial::gtm {

using semantics::LogicalDependencies;
using semantics::MemberId;
using semantics::OpClass;

bool DefaultClassConflict(OpClass held, OpClass requested) {
  return !semantics::Compatible(held, requested);
}

bool ExclusiveClassConflict(OpClass held, OpClass requested) {
  return !(held == OpClass::kRead && requested == OpClass::kRead);
}

bool OpsConflict(const MemberOps& held, MemberId member, OpClass cls,
                 const LogicalDependencies& deps,
                 const ClassConflictFn& conflict) {
  for (const auto& [held_member, held_cls] : held) {
    if (!deps.Dependent(held_member, member)) continue;
    if (conflict(held_cls, cls)) return true;
  }
  return false;
}

bool OpsSetsConflict(const MemberOps& a, const MemberOps& b,
                     const LogicalDependencies& deps,
                     const ClassConflictFn& conflict) {
  for (const auto& [member, cls] : a) {
    if (OpsConflict(b, member, cls, deps, conflict)) return true;
  }
  return false;
}

std::optional<TxnId> FindAdmissionConflict(const ObjectState& obj,
                                           TxnId requester, MemberId member,
                                           OpClass cls,
                                           const ClassConflictFn& conflict) {
  for (const auto& [txn, ops] : obj.pending) {
    if (txn == requester) continue;
    if (obj.IsSleeping(txn)) continue;  // Sleepers do not block admission.
    if (OpsConflict(ops, member, cls, obj.deps, conflict)) return txn;
  }
  for (const auto& [txn, ops] : obj.committing) {
    if (txn == requester) continue;
    if (OpsConflict(ops, member, cls, obj.deps, conflict)) return txn;
  }
  return std::nullopt;
}

std::optional<TxnId> FindAwakeConflict(const ObjectState& obj, TxnId sleeper,
                                       TimePoint slept_at,
                                       const ClassConflictFn& conflict) {
  // The sleeper's full footprint on the object: granted (pending) classes
  // plus the classes of its still-queued invocations — a buffered op is
  // re-admitted at the wake, so a conflicting live holder or a conflicting
  // commit newer than the sleep dooms the reconnect just like one against a
  // held grant. Granted classes win per member (queued upgrades don't
  // exist, so the overlap is at most same-class).
  MemberOps own = obj.OpsOf(sleeper);
  for (const WaitEntry& w : obj.waiting) {
    if (w.txn == sleeper) own.emplace(w.member, w.op.cls);
  }
  if (own.empty()) return std::nullopt;
  for (const auto& [txn, ops] : obj.pending) {
    if (txn == sleeper) continue;
    if (obj.IsSleeping(txn)) continue;  // A fellow sleeper is no threat yet.
    if (OpsSetsConflict(own, ops, obj.deps, conflict)) return txn;
  }
  for (const auto& [txn, ops] : obj.committing) {
    if (txn == sleeper) continue;
    if (OpsSetsConflict(own, ops, obj.deps, conflict)) return txn;
  }
  for (const CommittedEntry& e : obj.committed) {
    if (e.txn == sleeper) continue;
    if (e.commit_time <= slept_at) continue;  // Predates the sleep.
    if (OpsSetsConflict(own, e.ops, obj.deps, conflict)) return e.txn;
  }
  return std::nullopt;
}

}  // namespace preserial::gtm
