#include "gtm/gtm.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "semantics/commutativity.h"
#include "semantics/reconcile.h"
#include "storage/table.h"

namespace preserial::gtm {

using semantics::MemberId;
using semantics::OpClass;
using semantics::Operation;
using storage::Value;

Gtm::Gtm(storage::Database* db, const Clock* clock, GtmOptions options)
    : db_(db), clock_(clock), options_(options), sst_(db) {}

// --- object registry ---------------------------------------------------------

Status Gtm::RegisterObject(const ObjectId& id, const std::string& table,
                           const Value& key,
                           std::vector<size_t> member_columns,
                           semantics::LogicalDependencies deps) {
  if (objects_.count(id) > 0) {
    return Status::AlreadyExists("object '" + id + "' already registered");
  }
  if (member_columns.empty()) {
    return Status::InvalidArgument("object needs at least one member");
  }
  PRESERIAL_ASSIGN_OR_RETURN(storage::Table * tab, db_->GetTable(table));
  auto obj = std::make_unique<ObjectState>();
  obj->id = id;
  obj->table = table;
  obj->key = key;
  obj->deps = std::move(deps);
  for (size_t col : member_columns) {
    if (col >= tab->schema().num_columns()) {
      return Status::InvalidArgument(
          StrFormat("member column %zu out of range for '%s'", col,
                    table.c_str()));
    }
    PRESERIAL_ASSIGN_OR_RETURN(Value v, tab->GetColumnByKey(key, col));
    obj->member_columns.push_back(col);
    obj->permanent.push_back(std::move(v));
  }
  objects_.emplace(id, std::move(obj));
  return Status::Ok();
}

Status Gtm::RegisterRowObject(const ObjectId& id, const std::string& table,
                              const Value& key) {
  PRESERIAL_ASSIGN_OR_RETURN(storage::Table * tab, db_->GetTable(table));
  std::vector<size_t> columns;
  for (size_t c = 0; c < tab->schema().num_columns(); ++c) {
    if (c != tab->schema().primary_key()) columns.push_back(c);
  }
  return RegisterObject(id, table, key, std::move(columns));
}

Result<const ObjectState*> Gtm::GetObject(const ObjectId& id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no GTM object '" + id + "'");
  }
  return static_cast<const ObjectState*>(it->second.get());
}

std::vector<ObjectId> Gtm::ObjectIds() const {
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [id, _] : objects_) out.push_back(id);
  return out;
}

ObjectState* Gtm::GetObjectMutable(const ObjectId& id) {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : it->second.get();
}

Status Gtm::RefreshPermanent(const ObjectId& id) {
  ObjectState* obj = GetObjectMutable(id);
  if (obj == nullptr) return Status::NotFound("no GTM object '" + id + "'");
  if (!obj->pending.empty() || !obj->waiting.empty() ||
      !obj->committing.empty()) {
    return Status::FailedPrecondition(
        "RefreshPermanent requires a quiescent object (no pending, waiting "
        "or committing transactions)");
  }
  PRESERIAL_ASSIGN_OR_RETURN(storage::Table * tab, db_->GetTable(obj->table));
  for (size_t m = 0; m < obj->num_members(); ++m) {
    PRESERIAL_ASSIGN_OR_RETURN(
        Value v, tab->GetColumnByKey(obj->key, obj->member_columns[m]));
    obj->permanent[m] = std::move(v);
  }
  return Status::Ok();
}

Result<Value> Gtm::PermanentValue(const ObjectId& id, MemberId member) const {
  PRESERIAL_ASSIGN_OR_RETURN(const ObjectState* obj, GetObject(id));
  if (member >= obj->num_members()) {
    return Status::InvalidArgument(
        StrFormat("member %zu out of range for '%s'", member, id.c_str()));
  }
  return obj->permanent[member];
}

// --- helpers -------------------------------------------------------------------

ManagedTxn* Gtm::GetLiveTxn(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return nullptr;
  return IsLive(it->second->state()) ? it->second.get() : nullptr;
}

const ManagedTxn* Gtm::GetTxn(TxnId txn) const {
  auto it = txns_.find(txn);
  return it == txns_.end() ? nullptr : it->second.get();
}

Result<TxnState> Gtm::StateOf(TxnId txn) const {
  const ManagedTxn* t = GetTxn(txn);
  if (t == nullptr) {
    return Status::NotFound(StrFormat("unknown GTM txn %llu",
                                      static_cast<unsigned long long>(txn)));
  }
  return t->state();
}

std::vector<TxnId> Gtm::TransactionsInState(TxnState state) const {
  std::vector<TxnId> out;
  for (const auto& [id, t] : txns_) {
    if (t->state() == state) out.push_back(id);
  }
  return out;
}

size_t Gtm::live_transaction_count() const {
  size_t n = 0;
  for (const auto& [_, t] : txns_) {
    if (IsLive(t->state())) ++n;
  }
  return n;
}

bool Gtm::EffectiveConflict(OpClass held, OpClass requested, MemberId held_m,
                            MemberId req_m,
                            const semantics::LogicalDependencies& deps) const {
  if (!deps.Dependent(held_m, req_m)) return false;
  return options_.semantic_sharing ? DefaultClassConflict(held, requested)
                                   : ExclusiveClassConflict(held, requested);
}

std::optional<TxnId> Gtm::AdmissionConflict(const ObjectState& obj,
                                            TxnId requester, MemberId member,
                                            OpClass cls) const {
  ClassConflictFn fn = options_.semantic_sharing
                           ? ClassConflictFn(DefaultClassConflict)
                           : ClassConflictFn(ExclusiveClassConflict);
  if (options_.mutation == GtmMutation::kAdmitAssignWithAddSub) {
    const ClassConflictFn base = std::move(fn);
    fn = [base](OpClass held, OpClass requested) {
      const bool assign_addsub =
          (held == OpClass::kUpdateAssign &&
           requested == OpClass::kUpdateAddSub) ||
          (held == OpClass::kUpdateAddSub &&
           requested == OpClass::kUpdateAssign);
      return assign_addsub ? false : base(held, requested);
    };
  }
  return FindAdmissionConflict(obj, requester, member, cls, fn);
}

std::optional<TxnId> Gtm::AwakeConflict(const ObjectState& obj, TxnId sleeper,
                                        TimePoint slept_at) const {
  const ClassConflictFn fn = options_.semantic_sharing
                                 ? ClassConflictFn(DefaultClassConflict)
                                 : ClassConflictFn(ExclusiveClassConflict);
  if (options_.mutation == GtmMutation::kSkipAwakeStalenessCheck) {
    // Pretend the sleep just started: no committed X_tc can be newer, so
    // the Algorithm 9 staleness comparison never fires. Live-holder
    // conflicts are still honoured.
    slept_at = kNoTimeout;
  }
  return FindAwakeConflict(obj, sleeper, slept_at, fn);
}

Result<Value> Gtm::ReconcileCell(OpClass cls, const Value& read,
                                 const Value& temp,
                                 const Value& permanent) const {
  switch (options_.mutation) {
    case GtmMutation::kReconcileMulDivAsAddSub:
      if (cls == OpClass::kUpdateMulDiv) {
        return semantics::Reconcile(OpClass::kUpdateAddSub, read, temp,
                                    permanent);
      }
      break;
    case GtmMutation::kReconcileAddSubLastWrite:
      if (cls == OpClass::kUpdateAddSub) return temp;
      break;
    default:
      break;
  }
  return semantics::Reconcile(cls, read, temp, permanent);
}

// --- Algorithm 1: begin --------------------------------------------------------

TxnId Gtm::Begin(int priority) {
  const TxnId id = db_->NextTxnId();
  txns_.emplace(id,
                std::make_unique<ManagedTxn>(id, clock_->Now(), priority));
  ++metrics_.counters().begun;
  trace_.Record(clock_->Now(), TraceEventKind::kBegin, id);
  return id;
}

// --- constraint-aware admission (Sec. VII mitigation 2) ------------------------

Status Gtm::CheckConstraintAdmission(const ManagedTxn& t,
                                     const ObjectState& obj, MemberId member,
                                     const Operation& op) const {
  if (!options_.constraint_aware_admission) return Status::Ok();
  if (op.cls != OpClass::kUpdateAddSub) return Status::Ok();

  Result<storage::Table*> tab = db_->GetTable(obj.table);
  if (!tab.ok()) return tab.status();
  const std::vector<const storage::CheckConstraint*> constraints =
      tab.value()->ConstraintsOn(obj.member_columns[member]);
  if (constraints.empty()) return Status::Ok();

  const Cell cell{obj.id, member};
  // This transaction's net delta after the proposed operation.
  const Value own_read = t.HasTemp(cell)
                             ? obj.read.at(t.id()).at(member)
                             : obj.permanent[member];
  const Value own_base = t.HasTemp(cell) ? t.GetTemp(cell).value()
                                         : obj.permanent[member];
  PRESERIAL_ASSIGN_OR_RETURN(Value own_after,
                             semantics::Transition(own_base, op));

  // Pessimistic projection: committed value plus every holder's *negative*
  // net delta (positive deltas may still abort, so they do not count).
  PRESERIAL_ASSIGN_OR_RETURN(Value projected,
                             Value::Sub(own_after, own_read));
  PRESERIAL_ASSIGN_OR_RETURN(projected,
                             Value::Add(projected, obj.permanent[member]));
  for (const auto& [holder, ops] : obj.pending) {
    if (holder == t.id()) continue;
    auto cls_it = ops.find(member);
    if (cls_it == ops.end() || cls_it->second != OpClass::kUpdateAddSub) {
      continue;
    }
    const ManagedTxn* h = GetTxn(holder);
    if (h == nullptr || !h->HasTemp(cell)) continue;
    const Value& h_read = obj.read.at(holder).at(member);
    PRESERIAL_ASSIGN_OR_RETURN(
        Value h_delta, Value::Sub(h->GetTemp(cell).value(), h_read));
    PRESERIAL_ASSIGN_OR_RETURN(int sign, Value::Compare(h_delta,
                                                        Value::Int(0)));
    if (sign < 0) {
      PRESERIAL_ASSIGN_OR_RETURN(projected, Value::Add(projected, h_delta));
    }
  }
  for (const storage::CheckConstraint* c : constraints) {
    PRESERIAL_ASSIGN_OR_RETURN(bool holds, c->Holds(projected));
    if (!holds) {
      return Status::ConstraintViolation(StrFormat(
          "admission denied on %s#%zu: projected value %s violates '%s'",
          obj.id.c_str(), member, projected.ToString().c_str(),
          c->name().c_str()));
    }
  }
  return Status::Ok();
}

// --- copy manipulation ----------------------------------------------------------

Status Gtm::ApplyToCopy(ManagedTxn* t, ObjectState* obj, MemberId member,
                        const Operation& op) {
  const Cell cell{obj->id, member};
  PRESERIAL_ASSIGN_OR_RETURN(Value temp, t->GetTemp(cell));
  Status admission = CheckConstraintAdmission(*t, *obj, member, op);
  if (!admission.ok()) {
    ++metrics_.counters().admission_denials;
    if (trace_.enabled()) {
      trace_.Record(clock_->Now(), TraceEventKind::kAdmissionDenial, t->id(),
                    obj->id, op.ToString());
    }
    return admission;
  }
  PRESERIAL_ASSIGN_OR_RETURN(Value next, semantics::Transition(temp, op));
  t->SetTemp(cell, std::move(next));
  ++t->ops_executed;
  // Every successful copy mutation (first grant, repeated same-class op,
  // upgrade, re-grant at Awake) lands here, so this is the one place the
  // complete effect history can be recorded.
  if (trace_.enabled()) {
    trace_.RecordOp(clock_->Now(), TraceEventKind::kApply, t->id(), obj->id,
                    member, op);
  }
  return Status::Ok();
}

Status Gtm::GrantAndApply(ManagedTxn* t, ObjectState* obj, MemberId member,
                          const Operation& op) {
  const Cell cell{obj->id, member};
  // Fresh snapshot: X_read = A_temp = X_permanent (Alg 2 postcondition).
  obj->pending[t->id()][member] = op.cls;
  obj->read[t->id()][member] = obj->permanent[member];
  t->GrantClass(cell, op.cls);
  t->SetTemp(cell, obj->permanent[member]);
  t->NoteInvolved(obj->id);
  Status s = ApplyToCopy(t, obj, member, op);
  if (!s.ok()) {
    // Roll the grant back; the transaction keeps running without it.
    auto pit = obj->pending.find(t->id());
    if (pit != obj->pending.end()) {
      pit->second.erase(member);
      if (pit->second.empty()) obj->pending.erase(pit);
    }
    auto rit = obj->read.find(t->id());
    if (rit != obj->read.end()) {
      rit->second.erase(member);
      if (rit->second.empty()) obj->read.erase(rit);
    }
    t->RevokeGrant(cell);
    t->ClearTemp(cell);
    return s;
  }
  return Status::Ok();
}

// --- Algorithm 2: invocation ----------------------------------------------------

Status Gtm::Invoke(TxnId txn, const ObjectId& object, MemberId member,
                   const Operation& op) {
  ManagedTxn* t = GetLiveTxn(txn);
  if (t == nullptr || t->state() != TxnState::kActive) {
    return Status::FailedPrecondition(
        StrFormat("Invoke requires an Active transaction (txn %llu is %s)",
                  static_cast<unsigned long long>(txn),
                  t == nullptr ? "unknown/terminal"
                               : TxnStateName(t->state())));
  }
  PRESERIAL_RETURN_IF_ERROR(op.Validate());
  t->set_last_activity(clock_->Now());
  ObjectState* obj = GetObjectMutable(object);
  if (obj == nullptr) {
    return Status::NotFound("no GTM object '" + object + "'");
  }
  if (member >= obj->num_members()) {
    return Status::InvalidArgument(
        StrFormat("member %zu out of range for '%s'", member,
                  object.c_str()));
  }
  ++metrics_.counters().invocations;
  const Cell cell{object, member};

  if (t->HasGrant(cell)) {
    const OpClass held = t->GrantedClass(cell).value();
    if (op.cls == held || op.cls == OpClass::kRead) {
      // Same class (or a read of the own copy): execute directly.
      return ApplyToCopy(t, obj, member, op);
    }
    if (held == OpClass::kRead) {
      // Upgrade read -> mutation: allowed only when nobody else conflicts
      // (queued upgrades are not supported; see class comment).
      if (auto blocker = AdmissionConflict(*obj, txn, member, op.cls)) {
        return Status::Conflict(StrFormat(
            "upgrade of txn %llu on %s#%zu blocked by txn %llu",
            static_cast<unsigned long long>(txn), object.c_str(), member,
            static_cast<unsigned long long>(*blocker)));
      }
      Status admission = CheckConstraintAdmission(*t, *obj, member, op);
      if (!admission.ok()) {
        ++metrics_.counters().admission_denials;
        return admission;
      }
      obj->pending[txn][member] = op.cls;
      t->GrantClass(cell, op.cls);
      return ApplyToCopy(t, obj, member, op);
    }
    // Mixing two different mutation classes on one member breaks the
    // paper's constraint (i).
    return Status::FailedPrecondition(StrFormat(
        "txn %llu already performs %s on %s#%zu; cannot also perform %s",
        static_cast<unsigned long long>(txn), OpClassName(held),
        object.c_str(), member, OpClassName(op.cls)));
  }

  // Fresh admission.
  const std::optional<TxnId> blocker =
      AdmissionConflict(*obj, txn, member, op.cls);
  bool starved = false;
  if (!blocker.has_value() && options_.starvation_waiter_threshold > 0 &&
      CountIncompatibleWaiters(*obj, txn, member, op.cls) >=
          options_.starvation_waiter_threshold) {
    starved = true;
    ++metrics_.counters().starvation_denials;
  }
  if (!blocker.has_value() && !starved) {
    Status admission = CheckConstraintAdmission(*t, *obj, member, op);
    if (!admission.ok()) {
      ++metrics_.counters().admission_denials;
      return admission;
    }
    const bool shared = !obj->pending.empty() || !obj->committing.empty();
    PRESERIAL_RETURN_IF_ERROR(GrantAndApply(t, obj, member, op));
    ++metrics_.counters().granted_immediately;
    if (shared) ++metrics_.counters().shared_grants;
    if (trace_.enabled()) {
      trace_.RecordOp(clock_->Now(), TraceEventKind::kGrant, txn, object,
                      member, op,
                      op.ToString() + (shared ? " [shared]" : ""));
    }
    return Status::Ok();
  }

  // Wait path (Alg 2, second case): A_state = Waiting, enqueue, A_temp = ⊥.
  // Position: behind every entry of equal or higher priority (FIFO within
  // a priority band).
  const TimePoint now = clock_->Now();
  const WaitEntry entry{txn, member, op, now, t->priority()};
  auto pos = obj->waiting.begin();
  while (pos != obj->waiting.end() && pos->priority >= entry.priority) {
    ++pos;
  }
  obj->waiting.insert(pos, entry);
  t->set_state(TxnState::kWaiting);
  t->SetWaitSince(object, now);
  t->NoteInvolved(object);
  ++metrics_.counters().waits;
  if (trace_.enabled()) {
    trace_.RecordOp(now, TraceEventKind::kWait, txn, object, member, op,
                    op.ToString());
  }

  if (options_.deadlock_detection) {
    lock::WaitsForGraph wfg = BuildWaitsForGraph();
    if (wfg.HasCycleFrom(txn)) {
      // Refuse the request: back the entry out, restore Active.
      obj->waiting.erase(
          std::remove_if(obj->waiting.begin(), obj->waiting.end(),
                         [txn, member](const WaitEntry& w) {
                           return w.txn == txn && w.member == member;
                         }),
          obj->waiting.end());
      t->set_state(TxnState::kActive);
      t->ClearWaitSince(object);
      ++metrics_.counters().deadlock_refusals;
      trace_.Record(now, TraceEventKind::kDeadlockRefusal, txn, object);
      PumpWaiters(obj);
      return Status::Deadlock(StrFormat(
          "txn %llu waiting on %s#%zu would close a waits-for cycle",
          static_cast<unsigned long long>(txn), object.c_str(), member));
    }
  }
  return Status::Waiting(StrFormat(
      "txn %llu queued on %s#%zu%s", static_cast<unsigned long long>(txn),
      object.c_str(), member,
      starved ? " (starvation guard)"
              : StrFormat(" behind txn %llu",
                          static_cast<unsigned long long>(*blocker))
                    .c_str()));
}

// --- idempotent endpoints -------------------------------------------------------

const Status* Gtm::LookupCachedReply(TxnId txn, uint64_t seq) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return nullptr;
  const Status* cached = it->second->CachedReply(seq);
  if (cached != nullptr) {
    ++metrics_.counters().duplicates_suppressed;
    if (trace_.enabled()) {
      trace_.Record(clock_->Now(), TraceEventKind::kDuplicateSuppressed, txn,
                    "", StrFormat("seq %llu -> %s",
                                  static_cast<unsigned long long>(seq),
                                  StatusCodeName(cached->code())));
    }
  }
  return cached;
}

Status Gtm::ExecuteOnce(TxnId txn, uint64_t seq,
                        const std::function<Status()>& call) {
  if (const Status* cached = LookupCachedReply(txn, seq)) return *cached;
  Status s = call();
  auto it = txns_.find(txn);
  if (it != txns_.end()) it->second->CacheReply(seq, s);
  return s;
}

Status Gtm::InvokeOnce(TxnId txn, uint64_t seq, const ObjectId& object,
                       MemberId member, const Operation& op) {
  if (const Status* cached = LookupCachedReply(txn, seq)) {
    if (cached->code() != StatusCode::kWaiting) return *cached;
    // The original reply parked the client, but the queue may have moved
    // on; answer from the current truth instead of the stale snapshot.
    ManagedTxn* t = txns_.find(txn)->second.get();
    if (!IsLive(t->state())) {
      return Status::Aborted("transaction aborted while waiting");
    }
    if (t->HasGrant(Cell{object, member})) return Status::Ok();
    return *cached;  // Still queued (or sleeping on the queue).
  }
  Status s = Invoke(txn, object, member, op);
  auto it = txns_.find(txn);
  if (it != txns_.end()) it->second->CacheReply(seq, s);
  return s;
}

Status Gtm::CommitOnce(TxnId txn, uint64_t seq) {
  return ExecuteOnce(txn, seq, [this, txn] { return RequestCommit(txn); });
}

Status Gtm::AbortOnce(TxnId txn, uint64_t seq) {
  return ExecuteOnce(txn, seq, [this, txn] { return RequestAbort(txn); });
}

Status Gtm::SleepOnce(TxnId txn, uint64_t seq) {
  return ExecuteOnce(txn, seq, [this, txn] { return Sleep(txn); });
}

Status Gtm::AwakeOnce(TxnId txn, uint64_t seq) {
  return ExecuteOnce(txn, seq, [this, txn] { return Awake(txn); });
}

Result<Value> Gtm::ReadLocal(TxnId txn, const ObjectId& object,
                             MemberId member) {
  ManagedTxn* t = GetLiveTxn(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("ReadLocal on unknown/terminal txn");
  }
  t->set_last_activity(clock_->Now());
  const Cell cell{object, member};
  if (t->HasTemp(cell)) return t->GetTemp(cell);
  // No copy yet: a read invocation creates one (may wait).
  PRESERIAL_RETURN_IF_ERROR(Invoke(txn, object, member, Operation::Read()));
  return t->GetTemp(cell);
}

// --- Algorithms 3 + 4: commit ---------------------------------------------------

Status Gtm::RequestCommit(TxnId txn) {
  ManagedTxn* t = GetLiveTxn(txn);
  if (t == nullptr || t->state() != TxnState::kActive) {
    return Status::FailedPrecondition(
        "RequestCommit requires an Active transaction (constraint iii)");
  }
  PRESERIAL_RETURN_IF_ERROR(PrepareInternal(t));
  return CommitPrepared(txn);
}

Status Gtm::Prepare(TxnId txn) {
  ManagedTxn* t = GetLiveTxn(txn);
  if (t == nullptr || (t->state() != TxnState::kActive &&
                       t->state() != TxnState::kSleeping)) {
    return Status::FailedPrecondition(
        "Prepare requires an Active or Sleeping transaction");
  }
  if (t->state() == TxnState::kSleeping) {
    // A branch still parked when the coordinator asks for the vote: apply
    // the Algorithm 9 staleness check (X_tc vs A_t_sleep) before letting
    // it commit — an incompatible operation admitted or committed during
    // the sleep dooms the whole global transaction.
    const TimePoint slept_at = t->sleep_since();
    for (const ObjectId& oid : t->involved()) {
      const ObjectState* obj = GetObjectMutable(oid);
      if (obj == nullptr) continue;
      if (obj->IsWaiting(txn)) {
        return Status::FailedPrecondition(StrFormat(
            "Prepare of sleeping txn %llu refused: invocation still queued "
            "on %s",
            static_cast<unsigned long long>(txn), oid.c_str()));
      }
      if (auto blocker = AwakeConflict(*obj, txn, slept_at)) {
        AbortInternal(t, &metrics_.counters().awake_aborts);
        return Status::Aborted(StrFormat(
            "prepare abort: txn %llu conflicted on %s with txn %llu while "
            "sleeping",
            static_cast<unsigned long long>(txn), oid.c_str(),
            static_cast<unsigned long long>(*blocker)));
      }
    }
    // Validation passed: the vote doubles as the awake (Alg 9, case 2).
    for (const ObjectId& oid : t->involved()) {
      ObjectState* obj = GetObjectMutable(oid);
      if (obj != nullptr) obj->sleeping.erase(txn);
    }
    t->total_sleep_time += clock_->Now() - t->sleep_since();
  }
  PRESERIAL_RETURN_IF_ERROR(PrepareInternal(t));
  // Unlike the one-phase path, where a constraint violation simply fails the
  // SST, a yes-vote here is a promise to the coordinator that phase 2 can
  // succeed — so the CHECK constraints are part of the vote.
  PRESERIAL_RETURN_IF_ERROR(ValidatePrepared(t));
  ++metrics_.counters().prepares;
  if (trace_.enabled()) {
    trace_.Record(clock_->Now(), TraceEventKind::kPrepare, txn);
  }
  return Status::Ok();
}

Status Gtm::ValidatePrepared(ManagedTxn* t) {
  const TxnId txn = t->id();
  for (const ObjectId& oid : t->involved()) {
    ObjectState* obj = GetObjectMutable(oid);
    if (obj == nullptr) continue;
    auto cit = obj->committing.find(txn);
    if (cit == obj->committing.end()) continue;
    Result<storage::Table*> tab = db_->GetTable(obj->table);
    if (!tab.ok()) continue;
    for (const auto& [member, cls] : cit->second) {
      const Value& reconciled = obj->new_values[txn][member];
      for (const storage::CheckConstraint* c :
           tab.value()->ConstraintsOn(obj->member_columns[member])) {
        Result<bool> holds = c->Holds(reconciled);
        if (holds.ok() && holds.value()) continue;
        // Build the message before AbortInternal erases the per-txn state
        // that `reconciled` points into.
        Status no_vote = Status::Aborted(StrFormat(
            "prepare validation failed: constraint '%s' on %s rejects "
            "reconciled value %s",
            c->name().c_str(), oid.c_str(), reconciled.ToString().c_str()));
        prepared_.erase(txn);
        AbortInternal(t, &metrics_.counters().constraint_aborts);
        return no_vote;
      }
    }
  }
  return Status::Ok();
}

// Phase 1 (Alg 3, local commit): reconcile + validate every touched member
// and park the transaction in Committing. No LDBS effects.
Status Gtm::PrepareInternal(ManagedTxn* t) {
  const TxnId txn = t->id();
  t->set_state(TxnState::kCommitting);
  for (const ObjectId& oid : t->involved()) {
    ObjectState* obj = GetObjectMutable(oid);
    PRESERIAL_CHECK(obj != nullptr);
    auto pit = obj->pending.find(txn);
    if (pit == obj->pending.end()) continue;
    const MemberOps ops = pit->second;
    for (const auto& [member, cls] : ops) {
      const Cell cell{oid, member};
      const Value& read = obj->read.at(txn).at(member);
      Result<Value> temp = t->GetTemp(cell);
      PRESERIAL_CHECK(temp.ok());
      Result<Value> reconciled =
          ReconcileCell(cls, read, temp.value(), obj->permanent[member]);
      if (!reconciled.ok()) {
        AbortInternal(t, &metrics_.counters().constraint_aborts);
        return Status::Aborted("reconciliation failed: " +
                               reconciled.status().message());
      }
      ++metrics_.counters().reconciliations;
      obj->new_values[txn][member] = std::move(reconciled).value();
    }
    obj->committing[txn] = ops;
    obj->pending.erase(txn);
  }
  prepared_.insert(txn);
  return Status::Ok();
}

Status Gtm::CommitPrepared(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return Status::NotFound(StrFormat("unknown GTM txn %llu",
                                      static_cast<unsigned long long>(txn)));
  }
  ManagedTxn* t = it->second.get();
  if (t->state() == TxnState::kCommitted) {
    return Status::Ok();  // Idempotent redrive by a recovering coordinator.
  }
  if (t->state() != TxnState::kCommitting || prepared_.count(txn) == 0) {
    return Status::FailedPrecondition(StrFormat(
        "CommitPrepared requires a Prepared transaction (txn %llu is %s)",
        static_cast<unsigned long long>(txn), TxnStateName(t->state())));
  }

  // Re-reconcile against the *current* X_permanent: a compatible
  // transaction may have committed on the same member since Prepare, and
  // its delta must not be clobbered (the merge of eqs. 1-2 is re-run on
  // the fresh base, exactly as the one-shot commit would).
  std::vector<SstExecutor::CellWrite> writes;
  for (const ObjectId& oid : t->involved()) {
    ObjectState* obj = GetObjectMutable(oid);
    PRESERIAL_CHECK(obj != nullptr);
    auto cit = obj->committing.find(txn);
    if (cit == obj->committing.end()) continue;
    for (const auto& [member, cls] : cit->second) {
      const Cell cell{oid, member};
      const Value& read = obj->read.at(txn).at(member);
      Result<Value> temp = t->GetTemp(cell);
      PRESERIAL_CHECK(temp.ok());
      Result<Value> reconciled =
          ReconcileCell(cls, read, temp.value(), obj->permanent[member]);
      if (!reconciled.ok()) {
        prepared_.erase(txn);
        AbortInternal(t, &metrics_.counters().constraint_aborts);
        return Status::Aborted("reconciliation failed: " +
                               reconciled.status().message());
      }
      obj->new_values[txn][member] = reconciled.value();
      if (cls != OpClass::kRead) {
        writes.push_back(SstExecutor::CellWrite{
            obj->table, obj->key, obj->member_columns[member],
            std::move(reconciled).value()});
      }
    }
  }

  // The Secure System Transaction (assumed instantaneous, Sec. VI-A).
  // Transient failures are retried per the Sec. VII recovery policy.
  Status sst_status = sst_.Execute(writes);
  for (int attempt = 0;
       !sst_status.ok() && sst_status.code() == StatusCode::kUnavailable &&
       attempt < options_.sst_retry_limit;
       ++attempt) {
    ++metrics_.counters().sst_retries;
    sst_status = sst_.Execute(writes);
  }
  metrics_.counters().sst_executed = sst_.counters().executed;
  metrics_.counters().sst_failed = sst_.counters().failed;
  metrics_.counters().sst_cells_written = sst_.counters().cells_written;
  metrics_.counters().sst_injected_failures = sst_.counters().injected_failures;
  if (!sst_status.ok()) {
    int64_t* cause = sst_status.code() == StatusCode::kConstraintViolation
                         ? &metrics_.counters().constraint_aborts
                         : &metrics_.counters().user_aborts;
    prepared_.erase(txn);
    AbortInternal(t, cause);
    return Status::Aborted("SST failed: " + sst_status.message());
  }

  // Global commit (Alg 4): install X_new as X_permanent, stamp X_tc.
  // Recorded before the release loop: PumpWaiters below may grant waiters
  // whose admission is *enabled by* this commit, and the trace must show
  // the commit happening first (offline checkers read the ring as the
  // serialization order).
  const TimePoint now = clock_->Now();
  trace_.Record(now, TraceEventKind::kCommit, txn);
  for (const ObjectId& oid : t->involved()) {
    ObjectState* obj = GetObjectMutable(oid);
    auto cit = obj->committing.find(txn);
    if (cit == obj->committing.end()) continue;
    for (const auto& [member, cls] : cit->second) {
      obj->permanent[member] = obj->new_values[txn][member];
    }
    obj->committed.push_back(CommittedEntry{txn, now, cit->second});
    obj->committing.erase(cit);
    obj->read.erase(txn);
    obj->new_values.erase(txn);
    obj->PruneCommitted(now - options_.committed_retention);
    PumpWaiters(obj);
  }
  t->ClearAllTemp();
  t->set_state(TxnState::kCommitted);
  prepared_.erase(txn);
  ++metrics_.counters().committed;
  metrics_.execution_time().Add(now - t->begin_time());
  return Status::Ok();
}

Status Gtm::AbortPrepared(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return Status::NotFound(StrFormat("unknown GTM txn %llu",
                                      static_cast<unsigned long long>(txn)));
  }
  ManagedTxn* t = it->second.get();
  if (t->state() == TxnState::kAborted) {
    return Status::Ok();  // Idempotent redrive by a recovering coordinator.
  }
  if (t->state() == TxnState::kCommitted) {
    return Status::FailedPrecondition(StrFormat(
        "AbortPrepared: txn %llu already committed",
        static_cast<unsigned long long>(txn)));
  }
  if (t->state() != TxnState::kCommitting || prepared_.count(txn) == 0) {
    return Status::FailedPrecondition(StrFormat(
        "AbortPrepared requires a Prepared transaction (txn %llu is %s)",
        static_cast<unsigned long long>(txn), TxnStateName(t->state())));
  }
  prepared_.erase(txn);
  AbortInternal(t, &metrics_.counters().prepared_aborts);
  return Status::Ok();
}

// --- Algorithms 5 + 6: abort ----------------------------------------------------

void Gtm::AbortInternal(ManagedTxn* t, int64_t* cause_counter) {
  ++metrics_.counters().aborted;
  if (cause_counter != nullptr) ++*cause_counter;
  const bool awake_cause = cause_counter == &metrics_.counters().awake_aborts;
  // Recorded before the release loop so grants enabled by this abort trace
  // after it (the ring is read as the serialization order).
  trace_.Record(clock_->Now(),
                awake_cause ? TraceEventKind::kAwakeAbort
                            : TraceEventKind::kAbort,
                t->id());
  for (const ObjectId& oid : t->involved()) {
    ObjectState* obj = GetObjectMutable(oid);
    if (obj == nullptr) continue;
    obj->Erase(t->id());
    PumpWaiters(obj);
  }
  t->ClearAllTemp();
  t->ClearAllWaitSince();
  t->set_state(TxnState::kAborted);
}

Status Gtm::RequestAbort(TxnId txn) {
  ManagedTxn* t = GetLiveTxn(txn);
  if (t == nullptr || t->state() == TxnState::kCommitting) {
    return Status::FailedPrecondition(
        "RequestAbort requires a live, non-committing transaction");
  }
  AbortInternal(t, &metrics_.counters().user_aborts);
  return Status::Ok();
}

// --- Algorithms 7 + 8: sleep ----------------------------------------------------

Status Gtm::Sleep(TxnId txn) {
  ManagedTxn* t = GetLiveTxn(txn);
  if (t == nullptr || (t->state() != TxnState::kActive &&
                       t->state() != TxnState::kWaiting)) {
    return Status::FailedPrecondition(
        "Sleep requires an Active or Waiting transaction (Alg 8)");
  }
  if (!options_.sleep_enabled) {
    // Ablation: treat a disconnection the way 2PL would — abort.
    AbortInternal(t, &metrics_.counters().disconnect_aborts);
    return Status::Aborted("sleeping disabled; transaction aborted");
  }
  t->set_sleep_since(clock_->Now());
  t->set_state(TxnState::kSleeping);
  ++metrics_.counters().sleeps;
  trace_.Record(clock_->Now(), TraceEventKind::kSleep, txn);
  for (const ObjectId& oid : t->involved()) {
    ObjectState* obj = GetObjectMutable(oid);
    if (obj == nullptr) continue;
    obj->sleeping.insert(txn);
    // A sleeping holder stops blocking admission (Alg 2 excludes
    // X_sleeping), so queued waiters may become admissible right now.
    PumpWaiters(obj);
  }
  return Status::Ok();
}

// --- Algorithms 9 + 10: awake ---------------------------------------------------

Status Gtm::Awake(TxnId txn) {
  ManagedTxn* t = GetLiveTxn(txn);
  if (t == nullptr || t->state() != TxnState::kSleeping) {
    return Status::FailedPrecondition("Awake requires a Sleeping transaction");
  }
  ++metrics_.counters().awakes;
  const TimePoint now = clock_->Now();
  const TimePoint slept_at = t->sleep_since();

  // Alg 9, conflict case: any incompatible pending/committing holder, or an
  // incompatible commit newer than the sleep, dooms the sleeper.
  for (const ObjectId& oid : t->involved()) {
    ObjectState* obj = GetObjectMutable(oid);
    if (obj == nullptr) continue;
    if (auto blocker = AwakeConflict(*obj, txn, slept_at)) {
      AbortInternal(t, &metrics_.counters().awake_aborts);
      return Status::Aborted(StrFormat(
          "awake abort: txn %llu conflicted on %s with txn %llu while "
          "sleeping",
          static_cast<unsigned long long>(txn), oid.c_str(),
          static_cast<unsigned long long>(*blocker)));
    }
  }

  // Alg 9, no-conflict cases: leave every sleeping set; queued invocations
  // are admitted directly with a fresh snapshot (case 1); held grants keep
  // their copies and reconcile at commit (case 2). The AWAKE event is
  // recorded first: the re-grants and pumps below happen *after* the wake
  // in the serialization order the trace captures (every non-abort exit of
  // this function leaves the transaction Active).
  trace_.Record(now, TraceEventKind::kAwake, txn);
  for (const ObjectId& oid : t->involved()) {
    ObjectState* obj = GetObjectMutable(oid);
    if (obj == nullptr) continue;
    obj->sleeping.erase(txn);
    std::vector<WaitEntry> mine;
    for (const WaitEntry& w : obj->waiting) {
      if (w.txn == txn) mine.push_back(w);
    }
    if (!mine.empty()) {
      obj->waiting.erase(
          std::remove_if(obj->waiting.begin(), obj->waiting.end(),
                         [txn](const WaitEntry& w) { return w.txn == txn; }),
          obj->waiting.end());
      t->ClearWaitSince(oid);
      for (const WaitEntry& w : mine) {
        Status s = GrantAndApply(t, obj, w.member, w.op);
        if (!s.ok()) {
          // Admission policy refused the buffered operation; surface the
          // refusal but keep the transaction alive (it may retry).
          t->set_state(TxnState::kActive);
          t->total_sleep_time += now - slept_at;
          return s;
        }
      }
    }
    // The sleeper no longer parks its pending grants: waiters that were
    // admitted past it stay (they were compatible or it would have
    // aborted); re-pump in case its wake changes nothing — cheap no-op.
    PumpWaiters(obj);
  }
  t->set_state(TxnState::kActive);
  t->total_sleep_time += now - slept_at;
  t->set_last_activity(now);  // A reconnection counts as activity.
  return Status::Ok();
}

// --- Alg 11 (generalized): admission pump ---------------------------------------

void Gtm::PumpWaiters(ObjectState* obj) {
  size_t i = 0;
  while (i < obj->waiting.size()) {
    const WaitEntry entry = obj->waiting[i];
    if (obj->IsSleeping(entry.txn)) {
      // θ(X_waiting - X_sleeping): sleepers are skipped, not admitted.
      ++i;
      continue;
    }
    if (AdmissionConflict(*obj, entry.txn, entry.member, entry.op.cls)
            .has_value()) {
      break;  // Strict FIFO for awake waiters.
    }
    ManagedTxn* t = GetLiveTxn(entry.txn);
    if (t == nullptr) {
      // Stale entry of a dead transaction; drop it.
      obj->waiting.erase(obj->waiting.begin() + static_cast<long>(i));
      continue;
    }
    Status s = GrantAndApply(t, obj, entry.member, entry.op);
    if (s.code() == StatusCode::kConstraintViolation) {
      // Constraint-aware admission holds the queue until capacity frees.
      break;
    }
    obj->waiting.erase(obj->waiting.begin() + static_cast<long>(i));
    if (!s.ok()) {
      // Unexpected (e.g. transition failure); abort the waiter rather than
      // wedge the queue.
      PRESERIAL_LOG(Warning) << "admission of txn " << entry.txn
                             << " failed: " << s.ToString();
      AbortInternal(t, &metrics_.counters().user_aborts);
      continue;
    }
    FinishWait(t, obj->id);
    events_.push_back(GtmEvent{entry.txn, obj->id});
    if (trace_.enabled()) {
      trace_.RecordOp(clock_->Now(), TraceEventKind::kGrant, entry.txn,
                      obj->id, entry.member, entry.op,
                      entry.op.ToString() + " [from queue]");
    }
  }
}

void Gtm::FinishWait(ManagedTxn* t, const ObjectId& object) {
  const TimePoint now = clock_->Now();
  auto it = t->wait_since().find(object);
  if (it != t->wait_since().end()) {
    const Duration d = now - it->second;
    t->total_wait_time += d;
    metrics_.wait_time().Add(d);
    t->ClearWaitSince(object);
  }
  t->set_state(TxnState::kActive);
}

// --- wait management --------------------------------------------------------------

std::vector<GtmEvent> Gtm::TakeEvents() {
  std::vector<GtmEvent> out;
  out.swap(events_);
  return out;
}

std::vector<TxnId> Gtm::AbortExpiredWaits(Duration max_wait) {
  const TimePoint now = clock_->Now();
  std::vector<TxnId> victims;
  for (auto& [id, t] : txns_) {
    if (t->state() != TxnState::kWaiting) continue;
    for (const auto& [obj, since] : t->wait_since()) {
      if (now - since > max_wait) {
        victims.push_back(id);
        break;
      }
    }
  }
  for (TxnId v : victims) {
    ManagedTxn* t = GetLiveTxn(v);
    if (t != nullptr) AbortInternal(t, &metrics_.counters().timeout_aborts);
  }
  return victims;
}

std::vector<TxnId> Gtm::SleepIdleTransactions(Duration idle_timeout) {
  const TimePoint now = clock_->Now();
  std::vector<TxnId> parked;
  for (auto& [id, t] : txns_) {
    if (t->state() != TxnState::kActive && t->state() != TxnState::kWaiting) {
      continue;
    }
    if (now - t->last_activity() <= idle_timeout) continue;
    if (Sleep(id).ok()) parked.push_back(id);
  }
  return parked;
}

std::vector<TxnId> Gtm::DetectAndResolveDeadlocks() {
  std::vector<TxnId> victims;
  while (true) {
    lock::WaitsForGraph wfg = BuildWaitsForGraph();
    std::vector<TxnId> cycle;
    if (!wfg.DetectAnyCycle(&cycle)) break;
    TxnId victim = cycle.front();
    for (TxnId t : cycle) victim = std::max(victim, t);
    ManagedTxn* vt = GetLiveTxn(victim);
    PRESERIAL_CHECK(vt != nullptr) << "cycle member " << victim << " dead";
    AbortInternal(vt, &metrics_.counters().deadlock_aborts);
    victims.push_back(victim);
  }
  return victims;
}

void Gtm::ForEachWaitEdge(
    const std::function<void(TxnId waiter, TxnId holder,
                             const ObjectId& object)>& fn) const {
  for (const auto& [oid, obj] : objects_) {
    for (size_t i = 0; i < obj->waiting.size(); ++i) {
      const WaitEntry& w = obj->waiting[i];
      if (obj->IsSleeping(w.txn)) continue;  // Parked, not blocking-waiting.
      // Blockers: incompatible non-sleeping holders and committers...
      for (const auto& [holder, ops] : obj->pending) {
        if (holder == w.txn || obj->IsSleeping(holder)) continue;
        for (const auto& [m, cls] : ops) {
          if (EffectiveConflict(cls, w.op.cls, m, w.member, obj->deps)) {
            fn(w.txn, holder, oid);
            break;
          }
        }
      }
      for (const auto& [holder, ops] : obj->committing) {
        if (holder == w.txn) continue;
        for (const auto& [m, cls] : ops) {
          if (EffectiveConflict(cls, w.op.cls, m, w.member, obj->deps)) {
            fn(w.txn, holder, oid);
            break;
          }
        }
      }
      // ...plus earlier incompatible waiters (FIFO blocks behind them).
      for (size_t j = 0; j < i; ++j) {
        const WaitEntry& earlier = obj->waiting[j];
        if (earlier.txn == w.txn || obj->IsSleeping(earlier.txn)) continue;
        if (EffectiveConflict(earlier.op.cls, w.op.cls, earlier.member,
                              w.member, obj->deps)) {
          fn(w.txn, earlier.txn, oid);
        }
      }
    }
  }
}

lock::WaitsForGraph Gtm::BuildWaitsForGraph() const {
  lock::WaitsForGraph wfg;
  ForEachWaitEdge([&wfg](TxnId waiter, TxnId holder, const ObjectId&) {
    wfg.AddEdge(waiter, holder);
  });
  return wfg;
}

obs::GtmExplain Gtm::Explain() const {
  obs::GtmExplain out;
  out.now = clock_->Now();
  out.shard = trace_.default_shard();

  for (const auto& [oid, obj] : objects_) {
    if (obj->pending.empty() && obj->waiting.empty() &&
        obj->committing.empty() && obj->sleeping.empty()) {
      continue;  // Quiet object: nothing to explain.
    }
    obs::ObjectInfo info;
    info.id = oid;
    for (const auto& [txn, ops] : obj->pending) {
      obs::HolderInfo h;
      h.txn = txn;
      h.sleeping = obj->IsSleeping(txn);
      for (const auto& [m, cls] : ops) h.ops[m] = semantics::OpClassName(cls);
      info.holders.push_back(std::move(h));
    }
    for (const auto& [txn, ops] : obj->committing) {
      obs::HolderInfo h;
      h.txn = txn;
      h.committing = true;
      for (const auto& [m, cls] : ops) h.ops[m] = semantics::OpClassName(cls);
      info.holders.push_back(std::move(h));
    }
    for (const WaitEntry& w : obj->waiting) {
      obs::WaitInfo wi;
      wi.txn = w.txn;
      wi.member = w.member;
      wi.op_class = semantics::OpClassName(w.op.cls);
      wi.since = w.arrival;
      wi.waited = out.now - w.arrival;
      wi.priority = w.priority;
      info.waiters.push_back(std::move(wi));
    }
    info.sleeping.assign(obj->sleeping.begin(), obj->sleeping.end());
    info.committed_retained = obj->committed.size();
    out.objects.push_back(std::move(info));
  }

  for (const auto& [id, t] : txns_) {
    if (!IsLive(t->state())) continue;
    obs::TxnInfo ti;
    ti.txn = id;
    ti.state = t->state();
    ti.priority = t->priority();
    ti.begin_time = t->begin_time();
    ti.age = out.now - t->begin_time();
    ti.total_wait_time = t->total_wait_time;
    ti.total_sleep_time = t->total_sleep_time;
    ti.ops_executed = t->ops_executed;
    ti.involved.assign(t->involved().begin(), t->involved().end());
    out.txns.push_back(std::move(ti));
  }

  ForEachWaitEdge([&out](TxnId waiter, TxnId holder, const ObjectId& object) {
    out.wait_edges.push_back(obs::WaitEdge{waiter, holder, object});
  });

  // Algorithm 9, evaluated read-only: the same AwakeConflict check Awake()
  // will run, so the verdict here is exactly what a real Awake would do if
  // nothing changes in between.
  for (const auto& [id, t] : txns_) {
    if (t->state() != TxnState::kSleeping) continue;
    obs::SleeperVerdict v;
    v.txn = id;
    v.sleep_since = t->sleep_since();
    v.asleep_for = out.now - v.sleep_since;
    for (const ObjectId& oid : t->involved()) {
      auto it = objects_.find(oid);
      if (it == objects_.end()) continue;
      const ObjectState& obj = *it->second;
      std::optional<TxnId> blocker = AwakeConflict(obj, id, v.sleep_since);
      if (!blocker) continue;
      v.will_abort = true;
      v.object = oid;
      v.blocker = *blocker;
      if (obj.IsPending(*blocker) || obj.committing.count(*blocker) > 0) {
        v.reason = StrFormat(
            "live incompatible holder txn %llu on %s",
            static_cast<unsigned long long>(*blocker), oid.c_str());
      } else {
        for (const CommittedEntry& c : obj.committed) {
          if (c.txn == *blocker) v.blocker_commit_time = c.commit_time;
        }
        v.reason = StrFormat(
            "txn %llu committed on %s at X_tc=%.3f > A_t_sleep=%.3f",
            static_cast<unsigned long long>(*blocker), oid.c_str(),
            v.blocker_commit_time, v.sleep_since);
      }
      break;
    }
    out.sleepers.push_back(std::move(v));
  }
  return out;
}

// --- invariants --------------------------------------------------------------------

Status Gtm::CheckInvariants() const {
  for (const auto& [oid, obj] : objects_) {
    // Sleeping is a subset of pending ∪ waiting.
    for (TxnId s : obj->sleeping) {
      if (!obj->IsPending(s) && !obj->IsWaiting(s)) {
        return Status::Internal(StrFormat(
            "object %s: sleeping txn %llu neither pending nor waiting",
            oid.c_str(), static_cast<unsigned long long>(s)));
      }
    }
    // Non-sleeping pending holders must be pairwise compatible.
    for (const auto& [a, ops_a] : obj->pending) {
      if (obj->IsSleeping(a)) continue;
      for (const auto& [b, ops_b] : obj->pending) {
        if (a >= b || obj->IsSleeping(b)) continue;
        const ClassConflictFn fn =
            options_.semantic_sharing ? ClassConflictFn(DefaultClassConflict)
                                      : ClassConflictFn(ExclusiveClassConflict);
        if (OpsSetsConflict(ops_a, ops_b, obj->deps, fn)) {
          return Status::Internal(StrFormat(
              "object %s: incompatible txns %llu and %llu both pending",
              oid.c_str(), static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(b)));
        }
      }
    }
    // Every pending/waiting txn must exist, be live, and know the object.
    for (const auto& [txn, ops] : obj->pending) {
      const ManagedTxn* t = GetTxn(txn);
      if (t == nullptr || !IsLive(t->state())) {
        return Status::Internal(StrFormat(
            "object %s: pending txn %llu is missing or terminal",
            oid.c_str(), static_cast<unsigned long long>(txn)));
      }
      if (t->involved().count(oid) == 0) {
        return Status::Internal(StrFormat(
            "object %s: pending txn %llu does not list it as involved",
            oid.c_str(), static_cast<unsigned long long>(txn)));
      }
      // Grants, snapshots and copies must line up per member.
      for (const auto& [m, cls] : ops) {
        const Cell cell{oid, m};
        if (!t->HasGrant(cell) || t->GrantedClass(cell).value() != cls) {
          return Status::Internal(StrFormat(
              "object %s#%zu: pending class disagrees with txn grant",
              oid.c_str(), m));
        }
        if (!t->HasTemp(cell)) {
          return Status::Internal(StrFormat(
              "object %s#%zu: pending txn %llu has no virtual copy",
              oid.c_str(), m, static_cast<unsigned long long>(txn)));
        }
        auto rit = obj->read.find(txn);
        if (rit == obj->read.end() || rit->second.count(m) == 0) {
          return Status::Internal(StrFormat(
              "object %s#%zu: pending txn %llu has no X_read snapshot",
              oid.c_str(), m, static_cast<unsigned long long>(txn)));
        }
      }
    }
    for (const WaitEntry& w : obj->waiting) {
      const ManagedTxn* t = GetTxn(w.txn);
      if (t == nullptr || !IsLive(t->state())) {
        return Status::Internal(StrFormat(
            "object %s: waiting txn %llu is missing or terminal",
            oid.c_str(), static_cast<unsigned long long>(w.txn)));
      }
      const TxnState st = t->state();
      if (st != TxnState::kWaiting && st != TxnState::kSleeping) {
        return Status::Internal(StrFormat(
            "object %s: queued txn %llu is %s, not Waiting/Sleeping",
            oid.c_str(), static_cast<unsigned long long>(w.txn),
            TxnStateName(st)));
      }
    }
  }
  // Every Waiting transaction must be queued somewhere.
  for (const auto& [id, t] : txns_) {
    if (t->state() != TxnState::kWaiting) continue;
    bool queued = false;
    for (const auto& [oid, obj] : objects_) {
      if (obj->IsWaiting(id)) {
        queued = true;
        break;
      }
    }
    if (!queued) {
      return Status::Internal(StrFormat(
          "txn %llu is Waiting but queued nowhere",
          static_cast<unsigned long long>(id)));
    }
  }
  return Status::Ok();
}

}  // namespace preserial::gtm
