#ifndef PRESERIAL_GTM_TRACE_H_
#define PRESERIAL_GTM_TRACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "semantics/operation.h"

namespace preserial::gtm {

// Kinds of middleware events recorded by the trace (one per externally
// visible transition of the paper's state machines).
enum class TraceEventKind {
  kBegin,
  kGrant,        // Invocation admitted (immediately or from the queue).
  kApply,        // An operation mutated the virtual copy (every success).
  kWait,         // Invocation queued.
  kPrepare,      // Phase-1 vote of a cross-shard commit (parked Committing).
  kCommit,
  kAbort,
  kSleep,
  kAwake,
  kAwakeAbort,
  kDeadlockRefusal,
  kAdmissionDenial,  // Constraint-aware admission refused an operation.
  kDuplicateSuppressed,  // Retried request answered from the reply cache.
  // Replication (src/replica/). Recorded against the primary's trace.
  kShip,     // A log record left the primary for a backup.
  kShipAck,  // A backup's cumulative ack advanced.
  kPromote,  // A backup was promoted to primary (recorded on the winner).
  // Client transport (src/mobile/). Recorded against the client's TraceLog.
  kClientSend,       // A logical request was issued (first attempt).
  kClientRetry,      // A silent attempt timed out; backed off and resent.
  kClientDegrade,    // Retry budget exhausted; degrading to Sleep.
  kClientReconnect,  // Back online: Awake + resend of the pending request.
  // Cluster (src/cluster/). Recorded against the router's TraceLog.
  kBranchBegin,   // Router opened a branch of a global txn on a shard.
  kTwoPcPrepare,  // Coordinator started phase 1 for a global commit.
  kTwoPcCommit,   // Coordinator decided commit and drove phase 2.
  kTwoPcAbort,    // Coordinator decided abort and drove phase 2.
  // Observability (src/obs/).
  kWatchdog,  // Slow-txn/long-sleep threshold tripped; Explain emitted.
};

// Number of TraceEventKind values. Keep last: the static_assert in trace.cc
// and the obs exhaustiveness test both key off it, so a new kind without a
// TraceEventKindName entry fails loudly instead of rendering as "?".
inline constexpr size_t kTraceEventKindCount =
    static_cast<size_t>(TraceEventKind::kWatchdog) + 1;

const char* TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  TimePoint time = 0;
  TraceEventKind kind = TraceEventKind::kBegin;
  TxnId txn = kInvalidTxnId;
  std::string object;  // Empty for transaction-level events.
  std::string detail;
  // Correlation fields, stamped by TraceLog::Record from the thread's
  // ambient obs::TraceContext (zero when recorded outside any SpanScope)
  // and the log's default shard (-1 for unsharded deployments).
  uint64_t trace = 0;
  uint64_t span = 0;
  uint64_t parent = 0;
  int shard = -1;
  // Structured operation payload, present when has_op (kApply always; kGrant
  // and kWait when recorded through RecordOp). Offline checkers reconstruct
  // per-member effects from these instead of parsing `detail`.
  bool has_op = false;
  semantics::MemberId member = 0;
  semantics::Operation op;

  std::string ToString() const;
};

// Bounded ring buffer of middleware events. Disabled (capacity 0) by
// default so the hot path stays allocation-free; enable for debugging,
// audits, or the examples' --trace output.
class TraceLog {
 public:
  TraceLog() = default;

  void Enable(size_t capacity);
  void Disable() { Enable(0); }
  bool enabled() const { return capacity_ > 0; }

  void Record(TimePoint time, TraceEventKind kind, TxnId txn,
              std::string object = "", std::string detail = "");

  // Record() plus the structured (member, op) payload; sets has_op so
  // history checkers can replay the operation exactly.
  void RecordOp(TimePoint time, TraceEventKind kind, TxnId txn,
                std::string object, semantics::MemberId member,
                const semantics::Operation& op, std::string detail = "");

  // Events in chronological order (oldest first), up to capacity.
  std::vector<TraceEvent> Snapshot() const;
  // Events of one transaction, chronological.
  std::vector<TraceEvent> ForTxn(TxnId txn) const;

  // Shard id stamped on every event this log records (a cluster stamps each
  // shard's Gtm trace at construction). -1 = not part of a sharded cluster.
  void set_default_shard(int shard) { default_shard_ = shard; }
  int default_shard() const { return default_shard_; }

  size_t size() const { return size_; }
  int64_t total_recorded() const { return total_recorded_; }
  void Clear();

  // Multi-line rendering of Snapshot().
  std::string Dump() const;

 private:
  std::vector<TraceEvent> ring_;
  size_t capacity_ = 0;
  size_t next_ = 0;   // Slot for the next write.
  size_t size_ = 0;   // Live entries (<= capacity).
  int64_t total_recorded_ = 0;
  int default_shard_ = -1;
};

}  // namespace preserial::gtm

#endif  // PRESERIAL_GTM_TRACE_H_
