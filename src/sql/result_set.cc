#include "sql/result_set.h"

#include <algorithm>

#include "common/strings.h"

namespace preserial::sql {

std::string ResultSet::ToString() const {
  if (!HasRows()) {
    return StrFormat("OK (%lld row(s) affected)\n",
                     static_cast<long long>(affected_rows));
  }
  // Column widths from header and cells.
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> rendered;
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  rendered.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      cells.push_back(row[c].ToString());
      if (c < widths.size()) widths[c] = std::max(widths[c], cells[c].size());
    }
    rendered.push_back(std::move(cells));
  }
  std::string out;
  for (size_t c = 0; c < columns.size(); ++c) {
    out += PadRight(columns[c], widths[c] + 2);
  }
  out += "\n";
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out += std::string(total, '-') + "\n";
  for (const auto& cells : rendered) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out += PadRight(cells[c], widths[c] + 2);
    }
    out += "\n";
  }
  out += StrFormat("(%zu row(s))\n", rows.size());
  return out;
}

}  // namespace preserial::sql
