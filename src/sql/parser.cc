#include "sql/parser.h"

#include <cstdlib>

#include "common/strings.h"

namespace preserial::sql {

namespace {

using storage::ColumnDef;
using storage::CompareOp;
using storage::Value;
using storage::ValueType;

// Recursive-descent cursor over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    if (MatchKeyword("CREATE")) {
      if (MatchKeyword("TABLE")) return ParseCreateTable();
      if (MatchKeyword("INDEX")) return ParseCreateIndex();
      return Error("expected TABLE or INDEX after CREATE");
    }
    if (MatchKeyword("DROP")) {
      PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
      DropTableStmt stmt;
      PRESERIAL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
      PRESERIAL_RETURN_IF_ERROR(ExpectEnd());
      return Statement{stmt};
    }
    if (MatchKeyword("INSERT")) return ParseInsert();
    if (MatchKeyword("SELECT")) return ParseSelect();
    if (MatchKeyword("UPDATE")) return ParseUpdate();
    if (MatchKeyword("DELETE")) return ParseDelete();
    if (MatchKeyword("ALTER")) return ParseAlter();
    if (MatchKeyword("SHOW")) {
      PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("TABLES"));
      PRESERIAL_RETURN_IF_ERROR(ExpectEnd());
      return Statement{ShowTablesStmt{}};
    }
    return Error("expected a statement keyword");
  }

 private:
  // --- statement parsers -----------------------------------------------------

  Result<Statement> ParseCreateTable() {
    CreateTableStmt stmt;
    PRESERIAL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    PRESERIAL_RETURN_IF_ERROR(ExpectSymbol("("));
    std::optional<size_t> pk;
    while (true) {
      ColumnDef col;
      PRESERIAL_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      PRESERIAL_ASSIGN_OR_RETURN(col.type, ParseType());
      col.nullable = false;
      // Column options in any order.
      while (true) {
        if (MatchKeyword("PRIMARY")) {
          PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("KEY"));
          if (pk.has_value()) {
            return Error("multiple PRIMARY KEY columns");
          }
          pk = stmt.columns.size();
        } else if (MatchKeyword("NOT")) {
          PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("NULL"));
          col.nullable = false;
        } else if (MatchKeyword("NULL")) {
          col.nullable = true;
        } else {
          break;
        }
      }
      stmt.columns.push_back(std::move(col));
      if (MatchSymbol(",")) continue;
      PRESERIAL_RETURN_IF_ERROR(ExpectSymbol(")"));
      break;
    }
    if (!pk.has_value()) {
      return Error("CREATE TABLE requires a PRIMARY KEY column");
    }
    stmt.primary_key = *pk;
    PRESERIAL_RETURN_IF_ERROR(ExpectEnd());
    return Statement{stmt};
  }

  Result<Statement> ParseCreateIndex() {
    CreateIndexStmt stmt;
    PRESERIAL_ASSIGN_OR_RETURN(stmt.index, ExpectIdentifier());
    PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("ON"));
    PRESERIAL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    PRESERIAL_RETURN_IF_ERROR(ExpectSymbol("("));
    PRESERIAL_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier());
    PRESERIAL_RETURN_IF_ERROR(ExpectSymbol(")"));
    PRESERIAL_RETURN_IF_ERROR(ExpectEnd());
    return Statement{stmt};
  }

  Result<Statement> ParseInsert() {
    PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    PRESERIAL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    PRESERIAL_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      PRESERIAL_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      stmt.values.push_back(std::move(v));
      if (MatchSymbol(",")) continue;
      PRESERIAL_RETURN_IF_ERROR(ExpectSymbol(")"));
      break;
    }
    PRESERIAL_RETURN_IF_ERROR(ExpectEnd());
    return Statement{stmt};
  }

  Result<Statement> ParseSelect() {
    SelectStmt stmt;
    if (MatchSymbol("*")) {
      // All columns.
    } else {
      while (true) {
        PRESERIAL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt.columns.push_back(std::move(col));
        if (!MatchSymbol(",")) break;
      }
    }
    PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    PRESERIAL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (MatchKeyword("WHERE")) {
      PRESERIAL_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    }
    if (MatchKeyword("ORDER")) {
      PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      PRESERIAL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt.order_by = std::move(col);
      if (MatchKeyword("DESC")) {
        stmt.order_desc = true;
      } else {
        (void)MatchKeyword("ASC");
      }
    }
    if (MatchKeyword("LIMIT")) {
      const Token& t = Peek();
      if (t.type != TokenType::kInteger) return Error("LIMIT expects an int");
      stmt.limit = std::strtoll(t.text.c_str(), nullptr, 10);
      Advance();
    }
    PRESERIAL_RETURN_IF_ERROR(ExpectEnd());
    return Statement{stmt};
  }

  Result<Statement> ParseUpdate() {
    UpdateStmt stmt;
    PRESERIAL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      PRESERIAL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      PRESERIAL_RETURN_IF_ERROR(ExpectSymbol("="));
      PRESERIAL_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      stmt.assignments.emplace_back(std::move(col), std::move(v));
      if (!MatchSymbol(",")) break;
    }
    if (MatchKeyword("WHERE")) {
      PRESERIAL_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    }
    PRESERIAL_RETURN_IF_ERROR(ExpectEnd());
    return Statement{stmt};
  }

  Result<Statement> ParseDelete() {
    PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    PRESERIAL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (MatchKeyword("WHERE")) {
      PRESERIAL_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    }
    PRESERIAL_RETURN_IF_ERROR(ExpectEnd());
    return Statement{stmt};
  }

  Result<Statement> ParseAlter() {
    PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    AlterAddConstraintStmt stmt;
    PRESERIAL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("ADD"));
    PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("CONSTRAINT"));
    PRESERIAL_ASSIGN_OR_RETURN(stmt.constraint, ExpectIdentifier());
    PRESERIAL_RETURN_IF_ERROR(ExpectKeyword("CHECK"));
    PRESERIAL_RETURN_IF_ERROR(ExpectSymbol("("));
    PRESERIAL_ASSIGN_OR_RETURN(stmt.check, ParsePredicate());
    PRESERIAL_RETURN_IF_ERROR(ExpectSymbol(")"));
    PRESERIAL_RETURN_IF_ERROR(ExpectEnd());
    return Statement{stmt};
  }

  // --- clause helpers ----------------------------------------------------------

  Result<std::vector<Predicate>> ParseWhere() {
    std::vector<Predicate> preds;
    while (true) {
      PRESERIAL_ASSIGN_OR_RETURN(Predicate p, ParsePredicate());
      preds.push_back(std::move(p));
      if (!MatchKeyword("AND")) break;
    }
    return preds;
  }

  Result<Predicate> ParsePredicate() {
    Predicate p;
    PRESERIAL_ASSIGN_OR_RETURN(p.column, ExpectIdentifier());
    const Token& t = Peek();
    if (t.type != TokenType::kSymbol) return Error("expected comparison");
    if (t.text == "=") {
      p.op = CompareOp::kEq;
    } else if (t.text == "!=") {
      p.op = CompareOp::kNe;
    } else if (t.text == "<") {
      p.op = CompareOp::kLt;
    } else if (t.text == "<=") {
      p.op = CompareOp::kLe;
    } else if (t.text == ">") {
      p.op = CompareOp::kGt;
    } else if (t.text == ">=") {
      p.op = CompareOp::kGe;
    } else {
      return Error("expected comparison operator");
    }
    Advance();
    PRESERIAL_ASSIGN_OR_RETURN(p.literal, ParseLiteral());
    return p;
  }

  Result<ValueType> ParseType() {
    if (MatchKeyword("INT") || MatchKeyword("INTEGER")) {
      return ValueType::kInt64;
    }
    if (MatchKeyword("DOUBLE") || MatchKeyword("FLOAT")) {
      return ValueType::kDouble;
    }
    if (MatchKeyword("STRING") || MatchKeyword("TEXT")) {
      return ValueType::kString;
    }
    if (MatchKeyword("BOOL") || MatchKeyword("BOOLEAN")) {
      return ValueType::kBool;
    }
    return Error("expected a column type");
  }

  Result<Value> ParseLiteral() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        const int64_t v = std::strtoll(t.text.c_str(), nullptr, 10);
        Advance();
        return Value::Int(v);
      }
      case TokenType::kFloat: {
        const double v = std::strtod(t.text.c_str(), nullptr);
        Advance();
        return Value::Double(v);
      }
      case TokenType::kString: {
        std::string s = t.text;
        Advance();
        return Value::String(std::move(s));
      }
      case TokenType::kKeyword:
        if (t.text == "TRUE") {
          Advance();
          return Value::Bool(true);
        }
        if (t.text == "FALSE") {
          Advance();
          return Value::Bool(false);
        }
        if (t.text == "NULL") {
          Advance();
          return Value::Null();
        }
        return Error("expected a literal");
      default:
        return Error("expected a literal");
    }
  }

  // --- cursor ------------------------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool MatchKeyword(const char* kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchSymbol(const char* sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) return Error("expected " + std::string(kw));
    return Status::Ok();
  }
  Status ExpectSymbol(const char* sym) {
    if (!MatchSymbol(sym)) return Error("expected '" + std::string(sym) + "'");
    return Status::Ok();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected an identifier");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }
  Status ExpectEnd() {
    (void)MatchSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing tokens");
    }
    return Status::Ok();
  }

  // Status error carrying the current position; converts implicitly into
  // any Result<T> at the call sites.
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(StrFormat(
        "parse error at offset %zu near '%s': %s", Peek().position,
        Peek().text.c_str(), message.c_str()));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& input) {
  PRESERIAL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace preserial::sql
