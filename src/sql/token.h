#ifndef PRESERIAL_SQL_TOKEN_H_
#define PRESERIAL_SQL_TOKEN_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace preserial::sql {

enum class TokenType {
  kKeyword,     // Case-insensitive reserved word (normalized to upper).
  kIdentifier,  // Table / column / index names.
  kInteger,     // 123, -7
  kFloat,       // 1.5, -0.25
  kString,      // 'single quoted' with '' escaping
  kSymbol,      // ( ) , ; * = != <> < <= > >=
  kEnd,
};

const char* TokenTypeName(TokenType t);

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // Keyword: upper-cased; symbol: canonical spelling.
  size_t position = 0;  // Byte offset in the input (for error messages).
};

// Splits a SQL statement into tokens. Keywords are recognized from a fixed
// list; anything else alphanumeric is an identifier. Fails with
// kInvalidArgument on unterminated strings or unknown characters.
Result<std::vector<Token>> Tokenize(const std::string& input);

// True if `word` (upper-cased) is a reserved keyword.
bool IsKeyword(const std::string& upper);

}  // namespace preserial::sql

#endif  // PRESERIAL_SQL_TOKEN_H_
