#ifndef PRESERIAL_SQL_AST_H_
#define PRESERIAL_SQL_AST_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "storage/constraint.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace preserial::sql {

// A simple predicate `column op literal`; WHERE clauses are conjunctions of
// these (no OR / nesting — enough for the workloads this LDBS serves).
struct Predicate {
  std::string column;
  storage::CompareOp op = storage::CompareOp::kEq;
  storage::Value literal;
};

struct CreateTableStmt {
  std::string table;
  std::vector<storage::ColumnDef> columns;
  size_t primary_key = 0;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::string column;
};

struct DropTableStmt {
  std::string table;
};

struct InsertStmt {
  std::string table;
  std::vector<storage::Value> values;  // Positional, full row.
};

struct SelectStmt {
  std::string table;
  std::vector<std::string> columns;  // Empty = *.
  std::vector<Predicate> where;      // ANDed.
  std::optional<std::string> order_by;
  bool order_desc = false;
  std::optional<int64_t> limit;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, storage::Value>> assignments;
  std::vector<Predicate> where;
};

struct DeleteStmt {
  std::string table;
  std::vector<Predicate> where;
};

struct AlterAddConstraintStmt {
  std::string table;
  std::string constraint;
  Predicate check;  // CHECK (column op literal).
};

struct ShowTablesStmt {};

using Statement =
    std::variant<CreateTableStmt, CreateIndexStmt, DropTableStmt, InsertStmt,
                 SelectStmt, UpdateStmt, DeleteStmt, AlterAddConstraintStmt,
                 ShowTablesStmt>;

}  // namespace preserial::sql

#endif  // PRESERIAL_SQL_AST_H_
