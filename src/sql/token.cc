#include "sql/token.h"

#include <cctype>
#include <set>

#include "common/strings.h"

namespace preserial::sql {

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kKeyword:
      return "keyword";
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kInteger:
      return "integer";
    case TokenType::kFloat:
      return "float";
    case TokenType::kString:
      return "string";
    case TokenType::kSymbol:
      return "symbol";
    case TokenType::kEnd:
      return "end";
  }
  return "?";
}

bool IsKeyword(const std::string& upper) {
  static const std::set<std::string>* kKeywords = new std::set<std::string>{
      "CREATE", "TABLE",  "INDEX",  "ON",     "INSERT", "INTO",   "VALUES",
      "SELECT", "FROM",   "WHERE",  "AND",    "ORDER",  "BY",     "ASC",
      "DESC",   "LIMIT",  "UPDATE", "SET",    "DELETE", "ALTER",  "ADD",
      "CONSTRAINT",       "CHECK",  "PRIMARY","KEY",    "NULL",   "NOT",
      "INT",    "INTEGER","DOUBLE", "FLOAT",  "STRING", "TEXT",   "BOOL",
      "BOOLEAN","TRUE",   "FALSE",  "DROP",   "SHOW",   "TABLES",
  };
  return kKeywords->count(upper) > 0;
}

namespace {

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      // Line comment.
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string word = input.substr(start, i - start);
      const std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tokens.push_back(Token{TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back(Token{TokenType::kIdentifier, std::move(word),
                               start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      ++i;  // Sign or first digit.
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        if (input[i] == '.') {
          if (is_float) break;
          is_float = true;
        }
        ++i;
      }
      tokens.push_back(Token{is_float ? TokenType::kFloat
                                      : TokenType::kInteger,
                             input.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            value.push_back('\'');  // Escaped quote.
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      tokens.push_back(Token{TokenType::kString, std::move(value), start});
      continue;
    }
    // Multi-char symbols first.
    auto two = input.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
      tokens.push_back(Token{TokenType::kSymbol,
                             two == "<>" ? "!=" : std::string(two), start});
      i += 2;
      continue;
    }
    if (std::string("(),;*=<>").find(c) != std::string::npos) {
      tokens.push_back(Token{TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument(
        StrFormat("unexpected character '%c' at offset %zu", c, start));
  }
  tokens.push_back(Token{TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace preserial::sql
