#ifndef PRESERIAL_SQL_RESULT_SET_H_
#define PRESERIAL_SQL_RESULT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"

namespace preserial::sql {

// Outcome of executing one statement: tabular rows for SELECT / SHOW, an
// affected-row count for DML/DDL.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<storage::Value>> rows;
  int64_t affected_rows = 0;

  bool HasRows() const { return !columns.empty(); }

  // Fixed-width rendering with a header (for the REPL and tests).
  std::string ToString() const;
};

}  // namespace preserial::sql

#endif  // PRESERIAL_SQL_RESULT_SET_H_
