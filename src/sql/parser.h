#ifndef PRESERIAL_SQL_PARSER_H_
#define PRESERIAL_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace preserial::sql {

// Parses one SQL statement (a trailing ';' is optional). Supported grammar:
//
//   CREATE TABLE t (col TYPE [PRIMARY KEY] [NULL | NOT NULL], ...)
//   CREATE INDEX name ON t (col)
//   DROP TABLE t
//   INSERT INTO t VALUES (lit, ...)
//   SELECT * | col [, col ...] FROM t
//       [WHERE col op lit [AND ...]] [ORDER BY col [ASC|DESC]] [LIMIT n]
//   UPDATE t SET col = lit [, ...] [WHERE ...]
//   DELETE FROM t [WHERE ...]
//   ALTER TABLE t ADD CONSTRAINT name CHECK (col op lit)
//   SHOW TABLES
//
// TYPE: INT/INTEGER, DOUBLE/FLOAT, STRING/TEXT, BOOL/BOOLEAN.
// op: = != <> < <= > >=.  Literals: integers, floats, 'strings',
// TRUE/FALSE, NULL.
Result<Statement> Parse(const std::string& input);

}  // namespace preserial::sql

#endif  // PRESERIAL_SQL_PARSER_H_
