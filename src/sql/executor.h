#ifndef PRESERIAL_SQL_EXECUTOR_H_
#define PRESERIAL_SQL_EXECUTOR_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/result_set.h"
#include "storage/database.h"

namespace preserial::sql {

// Executes parsed statements against a Database (auto-committed, WAL-logged
// through the Database's DML entry points). A thin planner picks the access
// path for WHERE clauses:
//   - `pk = literal`                  -> primary-key point lookup
//   - `col = literal` with an index   -> secondary-index equality scan
//   - `col >=/<=/... ` with an index  -> secondary-index range scan
//   - otherwise                       -> full scan with residual filter
//
// This is the LDBS's front door for humans (see examples/sql_repl.cpp);
// the GTM talks to the storage layer directly.
class Executor {
 public:
  explicit Executor(storage::Database* db) : db_(db) {}

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Parses and executes one statement.
  Result<ResultSet> Run(const std::string& statement);

  Result<ResultSet> Execute(const Statement& statement);

 private:
  Result<ResultSet> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<ResultSet> ExecuteCreateIndex(const CreateIndexStmt& stmt);
  Result<ResultSet> ExecuteDropTable(const DropTableStmt& stmt);
  Result<ResultSet> ExecuteInsert(const InsertStmt& stmt);
  Result<ResultSet> ExecuteSelect(const SelectStmt& stmt);
  Result<ResultSet> ExecuteUpdate(const UpdateStmt& stmt);
  Result<ResultSet> ExecuteDelete(const DeleteStmt& stmt);
  Result<ResultSet> ExecuteAlter(const AlterAddConstraintStmt& stmt);
  Result<ResultSet> ExecuteShowTables();

  storage::Database* db_;
};

}  // namespace preserial::sql

#endif  // PRESERIAL_SQL_EXECUTOR_H_
