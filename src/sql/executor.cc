#include "sql/executor.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "sql/parser.h"
#include "storage/table.h"

namespace preserial::sql {

namespace {

using storage::CompareOp;
using storage::Row;
using storage::Table;
using storage::Value;

struct ResolvedPredicate {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

Result<std::vector<ResolvedPredicate>> Resolve(
    const Table& table, const std::vector<Predicate>& where) {
  std::vector<ResolvedPredicate> out;
  out.reserve(where.size());
  for (const Predicate& p : where) {
    PRESERIAL_ASSIGN_OR_RETURN(size_t column,
                               table.schema().ColumnIndex(p.column));
    out.push_back(ResolvedPredicate{column, p.op, p.literal});
  }
  return out;
}

bool PredicateHolds(const Value& v, CompareOp op, const Value& literal) {
  // SQL-ish semantics: comparisons against NULL (either side) are false.
  if (v.is_null() || literal.is_null()) return false;
  Result<int> c = Value::Compare(v, literal);
  if (!c.ok()) return false;  // Incomparable types never match.
  switch (op) {
    case CompareOp::kEq:
      return c.value() == 0;
    case CompareOp::kNe:
      return c.value() != 0;
    case CompareOp::kLt:
      return c.value() < 0;
    case CompareOp::kLe:
      return c.value() <= 0;
    case CompareOp::kGt:
      return c.value() > 0;
    case CompareOp::kGe:
      return c.value() >= 0;
  }
  return false;
}

bool RowMatches(const Row& row,
                const std::vector<ResolvedPredicate>& preds) {
  for (const ResolvedPredicate& p : preds) {
    if (!PredicateHolds(row.at(p.column), p.op, p.literal)) return false;
  }
  return true;
}

// Picks an access path and collects matching (pk, row) pairs.
std::vector<std::pair<Value, Row>> CollectMatches(
    const Table& table, const std::vector<ResolvedPredicate>& preds) {
  std::vector<std::pair<Value, Row>> out;
  auto visit = [&](const Value& key, const Row& row) {
    if (RowMatches(row, preds)) out.emplace_back(key, row);
    return true;
  };

  // 1) Primary-key point lookup.
  const size_t pk = table.schema().primary_key();
  for (const ResolvedPredicate& p : preds) {
    if (p.column == pk && p.op == CompareOp::kEq) {
      Result<Row> row = table.GetByKey(p.literal);
      if (row.ok() && RowMatches(row.value(), preds)) {
        out.emplace_back(p.literal, row.value());
      }
      return out;
    }
  }
  // 2) Secondary-index equality.
  for (const ResolvedPredicate& p : preds) {
    if (p.op == CompareOp::kEq && table.HasIndexOn(p.column)) {
      table.ScanEqual(p.column, p.literal, visit);
      return out;
    }
  }
  // 3) Secondary-index range.
  for (const ResolvedPredicate& p : preds) {
    if (!table.HasIndexOn(p.column)) continue;
    std::optional<Value> lo;
    std::optional<Value> hi;
    switch (p.op) {
      case CompareOp::kGe:
      case CompareOp::kGt:
        lo = p.literal;
        break;
      case CompareOp::kLe:
      case CompareOp::kLt:
        hi = p.literal;
        break;
      default:
        continue;
    }
    // The residual filter handles strict bounds.
    (void)table.ScanIndexRange(p.column, lo, hi, visit);
    return out;
  }
  // 4) Full scan.
  table.Scan(visit);
  return out;
}

}  // namespace

Result<ResultSet> Executor::Run(const std::string& statement) {
  PRESERIAL_ASSIGN_OR_RETURN(Statement stmt, Parse(statement));
  return Execute(stmt);
}

Result<ResultSet> Executor::Execute(const Statement& statement) {
  return std::visit(
      [this](const auto& stmt) -> Result<ResultSet> {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, CreateTableStmt>) {
          return ExecuteCreateTable(stmt);
        } else if constexpr (std::is_same_v<T, CreateIndexStmt>) {
          return ExecuteCreateIndex(stmt);
        } else if constexpr (std::is_same_v<T, DropTableStmt>) {
          return ExecuteDropTable(stmt);
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          return ExecuteInsert(stmt);
        } else if constexpr (std::is_same_v<T, SelectStmt>) {
          return ExecuteSelect(stmt);
        } else if constexpr (std::is_same_v<T, UpdateStmt>) {
          return ExecuteUpdate(stmt);
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          return ExecuteDelete(stmt);
        } else if constexpr (std::is_same_v<T, AlterAddConstraintStmt>) {
          return ExecuteAlter(stmt);
        } else {
          return ExecuteShowTables();
        }
      },
      statement);
}

Result<ResultSet> Executor::ExecuteCreateTable(const CreateTableStmt& stmt) {
  PRESERIAL_ASSIGN_OR_RETURN(
      storage::Schema schema,
      storage::Schema::Create(stmt.columns, stmt.primary_key));
  Result<Table*> t = db_->CreateTable(stmt.table, std::move(schema));
  if (!t.ok()) return t.status();
  return ResultSet{};
}

Result<ResultSet> Executor::ExecuteCreateIndex(const CreateIndexStmt& stmt) {
  PRESERIAL_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  PRESERIAL_ASSIGN_OR_RETURN(size_t column,
                             table->schema().ColumnIndex(stmt.column));
  PRESERIAL_RETURN_IF_ERROR(db_->CreateIndex(stmt.table, stmt.index, column));
  return ResultSet{};
}

Result<ResultSet> Executor::ExecuteDropTable(const DropTableStmt& stmt) {
  PRESERIAL_RETURN_IF_ERROR(db_->DropTable(stmt.table));
  return ResultSet{};
}

Result<ResultSet> Executor::ExecuteInsert(const InsertStmt& stmt) {
  PRESERIAL_RETURN_IF_ERROR(db_->InsertRow(stmt.table, Row(stmt.values)));
  ResultSet rs;
  rs.affected_rows = 1;
  return rs;
}

Result<ResultSet> Executor::ExecuteSelect(const SelectStmt& stmt) {
  PRESERIAL_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  PRESERIAL_ASSIGN_OR_RETURN(std::vector<ResolvedPredicate> preds,
                             Resolve(*table, stmt.where));

  // Projection columns.
  std::vector<size_t> projection;
  ResultSet rs;
  if (stmt.columns.empty()) {
    for (size_t c = 0; c < table->schema().num_columns(); ++c) {
      projection.push_back(c);
      rs.columns.push_back(table->schema().column(c).name);
    }
  } else {
    for (const std::string& name : stmt.columns) {
      PRESERIAL_ASSIGN_OR_RETURN(size_t c,
                                 table->schema().ColumnIndex(name));
      projection.push_back(c);
      rs.columns.push_back(name);
    }
  }

  std::vector<std::pair<Value, Row>> matches = CollectMatches(*table, preds);
  if (stmt.order_by.has_value()) {
    PRESERIAL_ASSIGN_OR_RETURN(size_t order_col,
                               table->schema().ColumnIndex(*stmt.order_by));
    std::stable_sort(matches.begin(), matches.end(),
                     [order_col, desc = stmt.order_desc](const auto& a,
                                                         const auto& b) {
                       const int c = Value::CompareTotal(
                           a.second.at(order_col), b.second.at(order_col));
                       return desc ? c > 0 : c < 0;
                     });
  }
  const size_t limit =
      stmt.limit.has_value() && *stmt.limit >= 0
          ? static_cast<size_t>(*stmt.limit)
          : matches.size();
  for (size_t i = 0; i < matches.size() && i < limit; ++i) {
    std::vector<Value> out_row;
    out_row.reserve(projection.size());
    for (size_t c : projection) out_row.push_back(matches[i].second.at(c));
    rs.rows.push_back(std::move(out_row));
  }
  rs.affected_rows = static_cast<int64_t>(rs.rows.size());
  return rs;
}

Result<ResultSet> Executor::ExecuteUpdate(const UpdateStmt& stmt) {
  PRESERIAL_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  PRESERIAL_ASSIGN_OR_RETURN(std::vector<ResolvedPredicate> preds,
                             Resolve(*table, stmt.where));
  std::vector<std::pair<size_t, Value>> assignments;
  for (const auto& [name, value] : stmt.assignments) {
    PRESERIAL_ASSIGN_OR_RETURN(size_t c, table->schema().ColumnIndex(name));
    assignments.emplace_back(c, value);
  }
  const std::vector<std::pair<Value, Row>> matches =
      CollectMatches(*table, preds);
  ResultSet rs;
  for (const auto& [key, row] : matches) {
    Row updated = row;
    for (const auto& [c, v] : assignments) updated.Set(c, v);
    PRESERIAL_RETURN_IF_ERROR(db_->UpdateRow(stmt.table, key, updated));
    ++rs.affected_rows;
  }
  return rs;
}

Result<ResultSet> Executor::ExecuteDelete(const DeleteStmt& stmt) {
  PRESERIAL_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  PRESERIAL_ASSIGN_OR_RETURN(std::vector<ResolvedPredicate> preds,
                             Resolve(*table, stmt.where));
  const std::vector<std::pair<Value, Row>> matches =
      CollectMatches(*table, preds);
  ResultSet rs;
  for (const auto& [key, _] : matches) {
    PRESERIAL_RETURN_IF_ERROR(db_->DeleteRow(stmt.table, key));
    ++rs.affected_rows;
  }
  return rs;
}

Result<ResultSet> Executor::ExecuteAlter(const AlterAddConstraintStmt& stmt) {
  PRESERIAL_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  PRESERIAL_ASSIGN_OR_RETURN(size_t column,
                             table->schema().ColumnIndex(stmt.check.column));
  PRESERIAL_RETURN_IF_ERROR(db_->AddConstraint(
      stmt.table, storage::CheckConstraint(stmt.constraint, column,
                                           stmt.check.op,
                                           stmt.check.literal)));
  return ResultSet{};
}

Result<ResultSet> Executor::ExecuteShowTables() {
  ResultSet rs;
  rs.columns = {"table", "rows", "columns", "indexes"};
  for (const std::string& name : db_->catalog()->TableNames()) {
    Result<Table*> t = db_->GetTable(name);
    if (!t.ok()) continue;
    rs.rows.push_back({Value::String(name),
                       Value::Int(static_cast<int64_t>(t.value()->row_count())),
                       Value::Int(static_cast<int64_t>(
                           t.value()->schema().num_columns())),
                       Value::Int(static_cast<int64_t>(
                           t.value()->IndexNames().size()))});
  }
  rs.affected_rows = static_cast<int64_t>(rs.rows.size());
  return rs;
}

}  // namespace preserial::sql
