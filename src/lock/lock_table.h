#ifndef PRESERIAL_LOCK_LOCK_TABLE_H_
#define PRESERIAL_LOCK_LOCK_TABLE_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "lock/lock_mode.h"

namespace preserial::lock {

// Lockable resource name. The 2PL engine uses "table\x1fkey" row names.
using ResourceId = std::string;

// Outcome of a lock request against one resource queue.
enum class AcquireOutcome {
  kGranted,
  kWaiting,
};

// One resource's lock state: granted set + FIFO wait queue. Upgrade
// requests (a holder strengthening its mode) jump to the front of the wait
// queue, as is conventional.
class ResourceQueue {
 public:
  struct WaitingRequest {
    TxnId txn = kInvalidTxnId;
    LockMode mode = LockMode::kShared;
    bool upgrade = false;  // Txn already holds a weaker mode.
  };
  struct Grant {
    TxnId txn = kInvalidTxnId;
    LockMode mode = LockMode::kShared;
  };

  // Requests `mode` for `txn`. Re-requesting an already-held equal/weaker
  // mode is a granted no-op; a stronger mode follows the upgrade path.
  AcquireOutcome Acquire(TxnId txn, LockMode mode);

  // Drops txn's granted lock and/or waiting request. Returns requests that
  // became grantable (in grant order).
  std::vector<Grant> Release(TxnId txn);

  // Removes only txn's waiting request (lock-wait timeout / deadlock victim
  // backing out). Returns newly grantable requests.
  std::vector<Grant> CancelWait(TxnId txn);

  // Mode held by txn, if any.
  bool HeldBy(TxnId txn, LockMode* mode = nullptr) const;
  bool IsWaiting(TxnId txn) const;

  // Transactions this waiter is blocked behind: incompatible holders plus
  // incompatible earlier waiters (FIFO queues make those real blockers).
  std::vector<TxnId> BlockersOf(TxnId waiter) const;

  bool Empty() const { return granted_.empty() && waiting_.empty(); }
  size_t granted_count() const { return granted_.size(); }
  size_t waiting_count() const { return waiting_.size(); }
  const std::deque<WaitingRequest>& waiting() const { return waiting_; }

 private:
  // True when `txn` could run `mode` given current grants (ignoring its own
  // grant, which it may be upgrading).
  bool CompatibleWithGranted(TxnId txn, LockMode mode) const;
  std::vector<Grant> PumpQueue();

  std::map<TxnId, LockMode> granted_;
  std::deque<WaitingRequest> waiting_;
};

}  // namespace preserial::lock

#endif  // PRESERIAL_LOCK_LOCK_TABLE_H_
