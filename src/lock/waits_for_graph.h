#ifndef PRESERIAL_LOCK_WAITS_FOR_GRAPH_H_
#define PRESERIAL_LOCK_WAITS_FOR_GRAPH_H_

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"

namespace preserial::lock {

// Directed waits-for graph: an edge A -> B means "A waits for B". Built on
// demand by the lock manager from its queues and queried for cycles, which
// are deadlocks.
class WaitsForGraph {
 public:
  void AddEdge(TxnId from, TxnId to);
  void Clear();

  size_t edge_count() const;

  // True iff `start` lies on some cycle; fills `cycle` with the transactions
  // along it (start first) when non-null.
  bool HasCycleFrom(TxnId start, std::vector<TxnId>* cycle = nullptr) const;

  // True iff any cycle exists; fills `cycle` with one of them.
  bool DetectAnyCycle(std::vector<TxnId>* cycle = nullptr) const;

  const std::unordered_set<TxnId>& Successors(TxnId t) const;

 private:
  std::unordered_map<TxnId, std::unordered_set<TxnId>> adj_;
};

}  // namespace preserial::lock

#endif  // PRESERIAL_LOCK_WAITS_FOR_GRAPH_H_
