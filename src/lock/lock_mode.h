#ifndef PRESERIAL_LOCK_LOCK_MODE_H_
#define PRESERIAL_LOCK_LOCK_MODE_H_

namespace preserial::lock {

// Classical lock modes for the strict-2PL baseline engine.
//   kShared    - read
//   kUpdate    - read with intent to write (compatible with kShared holders,
//                incompatible with other kUpdate/kExclusive; prevents the
//                classic S->X upgrade deadlock of the paper's Sec. II
//                motivating example)
//   kExclusive - write
enum class LockMode {
  kShared,
  kUpdate,
  kExclusive,
};

const char* LockModeName(LockMode m);

// True when a new request of mode `requested` can run alongside an existing
// holder of mode `held`.
bool Compatible(LockMode held, LockMode requested);

// True when `from` -> `to` is a strengthening conversion (S->U, S->X, U->X).
bool IsUpgrade(LockMode from, LockMode to);

// The weaker/stronger of two modes (total order S < U < X).
LockMode Stronger(LockMode a, LockMode b);

}  // namespace preserial::lock

#endif  // PRESERIAL_LOCK_LOCK_MODE_H_
