#include "lock/lock_manager.h"

namespace preserial::lock {

ResourceQueue* LockManager::QueueFor(const ResourceId& resource) {
  return &queues_[resource];
}

LockResult LockManager::Acquire(TxnId txn, const ResourceId& resource,
                                LockMode mode) {
  ResourceQueue* q = QueueFor(resource);
  const AcquireOutcome outcome = q->Acquire(txn, mode);
  txn_resources_[txn].insert(resource);
  if (outcome == AcquireOutcome::kGranted) return LockResult::kGranted;

  // The request is queued: would it close a cycle?
  WaitsForGraph wfg = BuildWaitsForGraph();
  if (wfg.HasCycleFrom(txn)) {
    // Back the request out; the caller must abort (or retry later).
    std::vector<LockGrant> grants;
    NoteGrants(resource, q->CancelWait(txn), &grants);
    // Backing out a wait can never grant anyone new locks beyond what the
    // pump finds, but if it does, those grants are genuine; they are
    // reported through the next Release call's path in practice. Assert
    // the common case.
    if (!q->HeldBy(txn)) {
      auto it = txn_resources_.find(txn);
      if (it != txn_resources_.end()) it->second.erase(resource);
    }
    GarbageCollect(resource);
    pending_grants_.insert(pending_grants_.end(), grants.begin(),
                           grants.end());
    return LockResult::kDeadlock;
  }
  return LockResult::kWaiting;
}

void LockManager::NoteGrants(const ResourceId& resource,
                             const std::vector<ResourceQueue::Grant>& grants,
                             std::vector<LockGrant>* out) {
  for (const ResourceQueue::Grant& g : grants) {
    out->push_back(LockGrant{g.txn, resource, g.mode});
  }
}

std::vector<LockGrant> LockManager::Release(TxnId txn,
                                            const ResourceId& resource) {
  std::vector<LockGrant> out = TakePendingGrants();
  auto it = queues_.find(resource);
  if (it == queues_.end()) return out;
  NoteGrants(resource, it->second.Release(txn), &out);
  auto tr = txn_resources_.find(txn);
  if (tr != txn_resources_.end()) tr->second.erase(resource);
  GarbageCollect(resource);
  return out;
}

std::vector<LockGrant> LockManager::ReleaseAll(TxnId txn) {
  std::vector<LockGrant> out = TakePendingGrants();
  auto tr = txn_resources_.find(txn);
  if (tr == txn_resources_.end()) return out;
  const std::unordered_set<ResourceId> resources = std::move(tr->second);
  txn_resources_.erase(tr);
  for (const ResourceId& r : resources) {
    auto it = queues_.find(r);
    if (it == queues_.end()) continue;
    NoteGrants(r, it->second.Release(txn), &out);
    GarbageCollect(r);
  }
  return out;
}

std::vector<LockGrant> LockManager::CancelWaits(TxnId txn) {
  std::vector<LockGrant> out = TakePendingGrants();
  auto tr = txn_resources_.find(txn);
  if (tr == txn_resources_.end()) return out;
  std::vector<ResourceId> to_forget;
  for (const ResourceId& r : tr->second) {
    auto it = queues_.find(r);
    if (it == queues_.end()) continue;
    if (!it->second.IsWaiting(txn)) continue;
    NoteGrants(r, it->second.CancelWait(txn), &out);
    if (!it->second.HeldBy(txn)) to_forget.push_back(r);
    GarbageCollect(r);
  }
  for (const ResourceId& r : to_forget) tr->second.erase(r);
  return out;
}

bool LockManager::Holds(TxnId txn, const ResourceId& resource,
                        LockMode* mode) const {
  auto it = queues_.find(resource);
  if (it == queues_.end()) return false;
  return it->second.HeldBy(txn, mode);
}

bool LockManager::IsWaiting(TxnId txn) const {
  auto tr = txn_resources_.find(txn);
  if (tr == txn_resources_.end()) return false;
  for (const ResourceId& r : tr->second) {
    auto it = queues_.find(r);
    if (it != queues_.end() && it->second.IsWaiting(txn)) return true;
  }
  return false;
}

std::vector<ResourceId> LockManager::HeldResources(TxnId txn) const {
  std::vector<ResourceId> out;
  auto tr = txn_resources_.find(txn);
  if (tr == txn_resources_.end()) return out;
  for (const ResourceId& r : tr->second) {
    auto it = queues_.find(r);
    if (it != queues_.end() && it->second.HeldBy(txn)) out.push_back(r);
  }
  return out;
}

WaitsForGraph LockManager::BuildWaitsForGraph() const {
  WaitsForGraph wfg;
  for (const auto& [resource, queue] : queues_) {
    for (const ResourceQueue::WaitingRequest& w : queue.waiting()) {
      for (TxnId blocker : queue.BlockersOf(w.txn)) {
        wfg.AddEdge(w.txn, blocker);
      }
    }
  }
  return wfg;
}

void LockManager::GarbageCollect(const ResourceId& resource) {
  auto it = queues_.find(resource);
  if (it != queues_.end() && it->second.Empty()) queues_.erase(it);
}

std::vector<LockGrant> LockManager::TakePendingGrants() {
  std::vector<LockGrant> out;
  out.swap(pending_grants_);
  return out;
}

}  // namespace preserial::lock
