#include "lock/waits_for_graph.h"

#include <functional>

namespace preserial::lock {

namespace {
const std::unordered_set<TxnId>& EmptySet() {
  static const std::unordered_set<TxnId>* empty =
      new std::unordered_set<TxnId>();
  return *empty;
}
}  // namespace

void WaitsForGraph::AddEdge(TxnId from, TxnId to) {
  if (from == to) return;
  adj_[from].insert(to);
}

void WaitsForGraph::Clear() { adj_.clear(); }

size_t WaitsForGraph::edge_count() const {
  size_t n = 0;
  for (const auto& [_, succ] : adj_) n += succ.size();
  return n;
}

const std::unordered_set<TxnId>& WaitsForGraph::Successors(TxnId t) const {
  auto it = adj_.find(t);
  return it == adj_.end() ? EmptySet() : it->second;
}

bool WaitsForGraph::HasCycleFrom(TxnId start, std::vector<TxnId>* cycle) const {
  // DFS looking for a path that returns to `start`.
  std::vector<TxnId> path;
  std::unordered_set<TxnId> visited;
  std::function<bool(TxnId)> dfs = [&](TxnId node) -> bool {
    for (TxnId next : Successors(node)) {
      if (next == start) {
        path.push_back(node);
        return true;
      }
      if (visited.insert(next).second) {
        if (dfs(next)) {
          path.push_back(node);
          return true;
        }
      }
    }
    return false;
  };
  visited.insert(start);
  if (!dfs(start)) return false;
  if (cycle != nullptr) {
    cycle->clear();
    cycle->push_back(start);
    // `path` holds the cycle nodes in reverse (excluding start).
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (*it != start) cycle->push_back(*it);
    }
  }
  return true;
}

bool WaitsForGraph::DetectAnyCycle(std::vector<TxnId>* cycle) const {
  // Iterative three-color DFS over the whole graph.
  enum class Color { kWhite, kGray, kBlack };
  std::unordered_map<TxnId, Color> color;
  for (const auto& [node, _] : adj_) color.emplace(node, Color::kWhite);

  std::function<bool(TxnId, std::vector<TxnId>&)> dfs =
      [&](TxnId node, std::vector<TxnId>& stack) -> bool {
    color[node] = Color::kGray;
    stack.push_back(node);
    for (TxnId next : Successors(node)) {
      auto it = color.find(next);
      const Color c = it == color.end() ? Color::kBlack : it->second;
      if (c == Color::kGray) {
        if (cycle != nullptr) {
          // Trim the stack down to the cycle entry point.
          cycle->clear();
          auto from = stack.begin();
          while (from != stack.end() && *from != next) ++from;
          cycle->assign(from, stack.end());
        }
        return true;
      }
      if (c == Color::kWhite && dfs(next, stack)) return true;
    }
    stack.pop_back();
    color[node] = Color::kBlack;
    return false;
  };

  std::vector<TxnId> stack;
  for (const auto& [node, _] : adj_) {
    if (color[node] == Color::kWhite && dfs(node, stack)) return true;
  }
  return false;
}

}  // namespace preserial::lock
