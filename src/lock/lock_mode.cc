#include "lock/lock_mode.h"

namespace preserial::lock {

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kShared:
      return "S";
    case LockMode::kUpdate:
      return "U";
    case LockMode::kExclusive:
      return "X";
  }
  return "?";
}

bool Compatible(LockMode held, LockMode requested) {
  switch (held) {
    case LockMode::kShared:
      return requested != LockMode::kExclusive;
    case LockMode::kUpdate:
      return requested == LockMode::kShared;
    case LockMode::kExclusive:
      return false;
  }
  return false;
}

bool IsUpgrade(LockMode from, LockMode to) {
  return static_cast<int>(to) > static_cast<int>(from);
}

LockMode Stronger(LockMode a, LockMode b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

}  // namespace preserial::lock
