#ifndef PRESERIAL_LOCK_LOCK_MANAGER_H_
#define PRESERIAL_LOCK_LOCK_MANAGER_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "lock/lock_table.h"
#include "lock/waits_for_graph.h"

namespace preserial::lock {

// Result of LockManager::Acquire.
enum class LockResult {
  kGranted,
  kWaiting,   // Queued; the caller will be handed a Grant on release.
  kDeadlock,  // Granting would close a waits-for cycle; the request was
              // backed out and the requester should abort.
};

// A request that became runnable after a release/cancel.
struct LockGrant {
  TxnId txn = kInvalidTxnId;
  ResourceId resource;
  LockMode mode = LockMode::kShared;
};

// Non-blocking strict-2PL lock manager over named resources.
//
// Deliberately event-style: Acquire never blocks; instead a waiting caller
// is resumed when Release/CancelWait returns its LockGrant. This lets the
// same engine run under the discrete-event simulator (waits take virtual
// time) and under a thread wrapper (waits park on a condvar).
//
// Deadlock policy: detection at acquire time on the waits-for graph; the
// requester whose wait would close a cycle is refused (kDeadlock), which
// under strict 2PL means the transaction aborts and retries — matching the
// behaviour the paper ascribes to classical 2PL in Sec. II.
//
// Not thread-safe; callers serialize externally.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  LockResult Acquire(TxnId txn, const ResourceId& resource, LockMode mode);

  // Releases one resource; returns requests that became grantable.
  std::vector<LockGrant> Release(TxnId txn, const ResourceId& resource);

  // Releases everything txn holds or waits for (commit/abort under strict
  // 2PL). Returns requests that became grantable.
  std::vector<LockGrant> ReleaseAll(TxnId txn);

  // Backs out txn's waiting requests only (lock-wait timeout); held locks
  // stay. Returns requests that became grantable.
  std::vector<LockGrant> CancelWaits(TxnId txn);

  // Grants that materialized as a side effect of a kDeadlock back-out in
  // Acquire. Callers should drain this after an Acquire that returned
  // kDeadlock (Release/ReleaseAll/CancelWaits drain it implicitly).
  std::vector<LockGrant> TakePendingGrants();

  bool Holds(TxnId txn, const ResourceId& resource,
             LockMode* mode = nullptr) const;
  bool IsWaiting(TxnId txn) const;

  // Resources txn currently holds (any mode).
  std::vector<ResourceId> HeldResources(TxnId txn) const;

  // Rebuilds the waits-for graph from current queues (exposed for tests and
  // for periodic detection policies).
  WaitsForGraph BuildWaitsForGraph() const;

  size_t resource_count() const { return queues_.size(); }

 private:
  ResourceQueue* QueueFor(const ResourceId& resource);
  void NoteGrants(const ResourceId& resource,
                  const std::vector<ResourceQueue::Grant>& grants,
                  std::vector<LockGrant>* out);
  void GarbageCollect(const ResourceId& resource);

  std::unordered_map<ResourceId, ResourceQueue> queues_;
  // txn -> resources it holds or waits on (superset; validated on use).
  std::unordered_map<TxnId, std::unordered_set<ResourceId>> txn_resources_;
  std::vector<LockGrant> pending_grants_;
};

}  // namespace preserial::lock

#endif  // PRESERIAL_LOCK_LOCK_MANAGER_H_
