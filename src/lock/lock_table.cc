#include "lock/lock_table.h"

#include <algorithm>

namespace preserial::lock {

bool ResourceQueue::CompatibleWithGranted(TxnId txn, LockMode mode) const {
  for (const auto& [holder, held] : granted_) {
    if (holder == txn) continue;
    if (!Compatible(held, mode)) return false;
  }
  return true;
}

AcquireOutcome ResourceQueue::Acquire(TxnId txn, LockMode mode) {
  auto held = granted_.find(txn);
  if (held != granted_.end() && !IsUpgrade(held->second, mode)) {
    return AcquireOutcome::kGranted;  // Already strong enough.
  }
  const bool upgrade = held != granted_.end();

  // A fresh request must queue behind existing waiters (FIFO fairness);
  // an upgrade only needs compatibility with the other holders.
  const bool can_grant_now =
      CompatibleWithGranted(txn, mode) && (upgrade || waiting_.empty());
  if (can_grant_now) {
    granted_[txn] = mode;
    return AcquireOutcome::kGranted;
  }

  WaitingRequest req{txn, mode, upgrade};
  if (upgrade) {
    // Upgrades go ahead of plain waiters (but behind earlier upgrades).
    auto pos = waiting_.begin();
    while (pos != waiting_.end() && pos->upgrade) ++pos;
    waiting_.insert(pos, req);
  } else {
    waiting_.push_back(req);
  }
  return AcquireOutcome::kWaiting;
}

std::vector<ResourceQueue::Grant> ResourceQueue::PumpQueue() {
  std::vector<Grant> grants;
  while (!waiting_.empty()) {
    const WaitingRequest& head = waiting_.front();
    if (!CompatibleWithGranted(head.txn, head.mode)) break;
    granted_[head.txn] = head.mode;
    grants.push_back(Grant{head.txn, head.mode});
    waiting_.pop_front();
  }
  return grants;
}

std::vector<ResourceQueue::Grant> ResourceQueue::Release(TxnId txn) {
  granted_.erase(txn);
  waiting_.erase(std::remove_if(waiting_.begin(), waiting_.end(),
                                [txn](const WaitingRequest& w) {
                                  return w.txn == txn;
                                }),
                 waiting_.end());
  return PumpQueue();
}

std::vector<ResourceQueue::Grant> ResourceQueue::CancelWait(TxnId txn) {
  waiting_.erase(std::remove_if(waiting_.begin(), waiting_.end(),
                                [txn](const WaitingRequest& w) {
                                  return w.txn == txn;
                                }),
                 waiting_.end());
  return PumpQueue();
}

bool ResourceQueue::HeldBy(TxnId txn, LockMode* mode) const {
  auto it = granted_.find(txn);
  if (it == granted_.end()) return false;
  if (mode != nullptr) *mode = it->second;
  return true;
}

bool ResourceQueue::IsWaiting(TxnId txn) const {
  for (const WaitingRequest& w : waiting_) {
    if (w.txn == txn) return true;
  }
  return false;
}

std::vector<TxnId> ResourceQueue::BlockersOf(TxnId waiter) const {
  std::vector<TxnId> blockers;
  LockMode mode = LockMode::kShared;
  bool found = false;
  // Find the waiter's queued request.
  size_t waiter_pos = waiting_.size();
  for (size_t i = 0; i < waiting_.size(); ++i) {
    if (waiting_[i].txn == waiter) {
      mode = waiting_[i].mode;
      waiter_pos = i;
      found = true;
      break;
    }
  }
  if (!found) return blockers;
  for (const auto& [holder, held] : granted_) {
    if (holder != waiter && !Compatible(held, mode)) {
      blockers.push_back(holder);
    }
  }
  // FIFO semantics: earlier incompatible waiters also gate this request.
  for (size_t i = 0; i < waiter_pos; ++i) {
    if (waiting_[i].txn != waiter &&
        !Compatible(waiting_[i].mode, mode)) {
      blockers.push_back(waiting_[i].txn);
    }
  }
  return blockers;
}

}  // namespace preserial::lock
