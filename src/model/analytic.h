#ifndef PRESERIAL_MODEL_ANALYTIC_H_
#define PRESERIAL_MODEL_ANALYTIC_H_

#include <cstdint>

namespace preserial::model {

// Analytic model of Sec. VI-A. All functions are pure; the Fig. 1 / Fig. 2
// benches sweep them over the paper's parameter grids.

// log C(n, k), computed with lgamma so large n stay finite. Returns -inf
// for invalid (k < 0 or k > n).
double LogBinomial(int64_t n, int64_t k);

// Paper eq. (3): average 2PL execution time with c conflicting transactions
// out of n, each with ideal execution time tau_e. A conflicting arrival is
// assumed to land halfway through the holder's execution, so
//   tau(c) = ((n - c) tau_e + c (tau_e + tau_e / 2)) / n
//          = tau_e (1 + c / (2n)).
// Note the 2PL model does not depend on operation compatibility.
double TwoPlExecutionTime(int64_t n, int64_t c, double tau_e);

// Paper eq. (4): probability that exactly k of the c conflicts involve one
// of the i incompatible operations — hypergeometric(n, i, c):
//   P(k) = C(i, k) C(n - i, c - k) / C(n, c).
double IncompatibleConflictProbability(int64_t n, int64_t i, int64_t c,
                                       int64_t k);

// Paper eq. (5): the proposed scheme's average execution time. Only the K
// incompatible conflicts cost 2PL-style waiting; compatible conflicts
// proceed on virtual copies for free (SSTs assumed instantaneous):
//   tau(c, i) = sum_k P(k) tau_2PL(k) = E[tau_2PL(K)], K ~ Hyper(n, i, c).
double OurExecutionTime(int64_t n, int64_t c, int64_t i, double tau_e);

// Closed form of eq. (5): E[K] = c i / n, hence
//   tau(c, i) = tau_e (1 + c i / (2 n^2)).
// Exposed so tests can cross-check the summation; at c = n, i = 0 the
// improvement over 2PL is exactly the paper's headline 50 %.
double OurExecutionTimeClosedForm(int64_t n, int64_t c, int64_t i,
                                  double tau_e);

// Sec. VI-A abort model for Fig. 2: a sleeping transaction aborts iff it
// disconnected AND conflicted AND the conflict was incompatible,
//   P(abort) = P(d) P(c) P(i).
// Probabilities are clamped to [0, 1].
double SleeperAbortProbability(double p_disconnect, double p_conflict,
                               double p_incompatible);

}  // namespace preserial::model

#endif  // PRESERIAL_MODEL_ANALYTIC_H_
