#include "model/analytic.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace preserial::model {

double LogBinomial(int64_t n, int64_t k) {
  if (k < 0 || k > n || n < 0) {
    return -std::numeric_limits<double>::infinity();
  }
  return std::lgamma(static_cast<double>(n) + 1) -
         std::lgamma(static_cast<double>(k) + 1) -
         std::lgamma(static_cast<double>(n - k) + 1);
}

double TwoPlExecutionTime(int64_t n, int64_t c, double tau_e) {
  if (n <= 0) return tau_e;
  const double nn = static_cast<double>(n);
  const double cc = static_cast<double>(std::clamp<int64_t>(c, 0, n));
  return ((nn - cc) * tau_e + cc * (tau_e + tau_e / 2.0)) / nn;
}

double IncompatibleConflictProbability(int64_t n, int64_t i, int64_t c,
                                       int64_t k) {
  const double log_p = LogBinomial(i, k) + LogBinomial(n - i, c - k) -
                       LogBinomial(n, c);
  if (!std::isfinite(log_p)) return 0.0;
  return std::exp(log_p);
}

double OurExecutionTime(int64_t n, int64_t c, int64_t i, double tau_e) {
  if (n <= 0) return tau_e;
  c = std::clamp<int64_t>(c, 0, n);
  i = std::clamp<int64_t>(i, 0, n);
  const int64_t k_max = std::min(i, c);
  double t = 0.0;
  double total_p = 0.0;
  for (int64_t k = 0; k <= k_max; ++k) {
    const double p = IncompatibleConflictProbability(n, i, c, k);
    t += p * TwoPlExecutionTime(n, k, tau_e);
    total_p += p;
  }
  // The hypergeometric mass over [max(0, c-(n-i)), min(i, c)] is 1; if the
  // lower tail is cut (c > n - i) renormalize over the reachable support.
  if (total_p > 0.0) t /= total_p;
  return t;
}

double OurExecutionTimeClosedForm(int64_t n, int64_t c, int64_t i,
                                  double tau_e) {
  if (n <= 0) return tau_e;
  const double nn = static_cast<double>(n);
  const double cc = static_cast<double>(std::clamp<int64_t>(c, 0, n));
  const double ii = static_cast<double>(std::clamp<int64_t>(i, 0, n));
  return tau_e * (1.0 + cc * ii / (2.0 * nn * nn));
}

double SleeperAbortProbability(double p_disconnect, double p_conflict,
                               double p_incompatible) {
  const double d = std::clamp(p_disconnect, 0.0, 1.0);
  const double c = std::clamp(p_conflict, 0.0, 1.0);
  const double i = std::clamp(p_incompatible, 0.0, 1.0);
  return d * c * i;
}

}  // namespace preserial::model
