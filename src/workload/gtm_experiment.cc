#include "workload/gtm_experiment.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/router.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"
#include "gtm/gtm.h"
#include "mobile/disconnect_model.h"
#include "mobile/network.h"
#include "obs/export.h"
#include "storage/database.h"
#include "txn/occ.h"

namespace preserial::workload {

namespace {

using mobile::DisconnectPlan;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr char kTable[] = "resources";
constexpr size_t kColId = 0;
constexpr size_t kColQty = 1;
constexpr size_t kColPrice = 2;

// One planned transaction of the experiment, engine-agnostic.
struct PlannedTxn {
  size_t object = 0;
  bool is_subtract = true;
  DisconnectPlan disconnect;
  TimePoint arrival = 0;
  Duration invoke_delay = 0;
  Duration commit_delay = 0;
};

std::unique_ptr<storage::Database> BuildDatabase(
    const GtmExperimentSpec& spec) {
  auto db = std::make_unique<storage::Database>();
  Result<storage::RecoveryStats> opened = db->Open();
  PRESERIAL_CHECK(opened.ok());
  Result<Schema> schema = Schema::Create(
      {
          ColumnDef{"id", ValueType::kInt64, false},
          ColumnDef{"qty", ValueType::kInt64, false},
          ColumnDef{"price", ValueType::kDouble, false},
      },
      kColId);
  PRESERIAL_CHECK(schema.ok());
  Result<storage::Table*> table =
      db->CreateTable(kTable, std::move(schema).value());
  PRESERIAL_CHECK(table.ok());
  for (size_t i = 0; i < spec.num_objects; ++i) {
    Status s = db->InsertRow(
        kTable, Row({Value::Int(static_cast<int64_t>(i)),
                     Value::Int(spec.initial_quantity),
                     Value::Double(spec.price_value)}));
    PRESERIAL_CHECK(s.ok()) << s.ToString();
  }
  if (spec.add_quantity_constraint) {
    Status s = db->AddConstraint(
        kTable, storage::CheckConstraint("qty_nonneg", kColQty,
                                         storage::CompareOp::kGe,
                                         Value::Int(0)));
    PRESERIAL_CHECK(s.ok()) << s.ToString();
  }
  return db;
}

std::vector<PlannedTxn> BuildPlans(const GtmExperimentSpec& spec, Rng* rng) {
  const mobile::DisconnectModel disconnects =
      mobile::DisconnectModel::WithExponentialDuration(spec.beta,
                                                       spec.disconnect_mean);
  const mobile::NetworkModel network =
      spec.network_delay_mean > 0
          ? mobile::NetworkModel(std::make_unique<sim::ExponentialDist>(
                spec.network_delay_mean))
          : mobile::NetworkModel();
  std::vector<PlannedTxn> plans;
  plans.reserve(spec.num_txns);
  TimePoint arrival = 0;
  for (size_t i = 0; i < spec.num_txns; ++i) {
    PlannedTxn p;
    p.object = rng->NextBounded(spec.num_objects);  // gamma_j = uniform.
    p.is_subtract = rng->NextBool(spec.alpha);
    if (p.is_subtract) {
      // Only mobile (subtraction) clients disconnect, per the paper.
      p.disconnect = disconnects.Sample(*rng, spec.work_time);
    }
    p.invoke_delay = network.SampleDelay(*rng);
    p.commit_delay = network.SampleDelay(*rng);
    p.arrival = arrival;
    arrival += spec.interarrival;
    plans.push_back(p);
  }
  return plans;
}

gtm::ObjectId ObjectIdFor(size_t i) {
  return StrFormat("%s/%zu", kTable, i);
}

// When both a trace window and a history are requested the two share one
// ring per domain — size it for whichever asks for more.
size_t RingCapacity(const GtmExperimentSpec& spec) {
  return std::max(spec.history_capacity, spec.trace_capacity);
}

}  // namespace

ExperimentResult RunGtmExperiment(const GtmExperimentSpec& spec,
                                  const gtm::GtmOptions& options) {
  Rng rng(spec.seed);
  std::unique_ptr<storage::Database> db = BuildDatabase(spec);

  sim::Simulator simulator;
  if (spec.tie_breaker) simulator.SetTieBreaker(spec.tie_breaker);
  gtm::Gtm gtm(db.get(), simulator.clock(), options);
  GtmRunner runner(&gtm, &simulator);
  GtmRunner* runner_ptr = &runner;
  if (spec.trace_capacity > 0) {
    gtm.trace()->Enable(spec.trace_capacity);
    runner.client_trace()->Enable(spec.trace_capacity);
  }

  // Register the objects: qty and price are logically dependent members.
  for (size_t i = 0; i < spec.num_objects; ++i) {
    semantics::LogicalDependencies deps;
    deps.AddDependency(0, 1);
    Status s = gtm.RegisterObject(ObjectIdFor(i), kTable,
                                  Value::Int(static_cast<int64_t>(i)),
                                  {kColQty, kColPrice}, std::move(deps));
    PRESERIAL_CHECK(s.ok()) << s.ToString();
  }
  check::HistoryRecorder recorder;
  if (spec.history_capacity > 0) recorder.Attach(&gtm, RingCapacity(spec));

  for (const PlannedTxn& p : BuildPlans(spec, &rng)) {
    mobile::TxnPlan plan;
    plan.object = ObjectIdFor(p.object);
    if (p.is_subtract) {
      plan.member = 0;  // qty
      plan.op = semantics::Operation::Sub(Value::Int(1));
    } else {
      plan.member = 1;  // price
      plan.op = semantics::Operation::Assign(Value::Double(spec.price_value));
    }
    plan.work_time = spec.work_time;
    plan.disconnect = p.disconnect;
    plan.invoke_delay = p.invoke_delay;
    plan.commit_delay = p.commit_delay;
    plan.tag = p.is_subtract ? kTagSubtract : kTagAssign;
    runner_ptr->AddSession(std::move(plan), p.arrival);
  }

  ExperimentResult result;
  result.run = runner_ptr->Run();
  const gtm::GtmCounters& c = gtm.metrics().counters();
  result.waits = c.waits;
  result.shared_grants = c.shared_grants;
  result.awake_aborts = c.awake_aborts;
  result.deadlocks = c.deadlock_refusals;
  result.starvation_denials = c.starvation_denials;
  result.admission_denials = c.admission_denials;
  result.snapshot = gtm.metrics().TakeSnapshot();
  if (spec.trace_capacity > 0) {
    result.trace_events =
        obs::MergeEvents({gtm.trace(), runner.client_trace()});
  }
  if (recorder.attached()) result.history = recorder.Finish();
  return result;
}

LossyExperimentResult RunLossyGtmExperiment(const GtmExperimentSpec& spec,
                                            const ChannelSpec& channel,
                                            const gtm::GtmOptions& options) {
  Rng rng(spec.seed);
  // Channel faults draw from their own stream so the planned workload stays
  // identical across fault rates and modes (paired comparisons).
  Rng channel_rng(spec.seed ^ 0x9e3779b97f4a7c15ull);
  std::unique_ptr<storage::Database> db = BuildDatabase(spec);

  sim::Simulator simulator;
  if (spec.tie_breaker) simulator.SetTieBreaker(spec.tie_breaker);
  gtm::Gtm gtm(db.get(), simulator.clock(), options);
  GtmRunner runner(&gtm, &simulator);
  if (spec.trace_capacity > 0) {
    gtm.trace()->Enable(spec.trace_capacity);
    runner.client_trace()->Enable(spec.trace_capacity);
  }

  mobile::ChannelFaults faults;
  faults.loss = channel.loss;
  faults.duplicate = channel.duplicate;
  faults.reorder = channel.reorder;
  mobile::LossyChannel lossy(
      channel.delay_mean > 0
          ? mobile::NetworkModel(
                std::make_unique<sim::ExponentialDist>(channel.delay_mean))
          : mobile::NetworkModel(),
      faults);

  for (size_t i = 0; i < spec.num_objects; ++i) {
    semantics::LogicalDependencies deps;
    deps.AddDependency(0, 1);
    Status s = gtm.RegisterObject(ObjectIdFor(i), kTable,
                                  Value::Int(static_cast<int64_t>(i)),
                                  {kColQty, kColPrice}, std::move(deps));
    PRESERIAL_CHECK(s.ok()) << s.ToString();
  }
  check::HistoryRecorder recorder;
  if (spec.history_capacity > 0) recorder.Attach(&gtm, RingCapacity(spec));

  for (const PlannedTxn& p : BuildPlans(spec, &rng)) {
    mobile::FtPlan plan;
    plan.base.object = ObjectIdFor(p.object);
    if (p.is_subtract) {
      plan.base.member = 0;  // qty
      plan.base.op = semantics::Operation::Sub(Value::Int(1));
    } else {
      plan.base.member = 1;  // price
      plan.base.op =
          semantics::Operation::Assign(Value::Double(spec.price_value));
    }
    plan.base.work_time = spec.work_time;
    plan.base.tag = p.is_subtract ? kTagSubtract : kTagAssign;
    plan.retry.request_timeout = channel.request_timeout;
    plan.retry.max_attempts = channel.max_attempts;
    plan.mode = channel.degrade_to_sleep ? mobile::FtMode::kDegradeToSleep
                                         : mobile::FtMode::kAbortOnLoss;
    plan.reconnect_delay = channel.reconnect_delay;
    plan.max_degrades = channel.max_degrades;
    runner.AddFaultTolerantSession(std::move(plan), p.arrival, &lossy,
                                   &channel_rng);
  }

  LossyExperimentResult result;
  result.run = runner.Run();
  result.channel = lossy.counters();
  const gtm::GtmCounters& c = gtm.metrics().counters();
  result.duplicates_suppressed = c.duplicates_suppressed;
  result.awake_aborts = c.awake_aborts;
  for (size_t i = 0; i < spec.num_objects; ++i) {
    Result<Value> qty = db->GetTable(kTable).value()->GetColumnByKey(
        Value::Int(static_cast<int64_t>(i)), kColQty);
    PRESERIAL_CHECK(qty.ok());
    result.quantity_consumed +=
        spec.initial_quantity - qty.value().as_int();
  }
  result.snapshot = gtm.metrics().TakeSnapshot();
  if (spec.trace_capacity > 0) {
    result.trace_events =
        obs::MergeEvents({gtm.trace(), runner.client_trace()});
  }
  if (recorder.attached()) result.history = recorder.Finish();
  return result;
}

ShardedExperimentResult RunShardedGtmExperiment(
    const ShardedExperimentSpec& spec, const gtm::GtmOptions& options) {
  const GtmExperimentSpec& base = spec.base;
  Rng rng(base.seed);

  sim::Simulator simulator;
  if (base.tie_breaker) simulator.SetTieBreaker(base.tie_breaker);
  cluster::GtmCluster gtm_cluster(spec.num_shards, simulator.clock(), options);

  // Same schema as the single-instance run, created on every shard; each
  // object's backing row lives only on its owning shard.
  Result<Schema> schema = Schema::Create(
      {
          ColumnDef{"id", ValueType::kInt64, false},
          ColumnDef{"qty", ValueType::kInt64, false},
          ColumnDef{"price", ValueType::kDouble, false},
      },
      kColId);
  PRESERIAL_CHECK(schema.ok());
  Status created =
      gtm_cluster.CreateTableAllShards(kTable, std::move(schema).value());
  PRESERIAL_CHECK(created.ok()) << created.ToString();
  std::vector<cluster::ShardId> owner(base.num_objects);
  for (size_t i = 0; i < base.num_objects; ++i) {
    const gtm::ObjectId oid = ObjectIdFor(i);
    owner[i] = gtm_cluster.ShardOf(oid);
    Status s = gtm_cluster.db(owner[i])->InsertRow(
        kTable, Row({Value::Int(static_cast<int64_t>(i)),
                     Value::Int(base.initial_quantity),
                     Value::Double(base.price_value)}));
    PRESERIAL_CHECK(s.ok()) << s.ToString();
    semantics::LogicalDependencies deps;
    deps.AddDependency(0, 1);
    s = gtm_cluster.RegisterObject(oid, kTable,
                                   Value::Int(static_cast<int64_t>(i)),
                                   {kColQty, kColPrice}, std::move(deps));
    PRESERIAL_CHECK(s.ok()) << s.ToString();
  }
  if (base.add_quantity_constraint) {
    for (size_t sh = 0; sh < spec.num_shards; ++sh) {
      Status s = gtm_cluster.db(sh)->AddConstraint(
          kTable, storage::CheckConstraint("qty_nonneg", kColQty,
                                           storage::CompareOp::kGe,
                                           Value::Int(0)));
      PRESERIAL_CHECK(s.ok()) << s.ToString();
    }
  }

  storage::MemoryWalStorage coordinator_wal;
  cluster::ClusterCoordinator coordinator(&gtm_cluster, &coordinator_wal);
  cluster::GtmRouter router(&gtm_cluster, &coordinator, simulator.clock());
  coordinator.EnableTracing(router.trace(), simulator.clock());
  GtmRunner runner(&router, &simulator, spec.wait_timeout);
  if (base.trace_capacity > 0) {
    for (size_t sh = 0; sh < spec.num_shards; ++sh) {
      gtm_cluster.shard(sh)->trace()->Enable(base.trace_capacity);
    }
    router.trace()->Enable(base.trace_capacity);
    runner.client_trace()->Enable(base.trace_capacity);
  }
  check::ClusterHistoryRecorder recorder;
  if (base.history_capacity > 0) {
    recorder.Attach(&gtm_cluster, RingCapacity(base));
  }

  // Whether any cross-shard pairing exists at all (e.g. one shard => no).
  const bool can_cross = [&] {
    for (size_t i = 1; i < base.num_objects; ++i) {
      if (owner[i] != owner[0]) return true;
    }
    return false;
  }();

  ShardedExperimentResult result;
  for (const PlannedTxn& p : BuildPlans(base, &rng)) {
    const bool wants_cross = p.is_subtract && can_cross &&
                             rng.NextBool(spec.cross_shard_ratio);
    mobile::MultiTxnPlan plan;
    mobile::TourStep first;
    first.object = ObjectIdFor(p.object);
    if (p.is_subtract) {
      first.member = 0;  // qty
      first.op = semantics::Operation::Sub(Value::Int(1));
    } else {
      first.member = 1;  // price
      first.op = semantics::Operation::Assign(Value::Double(base.price_value));
    }
    first.invoke_delay = p.invoke_delay;
    first.shard = static_cast<int>(owner[p.object]);
    plan.shard = first.shard;
    if (wants_cross) {
      // Second booking on an object another shard owns: the tour spans two
      // lock domains and must commit through the coordinator.
      size_t other = rng.NextBounded(base.num_objects);
      while (owner[other] == owner[p.object]) {
        other = rng.NextBounded(base.num_objects);
      }
      first.think_time = base.work_time / 2;
      mobile::TourStep second;
      second.object = ObjectIdFor(other);
      second.member = 0;  // qty
      second.op = semantics::Operation::Sub(Value::Int(1));
      second.shard = static_cast<int>(owner[other]);
      plan.steps = {first, second};
      plan.final_think = base.work_time / 2;
      ++result.cross_shard_planned;
    } else {
      first.think_time = 0;
      plan.steps = {first};
      plan.final_think = base.work_time;
    }
    plan.commit_delay = p.commit_delay;
    plan.disconnect = p.disconnect;
    plan.tag = p.is_subtract ? kTagSubtract : kTagAssign;
    runner.AddMultiSession(std::move(plan), p.arrival);
  }

  result.run = runner.Run();
  result.shard_snapshots.reserve(spec.num_shards);
  for (size_t sh = 0; sh < spec.num_shards; ++sh) {
    result.shard_snapshots.push_back(gtm_cluster.ShardSnapshot(sh));
  }
  result.aggregate = gtm_cluster.AggregateSnapshot();
  result.coordinator = coordinator.counters();
  result.router_committed = router.committed();
  result.router_aborted = router.aborted();
  result.consumed_by_shard.assign(spec.num_shards, 0);
  for (size_t i = 0; i < base.num_objects; ++i) {
    Result<Value> qty =
        gtm_cluster.db(owner[i])->GetTable(kTable).value()->GetColumnByKey(
            Value::Int(static_cast<int64_t>(i)), kColQty);
    PRESERIAL_CHECK(qty.ok());
    result.consumed_by_shard[owner[i]] +=
        base.initial_quantity - qty.value().as_int();
  }
  for (int64_t c : result.consumed_by_shard) result.quantity_consumed += c;
  if (base.trace_capacity > 0) {
    std::vector<const gtm::TraceLog*> logs;
    for (size_t sh = 0; sh < spec.num_shards; ++sh) {
      logs.push_back(gtm_cluster.shard(sh)->trace());
    }
    logs.push_back(router.trace());
    logs.push_back(runner.client_trace());
    result.trace_events = obs::MergeEvents(logs);
  }
  if (base.history_capacity > 0) result.shard_histories = recorder.Finish();
  return result;
}

FailoverExperimentResult RunFailoverExperiment(
    const FailoverExperimentSpec& spec, const gtm::GtmOptions& options) {
  const GtmExperimentSpec& base = spec.base;
  const ChannelSpec& channel = spec.channel;
  Rng rng(base.seed);
  // Three independent streams: workload, client<->GTM channel faults, and
  // primary->backup ship-link faults — so the planned arrivals stay fixed
  // across ship modes (paired comparisons).
  Rng channel_rng(base.seed ^ 0x9e3779b97f4a7c15ull);
  Rng ship_rng(base.seed ^ 0xbf58476d1ce4e5b9ull);

  sim::Simulator simulator;
  if (base.tie_breaker) simulator.SetTieBreaker(base.tie_breaker);
  replica::ReplicaOptions ropts;
  ropts.num_backups = spec.num_backups;
  ropts.ship = spec.ship;
  replica::ReplicatedGtm group(simulator.clock(), options, ropts, &ship_rng);

  // Replicated bootstrap: schema, rows, constraint and registrations go
  // through the op log so every backup starts from the same state.
  Result<Schema> schema = Schema::Create(
      {
          ColumnDef{"id", ValueType::kInt64, false},
          ColumnDef{"qty", ValueType::kInt64, false},
          ColumnDef{"price", ValueType::kDouble, false},
      },
      kColId);
  PRESERIAL_CHECK(schema.ok());
  Status s = group.CreateTable(kTable, std::move(schema).value());
  PRESERIAL_CHECK(s.ok()) << s.ToString();
  for (size_t i = 0; i < base.num_objects; ++i) {
    s = group.InsertRow(kTable, Row({Value::Int(static_cast<int64_t>(i)),
                                     Value::Int(base.initial_quantity),
                                     Value::Double(base.price_value)}));
    PRESERIAL_CHECK(s.ok()) << s.ToString();
  }
  if (base.add_quantity_constraint) {
    s = group.AddConstraint(
        kTable, storage::CheckConstraint("qty_nonneg", kColQty,
                                         storage::CompareOp::kGe,
                                         Value::Int(0)));
    PRESERIAL_CHECK(s.ok()) << s.ToString();
  }
  for (size_t i = 0; i < base.num_objects; ++i) {
    semantics::LogicalDependencies deps;
    deps.AddDependency(0, 1);
    s = group.RegisterObject(ObjectIdFor(i),
                             kTable, Value::Int(static_cast<int64_t>(i)),
                             {kColQty, kColPrice}, std::move(deps));
    PRESERIAL_CHECK(s.ok()) << s.ToString();
  }

  GtmRunner runner(&group, &simulator, spec.wait_timeout);
  if (base.trace_capacity > 0) {
    for (size_t n = 0; n < group.num_nodes(); ++n) {
      group.node(n)->gtm()->trace()->Enable(base.trace_capacity);
    }
    runner.client_trace()->Enable(base.trace_capacity);
  }
  check::ReplicaHistoryRecorder recorder;
  if (base.history_capacity > 0) recorder.Attach(&group, RingCapacity(base));

  mobile::ChannelFaults faults;
  faults.loss = channel.loss;
  faults.duplicate = channel.duplicate;
  faults.reorder = channel.reorder;
  mobile::LossyChannel lossy(
      channel.delay_mean > 0
          ? mobile::NetworkModel(
                std::make_unique<sim::ExponentialDist>(channel.delay_mean))
          : mobile::NetworkModel(),
      faults);

  // Track sessions to cross-check the client's view of commit against the
  // promoted primary's after the run.
  std::vector<std::pair<mobile::FaultTolerantGtmSession*, bool>> tracked;
  tracked.reserve(base.num_txns);
  for (const PlannedTxn& p : BuildPlans(base, &rng)) {
    mobile::FtPlan plan;
    plan.base.object = ObjectIdFor(p.object);
    if (p.is_subtract) {
      plan.base.member = 0;  // qty
      plan.base.op = semantics::Operation::Sub(Value::Int(1));
    } else {
      plan.base.member = 1;  // price
      plan.base.op =
          semantics::Operation::Assign(Value::Double(base.price_value));
    }
    plan.base.work_time = base.work_time;
    plan.base.tag = p.is_subtract ? kTagSubtract : kTagAssign;
    plan.retry.request_timeout = channel.request_timeout;
    plan.retry.max_attempts = channel.max_attempts;
    plan.mode = channel.degrade_to_sleep ? mobile::FtMode::kDegradeToSleep
                                         : mobile::FtMode::kAbortOnLoss;
    plan.reconnect_delay = channel.reconnect_delay;
    plan.max_degrades = channel.max_degrades;
    tracked.emplace_back(runner.AddFaultTolerantSession(
                             std::move(plan), p.arrival, &lossy, &channel_rng),
                         p.is_subtract);
  }

  // Async shipping cadence: pre-scheduled rounds out to a horizon past the
  // last plausible completion (a self-rescheduling pump would keep the
  // event queue alive forever and the simulation would never drain).
  if (spec.ship.mode == replica::ShipMode::kAsync && spec.pump_interval > 0) {
    const TimePoint horizon =
        static_cast<double>(base.num_txns) * base.interarrival + 300.0;
    for (TimePoint t = spec.pump_interval; t < horizon;
         t += spec.pump_interval) {
      simulator.At(t, [&group] { (void)group.Pump(); });
    }
  }

  FailoverExperimentResult result;
  const TimePoint kill_time = spec.fail_at;
  if (kill_time > 0) {
    simulator.At(kill_time, [&group, &result] {
      result.sleeping_at_kill = static_cast<int64_t>(
          group.primary_gtm()
              ->TransactionsInState(gtm::TxnState::kSleeping)
              .size());
      result.replication_lag_at_kill =
          static_cast<int64_t>(group.shipper()->Lag());
      group.KillPrimary();
    });
    simulator.At(kill_time + spec.detect_delay,
                 [&group, &runner, &result, &simulator, kill_time] {
      Result<replica::PromotionReport> rep = group.Promote();
      PRESERIAL_CHECK(rep.ok()) << rep.status().ToString();
      result.failover_ran = true;
      result.sleeping_preserved = rep.value().sleeping_preserved;
      result.sleeping_lost = rep.value().sleeping_lost;
      result.truncated_records = rep.value().truncated_records;
      result.failover_latency = simulator.Now() - kill_time;
      // Deliver the synthesized grant events to any parked sessions.
      runner.DispatchEvents();
    });
  }

  result.run = runner.Run();
  result.final_epoch = group.epoch();
  result.ship = group.shipper()->counters();
  result.duplicates_suppressed =
      group.primary_gtm()->metrics().counters().duplicates_suppressed;

  for (const auto& [session, is_subtract] : tracked) {
    if (!is_subtract) continue;
    if (session->stats().committed) ++result.committed_subtracts;
    if (session->txn() != kInvalidTxnId) {
      Result<gtm::TxnState> st = group.primary_gtm()->StateOf(session->txn());
      if (st.ok() && st.value() == gtm::TxnState::kCommitted) {
        ++result.server_committed_subtracts;
      }
    }
  }
  for (size_t i = 0; i < base.num_objects; ++i) {
    Result<Value> qty =
        group.primary_db()->GetTable(kTable).value()->GetColumnByKey(
            Value::Int(static_cast<int64_t>(i)), kColQty);
    PRESERIAL_CHECK(qty.ok());
    result.quantity_consumed += base.initial_quantity - qty.value().as_int();
  }
  result.snapshot = group.primary_gtm()->metrics().TakeSnapshot();
  if (base.trace_capacity > 0) {
    std::vector<const gtm::TraceLog*> logs;
    for (size_t n = 0; n < group.num_nodes(); ++n) {
      logs.push_back(group.node(n)->gtm()->trace());
    }
    logs.push_back(runner.client_trace());
    result.trace_events = obs::MergeEvents(logs);
  }
  if (base.history_capacity > 0) result.history = recorder.Finish();
  return result;
}

ExperimentResult RunTwoPlExperiment(const GtmExperimentSpec& spec,
                                    const TwoPlPolicy& policy) {
  Rng rng(spec.seed);
  std::unique_ptr<storage::Database> db = BuildDatabase(spec);

  txn::TwoPhaseLockingOptions options;
  options.use_update_locks = policy.use_update_locks;
  sim::Simulator simulator;
  txn::TwoPhaseLockingEngine engine(db.get(), simulator.clock(), options);
  TwoPlRunner runner(&engine, &simulator);

  for (const PlannedTxn& p : BuildPlans(spec, &rng)) {
    mobile::TwoPlPlan plan;
    plan.table = kTable;
    plan.key = Value::Int(static_cast<int64_t>(p.object));
    plan.column = p.is_subtract ? kColQty : kColPrice;
    plan.is_subtract = p.is_subtract;
    if (!p.is_subtract) {
      plan.assign_value = Value::Double(spec.price_value);
    }
    plan.work_time = spec.work_time;
    plan.disconnect = p.disconnect;
    plan.lock_wait_timeout = policy.lock_wait_timeout;
    plan.idle_timeout = policy.idle_timeout;
    plan.invoke_delay = p.invoke_delay;
    plan.commit_delay = p.commit_delay;
    plan.tag = p.is_subtract ? kTagSubtract : kTagAssign;
    runner.AddSession(std::move(plan), p.arrival);
  }

  ExperimentResult result;
  result.run = runner.Run();
  result.waits = engine.counters().lock_waits;
  result.deadlocks = engine.counters().deadlocks;
  return result;
}

ExperimentResult RunOccExperiment(const GtmExperimentSpec& spec,
                                  bool validate_reads) {
  Rng rng(spec.seed);
  std::unique_ptr<storage::Database> db = BuildDatabase(spec);
  txn::OccEngine engine(db.get(),
                        validate_reads
                            ? txn::OccEngine::Validation::kValidateReads
                            : txn::OccEngine::Validation::kConstraintsOnly);

  sim::Simulator sim;
  RunStats stats;
  for (const PlannedTxn& p : BuildPlans(spec, &rng)) {
    sim.At(p.arrival, [&engine, &sim, &stats, &spec, p] {
      const TimePoint arrival = sim.Now();
      const TxnId t = engine.Begin();
      const Value key = Value::Int(static_cast<int64_t>(p.object));
      bool buffered_ok = true;
      if (p.is_subtract) {
        Result<Value> v = engine.Read(t, kTable, key, kColQty);
        buffered_ok =
            v.ok() &&
            engine.BufferAdd(t, kTable, key, kColQty, Value::Int(-1)).ok();
      } else {
        buffered_ok = engine
                          .BufferAssign(t, kTable, key, kColPrice,
                                        Value::Double(spec.price_value))
                          .ok();
      }
      // The user works (and possibly disconnects — harmless here: no locks
      // are held); the frozen transaction executes at commit time.
      Duration span = spec.work_time;
      if (p.disconnect.disconnects) span += p.disconnect.duration;
      sim.After(span, [&engine, &sim, &stats, p, arrival, t, buffered_ok] {
        mobile::SessionStats s;
        s.txn = t;
        s.arrival = arrival;
        s.finish = sim.Now();
        s.disconnected = p.disconnect.disconnects;
        if (!buffered_ok) {
          s.committed = false;
          s.cause = mobile::AbortCause::kOther;
        } else {
          const Status cs = engine.Commit(t);
          s.committed = cs.ok();
          s.cause = cs.ok() ? mobile::AbortCause::kNone
                            : mobile::AbortCause::kConstraint;
        }
        stats.Record(s);
      });
    });
  }
  sim.Run();

  ExperimentResult result;
  result.run = stats;
  return result;
}

}  // namespace preserial::workload
