#ifndef PRESERIAL_WORKLOAD_SYNTHETIC_H_
#define PRESERIAL_WORKLOAD_SYNTHETIC_H_

#include <cstdint>

#include "common/clock.h"

namespace preserial::workload {

// Conflict-controlled micro-workload validating the Fig. 1 analytic model
// by running the *real* GTM and 2PL engines under the model's assumptions:
// n measured transactions with ideal execution time tau_e, each on its own
// object; exactly c of them collide with a background add/sub holder that
// began tau_e/2 earlier on the same object; i of the n measured
// transactions are assignment-class (incompatible), the rest add/sub
// (compatible). No multiple conflicts, as in the paper.
struct ConflictSpec {
  int64_t n = 200;
  int64_t c = 100;   // Conflicting transactions (0..n).
  int64_t i = 50;    // Incompatible-class transactions (0..n).
  double tau_e = 1.0;
  uint64_t seed = 1;
};

struct ConflictResult {
  double avg_exec_gtm = 0;   // Simulated mean latency under the GTM.
  double avg_exec_2pl = 0;   // Simulated mean latency under strict 2PL.
  int64_t k_incompatible_conflicts = 0;  // Realized K (hypergeometric).
  double model_gtm = 0;      // Paper eq. (5) prediction.
  double model_2pl = 0;      // Paper eq. (3) prediction.
};

ConflictResult RunConflictExperiment(const ConflictSpec& spec);

// Sleep/awake micro-workload validating the Fig. 2 abort model
// P(abort) = P(d) P(c) P(i): each measured transaction holds an add/sub
// grant; with probability p_disconnect it sleeps mid-execution; with
// probability p_conflict a background transaction hits the same member
// while it is away, and that transaction is assignment-class with
// probability p_incompatible. A sleeping holder aborts at awake iff an
// incompatible background committed during its sleep (Algorithm 9).
struct SleeperSpec {
  int64_t n = 1000;
  double p_disconnect = 0.5;    // The paper's disconnection percentage.
  double p_conflict = 0.5;      // Conflict percentage.
  double p_incompatible = 0.5;  // Incompatibility percentage.
  double tau_e = 1.0;
  Duration sleep_duration = 4.0;
  uint64_t seed = 1;
};

struct SleeperResult {
  double abort_pct_all = 0;           // Aborted / n (percent).
  double abort_pct_disconnected = 0;  // Aborted sleepers / sleepers.
  double model_abort_pct = 0;         // 100 * P(d) P(c) P(i).
};

SleeperResult RunSleeperAbortExperiment(const SleeperSpec& spec);

}  // namespace preserial::workload

#endif  // PRESERIAL_WORKLOAD_SYNTHETIC_H_
