#include "workload/runner.h"

#include <utility>

namespace preserial::workload {

using mobile::AbortCause;
using mobile::SessionStats;

void RunStats::Record(const SessionStats& s) {
  if (started == 0 || s.arrival < first_arrival) first_arrival = s.arrival;
  if (s.finish > last_finish) last_finish = s.finish;
  ++started;
  latency_all.Add(s.Latency());
  if (s.disconnected) ++disconnected;
  if (s.committed) {
    ++committed;
    latency_committed.Add(s.Latency());
    latency_by_tag[s.tag].Add(s.Latency());
  } else {
    ++aborted;
    ++aborts_by_cause[s.cause];
    ++aborted_by_tag[s.tag];
    ++aborted_by_tag_shard[{s.tag, s.shard}];
    if (s.disconnected) ++disconnected_aborted;
  }
  retries += s.retries;
  degraded_to_sleep += s.degraded_sleeps;
}

// --- GtmRunner ------------------------------------------------------------------

GtmRunner::GtmRunner(gtm::GtmEndpoint* gtm, sim::Simulator* simulator,
                     Duration wait_timeout)
    : gtm_(gtm), sim_(simulator), wait_timeout_(wait_timeout) {}

void GtmRunner::AddSession(mobile::TxnPlan plan, TimePoint arrival,
                           bool measured) {
  auto session = std::make_unique<mobile::GtmSession>(
      gtm_, sim_, std::move(plan), /*pump=*/[this] { Pump(); },
      /*done=*/[this, measured](const SessionStats& s) {
        if (measured) stats_.Record(s);
      },
      &client_trace_);
  mobile::GtmSession* raw = session.get();
  sessions_.push_back(std::move(session));
  sim_->At(arrival, [this, raw] {
    raw->Start();
    by_txn_[raw->txn()] = raw;
  });
  if (wait_timeout_ > 0 && !sweep_scheduled_) {
    sweep_scheduled_ = true;
    sim_->After(wait_timeout_ / 2, [this] { SweepTimeouts(); });
  }
}

void GtmRunner::AddMultiSession(mobile::MultiTxnPlan plan, TimePoint arrival,
                                bool measured) {
  auto session = std::make_unique<mobile::MultiGtmSession>(
      gtm_, sim_, std::move(plan), /*pump=*/[this] { Pump(); },
      /*done=*/[this, measured](const SessionStats& s) {
        if (measured) stats_.Record(s);
      },
      &client_trace_);
  mobile::MultiGtmSession* raw = session.get();
  multi_sessions_.push_back(std::move(session));
  sim_->At(arrival, [this, raw] {
    raw->Start();
    by_txn_[raw->txn()] = raw;
  });
  if (wait_timeout_ > 0 && !sweep_scheduled_) {
    sweep_scheduled_ = true;
    sim_->After(wait_timeout_ / 2, [this] { SweepTimeouts(); });
  }
}

mobile::FaultTolerantGtmSession* GtmRunner::AddFaultTolerantSession(
    mobile::FtPlan plan, TimePoint arrival, const mobile::LossyChannel* channel,
    Rng* rng, bool measured) {
  auto session = std::make_unique<mobile::FaultTolerantGtmSession>(
      gtm_, sim_, channel, rng, std::move(plan), /*pump=*/[this] { Pump(); },
      /*done=*/[this, measured](const SessionStats& s) {
        if (measured) stats_.Record(s);
      },
      &client_trace_);
  mobile::FaultTolerantGtmSession* raw = session.get();
  ft_sessions_.push_back(std::move(session));
  sim_->At(arrival, [this, raw] {
    raw->Start();
    by_txn_[raw->txn()] = raw;
  });
  if (wait_timeout_ > 0 && !sweep_scheduled_) {
    sweep_scheduled_ = true;
    sim_->After(wait_timeout_ / 2, [this] { SweepTimeouts(); });
  }
  return raw;
}

mobile::GtmWaiter* GtmRunner::Resolve(TxnId txn) {
  if (txn == kInvalidTxnId) return nullptr;
  auto it = by_txn_.find(txn);
  if (it != by_txn_.end()) return it->second;
  // A session whose Begin was refused at arrival (dead primary) registered
  // under kInvalidTxnId; bind it now that its retry succeeded.
  for (const auto& s : ft_sessions_) {
    if (s->txn() == txn && !s->finished()) {
      by_txn_[txn] = s.get();
      return s.get();
    }
  }
  return nullptr;
}

// True if some live session is parked in a server-side wait — the one
// stuck state only the timeout sweep can finish (a client whose abort was
// swallowed by a dead-primary window leaves its waiters eventless). Other
// unfinished sessions either have their own pending events or are beyond
// the sweep's reach (e.g. their transaction died in an async failover),
// so looping on them would never terminate.
bool GtmRunner::AnySweepableFtSession() const {
  for (const auto& s : ft_sessions_) {
    if (s->finished() || s->txn() == kInvalidTxnId) continue;
    Result<gtm::TxnState> st = gtm_->StateOf(s->txn());
    if (st.ok() && st.value() == gtm::TxnState::kWaiting) return true;
  }
  return false;
}

void GtmRunner::Pump() {
  if (pumping_) return;
  pumping_ = true;
  while (true) {
    std::vector<gtm::GtmEvent> events = gtm_->TakeEvents();
    if (events.empty()) break;
    for (const gtm::GtmEvent& e : events) {
      mobile::GtmWaiter* w = Resolve(e.txn);
      if (w != nullptr) w->OnGranted();
    }
  }
  pumping_ = false;
}

void GtmRunner::SweepTimeouts() {
  for (TxnId victim : gtm_->AbortExpiredWaits(wait_timeout_)) {
    mobile::GtmWaiter* w = Resolve(victim);
    if (w != nullptr) w->OnSystemAbort(AbortCause::kLockWaitTimeout);
  }
  Pump();
  // Keep sweeping while anything can still expire: an idle event queue is
  // not proof of quiescence, because a waiter parked behind an orphaned
  // transaction (its client gave up while the primary was dead, so the
  // abort never landed) has no event of its own — only this sweep can
  // finish it.
  if (!sim_->Idle() || AnySweepableFtSession()) {
    sim_->After(wait_timeout_ / 2, [this] { SweepTimeouts(); });
  } else {
    sweep_scheduled_ = false;
  }
}

void GtmRunner::AttachWatchdog(gtm::Gtm* gtm, obs::Watchdog* dog,
                               Duration interval) {
  watchdogs_.push_back(WatchdogAttachment{gtm, dog, interval});
  const size_t index = watchdogs_.size() - 1;
  sim_->After(interval, [this, index] { PollWatchdog(index); });
}

void GtmRunner::PollWatchdog(size_t index) {
  const WatchdogAttachment& w = watchdogs_[index];
  w.dog->Observe(w.gtm, sim_->Now());
  // Same liveness rule as the timeout sweep: keep polling while the
  // simulation has pending events or a session only the sweep can finish.
  if (!sim_->Idle() || AnySweepableFtSession()) {
    sim_->After(w.interval, [this, index] { PollWatchdog(index); });
  }
}

const RunStats& GtmRunner::Run() {
  sim_->Run();
  Pump();
  return stats_;
}

// --- TwoPlRunner ----------------------------------------------------------------

TwoPlRunner::TwoPlRunner(txn::TwoPhaseLockingEngine* engine,
                         sim::Simulator* simulator)
    : engine_(engine), sim_(simulator) {}

void TwoPlRunner::AddSession(mobile::TwoPlPlan plan, TimePoint arrival,
                             bool measured) {
  auto session = std::make_unique<mobile::TwoPlSession>(
      engine_, sim_, std::move(plan), /*pump=*/[this] { Pump(); },
      /*done=*/[this, measured](const SessionStats& s) {
        if (measured) stats_.Record(s);
      });
  mobile::TwoPlSession* raw = session.get();
  sessions_.push_back(std::move(session));
  sim_->At(arrival, [this, raw] {
    raw->Start();
    by_txn_[raw->txn()] = raw;
  });
}

void TwoPlRunner::AddMultiSession(mobile::MultiTwoPlPlan plan,
                                  TimePoint arrival, bool measured) {
  auto session = std::make_unique<mobile::MultiTwoPlSession>(
      engine_, sim_, std::move(plan), /*pump=*/[this] { Pump(); },
      /*done=*/[this, measured](const SessionStats& s) {
        if (measured) stats_.Record(s);
      });
  mobile::MultiTwoPlSession* raw = session.get();
  multi_sessions_.push_back(std::move(session));
  sim_->At(arrival, [this, raw] {
    raw->Start();
    by_txn_[raw->txn()] = raw;
  });
}

void TwoPlRunner::Pump() {
  if (pumping_) return;
  pumping_ = true;
  while (true) {
    std::vector<TxnId> runnable = engine_->TakeRunnable();
    if (runnable.empty()) break;
    for (TxnId t : runnable) {
      auto it = by_txn_.find(t);
      if (it != by_txn_.end()) it->second->OnRunnable();
    }
  }
  pumping_ = false;
}

const RunStats& TwoPlRunner::Run() {
  sim_->Run();
  Pump();
  return stats_;
}

}  // namespace preserial::workload
