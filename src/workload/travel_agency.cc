#include "workload/travel_agency.h"

#include <memory>

#include "cluster/router.h"
#include "common/logging.h"
#include "common/strings.h"
#include "semantics/operation.h"

namespace preserial::workload {

namespace {

using storage::CheckConstraint;
using storage::ColumnDef;
using storage::CompareOp;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

Status BuildCounterTable(storage::Database* db, const std::string& table,
                         const std::string& counter_name, size_t rows,
                         int64_t initial) {
  PRESERIAL_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create(
          {
              ColumnDef{"id", ValueType::kInt64, false},
              ColumnDef{counter_name, ValueType::kInt64, false},
          },
          /*primary_key=*/0));
  Result<storage::Table*> created = db->CreateTable(table, std::move(schema));
  if (!created.ok()) return created.status();
  for (size_t i = 0; i < rows; ++i) {
    PRESERIAL_RETURN_IF_ERROR(db->InsertRow(
        table,
        Row({Value::Int(static_cast<int64_t>(i)), Value::Int(initial)})));
  }
  return db->AddConstraint(
      table, CheckConstraint(table + "_nonneg", kAvailabilityColumn,
                             CompareOp::kGe, Value::Int(0)));
}

Status RegisterCounters(gtm::Gtm* gtm, const std::string& table,
                        size_t rows) {
  for (size_t i = 0; i < rows; ++i) {
    PRESERIAL_RETURN_IF_ERROR(gtm->RegisterObject(
        StrFormat("%s/%zu", table.c_str(), i), table,
        Value::Int(static_cast<int64_t>(i)), {kAvailabilityColumn}));
  }
  return Status::Ok();
}

Status BuildCounterTableCluster(cluster::GtmCluster* cluster,
                                const std::string& table,
                                const std::string& counter_name, size_t rows,
                                int64_t initial) {
  PRESERIAL_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create(
          {
              ColumnDef{"id", ValueType::kInt64, false},
              ColumnDef{counter_name, ValueType::kInt64, false},
          },
          /*primary_key=*/0));
  PRESERIAL_RETURN_IF_ERROR(cluster->CreateTableAllShards(table, schema));
  for (size_t s = 0; s < cluster->num_shards(); ++s) {
    PRESERIAL_RETURN_IF_ERROR(cluster->db(s)->AddConstraint(
        table, CheckConstraint(table + "_nonneg", kAvailabilityColumn,
                               CompareOp::kGe, Value::Int(0))));
  }
  for (size_t i = 0; i < rows; ++i) {
    const gtm::ObjectId oid = StrFormat("%s/%zu", table.c_str(), i);
    const Value key = Value::Int(static_cast<int64_t>(i));
    PRESERIAL_RETURN_IF_ERROR(cluster->db(cluster->ShardOf(oid))->InsertRow(
        table, Row({key, Value::Int(initial)})));
    PRESERIAL_RETURN_IF_ERROR(
        cluster->RegisterObject(oid, table, key, {kAvailabilityColumn}));
  }
  return Status::Ok();
}

}  // namespace

Status BuildTravelAgencyCluster(cluster::GtmCluster* cluster,
                                const TravelAgencyConfig& config) {
  PRESERIAL_RETURN_IF_ERROR(BuildCounterTableCluster(
      cluster, kFlightsTable, "free_tickets", config.num_flights,
      config.seats_per_flight));
  PRESERIAL_RETURN_IF_ERROR(BuildCounterTableCluster(
      cluster, kHotelsTable, "free_rooms", config.num_hotels,
      config.rooms_per_hotel));
  PRESERIAL_RETURN_IF_ERROR(BuildCounterTableCluster(
      cluster, kMuseumsTable, "free_tickets", config.num_museums,
      config.tickets_per_museum));
  return BuildCounterTableCluster(cluster, kCarsTable, "free_cars",
                                  config.num_cars, config.cars_per_depot);
}

Status BuildTravelAgencyDatabase(storage::Database* db,
                                 const TravelAgencyConfig& config) {
  PRESERIAL_RETURN_IF_ERROR(BuildCounterTable(
      db, kFlightsTable, "free_tickets", config.num_flights,
      config.seats_per_flight));
  PRESERIAL_RETURN_IF_ERROR(BuildCounterTable(
      db, kHotelsTable, "free_rooms", config.num_hotels,
      config.rooms_per_hotel));
  PRESERIAL_RETURN_IF_ERROR(BuildCounterTable(
      db, kMuseumsTable, "free_tickets", config.num_museums,
      config.tickets_per_museum));
  return BuildCounterTable(db, kCarsTable, "free_cars", config.num_cars,
                           config.cars_per_depot);
}

Status RegisterTravelObjects(gtm::Gtm* gtm,
                             const TravelAgencyConfig& config) {
  PRESERIAL_RETURN_IF_ERROR(
      RegisterCounters(gtm, kFlightsTable, config.num_flights));
  PRESERIAL_RETURN_IF_ERROR(
      RegisterCounters(gtm, kHotelsTable, config.num_hotels));
  PRESERIAL_RETURN_IF_ERROR(
      RegisterCounters(gtm, kMuseumsTable, config.num_museums));
  return RegisterCounters(gtm, kCarsTable, config.num_cars);
}

gtm::ObjectId FlightObject(size_t i) {
  return StrFormat("%s/%zu", kFlightsTable, i);
}
gtm::ObjectId HotelObject(size_t i) {
  return StrFormat("%s/%zu", kHotelsTable, i);
}
gtm::ObjectId MuseumObject(size_t i) {
  return StrFormat("%s/%zu", kMuseumsTable, i);
}
gtm::ObjectId CarObject(size_t i) {
  return StrFormat("%s/%zu", kCarsTable, i);
}

TourPlan SampleTour(Rng& rng, const TravelAgencyConfig& config) {
  TourPlan plan;
  plan.flight = rng.NextBounded(config.num_flights);
  plan.hotel = rng.NextBounded(config.num_hotels);
  plan.museum = rng.NextBounded(config.num_museums);
  plan.car = rng.NextBounded(config.num_cars);
  return plan;
}

namespace {

// Shared tour-plan material across both engines.
struct PlannedTour {
  TourPlan tour;
  mobile::DisconnectPlan disconnect;
  TimePoint arrival = 0;
};

std::vector<PlannedTour> BuildTours(const TourWorkloadSpec& spec, Rng* rng) {
  const mobile::DisconnectModel disconnects =
      mobile::DisconnectModel::WithExponentialDuration(spec.beta,
                                                       spec.disconnect_mean);
  // A tour spans four bookings plus thinks; disconnections land anywhere in
  // that window.
  const Duration span = 4 * spec.think_time + spec.final_think;
  std::vector<PlannedTour> tours;
  tours.reserve(spec.num_tours);
  TimePoint arrival = 0;
  for (size_t i = 0; i < spec.num_tours; ++i) {
    PlannedTour p;
    p.tour = SampleTour(*rng, spec.agency);
    p.disconnect = disconnects.Sample(*rng, span);
    p.arrival = arrival;
    arrival += spec.interarrival;
    tours.push_back(p);
  }
  return tours;
}

// The four stops in a fixed global order (flights < hotels < museums <
// cars): ordered acquisition, so even 2PL cannot deadlock across tours.
std::vector<std::pair<std::string, int64_t>> Stops(const TourPlan& tour) {
  return {
      {kFlightsTable, static_cast<int64_t>(tour.flight)},
      {kHotelsTable, static_cast<int64_t>(tour.hotel)},
      {kMuseumsTable, static_cast<int64_t>(tour.museum)},
      {kCarsTable, static_cast<int64_t>(tour.car)},
  };
}

}  // namespace

TourResult RunGtmTourExperiment(const TourWorkloadSpec& spec,
                                const gtm::GtmOptions& options) {
  Rng rng(spec.seed);
  sim::Simulator simulator;

  // Single-instance GTM or sharded cluster behind a router; the sessions
  // speak GtmEndpoint either way.
  storage::Database db;
  std::unique_ptr<gtm::Gtm> single;
  std::unique_ptr<cluster::GtmCluster> shards;
  std::unique_ptr<storage::MemoryWalStorage> coordinator_wal;
  std::unique_ptr<cluster::ClusterCoordinator> coordinator;
  std::unique_ptr<cluster::GtmRouter> router;
  gtm::GtmEndpoint* endpoint = nullptr;
  if (spec.num_shards > 1) {
    shards = std::make_unique<cluster::GtmCluster>(
        spec.num_shards, simulator.clock(), options);
    PRESERIAL_CHECK(BuildTravelAgencyCluster(shards.get(), spec.agency).ok());
    coordinator_wal = std::make_unique<storage::MemoryWalStorage>();
    coordinator = std::make_unique<cluster::ClusterCoordinator>(
        shards.get(), coordinator_wal.get());
    router =
        std::make_unique<cluster::GtmRouter>(shards.get(), coordinator.get());
    endpoint = router.get();
  } else {
    PRESERIAL_CHECK(db.Open().ok());
    PRESERIAL_CHECK(BuildTravelAgencyDatabase(&db, spec.agency).ok());
    single = std::make_unique<gtm::Gtm>(&db, simulator.clock(), options);
    PRESERIAL_CHECK(RegisterTravelObjects(single.get(), spec.agency).ok());
    endpoint = single.get();
  }
  GtmRunner runner(endpoint, &simulator);

  for (const PlannedTour& p : BuildTours(spec, &rng)) {
    mobile::MultiTxnPlan plan;
    for (const auto& [table, id] : Stops(p.tour)) {
      mobile::TourStep step;
      step.object = StrFormat("%s/%lld", table.c_str(),
                              static_cast<long long>(id));
      step.member = 0;
      step.op = semantics::Operation::Sub(storage::Value::Int(1));
      step.think_time = spec.think_time;
      if (shards != nullptr) {
        step.shard = static_cast<int>(shards->ShardOf(step.object));
      }
      plan.steps.push_back(std::move(step));
    }
    if (!plan.steps.empty()) plan.shard = plan.steps.front().shard;
    plan.final_think = spec.final_think;
    plan.disconnect = p.disconnect;
    runner.AddMultiSession(std::move(plan), p.arrival);
  }

  TourResult result;
  result.run = runner.Run();
  const gtm::GtmCounters c = shards != nullptr
                                 ? shards->AggregateSnapshot().counters
                                 : single->metrics().counters();
  result.waits = c.waits;
  result.shared_grants = c.shared_grants;
  result.awake_aborts = c.awake_aborts;
  result.deadlocks = c.deadlock_refusals;
  if (coordinator != nullptr) {
    result.coordinator_commits = coordinator->counters().commits;
    result.coordinator_aborts = coordinator->counters().aborts;
  }
  return result;
}

TourResult RunTwoPlTourExperiment(const TourWorkloadSpec& spec,
                                  Duration lock_wait_timeout,
                                  Duration idle_timeout) {
  Rng rng(spec.seed);
  storage::Database db;
  PRESERIAL_CHECK(db.Open().ok());
  PRESERIAL_CHECK(BuildTravelAgencyDatabase(&db, spec.agency).ok());

  sim::Simulator simulator;
  txn::TwoPhaseLockingEngine engine(&db, simulator.clock());
  TwoPlRunner runner(&engine, &simulator);

  for (const PlannedTour& p : BuildTours(spec, &rng)) {
    mobile::MultiTwoPlPlan plan;
    for (const auto& stop : Stops(p.tour)) {
      const int64_t stop_id = stop.second;
      mobile::TwoPlTourStep step;
      step.table = stop.first;
      step.key = storage::Value::Int(stop_id);
      step.column = kAvailabilityColumn;
      step.is_subtract = true;
      step.think_time = spec.think_time;
      plan.steps.push_back(std::move(step));
    }
    plan.final_think = spec.final_think;
    plan.disconnect = p.disconnect;
    plan.lock_wait_timeout = lock_wait_timeout;
    plan.idle_timeout = idle_timeout;
    runner.AddMultiSession(std::move(plan), p.arrival);
  }

  TourResult result;
  result.run = runner.Run();
  result.waits = engine.counters().lock_waits;
  result.deadlocks = engine.counters().deadlocks;
  return result;
}

Status BookTour(gtm::GtmService* service, const TourPlan& tour) {
  const TxnId txn = service->Begin();
  const semantics::Operation book = semantics::Operation::Sub(Value::Int(1));
  const gtm::ObjectId stops[] = {
      FlightObject(tour.flight),
      HotelObject(tour.hotel),
      MuseumObject(tour.museum),
      CarObject(tour.car),
  };
  for (const gtm::ObjectId& object : stops) {
    Status s = service->Invoke(txn, object, 0, book);
    if (!s.ok()) {
      (void)service->Abort(txn);
      return s;
    }
  }
  Status s = service->Commit(txn);
  if (!s.ok()) (void)service->Abort(txn);
  return s;
}

}  // namespace preserial::workload
