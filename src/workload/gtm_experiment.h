#ifndef PRESERIAL_WORKLOAD_GTM_EXPERIMENT_H_
#define PRESERIAL_WORKLOAD_GTM_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "check/history.h"
#include "cluster/coordinator.h"
#include "common/clock.h"
#include "gtm/metrics.h"
#include "gtm/trace.h"
#include "gtm/policies.h"
#include "mobile/network.h"
#include "replica/replica.h"
#include "workload/runner.h"

namespace preserial::workload {

// The paper's Sec. VI-B experiment: `num_txns` transactions arrive every
// `interarrival` seconds and each performs one operation on one of
// `num_objects` database objects —
//   with probability alpha       a mobile client books a ticket
//                                (subtraction, X_q = X_q - 1);
//   with probability 1 - alpha   an admin sets the price
//                                (assignment, X_p = price_value).
// Subtraction transactions disconnect with probability beta (assignments
// never do). Quantity and price are declared logically dependent members of
// the same object — the paper's own example of logical dependence — so
// assignments conflict with concurrent subtractions while subtractions
// share among themselves.
struct GtmExperimentSpec {
  size_t num_txns = 1000;
  size_t num_objects = 5;
  double alpha = 0.7;           // P(subtraction).
  double beta = 0.05;           // P(disconnection | subtraction).
  Duration interarrival = 0.5;  // Paper: 0.5 s.
  Duration work_time = 2.0;     // User activity between grant and commit.
  Duration disconnect_mean = 10.0;  // Mean reconnection delay.
  int64_t initial_quantity = 1000000;  // Large => constraint non-binding.
  double price_value = 100.0;
  bool add_quantity_constraint = false;  // CHECK qty >= 0.
  // Mean one-way wireless latency (exponential); paid once before the
  // invocation and once before the commit request. 0 = the paper's
  // latency-free emulation.
  double network_delay_mean = 0.0;
  uint64_t seed = 42;
  // Observability: capacity of every TraceLog the run touches (shard GTMs,
  // router, client lane). 0 keeps tracing off and the hot path
  // allocation-free; > 0 fills the result's `trace_events` with the merged
  // chronological event stream, span-correlated per transaction.
  size_t trace_capacity = 0;
  // Correctness checking: > 0 attaches a check::HistoryRecorder to every
  // serialization domain the run touches and fills the result's history
  // field(s) for offline validation with check::CheckHistory. The value
  // bounds the per-domain event ring — a run recording more events than
  // this yields History::complete == false, which the checker flags.
  size_t history_capacity = 0;
  // Same-timestamp tie-break perturbation for the discrete-event executor
  // (sim::Simulator::SetTieBreaker): called with the tie count, returns
  // which tied event fires first. Unset keeps strict FIFO — the paper's
  // arrival-order semantics. Schedule-exploration harnesses use this to
  // vary interleavings without touching the planned workload.
  std::function<size_t(size_t)> tie_breaker;
};

// SessionStats/RunStats tag values used by the experiment.
inline constexpr int kTagSubtract = 0;  // Mobile booking clients.
inline constexpr int kTagAssign = 1;    // Admin price setters.

// Policies of the 2PL baseline run.
struct TwoPlPolicy {
  Duration lock_wait_timeout = 30.0;
  Duration idle_timeout = 30.0;  // Preventive abort of disconnected holders.
  bool use_update_locks = true;
};

// Aggregate of one run (engine-agnostic).
struct ExperimentResult {
  RunStats run;
  // Engine-side counters of interest.
  int64_t waits = 0;
  int64_t shared_grants = 0;   // GTM only: concurrent compatible admissions.
  int64_t awake_aborts = 0;    // GTM only.
  int64_t deadlocks = 0;
  int64_t starvation_denials = 0;  // GTM only (Sec. VII policy).
  int64_t admission_denials = 0;   // GTM only (Sec. VII policy).
  // Merged server + client trace (empty unless spec.trace_capacity > 0).
  std::vector<gtm::TraceEvent> trace_events;
  // Recorded execution history (empty unless spec.history_capacity > 0).
  check::History history;
  // Metrics snapshot of the (single) GTM, for the exporters.
  gtm::GtmMetrics::Snapshot snapshot;
};

// Runs the experiment against the GTM with the given options.
ExperimentResult RunGtmExperiment(const GtmExperimentSpec& spec,
                                  const gtm::GtmOptions& options = {});

// Transport discipline of the lossy-channel experiment: fault rates of the
// client<->GTM channel plus the client's retry/degrade policy.
struct ChannelSpec {
  double loss = 0.2;       // P(drop) per message copy.
  double duplicate = 0.1;  // P(extra copy) per message.
  double reorder = 0.1;    // P(extra delay) per surviving copy.
  Duration delay_mean = 0.1;       // Mean one-way latency (exponential).
  Duration request_timeout = 1.0;  // Client deadline per attempt.
  int max_attempts = 3;            // Retry budget per request.
  Duration reconnect_delay = 5.0;  // Offline span per degrade episode.
  int max_degrades = 8;
  // true = degrade to Sleep on an exhausted budget (Algorithms 7-10);
  // false = the naive baseline that aborts on loss.
  bool degrade_to_sleep = true;
};

// Aggregate of one lossy-channel run.
struct LossyExperimentResult {
  RunStats run;
  mobile::LossyChannel::Counters channel;
  int64_t duplicates_suppressed = 0;  // Redeliveries the GTM absorbed.
  int64_t awake_aborts = 0;
  // Ground truth read back from the database: total quantity subtracted
  // across all objects. Committed subtract sessions must equal this — any
  // difference is a double-applied or lost commit.
  int64_t quantity_consumed = 0;
  // Merged server + client trace (empty unless spec.trace_capacity > 0).
  std::vector<gtm::TraceEvent> trace_events;
  // Recorded execution history (empty unless spec.history_capacity > 0).
  check::History history;
  gtm::GtmMetrics::Snapshot snapshot;
};

// Runs the Sec. VI-B arrival sequence with every client request crossing a
// LossyChannel: requests carry sequence numbers (the GTM dedups
// redeliveries), silent requests retry with backoff, and exhausted budgets
// degrade to Sleep or abort per `channel.degrade_to_sleep`. Disconnection
// plans are ignored — the channel itself supplies the outages.
LossyExperimentResult RunLossyGtmExperiment(
    const GtmExperimentSpec& spec, const ChannelSpec& channel,
    const gtm::GtmOptions& options = {});

// Sharded-cluster variant of the Sec. VI-B experiment: the same arrival
// sequence runs against `num_shards` independent GTM shards behind a
// GtmRouter, objects placed by the cluster's hash partitioner. With
// probability `cross_shard_ratio` a subtraction transaction books a second
// object owned by a *different* shard, committing through the coordinator's
// two-phase protocol; everything else stays single-shard (one-phase fast
// path). Disconnections sleep/awake cluster-wide.
struct ShardedExperimentSpec {
  GtmExperimentSpec base;
  size_t num_shards = 4;
  double cross_shard_ratio = 0.0;  // P(second step on another shard).
  // Waiting transactions older than this are aborted by the router sweep —
  // the mechanism that also breaks cross-shard deadlock cycles, which the
  // per-shard waits-for graphs cannot see. <= 0 disables the sweep.
  Duration wait_timeout = 30.0;
};

struct ShardedExperimentResult {
  RunStats run;
  // Per-shard and merged GTM counters/histograms.
  std::vector<gtm::GtmMetrics::Snapshot> shard_snapshots;
  gtm::GtmMetrics::Snapshot aggregate;
  cluster::ClusterCoordinator::Counters coordinator;
  int64_t router_committed = 0;
  int64_t router_aborted = 0;
  int64_t cross_shard_planned = 0;  // Transactions planned with 2 shards.
  // Ground truth per shard: quantity drained from that shard's rows.
  std::vector<int64_t> consumed_by_shard;
  int64_t quantity_consumed = 0;  // Sum over shards.
  // Merged shard + router + client trace (empty unless trace_capacity > 0);
  // shard lanes carry their shard id, router/client events shard = -1.
  std::vector<gtm::TraceEvent> trace_events;
  // One recorded history per shard — each shard is its own serialization
  // domain (empty unless base.history_capacity > 0).
  std::vector<check::History> shard_histories;
};

ShardedExperimentResult RunShardedGtmExperiment(
    const ShardedExperimentSpec& spec, const gtm::GtmOptions& options = {});

// Replicated-GTM failover variant: the lossy-channel arrival sequence runs
// against a replica::ReplicatedGtm (one primary + `num_backups` backups,
// log shipping per `ship`). At virtual time `fail_at` the primary is
// killed; `detect_delay` later a FailoverController promotes the best
// backup. Clients notice nothing but silence — the PR-1 retry/backoff
// machinery resends into the void until the promoted primary answers, and
// *Once sequence numbers keep redelivered requests exactly-once across the
// epoch change.
struct FailoverExperimentSpec {
  GtmExperimentSpec base;
  ChannelSpec channel;
  size_t num_backups = 1;
  replica::ShipOptions ship;      // Sync vs async, ship-link fault rates.
  Duration pump_interval = 0.1;   // Async shipping cadence (sync: unused).
  TimePoint fail_at = 0;          // Kill the primary here; <= 0 = never.
  Duration detect_delay = 1.0;    // Failure detection lag before promotion.
  // Waiters older than this are aborted by the runner sweep. Needed here
  // because a client that gives up during the dead-primary window cannot
  // deliver its abort — the orphaned Active transaction would otherwise
  // block its waiters forever. <= 0 disables the sweep.
  Duration wait_timeout = 30.0;
};

struct FailoverExperimentResult {
  RunStats run;
  bool failover_ran = false;
  // Sleeping transactions at the kill: known to the dead primary, and how
  // the promotion report split them (preserved + lost == at_kill).
  int64_t sleeping_at_kill = 0;
  int64_t sleeping_preserved = 0;
  int64_t sleeping_lost = 0;
  uint64_t truncated_records = 0;      // Unreplicated log suffix fenced off.
  int64_t replication_lag_at_kill = 0;
  uint64_t final_epoch = 1;
  Duration failover_latency = 0;       // Kill -> promoted (virtual time).
  // Conservation cross-check (subtract class only): what clients believe
  // they committed vs the promoted primary's word vs the quantity actually
  // drained from its database. Under sync shipping all three agree; async
  // may lose acknowledged commits (the bench's point).
  int64_t committed_subtracts = 0;
  int64_t server_committed_subtracts = 0;
  int64_t quantity_consumed = 0;
  int64_t duplicates_suppressed = 0;
  replica::ShipCounters ship;
  // Merged trace over every replica node plus the client lane (empty
  // unless trace_capacity > 0). Events the promoted backup replayed from
  // the shipped log appear on both nodes' lanes — each node's own view.
  std::vector<gtm::TraceEvent> trace_events;
  // Post-failover primary's recorded history (empty unless
  // base.history_capacity > 0) — the authoritative surviving timeline.
  check::History history;
  gtm::GtmMetrics::Snapshot snapshot;  // Post-run primary.
};

FailoverExperimentResult RunFailoverExperiment(
    const FailoverExperimentSpec& spec, const gtm::GtmOptions& options = {});

// Runs the same arrival sequence against the strict-2PL baseline.
ExperimentResult RunTwoPlExperiment(const GtmExperimentSpec& spec,
                                    const TwoPlPolicy& policy = {});

// Runs the same sequence against the freeze/OCC baseline (Sec. II second
// strategy): no locks, operations applied at commit under constraints.
// `validate_reads` selects the backward-validation flavour.
ExperimentResult RunOccExperiment(const GtmExperimentSpec& spec,
                                  bool validate_reads = false);

}  // namespace preserial::workload

#endif  // PRESERIAL_WORKLOAD_GTM_EXPERIMENT_H_
