#ifndef PRESERIAL_WORKLOAD_TRAVEL_AGENCY_H_
#define PRESERIAL_WORKLOAD_TRAVEL_AGENCY_H_

#include <cstdint>
#include <string>

#include "cluster/cluster.h"
#include "common/random.h"
#include "common/status.h"
#include "gtm/gtm.h"
#include "gtm/gtm_service.h"
#include "storage/database.h"
#include "workload/runner.h"

namespace preserial::workload {

// The paper's Sec. II motivating scenario: a web agency selling
// personalized package tours. Four tables with availability counters under
// `>= 0` CHECK constraints; every counter doubles as a GTM object whose
// bookings (subtractions) are mutually compatible.
struct TravelAgencyConfig {
  size_t num_flights = 10;
  size_t num_hotels = 8;
  size_t num_museums = 5;
  size_t num_cars = 6;
  int64_t seats_per_flight = 50;
  int64_t rooms_per_hotel = 30;
  int64_t tickets_per_museum = 100;
  int64_t cars_per_depot = 20;
};

// Table names and the availability column (column 1 in every table).
inline constexpr char kFlightsTable[] = "flights";
inline constexpr char kHotelsTable[] = "hotels";
inline constexpr char kMuseumsTable[] = "museums";
inline constexpr char kCarsTable[] = "cars";
inline constexpr size_t kAvailabilityColumn = 1;

// Creates schema, rows and CHECK constraints in `db`.
Status BuildTravelAgencyDatabase(storage::Database* db,
                                 const TravelAgencyConfig& config);

// Registers one single-member GTM object per availability counter
// ("flights/3", "hotels/0", ...).
Status RegisterTravelObjects(gtm::Gtm* gtm, const TravelAgencyConfig& config);

// Sharded variant: creates every counter table on every shard, inserts each
// row only into its owning shard's database and registers the counter
// object there. After this a package tour's four stops typically span
// several shards, so its commit exercises the coordinator's 2PC.
Status BuildTravelAgencyCluster(cluster::GtmCluster* cluster,
                                const TravelAgencyConfig& config);

gtm::ObjectId FlightObject(size_t i);
gtm::ObjectId HotelObject(size_t i);
gtm::ObjectId MuseumObject(size_t i);
gtm::ObjectId CarObject(size_t i);

// A user's package-tour selection.
struct TourPlan {
  size_t flight = 0;
  size_t hotel = 0;
  size_t museum = 0;
  size_t car = 0;
};

TourPlan SampleTour(Rng& rng, const TravelAgencyConfig& config);

// Books a whole tour through the blocking service: one long running
// transaction that reserves a seat, a room, a ticket and a car (each a
// compatible subtraction) and commits. Returns the commit status; any
// failure aborts the transaction.
Status BookTour(gtm::GtmService* service, const TourPlan& tour);

// --- simulated tour workload (multi-step long running transactions) --------

// The motivating scenario as a measurable experiment: `num_tours` clients
// arrive at fixed interarrival times, each booking a sampled package tour
// (flight -> hotel -> museum -> car, one compatible subtraction per stop)
// with think time between stops and an optional mid-tour disconnection.
struct TourWorkloadSpec {
  TravelAgencyConfig agency;
  size_t num_tours = 300;
  Duration interarrival = 0.5;
  Duration think_time = 1.0;    // Between bookings.
  Duration final_think = 1.0;   // Before the commit.
  double beta = 0.1;            // P(disconnection) per tour.
  Duration disconnect_mean = 10.0;
  // > 1 runs the same tours against a sharded cluster behind a GtmRouter
  // (objects hash-partitioned, cross-shard tours commit via 2PC).
  size_t num_shards = 1;
  uint64_t seed = 42;
};

struct TourResult {
  RunStats run;
  int64_t waits = 0;
  int64_t shared_grants = 0;  // GTM only.
  int64_t awake_aborts = 0;   // GTM only.
  int64_t deadlocks = 0;
  // Sharded runs only: outcomes of cross-shard (multi-branch) commits.
  int64_t coordinator_commits = 0;
  int64_t coordinator_aborts = 0;
};

TourResult RunGtmTourExperiment(const TourWorkloadSpec& spec,
                                const gtm::GtmOptions& options = {});

// The same arrival/tour sequence over strict 2PL (locks held across think
// times and disconnections; `lock_wait_timeout` / `idle_timeout` as in the
// single-op experiment).
TourResult RunTwoPlTourExperiment(const TourWorkloadSpec& spec,
                                  Duration lock_wait_timeout = 60.0,
                                  Duration idle_timeout = 60.0);

}  // namespace preserial::workload

#endif  // PRESERIAL_WORKLOAD_TRAVEL_AGENCY_H_
