#ifndef PRESERIAL_WORKLOAD_RUNNER_H_
#define PRESERIAL_WORKLOAD_RUNNER_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "gtm/gtm.h"
#include "gtm/trace.h"
#include "mobile/multi_session.h"
#include "mobile/session.h"
#include "obs/watchdog.h"
#include "sim/simulator.h"
#include "storage/database.h"
#include "txn/txn_manager.h"

namespace preserial::workload {

// Aggregated outcome of one simulated experiment run.
struct RunStats {
  int64_t started = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  std::map<mobile::AbortCause, int64_t> aborts_by_cause;
  Histogram latency_committed;  // Arrival -> finish, committed txns.
  Histogram latency_all;
  // Per-class breakdown, keyed by the caller-defined plan tag.
  std::map<int, Histogram> latency_by_tag;  // Committed only.
  std::map<int, int64_t> aborted_by_tag;
  // Aborts keyed by (tag, shard that raised the abort); shard is -1 for
  // single-instance runs, so this degenerates to aborted_by_tag there.
  std::map<std::pair<int, int>, int64_t> aborted_by_tag_shard;
  int64_t disconnected = 0;          // Sessions whose plan disconnected.
  int64_t disconnected_aborted = 0;  // ... and ended aborted.
  // Fault-tolerant transport only (zero otherwise).
  int64_t retries = 0;            // Request attempts beyond the first.
  int64_t degraded_to_sleep = 0;  // Degrade-to-Sleep episodes.

  void Record(const mobile::SessionStats& s);

  // Virtual-time span from the first arrival to the last completion.
  TimePoint first_arrival = 0;
  TimePoint last_finish = 0;
  double Makespan() const { return last_finish - first_arrival; }
  // Committed transactions per virtual second.
  double Throughput() const {
    const double span = Makespan();
    return span > 0 ? static_cast<double>(committed) / span : 0.0;
  }

  double AbortPercent() const {
    return started > 0 ? 100.0 * static_cast<double>(aborted) /
                             static_cast<double>(started)
                       : 0.0;
  }
  // Abort percentage among disconnected (sleeping) transactions — the
  // quantity Fig. 2 / Fig. 3 (right) plot.
  double DisconnectedAbortPercent() const {
    return disconnected > 0 ? 100.0 * static_cast<double>(disconnected_aborted) /
                                  static_cast<double>(disconnected)
                            : 0.0;
  }
  double AvgLatency() const { return latency_committed.mean(); }
};

// Drives a population of GtmSessions over a discrete-event simulation:
// forwards admission events, sweeps wait timeouts, aggregates results. The
// simulator, Database and Gtm are owned by the caller (the Gtm should read
// time from simulator->clock()).
class GtmRunner {
 public:
  // `wait_timeout` <= 0 disables the timeout sweep.
  GtmRunner(gtm::GtmEndpoint* gtm, sim::Simulator* simulator,
            Duration wait_timeout = 0);

  GtmRunner(const GtmRunner&) = delete;
  GtmRunner& operator=(const GtmRunner&) = delete;

  sim::Simulator* simulator() { return sim_; }

  // Schedules a session to start at `arrival` (absolute virtual time).
  // Unmeasured sessions (background load) run but stay out of the stats.
  void AddSession(mobile::TxnPlan plan, TimePoint arrival,
                  bool measured = true);
  // Multi-step variant (package tours and other long running transactions).
  void AddMultiSession(mobile::MultiTxnPlan plan, TimePoint arrival,
                       bool measured = true);
  // Fault-tolerant variant: every request crosses `channel` (which must
  // outlive the runner) with retry/backoff and idempotent resends. Returns
  // the session so callers can inspect per-session stats after Run().
  mobile::FaultTolerantGtmSession* AddFaultTolerantSession(
      mobile::FtPlan plan, TimePoint arrival,
      const mobile::LossyChannel* channel, Rng* rng, bool measured = true);

  // Runs the simulation to completion and returns the aggregate.
  const RunStats& Run();

  const RunStats& stats() const { return stats_; }

  // Client-lane trace: every session added to this runner records its
  // kClient* events (send/retry/degrade/reconnect) here. Off until
  // client_trace()->Enable(capacity).
  gtm::TraceLog* client_trace() { return &client_trace_; }
  const gtm::TraceLog* client_trace() const { return &client_trace_; }

  // Polls `dog` against `gtm` every `interval` virtual seconds for as long
  // as the simulation has work left, auto-capturing Explain snapshots when
  // slow-txn/long-sleep thresholds trip. Both must outlive the runner; call
  // once per watched Gtm (each shard of a cluster can have its own).
  void AttachWatchdog(gtm::Gtm* gtm, obs::Watchdog* dog, Duration interval);

  // Delivers pending admission events to the sessions. The runner does this
  // after every session step; call it yourself whenever you drive the Gtm
  // directly (Begin/Invoke/RequestCommit outside a session) so that grants
  // triggered by your calls reach the waiting sessions.
  void DispatchEvents() { Pump(); }

 private:
  struct WatchdogAttachment {
    gtm::Gtm* gtm = nullptr;
    obs::Watchdog* dog = nullptr;
    Duration interval = 0;
  };

  void Pump();
  void SweepTimeouts();
  void PollWatchdog(size_t index);
  // by_txn_ lookup that tolerates late Begins: a fault-tolerant session
  // that arrives while a replica group's primary is dead only gets its
  // TxnId on a retry, after its arrival-time registration already ran.
  mobile::GtmWaiter* Resolve(TxnId txn);
  bool AnySweepableFtSession() const;

  gtm::GtmEndpoint* gtm_;
  sim::Simulator* sim_;
  Duration wait_timeout_;
  std::vector<std::unique_ptr<mobile::GtmSession>> sessions_;
  std::vector<std::unique_ptr<mobile::MultiGtmSession>> multi_sessions_;
  std::vector<std::unique_ptr<mobile::FaultTolerantGtmSession>> ft_sessions_;
  std::map<TxnId, mobile::GtmWaiter*> by_txn_;
  RunStats stats_;
  gtm::TraceLog client_trace_;
  std::vector<WatchdogAttachment> watchdogs_;
  bool pumping_ = false;
  bool sweep_scheduled_ = false;
};

// The same harness for the strict-2PL baseline engine.
class TwoPlRunner {
 public:
  TwoPlRunner(txn::TwoPhaseLockingEngine* engine, sim::Simulator* simulator);

  TwoPlRunner(const TwoPlRunner&) = delete;
  TwoPlRunner& operator=(const TwoPlRunner&) = delete;

  sim::Simulator* simulator() { return sim_; }

  void AddSession(mobile::TwoPlPlan plan, TimePoint arrival,
                  bool measured = true);
  void AddMultiSession(mobile::MultiTwoPlPlan plan, TimePoint arrival,
                       bool measured = true);
  const RunStats& Run();
  const RunStats& stats() const { return stats_; }

 private:
  void Pump();

  txn::TwoPhaseLockingEngine* engine_;
  sim::Simulator* sim_;
  std::vector<std::unique_ptr<mobile::TwoPlSession>> sessions_;
  std::vector<std::unique_ptr<mobile::MultiTwoPlSession>> multi_sessions_;
  std::map<TxnId, mobile::TwoPlWaiter*> by_txn_;
  RunStats stats_;
  bool pumping_ = false;
};

}  // namespace preserial::workload

#endif  // PRESERIAL_WORKLOAD_RUNNER_H_
