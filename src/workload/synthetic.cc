#include "workload/synthetic.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"
#include "gtm/gtm.h"
#include "model/analytic.h"
#include "storage/database.h"
#include "workload/runner.h"

namespace preserial::workload {

namespace {

using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr char kTable[] = "cells";
constexpr size_t kColId = 0;
constexpr size_t kColVal = 1;

// One row per object; plenty of headroom for add/sub traffic.
std::unique_ptr<storage::Database> BuildDatabase(int64_t num_objects) {
  auto db = std::make_unique<storage::Database>();
  PRESERIAL_CHECK(db->Open().ok());
  Result<Schema> schema = Schema::Create(
      {
          ColumnDef{"id", ValueType::kInt64, false},
          ColumnDef{"val", ValueType::kInt64, false},
      },
      kColId);
  PRESERIAL_CHECK(schema.ok());
  PRESERIAL_CHECK(db->CreateTable(kTable, std::move(schema).value()).ok());
  for (int64_t i = 0; i < num_objects; ++i) {
    PRESERIAL_CHECK(
        db->InsertRow(kTable, Row({Value::Int(i), Value::Int(1000000)}))
            .ok());
  }
  return db;
}

gtm::ObjectId ObjFor(int64_t i) { return StrFormat("cell/%lld",
                                                   static_cast<long long>(i)); }

// Per-transaction shape shared by both engines.
struct MicroPlan {
  bool incompatible = false;  // Assignment-class measured txn.
  bool conflicted = false;    // A background holder overlaps it.
  TimePoint arrival = 0;
};

std::vector<MicroPlan> BuildMicroPlans(const ConflictSpec& spec, Rng* rng) {
  std::vector<MicroPlan> plans(static_cast<size_t>(spec.n));
  // Mark i transactions incompatible and c conflicted, independently and
  // uniformly (the hypergeometric overlap K emerges naturally).
  std::vector<size_t> order = rng->Permutation(plans.size());
  for (int64_t j = 0; j < std::min<int64_t>(spec.i, spec.n); ++j) {
    plans[order[static_cast<size_t>(j)]].incompatible = true;
  }
  order = rng->Permutation(plans.size());
  for (int64_t j = 0; j < std::min<int64_t>(spec.c, spec.n); ++j) {
    plans[order[static_cast<size_t>(j)]].conflicted = true;
  }
  // Space arrivals far apart so measured transactions never interact with
  // each other, only with their dedicated background holder.
  const double gap = 10.0 * spec.tau_e;
  for (size_t j = 0; j < plans.size(); ++j) {
    plans[j].arrival = static_cast<double>(j + 1) * gap;
  }
  return plans;
}

}  // namespace

ConflictResult RunConflictExperiment(const ConflictSpec& spec) {
  Rng rng(spec.seed);
  const std::vector<MicroPlan> plans = BuildMicroPlans(spec, &rng);

  ConflictResult result;
  result.model_2pl = model::TwoPlExecutionTime(spec.n, spec.c, spec.tau_e);
  result.model_gtm =
      model::OurExecutionTime(spec.n, spec.c, spec.i, spec.tau_e);
  for (const MicroPlan& p : plans) {
    if (p.conflicted && p.incompatible) ++result.k_incompatible_conflicts;
  }

  // --- GTM ------------------------------------------------------------------
  {
    std::unique_ptr<storage::Database> db = BuildDatabase(spec.n);
    sim::Simulator simulator;
    gtm::Gtm gtm(db.get(), simulator.clock());
    GtmRunner runner(&gtm, &simulator);
    for (int64_t j = 0; j < spec.n; ++j) {
      PRESERIAL_CHECK(
          gtm.RegisterObject(ObjFor(j), kTable, Value::Int(j), {kColVal})
              .ok());
    }
    for (size_t j = 0; j < plans.size(); ++j) {
      const MicroPlan& p = plans[j];
      if (p.conflicted) {
        // Background holder: add/sub class, begins tau_e/2 before the
        // measured transaction, commits tau_e/2 after it arrives.
        mobile::TxnPlan holder;
        holder.object = ObjFor(static_cast<int64_t>(j));
        holder.member = 0;
        holder.op = semantics::Operation::Add(Value::Int(1));
        holder.work_time = spec.tau_e;
        runner.AddSession(std::move(holder), p.arrival - spec.tau_e / 2,
                          /*measured=*/false);
      }
      mobile::TxnPlan measured;
      measured.object = ObjFor(static_cast<int64_t>(j));
      measured.member = 0;
      measured.op = p.incompatible
                        ? semantics::Operation::Assign(Value::Int(7))
                        : semantics::Operation::Sub(Value::Int(1));
      measured.work_time = spec.tau_e;
      runner.AddSession(std::move(measured), p.arrival);
    }
    const RunStats& stats = runner.Run();
    result.avg_exec_gtm = stats.latency_all.mean();
  }

  // --- strict 2PL -------------------------------------------------------------
  {
    std::unique_ptr<storage::Database> db = BuildDatabase(spec.n);
    sim::Simulator simulator;
    txn::TwoPhaseLockingEngine engine(db.get(), simulator.clock());
    TwoPlRunner runner(&engine, &simulator);
    for (size_t j = 0; j < plans.size(); ++j) {
      const MicroPlan& p = plans[j];
      if (p.conflicted) {
        mobile::TwoPlPlan holder;
        holder.table = kTable;
        holder.key = Value::Int(static_cast<int64_t>(j));
        holder.column = kColVal;
        holder.is_subtract = true;
        holder.work_time = spec.tau_e;
        runner.AddSession(std::move(holder), p.arrival - spec.tau_e / 2,
                          /*measured=*/false);
      }
      mobile::TwoPlPlan measured;
      measured.table = kTable;
      measured.key = Value::Int(static_cast<int64_t>(j));
      measured.column = kColVal;
      measured.is_subtract = !p.incompatible;
      if (p.incompatible) measured.assign_value = Value::Int(7);
      measured.work_time = spec.tau_e;
      runner.AddSession(std::move(measured), p.arrival);
    }
    const RunStats& stats = runner.Run();
    result.avg_exec_2pl = stats.latency_all.mean();
  }
  return result;
}

SleeperResult RunSleeperAbortExperiment(const SleeperSpec& spec) {
  Rng rng(spec.seed);
  std::unique_ptr<storage::Database> db = BuildDatabase(spec.n);
  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  GtmRunner runner(&gtm, &simulator);
  for (int64_t j = 0; j < spec.n; ++j) {
    PRESERIAL_CHECK(
        gtm.RegisterObject(ObjFor(j), kTable, Value::Int(j), {kColVal}).ok());
  }

  const double gap = 10.0 * (spec.tau_e + spec.sleep_duration);
  for (int64_t j = 0; j < spec.n; ++j) {
    const TimePoint arrival = static_cast<double>(j + 1) * gap;
    const bool disconnects = rng.NextBool(spec.p_disconnect);
    const bool conflicted = rng.NextBool(spec.p_conflict);
    const bool incompatible = rng.NextBool(spec.p_incompatible);

    mobile::TxnPlan measured;
    measured.object = ObjFor(j);
    measured.member = 0;
    measured.op = semantics::Operation::Sub(Value::Int(1));
    measured.work_time = spec.tau_e;
    if (disconnects) {
      measured.disconnect.disconnects = true;
      measured.disconnect.offset = spec.tau_e / 2;
      measured.disconnect.duration = spec.sleep_duration;
    }
    runner.AddSession(std::move(measured), arrival);

    if (conflicted) {
      // Background transaction lands right after the sleep would begin and
      // commits well before the awake.
      mobile::TxnPlan background;
      background.object = ObjFor(j);
      background.member = 0;
      background.op = incompatible
                          ? semantics::Operation::Assign(Value::Int(7))
                          : semantics::Operation::Add(Value::Int(1));
      background.work_time = std::min(0.25 * spec.sleep_duration,
                                      0.5 * spec.tau_e);
      runner.AddSession(std::move(background),
                        arrival + spec.tau_e / 2 + 0.01 * spec.sleep_duration,
                        /*measured=*/false);
    }
  }

  const RunStats& stats = runner.Run();
  SleeperResult result;
  result.abort_pct_all = stats.AbortPercent();
  result.abort_pct_disconnected = stats.DisconnectedAbortPercent();
  result.model_abort_pct =
      100.0 * model::SleeperAbortProbability(spec.p_disconnect,
                                             spec.p_conflict,
                                             spec.p_incompatible);
  return result;
}

}  // namespace preserial::workload
