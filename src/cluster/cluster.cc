#include "cluster/cluster.h"

#include <utility>

#include "common/strings.h"
#include "gtm/txn_state.h"

namespace preserial::cluster {

GtmCluster::GtmCluster(size_t num_shards, const Clock* clock,
                       gtm::GtmOptions options,
                       std::unique_ptr<Partitioner> partitioner)
    : map_(num_shards, std::move(partitioner)) {
  dbs_.reserve(num_shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    dbs_.push_back(std::make_unique<storage::Database>());
    shards_.push_back(
        std::make_unique<gtm::Gtm>(dbs_.back().get(), clock, options));
    shards_.back()->trace()->set_default_shard(static_cast<int>(s));
  }
}

GtmCluster::GtmCluster(size_t num_shards, const Clock* clock,
                       GtmClusterOptions options,
                       std::unique_ptr<Partitioner> partitioner)
    : map_(num_shards, std::move(partitioner)) {
  if (options.replicas_per_shard == 0) {
    dbs_.reserve(num_shards);
    shards_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      dbs_.push_back(std::make_unique<storage::Database>());
      shards_.push_back(
          std::make_unique<gtm::Gtm>(dbs_.back().get(), clock, options.gtm));
      shards_.back()->trace()->set_default_shard(static_cast<int>(s));
    }
    return;
  }
  ship_rng_ = std::make_unique<Rng>(options.ship_seed);
  replica::ReplicaOptions ropts;
  ropts.num_backups = options.replicas_per_shard;
  ropts.ship = options.ship;
  ropts.durable_node_logs = options.durable_node_logs;
  groups_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    groups_.push_back(std::make_unique<replica::ReplicatedGtm>(
        clock, options.gtm, ropts, ship_rng_.get()));
    // Stamp every node, not just the primary: a promoted backup keeps
    // recording under the same shard lane.
    replica::ReplicatedGtm* g = groups_.back().get();
    for (size_t n = 0; n < g->num_nodes(); ++n) {
      g->node(n)->gtm()->trace()->set_default_shard(static_cast<int>(s));
    }
  }
}

gtm::GtmEndpoint* GtmCluster::endpoint(ShardId s) {
  if (replicated()) return groups_[s].get();
  return shards_[s].get();
}

gtm::Gtm* GtmCluster::shard(ShardId s) {
  if (replicated()) return groups_[s]->primary_gtm();
  return shards_[s].get();
}

const gtm::Gtm* GtmCluster::shard(ShardId s) const {
  if (replicated()) return groups_[s]->primary_gtm();
  return shards_[s].get();
}

storage::Database* GtmCluster::db(ShardId s) {
  if (replicated()) return groups_[s]->primary_db();
  return dbs_[s].get();
}

Status GtmCluster::RegisterObject(const gtm::ObjectId& id,
                                  const std::string& table,
                                  const storage::Value& key,
                                  std::vector<size_t> member_columns,
                                  semantics::LogicalDependencies deps) {
  const ShardId s = ShardOf(id);
  if (replicated()) {
    return groups_[s]->RegisterObject(id, table, key,
                                      std::move(member_columns),
                                      std::move(deps));
  }
  return shards_[s]->RegisterObject(id, table, key, std::move(member_columns),
                                    std::move(deps));
}

Status GtmCluster::RegisterRowObject(const gtm::ObjectId& id,
                                     const std::string& table,
                                     const storage::Value& key) {
  const ShardId s = ShardOf(id);
  if (!replicated()) return shards_[s]->RegisterRowObject(id, table, key);
  // Same member layout as Gtm::RegisterRowObject, routed through the
  // replicated registration so every node binds identically.
  PRESERIAL_ASSIGN_OR_RETURN(storage::Table * tab,
                             groups_[s]->primary_db()->GetTable(table));
  std::vector<size_t> columns;
  for (size_t c = 0; c < tab->schema().num_columns(); ++c) {
    if (c != tab->schema().primary_key()) columns.push_back(c);
  }
  return groups_[s]->RegisterObject(id, table, key, std::move(columns));
}

Status GtmCluster::CreateTableAllShards(const std::string& table,
                                        const storage::Schema& schema) {
  if (replicated()) {
    for (auto& group : groups_) {
      PRESERIAL_RETURN_IF_ERROR(group->CreateTable(table, schema));
    }
    return Status::Ok();
  }
  for (auto& db : dbs_) {
    Result<storage::Table*> t = db->CreateTable(table, schema);
    if (!t.ok()) return t.status();
  }
  return Status::Ok();
}

Status GtmCluster::InsertRow(ShardId s, const std::string& table,
                             storage::Row row) {
  if (replicated()) return groups_[s]->InsertRow(table, std::move(row));
  return dbs_[s]->InsertRow(table, std::move(row));
}

Result<storage::Value> GtmCluster::PermanentValue(
    const gtm::ObjectId& id, semantics::MemberId member) const {
  return shard(ShardOf(id))->PermanentValue(id, member);
}

obs::ClusterExplain GtmCluster::Explain() const {
  obs::ClusterExplain out;
  for (size_t s = 0; s < num_shards(); ++s) {
    obs::GtmExplain ex = shard(s)->Explain();
    ex.shard = static_cast<int>(s);
    out.now = ex.now;
    out.shards.push_back(std::move(ex));
  }
  return out;
}

gtm::GtmMetrics::Snapshot GtmCluster::AggregateSnapshot() const {
  gtm::GtmMetrics::Snapshot agg;
  for (size_t s = 0; s < num_shards(); ++s) {
    agg.MergeFrom(ShardSnapshot(s));
  }
  return agg;
}

Status GtmCluster::PumpReplication() {
  for (auto& group : groups_) {
    PRESERIAL_RETURN_IF_ERROR(group->Pump());
  }
  return Status::Ok();
}

Status GtmCluster::Prepare(ShardId shard, TxnId branch) {
  if (replicated()) return groups_[shard]->Prepare(branch);
  return shards_[shard]->Prepare(branch);
}

Status GtmCluster::CommitPrepared(ShardId shard, TxnId branch) {
  if (replicated()) return groups_[shard]->CommitPrepared(branch);
  return shards_[shard]->CommitPrepared(branch);
}

Status GtmCluster::AbortBranch(ShardId shard, TxnId branch) {
  if (replicated()) {
    replica::ReplicatedGtm* g = groups_[shard].get();
    if (!g->primary_alive()) {
      return Status::Unavailable("AbortBranch: shard primary is down");
    }
    if (g->primary_gtm()->IsPrepared(branch)) return g->AbortPrepared(branch);
    Result<gtm::TxnState> st = g->StateOf(branch);
    if (!st.ok()) return st.status();
    switch (st.value()) {
      case gtm::TxnState::kAborted:
        return Status::Ok();  // Idempotent.
      case gtm::TxnState::kCommitted:
        return Status::FailedPrecondition(StrFormat(
            "AbortBranch: shard %zu txn %llu already committed", shard,
            static_cast<unsigned long long>(branch)));
      default:
        return g->RequestAbort(branch);
    }
  }
  gtm::Gtm* g = shards_[shard].get();
  if (g->IsPrepared(branch)) return g->AbortPrepared(branch);
  Result<gtm::TxnState> st = g->StateOf(branch);
  if (!st.ok()) return st.status();
  switch (st.value()) {
    case gtm::TxnState::kAborted:
      return Status::Ok();  // Idempotent.
    case gtm::TxnState::kCommitted:
      return Status::FailedPrecondition(StrFormat(
          "AbortBranch: shard %zu txn %llu already committed", shard,
          static_cast<unsigned long long>(branch)));
    default:
      return g->RequestAbort(branch);
  }
}

}  // namespace preserial::cluster
