#include "cluster/cluster.h"

#include <utility>

#include "common/strings.h"
#include "gtm/txn_state.h"

namespace preserial::cluster {

GtmCluster::GtmCluster(size_t num_shards, const Clock* clock,
                       gtm::GtmOptions options,
                       std::unique_ptr<Partitioner> partitioner)
    : map_(num_shards, std::move(partitioner)) {
  dbs_.reserve(num_shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    dbs_.push_back(std::make_unique<storage::Database>());
    shards_.push_back(
        std::make_unique<gtm::Gtm>(dbs_.back().get(), clock, options));
  }
}

Status GtmCluster::RegisterObject(const gtm::ObjectId& id,
                                  const std::string& table,
                                  const storage::Value& key,
                                  std::vector<size_t> member_columns,
                                  semantics::LogicalDependencies deps) {
  return shards_[ShardOf(id)]->RegisterObject(
      id, table, key, std::move(member_columns), std::move(deps));
}

Status GtmCluster::RegisterRowObject(const gtm::ObjectId& id,
                                     const std::string& table,
                                     const storage::Value& key) {
  return shards_[ShardOf(id)]->RegisterRowObject(id, table, key);
}

Status GtmCluster::CreateTableAllShards(const std::string& table,
                                        const storage::Schema& schema) {
  for (auto& db : dbs_) {
    Result<storage::Table*> t = db->CreateTable(table, schema);
    if (!t.ok()) return t.status();
  }
  return Status::Ok();
}

Result<storage::Value> GtmCluster::PermanentValue(
    const gtm::ObjectId& id, semantics::MemberId member) const {
  return shards_[ShardOf(id)]->PermanentValue(id, member);
}

gtm::GtmMetrics::Snapshot GtmCluster::AggregateSnapshot() const {
  gtm::GtmMetrics::Snapshot agg;
  for (const auto& shard : shards_) {
    agg.MergeFrom(shard->metrics().TakeSnapshot());
  }
  return agg;
}

Status GtmCluster::Prepare(ShardId shard, TxnId branch) {
  return shards_[shard]->Prepare(branch);
}

Status GtmCluster::CommitPrepared(ShardId shard, TxnId branch) {
  return shards_[shard]->CommitPrepared(branch);
}

Status GtmCluster::AbortBranch(ShardId shard, TxnId branch) {
  gtm::Gtm* g = shards_[shard].get();
  if (g->IsPrepared(branch)) return g->AbortPrepared(branch);
  Result<gtm::TxnState> st = g->StateOf(branch);
  if (!st.ok()) return st.status();
  switch (st.value()) {
    case gtm::TxnState::kAborted:
      return Status::Ok();  // Idempotent.
    case gtm::TxnState::kCommitted:
      return Status::FailedPrecondition(StrFormat(
          "AbortBranch: shard %zu txn %llu already committed", shard,
          static_cast<unsigned long long>(branch)));
    default:
      return g->RequestAbort(branch);
  }
}

}  // namespace preserial::cluster
