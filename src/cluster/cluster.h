#ifndef PRESERIAL_CLUSTER_CLUSTER_H_
#define PRESERIAL_CLUSTER_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/shard_map.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "gtm/endpoint.h"
#include "gtm/gtm.h"
#include "replica/replica.h"
#include "storage/database.h"

namespace preserial::cluster {

// Cluster-wide knobs. With `replicas_per_shard` > 0 every shard becomes a
// replica group (replica::ReplicatedGtm): one primary plus that many
// backups sharing a log-shipping configuration, so a shard survives its
// primary dying (KillShardPrimary + PromoteShard).
struct GtmClusterOptions {
  gtm::GtmOptions gtm;
  size_t replicas_per_shard = 0;
  replica::ShipOptions ship;
  uint64_t ship_seed = 0x5eedULL;
  bool durable_node_logs = true;
};

// N independent GTM shards, each with its own lock domain, metrics, SST
// executor and LDBS, bound together by a ShardMap. The cluster owns the
// shard Gtms and their databases; ownership of an object follows
// ShardOf(object.id) — its backing row lives only in the owning shard's
// database and all operations on it route to that shard's Gtm.
//
// Externally synchronized, like Gtm: the discrete-event simulator drives
// it directly, ClusterService adds per-shard locking for real threads. The
// ShardBackend implementation forwards to the shard Gtms without locking.
class GtmCluster : public ShardBackend {
 public:
  GtmCluster(size_t num_shards, const Clock* clock,
             gtm::GtmOptions options = {},
             std::unique_ptr<Partitioner> partitioner = {});
  GtmCluster(size_t num_shards, const Clock* clock, GtmClusterOptions options,
             std::unique_ptr<Partitioner> partitioner = {});

  GtmCluster(const GtmCluster&) = delete;
  GtmCluster& operator=(const GtmCluster&) = delete;

  size_t num_shards() const override { return map_.num_shards(); }
  const ShardMap& shard_map() const { return map_; }
  ShardId ShardOf(const gtm::ObjectId& id) const { return map_.ShardOf(id); }

  // Whether shards are replica groups.
  bool replicated() const { return !groups_.empty(); }

  // The shard's client-facing endpoint: the Gtm itself, or the replica
  // group's primary-routing facade. Everything the router and services do
  // goes through this, so a dead primary surfaces as kUnavailable replies
  // rather than a vanished shard.
  gtm::GtmEndpoint* endpoint(ShardId s);

  // The shard's (current primary's) state machine and database.
  gtm::Gtm* shard(ShardId s);
  const gtm::Gtm* shard(ShardId s) const;
  storage::Database* db(ShardId s);
  replica::ReplicatedGtm* group(ShardId s) { return groups_[s].get(); }

  // Shard-routed registration: binds the object on its owning shard. The
  // backing row must already exist in that shard's database (see
  // CreateTableAllShards + InsertRow).
  Status RegisterObject(const gtm::ObjectId& id, const std::string& table,
                        const storage::Value& key,
                        std::vector<size_t> member_columns,
                        semantics::LogicalDependencies deps = {});
  Status RegisterRowObject(const gtm::ObjectId& id, const std::string& table,
                           const storage::Value& key);

  // DDL convenience: creates the same table on every shard's LDBS (rows are
  // then inserted only into their owners).
  Status CreateTableAllShards(const std::string& table,
                              const storage::Schema& schema);

  // Shard-scoped bulk load. On a replicated cluster the insert goes through
  // the shard's op log so every backup sees it; writing to db(s) directly
  // would silently diverge the replicas.
  Status InsertRow(ShardId s, const std::string& table, storage::Row row);

  // X_permanent of a member, read from the owning shard.
  Result<storage::Value> PermanentValue(const gtm::ObjectId& id,
                                        semantics::MemberId member) const;

  // Per-shard and merged metrics (satellite: Snapshot::MergeFrom).
  gtm::GtmMetrics::Snapshot ShardSnapshot(ShardId s) const {
    return shard(s)->metrics().TakeSnapshot();
  }
  gtm::GtmMetrics::Snapshot AggregateSnapshot() const;

  // Cluster-wide introspection: every shard's (current primary's)
  // Gtm::Explain(), shard ids stamped.
  obs::ClusterExplain Explain() const;

  // --- replica-group control (replicated clusters only) --------------------
  void KillShardPrimary(ShardId s) { groups_[s]->KillPrimary(); }
  bool ShardPrimaryAlive(ShardId s) const {
    return groups_[s]->primary_alive();
  }
  Result<replica::PromotionReport> PromoteShard(ShardId s) {
    return groups_[s]->Promote();
  }
  // Async shipping round across all shards.
  Status PumpReplication();

  // --- ShardBackend (unlocked; single-threaded drivers only) ---------------
  Status Prepare(ShardId shard, TxnId branch) override;
  Status CommitPrepared(ShardId shard, TxnId branch) override;
  Status AbortBranch(ShardId shard, TxnId branch) override;

 private:
  ShardMap map_;
  std::vector<std::unique_ptr<storage::Database>> dbs_;
  std::vector<std::unique_ptr<gtm::Gtm>> shards_;
  // Replicated mode: groups_ replaces dbs_/shards_.
  std::unique_ptr<Rng> ship_rng_;
  std::vector<std::unique_ptr<replica::ReplicatedGtm>> groups_;
};

}  // namespace preserial::cluster

#endif  // PRESERIAL_CLUSTER_CLUSTER_H_
