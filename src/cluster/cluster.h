#ifndef PRESERIAL_CLUSTER_CLUSTER_H_
#define PRESERIAL_CLUSTER_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/shard_map.h"
#include "common/clock.h"
#include "common/status.h"
#include "gtm/gtm.h"
#include "storage/database.h"

namespace preserial::cluster {

// N independent GTM shards, each with its own lock domain, metrics, SST
// executor and LDBS, bound together by a ShardMap. The cluster owns the
// shard Gtms and their databases; ownership of an object follows
// ShardOf(object.id) — its backing row lives only in the owning shard's
// database and all operations on it route to that shard's Gtm.
//
// Externally synchronized, like Gtm: the discrete-event simulator drives
// it directly, ClusterService adds per-shard locking for real threads. The
// ShardBackend implementation forwards to the shard Gtms without locking.
class GtmCluster : public ShardBackend {
 public:
  GtmCluster(size_t num_shards, const Clock* clock,
             gtm::GtmOptions options = {},
             std::unique_ptr<Partitioner> partitioner = {});

  GtmCluster(const GtmCluster&) = delete;
  GtmCluster& operator=(const GtmCluster&) = delete;

  size_t num_shards() const override { return map_.num_shards(); }
  const ShardMap& shard_map() const { return map_; }
  ShardId ShardOf(const gtm::ObjectId& id) const { return map_.ShardOf(id); }

  gtm::Gtm* shard(ShardId s) { return shards_[s].get(); }
  const gtm::Gtm* shard(ShardId s) const { return shards_[s].get(); }
  storage::Database* db(ShardId s) { return dbs_[s].get(); }

  // Shard-routed registration: binds the object on its owning shard. The
  // backing row must already exist in that shard's database (see
  // CreateTableAllShards + db(ShardOf(id))->InsertRow).
  Status RegisterObject(const gtm::ObjectId& id, const std::string& table,
                        const storage::Value& key,
                        std::vector<size_t> member_columns,
                        semantics::LogicalDependencies deps = {});
  Status RegisterRowObject(const gtm::ObjectId& id, const std::string& table,
                           const storage::Value& key);

  // DDL convenience: creates the same table on every shard's LDBS (rows are
  // then inserted only into their owners).
  Status CreateTableAllShards(const std::string& table,
                              const storage::Schema& schema);

  // X_permanent of a member, read from the owning shard.
  Result<storage::Value> PermanentValue(const gtm::ObjectId& id,
                                        semantics::MemberId member) const;

  // Per-shard and merged metrics (satellite: Snapshot::MergeFrom).
  gtm::GtmMetrics::Snapshot ShardSnapshot(ShardId s) const {
    return shards_[s]->metrics().TakeSnapshot();
  }
  gtm::GtmMetrics::Snapshot AggregateSnapshot() const;

  // --- ShardBackend (unlocked; single-threaded drivers only) ---------------
  Status Prepare(ShardId shard, TxnId branch) override;
  Status CommitPrepared(ShardId shard, TxnId branch) override;
  Status AbortBranch(ShardId shard, TxnId branch) override;

 private:
  ShardMap map_;
  std::vector<std::unique_ptr<storage::Database>> dbs_;
  std::vector<std::unique_ptr<gtm::Gtm>> shards_;
};

}  // namespace preserial::cluster

#endif  // PRESERIAL_CLUSTER_CLUSTER_H_
