#ifndef PRESERIAL_CLUSTER_SHARD_MAP_H_
#define PRESERIAL_CLUSTER_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gtm/endpoint.h"

namespace preserial::cluster {

// Index of a shard within a GtmCluster.
using ShardId = size_t;

// Maps an ObjectId to its owning shard. Implementations must be pure
// functions of (id, num_shards): every router, coordinator and recovery
// pass must agree on ownership.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual ShardId ShardOf(const gtm::ObjectId& id,
                          size_t num_shards) const = 0;
  virtual const char* name() const = 0;
};

// FNV-1a hash of the full ObjectId, modulo shard count. The default:
// spreads any key population evenly and needs no configuration.
class HashPartitioner : public Partitioner {
 public:
  ShardId ShardOf(const gtm::ObjectId& id, size_t num_shards) const override;
  const char* name() const override { return "hash"; }

  // Exposed for tests and for callers that need stable placement numbers.
  static uint64_t Fnv1a(const gtm::ObjectId& id);
};

// Splits the (sorted) ObjectId space into contiguous lexicographic ranges:
// shard i owns ids with split_points[i-1] <= id < split_points[i]. Useful
// when co-locating related objects ("hotels/..." together) matters more
// than balance. `split_points` must be sorted and have num_shards - 1
// entries; fewer entries leave the tail ranges on the last listed shard.
class RangePartitioner : public Partitioner {
 public:
  explicit RangePartitioner(std::vector<std::string> split_points);

  ShardId ShardOf(const gtm::ObjectId& id, size_t num_shards) const override;
  const char* name() const override { return "range"; }

 private:
  std::vector<std::string> split_points_;
};

// A shard count bound to a partitioner: the single source of ownership
// truth shared by the router, coordinator and workload builders.
class ShardMap {
 public:
  // Defaults to hash partitioning when `partitioner` is null.
  ShardMap(size_t num_shards, std::unique_ptr<Partitioner> partitioner = {});

  size_t num_shards() const { return num_shards_; }
  ShardId ShardOf(const gtm::ObjectId& id) const {
    return partitioner_->ShardOf(id, num_shards_);
  }
  const Partitioner& partitioner() const { return *partitioner_; }

 private:
  size_t num_shards_;
  std::unique_ptr<Partitioner> partitioner_;
};

}  // namespace preserial::cluster

#endif  // PRESERIAL_CLUSTER_SHARD_MAP_H_
