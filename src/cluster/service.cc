#include "cluster/service.h"

namespace preserial::cluster {

ClusterService::ClusterService(GtmCluster* cluster,
                               storage::WalStorage* wal_storage)
    : cluster_(cluster), coordinator_(this, wal_storage) {
  shard_mu_.reserve(cluster_->num_shards());
  for (size_t s = 0; s < cluster_->num_shards(); ++s) {
    shard_mu_.push_back(std::make_unique<std::mutex>());
  }
}

Status ClusterService::Prepare(ShardId shard, TxnId branch) {
  std::lock_guard<std::mutex> lock(*shard_mu_[shard]);
  return cluster_->Prepare(shard, branch);
}

Status ClusterService::CommitPrepared(ShardId shard, TxnId branch) {
  std::lock_guard<std::mutex> lock(*shard_mu_[shard]);
  return cluster_->CommitPrepared(shard, branch);
}

Status ClusterService::AbortBranch(ShardId shard, TxnId branch) {
  std::lock_guard<std::mutex> lock(*shard_mu_[shard]);
  return cluster_->AbortBranch(shard, branch);
}

TxnId ClusterService::Begin(ShardId shard, int priority) {
  std::lock_guard<std::mutex> lock(*shard_mu_[shard]);
  return cluster_->endpoint(shard)->Begin(priority);
}

Status ClusterService::Invoke(ShardId shard, TxnId branch,
                              const gtm::ObjectId& object,
                              semantics::MemberId member,
                              const semantics::Operation& op) {
  std::lock_guard<std::mutex> lock(*shard_mu_[shard]);
  return cluster_->endpoint(shard)->Invoke(branch, object, member, op);
}

Status ClusterService::RequestCommit(ShardId shard, TxnId branch) {
  std::lock_guard<std::mutex> lock(*shard_mu_[shard]);
  return cluster_->endpoint(shard)->RequestCommit(branch);
}

Status ClusterService::RequestAbort(ShardId shard, TxnId branch) {
  std::lock_guard<std::mutex> lock(*shard_mu_[shard]);
  return cluster_->endpoint(shard)->RequestAbort(branch);
}

Status ClusterService::CommitGlobal(
    const std::vector<std::pair<ShardId, TxnId>>& branches) {
  std::lock_guard<std::mutex> lock(coord_mu_);
  const TxnId global = next_global_.fetch_add(1, std::memory_order_relaxed);
  return coordinator_.CommitGlobal(global, branches);
}

}  // namespace preserial::cluster
