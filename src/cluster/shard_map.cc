#include "cluster/shard_map.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace preserial::cluster {

uint64_t HashPartitioner::Fnv1a(const gtm::ObjectId& id) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : id) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

ShardId HashPartitioner::ShardOf(const gtm::ObjectId& id,
                                 size_t num_shards) const {
  PRESERIAL_CHECK(num_shards > 0);
  return static_cast<ShardId>(Fnv1a(id) % num_shards);
}

RangePartitioner::RangePartitioner(std::vector<std::string> split_points)
    : split_points_(std::move(split_points)) {
  PRESERIAL_CHECK(
      std::is_sorted(split_points_.begin(), split_points_.end()))
      << "range split points must be sorted";
}

ShardId RangePartitioner::ShardOf(const gtm::ObjectId& id,
                                  size_t num_shards) const {
  PRESERIAL_CHECK(num_shards > 0);
  const auto it =
      std::upper_bound(split_points_.begin(), split_points_.end(), id);
  const size_t range = static_cast<size_t>(it - split_points_.begin());
  return std::min(range, num_shards - 1);
}

ShardMap::ShardMap(size_t num_shards, std::unique_ptr<Partitioner> partitioner)
    : num_shards_(num_shards), partitioner_(std::move(partitioner)) {
  PRESERIAL_CHECK(num_shards_ > 0) << "a cluster needs at least one shard";
  if (partitioner_ == nullptr) {
    partitioner_ = std::make_unique<HashPartitioner>();
  }
}

}  // namespace preserial::cluster
