#ifndef PRESERIAL_CLUSTER_COORDINATOR_H_
#define PRESERIAL_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/shard_map.h"
#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "gtm/trace.h"
#include "storage/wal.h"

namespace preserial::cluster {

// The coordinator's view of the shard fleet. GtmCluster implements it
// directly for single-threaded (simulated) runs; ClusterService wraps the
// same calls in per-shard locks for genuinely concurrent runs.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;
  virtual size_t num_shards() const = 0;

  // Phase-1 vote: reconcile + validate the branch and park it Committing
  // (Gtm::Prepare). Ok = yes-vote.
  virtual Status Prepare(ShardId shard, TxnId branch) = 0;
  // Phase-2 drive; idempotent on an already-committed branch.
  virtual Status CommitPrepared(ShardId shard, TxnId branch) = 0;
  // Best-effort abort of a branch in any non-committed state (prepared or
  // not); idempotent on an already-aborted branch.
  virtual Status AbortBranch(ShardId shard, TxnId branch) = 0;
};

// Simulated coordinator crash points (the process "dies" after the named
// step; a fresh coordinator over the same WAL must Recover()).
enum class CrashPoint {
  kNone,
  kAfterPrepare,   // All yes-votes in, decision not yet logged (in doubt).
  kAfterDecision,  // Commit decision durable, no shard driven yet.
};

// Runs two-phase commit over per-shard GTM branches and makes the decision
// durable in its own WAL (kClusterPrepare / kClusterCommit / kClusterAbort /
// kClusterEnd records), so an in-doubt shard can always learn the outcome:
//
//   1. log prepare(global, branches)      -- who participates
//   2. Prepare every branch               -- phase 1 (Alg 3 per shard)
//   3. log commit|abort                   -- THE decision point
//   4. CommitPrepared / AbortBranch all   -- phase 2 (Alg 4 per shard)
//   5. log end                            -- lazily forgets the txn
//
// Recovery is presumed-abort: a prepare record without a decision aborts;
// a decision without an end record is re-driven (phase 2 is idempotent).
class ClusterCoordinator {
 public:
  struct Counters {
    int64_t commits = 0;
    int64_t aborts = 0;           // Decided abort (prepare failed).
    int64_t prepare_failures = 0;  // No-votes observed in phase 1.
    int64_t recovered_commits = 0;  // Re-driven forward by Recover().
    int64_t recovered_aborts = 0;   // Presumed-abort resolutions.
    int64_t heuristic_hazards = 0;  // Phase-2 drive failed post-decision.
    int64_t crashes = 0;            // Injected crash points hit.
  };

  struct RecoveryOutcome {
    int64_t committed_forward = 0;  // Decisions re-driven to completion.
    int64_t presumed_aborts = 0;    // Undecided transactions aborted.
  };

  // `wal_storage` must outlive the coordinator; pass the same storage to a
  // successor coordinator to take over after a crash.
  ClusterCoordinator(ShardBackend* shards, storage::WalStorage* wal_storage);

  // Runs 2PC for `global` over `branches` ((shard, branch-txn) pairs, one
  // per participating shard). Returns Ok on a committed decision, Aborted
  // when some branch voted no, Unavailable when an injected crash point
  // fired (the transaction is then in doubt until Recover()).
  Status CommitGlobal(TxnId global,
                      const std::vector<std::pair<ShardId, TxnId>>& branches);

  // Durably decides abort and drives every branch down. For coordinator-
  // initiated aborts of transactions that never reached prepare, callers
  // can abort branches directly; this path exists for symmetry and tests.
  Status AbortGlobal(TxnId global,
                     const std::vector<std::pair<ShardId, TxnId>>& branches);

  // Replays this coordinator's WAL and finishes every unfinished
  // transaction: decided ones are re-driven (idempotent), undecided ones
  // are presumed aborted. Safe to call on a fresh log.
  Result<RecoveryOutcome> Recover();

  // Test hook: the next CommitGlobal "crashes" (returns kUnavailable,
  // leaving shards as they are) at the given point, then re-arms to kNone.
  void set_crash_point(CrashPoint p) { crash_point_ = p; }

  // Opt-in tracing: records kTwoPcPrepare / kTwoPcCommit / kTwoPcAbort into
  // `trace` (typically the router's log) at `clock` time, under whatever
  // ambient span drove the commit. Both pointers must outlive this.
  void EnableTracing(gtm::TraceLog* trace, const Clock* clock) {
    trace_ = trace;
    clock_ = clock;
  }

  const Counters& counters() const { return counters_; }

 private:
  // Logs the abort decision and drives every branch down. `end` also logs
  // the end record.
  Status DriveAbort(TxnId global,
                    const std::vector<std::pair<ShardId, TxnId>>& branches);
  Status DriveCommit(TxnId global,
                     const std::vector<std::pair<ShardId, TxnId>>& branches);
  void Trace(gtm::TraceEventKind kind, TxnId global, std::string detail);

  ShardBackend* shards_;
  storage::WalStorage* wal_storage_;
  storage::WalWriter wal_;
  CrashPoint crash_point_ = CrashPoint::kNone;
  Counters counters_;
  gtm::TraceLog* trace_ = nullptr;
  const Clock* clock_ = nullptr;
};

}  // namespace preserial::cluster

#endif  // PRESERIAL_CLUSTER_COORDINATOR_H_
