#ifndef PRESERIAL_CLUSTER_ROUTER_H_
#define PRESERIAL_CLUSTER_ROUTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/coordinator.h"
#include "common/clock.h"
#include "gtm/endpoint.h"
#include "gtm/trace.h"

namespace preserial::cluster {

// Client-facing endpoint of a sharded cluster. A Begin() opens a *global*
// transaction in the router's own id space; the first operation touching a
// shard lazily opens a *branch* transaction there (same priority), and all
// subsequent operations on objects of that shard ride the same branch.
//
// Commit of a single-branch global is the one-phase fast path (the shard's
// own RequestCommit). A multi-branch global goes through the
// ClusterCoordinator's two-phase commit, with the decision durable in the
// coordinator WAL. Sleep/Awake/Abort are cluster-wide: every branch
// transitions together, and a branch invalidated on one shard (awake
// conflict, wait timeout) takes the whole global transaction down with it
// on all other shards — the cluster equivalent of Algorithms 7-10.
//
// Sessions, runners and workloads speak GtmEndpoint, so they run
// unmodified against one Gtm or against this router. Externally
// synchronized, like Gtm.
class GtmRouter : public gtm::GtmEndpoint {
 public:
  // `clock`, when given, timestamps the router's own trace events (global
  // begin/terminal transitions, branch creation); without it they record
  // at time 0. The trace itself is off until trace()->Enable(capacity).
  GtmRouter(GtmCluster* cluster, ClusterCoordinator* coordinator,
            const Clock* clock = nullptr);

  TxnId Begin(int priority = 0) override;
  Status Invoke(TxnId txn, const gtm::ObjectId& object,
                semantics::MemberId member,
                const semantics::Operation& op) override;
  Result<storage::Value> ReadLocal(TxnId txn, const gtm::ObjectId& object,
                                   semantics::MemberId member) override;
  Status RequestCommit(TxnId txn) override;
  Status RequestAbort(TxnId txn) override;
  Status Sleep(TxnId txn) override;
  Status Awake(TxnId txn) override;

  // Idempotent variants. Invoke forwards the client's seq to the owning
  // shard's reply cache; the fan-out operations (commit/abort/sleep/awake)
  // dedup at the router so a redelivery cannot re-run the fan-out.
  Status InvokeOnce(TxnId txn, uint64_t seq, const gtm::ObjectId& object,
                    semantics::MemberId member,
                    const semantics::Operation& op) override;
  Status CommitOnce(TxnId txn, uint64_t seq) override;
  Status AbortOnce(TxnId txn, uint64_t seq) override;
  Status SleepOnce(TxnId txn, uint64_t seq) override;
  Status AwakeOnce(TxnId txn, uint64_t seq) override;

  Result<gtm::TxnState> StateOf(TxnId txn) const override;
  std::vector<gtm::GtmEvent> TakeEvents() override;
  std::vector<TxnId> AbortExpiredWaits(Duration max_wait) override;

  // --- introspection ---------------------------------------------------------

  // Shards this global transaction has opened branches on.
  size_t BranchCount(TxnId txn) const;
  // Branch id of `txn` on `shard`; NotFound when it has none there.
  Result<TxnId> BranchOf(TxnId txn, ShardId shard) const;
  // Globals that committed / aborted through this router.
  int64_t committed() const { return committed_; }
  int64_t aborted() const { return aborted_; }

  // Router-lane trace: global-transaction lifecycle (kBegin, kBranchBegin,
  // terminal kCommit/kAbort, fan-out kSleep/kAwake), correlated with the
  // shard-lane events through the caller's ambient TraceContext.
  gtm::TraceLog* trace() { return &trace_; }
  const gtm::TraceLog* trace() const { return &trace_; }

 private:
  struct GlobalTxn {
    int priority = 0;
    std::map<ShardId, TxnId> branches;
    // Set once the router decides the outcome; branch states are
    // authoritative until then.
    std::optional<gtm::TxnState> terminal;
    // Router-parked sleep before any branch exists.
    bool sleeping_unbranched = false;
    // Reply cache for the fan-out *Once operations.
    std::map<uint64_t, Status> once_replies;
  };

  GlobalTxn* Get(TxnId txn);
  const GlobalTxn* Get(TxnId txn) const;
  // Branch on `shard`, lazily begun.
  TxnId BranchFor(TxnId txn, GlobalTxn* g, ShardId shard);
  // A branch aborted unilaterally on its shard (timeout sweep, admission
  // failure): take the rest of the global transaction down too.
  void CheckUnilateralAborts(TxnId txn, GlobalTxn* g);
  // Aborts every still-live branch and fixes the terminal state.
  void InvalidateAll(TxnId txn, GlobalTxn* g);
  Status ExecuteOnceRouted(TxnId txn, uint64_t seq,
                           const std::function<Status()>& call);
  TimePoint Now() const { return clock_ == nullptr ? 0 : clock_->Now(); }

  GtmCluster* cluster_;
  ClusterCoordinator* coordinator_;
  const Clock* clock_;
  gtm::TraceLog trace_;
  TxnId next_global_ = 1;
  std::map<TxnId, GlobalTxn> globals_;
  // Per shard: branch txn id -> global txn id (event translation).
  std::vector<std::map<TxnId, TxnId>> branch_to_global_;
  int64_t committed_ = 0;
  int64_t aborted_ = 0;
};

}  // namespace preserial::cluster

#endif  // PRESERIAL_CLUSTER_ROUTER_H_
