#include "cluster/router.h"

#include <functional>
#include <set>

#include "common/strings.h"
#include "obs/trace_context.h"

namespace preserial::cluster {

using gtm::GtmEvent;
using gtm::TxnState;

GtmRouter::GtmRouter(GtmCluster* cluster, ClusterCoordinator* coordinator,
                     const Clock* clock)
    : cluster_(cluster), coordinator_(coordinator), clock_(clock) {
  branch_to_global_.resize(cluster_->num_shards());
}

GtmRouter::GlobalTxn* GtmRouter::Get(TxnId txn) {
  auto it = globals_.find(txn);
  return it == globals_.end() ? nullptr : &it->second;
}

const GtmRouter::GlobalTxn* GtmRouter::Get(TxnId txn) const {
  auto it = globals_.find(txn);
  return it == globals_.end() ? nullptr : &it->second;
}

TxnId GtmRouter::Begin(int priority) {
  const TxnId id = next_global_++;
  GlobalTxn g;
  g.priority = priority;
  globals_.emplace(id, std::move(g));
  trace_.Record(Now(), gtm::TraceEventKind::kBegin, id, "", "global");
  return id;
}

TxnId GtmRouter::BranchFor(TxnId txn, GlobalTxn* g, ShardId shard) {
  auto it = g->branches.find(shard);
  if (it != g->branches.end()) return it->second;
  // The branch gets its own span under the caller's request span, so every
  // shard-side event of this branch hangs off the request that opened it.
  obs::SpanScope span(obs::ChildOf(obs::CurrentContext()));
  const TxnId branch = cluster_->endpoint(shard)->Begin(g->priority);
  g->branches.emplace(shard, branch);
  branch_to_global_[shard].emplace(branch, txn);
  if (trace_.enabled()) {
    trace_.Record(Now(), gtm::TraceEventKind::kBranchBegin, txn, "",
                  StrFormat("shard=%zu branch=%llu", shard,
                            static_cast<unsigned long long>(branch)));
  }
  return branch;
}

void GtmRouter::InvalidateAll(TxnId txn, GlobalTxn* g) {
  for (const auto& [shard, branch] : g->branches) {
    Result<TxnState> st = cluster_->endpoint(shard)->StateOf(branch);
    if (!st.ok()) continue;
    switch (st.value()) {
      case TxnState::kActive:
      case TxnState::kWaiting:
      case TxnState::kSleeping:
        (void)cluster_->endpoint(shard)->RequestAbort(branch);
        break;
      default:
        break;  // Terminal or mid-commit branches are left alone.
    }
  }
  g->terminal = TxnState::kAborted;
  ++aborted_;
  trace_.Record(Now(), gtm::TraceEventKind::kAbort, txn, "", "global");
}

void GtmRouter::CheckUnilateralAborts(TxnId txn, GlobalTxn* g) {
  for (const auto& [shard, branch] : g->branches) {
    Result<TxnState> st = cluster_->endpoint(shard)->StateOf(branch);
    if (st.ok() && st.value() == TxnState::kAborted) {
      // One shard took the branch down on its own (timeout sweep, admission
      // failure): atomicity says the whole global transaction dies.
      InvalidateAll(txn, g);
      return;
    }
  }
}

Status GtmRouter::Invoke(TxnId txn, const gtm::ObjectId& object,
                         semantics::MemberId member,
                         const semantics::Operation& op) {
  GlobalTxn* g = Get(txn);
  if (g == nullptr || g->terminal.has_value()) {
    return Status::FailedPrecondition(StrFormat(
        "Invoke requires an Active transaction (global txn %llu)",
        static_cast<unsigned long long>(txn)));
  }
  CheckUnilateralAborts(txn, g);
  if (g->terminal.has_value() || g->sleeping_unbranched) {
    return Status::FailedPrecondition(StrFormat(
        "Invoke requires an Active transaction (global txn %llu)",
        static_cast<unsigned long long>(txn)));
  }
  const ShardId shard = cluster_->ShardOf(object);
  const TxnId branch = BranchFor(txn, g, shard);
  return cluster_->endpoint(shard)->Invoke(branch, object, member, op);
}

Result<storage::Value> GtmRouter::ReadLocal(TxnId txn,
                                            const gtm::ObjectId& object,
                                            semantics::MemberId member) {
  GlobalTxn* g = Get(txn);
  if (g == nullptr || g->terminal.has_value() || g->sleeping_unbranched) {
    return Status::FailedPrecondition("ReadLocal on unknown/terminal txn");
  }
  const ShardId shard = cluster_->ShardOf(object);
  const TxnId branch = BranchFor(txn, g, shard);
  return cluster_->endpoint(shard)->ReadLocal(branch, object, member);
}

Status GtmRouter::RequestCommit(TxnId txn) {
  GlobalTxn* g = Get(txn);
  if (g == nullptr || g->terminal.has_value()) {
    return Status::FailedPrecondition(
        "RequestCommit requires an Active transaction (constraint iii)");
  }
  CheckUnilateralAborts(txn, g);
  if (g->terminal.has_value() || g->sleeping_unbranched) {
    return Status::FailedPrecondition(
        "RequestCommit requires an Active transaction (constraint iii)");
  }

  if (g->branches.empty()) {
    // Read-nothing transaction: trivially committed.
    g->terminal = TxnState::kCommitted;
    ++committed_;
    trace_.Record(Now(), gtm::TraceEventKind::kCommit, txn, "", "global");
    return Status::Ok();
  }

  if (g->branches.size() == 1) {
    // One-phase fast path: the owning shard's local commit decides alone.
    const auto& [shard, branch] = *g->branches.begin();
    Status s = cluster_->endpoint(shard)->RequestCommit(branch);
    if (s.ok()) {
      g->terminal = TxnState::kCommitted;
      ++committed_;
      trace_.Record(Now(), gtm::TraceEventKind::kCommit, txn, "",
                    "global one-phase");
    } else if (s.code() == StatusCode::kAborted) {
      g->terminal = TxnState::kAborted;
      ++aborted_;
      trace_.Record(Now(), gtm::TraceEventKind::kAbort, txn, "", "global");
    }
    return s;
  }

  std::vector<std::pair<ShardId, TxnId>> branches(g->branches.begin(),
                                                  g->branches.end());
  Status s = coordinator_->CommitGlobal(txn, branches);
  if (s.ok()) {
    g->terminal = TxnState::kCommitted;
    ++committed_;
    trace_.Record(Now(), gtm::TraceEventKind::kCommit, txn, "",
                  "global two-phase");
  } else if (s.code() == StatusCode::kAborted) {
    g->terminal = TxnState::kAborted;
    ++aborted_;
    trace_.Record(Now(), gtm::TraceEventKind::kAbort, txn, "", "global");
  }
  // kUnavailable (injected coordinator crash) leaves the transaction in
  // doubt: no terminal state; a successor coordinator's Recover() settles
  // the branches.
  return s;
}

Status GtmRouter::RequestAbort(TxnId txn) {
  GlobalTxn* g = Get(txn);
  if (g == nullptr || g->terminal.has_value()) {
    return Status::FailedPrecondition(
        "RequestAbort requires a live, non-committing transaction");
  }
  for (const auto& [shard, branch] : g->branches) {
    Result<TxnState> st = cluster_->endpoint(shard)->StateOf(branch);
    if (st.ok() && st.value() == TxnState::kCommitting) {
      return Status::FailedPrecondition(
          "RequestAbort requires a live, non-committing transaction");
    }
  }
  InvalidateAll(txn, g);
  return Status::Ok();
}

Status GtmRouter::Sleep(TxnId txn) {
  GlobalTxn* g = Get(txn);
  if (g == nullptr || g->terminal.has_value()) {
    return Status::FailedPrecondition(
        "Sleep requires an Active or Waiting transaction (Alg 8)");
  }
  if (g->branches.empty()) {
    if (g->sleeping_unbranched) {
      return Status::FailedPrecondition(
          "Sleep requires an Active or Waiting transaction (Alg 8)");
    }
    g->sleeping_unbranched = true;
    return Status::Ok();
  }
  for (const auto& [shard, branch] : g->branches) {
    Status s = cluster_->endpoint(shard)->Sleep(branch);
    if (s.code() == StatusCode::kAborted) {
      // sleep_enabled=false ablation: the shard aborted the branch; the
      // whole global transaction follows.
      InvalidateAll(txn, g);
      return s;
    }
    if (!s.ok()) return s;
  }
  trace_.Record(Now(), gtm::TraceEventKind::kSleep, txn, "", "global fan-out");
  return Status::Ok();
}

Status GtmRouter::Awake(TxnId txn) {
  GlobalTxn* g = Get(txn);
  if (g == nullptr || g->terminal.has_value()) {
    return Status::FailedPrecondition("Awake requires a Sleeping transaction");
  }
  if (g->branches.empty()) {
    if (!g->sleeping_unbranched) {
      return Status::FailedPrecondition(
          "Awake requires a Sleeping transaction");
    }
    g->sleeping_unbranched = false;
    return Status::Ok();
  }
  for (const auto& [shard, branch] : g->branches) {
    Status s = cluster_->endpoint(shard)->Awake(branch);
    if (s.code() == StatusCode::kAborted) {
      // Algorithm 9 staleness on one shard kills the whole transaction:
      // already-awoken sibling branches are invalidated too.
      InvalidateAll(txn, g);
      return s;
    }
    if (!s.ok()) return s;
  }
  trace_.Record(Now(), gtm::TraceEventKind::kAwake, txn, "", "global fan-out");
  return Status::Ok();
}

// --- idempotent endpoints -------------------------------------------------------

Status GtmRouter::ExecuteOnceRouted(TxnId txn, uint64_t seq,
                                    const std::function<Status()>& call) {
  GlobalTxn* g = Get(txn);
  if (g != nullptr) {
    auto it = g->once_replies.find(seq);
    if (it != g->once_replies.end()) return it->second;
  }
  Status s = call();
  if (g != nullptr) g->once_replies.emplace(seq, s);
  return s;
}

Status GtmRouter::InvokeOnce(TxnId txn, uint64_t seq,
                             const gtm::ObjectId& object,
                             semantics::MemberId member,
                             const semantics::Operation& op) {
  GlobalTxn* g = Get(txn);
  if (g == nullptr || g->terminal.has_value()) {
    return Status::FailedPrecondition(StrFormat(
        "Invoke requires an Active transaction (global txn %llu)",
        static_cast<unsigned long long>(txn)));
  }
  CheckUnilateralAborts(txn, g);
  if (g->terminal.has_value()) {
    return Status::Aborted("transaction aborted while waiting");
  }
  if (g->sleeping_unbranched) {
    return Status::FailedPrecondition(StrFormat(
        "Invoke requires an Active transaction (global txn %llu)",
        static_cast<unsigned long long>(txn)));
  }
  // The owning shard's reply cache handles redelivery: client seqs are
  // unique per global transaction, so they are unique per branch too.
  const ShardId shard = cluster_->ShardOf(object);
  const TxnId branch = BranchFor(txn, g, shard);
  return cluster_->endpoint(shard)->InvokeOnce(branch, seq, object, member, op);
}

Status GtmRouter::CommitOnce(TxnId txn, uint64_t seq) {
  return ExecuteOnceRouted(txn, seq,
                           [this, txn] { return RequestCommit(txn); });
}

Status GtmRouter::AbortOnce(TxnId txn, uint64_t seq) {
  return ExecuteOnceRouted(txn, seq, [this, txn] { return RequestAbort(txn); });
}

Status GtmRouter::SleepOnce(TxnId txn, uint64_t seq) {
  return ExecuteOnceRouted(txn, seq, [this, txn] { return Sleep(txn); });
}

Status GtmRouter::AwakeOnce(TxnId txn, uint64_t seq) {
  return ExecuteOnceRouted(txn, seq, [this, txn] { return Awake(txn); });
}

// --- introspection --------------------------------------------------------------

Result<TxnState> GtmRouter::StateOf(TxnId txn) const {
  const GlobalTxn* g = Get(txn);
  if (g == nullptr) {
    return Status::NotFound(StrFormat(
        "unknown global txn %llu", static_cast<unsigned long long>(txn)));
  }
  if (g->terminal.has_value()) return *g->terminal;
  if (g->branches.empty()) {
    return g->sleeping_unbranched ? TxnState::kSleeping : TxnState::kActive;
  }
  bool all_committed = true;
  bool all_sleeping = true;
  bool any_committing = false;
  bool any_waiting = false;
  for (const auto& [shard, branch] : g->branches) {
    Result<TxnState> st = cluster_->endpoint(shard)->StateOf(branch);
    if (!st.ok()) return st.status();
    switch (st.value()) {
      case TxnState::kAborted:
      case TxnState::kAborting:
        return TxnState::kAborted;
      case TxnState::kCommitted:
        all_sleeping = false;
        break;
      case TxnState::kCommitting:
        any_committing = true;
        all_committed = all_sleeping = false;
        break;
      case TxnState::kWaiting:
        any_waiting = true;
        all_committed = all_sleeping = false;
        break;
      case TxnState::kSleeping:
        all_committed = false;
        break;
      case TxnState::kActive:
        all_committed = all_sleeping = false;
        break;
    }
  }
  if (all_committed) return TxnState::kCommitted;
  if (any_committing) return TxnState::kCommitting;
  if (any_waiting) return TxnState::kWaiting;
  if (all_sleeping) return TxnState::kSleeping;
  return TxnState::kActive;
}

std::vector<GtmEvent> GtmRouter::TakeEvents() {
  std::vector<GtmEvent> out;
  for (ShardId s = 0; s < cluster_->num_shards(); ++s) {
    for (GtmEvent e : cluster_->endpoint(s)->TakeEvents()) {
      auto it = branch_to_global_[s].find(e.txn);
      if (it != branch_to_global_[s].end()) e.txn = it->second;
      out.push_back(e);
    }
  }
  return out;
}

std::vector<TxnId> GtmRouter::AbortExpiredWaits(Duration max_wait) {
  std::set<TxnId> victims;
  for (ShardId s = 0; s < cluster_->num_shards(); ++s) {
    for (TxnId branch : cluster_->endpoint(s)->AbortExpiredWaits(max_wait)) {
      auto it = branch_to_global_[s].find(branch);
      if (it == branch_to_global_[s].end()) continue;
      victims.insert(it->second);
    }
  }
  // A timeout on one shard (which also breaks cross-shard wait cycles the
  // per-shard WFGs cannot see) aborts the sibling branches everywhere.
  for (TxnId global : victims) {
    GlobalTxn* g = Get(global);
    if (g != nullptr && !g->terminal.has_value()) InvalidateAll(global, g);
  }
  return {victims.begin(), victims.end()};
}

size_t GtmRouter::BranchCount(TxnId txn) const {
  const GlobalTxn* g = Get(txn);
  return g == nullptr ? 0 : g->branches.size();
}

Result<TxnId> GtmRouter::BranchOf(TxnId txn, ShardId shard) const {
  const GlobalTxn* g = Get(txn);
  if (g != nullptr) {
    auto it = g->branches.find(shard);
    if (it != g->branches.end()) return it->second;
  }
  return Status::NotFound(StrFormat(
      "global txn %llu has no branch on shard %zu",
      static_cast<unsigned long long>(txn), shard));
}

}  // namespace preserial::cluster
