#include "cluster/coordinator.h"

#include <map>

#include "common/logging.h"
#include "common/strings.h"

namespace preserial::cluster {

using storage::WalRecord;
using storage::WalRecordType;

ClusterCoordinator::ClusterCoordinator(ShardBackend* shards,
                                       storage::WalStorage* wal_storage)
    : shards_(shards), wal_storage_(wal_storage), wal_(wal_storage) {}

void ClusterCoordinator::Trace(gtm::TraceEventKind kind, TxnId global,
                               std::string detail) {
  if (trace_ == nullptr) return;
  trace_->Record(clock_ == nullptr ? 0 : clock_->Now(), kind, global, "",
                 std::move(detail));
}

Status ClusterCoordinator::CommitGlobal(
    TxnId global, const std::vector<std::pair<ShardId, TxnId>>& branches) {
  if (branches.empty()) {
    ++counters_.commits;
    return Status::Ok();
  }
  // Participant list first: a recovering coordinator must know which
  // branches to re-drive whatever happens next.
  PRESERIAL_RETURN_IF_ERROR(
      wal_.LogClusterPrepare(global, {branches.begin(), branches.end()}));
  Trace(gtm::TraceEventKind::kTwoPcPrepare, global,
        StrFormat("branches=%zu", branches.size()));

  // Phase 1: collect votes in shard order. The first no-vote decides abort.
  for (size_t i = 0; i < branches.size(); ++i) {
    const auto& [shard, branch] = branches[i];
    Status vote = shards_->Prepare(shard, branch);
    if (!vote.ok()) {
      ++counters_.prepare_failures;
      PRESERIAL_RETURN_IF_ERROR(DriveAbort(global, branches));
      return Status::Aborted(StrFormat(
          "global txn %llu aborted: shard %zu voted no: %s",
          static_cast<unsigned long long>(global), shard,
          vote.message().c_str()));
    }
  }

  if (crash_point_ == CrashPoint::kAfterPrepare) {
    crash_point_ = CrashPoint::kNone;
    ++counters_.crashes;
    return Status::Unavailable(
        "coordinator crashed after prepare (transaction in doubt)");
  }

  // The decision point: once this record is durable the transaction IS
  // committed, whatever happens to this coordinator.
  PRESERIAL_RETURN_IF_ERROR(wal_.LogClusterCommit(global));

  if (crash_point_ == CrashPoint::kAfterDecision) {
    crash_point_ = CrashPoint::kNone;
    ++counters_.crashes;
    return Status::Unavailable(
        "coordinator crashed after commit decision (shards not driven)");
  }

  return DriveCommit(global, branches);
}

Status ClusterCoordinator::AbortGlobal(
    TxnId global, const std::vector<std::pair<ShardId, TxnId>>& branches) {
  return DriveAbort(global, branches);
}

Status ClusterCoordinator::DriveCommit(
    TxnId global, const std::vector<std::pair<ShardId, TxnId>>& branches) {
  ++counters_.commits;
  Trace(gtm::TraceEventKind::kTwoPcCommit, global,
        StrFormat("branches=%zu", branches.size()));
  for (const auto& [shard, branch] : branches) {
    Status s = shards_->CommitPrepared(shard, branch);
    if (!s.ok()) {
      // Post-decision failure: the branch could not follow the durable
      // commit (e.g. its SST stayed down past the retry budget). This is
      // the classic heuristic-mixed hazard; surface it loudly.
      ++counters_.heuristic_hazards;
      PRESERIAL_LOG(Error)
          << "heuristic hazard: global txn " << global << " committed but "
          << "shard " << shard << " branch " << branch
          << " failed phase 2: " << s.ToString();
    }
  }
  PRESERIAL_RETURN_IF_ERROR(wal_.LogClusterEnd(global));
  return Status::Ok();
}

Status ClusterCoordinator::DriveAbort(
    TxnId global, const std::vector<std::pair<ShardId, TxnId>>& branches) {
  PRESERIAL_RETURN_IF_ERROR(wal_.LogClusterAbort(global));
  ++counters_.aborts;
  Trace(gtm::TraceEventKind::kTwoPcAbort, global,
        StrFormat("branches=%zu", branches.size()));
  for (const auto& [shard, branch] : branches) {
    (void)shards_->AbortBranch(shard, branch);
  }
  return wal_.LogClusterEnd(global);
}

Result<ClusterCoordinator::RecoveryOutcome> ClusterCoordinator::Recover() {
  PRESERIAL_ASSIGN_OR_RETURN(std::string log, wal_storage_->ReadAll());
  storage::WalScanResult scan = storage::ScanWal(log);
  PRESERIAL_RETURN_IF_ERROR(scan.status);

  struct InFlight {
    std::vector<std::pair<ShardId, TxnId>> branches;
    bool committed = false;
    bool aborted = false;
    bool ended = false;
  };
  // In log order; a later prepare for the same global id (retry after an
  // aborted attempt) overwrites cleanly because the earlier one ended.
  std::map<TxnId, InFlight> txns;
  for (const WalRecord& r : scan.records) {
    switch (r.type) {
      case WalRecordType::kClusterPrepare: {
        InFlight& t = txns[r.txn_id];
        t = InFlight{};
        t.branches.reserve(r.branches.size());
        for (const auto& [shard, branch] : r.branches) {
          t.branches.emplace_back(static_cast<ShardId>(shard), branch);
        }
        break;
      }
      case WalRecordType::kClusterCommit:
        txns[r.txn_id].committed = true;
        break;
      case WalRecordType::kClusterAbort:
        txns[r.txn_id].aborted = true;
        break;
      case WalRecordType::kClusterEnd:
        txns[r.txn_id].ended = true;
        break;
      default:
        break;  // Foreign records sharing the log are not ours to judge.
    }
  }

  RecoveryOutcome out;
  for (auto& [global, t] : txns) {
    if (t.ended) continue;
    if (t.committed) {
      // Decision was durable: finish the drive (phase 2 is idempotent).
      PRESERIAL_RETURN_IF_ERROR(DriveCommit(global, t.branches));
      --counters_.commits;  // DriveCommit counts; this is a re-drive.
      ++counters_.recovered_commits;
      ++out.committed_forward;
    } else {
      // No durable commit: presumed abort (covers both an explicit abort
      // record whose drive was cut short and a prepare with no decision).
      PRESERIAL_RETURN_IF_ERROR(DriveAbort(global, t.branches));
      --counters_.aborts;
      ++counters_.recovered_aborts;
      ++out.presumed_aborts;
    }
  }
  return out;
}

}  // namespace preserial::cluster
