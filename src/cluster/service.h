#ifndef PRESERIAL_CLUSTER_SERVICE_H_
#define PRESERIAL_CLUSTER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/coordinator.h"

namespace preserial::cluster {

// Thread-safe facade over a GtmCluster: one mutex per shard, so operations
// on different shards genuinely run in parallel while each shard's Gtm
// stays single-threaded inside its lock — the property the shard-scaling
// bench measures. The embedded coordinator is serialized by its own mutex
// and is constructed over *this*, so its phase-1/phase-2 drives take the
// shard locks one at a time (coordinator lock > shard lock; no path ever
// holds two shard locks, so the hierarchy is deadlock-free).
class ClusterService : public ShardBackend {
 public:
  // `wal_storage` backs the coordinator's decision log.
  ClusterService(GtmCluster* cluster, storage::WalStorage* wal_storage);

  size_t num_shards() const override { return cluster_->num_shards(); }

  // --- ShardBackend (each call locks only the named shard) -----------------
  Status Prepare(ShardId shard, TxnId branch) override;
  Status CommitPrepared(ShardId shard, TxnId branch) override;
  Status AbortBranch(ShardId shard, TxnId branch) override;

  // --- worker-thread entry points ------------------------------------------
  ShardId ShardOf(const gtm::ObjectId& id) const {
    return cluster_->ShardOf(id);
  }
  TxnId Begin(ShardId shard, int priority = 0);
  Status Invoke(ShardId shard, TxnId branch, const gtm::ObjectId& object,
                semantics::MemberId member, const semantics::Operation& op);
  // One-phase commit of a single-shard transaction.
  Status RequestCommit(ShardId shard, TxnId branch);
  Status RequestAbort(ShardId shard, TxnId branch);
  // Two-phase commit of a cross-shard transaction (branches as
  // (shard, branch) pairs). Serialized on the coordinator mutex.
  Status CommitGlobal(const std::vector<std::pair<ShardId, TxnId>>& branches);

  const ClusterCoordinator& coordinator() const { return coordinator_; }

 private:
  GtmCluster* cluster_;
  // unique_ptr: std::mutex is neither movable nor copyable.
  std::vector<std::unique_ptr<std::mutex>> shard_mu_;
  std::mutex coord_mu_;
  std::atomic<TxnId> next_global_{1};
  ClusterCoordinator coordinator_;
};

}  // namespace preserial::cluster

#endif  // PRESERIAL_CLUSTER_SERVICE_H_
