#include "storage/recovery.h"

#include <unordered_set>

#include "common/strings.h"

namespace preserial::storage {

Result<RecoveryStats> ReplayWal(const std::vector<WalRecord>& records,
                                Catalog* catalog) {
  RecoveryStats stats;
  stats.records_scanned = records.size();

  // Pass 1: which transactions reached COMMIT?
  std::unordered_set<TxnId> committed;
  std::unordered_set<TxnId> seen;
  for (const WalRecord& r : records) {
    if (r.txn_id != kSystemTxnId) seen.insert(r.txn_id);
    if (r.type == WalRecordType::kCommit) committed.insert(r.txn_id);
  }
  stats.txns_committed = committed.size();
  for (TxnId t : seen) {
    if (committed.count(t) == 0) ++stats.txns_discarded;
  }

  // Pass 2: redo DDL and committed data records in log order.
  for (const WalRecord& r : records) {
    const bool is_system = r.txn_id == kSystemTxnId;
    switch (r.type) {
      case WalRecordType::kBegin:
      case WalRecordType::kCommit:
      case WalRecordType::kAbort:
      case WalRecordType::kCheckpoint:
        break;
      // Cluster-coordinator records live in the coordinator's own log and
      // carry no database effects; ignore them if they ever share a log.
      case WalRecordType::kClusterPrepare:
      case WalRecordType::kClusterCommit:
      case WalRecordType::kClusterAbort:
      case WalRecordType::kClusterEnd:
        break;
      case WalRecordType::kCreateTable: {
        Result<Table*> t = catalog->CreateTable(r.table, r.schema);
        if (!t.ok()) return t.status();
        ++stats.records_applied;
        break;
      }
      case WalRecordType::kAddConstraint: {
        PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog->GetTable(r.table));
        PRESERIAL_RETURN_IF_ERROR(t->AddConstraint(r.constraint));
        ++stats.records_applied;
        break;
      }
      case WalRecordType::kDropTable: {
        PRESERIAL_RETURN_IF_ERROR(catalog->DropTable(r.table));
        ++stats.records_applied;
        break;
      }
      case WalRecordType::kCreateIndex: {
        PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog->GetTable(r.table));
        PRESERIAL_RETURN_IF_ERROR(
            t->CreateIndex(r.index_name, r.index_column));
        ++stats.records_applied;
        break;
      }
      case WalRecordType::kDropIndex: {
        PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog->GetTable(r.table));
        PRESERIAL_RETURN_IF_ERROR(t->DropIndex(r.index_name));
        ++stats.records_applied;
        break;
      }
      case WalRecordType::kInsert: {
        if (!is_system && committed.count(r.txn_id) == 0) break;
        PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog->GetTable(r.table));
        Result<RowId> rid = t->Insert(r.row);
        if (!rid.ok()) return rid.status();
        ++stats.records_applied;
        break;
      }
      case WalRecordType::kUpdate: {
        if (!is_system && committed.count(r.txn_id) == 0) break;
        PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog->GetTable(r.table));
        PRESERIAL_RETURN_IF_ERROR(t->UpdateByKey(r.key, r.row));
        ++stats.records_applied;
        break;
      }
      case WalRecordType::kDelete: {
        if (!is_system && committed.count(r.txn_id) == 0) break;
        PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog->GetTable(r.table));
        PRESERIAL_RETURN_IF_ERROR(t->DeleteByKey(r.key));
        ++stats.records_applied;
        break;
      }
    }
  }
  return stats;
}

}  // namespace preserial::storage
