#include "storage/value.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/strings.h"

namespace preserial::storage {

namespace {

// Little-endian fixed-width encoders for the WAL payloads.
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool GetU64(std::string_view buf, size_t* offset, uint64_t* v) {
  if (buf.size() - *offset < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(buf[*offset + i]))
         << (8 * i);
  }
  *offset += 8;
  *v = r;
  return true;
}

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

// Total order over doubles for index keys: NaNs sort after every number and
// compare equal to each other, so strict-weak-ordering holds even for
// pathological inputs.
int CompareDoublesTotal(double a, double b) {
  const bool na = std::isnan(a);
  const bool nb = std::isnan(b);
  if (na || nb) {
    if (na && nb) return 0;
    return na ? 1 : -1;
  }
  return CompareDoubles(a, b);
}

}  // namespace

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(rep_.index());
}

bool Value::as_bool() const {
  assert(type() == ValueType::kBool);
  return std::get<bool>(rep_);
}

int64_t Value::as_int() const {
  assert(type() == ValueType::kInt64);
  return std::get<int64_t>(rep_);
}

double Value::as_double() const {
  assert(type() == ValueType::kDouble);
  return std::get<double>(rep_);
}

const std::string& Value::as_string() const {
  assert(type() == ValueType::kString);
  return std::get<std::string>(rep_);
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(as_int());
    case ValueType::kDouble:
      return as_double();
    default:
      return Status::InvalidArgument(
          StrFormat("cannot coerce %s to double", ValueTypeName(type())));
  }
}

namespace {

enum class ArithOp { kAdd, kSub, kMul, kDiv };

Result<Value> Arith(ArithOp op, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::InvalidArgument(
        StrFormat("arithmetic requires numeric operands, got %s and %s",
                  ValueTypeName(a.type()), ValueTypeName(b.type())));
  }
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    const int64_t x = a.as_int();
    const int64_t y = b.as_int();
    int64_t r = 0;
    bool overflow = false;
    switch (op) {
      case ArithOp::kAdd:
        overflow = __builtin_add_overflow(x, y, &r);
        break;
      case ArithOp::kSub:
        overflow = __builtin_sub_overflow(x, y, &r);
        break;
      case ArithOp::kMul:
        overflow = __builtin_mul_overflow(x, y, &r);
        break;
      case ArithOp::kDiv:
        if (y == 0) return Status::InvalidArgument("integer division by zero");
        if (x == std::numeric_limits<int64_t>::min() && y == -1) {
          overflow = true;
        } else {
          r = x / y;
        }
        break;
    }
    if (overflow) return Status::InvalidArgument("int64 overflow");
    return Value::Int(r);
  }
  const double x = a.ToDouble().value();
  const double y = b.ToDouble().value();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Double(x + y);
    case ArithOp::kSub:
      return Value::Double(x - y);
    case ArithOp::kMul:
      return Value::Double(x * y);
    case ArithOp::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(x / y);
  }
  return Status::Internal("unreachable arithmetic op");
}

}  // namespace

Result<Value> Value::Add(const Value& a, const Value& b) {
  return Arith(ArithOp::kAdd, a, b);
}
Result<Value> Value::Sub(const Value& a, const Value& b) {
  return Arith(ArithOp::kSub, a, b);
}
Result<Value> Value::Mul(const Value& a, const Value& b) {
  return Arith(ArithOp::kMul, a, b);
}
Result<Value> Value::Div(const Value& a, const Value& b) {
  return Arith(ArithOp::kDiv, a, b);
}

Result<int> Value::Compare(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    return CompareDoubles(a.ToDouble().value(), b.ToDouble().value());
  }
  if (a.type() != b.type()) {
    return Status::InvalidArgument(
        StrFormat("incomparable types %s and %s", ValueTypeName(a.type()),
                  ValueTypeName(b.type())));
  }
  switch (a.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
    case ValueType::kString:
      return a.as_string().compare(b.as_string()) < 0
                 ? -1
                 : (a.as_string() == b.as_string() ? 0 : 1);
    default:
      return Status::Internal("unreachable compare");
  }
}

int Value::CompareTotal(const Value& a, const Value& b) {
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kBool:
        return 1;
      case ValueType::kInt64:
      case ValueType::kDouble:
        return 2;  // Numerics share a rank and compare by magnitude.
      case ValueType::kString:
        return 3;
    }
    return 4;
  };
  const int ra = rank(a.type());
  const int rb = rank(b.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 2) {
    const int c =
        CompareDoublesTotal(a.ToDouble().value(), b.ToDouble().value());
    if (c != 0) return c;
    // Exact numeric tie across types: order int64 before double to keep the
    // relation antisymmetric for distinct representations.
    if (a.type() == b.type()) return 0;
    return a.type() == ValueType::kInt64 ? -1 : 1;
  }
  return Compare(a, b).value();
}

size_t Value::Hash() const {
  // FNV-1a over the encoded form keeps hashing consistent with equality.
  std::string enc;
  EncodeTo(&enc);
  size_t h = 1469598103934665603ULL;
  for (unsigned char c : enc) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

void Value::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      out->push_back(as_bool() ? 1 : 0);
      break;
    case ValueType::kInt64:
      PutU64(out, static_cast<uint64_t>(as_int()));
      break;
    case ValueType::kDouble: {
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(double));
      std::memcpy(&bits, &std::get<double>(rep_), sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case ValueType::kString: {
      const std::string& s = as_string();
      PutU64(out, s.size());
      out->append(s);
      break;
    }
  }
}

Result<Value> Value::DecodeFrom(std::string_view buf, size_t* offset) {
  if (*offset >= buf.size()) {
    return Status::Corruption("value decode: empty buffer");
  }
  const auto tag = static_cast<ValueType>(buf[(*offset)++]);
  switch (tag) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool:
      if (*offset >= buf.size()) {
        return Status::Corruption("value decode: truncated bool");
      }
      return Value::Bool(buf[(*offset)++] != 0);
    case ValueType::kInt64: {
      uint64_t v = 0;
      if (!GetU64(buf, offset, &v)) {
        return Status::Corruption("value decode: truncated int64");
      }
      return Value::Int(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      uint64_t bits = 0;
      if (!GetU64(buf, offset, &bits)) {
        return Status::Corruption("value decode: truncated double");
      }
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Double(d);
    }
    case ValueType::kString: {
      uint64_t n = 0;
      if (!GetU64(buf, offset, &n)) {
        return Status::Corruption("value decode: truncated string length");
      }
      if (buf.size() - *offset < n) {
        return Status::Corruption("value decode: truncated string payload");
      }
      std::string s(buf.substr(*offset, n));
      *offset += n;
      return Value::String(std::move(s));
    }
    default:
      return Status::Corruption(
          StrFormat("value decode: bad type tag %d", static_cast<int>(tag)));
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return as_bool() ? "true" : "false";
    case ValueType::kInt64:
      return StrFormat("%lld", static_cast<long long>(as_int()));
    case ValueType::kDouble:
      return StrFormat("%g", as_double());
    case ValueType::kString:
      return "'" + as_string() + "'";
  }
  return "?";
}

}  // namespace preserial::storage
