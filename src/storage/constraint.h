#ifndef PRESERIAL_STORAGE_CONSTRAINT_H_
#define PRESERIAL_STORAGE_CONSTRAINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/row.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace preserial::storage {

// Comparison operator of a CHECK constraint.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CompareOpName(CompareOp op);

// Declarative single-column CHECK constraint: `column op constant`, e.g.
// FreeTickets >= 0 — the paper's motivating integrity constraint (Sec. II).
// Kept declarative (no callbacks) so constraints survive WAL-based rebuilds
// and can be reasoned about by the GTM's constraint-aware admission policy.
class CheckConstraint {
 public:
  CheckConstraint() = default;
  CheckConstraint(std::string name, size_t column, CompareOp op,
                  Value constant)
      : name_(std::move(name)),
        column_(column),
        op_(op),
        constant_(std::move(constant)) {}

  const std::string& name() const { return name_; }
  size_t column() const { return column_; }
  CompareOp op() const { return op_; }
  const Value& constant() const { return constant_; }

  // kOk, or kConstraintViolation naming the constraint. NULL cell values
  // pass (SQL semantics: a CHECK only fails on definite violation).
  Status Check(const Row& row) const;

  // Evaluates the predicate against a bare value (used by the GTM to test
  // hypothetical reconciled values before admission).
  Result<bool> Holds(const Value& v) const;

  // "name: col#i >= 0".
  std::string ToString(const Schema& schema) const;

 private:
  std::string name_;
  size_t column_ = 0;
  CompareOp op_ = CompareOp::kGe;
  Value constant_;
};

}  // namespace preserial::storage

#endif  // PRESERIAL_STORAGE_CONSTRAINT_H_
