#include "storage/table.h"

#include <utility>

#include "common/strings.h"

namespace preserial::storage {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Status Table::AddConstraint(CheckConstraint constraint) {
  if (constraint.column() >= schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("constraint '%s' references column %zu beyond schema",
                  constraint.name().c_str(), constraint.column()));
  }
  Status violation = Status::Ok();
  Scan([&](const Value&, const Row& row) {
    Status s = constraint.Check(row);
    if (!s.ok()) {
      violation = s;
      return false;
    }
    return true;
  });
  PRESERIAL_RETURN_IF_ERROR(violation);
  constraints_.push_back(std::move(constraint));
  return Status::Ok();
}

std::vector<const CheckConstraint*> Table::ConstraintsOn(size_t column) const {
  std::vector<const CheckConstraint*> out;
  for (const CheckConstraint& c : constraints_) {
    if (c.column() == column) out.push_back(&c);
  }
  return out;
}

Status Table::ValidateAgainstConstraints(const Row& row) const {
  for (const CheckConstraint& c : constraints_) {
    PRESERIAL_RETURN_IF_ERROR(c.Check(row));
  }
  return Status::Ok();
}

RowId Table::AllocateSlot(Row row) {
  if (!free_list_.empty()) {
    const RowId rid = free_list_.back();
    free_list_.pop_back();
    slots_[rid].live = true;
    slots_[rid].row = std::move(row);
    return rid;
  }
  slots_.push_back(Slot{true, std::move(row)});
  return slots_.size() - 1;
}

void Table::FreeSlot(RowId rid) {
  slots_[rid].live = false;
  slots_[rid].row = Row();
  free_list_.push_back(rid);
}

Result<RowId> Table::Insert(Row row) {
  PRESERIAL_RETURN_IF_ERROR(schema_.ValidateRow(row.values()));
  PRESERIAL_RETURN_IF_ERROR(ValidateAgainstConstraints(row));
  const Value key = row.at(schema_.primary_key());
  if (pk_index_.Contains(key)) {
    return Status::AlreadyExists(StrFormat(
        "table '%s': duplicate primary key %s", name_.c_str(),
        key.ToString().c_str()));
  }
  const RowId rid = AllocateSlot(std::move(row));
  Status s = pk_index_.Insert(key, rid);
  if (!s.ok()) {
    FreeSlot(rid);
    return s;
  }
  IndexInsert(rid, slots_[rid].row);
  return rid;
}

Status Table::UpdateByKey(const Value& key, Row row) {
  PRESERIAL_RETURN_IF_ERROR(schema_.ValidateRow(row.values()));
  PRESERIAL_RETURN_IF_ERROR(ValidateAgainstConstraints(row));
  PRESERIAL_ASSIGN_OR_RETURN(RowId rid, pk_index_.Lookup(key));
  const Value& new_key = row.at(schema_.primary_key());
  if (new_key != key) {
    // Primary key changes move the index entry.
    if (pk_index_.Contains(new_key)) {
      return Status::AlreadyExists(StrFormat(
          "table '%s': update collides on primary key %s", name_.c_str(),
          new_key.ToString().c_str()));
    }
    PRESERIAL_RETURN_IF_ERROR(pk_index_.Remove(key));
    PRESERIAL_RETURN_IF_ERROR(pk_index_.Insert(new_key, rid));
  }
  IndexRemove(rid, slots_[rid].row);
  slots_[rid].row = std::move(row);
  IndexInsert(rid, slots_[rid].row);
  return Status::Ok();
}

Status Table::UpdateColumnByKey(const Value& key, size_t column, Value v) {
  if (column >= schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("table '%s': column %zu out of range", name_.c_str(),
                  column));
  }
  PRESERIAL_ASSIGN_OR_RETURN(Row row, GetByKey(key));
  row.Set(column, std::move(v));
  return UpdateByKey(key, std::move(row));
}

Status Table::DeleteByKey(const Value& key) {
  PRESERIAL_ASSIGN_OR_RETURN(RowId rid, pk_index_.Lookup(key));
  PRESERIAL_RETURN_IF_ERROR(pk_index_.Remove(key));
  IndexRemove(rid, slots_[rid].row);
  FreeSlot(rid);
  return Status::Ok();
}

Result<Row> Table::GetByKey(const Value& key) const {
  PRESERIAL_ASSIGN_OR_RETURN(RowId rid, pk_index_.Lookup(key));
  return slots_[rid].row;
}

Result<Value> Table::GetColumnByKey(const Value& key, size_t column) const {
  if (column >= schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("table '%s': column %zu out of range", name_.c_str(),
                  column));
  }
  PRESERIAL_ASSIGN_OR_RETURN(Row row, GetByKey(key));
  return row.at(column);
}

Result<Row> Table::GetByRowId(RowId rid) const {
  if (rid >= slots_.size() || !slots_[rid].live) {
    return Status::NotFound(
        StrFormat("table '%s': no live row %llu", name_.c_str(),
                  static_cast<unsigned long long>(rid)));
  }
  return slots_[rid].row;
}

Result<RowId> Table::RowIdForKey(const Value& key) const {
  return pk_index_.Lookup(key);
}

void Table::Scan(
    const std::function<bool(const Value&, const Row&)>& visit) const {
  ScanRange(std::nullopt, std::nullopt, visit);
}

void Table::ScanRange(
    const std::optional<Value>& lo, const std::optional<Value>& hi,
    const std::function<bool(const Value&, const Row&)>& visit) const {
  pk_index_.Scan(lo, hi, [&](const Value& key, RowId rid) {
    return visit(key, slots_[rid].row);
  });
}

void Table::IndexInsert(RowId rid, const Row& row) {
  for (auto& [column, index] : secondary_) {
    index.entries.emplace(row.at(column), rid);
  }
}

void Table::IndexRemove(RowId rid, const Row& row) {
  for (auto& [column, index] : secondary_) {
    auto [lo, hi] = index.entries.equal_range(row.at(column));
    for (auto it = lo; it != hi; ++it) {
      if (it->second == rid) {
        index.entries.erase(it);
        break;
      }
    }
  }
}

Status Table::CreateIndex(const std::string& name, size_t column) {
  if (column >= schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("table '%s': index column %zu out of range", name_.c_str(),
                  column));
  }
  if (secondary_.count(column) > 0) {
    return Status::AlreadyExists(StrFormat(
        "table '%s': column %zu already indexed", name_.c_str(), column));
  }
  for (const auto& [_, index] : secondary_) {
    if (index.name == name) {
      return Status::AlreadyExists(
          StrFormat("table '%s': index '%s' already exists", name_.c_str(),
                    name.c_str()));
    }
  }
  SecondaryIndex index;
  index.name = name;
  index.column = column;
  // Backfill from live rows.
  pk_index_.ScanAll([&](const Value&, RowId rid) {
    index.entries.emplace(slots_[rid].row.at(column), rid);
    return true;
  });
  secondary_.emplace(column, std::move(index));
  return Status::Ok();
}

Status Table::DropIndex(const std::string& name) {
  for (auto it = secondary_.begin(); it != secondary_.end(); ++it) {
    if (it->second.name == name) {
      secondary_.erase(it);
      return Status::Ok();
    }
  }
  return Status::NotFound(StrFormat("table '%s': no index named '%s'",
                                    name_.c_str(), name.c_str()));
}

bool Table::HasIndexOn(size_t column) const {
  return secondary_.count(column) > 0;
}

std::vector<std::string> Table::IndexNames() const {
  std::vector<std::string> names;
  names.reserve(secondary_.size());
  for (const auto& [_, index] : secondary_) names.push_back(index.name);
  return names;
}

std::vector<std::pair<std::string, size_t>> Table::IndexDefs() const {
  std::vector<std::pair<std::string, size_t>> defs;
  defs.reserve(secondary_.size());
  for (const auto& [column, index] : secondary_) {
    defs.emplace_back(index.name, column);
  }
  return defs;
}

void Table::ScanEqual(
    size_t column, const Value& v,
    const std::function<bool(const Value&, const Row&)>& visit) const {
  auto it = secondary_.find(column);
  if (it != secondary_.end()) {
    auto [lo, hi] = it->second.entries.equal_range(v);
    for (auto e = lo; e != hi; ++e) {
      const Row& row = slots_[e->second].row;
      if (!visit(row.at(schema_.primary_key()), row)) return;
    }
    return;
  }
  // No index: full scan with a filter.
  Scan([&](const Value& key, const Row& row) {
    if (Value::CompareTotal(row.at(column), v) != 0) return true;
    return visit(key, row);
  });
}

Status Table::ScanIndexRange(
    size_t column, const std::optional<Value>& lo,
    const std::optional<Value>& hi,
    const std::function<bool(const Value&, const Row&)>& visit) const {
  auto it = secondary_.find(column);
  if (it == secondary_.end()) {
    return Status::NotFound(StrFormat(
        "table '%s': no index on column %zu", name_.c_str(), column));
  }
  const auto& entries = it->second.entries;
  auto e = lo.has_value() ? entries.lower_bound(*lo) : entries.begin();
  const auto end = hi.has_value() ? entries.upper_bound(*hi) : entries.end();
  for (; e != end; ++e) {
    const Row& row = slots_[e->second].row;
    if (!visit(row.at(schema_.primary_key()), row)) break;
  }
  return Status::Ok();
}

Status Table::CheckInvariants() const {
  PRESERIAL_RETURN_IF_ERROR(pk_index_.CheckInvariants());
  size_t live = 0;
  for (const Slot& s : slots_) {
    if (s.live) ++live;
  }
  if (live != pk_index_.size()) {
    return Status::Internal(StrFormat(
        "table '%s': %zu live slots but %zu index entries", name_.c_str(),
        live, pk_index_.size()));
  }
  Status bad = Status::Ok();
  pk_index_.ScanAll([&](const Value& key, RowId rid) {
    if (rid >= slots_.size() || !slots_[rid].live) {
      bad = Status::Internal("table: index points at dead slot");
      return false;
    }
    if (slots_[rid].row.at(schema_.primary_key()) != key) {
      bad = Status::Internal("table: index key disagrees with row");
      return false;
    }
    return true;
  });
  PRESERIAL_RETURN_IF_ERROR(bad);
  // Every secondary index must mirror the live rows exactly.
  for (const auto& [column, index] : secondary_) {
    if (index.entries.size() != pk_index_.size()) {
      return Status::Internal(StrFormat(
          "table '%s': index '%s' has %zu entries for %zu rows",
          name_.c_str(), index.name.c_str(), index.entries.size(),
          pk_index_.size()));
    }
    for (const auto& [value, rid] : index.entries) {
      if (rid >= slots_.size() || !slots_[rid].live) {
        return Status::Internal(StrFormat(
            "table '%s': index '%s' points at a dead slot", name_.c_str(),
            index.name.c_str()));
      }
      if (Value::CompareTotal(slots_[rid].row.at(column), value) != 0) {
        return Status::Internal(StrFormat(
            "table '%s': index '%s' entry disagrees with row value",
            name_.c_str(), index.name.c_str()));
      }
    }
  }
  return Status::Ok();
}

}  // namespace preserial::storage
