#ifndef PRESERIAL_STORAGE_TABLE_H_
#define PRESERIAL_STORAGE_TABLE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/btree.h"
#include "storage/constraint.h"
#include "storage/row.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace preserial::storage {

// Heap-of-rows table with a B+-tree primary-key index and CHECK
// constraints. Row slots are recycled through a free list; RowIds address
// slots and stay stable for the lifetime of a row version.
//
// Not thread-safe: serialization of access is the job of the layers above
// (strict 2PL baseline or the GTM's SSTs).
class Table {
 public:
  Table(std::string name, Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  // --- constraints ---------------------------------------------------------

  // Registers a CHECK constraint. Existing rows are validated; fails with
  // kConstraintViolation if any live row already violates it.
  Status AddConstraint(CheckConstraint constraint);
  const std::vector<CheckConstraint>& constraints() const {
    return constraints_;
  }
  // All constraints that reference `column`.
  std::vector<const CheckConstraint*> ConstraintsOn(size_t column) const;

  // --- secondary indexes -----------------------------------------------------

  // Builds a non-unique secondary index over `column` (backfilled from
  // existing rows, maintained by every mutation). One index per column.
  Status CreateIndex(const std::string& name, size_t column);
  Status DropIndex(const std::string& name);
  bool HasIndexOn(size_t column) const;
  std::vector<std::string> IndexNames() const;
  // (name, column) pairs, for DDL replication (checkpointing).
  std::vector<std::pair<std::string, size_t>> IndexDefs() const;

  // Visits rows whose `column` value equals `v`, in primary-key order
  // within equal secondary keys. Uses the index if one exists, else falls
  // back to a full scan.
  void ScanEqual(size_t column, const Value& v,
                 const std::function<bool(const Value& key, const Row&)>&
                     visit) const;

  // Visits rows with lo <= row[column] <= hi (unset = unbounded) in
  // secondary-key order; requires an index on `column`.
  Status ScanIndexRange(
      size_t column, const std::optional<Value>& lo,
      const std::optional<Value>& hi,
      const std::function<bool(const Value& key, const Row&)>& visit) const;

  // --- mutations -----------------------------------------------------------

  // Inserts a row (validated against schema, constraints, PK uniqueness).
  // Returns the new RowId.
  Result<RowId> Insert(Row row);

  // Replaces the whole row identified by primary key `key`. The primary key
  // value itself may change; uniqueness is preserved.
  Status UpdateByKey(const Value& key, Row row);

  // Updates one column of the row identified by `key`.
  Status UpdateColumnByKey(const Value& key, size_t column, Value v);

  // Deletes by primary key.
  Status DeleteByKey(const Value& key);

  // --- reads ---------------------------------------------------------------

  // Copy of the row with primary key `key`.
  Result<Row> GetByKey(const Value& key) const;

  // Copy of one cell.
  Result<Value> GetColumnByKey(const Value& key, size_t column) const;

  // Row lookup by slot id (used by the undo machinery).
  Result<Row> GetByRowId(RowId rid) const;
  Result<RowId> RowIdForKey(const Value& key) const;

  // Key-ordered scan over live rows; visitor returns false to stop.
  void Scan(const std::function<bool(const Value& key, const Row&)>& visit)
      const;
  // Key-range scan [lo, hi] (unset = unbounded).
  void ScanRange(
      const std::optional<Value>& lo, const std::optional<Value>& hi,
      const std::function<bool(const Value& key, const Row&)>& visit) const;

  size_t row_count() const { return pk_index_.size(); }

  // Structural self-check for tests: index entries point at live slots that
  // agree on the key; live slot count matches the index.
  Status CheckInvariants() const;

 private:
  struct Slot {
    bool live = false;
    Row row;
  };
  struct SecondaryIndex {
    std::string name;
    size_t column = 0;
    // Secondary value -> set of row slots (non-unique).
    std::multimap<Value, RowId, ValueTotalLess> entries;
  };

  Status ValidateAgainstConstraints(const Row& row) const;
  RowId AllocateSlot(Row row);
  void FreeSlot(RowId rid);
  void IndexInsert(RowId rid, const Row& row);
  void IndexRemove(RowId rid, const Row& row);

  std::string name_;
  Schema schema_;
  std::vector<Slot> slots_;
  std::vector<RowId> free_list_;
  BTree pk_index_;
  std::vector<CheckConstraint> constraints_;
  // column -> index (at most one per column).
  std::map<size_t, SecondaryIndex> secondary_;
};

}  // namespace preserial::storage

#endif  // PRESERIAL_STORAGE_TABLE_H_
