#include "storage/btree.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "common/strings.h"

namespace preserial::storage {

struct BTree::Node {
  bool leaf = true;
  std::vector<Value> keys;
  // Leaf payloads (parallel to keys).
  std::vector<RowId> rids;
  // Internal children; children.size() == keys.size() + 1. keys[i] is the
  // smallest key reachable under children[i + 1].
  std::vector<std::unique_ptr<Node>> children;
  // Leaf chain for ordered scans.
  Node* next = nullptr;
  Node* prev = nullptr;
};

namespace {

bool Less(const Value& a, const Value& b) {
  return Value::CompareTotal(a, b) < 0;
}

bool Equal(const Value& a, const Value& b) {
  return Value::CompareTotal(a, b) == 0;
}

// First index i with keys[i] >= key.
size_t LowerBound(const std::vector<Value>& keys, const Value& key) {
  size_t lo = 0;
  size_t hi = keys.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Less(keys[mid], key)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child slot to descend into for `key`: first separator > key decides.
size_t ChildIndex(const std::vector<Value>& keys, const Value& key) {
  size_t lo = 0;
  size_t hi = keys.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Less(key, keys[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

BTree::BTree(size_t max_keys)
    : max_keys_(std::max<size_t>(max_keys, 3)),
      min_keys_(std::max<size_t>(max_keys, 3) / 2),
      root_(std::make_unique<Node>()) {}

BTree::~BTree() = default;

BTree::Node* BTree::FindLeaf(const Value& key) const {
  Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[ChildIndex(node->keys, key)].get();
  }
  return node;
}

Result<RowId> BTree::Lookup(const Value& key) const {
  const Node* leaf = FindLeaf(key);
  const size_t i = LowerBound(leaf->keys, key);
  if (i < leaf->keys.size() && Equal(leaf->keys[i], key)) {
    return leaf->rids[i];
  }
  return Status::NotFound("key " + key.ToString() + " not in index");
}

Status BTree::Insert(const Value& key, RowId rid) {
  Status status = Status::Ok();
  std::optional<SplitResult> split = InsertRec(root_.get(), key, rid, &status);
  if (!status.ok()) return status;
  if (split.has_value()) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(split->separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  ++size_;
  return Status::Ok();
}

std::optional<BTree::SplitResult> BTree::InsertRec(Node* node,
                                                   const Value& key, RowId rid,
                                                   Status* status) {
  if (node->leaf) {
    const size_t i = LowerBound(node->keys, key);
    if (i < node->keys.size() && Equal(node->keys[i], key)) {
      *status = Status::AlreadyExists("duplicate key " + key.ToString());
      return std::nullopt;
    }
    node->keys.insert(node->keys.begin() + i, key);
    node->rids.insert(node->rids.begin() + i, rid);
    if (node->keys.size() <= max_keys_) return std::nullopt;
    // Split the leaf in half; the right half moves to a new sibling.
    const size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>();
    right->leaf = true;
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->rids.assign(node->rids.begin() + mid, node->rids.end());
    node->keys.resize(mid);
    node->rids.resize(mid);
    // Stitch the leaf chain.
    right->next = node->next;
    right->prev = node;
    if (node->next != nullptr) node->next->prev = right.get();
    node->next = right.get();
    SplitResult result{right->keys.front(), std::move(right)};
    return result;
  }

  const size_t ci = ChildIndex(node->keys, key);
  std::optional<SplitResult> child_split =
      InsertRec(node->children[ci].get(), key, rid, status);
  if (!status->ok() || !child_split.has_value()) return std::nullopt;

  node->keys.insert(node->keys.begin() + ci,
                    std::move(child_split->separator));
  node->children.insert(node->children.begin() + ci + 1,
                        std::move(child_split->right));
  if (node->keys.size() <= max_keys_) return std::nullopt;

  // Split the internal node: the middle separator moves up, not right.
  const size_t mid = node->keys.size() / 2;
  auto right = std::make_unique<Node>();
  right->leaf = false;
  Value up_key = std::move(node->keys[mid]);
  right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                     std::make_move_iterator(node->keys.end()));
  for (size_t i = mid + 1; i < node->children.size(); ++i) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  SplitResult result{std::move(up_key), std::move(right)};
  return result;
}

Status BTree::Update(const Value& key, RowId rid) {
  Node* leaf = FindLeaf(key);
  const size_t i = LowerBound(leaf->keys, key);
  if (i < leaf->keys.size() && Equal(leaf->keys[i], key)) {
    leaf->rids[i] = rid;
    return Status::Ok();
  }
  return Status::NotFound("key " + key.ToString() + " not in index");
}

Status BTree::Remove(const Value& key) {
  Status status = Status::Ok();
  const bool removed = RemoveRec(root_.get(), key, &status);
  if (!status.ok()) return status;
  PRESERIAL_CHECK(removed);
  --size_;
  // Collapse a childless root level.
  if (!root_->leaf && root_->keys.empty()) {
    root_ = std::move(root_->children.front());
  }
  return Status::Ok();
}

bool BTree::RemoveRec(Node* node, const Value& key, Status* status) {
  if (node->leaf) {
    const size_t i = LowerBound(node->keys, key);
    if (i >= node->keys.size() || !Equal(node->keys[i], key)) {
      *status = Status::NotFound("key " + key.ToString() + " not in index");
      return false;
    }
    node->keys.erase(node->keys.begin() + i);
    node->rids.erase(node->rids.begin() + i);
    return true;
  }
  const size_t ci = ChildIndex(node->keys, key);
  const bool removed = RemoveRec(node->children[ci].get(), key, status);
  if (!removed) return false;
  RebalanceChild(node, ci);
  return true;
}

void BTree::RebalanceChild(Node* parent, size_t child_idx) {
  Node* child = parent->children[child_idx].get();
  if (child->keys.size() >= min_keys_) return;

  Node* left = child_idx > 0 ? parent->children[child_idx - 1].get() : nullptr;
  Node* right = child_idx + 1 < parent->children.size()
                    ? parent->children[child_idx + 1].get()
                    : nullptr;

  // Borrow from the left sibling if it has slack.
  if (left != nullptr && left->keys.size() > min_keys_) {
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), std::move(left->keys.back()));
      child->rids.insert(child->rids.begin(), left->rids.back());
      left->keys.pop_back();
      left->rids.pop_back();
      parent->keys[child_idx - 1] = child->keys.front();
    } else {
      // Rotate through the parent separator.
      child->keys.insert(child->keys.begin(),
                         std::move(parent->keys[child_idx - 1]));
      parent->keys[child_idx - 1] = std::move(left->keys.back());
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
    }
    return;
  }

  // Borrow from the right sibling if it has slack.
  if (right != nullptr && right->keys.size() > min_keys_) {
    if (child->leaf) {
      child->keys.push_back(std::move(right->keys.front()));
      child->rids.push_back(right->rids.front());
      right->keys.erase(right->keys.begin());
      right->rids.erase(right->rids.begin());
      parent->keys[child_idx] = right->keys.front();
    } else {
      child->keys.push_back(std::move(parent->keys[child_idx]));
      parent->keys[child_idx] = std::move(right->keys.front());
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
    return;
  }

  // Merge with a sibling. Normalize so we always merge `child_idx` into its
  // left neighbour (or absorb the right neighbour when child is leftmost).
  size_t li = child_idx;
  if (left != nullptr) {
    li = child_idx - 1;
  }
  Node* l = parent->children[li].get();
  Node* r = parent->children[li + 1].get();
  if (l->leaf) {
    l->keys.insert(l->keys.end(), std::make_move_iterator(r->keys.begin()),
                   std::make_move_iterator(r->keys.end()));
    l->rids.insert(l->rids.end(), r->rids.begin(), r->rids.end());
    // Unstitch r from the leaf chain.
    l->next = r->next;
    if (r->next != nullptr) r->next->prev = l;
  } else {
    l->keys.push_back(std::move(parent->keys[li]));
    l->keys.insert(l->keys.end(), std::make_move_iterator(r->keys.begin()),
                   std::make_move_iterator(r->keys.end()));
    for (auto& c : r->children) l->children.push_back(std::move(c));
  }
  parent->keys.erase(parent->keys.begin() + li);
  parent->children.erase(parent->children.begin() + li + 1);
}

void BTree::Scan(const std::optional<Value>& lo, const std::optional<Value>& hi,
                 const std::function<bool(const Value&, RowId)>& visit) const {
  const Node* leaf;
  size_t i = 0;
  if (lo.has_value()) {
    leaf = FindLeaf(*lo);
    i = LowerBound(leaf->keys, *lo);
  } else {
    const Node* node = root_.get();
    while (!node->leaf) node = node->children.front().get();
    leaf = node;
  }
  while (leaf != nullptr) {
    for (; i < leaf->keys.size(); ++i) {
      if (hi.has_value() && Less(*hi, leaf->keys[i])) return;
      if (!visit(leaf->keys[i], leaf->rids[i])) return;
    }
    leaf = leaf->next;
    i = 0;
  }
}

size_t BTree::Height() const {
  size_t h = 0;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

Status BTree::CheckNode(const Node* node, const Value* lo, const Value* hi,
                        size_t depth, size_t leaf_depth) const {
  // Key ordering and bound containment.
  for (size_t i = 0; i < node->keys.size(); ++i) {
    if (i > 0 && !Less(node->keys[i - 1], node->keys[i])) {
      return Status::Internal("btree: keys out of order");
    }
    if (lo != nullptr && Less(node->keys[i], *lo)) {
      return Status::Internal("btree: key below subtree lower bound");
    }
    if (hi != nullptr && !Less(node->keys[i], *hi)) {
      return Status::Internal("btree: key above subtree upper bound");
    }
  }
  if (node->keys.size() > max_keys_) {
    return Status::Internal("btree: node overfull");
  }
  const bool is_root = node == root_.get();
  if (!is_root && node->keys.size() < min_keys_) {
    return Status::Internal("btree: node underfull");
  }
  if (node->leaf) {
    if (depth != leaf_depth) {
      return Status::Internal("btree: leaves at unequal depth");
    }
    if (node->rids.size() != node->keys.size()) {
      return Status::Internal("btree: leaf rid/key arity mismatch");
    }
    return Status::Ok();
  }
  if (node->children.size() != node->keys.size() + 1) {
    return Status::Internal("btree: internal fanout mismatch");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const Value* child_lo = i == 0 ? lo : &node->keys[i - 1];
    const Value* child_hi = i == node->keys.size() ? hi : &node->keys[i];
    PRESERIAL_RETURN_IF_ERROR(CheckNode(node->children[i].get(), child_lo,
                                        child_hi, depth + 1, leaf_depth));
  }
  return Status::Ok();
}

Status BTree::CheckInvariants() const {
  const size_t leaf_depth = Height();
  PRESERIAL_RETURN_IF_ERROR(
      CheckNode(root_.get(), nullptr, nullptr, 0, leaf_depth));
  // Leaf chain must enumerate exactly size() entries in order.
  size_t n = 0;
  const Value* prev = nullptr;
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next) {
    if (leaf->next != nullptr && leaf->next->prev != leaf) {
      return Status::Internal("btree: broken leaf back-links");
    }
    for (const Value& k : leaf->keys) {
      if (prev != nullptr && !Less(*prev, k)) {
        return Status::Internal("btree: leaf chain out of order");
      }
      prev = &k;
      ++n;
    }
  }
  if (n != size_) {
    return Status::Internal(
        StrFormat("btree: size mismatch (%zu chained vs %zu recorded)", n,
                  size_));
  }
  return Status::Ok();
}

}  // namespace preserial::storage
