#include "storage/schema.h"

#include <cassert>

#include "common/strings.h"

namespace preserial::storage {

Schema::Schema(std::vector<ColumnDef> columns, size_t primary_key)
    : columns_(std::move(columns)), primary_key_(primary_key) {
  assert(primary_key_ < columns_.size());
}

Result<Schema> Schema::Create(std::vector<ColumnDef> columns,
                              size_t primary_key) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema needs at least one column");
  }
  if (primary_key >= columns.size()) {
    return Status::InvalidArgument(
        StrFormat("primary key index %zu out of range", primary_key));
  }
  if (columns[primary_key].nullable) {
    return Status::InvalidArgument("primary key column cannot be nullable");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name.empty()) {
      return Status::InvalidArgument(StrFormat("column %zu has no name", i));
    }
    if (columns[i].type == ValueType::kNull) {
      return Status::InvalidArgument(
          StrFormat("column '%s' cannot be declared NULL-typed",
                    columns[i].name.c_str()));
    }
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (columns[i].name == columns[j].name) {
        return Status::InvalidArgument(
            StrFormat("duplicate column name '%s'", columns[i].name.c_str()));
      }
    }
  }
  return Schema(std::move(columns), primary_key);
}

Result<size_t> Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound(StrFormat("no column named '%.*s'",
                                    static_cast<int>(name.size()),
                                    name.data()));
}

Status Schema::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu != schema arity %zu", row.size(),
                  columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument(
            StrFormat("NULL in non-nullable column '%s'", col.name.c_str()));
      }
      continue;
    }
    const bool ok =
        v.type() == col.type ||
        (col.type == ValueType::kDouble && v.type() == ValueType::kInt64);
    if (!ok) {
      return Status::InvalidArgument(StrFormat(
          "column '%s' expects %s, got %s", col.name.c_str(),
          ValueTypeName(col.type), ValueTypeName(v.type())));
    }
  }
  return Status::Ok();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::string c = columns_[i].name;
    c += " ";
    c += ValueTypeName(columns_[i].type);
    if (columns_[i].nullable) c += " NULL";
    if (i == primary_key_) c += " PRIMARY KEY";
    parts.push_back(std::move(c));
  }
  return Join(parts, ", ");
}

}  // namespace preserial::storage
