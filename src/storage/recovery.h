#ifndef PRESERIAL_STORAGE_RECOVERY_H_
#define PRESERIAL_STORAGE_RECOVERY_H_

#include <vector>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/wal.h"

namespace preserial::storage {

// Redo-only recovery: rebuilds a catalog from a write-ahead log image.
//
// The storage engine keeps all data in memory and logs full after-images,
// so recovery is a clean two-pass redo: pass 1 collects the set of
// committed transactions, pass 2 re-applies their records in log order
// (which, under strict 2PL / serialized SSTs, is a serialization order).
// Records of unfinished or aborted transactions are skipped. DDL executes
// under the system transaction id and is always applied.
struct RecoveryStats {
  size_t records_scanned = 0;
  size_t records_applied = 0;
  size_t txns_committed = 0;
  size_t txns_discarded = 0;  // In-flight or aborted at crash time.
};

Result<RecoveryStats> ReplayWal(const std::vector<WalRecord>& records,
                                Catalog* catalog);

}  // namespace preserial::storage

#endif  // PRESERIAL_STORAGE_RECOVERY_H_
