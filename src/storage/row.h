#ifndef PRESERIAL_STORAGE_ROW_H_
#define PRESERIAL_STORAGE_ROW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace preserial::storage {

// Stable identifier of a row slot within a table (index into the table's
// slot vector; slots are reused via a free list, so RowIds are only unique
// among live rows).
using RowId = uint64_t;
constexpr RowId kInvalidRowId = ~0ULL;

// A tuple of cell values. Thin wrapper over std::vector<Value> that adds
// serialization and rendering; schema checks live in Schema::ValidateRow.
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Set(size_t i, Value v) { values_[i] = std::move(v); }

  friend bool operator==(const Row& a, const Row& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Row& a, const Row& b) { return !(a == b); }

  void EncodeTo(std::string* out) const;
  static Result<Row> DecodeFrom(std::string_view buf, size_t* offset);

  // "(v1, v2, ...)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace preserial::storage

#endif  // PRESERIAL_STORAGE_ROW_H_
