#include "storage/database.h"

#include <utility>

#include "common/logging.h"

namespace preserial::storage {

Database::Database() : Database(std::make_unique<MemoryWalStorage>()) {}

Database::Database(std::unique_ptr<WalStorage> wal_storage)
    : wal_storage_(std::move(wal_storage)), wal_writer_(wal_storage_.get()) {}

Result<RecoveryStats> Database::Open() {
  PRESERIAL_CHECK(!opened_) << "Database::Open called twice";
  opened_ = true;
  PRESERIAL_ASSIGN_OR_RETURN(std::string log, wal_storage_->ReadAll());
  WalScanResult scan = ScanWal(log);
  if (!scan.status.ok()) return scan.status;
  PRESERIAL_ASSIGN_OR_RETURN(RecoveryStats stats,
                             ReplayWal(scan.records, &catalog_));
  // Resume txn ids above anything seen in the log.
  for (const WalRecord& r : scan.records) {
    if (r.txn_id >= next_txn_id_) next_txn_id_ = r.txn_id + 1;
  }
  // Drop any torn tail so future appends start at a clean frame boundary.
  if (scan.bytes_consumed < log.size()) {
    PRESERIAL_RETURN_IF_ERROR(
        wal_storage_->Reset(std::string_view(log).substr(0, scan.bytes_consumed)));
  }
  return stats;
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog_.CreateTable(name, schema));
  Status s = wal_writer_.LogCreateTable(kSystemTxnId, name, t->schema());
  if (!s.ok()) {
    (void)catalog_.DropTable(name);
    return s;
  }
  return t;
}

Status Database::AddConstraint(const std::string& table,
                               CheckConstraint constraint) {
  PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  PRESERIAL_RETURN_IF_ERROR(t->AddConstraint(constraint));
  return wal_writer_.LogAddConstraint(kSystemTxnId, table, constraint);
}

Status Database::DropTable(const std::string& name) {
  PRESERIAL_RETURN_IF_ERROR(catalog_.DropTable(name));
  return wal_writer_.LogDropTable(kSystemTxnId, name);
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& index, size_t column) {
  PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  PRESERIAL_RETURN_IF_ERROR(t->CreateIndex(index, column));
  return wal_writer_.LogCreateIndex(kSystemTxnId, table, index, column);
}

Status Database::DropIndex(const std::string& table,
                           const std::string& index) {
  PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  PRESERIAL_RETURN_IF_ERROR(t->DropIndex(index));
  return wal_writer_.LogDropIndex(kSystemTxnId, table, index);
}

Status Database::InsertRow(const std::string& table, Row row) {
  PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  const TxnId txn = NextTxnId();
  PRESERIAL_RETURN_IF_ERROR(wal_writer_.LogBegin(txn));
  Result<RowId> rid = t->Insert(row);
  if (!rid.ok()) {
    PRESERIAL_RETURN_IF_ERROR(wal_writer_.LogAbort(txn));
    return rid.status();
  }
  PRESERIAL_RETURN_IF_ERROR(wal_writer_.LogInsert(txn, table, std::move(row)));
  return wal_writer_.LogCommit(txn);
}

Status Database::UpdateRow(const std::string& table, const Value& key,
                           Row after) {
  PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  const TxnId txn = NextTxnId();
  PRESERIAL_RETURN_IF_ERROR(wal_writer_.LogBegin(txn));
  Status s = t->UpdateByKey(key, after);
  if (!s.ok()) {
    PRESERIAL_RETURN_IF_ERROR(wal_writer_.LogAbort(txn));
    return s;
  }
  PRESERIAL_RETURN_IF_ERROR(
      wal_writer_.LogUpdate(txn, table, key, std::move(after)));
  return wal_writer_.LogCommit(txn);
}

Status Database::DeleteRow(const std::string& table, const Value& key) {
  PRESERIAL_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  const TxnId txn = NextTxnId();
  PRESERIAL_RETURN_IF_ERROR(wal_writer_.LogBegin(txn));
  Status s = t->DeleteByKey(key);
  if (!s.ok()) {
    PRESERIAL_RETURN_IF_ERROR(wal_writer_.LogAbort(txn));
    return s;
  }
  PRESERIAL_RETURN_IF_ERROR(wal_writer_.LogDelete(txn, table, key));
  return wal_writer_.LogCommit(txn);
}

Status Database::Checkpoint() {
  std::string snapshot;
  {
    WalRecord marker;
    marker.type = WalRecordType::kCheckpoint;
    marker.txn_id = kSystemTxnId;
    FrameRecord(marker, &snapshot);
  }
  for (const std::string& name : catalog_.TableNames()) {
    Result<Table*> t = catalog_.GetTable(name);
    PRESERIAL_CHECK(t.ok());
    Table* table = t.value();
    {
      WalRecord r;
      r.type = WalRecordType::kCreateTable;
      r.txn_id = kSystemTxnId;
      r.table = name;
      r.schema = table->schema();
      FrameRecord(r, &snapshot);
    }
    for (const CheckConstraint& c : table->constraints()) {
      WalRecord r;
      r.type = WalRecordType::kAddConstraint;
      r.txn_id = kSystemTxnId;
      r.table = name;
      r.constraint = c;
      FrameRecord(r, &snapshot);
    }
    for (const auto& [index_name, column] : table->IndexDefs()) {
      WalRecord r;
      r.type = WalRecordType::kCreateIndex;
      r.txn_id = kSystemTxnId;
      r.table = name;
      r.index_name = index_name;
      r.index_column = column;
      FrameRecord(r, &snapshot);
    }
    table->Scan([&](const Value&, const Row& row) {
      WalRecord r;
      r.type = WalRecordType::kInsert;
      r.txn_id = kSystemTxnId;
      r.table = name;
      r.row = row;
      FrameRecord(r, &snapshot);
      return true;
    });
  }
  PRESERIAL_RETURN_IF_ERROR(wal_storage_->Reset(snapshot));
  return wal_storage_->Sync();
}

}  // namespace preserial::storage
