#ifndef PRESERIAL_STORAGE_SCHEMA_H_
#define PRESERIAL_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace preserial::storage {

// A column: name, declared type, nullability.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;
  bool nullable = false;
};

// Relational schema for a table. Column 0..n-1 positions are stable; the
// primary key is a single column (sufficient for the paper's workloads and
// keeps index keys scalar).
class Schema {
 public:
  Schema() = default;
  // `primary_key` indexes into `columns`.
  Schema(std::vector<ColumnDef> columns, size_t primary_key);

  static Result<Schema> Create(std::vector<ColumnDef> columns,
                               size_t primary_key);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t primary_key() const { return primary_key_; }

  // Index of the named column, or kNotFound.
  Result<size_t> ColumnIndex(std::string_view name) const;

  // Checks a row against the schema: arity, per-column type (Null allowed
  // only for nullable columns; Int64 accepted where Double declared).
  Status ValidateRow(const std::vector<Value>& row) const;

  // "name TYPE [NULL] , ..." debug rendering.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  size_t primary_key_ = 0;
};

}  // namespace preserial::storage

#endif  // PRESERIAL_STORAGE_SCHEMA_H_
