#include "storage/catalog.h"

namespace preserial::storage {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return Status::Ok();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace preserial::storage
