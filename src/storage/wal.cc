#include "storage/wal.h"

#include <cstdio>
#include <fstream>

#include "common/crc32.h"
#include "common/strings.h"

namespace preserial::storage {

namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(std::string_view buf, size_t offset) {
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<unsigned char>(buf[offset + i]))
         << (8 * i);
  }
  return r;
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool GetU64(std::string_view buf, size_t* offset, uint64_t* v) {
  if (buf.size() - *offset < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(buf[*offset + i]))
         << (8 * i);
  }
  *offset += 8;
  *v = r;
  return true;
}

void PutString(std::string* out, std::string_view s) {
  PutU64(out, s.size());
  out->append(s);
}

Result<std::string> GetString(std::string_view buf, size_t* offset) {
  uint64_t n = 0;
  if (!GetU64(buf, offset, &n) || buf.size() - *offset < n) {
    return Status::Corruption("wal: truncated string");
  }
  std::string s(buf.substr(*offset, n));
  *offset += n;
  return s;
}

void EncodeSchema(const Schema& schema, std::string* out) {
  PutU64(out, schema.num_columns());
  for (const ColumnDef& c : schema.columns()) {
    PutString(out, c.name);
    out->push_back(static_cast<char>(c.type));
    out->push_back(c.nullable ? 1 : 0);
  }
  PutU64(out, schema.primary_key());
}

Result<Schema> DecodeSchema(std::string_view buf, size_t* offset) {
  uint64_t n = 0;
  if (!GetU64(buf, offset, &n)) {
    return Status::Corruption("wal: truncated schema arity");
  }
  std::vector<ColumnDef> cols;
  cols.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PRESERIAL_ASSIGN_OR_RETURN(std::string name, GetString(buf, offset));
    if (buf.size() - *offset < 2) {
      return Status::Corruption("wal: truncated column def");
    }
    ColumnDef c;
    c.name = std::move(name);
    c.type = static_cast<ValueType>(buf[*offset]);
    c.nullable = buf[*offset + 1] != 0;
    *offset += 2;
    cols.push_back(std::move(c));
  }
  uint64_t pk = 0;
  if (!GetU64(buf, offset, &pk)) {
    return Status::Corruption("wal: truncated schema pk");
  }
  return Schema::Create(std::move(cols), pk);
}

void EncodeConstraint(const CheckConstraint& c, std::string* out) {
  PutString(out, c.name());
  PutU64(out, c.column());
  out->push_back(static_cast<char>(c.op()));
  c.constant().EncodeTo(out);
}

Result<CheckConstraint> DecodeConstraint(std::string_view buf,
                                         size_t* offset) {
  PRESERIAL_ASSIGN_OR_RETURN(std::string name, GetString(buf, offset));
  uint64_t column = 0;
  if (!GetU64(buf, offset, &column) || *offset >= buf.size()) {
    return Status::Corruption("wal: truncated constraint");
  }
  const auto op = static_cast<CompareOp>(buf[(*offset)++]);
  PRESERIAL_ASSIGN_OR_RETURN(Value constant, Value::DecodeFrom(buf, offset));
  return CheckConstraint(std::move(name), column, op, std::move(constant));
}

}  // namespace

const char* WalRecordTypeName(WalRecordType t) {
  switch (t) {
    case WalRecordType::kBegin:
      return "BEGIN";
    case WalRecordType::kCommit:
      return "COMMIT";
    case WalRecordType::kAbort:
      return "ABORT";
    case WalRecordType::kInsert:
      return "INSERT";
    case WalRecordType::kUpdate:
      return "UPDATE";
    case WalRecordType::kDelete:
      return "DELETE";
    case WalRecordType::kCreateTable:
      return "CREATE_TABLE";
    case WalRecordType::kAddConstraint:
      return "ADD_CONSTRAINT";
    case WalRecordType::kCheckpoint:
      return "CHECKPOINT";
    case WalRecordType::kDropTable:
      return "DROP_TABLE";
    case WalRecordType::kCreateIndex:
      return "CREATE_INDEX";
    case WalRecordType::kDropIndex:
      return "DROP_INDEX";
    case WalRecordType::kClusterPrepare:
      return "CLUSTER_PREPARE";
    case WalRecordType::kClusterCommit:
      return "CLUSTER_COMMIT";
    case WalRecordType::kClusterAbort:
      return "CLUSTER_ABORT";
    case WalRecordType::kClusterEnd:
      return "CLUSTER_END";
  }
  return "?";
}

void WalRecord::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(type));
  PutU64(out, txn_id);
  switch (type) {
    case WalRecordType::kBegin:
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
    case WalRecordType::kCheckpoint:
      break;
    case WalRecordType::kInsert:
      PutString(out, table);
      row.EncodeTo(out);
      break;
    case WalRecordType::kUpdate:
      PutString(out, table);
      key.EncodeTo(out);
      row.EncodeTo(out);
      break;
    case WalRecordType::kDelete:
      PutString(out, table);
      key.EncodeTo(out);
      break;
    case WalRecordType::kCreateTable:
      PutString(out, table);
      EncodeSchema(schema, out);
      break;
    case WalRecordType::kAddConstraint:
      PutString(out, table);
      EncodeConstraint(constraint, out);
      break;
    case WalRecordType::kDropTable:
      PutString(out, table);
      break;
    case WalRecordType::kCreateIndex:
      PutString(out, table);
      PutString(out, index_name);
      PutU64(out, index_column);
      break;
    case WalRecordType::kDropIndex:
      PutString(out, table);
      PutString(out, index_name);
      break;
    case WalRecordType::kClusterPrepare:
      PutU64(out, branches.size());
      for (const auto& [shard, branch] : branches) {
        PutU64(out, shard);
        PutU64(out, branch);
      }
      break;
    case WalRecordType::kClusterCommit:
    case WalRecordType::kClusterAbort:
    case WalRecordType::kClusterEnd:
      break;
  }
}

Result<WalRecord> WalRecord::DecodeFrom(std::string_view payload) {
  if (payload.empty()) return Status::Corruption("wal: empty payload");
  size_t offset = 0;
  WalRecord rec;
  rec.type = static_cast<WalRecordType>(payload[offset++]);
  uint64_t txn = 0;
  if (!GetU64(payload, &offset, &txn)) {
    return Status::Corruption("wal: truncated txn id");
  }
  rec.txn_id = txn;
  switch (rec.type) {
    case WalRecordType::kBegin:
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
    case WalRecordType::kCheckpoint:
      break;
    case WalRecordType::kInsert: {
      PRESERIAL_ASSIGN_OR_RETURN(rec.table, GetString(payload, &offset));
      PRESERIAL_ASSIGN_OR_RETURN(rec.row, Row::DecodeFrom(payload, &offset));
      break;
    }
    case WalRecordType::kUpdate: {
      PRESERIAL_ASSIGN_OR_RETURN(rec.table, GetString(payload, &offset));
      PRESERIAL_ASSIGN_OR_RETURN(rec.key, Value::DecodeFrom(payload, &offset));
      PRESERIAL_ASSIGN_OR_RETURN(rec.row, Row::DecodeFrom(payload, &offset));
      break;
    }
    case WalRecordType::kDelete: {
      PRESERIAL_ASSIGN_OR_RETURN(rec.table, GetString(payload, &offset));
      PRESERIAL_ASSIGN_OR_RETURN(rec.key, Value::DecodeFrom(payload, &offset));
      break;
    }
    case WalRecordType::kCreateTable: {
      PRESERIAL_ASSIGN_OR_RETURN(rec.table, GetString(payload, &offset));
      PRESERIAL_ASSIGN_OR_RETURN(rec.schema, DecodeSchema(payload, &offset));
      break;
    }
    case WalRecordType::kAddConstraint: {
      PRESERIAL_ASSIGN_OR_RETURN(rec.table, GetString(payload, &offset));
      PRESERIAL_ASSIGN_OR_RETURN(rec.constraint,
                                 DecodeConstraint(payload, &offset));
      break;
    }
    case WalRecordType::kDropTable: {
      PRESERIAL_ASSIGN_OR_RETURN(rec.table, GetString(payload, &offset));
      break;
    }
    case WalRecordType::kCreateIndex: {
      PRESERIAL_ASSIGN_OR_RETURN(rec.table, GetString(payload, &offset));
      PRESERIAL_ASSIGN_OR_RETURN(rec.index_name, GetString(payload, &offset));
      if (!GetU64(payload, &offset, &rec.index_column)) {
        return Status::Corruption("wal: truncated index column");
      }
      break;
    }
    case WalRecordType::kDropIndex: {
      PRESERIAL_ASSIGN_OR_RETURN(rec.table, GetString(payload, &offset));
      PRESERIAL_ASSIGN_OR_RETURN(rec.index_name, GetString(payload, &offset));
      break;
    }
    case WalRecordType::kClusterPrepare: {
      uint64_t n = 0;
      if (!GetU64(payload, &offset, &n)) {
        return Status::Corruption("wal: truncated cluster branch count");
      }
      rec.branches.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t shard = 0, branch = 0;
        if (!GetU64(payload, &offset, &shard) ||
            !GetU64(payload, &offset, &branch)) {
          return Status::Corruption("wal: truncated cluster branch");
        }
        rec.branches.emplace_back(shard, branch);
      }
      break;
    }
    case WalRecordType::kClusterCommit:
    case WalRecordType::kClusterAbort:
    case WalRecordType::kClusterEnd:
      break;
    default:
      return Status::Corruption(StrFormat("wal: bad record type %d",
                                          static_cast<int>(rec.type)));
  }
  if (offset != payload.size()) {
    return Status::Corruption("wal: trailing bytes in record payload");
  }
  return rec;
}

Status MemoryWalStorage::Append(std::string_view bytes) {
  buffer_.append(bytes);
  return Status::Ok();
}

Status MemoryWalStorage::Reset(std::string_view bytes) {
  buffer_.assign(bytes);
  return Status::Ok();
}

void MemoryWalStorage::CorruptTail(size_t n) {
  buffer_.resize(buffer_.size() > n ? buffer_.size() - n : 0);
}

Status FileWalStorage::Append(std::string_view bytes) {
  std::ofstream f(path_, std::ios::binary | std::ios::app);
  if (!f) return Status::Corruption("wal: cannot open " + path_);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f) return Status::Corruption("wal: short append to " + path_);
  return Status::Ok();
}

Status FileWalStorage::Sync() {
  // Appends above already flush on stream close; an explicit fsync would go
  // here for a production deployment.
  return Status::Ok();
}

Result<std::string> FileWalStorage::ReadAll() const {
  std::ifstream f(path_, std::ios::binary);
  if (!f) return std::string();  // Missing log == empty log.
  std::string data((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  return data;
}

Status FileWalStorage::Reset(std::string_view bytes) {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return Status::Corruption("wal: cannot open " + tmp);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!f) return Status::Corruption("wal: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::Corruption("wal: rename failed for " + path_);
  }
  return Status::Ok();
}

void FramePayload(std::string_view payload, std::string* out) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  out->append(payload);
}

void FrameRecord(const WalRecord& record, std::string* out) {
  std::string payload;
  record.EncodeTo(&payload);
  FramePayload(payload, out);
}

Status WalWriter::Append(const WalRecord& record) {
  std::string framed;
  FrameRecord(record, &framed);
  return storage_->Append(framed);
}

Status WalWriter::LogBegin(TxnId txn) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  r.txn_id = txn;
  return Append(r);
}

Status WalWriter::LogCommit(TxnId txn) {
  WalRecord r;
  r.type = WalRecordType::kCommit;
  r.txn_id = txn;
  PRESERIAL_RETURN_IF_ERROR(Append(r));
  return Sync();
}

Status WalWriter::LogAbort(TxnId txn) {
  WalRecord r;
  r.type = WalRecordType::kAbort;
  r.txn_id = txn;
  return Append(r);
}

Status WalWriter::LogInsert(TxnId txn, std::string table, Row row) {
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.txn_id = txn;
  r.table = std::move(table);
  r.row = std::move(row);
  return Append(r);
}

Status WalWriter::LogUpdate(TxnId txn, std::string table, Value key,
                            Row after) {
  WalRecord r;
  r.type = WalRecordType::kUpdate;
  r.txn_id = txn;
  r.table = std::move(table);
  r.key = std::move(key);
  r.row = std::move(after);
  return Append(r);
}

Status WalWriter::LogDelete(TxnId txn, std::string table, Value key) {
  WalRecord r;
  r.type = WalRecordType::kDelete;
  r.txn_id = txn;
  r.table = std::move(table);
  r.key = std::move(key);
  return Append(r);
}

Status WalWriter::LogCreateTable(TxnId txn, std::string table,
                                 const Schema& schema) {
  WalRecord r;
  r.type = WalRecordType::kCreateTable;
  r.txn_id = txn;
  r.table = std::move(table);
  r.schema = schema;
  return Append(r);
}

Status WalWriter::LogAddConstraint(TxnId txn, std::string table,
                                   const CheckConstraint& constraint) {
  WalRecord r;
  r.type = WalRecordType::kAddConstraint;
  r.txn_id = txn;
  r.table = std::move(table);
  r.constraint = constraint;
  return Append(r);
}

Status WalWriter::LogDropTable(TxnId txn, std::string table) {
  WalRecord r;
  r.type = WalRecordType::kDropTable;
  r.txn_id = txn;
  r.table = std::move(table);
  return Append(r);
}

Status WalWriter::LogCreateIndex(TxnId txn, std::string table,
                                 std::string index, uint64_t column) {
  WalRecord r;
  r.type = WalRecordType::kCreateIndex;
  r.txn_id = txn;
  r.table = std::move(table);
  r.index_name = std::move(index);
  r.index_column = column;
  return Append(r);
}

Status WalWriter::LogDropIndex(TxnId txn, std::string table,
                               std::string index) {
  WalRecord r;
  r.type = WalRecordType::kDropIndex;
  r.txn_id = txn;
  r.table = std::move(table);
  r.index_name = std::move(index);
  return Append(r);
}

Status WalWriter::LogCheckpoint() {
  WalRecord r;
  r.type = WalRecordType::kCheckpoint;
  r.txn_id = kSystemTxnId;
  return Append(r);
}

Status WalWriter::LogClusterPrepare(
    TxnId global, std::vector<std::pair<uint64_t, uint64_t>> branches) {
  WalRecord r;
  r.type = WalRecordType::kClusterPrepare;
  r.txn_id = global;
  r.branches = std::move(branches);
  PRESERIAL_RETURN_IF_ERROR(Append(r));
  return Sync();
}

Status WalWriter::LogClusterCommit(TxnId global) {
  WalRecord r;
  r.type = WalRecordType::kClusterCommit;
  r.txn_id = global;
  PRESERIAL_RETURN_IF_ERROR(Append(r));
  return Sync();
}

Status WalWriter::LogClusterAbort(TxnId global) {
  WalRecord r;
  r.type = WalRecordType::kClusterAbort;
  r.txn_id = global;
  PRESERIAL_RETURN_IF_ERROR(Append(r));
  return Sync();
}

Status WalWriter::LogClusterEnd(TxnId global) {
  WalRecord r;
  r.type = WalRecordType::kClusterEnd;
  r.txn_id = global;
  return Append(r);
}

FrameScanResult ScanFrames(std::string_view log) {
  FrameScanResult out;
  out.status = Status::Ok();
  size_t offset = 0;
  while (offset < log.size()) {
    if (log.size() - offset < 8) {
      // Torn frame header at the tail: drop it.
      break;
    }
    const uint32_t len = GetU32(log, offset);
    const uint32_t crc = GetU32(log, offset + 4);
    if (log.size() - offset - 8 < len) {
      // Torn payload at the tail: drop it.
      break;
    }
    const std::string_view payload = log.substr(offset + 8, len);
    if (Crc32(payload) != crc) {
      out.status = Status::Corruption(
          StrFormat("wal: bad crc at offset %zu", offset));
      return out;
    }
    out.payloads.emplace_back(payload);
    offset += 8 + len;
    out.bytes_consumed = offset;
  }
  return out;
}

WalScanResult ScanWal(std::string_view log) {
  FrameScanResult frames = ScanFrames(log);
  WalScanResult out;
  out.status = frames.status;
  out.bytes_consumed = frames.bytes_consumed;
  if (!out.status.ok()) return out;
  for (const std::string& payload : frames.payloads) {
    Result<WalRecord> rec = WalRecord::DecodeFrom(payload);
    if (!rec.ok()) {
      out.status = rec.status();
      return out;
    }
    out.records.push_back(std::move(rec).value());
  }
  return out;
}

}  // namespace preserial::storage
