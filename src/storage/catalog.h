#ifndef PRESERIAL_STORAGE_CATALOG_H_
#define PRESERIAL_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace preserial::storage {

// Named-table registry of one database instance. Owns the tables.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Creates a table; kAlreadyExists if the name is taken. Returns the table.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  // Fails with kNotFound for unknown names.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  size_t table_count() const { return tables_.size(); }

  // Sorted table names.
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace preserial::storage

#endif  // PRESERIAL_STORAGE_CATALOG_H_
