#include "storage/row.h"

#include "common/strings.h"

namespace preserial::storage {

void Row::EncodeTo(std::string* out) const {
  // Arity as a varint-free fixed u32: rows are small and the WAL cares more
  // about simplicity than byte shaving.
  const uint32_t n = static_cast<uint32_t>(values_.size());
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(n >> (8 * i)));
  for (const Value& v : values_) v.EncodeTo(out);
}

Result<Row> Row::DecodeFrom(std::string_view buf, size_t* offset) {
  if (buf.size() - *offset < 4) {
    return Status::Corruption("row decode: truncated arity");
  }
  uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<uint32_t>(static_cast<unsigned char>(buf[*offset + i]))
         << (8 * i);
  }
  *offset += 4;
  std::vector<Value> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PRESERIAL_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(buf, offset));
    values.push_back(std::move(v));
  }
  return Row(std::move(values));
}

std::string Row::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace preserial::storage
