#ifndef PRESERIAL_STORAGE_BTREE_H_
#define PRESERIAL_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/row.h"
#include "storage/value.h"

namespace preserial::storage {

// In-memory B+-tree mapping Value keys to RowIds; the primary (and
// secondary-unique) index structure of the LDBS. Keys are ordered by
// Value::CompareTotal so heterogeneous keys are well-defined.
//
// Classic design: all entries live in leaves, internal nodes hold
// separators, leaves are doubly linked for ordered scans. Rebalancing is
// parent-driven (borrow from a sibling, else merge) so every node except
// the root stays at least half full.
//
// Not thread-safe; concurrency control happens above the storage layer
// (that is the entire point of the paper).
class BTree {
 public:
  // `max_keys` is the node capacity; >= 3. Small values are useful in tests
  // to force deep trees.
  explicit BTree(size_t max_keys = 64);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  // Inserts key -> rid; kAlreadyExists if the key is present.
  Status Insert(const Value& key, RowId rid);

  // Points key at a new rid; kNotFound if absent.
  Status Update(const Value& key, RowId rid);

  // Removes the key; kNotFound if absent.
  Status Remove(const Value& key);

  // Point lookup.
  Result<RowId> Lookup(const Value& key) const;
  bool Contains(const Value& key) const { return Lookup(key).ok(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Visits entries with lo <= key <= hi in key order (unset bound =
  // unbounded). The visitor returns false to stop early.
  void Scan(const std::optional<Value>& lo, const std::optional<Value>& hi,
            const std::function<bool(const Value&, RowId)>& visit) const;

  // Visits every entry in key order.
  void ScanAll(const std::function<bool(const Value&, RowId)>& visit) const {
    Scan(std::nullopt, std::nullopt, visit);
  }

  // Structural invariant checker used by tests: key ordering, node fill
  // factors, separator correctness, leaf-chain consistency, depth balance.
  Status CheckInvariants() const;

  // Tree height (0 for an empty tree with a single leaf root).
  size_t Height() const;

 private:
  struct Node;
  struct SplitResult {
    Value separator;           // Smallest key of the new right sibling.
    std::unique_ptr<Node> right;
  };

  Node* FindLeaf(const Value& key) const;
  std::optional<SplitResult> InsertRec(Node* node, const Value& key, RowId rid,
                                       Status* status);
  bool RemoveRec(Node* node, const Value& key, Status* status);
  void RebalanceChild(Node* parent, size_t child_idx);
  Status CheckNode(const Node* node, const Value* lo, const Value* hi,
                   size_t depth, size_t leaf_depth) const;

  size_t max_keys_;
  size_t min_keys_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace preserial::storage

#endif  // PRESERIAL_STORAGE_BTREE_H_
