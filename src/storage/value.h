#ifndef PRESERIAL_STORAGE_VALUE_H_
#define PRESERIAL_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/status.h"

namespace preserial::storage {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

const char* ValueTypeName(ValueType t);

// Dynamically typed cell value: the unit of data the whole stack operates
// on (LDBS rows, GTM virtual copies, reconciliation algebra). Value is a
// regular type — copyable, movable, equality-comparable, hashable — so it
// can flow through containers and logs without ceremony.
class Value {
 public:
  // Null by default.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Double(double d) { return Value(Rep(d)); }
  static Value String(std::string s) { return Value(Rep(std::move(s))); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  // Typed accessors; calling the wrong one is a programming error (asserts).
  bool as_bool() const;
  int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  // Numeric coercion: int64 and double read as double. Errors on other
  // types.
  Result<double> ToDouble() const;

  // Arithmetic over numerics. int64 op int64 stays int64 (checked for
  // overflow); any double operand promotes to double. Division by zero and
  // non-numeric operands are errors. These are the building blocks of the
  // paper's add/sub and mul/div operation classes.
  static Result<Value> Add(const Value& a, const Value& b);
  static Result<Value> Sub(const Value& a, const Value& b);
  static Result<Value> Mul(const Value& a, const Value& b);
  static Result<Value> Div(const Value& a, const Value& b);

  // Three-way comparison within a comparable domain (numerics compare
  // cross-type by magnitude). Error for incomparable types (e.g. string vs
  // int).
  static Result<int> Compare(const Value& a, const Value& b);

  // Total order over all values (Null < Bool < numeric < String), suitable
  // for index keys regardless of schema. Numerics order by magnitude, with
  // int64 before double on exact ties so the order stays antisymmetric;
  // NaN doubles sort after every other numeric (and equal to each other),
  // keeping the relation a strict weak ordering.
  static int CompareTotal(const Value& a, const Value& b);

  // Exact structural equality (type and representation both equal).
  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  size_t Hash() const;

  // Binary serialization (type tag + payload), used by the WAL.
  void EncodeTo(std::string* out) const;
  // Decodes one value starting at *offset, advancing it. Corruption-safe.
  static Result<Value> DecodeFrom(std::string_view buf, size_t* offset);

  // Human-readable rendering ("NULL", "42", "3.5", "'abc'", "true").
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

// Functors for using Value as a key in ordered / hashed containers.
struct ValueTotalLess {
  bool operator()(const Value& a, const Value& b) const {
    return Value::CompareTotal(a, b) < 0;
  }
};
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace preserial::storage

#endif  // PRESERIAL_STORAGE_VALUE_H_
