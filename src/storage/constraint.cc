#include "storage/constraint.h"

#include "common/strings.h"

namespace preserial::storage {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<bool> CheckConstraint::Holds(const Value& v) const {
  if (v.is_null()) return true;
  PRESERIAL_ASSIGN_OR_RETURN(int c, Value::Compare(v, constant_));
  switch (op_) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return Status::Internal("unreachable compare op");
}

Status CheckConstraint::Check(const Row& row) const {
  if (column_ >= row.size()) {
    return Status::InvalidArgument(
        StrFormat("constraint '%s' references column %zu beyond row arity %zu",
                  name_.c_str(), column_, row.size()));
  }
  Result<bool> holds = Holds(row.at(column_));
  if (!holds.ok()) return holds.status();
  if (!holds.value()) {
    return Status::ConstraintViolation(StrFormat(
        "constraint '%s' violated: %s %s %s", name_.c_str(),
        row.at(column_).ToString().c_str(), CompareOpName(op_),
        constant_.ToString().c_str()));
  }
  return Status::Ok();
}

std::string CheckConstraint::ToString(const Schema& schema) const {
  const std::string col = column_ < schema.num_columns()
                              ? schema.column(column_).name
                              : StrFormat("col#%zu", column_);
  return StrFormat("%s: %s %s %s", name_.c_str(), col.c_str(),
                   CompareOpName(op_), constant_.ToString().c_str());
}

}  // namespace preserial::storage
